package ormprof

// Fault-injection soak: every workload's recorded trace is replayed through
// the fault-tolerant pipeline under a randomized (but seeded, hence
// reproducible) schedule of injected faults — corrupt bytes, truncation,
// field flips, producer panics, worker panics, stalls against deadlines.
// The contract under test is the robustness tentpole: the pipeline never
// hangs, never lets a panic escape, never leaks goroutines, and always
// yields either a (possibly partial) profile or a typed error. With a
// single corrupted frame, exactly that frame's events are lost — asserted
// via Reader.Stats().

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"ormprof/internal/faultinject"
	"ormprof/internal/leap"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

// isTypedFault reports whether err is one of the pipeline's sanctioned
// degraded-mode errors — the "typed error" arm of the soak contract.
func isTypedFault(err error) bool {
	var ce *tracefmt.CorruptionError
	var pe *trace.PanicError
	var we *profiler.WorkerError
	return errors.As(err, &ce) || errors.As(err, &pe) || errors.As(err, &we) ||
		errors.Is(err, tracefmt.ErrBadTrace) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// lenientSource opens encoded bytes as a lenient trace reader. A header
// too damaged to open is a legitimate outcome for header-offset faults;
// those cases return (nil, err).
func lenientSource(data []byte) (*tracefmt.Reader, error) {
	return tracefmt.NewReader(bytes.NewReader(data), tracefmt.WithLenient())
}

// runSalvage replays a (possibly damaged) encoded trace through the whomp
// and leap salvage paths and enforces the soak contract on the outcome.
func runSalvage(t *testing.T, data []byte, sites map[trace.SiteID]string, totalEvents int64) {
	t.Helper()
	for _, prof := range []string{"whomp", "leap"} {
		r, err := lenientSource(data)
		if err != nil {
			if !errors.Is(err, tracefmt.ErrBadTrace) {
				t.Fatalf("header error not typed: %v", err)
			}
			return // unreadable header is a clean typed failure
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		switch prof {
		case "whomp":
			p, err := whomp.FromSourceSalvage(ctx, "soak", r, sites, 4)
			if err != nil && !isTypedFault(err) {
				t.Fatalf("whomp salvage error not typed: %v", err)
			}
			if p == nil && err == nil {
				t.Fatal("whomp salvage returned neither profile nor error")
			}
			if p != nil && int64(p.Records) > totalEvents {
				t.Fatalf("whomp salvaged %d records from %d events", p.Records, totalEvents)
			}
		case "leap":
			p, err := leap.FromSourceSalvage(ctx, "soak", r, sites, 0, 4)
			if err != nil && !isTypedFault(err) {
				t.Fatalf("leap salvage error not typed: %v", err)
			}
			if p == nil && err == nil {
				t.Fatal("leap salvage returned neither profile nor error")
			}
		}
		cancel()
		st := r.Stats()
		if st.Events < 0 || st.Events > totalEvents {
			t.Fatalf("reader stats inconsistent: delivered %d of %d", st.Events, totalEvents)
		}
	}
}

func soakWorkloads(t *testing.T) []string {
	if testing.Short() {
		return []string{"linkedlist", "181.mcf"}
	}
	return append(workloads.Names(), "linkedlist")
}

func soakOffsets(rng *rand.Rand, size int64, n int) []int64 {
	offs := make([]int64, n)
	for i := range offs {
		offs[i] = rng.Int63n(size)
	}
	return offs
}

// TestSoakCorruptByte: single flipped bytes at random offsets, including
// inside the header.
func TestSoakCorruptByte(t *testing.T) {
	testutil.LeakCheck(t)
	rng := rand.New(rand.NewSource(1))
	nOffsets := 6
	if testing.Short() {
		nOffsets = 2
	}
	for _, name := range soakWorkloads(t) {
		buf, sites, encoded := recordWorkload(t, name)
		total := int64(buf.Len())
		for _, off := range soakOffsets(rng, int64(len(encoded)), nOffsets) {
			damaged, err := io.ReadAll(faultinject.CorruptByte(bytes.NewReader(encoded), off, byte(rng.Intn(256))))
			if err != nil {
				t.Fatal(err)
			}
			runSalvage(t, damaged, sites, total)
		}
	}
}

// TestSoakTruncation: traces cut off at random points, including inside
// the header and mid-frame.
func TestSoakTruncation(t *testing.T) {
	testutil.LeakCheck(t)
	rng := rand.New(rand.NewSource(2))
	nOffsets := 6
	if testing.Short() {
		nOffsets = 2
	}
	for _, name := range soakWorkloads(t) {
		buf, sites, encoded := recordWorkload(t, name)
		total := int64(buf.Len())
		for _, cut := range soakOffsets(rng, int64(len(encoded)), nOffsets) {
			damaged, err := io.ReadAll(faultinject.Truncate(bytes.NewReader(encoded), cut))
			if err != nil {
				t.Fatal(err)
			}
			runSalvage(t, damaged, sites, total)
		}
	}
}

// TestSoakFieldFlip: decoded events mutated in flight — wrong kinds,
// garbage addresses, zero sizes. The pipeline must absorb them (they are
// semantically wrong but structurally deliverable) without crashing.
func TestSoakFieldFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	rng := rand.New(rand.NewSource(3))
	mutations := []func(*trace.Event){
		func(e *trace.Event) { e.Kind = trace.EventKind(250) },
		func(e *trace.Event) { e.Addr = ^trace.Addr(0) },
		func(e *trace.Event) { e.Size = 0 },
		func(e *trace.Event) { e.Kind, e.Size = trace.EvAlloc, 0 },
		func(e *trace.Event) { e.Kind = trace.EvFree },
	}
	for _, name := range soakWorkloads(t) {
		buf, sites, _ := recordWorkload(t, name)
		for i, mutate := range mutations {
			n := rng.Int63n(int64(buf.Len()))
			ctx := context.Background()
			src := faultinject.FlipField(buf.Source(), n, mutate)
			p, err := whomp.FromSourceSalvage(ctx, "soak", src, sites, 2)
			if err != nil && !isTypedFault(err) {
				t.Fatalf("mutation %d: error not typed: %v", i, err)
			}
			if p == nil && err == nil {
				t.Fatalf("mutation %d: neither profile nor error", i)
			}
		}
	}
}

// TestSoakProducerPanic: the source itself panics mid-stream; DrainSalvage
// must contain it and hand back the partial profile with a *PanicError.
func TestSoakProducerPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	rng := rand.New(rand.NewSource(4))
	for _, name := range soakWorkloads(t) {
		buf, sites, _ := recordWorkload(t, name)
		n := 1 + rng.Int63n(int64(buf.Len())-1)
		src := faultinject.PanicAfter(buf.Source(), n)
		p, err := leap.FromSourceSalvage(context.Background(), "soak", src, sites, 0, 4)
		var pe *trace.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: err = %v, want *trace.PanicError", name, err)
		}
		if p == nil {
			t.Fatalf("%s: no partial profile", name)
		}
	}
}

// TestSoakWorkerPanic: a compression worker crashes on a random record;
// the sharded stage must contain it, finish the surviving shards, and
// report a *WorkerError.
func TestSoakWorkerPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	rng := rand.New(rand.NewSource(5))
	for _, name := range soakWorkloads(t) {
		buf, sites, _ := recordWorkload(t, name)
		records, _, err := profiler.TranslateSourceSalvage(context.Background(), buf.Source(), sites)
		if err != nil {
			t.Fatal(err)
		}
		if len(records) < 4 {
			continue
		}
		// Round-robin sharding guarantees worker 0 sees len/4 records, so a
		// crash index drawn from that range always fires.
		crashAt := uint64(rng.Int63n(int64(len(records) / 4)))
		var rr int
		sh := profiler.NewSharded(4, 64, func(r profiler.Record, n int) int {
			rr++
			return rr % n
		}, func(i int) profiler.SCC {
			scc := leap.NewSCC(0)
			if i == 0 {
				return faultinject.PanicSCC(scc, crashAt)
			}
			return scc
		})
		for _, r := range records {
			sh.Consume(r)
		}
		sh.Finish()
		var we *profiler.WorkerError
		if err := sh.Err(); !errors.As(err, &we) {
			t.Fatalf("%s: Err = %v, want *WorkerError", name, err)
		} else if we.Worker != 0 {
			t.Fatalf("%s: crashed worker = %d, want 0", name, we.Worker)
		}
	}
}

// TestSoakStallDeadline: a producer stalls mid-stream against a deadline;
// the drain must notice the overrun at the next event and return
// DeadlineExceeded with the partial profile, promptly.
func TestSoakStallDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	rng := rand.New(rand.NewSource(6))
	for _, name := range soakWorkloads(t) {
		buf, sites, _ := recordWorkload(t, name)
		n := rng.Int63n(int64(buf.Len()))
		src := faultinject.Stall(buf.Source(), n, 300*time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		start := time.Now()
		p, err := whomp.FromSourceSalvage(ctx, "soak", src, sites, 2)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want DeadlineExceeded", name, err)
		}
		if p == nil {
			t.Fatalf("%s: no partial profile", name)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: salvage took %v after a 300ms stall", name, elapsed)
		}
	}
}

// TestSoakSingleFrameLossIsExact pins the headline guarantee at the pipeline
// level: corrupt exactly one frame of a recorded trace and the salvaged
// profile is built from exactly every other frame's events.
func TestSoakSingleFrameLossIsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	buf, sites, _ := recordWorkload(t, "linkedlist")
	// Re-encode with a small fixed batch so the trace has many frames.
	const batch = 64
	var enc bytes.Buffer
	tw := tracefmt.NewWriter(&enc, tracefmt.WithName("exact"), tracefmt.WithBatch(batch))
	tw.SetSites(sites)
	for _, e := range buf.Events {
		tw.Emit(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	encoded := enc.Bytes()
	total := int64(buf.Len())

	// Find the third frame by scanning for the sync marker and corrupt a
	// payload byte well inside it.
	off := 0
	for i := 0; i < 3; i++ {
		idx := bytes.Index(encoded[off+1:], []byte(tracefmt.FrameMagic))
		if idx < 0 {
			t.Fatal("trace has too few frames")
		}
		off += 1 + idx
	}
	damaged := bytes.Clone(encoded)
	damaged[off+16] ^= 0xa5

	r, err := lenientSource(damaged)
	if err != nil {
		t.Fatal(err)
	}
	p, serr := stride.IdealFromSourceSalvage(context.Background(), r)
	var ce *tracefmt.CorruptionError
	if !errors.As(serr, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", serr)
	}
	st := r.Stats()
	if st.SkippedFrames != 1 || st.Corruptions != 1 {
		t.Fatalf("SkippedFrames/Corruptions = %d/%d, want 1/1", st.SkippedFrames, st.Corruptions)
	}
	if st.SkippedEvents != batch {
		t.Fatalf("SkippedEvents = %d, want exactly one frame (%d)", st.SkippedEvents, batch)
	}
	if st.Events != total-batch {
		t.Fatalf("delivered %d events, want %d (all but one frame)", st.Events, total-batch)
	}
	if p == nil {
		t.Fatal("no salvaged profiler")
	}
}
