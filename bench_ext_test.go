package ormprof

import (
	"fmt"
	"testing"

	"ormprof/internal/cachesim"
	"ormprof/internal/decomp"
	"ormprof/internal/depend"
	"ormprof/internal/experiments"
	"ormprof/internal/hotstream"
	"ormprof/internal/layout"
	"ormprof/internal/leap"
	"ormprof/internal/locality"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/phase"
	"ormprof/internal/prefetch"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

// Extension benchmarks: the paper's future-work and motivated-but-unevaluated
// directions, implemented and measured in this repository (see DESIGN.md).

// BenchmarkExtPhaseCognizant measures §6's phase-cognizant profiling: LMAD
// capture of per-phase LEAP profiles vs the monolithic profile on the most
// phase-rich benchmark.
func BenchmarkExtPhaseCognizant(b *testing.B) {
	prog, err := workloads.New("256.bzip2", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)

	var monoAcc, cogAcc float64
	var phases int
	for i := 0; i < b.N; i++ {
		mono := leap.New(sites, 0)
		buf.Replay(mono)
		monoAcc, _ = mono.Profile("bzip2").SampleQuality()

		cog := phase.NewCognizantLEAP(phase.Config{IntervalLen: 4096}, 0)
		cdc := profiler.NewCDC(omc.New(sites), cog)
		buf.Replay(cdc)
		cdc.Finish()
		cogAcc, _ = phase.Quality(cog.Profiles("bzip2"))
		phases = cog.Detector().NumPhases()
	}
	b.ReportMetric(monoAcc, "monolithic-capture%")
	b.ReportMetric(cogAcc, "phase-capture%")
	b.ReportMetric(float64(phases), "phases")
}

// BenchmarkExtCrossObjectStride measures the §4.2.2 extension: stride score
// when cross-object strides are recovered via the object table, vs the base
// within-object post-process, on the benchmark where it matters (twolf).
func BenchmarkExtCrossObjectStride(b *testing.B) {
	prog, err := workloads.New("300.twolf", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)

	var baseScore, extScore float64
	for i := 0; i < b.N; i++ {
		ideal := stride.NewIdeal()
		buf.Replay(ideal)
		real := ideal.StronglyStrided()

		lp := leap.New(sites, 0)
		buf.Replay(lp)
		profile := lp.Profile("300.twolf")
		baseScore = stride.Score(real, stride.FromLEAP(profile))
		extScore = stride.Score(real, stride.FromLEAPCrossObject(profile, stride.OMCLocator{OMC: lp.OMC()}))
	}
	b.ReportMetric(baseScore, "within-object-score%")
	b.ReportMetric(extScore, "cross-object-score%")
}

// BenchmarkExtLayoutOptimization measures the §1/§3.2 payoff: L1 miss
// reduction from profile-directed field reordering and object clustering.
func BenchmarkExtLayoutOptimization(b *testing.B) {
	prog, err := workloads.New("181.mcf", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)
	recs, o := profiler.TranslateTrace(buf.Events, sites)
	info := layout.OMCInfo{OMC: o}
	orig := layout.OriginalResolver(info)

	var fieldImp, clusterImp float64
	for i := 0; i < b.N; i++ {
		before, _ := layout.Evaluate(recs, orig, cachesim.L1D)

		var plans []*layout.FieldPlan
		for _, g := range o.Groups() {
			objs := o.Objects(g.ID)
			if len(objs) == 0 || objs[0].Size%layout.SlotSize != 0 || objs[0].Size < 2*layout.SlotSize {
				continue
			}
			if p, err := layout.PlanFields(recs, g.ID, objs[0].Size); err == nil {
				plans = append(plans, p)
			}
		}
		afterF, _ := layout.Evaluate(recs, layout.FieldResolver(orig, plans...), cachesim.L1D)
		fieldImp = layout.Improvement(before, afterF)

		plan := layout.PlanClusters(recs, info)
		afterC, _ := layout.Evaluate(recs, layout.ClusterResolver(orig, plan), cachesim.L1D)
		clusterImp = layout.Improvement(before, afterC)
	}
	b.ReportMetric(fieldImp, "fieldreorder-miss-reduction%")
	b.ReportMetric(clusterImp, "cluster-miss-reduction%")
}

// BenchmarkExtHotStreamCoverage measures §3.2's hot-data-stream consumer:
// how much of the access stream the top object-dimension streams cover.
func BenchmarkExtHotStreamCoverage(b *testing.B) {
	prog := workloads.NewLinkedList(workloads.Config{Scale: *benchScale, Seed: 42})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)

	var coverage float64
	var n int
	for i := 0; i < b.N; i++ {
		wp := whomp.New(m.StaticSites())
		buf.Replay(wp)
		g := wp.Profile("linkedlist").Grammars[decomp.DimObject]
		streams := hotstream.Extract(g, hotstream.Options{MinLength: 4, MinFreq: 4, MaxStreams: 5})
		coverage = hotstream.Coverage(g, streams)
		n = len(streams)
	}
	b.ReportMetric(100*coverage, "coverage%")
	b.ReportMetric(float64(n), "streams")
}

// BenchmarkExtProfileMerge measures cross-run merging (enabled by
// allocator-invariant keys): merged sample quality over three differently
// seeded runs.
func BenchmarkExtProfileMerge(b *testing.B) {
	var profiles []*leap.Profile
	for seed := int64(1); seed <= 3; seed++ {
		prog, err := workloads.New("197.parser", workloads.Config{Scale: *benchScale, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		buf, sites := experiments.Record(prog, nil)
		lp := leap.New(sites, 0)
		buf.Replay(lp)
		profiles = append(profiles, lp.Profile("197.parser"))
	}
	var acc float64
	var streams int
	for i := 0; i < b.N; i++ {
		merged := leap.Merge(profiles...)
		acc, _ = merged.SampleQuality()
		streams = len(merged.Streams)
	}
	b.ReportMetric(acc, "merged-capture%")
	b.ReportMetric(float64(streams), "streams")
}

// BenchmarkExtPoolPolicy reproduces footnote 2's design choice: profiling
// 197.parser with its allocation pool as one object (the paper's default)
// vs every carved record as its own object.
func BenchmarkExtPoolPolicy(b *testing.B) {
	var rows []experiments.PoolPolicyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PoolPolicyAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.OMSGBytes), "omsg-bytes/"+r.Policy)
		b.ReportMetric(r.AccPct, "capture%/"+r.Policy)
		b.ReportMetric(r.DepWithin10, "dep-within10%/"+r.Policy)
	}
}

// BenchmarkExtConnorsWindowSweep shows how the Connors baseline's accuracy
// and cost scale with its history window — the knob the paper tuned to
// match LEAP's running time.
func BenchmarkExtConnorsWindowSweep(b *testing.B) {
	prog, err := workloads.New("256.bzip2", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, _ := experiments.Record(prog, nil)
	ideal := depend.NewIdeal()
	buf.Replay(ideal)

	for _, window := range []int{64, 1024, 16384} {
		window := window
		b.Run(fmt.Sprintf("w%d", window), func(b *testing.B) {
			var within float64
			for i := 0; i < b.N; i++ {
				con := depend.NewConnors(window)
				buf.Replay(con)
				within = 100 * depend.Distribution(ideal.Result(), con.Result()).WithinTen()
			}
			b.ReportMetric(within, "within10%")
		})
	}
}

// BenchmarkExtSampling measures burst sampling (§6's collection-cost lever):
// stride-detection accuracy as the sampled fraction shrinks. Object probes
// always pass so translation stays correct.
func BenchmarkExtSampling(b *testing.B) {
	prog, err := workloads.New("164.gzip", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)

	ideal := stride.NewIdeal()
	buf.Replay(ideal)
	real := ideal.StronglyStrided()

	for _, frac := range []struct {
		name          string
		burst, period uint64
	}{
		{"full", 1, 1},
		{"1of4", 1024, 4096},
		{"1of16", 1024, 16384},
	} {
		frac := frac
		b.Run(frac.name, func(b *testing.B) {
			var score float64
			var kept uint64
			for i := 0; i < b.N; i++ {
				lp := leap.New(sites, 0)
				s := trace.NewSampler(frac.burst, frac.period, lp)
				buf.Replay(s)
				est := stride.FromLEAP(lp.Profile("sampled"))
				score = stride.Score(real, est)
				_, kept = s.Stats()
			}
			b.ReportMetric(score, "stride-score%")
			b.ReportMetric(float64(kept), "accesses-profiled")
		})
	}
}

// BenchmarkExtLocality quantifies data reference locality (related work
// [10]): predicted fully-associative L1 miss ratio from the line
// reuse-distance histogram, and the allocator-independent object-level
// miss ratio from the object-relative stream.
func BenchmarkExtLocality(b *testing.B) {
	prog, err := workloads.New("181.mcf", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)
	recs, _ := profiler.TranslateTrace(buf.Events, sites)

	var lineMR, objMR float64
	for i := 0; i < b.N; i++ {
		lineHist := locality.LineHistogram(buf.Events, 64)
		objHist := locality.ObjectHistogram(recs)
		lineMR = lineHist.MissRatio(512) // 32 KiB of 64 B lines
		objMR = objHist.MissRatio(512)
	}
	b.ReportMetric(100*lineMR, "line-missratio%@512")
	b.ReportMetric(100*objMR, "object-missratio%@512")
}

// BenchmarkExtStaticElision measures §6's first future-work item: eliding
// probes for statically analyzable instructions and injecting their
// descriptors afterwards. Reported: the event-volume saving and the stride
// score of the elided+injected profile (which must stay perfect).
func BenchmarkExtStaticElision(b *testing.B) {
	prog, err := workloads.New("164.gzip", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)

	ideal := stride.NewIdeal()
	buf.Replay(ideal)
	real := ideal.StronglyStrided()

	// "Compiler analysis": the perfectly strided instructions found by the
	// reference profiler stand in for what static analysis would prove.
	skip := make(map[trace.InstrID]bool)
	for id, info := range real {
		if info.Frac >= 0.999 {
			skip[id] = true
		}
	}

	var savedPct, score float64
	for i := 0; i < b.N; i++ {
		lp := leap.New(sites, 0)
		el := trace.NewElider(skip, lp)
		buf.Replay(el)
		profile := lp.Profile("elided")

		// Inject the statically known behaviour back: the compiler knows
		// the loop trip counts and strides of the instructions it elided.
		var descs []leap.StaticDescriptor
		for id := range skip {
			info := real[id]
			descs = append(descs, leap.StaticDescriptor{
				Instr: id, Group: 1, // group known to the compiler via the site
				OffsetStride: info.Stride,
				Count:        uint32(ideal.Execs()[id]),
				Reps:         1,
			})
		}
		leap.InjectStatic(profile, descs...)

		dropped, kept := el.Stats()
		savedPct = 100 * float64(dropped) / float64(dropped+kept)
		score = stride.Score(real, stride.FromLEAP(profile))
	}
	b.ReportMetric(savedPct, "events-elided%")
	b.ReportMetric(score, "stride-score%")
}

// BenchmarkExtPrefetch quantifies §4's second application end to end:
// demand-miss reduction from LEAP-directed stride prefetching on a
// streaming-heavy benchmark.
func BenchmarkExtPrefetch(b *testing.B) {
	prog, err := workloads.New("183.equake", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)
	lp := leap.New(sites, 0)
	buf.Replay(lp)
	profile := lp.Profile("183.equake")
	recs, o := profiler.TranslateTrace(buf.Events, sites)

	var res prefetch.Result
	for i := 0; i < b.N; i++ {
		_, res = prefetch.EvaluateProfile(recs, o, profile, cachesim.L1D)
	}
	b.ReportMetric(res.MissReduction(), "miss-reduction%")
	b.ReportMetric(100*res.Accuracy(), "prefetch-accuracy%")
}
