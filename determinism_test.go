package ormprof

// Determinism regression gate for the parallel profiling pipeline: one
// recorded trace, pushed through WHOMP and LEAP with 1, 2, and 8 workers,
// must produce byte-identical serialized profiles and identical LEAP stride
// reports. On-disk ORMWHOMP/ORMLEAP outputs are part of the repository's
// contract ("collect once, profile many"); this test pins that contract
// against any future change to the sharding or merge stages.

import (
	"bytes"
	"reflect"
	"testing"

	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

var determinismWorkers = []int{1, 2, 8}

func TestPipelineDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, name := range []string{"linkedlist", "181.mcf"} {
		t.Run(name, func(t *testing.T) {
			prog, err := workloads.New(name, workloads.Config{Scale: 1, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			buf, sites := experiments.Record(prog, nil)

			var refWhomp, refLeap []byte
			var refStride map[trace.InstrID]stride.Info
			for _, workers := range determinismWorkers {
				wp := whomp.NewParallel(sites, workers)
				buf.Replay(wp)
				var wb bytes.Buffer
				if _, err := wp.Profile(name).WriteTo(&wb); err != nil {
					t.Fatalf("workers=%d: whomp WriteTo: %v", workers, err)
				}

				lp := leap.NewParallel(sites, 0, workers)
				buf.Replay(lp)
				leapProfile := lp.Profile(name)
				var lb bytes.Buffer
				if _, err := leapProfile.WriteTo(&lb); err != nil {
					t.Fatalf("workers=%d: leap WriteTo: %v", workers, err)
				}
				report := stride.FromLEAPParallel(leapProfile, workers)

				if workers == determinismWorkers[0] {
					refWhomp, refLeap, refStride = wb.Bytes(), lb.Bytes(), report
					continue
				}
				if !bytes.Equal(wb.Bytes(), refWhomp) {
					t.Errorf("workers=%d: WHOMP profile differs from workers=1 (%d vs %d bytes)",
						workers, wb.Len(), len(refWhomp))
				}
				if !bytes.Equal(lb.Bytes(), refLeap) {
					t.Errorf("workers=%d: LEAP profile differs from workers=1 (%d vs %d bytes)",
						workers, lb.Len(), len(refLeap))
				}
				if !reflect.DeepEqual(report, refStride) {
					t.Errorf("workers=%d: stride report differs from workers=1", workers)
				}
			}
		})
	}
}
