package ormprof

// Cluster soak: the sharded ormpd deployment under tier kills and the
// cluster-specific fault classes. Clients push concurrent sessions
// through the router while shards and the router itself are killed and
// restarted mid-stream, flap, crawl, and partition. The contract is the
// single-node one, lifted a tier: every fault class ends in a clean
// retry that completes the stream or a typed degraded error — never a
// hang, a panic, or a goroutine leak — and the merged cluster report is
// byte-identical to an unfaulted single-shard run, with per-session
// artifacts byte-identical to the offline reference at every worker
// count.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ormprof/internal/faultinject"
	"ormprof/internal/serve"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
)

// clusterSessions is the session set every cluster soak pushes: enough
// that a 3-shard ring puts work on every shard.
var clusterSessions = []string{"cl-a", "cl-b", "cl-c", "cl-d", "cl-e", "cl-f"}

// pushAll streams the same frames under every session ID concurrently
// through addr, with a retry budget sized to ride out tier restarts.
func pushAll(t testing.TB, addr string, sessions []string, frames serve.SliceFrames, sites map[trace.SiteID]string) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions))
	for _, s := range sessions {
		wg.Add(1)
		go func(session string) {
			defer wg.Done()
			_, err := serve.Push(context.Background(), serve.ClientConfig{
				Addr: addr, SessionID: session, Workload: "linkedlist", Sites: sites,
				MaxAttempts: 50, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
				AttemptTimeout: 5 * time.Second,
			}, frames)
			if err != nil {
				errs <- fmt.Errorf("session %s: %w", session, err)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// mergedReport shuts the cluster down, merges, and returns the three
// cluster artifacts.
func mergedReport(t testing.TB, c *serve.Cluster, wantSessions int) map[string][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("cluster shutdown: %v", err)
	}
	outDir := t.TempDir()
	stats, err := c.Merge(outDir)
	if err != nil {
		t.Fatalf("cluster merge: %v", err)
	}
	if stats.Sessions != wantSessions || stats.Skipped != 0 {
		t.Errorf("merge stats = %+v, want %d clean sessions", stats, wantSessions)
	}
	out := make(map[string][]byte)
	for _, name := range []string{"cluster.leap", "cluster.stride", "cluster.whomp"} {
		b, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatalf("cluster artifact %s: %v", name, err)
		}
		out[name] = b
	}
	return out
}

// singleShardReference runs the same sessions through an unfaulted
// 1-shard cluster — the reference every faulted run must match.
func singleShardReference(t testing.TB, frames serve.SliceFrames, sites map[trace.SiteID]string) map[string][]byte {
	t.Helper()
	ref, err := serve.NewCluster(serve.ClusterConfig{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, ref.Addr(), clusterSessions, frames, sites)
	return mergedReport(t, ref, len(clusterSessions))
}

// waitForCheckpoint polls until some shard holds a durable checkpoint —
// the signal that the stream is genuinely mid-flight before a kill.
func waitForCheckpoint(t testing.TB, c *serve.Cluster) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, final := range c.FinalDirs() {
			ckDir := filepath.Join(filepath.Dir(final), "ckpt")
			if ents, err := os.ReadDir(ckDir); err == nil && len(ents) > 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard checkpoint appeared before the kill")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSoakClusterShardKillRestart kills one shard of three mid-stream —
// its sessions' unckeckpointed tail gone, its listener dark — restarts
// it, and requires every stream to complete and the merged cluster
// report to be byte-identical to an unfaulted single-shard run, with
// per-session artifacts matching the offline reference at every worker
// count.
func TestSoakClusterShardKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak")
	}
	testutil.LeakCheck(t)
	frames, sites, buf := netSoakFrames(t, "linkedlist", 64)
	want := singleShardReference(t, frames, sites)

	c, err := serve.NewCluster(serve.ClusterConfig{
		Dir:    t.TempDir(),
		Shards: 3,
		Shard:  serve.Config{CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pushAll(t, c.Addr(), clusterSessions, frames, sites)
	}()

	waitForCheckpoint(t, c)
	c.KillShard(0)
	time.Sleep(20 * time.Millisecond)
	if err := c.RestartShard(0); err != nil {
		t.Fatalf("restart shard 0: %v", err)
	}
	<-done

	got := mergedReport(t, c, len(clusterSessions))
	for name, b := range want {
		if !bytes.Equal(got[name], b) {
			t.Errorf("%s: killed-and-restarted cluster differs from single-shard run", name)
		}
	}

	// Per-session artifacts: every session pushed the same stream, so any
	// shard's linkedlist profiles must match the offline reference at
	// every worker count.
	var artifacts map[string][]byte
	for _, final := range c.FinalDirs() {
		outDir := filepath.Join(filepath.Dir(final), "out")
		if _, err := os.Stat(filepath.Join(outDir, "linkedlist.whomp")); err == nil {
			artifacts = readProfileArtifacts(t, outDir, "linkedlist")
			break
		}
	}
	if artifacts == nil {
		t.Fatal("no shard produced session artifacts")
	}
	for _, workers := range []int{1, 2, 8} {
		ref := offlineReference(t, "linkedlist", buf, sites, workers)
		for ext, b := range ref {
			if !bytes.Equal(artifacts[ext], b) {
				t.Errorf("workers=%d %s: cluster session output differs from offline run", workers, ext)
			}
		}
	}
}

// TestSoakClusterRouterKillRestart kills the router mid-stream — every
// in-flight splice resets — restarts it on the same address, and
// requires the clients' retry loops to carry every stream to completion
// with the merged report byte-identical to the unfaulted reference.
func TestSoakClusterRouterKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak")
	}
	testutil.LeakCheck(t)
	frames, sites, _ := netSoakFrames(t, "linkedlist", 64)
	want := singleShardReference(t, frames, sites)

	c, err := serve.NewCluster(serve.ClusterConfig{
		Dir:    t.TempDir(),
		Shards: 2,
		Shard:  serve.Config{CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pushAll(t, c.Addr(), clusterSessions, frames, sites)
	}()

	waitForCheckpoint(t, c)
	c.KillRouter()
	time.Sleep(50 * time.Millisecond)
	if err := c.RestartRouter(); err != nil {
		t.Fatalf("restart router: %v", err)
	}
	<-done

	got := mergedReport(t, c, len(clusterSessions))
	for name, b := range want {
		if !bytes.Equal(got[name], b) {
			t.Errorf("%s: router-killed cluster differs from single-shard run", name)
		}
	}
}

// wrapListener applies a conn wrapper to every accepted connection —
// the hook for per-connection shard faults.
type wrapListener struct {
	net.Listener
	wrap func(net.Conn) net.Conn
}

func (l *wrapListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.wrap(conn), nil
}

// shardTier is a hand-built shard+router deployment, used where the
// fault must be injected into a shard's listener — the Cluster wrapper
// owns its listeners, so these tests assemble the tiers themselves.
type shardTier struct {
	shards  []*netSoakServer
	outDirs []string
	router  *serve.Router
	addr    string
	done    chan error
}

func startShardTier(t testing.TB, lns []net.Listener, shardCfg serve.Config) *shardTier {
	t.Helper()
	tier := &shardTier{done: make(chan error, 1)}
	var addrs []string
	for i, ln := range lns {
		cfg := shardCfg
		cfg.CheckpointDir = filepath.Join(t.TempDir(), fmt.Sprintf("ck%d", i))
		cfg.OutputDir = filepath.Join(t.TempDir(), fmt.Sprintf("out%d", i))
		srv, err := serve.New(ln, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := &netSoakServer{srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
		go func() { s.done <- srv.Serve() }()
		tier.shards = append(tier.shards, s)
		tier.outDirs = append(tier.outDirs, cfg.OutputDir)
		addrs = append(addrs, s.addr)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r, err := serve.NewRouter(rln, serve.RouterConfig{
		Shards:           addrs,
		ProbeBackoffBase: 5 * time.Millisecond, ProbeBackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tier.router, tier.addr = r, rln.Addr().String()
	go func() { tier.done <- r.Serve() }()
	return tier
}

func (tier *shardTier) shutdown(t testing.TB) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tier.router.Shutdown(ctx); err != nil {
		t.Errorf("router shutdown: %v", err)
	}
	<-tier.done
	for _, s := range tier.shards {
		if err := s.srv.Shutdown(ctx); err != nil {
			t.Errorf("shard shutdown: %v", err)
		}
		<-s.done
	}
}

// TestSoakClusterFaultClasses drives streams through each cluster fault
// class. Flapping and partitioned shards must end in clean retries that
// complete the stream; a slow shard must read as degraded throughput —
// one attempt, never a failover; a fully dead cluster must end in the
// typed ExhaustedError. Always without hangs, panics, or leaks.
func TestSoakClusterFaultClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak")
	}
	const workload = "linkedlist"
	frames, sites, buf := netSoakFrames(t, workload, 64)
	want := offlineReference(t, workload, buf, sites, 2)

	checkArtifacts := func(t *testing.T, tier *shardTier, session string) {
		t.Helper()
		var got map[string][]byte
		for _, outDir := range tier.outDirs {
			if _, err := os.Stat(filepath.Join(outDir, workload+".whomp")); err == nil {
				got = readProfileArtifacts(t, outDir, workload)
				break
			}
		}
		if got == nil {
			t.Fatalf("session %s left no artifacts on any shard", session)
		}
		for ext, b := range want {
			if !bytes.Equal(got[ext], b) {
				t.Errorf("%s: output differs from offline reference", ext)
			}
		}
	}

	t.Run("flapping-shard", func(t *testing.T) {
		testutil.LeakCheck(t)
		lnA, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lnB, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// Shard A serves one connection then refuses two, forever; the
		// router's state machine keeps flipping it Down and probing it
		// back Up, and sessions must complete regardless of which side of
		// the flap they land on.
		tier := startShardTier(t, []net.Listener{
			faultinject.FlappingListener(lnA, 1, 2), lnB,
		}, serve.Config{CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond})
		pushAll(t, tier.addr, []string{"flap-a", "flap-b", "flap-c", "flap-d"}, frames, sites)
		tier.shutdown(t)
		checkArtifacts(t, tier, "flap-a")
	})

	t.Run("slow-shard", func(t *testing.T) {
		testutil.LeakCheck(t)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tier := startShardTier(t, []net.Listener{
			&wrapListener{Listener: ln, wrap: func(c net.Conn) net.Conn {
				return faultinject.SlowConn(c, time.Millisecond)
			}},
		}, serve.Config{CheckpointEvery: 8})
		stats, err := serve.Push(context.Background(), serve.ClientConfig{
			Addr: tier.addr, SessionID: "slow", Workload: workload, Sites: sites,
			MaxAttempts: 3, AttemptTimeout: 30 * time.Second,
		}, frames)
		if err != nil {
			t.Fatalf("push through slow shard: %v", err)
		}
		// Slowness is degraded throughput, never death: one attempt, no
		// failover, no retry.
		if stats.Attempts != 1 {
			t.Errorf("slow shard forced %d attempts, want 1 (slowness misread as failure)", stats.Attempts)
		}
		tier.shutdown(t)
		checkArtifacts(t, tier, "slow")
	})

	t.Run("partitioned-shard", func(t *testing.T) {
		testutil.LeakCheck(t)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// Every shard connection black-holes after 8KiB: bytes stop,
		// nothing closes. The client's attempt timeout is the only escape;
		// each reconnect resumes from the durable cursor, so the stream
		// advances partition by partition.
		tier := startShardTier(t, []net.Listener{
			&wrapListener{Listener: ln, wrap: func(c net.Conn) net.Conn {
				return faultinject.PartitionConn(c, 8<<10, 100*time.Millisecond)
			}},
		}, serve.Config{
			CheckpointEvery: 2, CheckpointInterval: 5 * time.Millisecond,
			IdleTimeout: 250 * time.Millisecond,
		})
		stats, err := serve.Push(context.Background(), serve.ClientConfig{
			Addr: tier.addr, SessionID: "part", Workload: workload, Sites: sites,
			MaxAttempts: 50, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			AttemptTimeout: 500 * time.Millisecond,
		}, frames)
		if err != nil {
			t.Fatalf("push through partitioned shard: %v", err)
		}
		if stats.Attempts < 2 {
			t.Errorf("partition did not force a retry (%d attempts)", stats.Attempts)
		}
		tier.shutdown(t)
		checkArtifacts(t, tier, "part")
	})

	t.Run("all-shards-dead", func(t *testing.T) {
		testutil.LeakCheck(t)
		// Two dead shard addresses: the router answers every Hello with
		// Retry, and the client's budget must end it with the typed
		// degraded error — not a hang.
		dead := func() string {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close()
			return addr
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		r, err := serve.NewRouter(rln, serve.RouterConfig{
			Shards:     []string{dead(), dead()},
			RetryAfter: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rdone := make(chan error, 1)
		go func() { rdone <- r.Serve() }()
		start := time.Now()
		_, err = serve.Push(context.Background(), serve.ClientConfig{
			Addr: rln.Addr().String(), SessionID: "doomed", Workload: workload, Sites: sites,
			MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
			AttemptTimeout: time.Second,
		}, frames)
		var ex *serve.ExhaustedError
		if !errors.As(err, &ex) {
			t.Fatalf("want ExhaustedError, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("exhaustion took %v — backoff runaway", elapsed)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
		<-rdone
	})
}
