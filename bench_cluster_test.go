package ormprof

// Cluster ingest scaling: ≥1000 concurrent sessions pushed through the
// router into 1, 2, and 4 local shards. The claim under measurement is
// near-linear ingest scaling with shard count — the router only splices
// bytes, every shard runs its own sessions, and nothing serializes
// cross-shard — so sessions/s at 4 shards should approach 4× the
// single-shard figure (modulo the shared loopback and disk). The
// maintained numbers live in docs/PERFORMANCE.md.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ormprof/internal/serve"
)

func BenchmarkClusterIngest(b *testing.B) {
	const sessions = 1000
	frames, sites, _ := netSoakFrames(b, "linkedlist", 256)
	var payload int64
	for _, f := range frames {
		payload += int64(len(f))
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(payload * sessions)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := serve.NewCluster(serve.ClusterConfig{
					Dir:    b.TempDir(),
					Shards: shards,
					// Admission must not throttle the fan-in: the bench
					// measures ingest scaling, not the retry loop.
					Shard: serve.Config{MaxSessions: 2 * sessions},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()

				var wg sync.WaitGroup
				errs := make(chan error, sessions)
				for s := 0; s < sessions; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						if _, err := serve.Push(context.Background(), serve.ClientConfig{
							Addr:      c.Addr(),
							SessionID: fmt.Sprintf("bench-%d-%d", i, s),
							Workload:  "linkedlist", Sites: sites,
						}, frames); err != nil {
							errs <- err
						}
					}(s)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}

				b.StopTimer()
				ctx, cancel := context.WithCancel(context.Background())
				err = c.Shutdown(ctx)
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}
