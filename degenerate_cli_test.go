package ormprof

// Degenerate-input coverage: a header-only trace — valid header, zero
// frames — is the edge every reader hits first and every off-by-one
// breaks last. Both the current v3 format and the legacy v2 format must
// sail through every tool with exit code 0 and empty-but-well-formed
// output, not a crash, a non-zero exit, or garbage.

import (
	"os"
	"path/filepath"
	"testing"

	"ormprof/internal/tracefmt"
)

// writeHeaderOnly writes a trace file containing only a header (zero
// frames) for the given format version and returns its path. The v2
// variant is the v3 header with the version byte rewritten — the header
// layout is identical across both versions.
func writeHeaderOnly(t *testing.T, dir string, version int) string {
	t.Helper()
	path := filepath.Join(dir, "empty.ormtrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := tracefmt.NewWriter(f, tracefmt.WithName("empty"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if version != tracefmt.Version {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(tracefmt.Magic)] = byte(version)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestHeaderOnlyTraceAllTools(t *testing.T) {
	for _, tc := range []struct {
		name    string
		version int
	}{
		{"v3", tracefmt.Version},
		{"v2", tracefmt.VersionNoChecksum},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeHeaderOnly(t, t.TempDir(), tc.version)

			out := runTool(t, "tracecat", "-verify", path)
			wantContains(t, out, "OK: 0 frames, 0 events, no damage")

			out = runTool(t, "tracecat", "-stats", path)
			wantContains(t, out, `workload "empty"`, "0 events: 0 loads, 0 stores, 0 allocs, 0 frees")

			out = runTool(t, "tracecat", "-count", path)
			wantContains(t, out, "0")

			out = runTool(t, "whomp", "-replay", path)
			wantContains(t, out, "workload empty: 0 accesses, 0 objects in 0 groups")

			out = runTool(t, "leap", "-replay", path)
			wantContains(t, out, "workload empty: 0 accesses, 0 streams, 0 LMADs")

			out = runTool(t, "stridescan", "-replay", path)
			wantContains(t, out, "workload empty: no strongly strided instructions")

			out = runTool(t, "phasescan", "-replay", path)
			wantContains(t, out, "Phases")

			out = runTool(t, "mdep", "-replay", path)
			wantContains(t, out, "empty — LEAP error distribution (0 pairs)")

			out = runTool(t, "layoutopt", "-replay", path)
			wantContains(t, out, "workload empty, 0 accesses")

			// The optimize loop on a header-only trace: an empty (but
			// valid) plan, zero misses on both sides.
			plan := filepath.Join(t.TempDir(), "empty.ormplan")
			out = runTool(t, "ormprof", "optimize", "-replay", path, "-plan", plan)
			wantContains(t, out, "workload empty: 0 events, 0 accesses",
				"plan: 0 field orders, 0 placements, 0 prefetch rules")
			if _, err := os.Stat(plan); err != nil {
				t.Errorf("optimize did not write the plan artifact: %v", err)
			}

			out = runTool(t, "ormprof", "translate", "-replay", path)
			wantContains(t, out, "translated 0 accesses (0 unmapped)")

			out = runTool(t, "ormprof", "inspect", path)
			wantContains(t, out, `workload "empty"`, "0 events")
		})
	}
}
