// Package workloads provides the seven synthetic benchmark programs that
// stand in for the paper's SPEC2000 benchmarks (164.gzip, 175.vpr, 181.mcf,
// 186.crafty, 197.parser, 256.bzip2, 300.twolf).
//
// Each program mimics the dominant memory idiom of its namesake — sliding
// windows and hash probes for gzip, pointer chasing for mcf, allocation
// churn for parser, block sorting for bzip2, and so on — because the paper's
// evaluation depends on each benchmark's mixture of regular (strided,
// repeating) and irregular (hashed, data-dependent) access behaviour rather
// than on the benchmarks' outputs. All programs are deterministic given
// their seed.
package workloads

import (
	"fmt"
	"sort"

	"ormprof/internal/memsim"
)

// Config scales and seeds a workload.
type Config struct {
	// Scale multiplies the workload size; 1 is test-sized (roughly 10⁵
	// accesses per benchmark), larger values approach paper-sized runs.
	Scale int
	// Seed drives all workload-internal randomness.
	Seed int64
	// IndividualAlloc switches pool-carving workloads (197.parser) to
	// allocating each record separately — the alternative policy of the
	// paper's footnote 2 ("manually target the custom alloc/dealloc
	// functions rather than ... the standard malloc/free"). The default
	// treats custom alloc pools as single objects, as the paper chose.
	IndividualAlloc bool
}

// DefaultConfig is the test-sized configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 42} }

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// Names lists the seven benchmarks in the paper's Table 1 order.
func Names() []string {
	return []string{"164.gzip", "175.vpr", "181.mcf", "186.crafty", "197.parser", "256.bzip2", "300.twolf"}
}

// New constructs the named workload.
func New(name string, cfg Config) (memsim.Program, error) {
	cfg = cfg.normalized()
	switch name {
	case "164.gzip":
		return newGzip(cfg), nil
	case "175.vpr":
		return newVPR(cfg), nil
	case "181.mcf":
		return newMCF(cfg), nil
	case "186.crafty":
		return newCrafty(cfg), nil
	case "197.parser":
		return newParser(cfg), nil
	case "256.bzip2":
		return newBzip2(cfg), nil
	case "300.twolf":
		return newTwolf(cfg), nil
	case "183.equake":
		return newEquake(cfg), nil
	case "linkedlist":
		return NewLinkedList(cfg), nil
	case "adversarial":
		return NewAdversarial(cfg), nil
	case "hotcold":
		return NewHotCold(cfg), nil
	case "chase":
		return NewChase(cfg), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q (known: %v)",
			name, append(Names(), "hotcold", "chase", "183.equake", "linkedlist", "adversarial"))
	}
}

// OptimizeNames lists the nine workloads the optimization loop is evaluated
// on: the seven Table 1 benchmarks plus the two layout showcases — hotcold
// (clustering visibly wins) and chase (provably unimprovable data-dependent
// chasing).
func OptimizeNames() []string {
	return append(Names(), "hotcold", "chase")
}

// All constructs the seven benchmarks in Table 1 order.
func All(cfg Config) []memsim.Program {
	names := Names()
	out := make([]memsim.Program, len(names))
	for i, n := range names {
		p, err := New(n, cfg)
		if err != nil {
			panic(err) // unreachable: Names() only returns known workloads
		}
		out[i] = p
	}
	return out
}

// sortedAddrs returns map keys in ascending order (deterministic frees).
func sortedAddrs[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
