package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// bzip2Like mimics 256.bzip2: block-sorting compression. Each block is
// loaded sequentially, sorted with data-dependent comparisons and swaps
// (irregular), then swept again for the move-to-front and RLE stages
// (strided). The mix yields moderate LMAD capture with a high compression
// ratio, as in Table 1.
type bzip2Like struct {
	cfg Config
}

func newBzip2(cfg Config) *bzip2Like { return &bzip2Like{cfg: cfg} }

func (b *bzip2Like) Name() string { return "256.bzip2" }

const (
	bzLdBlockSeq trace.InstrID = iota + 600
	bzStBlockSeq
	bzLdSortA
	bzLdSortB
	bzStSortA
	bzStSortB
	bzLdPtr
	bzStPtr
	bzLdMTF
	bzStFreq
	bzLdFreq
)

const (
	bzSiteBlock trace.SiteID = iota + 50
	bzSitePtr
	bzSiteFreq
)

func (b *bzip2Like) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(b.cfg.Seed + 5))
	blockLen := 2048 * b.cfg.Scale
	nBlocks := 6

	block := m.Alloc(bzSiteBlock, uint32(blockLen))
	ptrs := m.Alloc(bzSitePtr, uint32(blockLen*4))
	freq := m.Alloc(bzSiteFreq, 256*4)

	for blk := 0; blk < nBlocks; blk++ {
		// Fill the block (sequential stores) and initialize pointers.
		for i := 0; i < blockLen; i++ {
			m.Store(bzStBlockSeq, block+trace.Addr(i), 1)
			m.Store(bzStPtr, ptrs+trace.Addr(i*4), 4)
		}

		// "Sort": shell-sort-like passes with data-dependent swaps of the
		// pointer array, comparing bytes at pointed-to positions.
		// Each gap level is a distinct specialization of the sort inner
		// loop, as in bzip2's unrolled sorters (variant IDs per level).
		level := 0
		for gap := blockLen / 2; gap > 0; gap /= 4 {
			v := trace.InstrID(1000 * (level % 3))
			level++
			for i := gap; i < blockLen; i += 1 + rng.Intn(3) {
				pa := rng.Intn(blockLen)
				pb := rng.Intn(blockLen)
				m.Load(bzLdPtr+v, ptrs+trace.Addr(i*4), 4)
				m.Load(bzLdSortA+v, block+trace.Addr(pa), 1)
				m.Load(bzLdSortB+v, block+trace.Addr(pb), 1)
				if pa > pb {
					m.Store(bzStSortA+v, ptrs+trace.Addr(i*4), 4)
					m.Store(bzStSortB+v, ptrs+trace.Addr((i-gap)*4), 4)
				}
			}
		}

		// MTF + frequency stage: sequential scan of sorted pointers with
		// small-table frequency updates.
		for i := 0; i < blockLen; i++ {
			m.Load(bzLdMTF, ptrs+trace.Addr(i*4), 4)
			sym := rng.Intn(256)
			m.Load(bzLdFreq, freq+trace.Addr(sym*4), 4)
			m.Store(bzStFreq, freq+trace.Addr(sym*4), 4)
			m.Load(bzLdBlockSeq, block+trace.Addr(i), 1)
		}
	}

	m.Free(freq)
	m.Free(ptrs)
	m.Free(block)
}
