package workloads

import (
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// Adversarial is the resource-governance stress workload: it is built to
// maximize grammar growth in every WHOMP dimension at once. Accesses walk
// objects, offsets, and instructions in a seeded pseudo-random order, so
// digrams almost never repeat and the Sequitur grammars grow nearly
// linearly with the trace instead of compressing — the worst realistic
// case for the profiler's memory footprint. Allocation churn keeps the
// OMC's serial counters and live-object table moving too.
//
// The distinct-instruction and distinct-site counts stay bounded (the
// diversity is in the ordering, not the alphabet), so the cheaper
// degradation rungs — stride-only profiling and per-site counters — have
// small, stable footprints. That separation is what the governance soak
// relies on: each rung of the ladder is reachable with a budget an order
// of magnitude below the rung above it.
type Adversarial struct {
	cfg Config
	// Accesses is the number of load/store events.
	Accesses int
	// Objects is the size of the live-object working set.
	Objects int
}

// Alphabet sizes. Sites and instructions are bounded so the degraded
// rungs stay cheap; objects churn so serials keep climbing.
const (
	advSites  = 96
	advInstrs = 192

	// advSiteBase keeps the adversarial site IDs clear of the static
	// sites the Machine defines.
	advSiteBase trace.SiteID = 1000
)

// NewAdversarial builds the stress program with sizes derived from cfg.
func NewAdversarial(cfg Config) *Adversarial {
	cfg = cfg.normalized()
	return &Adversarial{
		cfg:      cfg,
		Accesses: 100_000 * cfg.Scale,
		Objects:  512,
	}
}

// Name implements memsim.Program.
func (a *Adversarial) Name() string { return "adversarial" }

// advRand is a splitmix64 step: deterministic, uniform enough to defeat
// digram reuse, and independent of math/rand's generator changes.
func advRand(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run implements memsim.Program.
func (a *Adversarial) Run(m *memsim.Machine) {
	rng := uint64(a.cfg.Seed)*0x9e3779b97f4a7c15 + 1
	type obj struct {
		addr trace.Addr
		size uint32
	}
	live := make([]obj, a.Objects)
	alloc := func(i int) {
		r := advRand(&rng)
		site := advSiteBase + trace.SiteID(r%advSites)
		size := 64 + uint32(r>>32%8)*64 // 64..512 bytes, 8-aligned offsets fit
		live[i] = obj{addr: m.Alloc(site, size), size: size}
	}
	for i := range live {
		alloc(i)
	}

	for n := 0; n < a.Accesses; n++ {
		r := advRand(&rng)
		o := live[r%uint64(a.Objects)]
		instr := trace.InstrID(1 + (r>>24)%advInstrs)
		off := trace.Addr((r >> 40 % uint64(o.size/8)) * 8)
		if r>>16%4 == 0 {
			m.Store(instr, o.addr+off, 8)
		} else {
			m.Load(instr, o.addr+off, 8)
		}
		// Churn: replace one object every few accesses, so serial numbers
		// keep advancing and the OMC table never goes quiet.
		if r%8 == 0 {
			i := int(r >> 8 % uint64(a.Objects))
			m.Free(live[i].addr)
			alloc(i)
		}
	}

	for _, o := range live {
		m.Free(o.addr)
	}
}
