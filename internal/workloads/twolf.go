package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// twolfLike mimics 300.twolf: standard-cell placement and routing. Cells
// are small heap records indexed through a grid occupancy array; the
// annealer perturbs random cells and re-evaluates their neighbourhoods with
// short strided scans over grid rows. Accesses split roughly evenly between
// strided grid sweeps and irregular cell hops (Table 1 reports 66.5 % of
// accesses captured).
type twolfLike struct {
	cfg Config
}

func newTwolf(cfg Config) *twolfLike { return &twolfLike{cfg: cfg} }

func (t *twolfLike) Name() string { return "300.twolf" }

// Cell record layout (24 bytes): 0 x(4) 4 y(4) 8 cost(8) 16 orient(4)
// 20 pad(4).
const (
	twCellSize   = 24
	twOffX       = 0
	twOffY       = 4
	twOffCost    = 8
	twOffOrient  = 16
	twGridStride = 4
)

const (
	twLdGrid trace.InstrID = iota + 700
	twStGrid
	twLdCellX
	twLdCellY
	twStCellX
	twStCellY
	twLdCellCost
	twStCellCost
	twStCellOrient
	twLdRowScan
	twStRowCost
	twLdRowCost
	twLdGridWire
)

const (
	twSiteCell trace.SiteID = iota + 60
	twSiteGrid
	twSiteRowCost
)

func (t *twolfLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(t.cfg.Seed + 6))
	gridW, gridH := 48, 32
	nCells := 256 * t.cfg.Scale

	grid := m.Alloc(twSiteGrid, uint32(gridW*gridH*twGridStride))
	cells := make([]trace.Addr, nCells)
	for i := range cells {
		cells[i] = m.Alloc(twSiteCell, twCellSize)
	}

	gridAt := func(x, y int) trace.Addr {
		return grid + trace.Addr((y*gridW+x)*twGridStride)
	}

	// Initial placement: write every cell and its grid slot.
	for i, c := range cells {
		m.Store(twStCellX, c+twOffX, 4)
		m.Store(twStCellY, c+twOffY, 4)
		m.Store(twStCellCost, c+twOffCost, 8)
		m.Store(twStGrid, gridAt(i%gridW, (i/gridW)%gridH), 4)
	}

	// Perturbation loop, with a full cost sweep at each temperature step
	// (twolf recomputes row costs and cell penalties wholesale), which is
	// where most of its strided access mass comes from. The first sweep
	// runs before any random move so the sweep patterns are established
	// while descriptor budget remains.
	moves := 60 * nCells
	sweepEvery := nCells / 2
	for mv := 0; mv < moves; mv++ {
		if mv%sweepEvery == 0 {
			for g := 0; g < gridW*gridH; g++ {
				m.Load(twLdRowScan, grid+trace.Addr(g*twGridStride), 4)
			}
			for _, c := range cells {
				m.Load(twLdCellCost, c+twOffCost, 8)
				m.Store(twStCellCost, c+twOffCost, 8)
			}
		}
		ci := rng.Intn(nCells)
		c := cells[ci]
		m.Load(twLdCellX, c+twOffX, 4)
		m.Load(twLdCellY, c+twOffY, 4)

		// Evaluate the neighbourhood: scan a grid row segment (strided).
		x, y := rng.Intn(gridW-8), rng.Intn(gridH)
		for dx := 0; dx < 8; dx++ {
			m.Load(twLdRowScan, gridAt(x+dx, y), 4)
		}
		m.Load(twLdGrid, gridAt(rng.Intn(gridW), rng.Intn(gridH)), 4)

		// Accept two thirds of moves.
		if rng.Intn(3) != 0 {
			m.Store(twStCellX, c+twOffX, 4)
			m.Store(twStCellY, c+twOffY, 4)
			m.Load(twLdCellCost, c+twOffCost, 8)
			m.Store(twStCellCost, c+twOffCost, 8)
			m.Store(twStGrid, gridAt(x, y), 4)
		} else if rng.Intn(4) == 0 {
			m.Store(twStCellOrient, c+twOffOrient, 4)
		}
	}

	// Wire-length audit (twolf's dimbox/wirecosts pass): accumulate
	// per-row costs from a full grid sweep, then read the summary back —
	// strided store→load pairs over the small row-cost array.
	rowCost := m.Alloc(twSiteRowCost, uint32(gridH*8))
	for pass := 0; pass < 4; pass++ {
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				m.Load(twLdGridWire, gridAt(x, y), 4)
			}
			m.Load(twLdRowCost, rowCost+trace.Addr(y*8), 8)
			m.Store(twStRowCost, rowCost+trace.Addr(y*8), 8)
		}
		for y := 0; y < gridH; y++ {
			m.Load(twLdRowCost, rowCost+trace.Addr(y*8), 8)
		}
	}
	m.Free(rowCost)

	for _, c := range cells {
		m.Free(c)
	}
	m.Free(grid)
}
