package workloads

import (
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// Chase is the documented-unimprovable case: pointer chasing over
// line-sized nodes in a data-dependent order that changes every epoch.
//
// Each node is exactly one cache line (64 bytes, line-aligned under both
// the original allocator and the packed plan region), so any placement maps
// one node to one line — clustering can only rename lines, never merge
// them. And because each epoch visits every node exactly once in a fresh
// pseudo-random permutation (modeling next-pointers recomputed from loaded
// data), no single ordering of nodes in memory correlates with more than
// one epoch: first-touch packing optimizes epoch 0's order and is as random
// as the original layout for every later epoch. With a working set well
// beyond L1, the miss rate is a function of set sizes alone, which is why
// `ormprof optimize` measures ~0% improvement here — and should.
type Chase struct {
	cfg Config
	// Nodes is the pool size.
	Nodes int
	// Epochs is how many full permutation walks run.
	Epochs int
}

// NewChase builds the program with sizes derived from cfg.
func NewChase(cfg Config) *Chase {
	cfg = cfg.normalized()
	return &Chase{cfg: cfg, Nodes: 2048 * cfg.Scale, Epochs: 12}
}

// Name implements memsim.Program.
func (c *Chase) Name() string { return "chase" }

// Node layout (64 bytes = one line): 0 value(8) 8 next(8) 16..63 payload.
const chNodeSize = 64

// Instruction and site IDs.
const (
	ChLdValue trace.InstrID = 1 // load node→value
	ChLdNext  trace.InstrID = 2 // load node→next
	ChStNext  trace.InstrID = 3 // epoch setup: rewrite node→next

	ChSiteNode trace.SiteID = 90
)

// Run implements memsim.Program.
func (c *Chase) Run(m *memsim.Machine) {
	nodes := make([]trace.Addr, c.Nodes)
	for i := range nodes {
		nodes[i] = m.Alloc(ChSiteNode, chNodeSize)
	}

	rng := uint64(c.cfg.Seed)*0x9e3779b97f4a7c15 + 1
	perm := make([]int, c.Nodes)
	for e := 0; e < c.Epochs; e++ {
		// The program relinks the list into a new data-dependent order
		// (stores to node→next), then chases it.
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := int(advRand(&rng) % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
			m.Store(ChStNext, nodes[perm[i]]+8, 8)
		}
		for _, idx := range perm {
			m.Load(ChLdValue, nodes[idx], 8)
			m.Load(ChLdNext, nodes[idx]+8, 8)
		}
	}

	for _, n := range nodes {
		m.Free(n)
	}
}
