package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// gzipLike mimics 164.gzip: LZ77-style compression with a sliding window —
// long sequential scans over the input buffer (strongly strided), hash-head
// probes into a chain table (irregular), and sequential output writes.
// Most accesses are strided, so LEAP captures the bulk of them (the paper
// reports 57 % of accesses captured).
type gzipLike struct {
	cfg Config
}

func newGzip(cfg Config) *gzipLike { return &gzipLike{cfg: cfg} }

func (g *gzipLike) Name() string { return "164.gzip" }

// Instruction IDs. Each workload numbers its static loads/stores the way a
// compiler would number probe sites.
const (
	gzLdInput trace.InstrID = iota + 100
	gzLdWindow
	gzLdHashHead
	gzStHashHead
	gzLdChain
	gzStChain
	gzStOutput
	gzLdMatchA
	gzLdMatchB
	gzLdOutput
	gzStFreq
	gzLdFreq
	gzStCode
	gzLdCode
	gzLdOutputEmit
	gzStPacked
)

// Allocation sites.
const (
	gzSiteInput trace.SiteID = iota + 1
	gzSiteHash
	gzSiteChain
	gzSiteOutput
	gzSiteFreq
	gzSiteCode
	gzSitePacked
)

func (g *gzipLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	const (
		hashBits  = 10
		hashSize  = 1 << hashBits
		windowLen = 1 << 12
	)
	inputLen := uint32(16*1024) * uint32(g.cfg.Scale)

	input := m.Alloc(gzSiteInput, inputLen)
	hash := m.Alloc(gzSiteHash, hashSize*4)
	chain := m.Alloc(gzSiteChain, windowLen*4)
	output := m.Alloc(gzSiteOutput, inputLen)

	outPos := uint32(0)
	// Deflate-style main loop: read input bytes, probe the hash chain, and
	// emit literals/matches.
	for pos := uint32(0); pos+4 < inputLen; pos++ {
		// Sequential input scan (strongly strided, stride 1).
		m.Load(gzLdInput, input+trace.Addr(pos), 1)

		// Hash of the next 3 "bytes": irregular probe.
		h := uint32(rng.Intn(hashSize))
		m.Load(gzLdHashHead, hash+trace.Addr(h*4), 4)
		m.Store(gzStHashHead, hash+trace.Addr(h*4), 4)

		// Walk a short chain in the window (bounded, data dependent).
		chainPos := pos % windowLen
		m.Store(gzStChain, chain+trace.Addr(chainPos*4), 4)
		for d := 0; d < rng.Intn(3); d++ {
			p := uint32(rng.Intn(int(windowLen)))
			m.Load(gzLdChain, chain+trace.Addr(p*4), 4)
			// Compare candidate match bytes in the window region of the
			// input (two pointers moving together: strided pair).
			if pos >= windowLen {
				back := pos - uint32(rng.Intn(int(windowLen)-1)) - 1
				m.Load(gzLdMatchA, input+trace.Addr(pos), 1)
				m.Load(gzLdMatchB, input+trace.Addr(back), 1)
			} else {
				m.Load(gzLdWindow, input+trace.Addr(pos%windowLen), 1)
			}
		}

		// Emit one output byte per input position (strided store).
		m.Store(gzStOutput, output+trace.Addr(outPos), 1)
		outPos++

		// Block flush: CRC over the output produced so far (long strided
		// scan from a fixed base, like gzip's crc32 update over each
		// flushed block).
		if pos%4096 == 4095 {
			for i := uint32(0); i < outPos; i++ {
				m.Load(gzLdOutput, output+trace.Addr(i), 1)
			}
		}
	}

	// Huffman stage, as in deflate's fixed/dynamic block emission: count
	// symbol frequencies over the emitted bytes, build the code table, then
	// re-read the output and write the bit-packed stream. The table build
	// and emit passes create high-frequency store→load pairs (the table is
	// written once and read per symbol) for the dependence experiments.
	freq := m.Alloc(gzSiteFreq, 286*4)
	codes := m.Alloc(gzSiteCode, 286*8)
	packed := m.Alloc(gzSitePacked, outPos)

	// Symbol indices follow the emitted bytes; our synthetic byte stream
	// cycles, so the table accesses stride through the table with
	// wrap-around (a pattern LMADs capture) rather than thrashing it.
	for i := uint32(0); i < outPos; i++ {
		m.Load(gzLdOutput, output+trace.Addr(i), 1)
		sym := i % 286
		m.Load(gzLdFreq, freq+trace.Addr(sym*4), 4)
		m.Store(gzStFreq, freq+trace.Addr(sym*4), 4)
	}
	for s := 0; s < 286; s++ {
		m.Load(gzLdFreq, freq+trace.Addr(s*4), 4)
		m.Store(gzStCode, codes+trace.Addr(s*8), 8)
	}
	for i := uint32(0); i < outPos; i++ {
		m.Load(gzLdOutputEmit, output+trace.Addr(i), 1)
		sym := (i * 7) % 286
		m.Load(gzLdCode, codes+trace.Addr(sym*8), 8)
		m.Store(gzStPacked, packed+trace.Addr(i), 1)
	}

	m.Free(packed)
	m.Free(codes)
	m.Free(freq)
	m.Free(input)
	m.Free(hash)
	m.Free(chain)
	m.Free(output)
}
