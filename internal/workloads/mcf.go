package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// mcfLike mimics 181.mcf: network-simplex pricing over a graph of node and
// arc records allocated on the heap and reached by pointer chasing. The
// traversal order is data dependent and the raw address sequence looks
// structureless, so LEAP captures very little of it in LMADs (the paper
// reports only 6.5 % of accesses captured) while the object-relative form
// still factors out the allocator artifacts.
type mcfLike struct {
	cfg Config
}

func newMCF(cfg Config) *mcfLike { return &mcfLike{cfg: cfg} }

func (m *mcfLike) Name() string { return "181.mcf" }

// Node record layout (48 bytes):
//
//	0  potential   (8)
//	8  firstArc    (8, index of first outgoing arc)
//	16 basicArc    (8)
//	24 flow        (8)
//	32 depth       (8)
//	40 mark        (8)
const (
	mcfNodeSize     = 48
	mcfOffPotential = 0
	mcfOffFirstArc  = 8
	mcfOffBasic     = 16
	mcfOffFlow      = 24
	mcfOffMark      = 40
)

// Arc record layout (40 bytes):
//
//	0  cost   (8)
//	8  tail   (8)
//	16 head   (8)
//	24 nextOut(8)
//	32 redCost(8)
const (
	mcfArcSize    = 40
	mcfOffCost    = 0
	mcfOffTail    = 8
	mcfOffHead    = 16
	mcfOffNextOut = 24
	mcfOffRedCost = 32
)

const (
	mcfLdNodePotential trace.InstrID = iota + 200
	mcfStNodePotential
	mcfLdNodeFirstArc
	mcfLdArcCost
	mcfLdArcHead
	mcfLdArcNext
	mcfStArcRedCost
	mcfLdArcTail
	mcfLdNodeFlow
	mcfStNodeFlow
	mcfStNodeMark
)

const (
	mcfSiteNode trace.SiteID = iota + 10
	mcfSiteArc
)

func (w *mcfLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(w.cfg.Seed + 1))
	nNodes := 600 * w.cfg.Scale
	arcsPerNode := 4

	// Build the network. As in the real 181.mcf, nodes and arcs live in
	// two big calloc'd arrays; the linked structure is woven through them
	// with indices, so pointer chasing stays *within* the two objects.
	nodeArr := m.Alloc(mcfSiteNode, uint32(nNodes*mcfNodeSize))
	arcArr := m.Alloc(mcfSiteArc, uint32(nNodes*arcsPerNode*mcfArcSize))
	nodeAddr := func(i int) trace.Addr { return nodeArr + trace.Addr(i*mcfNodeSize) }
	arcAddr := func(i int) trace.Addr { return arcArr + trace.Addr(i*mcfArcSize) }

	type arcMeta struct {
		head int
		next int // index into arcs, -1 terminates
	}
	arcs := make([]arcMeta, 0, nNodes*arcsPerNode)
	firstArc := make([]int, nNodes)
	for i := range firstArc {
		firstArc[i] = -1
	}
	for i := 0; i < nNodes; i++ {
		for j := 0; j < arcsPerNode; j++ {
			arcs = append(arcs, arcMeta{head: rng.Intn(nNodes), next: firstArc[i]})
			firstArc[i] = len(arcs) - 1
		}
	}

	// Pricing iterations: walk every node's arc list, compute reduced
	// costs, occasionally pivot (update potentials along a random path).
	iters := 12
	for it := 0; it < iters; it++ {
		// Alternate pricing strategies (mcf's primal/dual phases) carry
		// distinct instruction IDs.
		v := trace.InstrID(1000 * (it % 2))
		for i := 0; i < nNodes; i++ {
			m.Load(mcfLdNodeFirstArc+v, nodeAddr(i)+mcfOffFirstArc, 8)
			m.Load(mcfLdNodePotential+v, nodeAddr(i)+mcfOffPotential, 8)
			for ai := firstArc[i]; ai != -1; ai = arcs[ai].next {
				arc := &arcs[ai]
				a := arcAddr(ai)
				m.Load(mcfLdArcCost+v, a+mcfOffCost, 8)
				m.Load(mcfLdArcHead+v, a+mcfOffHead, 8)
				// Chase to the head node's potential: the irregular hop.
				m.Load(mcfLdNodePotential+v, nodeAddr(arc.head)+mcfOffPotential, 8)
				m.Store(mcfStArcRedCost+v, a+mcfOffRedCost, 8)
				m.Load(mcfLdArcNext+v, a+mcfOffNextOut, 8)
			}
		}
		// Pivot: follow a random path updating flows and potentials.
		cur := rng.Intn(nNodes)
		for step := 0; step < 40; step++ {
			ai := firstArc[cur]
			if ai == -1 {
				break
			}
			arc := &arcs[ai]
			m.Load(mcfLdArcTail, arcAddr(ai)+mcfOffTail, 8)
			m.Load(mcfLdNodeFlow, nodeAddr(cur)+mcfOffFlow, 8)
			m.Store(mcfStNodeFlow, nodeAddr(cur)+mcfOffFlow, 8)
			m.Store(mcfStNodePotential, nodeAddr(cur)+mcfOffPotential, 8)
			m.Store(mcfStNodeMark, nodeAddr(cur)+mcfOffMark, 8)
			cur = arc.head
		}
	}

	m.Free(arcArr)
	m.Free(nodeArr)
}
