package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// craftyLike mimics 186.crafty: a chess searcher dominated by statically
// allocated tables — bitboard attack tables read with data-dependent
// indices, a transposition table probed by hash, and move lists filled and
// scanned sequentially. Statics exercise WHOMP's symbol-table grouping path
// (one group per static symbol).
type craftyLike struct {
	cfg Config
}

func newCrafty(cfg Config) *craftyLike { return &craftyLike{cfg: cfg} }

func (c *craftyLike) Name() string { return "186.crafty" }

const (
	crLdAttackTable trace.InstrID = iota + 400
	crLdPieceSquare
	crLdTransTable
	crStTransTable
	crStMoveList
	crLdMoveList
	crLdHistory
	crStHistory
	crLdBoard
	crStBoard
	crStParams
	crLdParams
)

// Setup registers crafty's static tables before the machine starts, the way
// WHOMP reads sizes of statics from the compiler's symbol table (§3.1).
func (c *craftyLike) Setup(m *memsim.Machine) {
	m.DefineStatic("attack_table", 64*64*8)
	m.DefineStatic("piece_square", 12*64*4)
	m.DefineStatic("trans_table", 1<<14)
	m.DefineStatic("history", 4096*4)
	m.DefineStatic("board", 64*8)
	m.DefineStatic("search_params", 64)
}

func (c *craftyLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(c.cfg.Seed + 3))

	attack := m.StaticAddr("attack_table")
	pieceSquare := m.StaticAddr("piece_square")
	trans := m.StaticAddr("trans_table")
	history := m.StaticAddr("history")
	board := m.StaticAddr("board")

	moveList := m.Alloc(trace.SiteID(30), 256*8)

	// Search parameters are configured once and re-read at every node — a
	// loop-invariant load the §4 analysis should flag as removable.
	params := m.StaticAddr("search_params")
	m.Store(crStParams, params, 8)

	positions := 900 * c.cfg.Scale
	for p := 0; p < positions; p++ {
		m.Load(crLdParams, params, 8)
		// Opening/midgame/endgame evaluators are separate code, so their
		// probes carry distinct instruction IDs.
		v := trace.InstrID(1000 * (p % 3))
		// Probe the transposition table (hashed, irregular).
		h := rng.Intn(1 << 14 / 8)
		m.Load(crLdTransTable+v, trans+trace.Addr(h*8), 8)
		if rng.Intn(4) == 0 {
			m.Store(crStTransTable+v, trans+trace.Addr(h*8), 8)
		}

		// Generate moves: scan the board sequentially, look up attack
		// sets (data-dependent index), append to the move list (strided
		// store).
		nMoves := 0
		for sq := 0; sq < 64; sq++ {
			m.Load(crLdBoard+v, board+trace.Addr(sq*8), 8)
			piece := rng.Intn(12)
			m.Load(crLdPieceSquare+v, pieceSquare+trace.Addr((piece*64+sq)*4), 4)
			if rng.Intn(3) == 0 {
				att := rng.Intn(64 * 64)
				m.Load(crLdAttackTable+v, attack+trace.Addr(att*8), 8)
				m.Store(crStMoveList+v, moveList+trace.Addr(nMoves*8), 8)
				nMoves++
			}
		}

		// Score moves: sequential scan of the list plus history-heuristic
		// lookups (irregular).
		for i := 0; i < nMoves; i++ {
			m.Load(crLdMoveList+v, moveList+trace.Addr(i*8), 8)
			hh := rng.Intn(4096)
			m.Load(crLdHistory+v, history+trace.Addr(hh*4), 4)
			if rng.Intn(8) == 0 {
				m.Store(crStHistory+v, history+trace.Addr(hh*4), 4)
			}
		}

		// Make the best move on the board.
		m.Store(crStBoard+v, board+trace.Addr(rng.Intn(64)*8), 8)
	}

	m.Free(moveList)
}
