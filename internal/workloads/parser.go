package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// parserLike mimics 197.parser: per-sentence churn of small linked records
// that are allocated, linked, traversed, and freed. Like the real 197.parser
// (which carves records out of its own xalloc pools), each sentence's nodes
// live in one pool allocation — and, per the paper's footnote 2, the
// profiler treats the pool as a single object, so node accesses become
// offsets within the pool. The free-list allocator recycles pool addresses
// across sentences, so the raw address stream is full of false aliasing
// while the object-relative stream stays clean — the scenario of the
// paper's Figure 1. Traversals are field-regular (the paper reports 76 % of
// accesses captured by LMADs).
type parserLike struct {
	cfg Config
}

func newParser(cfg Config) *parserLike { return &parserLike{cfg: cfg} }

func (p *parserLike) Name() string { return "197.parser" }

// Word node layout (40 bytes): 0 token(8) 8 next(8) 16 left(8) 24 right(8)
// 32 score(8). The (token, score) field pair at offsets 0 and 32 is the
// field-reordering opportunity the offset grammar exposes (§3.2).
const (
	parseNodeSize = 40
	parseOffToken = 0
	parseOffNext  = 8
	parseOffLeft  = 16
	parseOffRight = 24
	parseOffScore = 32
)

// parsePoolWords is the pool capacity in nodes; sentences are at most this
// long.
const parsePoolWords = 32

const (
	paStToken trace.InstrID = iota + 500
	paStNext
	paLdToken
	paLdNext
	paLdLeft
	paLdRight
	paStScore
	paLdScore
	paLdDict
	paStLink
	paStScratch
	paLdScratch
)

const (
	paSitePool trace.SiteID = iota + 40
	paSiteDict
	paSiteLink
	paSiteScratch
)

func (p *parserLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(p.cfg.Seed + 4))

	dict := m.Alloc(paSiteDict, 8192*8)
	links := m.Alloc(paSiteLink, 512*8)

	// The node arena persists across sentences, as xalloc's does: the pool
	// is carved afresh for every sentence but the memory is reused in
	// place, so node offsets recur sentence after sentence. Under the
	// footnote-2 alternative policy (IndividualAlloc) every node is its
	// own heap object instead.
	var node func(i int) trace.Addr
	var pool trace.Addr
	var nodes []trace.Addr
	if p.cfg.IndividualAlloc {
		nodes = make([]trace.Addr, parsePoolWords)
		node = func(i int) trace.Addr { return nodes[i] }
	} else {
		pool = m.Alloc(paSitePool, parsePoolWords*parseNodeSize)
		node = func(i int) trace.Addr { return pool + trace.Addr(i*parseNodeSize) }
	}

	sentences := 120 * p.cfg.Scale
	for s := 0; s < sentences; s++ {
		nWords := 8 + rng.Intn(8)
		if p.cfg.IndividualAlloc {
			for i := 0; i < nWords; i++ {
				nodes[i] = m.Alloc(paSitePool, parseNodeSize)
			}
		}

		// Per-sentence scratch allocations (connector strings etc.): the
		// churn that makes raw addresses alias across sentences.
		scratch := m.Alloc(paSiteScratch, 64+uint32(rng.Intn(4))*32)
		m.Store(paStScratch, scratch, 8)
		m.Load(paLdScratch, scratch, 8)

		// Build the sentence: store each node's fields and link it to the
		// previous node.
		for i := 0; i < nWords; i++ {
			m.Store(paStToken, node(i)+parseOffToken, 8)
			if i > 0 {
				m.Store(paStNext, node(i-1)+parseOffNext, 8)
			}
			// Dictionary lookups for the word: hash probe plus a short
			// collision chain (hashed, irregular).
			probes := 2 + rng.Intn(3)
			for pr := 0; pr < probes; pr++ {
				m.Load(paLdDict, dict+trace.Addr(rng.Intn(8192)*8), 8)
			}
		}

		// Parse passes: traverse the list several times, reading linked
		// fields and scoring (the paper's Figure 3 access pattern).
		// Each pass is a different parsing stage, so its loads and stores
		// are distinct static instructions (variant IDs per stage).
		passes := 3
		for pass := 0; pass < passes; pass++ {
			v := trace.InstrID(1000 * pass)
			for i := 0; i < nWords; i++ {
				m.Load(paLdToken+v, node(i)+parseOffToken, 8)
				m.Load(paLdNext+v, node(i)+parseOffNext, 8)
				if rng.Intn(2) == 0 {
					m.Load(paLdLeft+v, node(i)+parseOffLeft, 8)
				} else {
					m.Load(paLdRight+v, node(i)+parseOffRight, 8)
				}
				m.Store(paStScore+v, node(i)+parseOffScore, 8)
			}
		}

		// Linkage evaluation: read scores back and record link choices.
		for i := 0; i < nWords; i++ {
			m.Load(paLdScore, node(i)+parseOffScore, 8)
			m.Store(paStLink, links+trace.Addr((i%512)*8), 8)
		}

		// Sentence done: release the scratch (free-list reuse next
		// sentence — the Figure 1 false-aliasing source).
		m.Free(scratch)
		if p.cfg.IndividualAlloc {
			for i := nWords - 1; i >= 0; i-- {
				m.Free(nodes[i])
			}
		}
	}

	if !p.cfg.IndividualAlloc {
		m.Free(pool)
	}
	m.Free(links)
	m.Free(dict)
}
