package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// equakeLike mimics 183.equake (SPECfp): a sparse matrix-vector kernel in
// CSR form iterated over time steps. The row-pointer and column-index
// arrays are read with perfect stride, while the gathered vector loads
// (x[col[j]]) are data-dependent — the canonical indirect-access mixture.
// It is a bonus workload (not part of the paper's seven SPECint
// benchmarks) used by tests and extension benchmarks; construct it by name
// ("183.equake") via New.
type equakeLike struct {
	cfg Config
}

func newEquake(cfg Config) *equakeLike { return &equakeLike{cfg: cfg} }

func (e *equakeLike) Name() string { return "183.equake" }

const (
	eqLdRowPtr trace.InstrID = iota + 800
	eqLdColIdx
	eqLdValue
	eqLdXGather
	eqStY
	eqLdY
	eqStX
	eqLdM
)

const (
	eqSiteRowPtr trace.SiteID = iota + 80
	eqSiteColIdx
	eqSiteValues
	eqSiteX
	eqSiteY
	eqSiteM
)

func (e *equakeLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(e.cfg.Seed + 8))
	nRows := 512 * e.cfg.Scale
	nnzPerRow := 8
	nnz := nRows * nnzPerRow

	rowPtr := m.Alloc(eqSiteRowPtr, uint32((nRows+1)*4))
	colIdx := m.Alloc(eqSiteColIdx, uint32(nnz*4))
	values := m.Alloc(eqSiteValues, uint32(nnz*8))
	x := m.Alloc(eqSiteX, uint32(nRows*8))
	y := m.Alloc(eqSiteY, uint32(nRows*8))
	mass := m.Alloc(eqSiteM, uint32(nRows*8))

	// Column structure: mostly near-diagonal with occasional far coupling,
	// like a finite-element mesh.
	cols := make([]int, nnz)
	for r := 0; r < nRows; r++ {
		for k := 0; k < nnzPerRow; k++ {
			c := r + k - nnzPerRow/2
			if rng.Intn(8) == 0 {
				c = rng.Intn(nRows)
			}
			if c < 0 {
				c = 0
			}
			if c >= nRows {
				c = nRows - 1
			}
			cols[r*nnzPerRow+k] = c
		}
	}

	timeSteps := 12
	for step := 0; step < timeSteps; step++ {
		// y = A·x : CSR traversal.
		for r := 0; r < nRows; r++ {
			m.Load(eqLdRowPtr, rowPtr+trace.Addr(r*4), 4)
			for k := 0; k < nnzPerRow; k++ {
				j := r*nnzPerRow + k
				m.Load(eqLdColIdx, colIdx+trace.Addr(j*4), 4)
				m.Load(eqLdValue, values+trace.Addr(j*8), 8)
				m.Load(eqLdXGather, x+trace.Addr(cols[j]*8), 8) // gather
			}
			m.Store(eqStY, y+trace.Addr(r*8), 8)
		}
		// Time integration: x ← f(x, y, M), all strided.
		for r := 0; r < nRows; r++ {
			m.Load(eqLdY, y+trace.Addr(r*8), 8)
			m.Load(eqLdM, mass+trace.Addr(r*8), 8)
			m.Store(eqStX, x+trace.Addr(r*8), 8)
		}
	}

	m.Free(mass)
	m.Free(y)
	m.Free(x)
	m.Free(values)
	m.Free(colIdx)
	m.Free(rowPtr)
}
