package workloads

import (
	"math/rand"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// vprLike mimics 175.vpr: simulated-annealing placement. Cells live in one
// large array-of-structs; nets are small heap arrays of cell indices. The
// annealer proposes random swaps, reads the nets of both cells, and writes
// positions back — random cell indexing (irregular at the object-serial
// level but field-regular at the offset level) plus short strided net scans.
type vprLike struct {
	cfg Config
}

func newVPR(cfg Config) *vprLike { return &vprLike{cfg: cfg} }

func (v *vprLike) Name() string { return "175.vpr" }

// Cell record layout (32 bytes): 0 x(4) 4 y(4) 8 cost(8) 16 netCount(4)
// 20 pad(4) 24 flags(8).
const (
	vprCellSize    = 32
	vprOffX        = 0
	vprOffY        = 4
	vprOffCost     = 8
	vprOffNetCount = 16
	vprOffFlags    = 24
)

const (
	vprLdCellX trace.InstrID = iota + 300
	vprLdCellY
	vprStCellX
	vprStCellY
	vprLdCellCost
	vprStCellCost
	vprLdCellNetCount
	vprLdNetElem
	vprLdNetBB
	vprStNetBB
	vprLdCellFlags
	vprLdRRNode
	vprStRRNode
	vprLdRouteNet
	vprStRouteLen
	vprLdRouteLen
)

const (
	vprSiteCells trace.SiteID = iota + 20
	vprSiteNet
	vprSiteBB
	vprSiteRR
	vprSiteRouteLen
)

func (v *vprLike) Run(m *memsim.Machine) {
	rng := rand.New(rand.NewSource(v.cfg.Seed + 2))
	nCells := 512 * v.cfg.Scale
	nNets := nCells / 2
	netLen := 6

	cells := m.Alloc(vprSiteCells, uint32(nCells*vprCellSize))
	nets := make([]trace.Addr, nNets)
	for i := range nets {
		nets[i] = m.Alloc(vprSiteNet, uint32(netLen*4))
	}
	bboxes := m.Alloc(vprSiteBB, uint32(nNets*16))

	cellAddr := func(i int) trace.Addr { return cells + trace.Addr(i*vprCellSize) }

	// Initial placement pass: sequential sweep writing every cell
	// (strongly strided stores).
	for i := 0; i < nCells; i++ {
		m.Store(vprStCellX, cellAddr(i)+vprOffX, 4)
		m.Store(vprStCellY, cellAddr(i)+vprOffY, 4)
		m.Store(vprStCellCost, cellAddr(i)+vprOffCost, 8)
	}

	// Annealing: random swap proposals, with a full cost-recomputation
	// sweep at each temperature step (vpr's recompute_bb_cost), which is
	// where most of its strided access mass comes from.
	moves := 18 * nCells
	sweepEvery := nCells
	for mv := 0; mv < moves; mv++ {
		if mv%sweepEvery == 0 {
			for n := 0; n < nNets; n++ {
				m.Load(vprLdNetBB, bboxes+trace.Addr(n*16), 8)
				m.Store(vprStNetBB, bboxes+trace.Addr(n*16), 8)
			}
			for i := 0; i < nCells; i++ {
				m.Load(vprLdCellCost, cellAddr(i)+vprOffCost, 8)
				m.Store(vprStCellCost, cellAddr(i)+vprOffCost, 8)
			}
		}
		a := rng.Intn(nCells)
		b := rng.Intn(nCells)

		m.Load(vprLdCellX, cellAddr(a)+vprOffX, 4)
		m.Load(vprLdCellY, cellAddr(a)+vprOffY, 4)
		m.Load(vprLdCellX, cellAddr(b)+vprOffX, 4)
		m.Load(vprLdCellY, cellAddr(b)+vprOffY, 4)
		m.Load(vprLdCellNetCount, cellAddr(a)+vprOffNetCount, 4)

		// Scan the nets touching cell a (model: a couple of random nets,
		// each scanned sequentially — short strided runs).
		for n := 0; n < 2; n++ {
			net := rng.Intn(nNets)
			for e := 0; e < netLen; e++ {
				m.Load(vprLdNetElem, nets[net]+trace.Addr(e*4), 4)
			}
			m.Load(vprLdNetBB, bboxes+trace.Addr(net*16), 8)
		}

		// Accept roughly half the moves: swap positions and update cost.
		if rng.Intn(2) == 0 {
			m.Store(vprStCellX, cellAddr(a)+vprOffX, 4)
			m.Store(vprStCellY, cellAddr(a)+vprOffY, 4)
			m.Store(vprStCellX, cellAddr(b)+vprOffX, 4)
			m.Store(vprStCellY, cellAddr(b)+vprOffY, 4)
			m.Load(vprLdCellCost, cellAddr(a)+vprOffCost, 8)
			m.Store(vprStCellCost, cellAddr(a)+vprOffCost, 8)
			net := rng.Intn(nNets)
			m.Store(vprStNetBB, bboxes+trace.Addr(net*16), 8)
		} else {
			m.Load(vprLdCellFlags, cellAddr(a)+vprOffFlags, 8)
		}
	}

	// Routing stage (vpr's second half): walk each net through the
	// routing-resource graph, marking occupancy along a meandering path,
	// then a wire-length audit re-reads every recorded route length.
	rrNodes := 4096
	rr := m.Alloc(vprSiteRR, uint32(rrNodes*8))
	routeLen := m.Alloc(vprSiteRouteLen, uint32(nNets*4))
	for n := 0; n < nNets; n++ {
		m.Load(vprLdRouteNet, nets[n], 4)
		cur := rng.Intn(rrNodes)
		hops := 4 + rng.Intn(12)
		for h := 0; h < hops; h++ {
			m.Load(vprLdRRNode, rr+trace.Addr(cur*8), 8)
			m.Store(vprStRRNode, rr+trace.Addr(cur*8), 8)
			// Mostly adjacent hops with occasional jumps, like expanding
			// a routing wavefront.
			if rng.Intn(8) == 0 {
				cur = rng.Intn(rrNodes)
			} else {
				cur = (cur + 1) % rrNodes
			}
		}
		m.Store(vprStRouteLen, routeLen+trace.Addr(n*4), 4)
	}
	for n := 0; n < nNets; n++ {
		m.Load(vprLdRouteLen, routeLen+trace.Addr(n*4), 4)
	}

	m.Free(routeLen)
	m.Free(rr)
	for _, n := range nets {
		m.Free(n)
	}
	m.Free(bboxes)
	m.Free(cells)
}
