package workloads

import (
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// HotCold is the clustering showcase: many small hot records are allocated
// interleaved with large cold buffers, then traversed repeatedly in
// allocation order. Under the original allocator each 16-byte hot record
// sits alone in its own cache line (the 256-byte cold neighbour pushes the
// next record 272 bytes away), so a traversal touches one line per record.
// First-touch clustering packs four hot records per line — the traversal's
// working set shrinks 4x, which the cache simulator sees directly. This is
// the cache-conscious data placement win of the paper's related work [4],
// built to be visible.
type HotCold struct {
	cfg Config
	// Records is the number of hot records.
	Records int
	// Traversals is how many times the hot set is walked.
	Traversals int
}

// NewHotCold builds the program with sizes derived from cfg.
func NewHotCold(cfg Config) *HotCold {
	cfg = cfg.normalized()
	return &HotCold{cfg: cfg, Records: 4096 * cfg.Scale, Traversals: 12}
}

// Name implements memsim.Program.
func (h *HotCold) Name() string { return "hotcold" }

// Hot record layout (16 bytes): 0 key(8) 8 count(8). Cold buffers are
// opaque 256-byte blocks.
const (
	hcHotSize  = 16
	hcColdSize = 256
)

// Instruction and site IDs.
const (
	HCLdKey   trace.InstrID = 1 // traversal: load record→key
	HCLdCount trace.InstrID = 2 // traversal: load record→count
	HCStInit  trace.InstrID = 3 // build: initialize record→key
	HCLdCold  trace.InstrID = 4 // one-time cold scan

	HCSiteHot  trace.SiteID = 80
	HCSiteCold trace.SiteID = 81
)

// Run implements memsim.Program.
func (h *HotCold) Run(m *memsim.Machine) {
	hot := make([]trace.Addr, h.Records)
	cold := make([]trace.Addr, h.Records)
	// Build: every hot record is immediately followed by a cold buffer, so
	// consecutive hot records never share a line. Only the hot records are
	// touched here — their first-touch order is the traversal order.
	for i := range hot {
		hot[i] = m.Alloc(HCSiteHot, hcHotSize)
		cold[i] = m.Alloc(HCSiteCold, hcColdSize)
		m.Store(HCStInit, hot[i], 8)
	}

	for t := 0; t < h.Traversals; t++ {
		for i := range hot {
			m.Load(HCLdKey, hot[i], 8)
			m.Load(HCLdCount, hot[i]+8, 8)
		}
		if t == 1 {
			// One cold scan, after the hot set's first-touch order is
			// established: the packed layout appends cold buffers after the
			// hot records instead of interleaving them.
			for i := range cold {
				m.Load(HCLdCold, cold[i], 8)
			}
		}
	}

	for i := range hot {
		m.Free(hot[i])
		m.Free(cold[i])
	}
}
