package workloads

import (
	"reflect"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		p, err := New(n, DefaultConfig())
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("nonesuch", DefaultConfig()); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := New("linkedlist", DefaultConfig()); err != nil {
		t.Errorf("linkedlist: %v", err)
	}
	if got := len(All(DefaultConfig())); got != 7 {
		t.Errorf("All returned %d programs", got)
	}
}

// TestWorkloadsRunClean executes every workload and checks trace sanity:
// every access lands inside a then-live object or the static segment, every
// alloc is eventually freed, and the trace is non-trivial.
func TestWorkloadsRunClean(t *testing.T) {
	progs := All(Config{Scale: 1, Seed: 7})
	progs = append(progs, NewLinkedList(Config{Scale: 1, Seed: 7}))
	for _, prog := range progs {
		prog := prog
		t.Run(prog.Name(), func(t *testing.T) {
			buf := &trace.Buffer{}
			memsim.Run(prog, buf)
			st := trace.Collect(buf.Events)
			if st.Accesses < 1000 {
				t.Errorf("only %d accesses", st.Accesses)
			}
			if st.Allocs == 0 {
				t.Error("no allocations")
			}
			if st.Allocs != st.Frees {
				t.Errorf("allocs %d != frees %d (End must free leaks)", st.Allocs, st.Frees)
			}
			if st.Loads == 0 || st.Stores == 0 {
				t.Error("workload must both load and store")
			}
			// The linked-list demo deliberately has just the paper's
			// Figure 3 instructions; the benchmarks are richer.
			if prog.Name() != "linkedlist" && st.Instrs < 5 {
				t.Errorf("only %d static instructions", st.Instrs)
			}

			// Every access must be inside a live object.
			live := make(map[trace.Addr]uint32)
			inLive := func(a trace.Addr) bool {
				for start, size := range live {
					if a >= start && a < start+trace.Addr(size) {
						return true
					}
				}
				return false
			}
			for i, e := range buf.Events {
				switch e.Kind {
				case trace.EvAlloc:
					live[e.Addr] = e.Size
				case trace.EvFree:
					delete(live, e.Addr)
				case trace.EvAccess:
					if !inLive(e.Addr) {
						t.Fatalf("event %d: access %v outside every live object", i, e)
					}
				}
			}
		})
	}
}

// TestDeterminism: identical configs must produce bit-identical traces.
func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		run := func() []trace.Event {
			p, err := New(name, Config{Scale: 1, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			buf := &trace.Buffer{}
			memsim.Run(p, buf)
			return buf.Events
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: traces differ across identical runs", name)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	run := func(seed int64) []trace.Event {
		p, _ := New("175.vpr", Config{Scale: 1, Seed: seed})
		buf := &trace.Buffer{}
		memsim.Run(p, buf)
		return buf.Events
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Error("different seeds produced identical traces")
	}
}

func TestScaleGrowsTrace(t *testing.T) {
	size := func(scale int) uint64 {
		p, _ := New("164.gzip", Config{Scale: scale, Seed: 1})
		buf := &trace.Buffer{}
		memsim.Run(p, buf)
		return trace.Collect(buf.Events).Accesses
	}
	s1, s2 := size(1), size(2)
	if s2 < s1*3/2 {
		t.Errorf("scale 2 (%d accesses) not meaningfully larger than scale 1 (%d)", s2, s1)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{Scale: 0}.normalized()
	if c.Scale != 1 {
		t.Errorf("Scale normalized to %d", c.Scale)
	}
}

func TestLinkedListShape(t *testing.T) {
	ll := NewLinkedList(Config{Scale: 1, Seed: 1})
	buf := &trace.Buffer{}
	memsim.Run(ll, buf)
	st := trace.Collect(buf.Events)
	// Every node is loaded twice per traversal (data + next).
	wantMin := uint64(ll.Nodes * ll.Traversals * 2)
	if st.Accesses < wantMin {
		t.Errorf("accesses = %d, want >= %d", st.Accesses, wantMin)
	}
}

func TestEquakeBonusWorkload(t *testing.T) {
	p, err := New("183.equake", Config{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(p, buf)
	st := trace.Collect(buf.Events)
	if st.Accesses < 100_000 {
		t.Errorf("equake produced only %d accesses", st.Accesses)
	}
	if st.Allocs != st.Frees {
		t.Errorf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
	// The bonus workload must not be part of the paper's seven.
	for _, n := range Names() {
		if n == "183.equake" {
			t.Error("183.equake must not appear in Names()")
		}
	}
}
