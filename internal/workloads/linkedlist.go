package workloads

import (
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// LinkedList is the paper's running example (Figures 1 and 3): a linked
// list is built with interleaved unrelated allocations (so the nodes land at
// scattered raw addresses), then traversed repeatedly — instruction 1 loads
// node→data, instruction 2 loads node→next. In the raw address stream the
// traversal looks structureless; in object-relative form every access is
// (group 0-ish, ascending serial, fixed offset).
type LinkedList struct {
	cfg Config
	// Nodes is the number of list elements.
	Nodes int
	// Traversals is how many times the list is walked.
	Traversals int
}

// NewLinkedList builds the demo program with sizes derived from cfg.
func NewLinkedList(cfg Config) *LinkedList {
	cfg = cfg.normalized()
	return &LinkedList{cfg: cfg, Nodes: 64 * cfg.Scale, Traversals: 16}
}

// Name implements memsim.Program.
func (l *LinkedList) Name() string { return "linkedlist" }

// Node layout (48 bytes): 0 data(8) 8 next(8) 16..47 payload. The paper's
// Figure 3 shows instruction 1 reading offset 0 (data) and instruction 2
// reading offset 8 (next).
const (
	llNodeSize = 48
	llOffData  = 0
	llOffNext  = 8
)

// Instruction IDs match the paper's Figure 3 numbering.
const (
	LLLdData trace.InstrID = 1 // instruction 1: load node→data
	LLLdNext trace.InstrID = 2 // instruction 2: load node→next
	LLStData trace.InstrID = 3 // update pass: store node→data
)

// Allocation sites: the list nodes (group 0 in the paper's figure) and the
// unrelated clutter allocations that scatter the heap.
const (
	LLSiteNode    trace.SiteID = 70
	LLSiteClutter trace.SiteID = 71
)

// Run implements memsim.Program.
func (l *LinkedList) Run(m *memsim.Machine) {
	nodes := make([]trace.Addr, l.Nodes)
	clutter := make([]trace.Addr, 0, l.Nodes)
	for i := range nodes {
		nodes[i] = m.Alloc(LLSiteNode, llNodeSize)
		// Unrelated allocations between nodes: the "confounding
		// artifacts" that make raw node addresses non-contiguous.
		if i%3 == 1 {
			clutter = append(clutter, m.Alloc(LLSiteClutter, 16+uint32(i%5)*16))
		}
		if i%7 == 6 && len(clutter) > 0 {
			m.Free(clutter[len(clutter)-1])
			clutter = clutter[:len(clutter)-1]
		}
	}

	for t := 0; t < l.Traversals; t++ {
		// The paper's loop:  while (node) { ... = node->data; node = node->next; }
		for i := range nodes {
			m.Load(LLLdData, nodes[i]+llOffData, 8)
			m.Load(LLLdNext, nodes[i]+llOffNext, 8)
		}
		// Update pass every other traversal: the store half of Figure 1.
		if t%2 == 1 {
			for i := range nodes {
				m.Store(LLStData, nodes[i]+llOffData, 8)
			}
		}
	}

	for _, c := range clutter {
		m.Free(c)
	}
	for _, n := range nodes {
		m.Free(n)
	}
}
