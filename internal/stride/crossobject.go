package stride

import (
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// FromLEAPCrossObject implements the extension sketched at the end of
// §4.2.2: strongly strided instructions *across* objects, recovered by
// combining the LEAP descriptors with the OMC's auxiliary object lifetime
// information (which is run- and allocator-dependent, as the paper notes —
// the resulting strides hold for this run's layout).
//
// A descriptor whose object serial advances by a constant step corresponds
// to a constant *address* stride exactly when the underlying objects are
// evenly spaced in memory (e.g. same-site records laid out back to back by
// the allocator). The object table tells us the realized spacing, so each
// cross-object descriptor contributes its realized address strides to the
// instruction's histogram alongside the within-object strides.
func FromLEAPCrossObject(p *leap.Profile, table ObjectLocator) map[trace.InstrID]Info {
	hist := make(map[trace.InstrID]map[int64]uint64)
	events := make(map[trace.InstrID]uint64)
	add := func(id trace.InstrID, stride int64, n uint64) {
		h := hist[id]
		if h == nil {
			h = make(map[int64]uint64, 4)
			hist[id] = h
		}
		h[stride] += n
	}
	for _, k := range p.Keys() {
		s := p.Streams[k]
		for i := range s.OffsetLMADs {
			l := &s.OffsetLMADs[i]
			if l.Count < 2 {
				continue
			}
			inPattern := uint64(l.Count-1) * uint64(l.Reps)
			events[k.Instr] += inPattern + uint64(l.Reps-1)

			objStride := l.Stride[leap.DimObject]
			offStride := l.Stride[leap.DimOffset]
			if objStride == 0 {
				add(k.Instr, offStride, inPattern)
				continue
			}
			// Cross-object: realize the address stride between each pair
			// of consecutive points via the object table. If the spacing
			// is uniform, all deltas collapse into one histogram bucket
			// and the instruction can qualify as strongly strided.
			if k.Group == omc.Unmapped {
				continue
			}
			for j := uint32(0); j+1 < l.Count; j++ {
				a0, ok0 := table.ObjectStart(k.Group, uint32(l.At(j, leap.DimObject)))
				a1, ok1 := table.ObjectStart(k.Group, uint32(l.At(j+1, leap.DimObject)))
				if !ok0 || !ok1 {
					continue
				}
				delta := int64(a1) - int64(a0) + offStride
				add(k.Instr, delta, uint64(l.Reps))
			}
		}
	}
	out := make(map[trace.InstrID]Info)
	for id, h := range hist {
		total := events[id]
		if total < MinSample {
			continue
		}
		stride, count := dominant(h)
		frac := float64(count) / float64(total)
		if frac >= StrongThreshold {
			out[id] = Info{Stride: stride, Frac: frac}
		}
	}
	return out
}

// ObjectLocator resolves an object's start address from the auxiliary
// object table. *omc.OMC satisfies it via the adapter below; profile
// consumers working from a serialized WHOMP object table can supply their
// own.
type ObjectLocator interface {
	ObjectStart(g omc.GroupID, serial uint32) (trace.Addr, bool)
}

// OMCLocator adapts an OMC to the ObjectLocator interface.
type OMCLocator struct {
	OMC *omc.OMC
}

// ObjectStart implements ObjectLocator.
func (l OMCLocator) ObjectStart(g omc.GroupID, serial uint32) (trace.Addr, bool) {
	info := l.OMC.Lookup(g, serial)
	if info == nil {
		return 0, false
	}
	return info.Start, true
}
