package stride_test

import (
	"fmt"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// Identify a strongly strided instruction from a LEAP profile: instruction
// 1 sweeps an array with stride 16 on every execution.
func Example() {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 2048)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 128; i++ {
			m.Load(1, arr+trace.Addr(i*16), 8)
		}
	}
	m.Free(arr)
	m.End()

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	strong := stride.FromLEAP(lp.Profile("sweep"))

	info := strong[1]
	fmt.Printf("instruction 1: stride %d, %.0f%% of accesses\n", info.Stride, 100*info.Frac)
	// Output:
	// instruction 1: stride 16, 99% of accesses
}
