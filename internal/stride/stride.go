// Package stride implements memory stride profiling — the paper's second
// LEAP application (§4.2.2) — and the lossless reference profiler it is
// scored against.
//
// Following Wu (PLDI 2002), an instruction is (single) strongly strided when
// one stride accounts for at least 70 % of its accesses. The reference
// profiler tracks every stride between successive executions of each
// instruction (the paper's "extremely slow" lossless re-implementation);
// the LEAP post-processor instead examines the offset strides captured in
// the profile's LMADs, restricted to strides within a single object
// (identical group and object IDs), as §4.2.2 prescribes.
package stride

import (
	"sort"

	"ormprof/internal/leap"
	"ormprof/internal/trace"
)

// StrongThreshold is the strongly-strided cutoff: one stride must account
// for at least this fraction of an instruction's accesses.
const StrongThreshold = 0.70

// Info describes a strongly strided instruction: its dominant stride and
// the fraction of accesses that stride explains.
type Info struct {
	Stride int64
	Frac   float64
}

// Ideal is the lossless stride profiler: for every instruction it keeps the
// full histogram of strides between successive executions. It is a
// trace.Sink.
type Ideal struct {
	last  map[trace.InstrID]trace.Addr
	hist  map[trace.InstrID]map[int64]uint64
	execs map[trace.InstrID]uint64
	foot  int64 // incremental byte estimate, see Footprint
}

// Approximate per-element live sizes for budget accounting.
const (
	idealBase       = 192
	idealInstrBytes = 80 // last + execs + hist-pointer map entries
	idealHistBytes  = 96 // per-instruction histogram map header
	idealBinBytes   = 32 // one histogram bin
)

// Footprint reports the profiler's approximate live bytes in O(1); the
// estimate is maintained incrementally in Emit.
func (p *Ideal) Footprint() int64 { return idealBase + p.foot }

// IdealFromSource drains a streaming event source through a fresh lossless
// stride profiler. Per-instruction state is O(instructions), so streaming a
// trace file through it never materializes the event stream.
func IdealFromSource(src trace.Source) (*Ideal, error) {
	p := NewIdeal()
	if _, err := trace.Drain(src, p); err != nil {
		return nil, err
	}
	return p, nil
}

// NewIdeal returns an empty lossless stride profiler.
func NewIdeal() *Ideal {
	return &Ideal{
		last:  make(map[trace.InstrID]trace.Addr),
		hist:  make(map[trace.InstrID]map[int64]uint64),
		execs: make(map[trace.InstrID]uint64),
	}
}

// Emit implements trace.Sink.
func (p *Ideal) Emit(e trace.Event) {
	if e.Kind != trace.EvAccess {
		return
	}
	if _, seen := p.execs[e.Instr]; !seen {
		p.foot += idealInstrBytes
	}
	p.execs[e.Instr]++
	if prev, ok := p.last[e.Instr]; ok {
		d := int64(e.Addr) - int64(prev)
		h := p.hist[e.Instr]
		if h == nil {
			h = make(map[int64]uint64, 4)
			p.hist[e.Instr] = h
			p.foot += idealHistBytes
		}
		if _, seen := h[d]; !seen {
			p.foot += idealBinBytes
		}
		h[d]++
	}
	p.last[e.Instr] = e.Addr
}

// StronglyStrided returns every instruction whose dominant stride meets the
// threshold, with ties broken toward the smaller stride for determinism.
func (p *Ideal) StronglyStrided() map[trace.InstrID]Info {
	out := make(map[trace.InstrID]Info)
	for id, h := range p.hist {
		var total uint64
		for _, c := range h {
			total += c
		}
		if total < MinSample {
			continue
		}
		stride, count := dominant(h)
		frac := float64(count) / float64(total)
		if frac >= StrongThreshold {
			out[id] = Info{Stride: stride, Frac: frac}
		}
	}
	return out
}

// Execs returns per-instruction execution counts.
func (p *Ideal) Execs() map[trace.InstrID]uint64 { return p.execs }

func dominant(h map[int64]uint64) (stride int64, count uint64) {
	first := true
	for s, c := range h {
		if first || c > count || (c == count && s < stride) {
			stride, count = s, c
			first = false
		}
	}
	return stride, count
}

// MinSample is the minimum number of captured stride events needed before an
// instruction can be classified; tinier samples are statistically
// meaningless.
const MinSample = 4

// FromLEAP identifies strongly strided instructions from a LEAP profile: a
// trivial post-process that examines all offset strides captured for each
// instruction (§4.2.2), considering only strides within objects (LMADs
// whose object stride is zero). Because an overflowed stream's LMADs are a
// sample of its initial part (§4.1), strength is judged against the captured
// stride events rather than total executions — the sampled prefix stands in
// for the whole stream, which is exactly the "low sample quality may be
// acceptable" argument the paper makes.
func FromLEAP(p *leap.Profile) map[trace.InstrID]Info {
	hist := make(map[trace.InstrID]map[int64]uint64)
	events := make(map[trace.InstrID]uint64)
	accumulateLEAP(p, p.Keys(), hist, events)
	return classify(hist, events)
}

// accumulateLEAP folds the given streams' offset-LMAD stride evidence into
// the per-instruction histograms. It touches only the instructions that
// appear in keys, so disjoint key partitions accumulate into disjoint map
// entries — the property the parallel post-processor relies on.
func accumulateLEAP(p *leap.Profile, keys []leap.StreamKey, hist map[trace.InstrID]map[int64]uint64, events map[trace.InstrID]uint64) {
	for _, k := range keys {
		s := p.Streams[k]
		// The untimed (object, offset) descriptors carry the stride
		// information; time strides are irrelevant here.
		for i := range s.OffsetLMADs {
			l := &s.OffsetLMADs[i]
			if l.Count < 2 {
				continue
			}
			// A descriptor of count n re-walked r times witnesses
			// r·(n-1) in-pattern stride events plus r-1 restart jumps
			// (which count toward the total but are not candidates).
			inPattern := uint64(l.Count-1) * uint64(l.Reps)
			events[k.Instr] += inPattern + uint64(l.Reps-1)
			if l.Stride[leap.DimObject] != 0 {
				continue // cross-object stride: counted but not a candidate
			}
			h := hist[k.Instr]
			if h == nil {
				h = make(map[int64]uint64, 4)
				hist[k.Instr] = h
			}
			h[l.Stride[leap.DimOffset]] += inPattern
		}
	}
}

// classify applies the strongly-strided test to accumulated histograms.
func classify(hist map[trace.InstrID]map[int64]uint64, events map[trace.InstrID]uint64) map[trace.InstrID]Info {
	out := make(map[trace.InstrID]Info)
	for id, h := range hist {
		total := events[id]
		if total < MinSample {
			continue
		}
		stride, count := dominant(h)
		frac := float64(count) / float64(total)
		if frac >= StrongThreshold {
			out[id] = Info{Stride: stride, Frac: frac}
		}
	}
	return out
}

// Score computes Figure 9's metric: the percentage of the reference
// profiler's strongly strided instructions that the estimate also identifies
// (with the same dominant stride). A benchmark with no strongly strided
// instructions scores 100.
func Score(real, est map[trace.InstrID]Info) float64 {
	if len(real) == 0 {
		return 100
	}
	hit := 0
	for id, ri := range real {
		if ei, ok := est[id]; ok && ei.Stride == ri.Stride {
			hit++
		}
	}
	return 100 * float64(hit) / float64(len(real))
}

// SortedIDs returns the instruction IDs of an Info map in ascending order.
func SortedIDs(m map[trace.InstrID]Info) []trace.InstrID {
	ids := make([]trace.InstrID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
