package stride

import (
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

func access(instr trace.InstrID, addr trace.Addr, tm trace.Time) trace.Event {
	return trace.Event{Kind: trace.EvAccess, Instr: instr, Addr: addr, Size: 8, Time: tm}
}

func TestIdealStronglyStrided(t *testing.T) {
	p := NewIdeal()
	now := trace.Time(0)
	// Instruction 1: perfect stride 8.
	for i := 0; i < 100; i++ {
		p.Emit(access(1, trace.Addr(0x1000+i*8), now))
		now++
	}
	// Instruction 2: stride 4 for 80% of accesses, jumps otherwise.
	for i := 0; i < 100; i++ {
		base := 0x2000 + (i/10)*1000 + (i%10)*4
		p.Emit(access(2, trace.Addr(base), now))
		now++
	}
	// Instruction 3: alternating strides (not strongly strided).
	for i := 0; i < 100; i++ {
		d := 8
		if i%2 == 0 {
			d = 24
		}
		p.Emit(access(3, trace.Addr(0x9000+i*d), now))
		now++
	}

	strong := p.StronglyStrided()
	if info, ok := strong[1]; !ok || info.Stride != 8 || info.Frac < 0.99 {
		t.Errorf("instr 1: %+v, %v", info, ok)
	}
	if info, ok := strong[2]; !ok || info.Stride != 4 {
		t.Errorf("instr 2: %+v, %v", info, ok)
	}
	if _, ok := strong[3]; ok {
		t.Error("instr 3 should not be strongly strided")
	}
	if p.Execs()[1] != 100 {
		t.Errorf("execs = %d", p.Execs()[1])
	}
}

func TestIdealTinySamplesSkipped(t *testing.T) {
	p := NewIdeal()
	p.Emit(access(1, 0x1000, 0))
	p.Emit(access(1, 0x1008, 1))
	if len(p.StronglyStrided()) != 0 {
		t.Error("2-access instruction classified")
	}
}

func TestFromLEAPMatchesIdealOnStridedWorkload(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 4096)
	// Instruction 1 sweeps the array 5 times with stride 16 (strongly
	// strided within one object). Instruction 2 hits pseudo-random slots.
	state := 1
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < 256; i++ {
			m.Load(1, arr+trace.Addr(i*16), 8)
			state = (state*97 + 31) % 512
			m.Load(2, arr+trace.Addr(state*8), 8)
		}
	}
	m.Free(arr)
	m.End()

	ideal := NewIdeal()
	buf.Replay(ideal)
	real := ideal.StronglyStrided()
	if info, ok := real[1]; !ok || info.Stride != 16 {
		t.Fatalf("ideal missed instr 1: %+v %v", info, ok)
	}

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	est := FromLEAP(lp.Profile("strided"))
	if info, ok := est[1]; !ok || info.Stride != 16 {
		t.Fatalf("LEAP missed instr 1: %+v %v (estimates: %v)", info, ok, est)
	}
	if _, ok := est[2]; ok {
		t.Error("LEAP classified the random instruction as strongly strided")
	}

	if s := Score(real, est); s != 100 {
		t.Errorf("Score = %v, want 100", s)
	}
}

func TestScoreSemantics(t *testing.T) {
	real := map[trace.InstrID]Info{
		1: {Stride: 8},
		2: {Stride: 16},
		3: {Stride: 4},
	}
	est := map[trace.InstrID]Info{
		1: {Stride: 8},  // hit
		2: {Stride: 32}, // wrong stride: miss
		9: {Stride: 8},  // extra: ignored by the score
	}
	if got := Score(real, est); got < 33.3 || got > 33.4 {
		t.Errorf("Score = %v, want 33.3", got)
	}
	if Score(map[trace.InstrID]Info{}, est) != 100 {
		t.Error("empty reference should score 100")
	}
}

func TestSortedIDs(t *testing.T) {
	m := map[trace.InstrID]Info{5: {}, 1: {}, 3: {}}
	ids := SortedIDs(m)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("SortedIDs = %v", ids)
	}
}
