package stride

import (
	"math/rand"
	"reflect"
	"testing"

	"ormprof/internal/trace"
)

func snapshotEvents(n int) []trace.Event {
	rng := rand.New(rand.NewSource(9))
	evs := make([]trace.Event, n)
	for i := range evs {
		instr := trace.InstrID(rng.Intn(8) + 1)
		var addr trace.Addr
		if instr <= 4 {
			addr = trace.Addr(0x1000 + uint64(i)*uint64(instr)*8) // strided
		} else {
			addr = trace.Addr(rng.Int63n(1 << 20)) // noise
		}
		kind := trace.EvAccess
		if i%97 == 0 {
			kind = trace.EvAlloc // must be ignored by the profiler
		}
		evs[i] = trace.Event{Kind: kind, Instr: instr, Addr: addr, Time: trace.Time(i)}
	}
	return evs
}

// TestIdealSnapshotResumeExact: a profiler restored mid-stream and fed the
// rest must report exactly what an uninterrupted profiler reports.
func TestIdealSnapshotResumeExact(t *testing.T) {
	evs := snapshotEvents(4000)
	cuts := []int{0, 1, 10, len(evs) / 3, len(evs) / 2, len(evs) - 1, len(evs)}
	for _, cut := range cuts {
		full := NewIdeal()
		for _, e := range evs {
			full.Emit(e)
		}

		p := NewIdeal()
		for _, e := range evs[:cut] {
			p.Emit(e)
		}
		restored, err := FromSnapshot(p.Snapshot())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, e := range evs[cut:] {
			restored.Emit(e)
		}

		if !reflect.DeepEqual(restored.Snapshot(), full.Snapshot()) {
			t.Errorf("cut %d: resumed profiler state differs from uninterrupted run", cut)
		}
		if !reflect.DeepEqual(restored.StronglyStrided(), full.StronglyStrided()) {
			t.Errorf("cut %d: resumed stride report differs from uninterrupted run", cut)
		}
	}
}

// TestIdealFromSnapshotRejectsCorrupt: broken snapshots error, never panic.
func TestIdealFromSnapshotRejectsCorrupt(t *testing.T) {
	mk := func() *Snapshot {
		p := NewIdeal()
		for _, e := range snapshotEvents(500) {
			p.Emit(e)
		}
		return p.Snapshot()
	}
	cases := map[string]func(*Snapshot){
		"dup instr":    func(s *Snapshot) { s.Instrs = append(s.Instrs, s.Instrs[0]) },
		"hist no last": func(s *Snapshot) { s.Instrs[0].HasLast = false },
		"dup bin": func(s *Snapshot) {
			s.Instrs[0].Hist = append(s.Instrs[0].Hist, s.Instrs[0].Hist[0])
		},
	}
	for name, corrupt := range cases {
		s := mk()
		corrupt(s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: FromSnapshot accepted a corrupt snapshot", name)
		}
	}
}
