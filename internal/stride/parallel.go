package stride

import (
	"sync"

	"ormprof/internal/decomp"
	"ormprof/internal/leap"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// parallelMinStreams gates the fan-out: below this many streams the
// goroutine bookkeeping costs more than the work it spreads.
const parallelMinStreams = 64

// FromLEAPParallel is FromLEAP with the per-(instruction, group) stream
// analysis fanned out across workers. Streams are partitioned by
// instruction with the same shard function the parallel LEAP pipeline uses
// (decomp.Shard), so each worker accumulates a disjoint set of
// per-instruction histograms; the merge is a disjoint union and the result
// is identical to FromLEAP for every worker count. workers ≤ 0 selects
// runtime.GOMAXPROCS(0).
func FromLEAPParallel(p *leap.Profile, workers int) map[trace.InstrID]Info {
	workers = profiler.DefaultWorkers(workers)
	keys := p.Keys()
	if workers <= 1 || len(keys) < parallelMinStreams {
		return FromLEAP(p)
	}

	parts := make([][]leap.StreamKey, workers)
	for _, k := range keys {
		w := decomp.Shard(profiler.Record{Instr: k.Instr}, workers)
		parts[w] = append(parts[w], k)
	}

	type partial struct {
		hist   map[trace.InstrID]map[int64]uint64
		events map[trace.InstrID]uint64
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		partials[i] = partial{
			hist:   make(map[trace.InstrID]map[int64]uint64),
			events: make(map[trace.InstrID]uint64),
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			accumulateLEAP(p, parts[i], partials[i].hist, partials[i].events)
		}(i)
	}
	wg.Wait()

	hist := make(map[trace.InstrID]map[int64]uint64)
	events := make(map[trace.InstrID]uint64)
	for _, pt := range partials {
		for id, h := range pt.hist {
			hist[id] = h
		}
		for id, n := range pt.events {
			events[id] += n
		}
	}
	return classify(hist, events)
}
