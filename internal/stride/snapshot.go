package stride

import (
	"fmt"
	"sort"

	"ormprof/internal/trace"
)

// This file implements exact Ideal-profiler snapshots for checkpoint/resume
// (internal/checkpoint). The lossless stride profiler's state is three
// per-instruction maps; the only care needed is deterministic ordering so
// equal profilers produce equal snapshots.

// StrideCount is one (stride, count) histogram bin.
type StrideCount struct {
	Stride int64
	Count  uint64
}

// InstrState is one instruction's stride-profiling state.
type InstrState struct {
	Instr   trace.InstrID
	Execs   uint64
	HasLast bool
	Last    trace.Addr
	Hist    []StrideCount // sorted by stride
}

// Snapshot is the complete mutable state of an Ideal profiler, sorted by
// instruction ID.
type Snapshot struct {
	Instrs []InstrState
}

// Snapshot captures the profiler's complete state; the result shares no
// memory with the live profiler.
func (p *Ideal) Snapshot() *Snapshot {
	ids := make([]trace.InstrID, 0, len(p.execs))
	for id := range p.execs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	snap := &Snapshot{Instrs: make([]InstrState, 0, len(ids))}
	for _, id := range ids {
		st := InstrState{Instr: id, Execs: p.execs[id]}
		if last, ok := p.last[id]; ok {
			st.HasLast = true
			st.Last = last
		}
		if h := p.hist[id]; h != nil {
			st.Hist = make([]StrideCount, 0, len(h))
			for s, c := range h {
				st.Hist = append(st.Hist, StrideCount{Stride: s, Count: c})
			}
			sort.Slice(st.Hist, func(i, j int) bool { return st.Hist[i].Stride < st.Hist[j].Stride })
		}
		snap.Instrs = append(snap.Instrs, st)
	}
	return snap
}

// FromSnapshot reconstructs an Ideal profiler that behaves identically to
// the snapshotted one for all future events.
func FromSnapshot(snap *Snapshot) (*Ideal, error) {
	p := NewIdeal()
	for _, st := range snap.Instrs {
		if _, dup := p.execs[st.Instr]; dup {
			return nil, fmt.Errorf("stride: duplicate instruction %d in snapshot", st.Instr)
		}
		p.execs[st.Instr] = st.Execs
		if st.HasLast {
			p.last[st.Instr] = st.Last
		} else if len(st.Hist) > 0 {
			return nil, fmt.Errorf("stride: instruction %d has a histogram but no last address", st.Instr)
		}
		if len(st.Hist) > 0 {
			h := make(map[int64]uint64, len(st.Hist))
			for _, sc := range st.Hist {
				if _, dup := h[sc.Stride]; dup {
					return nil, fmt.Errorf("stride: instruction %d has duplicate histogram bin %d", st.Instr, sc.Stride)
				}
				h[sc.Stride] = sc.Count
			}
			p.hist[st.Instr] = h
			p.foot += idealHistBytes + int64(len(st.Hist))*idealBinBytes
		}
		p.foot += idealInstrBytes
	}
	return p, nil
}
