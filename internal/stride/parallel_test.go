package stride

import (
	"reflect"
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// TestFromLEAPParallelMatchesSequential: the fanned-out post-processor must
// report exactly the sequential result for every worker count.
func TestFromLEAPParallelMatchesSequential(t *testing.T) {
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 11})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	lp := leap.New(m.StaticSites(), 0)
	buf.Replay(lp)
	profile := lp.Profile("linkedlist")

	want := FromLEAP(profile)
	for _, workers := range []int{1, 2, 8} {
		got := FromLEAPParallel(profile, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel report differs\ngot:  %v\nwant: %v", workers, got, want)
		}
	}
}

// TestFromLEAPParallelSmallProfile: below the fan-out gate the parallel
// entry point must still answer (via the sequential path).
func TestFromLEAPParallelSmallProfile(t *testing.T) {
	lp := leap.New(nil, 0)
	now := trace.Time(0)
	lp.Emit(trace.Event{Kind: trace.EvAlloc, Site: 1, Addr: 0x1000, Size: 4096, Time: now})
	for i := 0; i < 64; i++ {
		now++
		lp.Emit(access(1, trace.Addr(0x1000+i*8), now))
	}
	profile := lp.Profile("tiny")
	want := FromLEAP(profile)
	got := FromLEAPParallel(profile, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel report differs on small profile\ngot:  %v\nwant: %v", got, want)
	}
}
