package stride

import (
	"context"
	"runtime/debug"
	"sync"

	"ormprof/internal/decomp"
	"ormprof/internal/leap"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// IdealFromSourceSalvage is the fault-tolerant IdealFromSource: the
// profiler built from the events delivered before any fault is returned
// alongside the typed error, instead of being discarded.
func IdealFromSourceSalvage(ctx context.Context, src trace.Source) (*Ideal, error) {
	p := NewIdeal()
	_, err := trace.DrainSalvage(ctx, src, p)
	return p, err
}

// ctxKeyChunk is how many streams a post-processing worker analyzes
// between cancellation checks.
const ctxKeyChunk = 64

// FromLEAPParallelContext is FromLEAPParallel with cooperative cancellation
// and worker panic containment: each analysis worker checks ctx between
// stream chunks and recovers its own panics into a *profiler.WorkerError.
// The classification built from the streams analyzed before the fault is
// returned alongside the error (nil after a clean run).
func FromLEAPParallelContext(ctx context.Context, p *leap.Profile, workers int) (map[trace.InstrID]Info, error) {
	workers = profiler.DefaultWorkers(workers)
	keys := p.Keys()
	if workers <= 1 || len(keys) < parallelMinStreams {
		if err := ctx.Err(); err != nil {
			return map[trace.InstrID]Info{}, err
		}
		return FromLEAP(p), nil
	}

	parts := make([][]leap.StreamKey, workers)
	for _, k := range keys {
		w := decomp.Shard(profiler.Record{Instr: k.Instr}, workers)
		parts[w] = append(parts[w], k)
	}

	type partial struct {
		hist   map[trace.InstrID]map[int64]uint64
		events map[trace.InstrID]uint64
	}
	partials := make([]partial, workers)
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		partials[i] = partial{
			hist:   make(map[trace.InstrID]map[int64]uint64),
			events: make(map[trace.InstrID]uint64),
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					fail(&profiler.WorkerError{Worker: i, Value: v, Stack: debug.Stack()})
				}
			}()
			ks := parts[i]
			for start := 0; start < len(ks); start += ctxKeyChunk {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				end := start + ctxKeyChunk
				if end > len(ks) {
					end = len(ks)
				}
				accumulateLEAP(p, ks[start:end], partials[i].hist, partials[i].events)
			}
		}(i)
	}
	wg.Wait()

	hist := make(map[trace.InstrID]map[int64]uint64)
	events := make(map[trace.InstrID]uint64)
	for _, pt := range partials {
		for id, h := range pt.hist {
			hist[id] = h
		}
		for id, n := range pt.events {
			events[id] += n
		}
	}
	return classify(hist, events), firstErr
}
