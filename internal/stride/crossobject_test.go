package stride

import (
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// TestCrossObjectStrideRecovered: an instruction sweeping over a field of
// consecutively allocated same-size records strides across objects. The
// base post-process misses it (object stride ≠ 0); the cross-object
// extension recovers it via the object table.
func TestCrossObjectStrideRecovered(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf, memsim.WithAllocator(memsim.NewBumpAllocator()))
	m.Start()
	const n = 64
	recs := make([]trace.Addr, n)
	for i := range recs {
		recs[i] = m.Alloc(1, 32) // bump allocator: evenly spaced
	}
	// Five sweeps: instruction 1 reads field at offset 8 of every record.
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < n; i++ {
			m.Load(1, recs[i]+8, 8)
		}
	}
	for _, r := range recs {
		m.Free(r)
	}
	m.End()

	// The raw-address reference sees the stride (records are 32 B apart).
	ideal := NewIdeal()
	buf.Replay(ideal)
	real := ideal.StronglyStrided()
	if info, ok := real[1]; !ok || info.Stride != 32 {
		t.Fatalf("ideal should see stride 32: %+v %v", info, ok)
	}

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	profile := lp.Profile("cross")

	// Base post-process: within-object only — must miss it.
	if base := FromLEAP(profile); len(base) != 0 {
		t.Errorf("within-object post-process unexpectedly found %v", base)
	}

	// Extension: recovers the realized 32-byte stride.
	ext := FromLEAPCrossObject(profile, OMCLocator{OMC: lp.OMC()})
	info, ok := ext[1]
	if !ok {
		t.Fatalf("cross-object extension missed the instruction: %v", ext)
	}
	if info.Stride != 32 {
		t.Errorf("stride = %d, want 32", info.Stride)
	}
	if Score(real, ext) != 100 {
		t.Errorf("score = %v", Score(real, ext))
	}
}

// TestCrossObjectKeepsWithinObjectResults: the extension must subsume the
// base results on a within-object workload.
func TestCrossObjectKeepsWithinObjectResults(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 4096)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 256; i++ {
			m.Load(1, arr+trace.Addr(i*16), 8)
		}
	}
	m.Free(arr)
	m.End()

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	profile := lp.Profile("within")

	base := FromLEAP(profile)
	ext := FromLEAPCrossObject(profile, OMCLocator{OMC: lp.OMC()})
	for id, bi := range base {
		ei, ok := ext[id]
		if !ok || ei.Stride != bi.Stride {
			t.Errorf("extension lost within-object instr %d: base %+v, ext %+v (%v)", id, bi, ei, ok)
		}
	}
}

// TestCrossObjectIrregularSpacingNotStrided: records at irregular spacing
// must not be classified even though serials advance regularly.
func TestCrossObjectIrregularSpacingNotStrided(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf, memsim.WithAllocator(memsim.NewRandomizedAllocator(3)))
	m.Start()
	const n = 64
	recs := make([]trace.Addr, n)
	for i := range recs {
		recs[i] = m.Alloc(1, 32) // randomized gaps: uneven spacing
	}
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < n; i++ {
			m.Load(1, recs[i]+8, 8)
		}
	}
	for _, r := range recs {
		m.Free(r)
	}
	m.End()

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	profile := lp.Profile("uneven")
	ext := FromLEAPCrossObject(profile, OMCLocator{OMC: lp.OMC()})
	if info, ok := ext[1]; ok && info.Frac >= StrongThreshold {
		// It may appear only if the randomized allocator happened to place
		// ≥70% of gaps equally, which the seed above does not.
		t.Errorf("irregularly spaced records classified as strongly strided: %+v", info)
	}
}
