package stride

// Merge folds another lossless profiler's histograms into p: execution
// counts and per-instruction stride histograms add bin-wise. The two
// profilers must describe different event streams (different sessions or
// shards of a cluster); the stride between q's last access and any future
// access of p is deliberately NOT synthesized — a cross-stream "stride"
// would be an artifact of merge order, not of any program. Because the
// combination is a commutative sum over disjoint observations, merging the
// same set of profilers in any grouping yields an identical profiler, which
// is what makes the cluster merge plane's stride report byte-stable no
// matter how sessions were sharded.
//
// p's last-address table is left untouched (and q's is ignored), so a
// merged profiler is an aggregate for reporting, not a sink to keep
// feeding: StronglyStrided and Execs are meaningful, further Emit calls
// are not.
func (p *Ideal) Merge(q *Ideal) {
	if q == nil {
		return
	}
	for id, n := range q.execs {
		if _, seen := p.execs[id]; !seen {
			p.foot += idealInstrBytes
		}
		p.execs[id] += n
	}
	for id, qh := range q.hist {
		h := p.hist[id]
		if h == nil {
			h = make(map[int64]uint64, len(qh))
			p.hist[id] = h
			p.foot += idealHistBytes
		}
		for s, c := range qh {
			if _, seen := h[s]; !seen {
				p.foot += idealBinBytes
			}
			h[s] += c
		}
	}
}
