package trace

import (
	"strings"
	"testing"
)

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Kind: EvAccess, Time: 3, Instr: 7, Addr: 0x100, Size: 8}, "t3 ld i7 [0x100,8]"},
		{Event{Kind: EvAccess, Time: 4, Instr: 7, Addr: 0x100, Size: 4, Store: true}, "t4 st i7 [0x100,4]"},
		{Event{Kind: EvAlloc, Time: 0, Site: 2, Addr: 0x40, Size: 16}, "t0 alloc s2 [0x40,16]"},
		{Event{Kind: EvFree, Time: 9, Addr: 0x40}, "t9 free [0x40]"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EvAccess.String() != "access" || EvAlloc.String() != "alloc" || EvFree.String() != "free" {
		t.Error("EventKind names wrong")
	}
	if !strings.Contains(EventKind(9).String(), "9") {
		t.Error("unknown kind should include the numeric value")
	}
}

func TestBufferAndReplay(t *testing.T) {
	var b Buffer
	events := []Event{
		{Kind: EvAlloc, Site: 1, Addr: 0x1000, Size: 64},
		{Kind: EvAccess, Time: 0, Instr: 1, Addr: 0x1000, Size: 8},
		{Kind: EvAccess, Time: 1, Instr: 2, Addr: 0x1008, Size: 8, Store: true},
		{Kind: EvFree, Addr: 0x1000},
	}
	for _, e := range events {
		b.Emit(e)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}

	var replayed Buffer
	b.Replay(&replayed)
	if replayed.Len() != 4 {
		t.Fatalf("replayed %d events", replayed.Len())
	}
	for i := range events {
		if replayed.Events[i] != events[i] {
			t.Errorf("event %d = %v, want %v", i, replayed.Events[i], events[i])
		}
	}

	acc := b.Accesses()
	if len(acc) != 2 || acc[0].Instr != 1 || acc[1].Instr != 2 {
		t.Errorf("Accesses = %v", acc)
	}
}

func TestTee(t *testing.T) {
	var a, b Buffer
	sink := Tee(&a, &b)
	sink.Emit(Event{Kind: EvAccess, Instr: 5})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("Tee delivered %d/%d events", a.Len(), b.Len())
	}
}

func TestDiscard(t *testing.T) {
	// Must not panic, must accept anything.
	Discard.Emit(Event{Kind: EvAccess})
	Discard.Emit(Event{})
}

func TestCollect(t *testing.T) {
	events := []Event{
		{Kind: EvAlloc, Site: 1, Addr: 0x1000, Size: 64},
		{Kind: EvAlloc, Site: 2, Addr: 0x2000, Size: 32},
		{Kind: EvAccess, Instr: 1, Addr: 0x1000, Size: 8},
		{Kind: EvAccess, Instr: 2, Addr: 0x1008, Size: 8, Store: true},
		{Kind: EvAccess, Instr: 1, Addr: 0x2000, Size: 4},
		{Kind: EvFree, Addr: 0x1000},
		{Kind: EvAlloc, Site: 1, Addr: 0x3000, Size: 128},
	}
	st := Collect(events)
	if st.Accesses != 3 || st.Loads != 2 || st.Stores != 1 {
		t.Errorf("access counts: %+v", st)
	}
	if st.Allocs != 3 || st.Frees != 1 {
		t.Errorf("object counts: %+v", st)
	}
	if st.Instrs != 2 || st.Sites != 2 {
		t.Errorf("distinct counts: %+v", st)
	}
	// Peak live: 64+32 = 96 before the free, then 32+128 = 160 after.
	if st.BytesLive != 160 {
		t.Errorf("BytesLive = %d, want 160", st.BytesLive)
	}
}

func TestRawBytes(t *testing.T) {
	if RawBytes(100) != 1200 {
		t.Errorf("RawBytes(100) = %d, want 1200 (12 bytes per access record)", RawBytes(100))
	}
}

func TestSampler(t *testing.T) {
	var out Buffer
	s := NewSampler(2, 5, &out)
	// 3 allocs interleaved with 10 accesses: all allocs pass, accesses
	// pass in bursts of 2 per 5.
	s.Emit(Event{Kind: EvAlloc, Addr: 0x1000, Size: 8})
	for i := 0; i < 10; i++ {
		s.Emit(Event{Kind: EvAccess, Time: Time(i), Instr: 1, Addr: Addr(i)})
		if i == 4 {
			s.Emit(Event{Kind: EvFree, Addr: 0x1000})
			s.Emit(Event{Kind: EvAlloc, Addr: 0x2000, Size: 8})
		}
	}
	seen, kept := s.Stats()
	if seen != 10 || kept != 4 {
		t.Errorf("Stats = %d, %d; want 10, 4", seen, kept)
	}
	st := Collect(out.Events)
	if st.Allocs != 2 || st.Frees != 1 {
		t.Errorf("object probes must always pass: %+v", st)
	}
	if st.Accesses != 4 {
		t.Errorf("accesses forwarded = %d, want 4 (times 0,1,5,6)", st.Accesses)
	}
	for _, e := range out.Events {
		if e.Kind == EvAccess && e.Time != 0 && e.Time != 1 && e.Time != 5 && e.Time != 6 {
			t.Errorf("unexpected sampled access at time %d", e.Time)
		}
	}
}

func TestSamplerPanicsOnBadConfig(t *testing.T) {
	for _, c := range [][2]uint64{{0, 5}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("burst=%d period=%d accepted", c[0], c[1])
				}
			}()
			NewSampler(c[0], c[1], Discard)
		}()
	}
}

func TestElider(t *testing.T) {
	var out Buffer
	e := NewElider(map[InstrID]bool{7: true}, &out)
	e.Emit(Event{Kind: EvAlloc, Addr: 0x1000, Size: 8})
	e.Emit(Event{Kind: EvAccess, Instr: 7, Addr: 0x1000})
	e.Emit(Event{Kind: EvAccess, Instr: 8, Addr: 0x1000})
	e.Emit(Event{Kind: EvFree, Addr: 0x1000})
	dropped, kept := e.Stats()
	if dropped != 1 || kept != 1 {
		t.Errorf("Stats = %d, %d", dropped, kept)
	}
	st := Collect(out.Events)
	if st.Accesses != 1 || st.Allocs != 1 || st.Frees != 1 {
		t.Errorf("forwarded events wrong: %+v", st)
	}
	if out.Accesses()[0].Instr != 8 {
		t.Error("wrong instruction elided")
	}
}
