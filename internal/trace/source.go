package trace

import "io"

// Source is the pull side of the event contract: a stream of probe events
// delivered one at a time, in program order. Next returns io.EOF after the
// last event; any other error means the stream is broken (a corrupt trace
// file, for instance) and no further events will be delivered.
//
// Source is the streaming dual of Sink. Producers that materialize a trace
// expose it through SliceSource / Buffer.Source; producers that stream
// (tracefmt.Reader) hold only O(batch) events in memory, so a profiler
// driven from a Source never needs the whole trace resident.
type Source interface {
	Next() (Event, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (Event, error)

// Next calls f.
func (f SourceFunc) Next() (Event, error) { return f() }

// Drain pulls every event from src into sink and reports how many events
// were delivered. It is the bridge between the pull (Source) and push
// (Sink) halves of the pipeline: every profiler in this repository is a
// Sink, so Drain is how a recorded trace — or any other stream — is fed
// through one.
func Drain(src Source, sink Sink) (int, error) {
	n := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Emit(e)
		n++
	}
}

// ReadAll collects the remaining events of src into a slice.
func ReadAll(src Source) ([]Event, error) {
	var buf Buffer
	_, err := Drain(src, &buf)
	return buf.Events, err
}

// SliceSource adapts a materialized event slice to the Source interface —
// the trivial (in-memory) event source the streaming consumers fall back
// to when the trace is already resident.
type SliceSource struct {
	events []Event
	i      int
}

// NewSliceSource returns a Source that yields events in order.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next implements Source.
func (s *SliceSource) Next() (Event, error) {
	if s.i >= len(s.events) {
		return Event{}, io.EOF
	}
	e := s.events[s.i]
	s.i++
	return e, nil
}

// Reset rewinds the source to the first event.
func (s *SliceSource) Reset() { s.i = 0 }

// Source returns a fresh Source over the buffered events.
func (b *Buffer) Source() *SliceSource { return NewSliceSource(b.Events) }
