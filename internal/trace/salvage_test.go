package trace

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// failAfterSource yields n synthetic events, then fails with err (or io.EOF
// when err is nil).
type failAfterSource struct {
	n   int
	err error
	i   int
}

func (s *failAfterSource) Next() (Event, error) {
	if s.i >= s.n {
		if s.err != nil {
			return Event{}, s.err
		}
		return Event{}, io.EOF
	}
	s.i++
	return Event{Kind: EvAccess, Time: Time(s.i), Addr: Addr(s.i * 8), Size: 8}, nil
}

func TestDrainErrorPath(t *testing.T) {
	// Drain must return the events delivered before the failure alongside
	// the source's error, verbatim.
	sentinel := errors.New("disk on fire")
	var buf Buffer
	n, err := Drain(&failAfterSource{n: 7, err: sentinel}, &buf)
	if n != 7 || len(buf.Events) != 7 {
		t.Errorf("Drain delivered %d events (buffered %d), want 7", n, len(buf.Events))
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("Drain error = %v, want sentinel", err)
	}
}

func TestReadAllErrorPath(t *testing.T) {
	// ReadAll keeps the partial slice on error — callers that want salvage
	// semantics get the events delivered so far, not nil.
	sentinel := errors.New("bad frame")
	events, err := ReadAll(&failAfterSource{n: 3, err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Errorf("ReadAll error = %v, want sentinel", err)
	}
	if len(events) != 3 {
		t.Errorf("ReadAll returned %d events with error, want the 3 partial events", len(events))
	}
}

func TestDrainCleanEOF(t *testing.T) {
	var buf Buffer
	n, err := Drain(&failAfterSource{n: 5}, &buf)
	if n != 5 || err != nil {
		t.Errorf("Drain = (%d, %v), want (5, nil)", n, err)
	}
}

func TestDrainContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after the source has produced a few thousand events so at
	// least one poll boundary is crossed.
	src := &failAfterSource{n: 1 << 20}
	fired := false
	probe := SourceFunc(func() (Event, error) {
		if src.i > 3*ctxPollInterval && !fired {
			fired = true
			cancel()
		}
		return src.Next()
	})
	n, err := DrainContext(ctx, probe, Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DrainContext error = %v, want context.Canceled", err)
	}
	if n == 0 || n >= 1<<20 {
		t.Errorf("DrainContext delivered %d events, want partial delivery", n)
	}
}

func TestDrainContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// An endless source: only the deadline can stop the drain.
	endless := SourceFunc(func() (Event, error) {
		return Event{Kind: EvAccess, Size: 8}, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := DrainContext(ctx, endless, Discard)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("DrainContext error = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DrainContext did not stop at the deadline")
	}
}

func TestDrainSalvagePanicSource(t *testing.T) {
	boom := SourceFunc(func() (Event, error) {
		panic("source exploded")
	})
	n, err := DrainSalvage(context.Background(), boom, Discard)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("DrainSalvage error = %v, want *PanicError", err)
	}
	if pe.Value != "source exploded" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("PanicError.Stack missing stack trace")
	}
	if n != 0 {
		t.Errorf("n = %d, want 0", n)
	}
}

func TestDrainSalvagePanicSinkKeepsCount(t *testing.T) {
	// A sink that dies on the 6th event: the five delivered before the
	// panic must stay counted.
	var got int
	sink := SinkFunc(func(e Event) {
		got++
		if got == 6 {
			panic("sink exploded")
		}
	})
	n, err := DrainSalvage(context.Background(), &failAfterSource{n: 100}, sink)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("DrainSalvage error = %v, want *PanicError", err)
	}
	if n != 5 {
		t.Errorf("n = %d, want 5 events counted before the panic", n)
	}
}

func TestDrainSalvageCleanStream(t *testing.T) {
	n, err := DrainSalvage(context.Background(), &failAfterSource{n: 9}, Discard)
	if n != 9 || err != nil {
		t.Errorf("DrainSalvage = (%d, %v), want (9, nil)", n, err)
	}
}

func TestDrainSalvagePropagatesSourceError(t *testing.T) {
	sentinel := errors.New("typed corruption")
	n, err := DrainSalvage(context.Background(), &failAfterSource{n: 4, err: sentinel}, Discard)
	if n != 4 || !errors.Is(err, sentinel) {
		t.Errorf("DrainSalvage = (%d, %v), want (4, sentinel)", n, err)
	}
}
