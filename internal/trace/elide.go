package trace

// Elider drops the access events of instructions whose memory behaviour the
// compiler already knows statically — the paper's first future-work item
// (§6: "the compiler can improve profile performance by eliminating the
// need to collect the information known statically"). A fully strided loop
// over a known array needs no probes; its descriptor can be injected into
// the profile afterwards (leap.InjectStatic). Object probes always pass.
type Elider struct {
	skip map[InstrID]bool
	out  Sink

	dropped uint64
	kept    uint64
}

// NewElider forwards all events except accesses by the given instructions.
func NewElider(skip map[InstrID]bool, out Sink) *Elider {
	return &Elider{skip: skip, out: out}
}

// Emit implements Sink.
func (e *Elider) Emit(ev Event) {
	if ev.Kind == EvAccess && e.skip[ev.Instr] {
		e.dropped++
		return
	}
	if ev.Kind == EvAccess {
		e.kept++
	}
	e.out.Emit(ev)
}

// Stats reports accesses dropped (statically known) and kept (profiled).
func (e *Elider) Stats() (dropped, kept uint64) { return e.dropped, e.kept }
