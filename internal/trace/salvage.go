package trace

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
)

// PanicError is the typed error a salvaging drain returns when the source
// or the sink panicked mid-stream: the panic is contained, the stack is
// captured, and everything consumed before the crash is preserved.
type PanicError struct {
	// Value is the value the goroutine panicked with.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("trace: pipeline panicked: %v", e.Value)
}

// ctxPollInterval is how many events a context-aware drain delivers
// between cancellation checks. Checking per event would double the cost of
// the hot loop; a ~thousand-event granularity keeps cancellation latency
// in the microseconds at streaming rates.
const ctxPollInterval = 1024

// DrainContext is Drain with cooperative cancellation: it polls ctx every
// ctxPollInterval events and stops with ctx.Err() (context.Canceled or
// context.DeadlineExceeded) once the context is done. Events already
// delivered stay delivered — the count is always accurate.
//
// Cancellation is cooperative: a source blocked inside Next cannot be
// preempted, so a stalled producer is bounded by the source itself (or by
// the caller abandoning the profile), not by this loop.
func DrainContext(ctx context.Context, src Source, sink Sink) (int, error) {
	n := 0
	for {
		if n%ctxPollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		e, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Emit(e)
		n++
	}
}

// DrainSalvage is the fault-tolerant drain: DrainContext plus panic
// containment. A panic in src.Next or sink.Emit is recovered into a
// *PanicError instead of unwinding the caller, so the profile state
// accumulated in sink up to that point can still be finalized and
// reported. It is the degraded-mode entry point the lenient CLI paths are
// built on: pair it with a tracefmt.Reader in lenient mode and the result
// is "every salvageable event, or a typed reason why not".
func DrainSalvage(ctx context.Context, src Source, sink Sink) (n int, err error) {
	// The count is a named return so that events delivered before a panic
	// stay counted after recovery.
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	for {
		if n%ctxPollInterval == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return n, cerr
			}
		}
		e, serr := src.Next()
		if serr == io.EOF {
			return n, nil
		}
		if serr != nil {
			return n, serr
		}
		sink.Emit(e)
		n++
	}
}
