package trace

// Sampler forwards bursts of access events and drops the rest — the
// standard burst-sampling reduction for profiling overhead (the paper's §6
// names profile-collection cost as the thing a compiler integration would
// attack; sampling is the runtime-side lever). Object probes always pass
// through: the OMC must see every allocation and free or translation
// becomes wrong, which is why sampling the *access* stream is safe but
// sampling the *object* stream never is.
type Sampler struct {
	// Burst is how many consecutive accesses are forwarded per period.
	Burst uint64
	// Period is the access-stream cycle length (Period ≥ Burst).
	Period uint64
	// Out receives the sampled stream.
	Out Sink

	accesses uint64
	kept     uint64
}

// NewSampler forwards burst accesses out of every period.
func NewSampler(burst, period uint64, out Sink) *Sampler {
	if burst == 0 || period < burst {
		panic("trace: sampler needs 0 < burst <= period")
	}
	return &Sampler{Burst: burst, Period: period, Out: out}
}

// Emit implements Sink.
func (s *Sampler) Emit(e Event) {
	if e.Kind != EvAccess {
		s.Out.Emit(e) // object probes are never sampled away
		return
	}
	pos := s.accesses % s.Period
	s.accesses++
	if pos < s.Burst {
		s.kept++
		s.Out.Emit(e)
	}
}

// Stats reports accesses seen and forwarded.
func (s *Sampler) Stats() (seen, kept uint64) { return s.accesses, s.kept }
