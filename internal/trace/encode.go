package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format ("collect once, profile many"): a compact binary event
// log so traces can be captured once and replayed through any number of
// profilers offline.
//
//	magic   "ORMTRACE"
//	u8      version (1)
//	events, each:
//	  u8       kind (EvAccess | EvAlloc | EvFree) ORed with flag bits:
//	           0x80 = store (access events only)
//	  then per kind:
//	    access: uvarint instr, varint addr delta, uvarint size
//	            (time is implicit: it increments per access)
//	    alloc:  uvarint site, varint addr delta, uvarint size
//	    free:   varint addr delta
//
// Addresses are delta-encoded against the previous event's address, which
// makes strided traces tiny.

const traceMagic = "ORMTRACE"

const traceVersion = 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: bad trace file")

const storeFlag = 0x80

// Writer streams events to a trace file. It is itself a Sink, so it can be
// wired directly to the machine (or into a Tee alongside a live profiler).
type Writer struct {
	w        *bufio.Writer
	lastAddr int64
	err      error
	n        int64
}

// NewWriter starts a trace file on w.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriter(w)}
	tw.write([]byte(traceMagic))
	tw.write([]byte{traceVersion})
	return tw
}

func (t *Writer) write(b []byte) {
	if t.err != nil {
		return
	}
	n, err := t.w.Write(b)
	t.n += int64(n)
	t.err = err
}

func (t *Writer) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	t.write(buf[:binary.PutUvarint(buf[:], v)])
}

func (t *Writer) varint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	t.write(buf[:binary.PutVarint(buf[:], v)])
}

// Emit implements Sink.
func (t *Writer) Emit(e Event) {
	delta := int64(e.Addr) - t.lastAddr
	t.lastAddr = int64(e.Addr)
	switch e.Kind {
	case EvAccess:
		kind := byte(EvAccess)
		if e.Store {
			kind |= storeFlag
		}
		t.write([]byte{kind})
		t.uvarint(uint64(e.Instr))
		t.varint(delta)
		t.uvarint(uint64(e.Size))
	case EvAlloc:
		t.write([]byte{byte(EvAlloc)})
		t.uvarint(uint64(e.Site))
		t.varint(delta)
		t.uvarint(uint64(e.Size))
	case EvFree:
		t.write([]byte{byte(EvFree)})
		t.varint(delta)
	}
}

// Close flushes the file and returns the first error encountered, if any.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// BytesWritten reports the bytes emitted so far (before buffering flush).
func (t *Writer) BytesWritten() int64 { return t.n }

// ReadTrace replays a trace file into sink, reconstructing time stamps, and
// returns the number of events read.
func ReadTrace(r io.Reader, sink Sink) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != traceVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}

	var (
		lastAddr int64
		now      Time
		count    int
	)
	for {
		kindByte, err := br.ReadByte()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		store := kindByte&storeFlag != 0
		kind := EventKind(kindByte &^ storeFlag)
		var e Event
		switch kind {
		case EvAccess:
			instr, err := binary.ReadUvarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: access instr: %v", ErrBadTrace, err)
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: access addr: %v", ErrBadTrace, err)
			}
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: access size: %v", ErrBadTrace, err)
			}
			lastAddr += delta
			e = Event{Kind: EvAccess, Time: now, Instr: InstrID(instr), Addr: Addr(lastAddr), Size: uint32(size), Store: store}
			now++
		case EvAlloc:
			site, err := binary.ReadUvarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: alloc site: %v", ErrBadTrace, err)
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: alloc addr: %v", ErrBadTrace, err)
			}
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: alloc size: %v", ErrBadTrace, err)
			}
			lastAddr += delta
			e = Event{Kind: EvAlloc, Time: now, Site: SiteID(site), Addr: Addr(lastAddr), Size: uint32(size)}
		case EvFree:
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return count, fmt.Errorf("%w: free addr: %v", ErrBadTrace, err)
			}
			lastAddr += delta
			e = Event{Kind: EvFree, Time: now, Addr: Addr(lastAddr)}
		default:
			return count, fmt.Errorf("%w: unknown event kind %d", ErrBadTrace, kindByte)
		}
		sink.Emit(e)
		count++
	}
}
