// Package trace defines the event model shared by the simulated machine and
// the profilers: memory access events produced by instruction probes and
// object lifetime events produced by object probes.
//
// The event stream is the contract between the instrumentation front end
// (package memsim in this repository, IA-64 assembly probes in the paper) and
// the profiling framework. Everything above this package is independent of
// how the events were produced.
//
// # Concurrency and buffer ownership
//
// A Sink is fed by exactly one goroutine at a time: Emit calls are never
// concurrent, and an Event is owned by the callee only for the duration
// of the call (it is a value type — retain copies, not aliases). Sources
// are likewise single-consumer. Components that cross goroutines (the
// async collector, the fan-out stages in internal/profiler) batch events
// into pooled buffers whose ownership transfers with the channel send;
// a consumer must not touch a batch after returning it to its pool. The
// profiling event loop is zero-allocation at steady state under these
// rules — see docs/PERFORMANCE.md.
package trace

import "fmt"

// Addr is a virtual address in the simulated address space.
type Addr uint64

// InstrID identifies a static load or store instruction in the profiled
// program. IDs are assigned by the program being profiled and are stable
// across runs, like a PC in the paper's assembly-level instrumentation.
type InstrID uint32

// SiteID identifies a static allocation site. Objects allocated at the same
// site belong to the same group (paper §3.1: "the profiler groups allocated
// dynamic objects by static instruction").
type SiteID uint32

// Time is the logical time stamp: a counter starting at 0 and incremented
// after every collected access (paper §2.2).
type Time uint64

// EventKind discriminates the probe that produced an event.
type EventKind uint8

const (
	// EvAccess is an instruction-probe event: one executed load or store.
	EvAccess EventKind = iota
	// EvAlloc is an object-probe event: an object came into existence
	// (heap allocation, or static object registration at program start).
	EvAlloc
	// EvFree is an object-probe event: an object was destroyed.
	EvFree
)

// String returns the probe name.
func (k EventKind) String() string {
	switch k {
	case EvAccess:
		return "access"
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is a single probe record. Access events populate Instr, Addr, Size
// and Store; alloc events populate Site, Addr and Size; free events populate
// Addr only. Time is set on every event.
type Event struct {
	Kind  EventKind
	Time  Time
	Instr InstrID // access: the static load/store instruction
	Site  SiteID  // alloc: the static allocation site
	Addr  Addr    // address accessed, or object start address
	Size  uint32  // access width or object size in bytes
	Store bool    // access: true for stores, false for loads
}

// String renders the event for debugging output.
func (e Event) String() string {
	switch e.Kind {
	case EvAccess:
		op := "ld"
		if e.Store {
			op = "st"
		}
		return fmt.Sprintf("t%d %s i%d [%#x,%d]", e.Time, op, e.Instr, uint64(e.Addr), e.Size)
	case EvAlloc:
		return fmt.Sprintf("t%d alloc s%d [%#x,%d]", e.Time, e.Site, uint64(e.Addr), e.Size)
	case EvFree:
		return fmt.Sprintf("t%d free [%#x]", e.Time, uint64(e.Addr))
	default:
		return fmt.Sprintf("t%d ?kind=%d", e.Time, e.Kind)
	}
}

// Sink consumes probe events in program order. Implementations must not
// retain the Event beyond the call (it may be reused by the producer).
// A Sink is fed by a single goroutine; pipeline parallelism happens
// behind a Sink (profiler.Async decouples the producer, and the
// profiler.Sharded/Broadcast stages fan out downstream of translation),
// never in front of one — event order is the time dimension.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f(e).
func (f SinkFunc) Emit(e Event) { f(e) }

// SiteNamer is implemented by sinks that want the static allocation-site
// name table before events start flowing — trace writers persist it so a
// replayed trace reconstructs the same symbolic group names as a live run.
// The instrumentation front end (memsim.Machine.Start) announces every
// static site to its sink via NameSite, once, before the first event.
type SiteNamer interface {
	NameSite(site SiteID, name string)
}

type teeSink struct{ sinks []Sink }

// Emit implements Sink.
func (t teeSink) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// NameSite implements SiteNamer, forwarding to every child that cares.
func (t teeSink) NameSite(site SiteID, name string) {
	for _, s := range t.sinks {
		if n, ok := s.(SiteNamer); ok {
			n.NameSite(site, name)
		}
	}
}

// Tee fans one event stream out to several sinks, in order. The returned
// sink forwards site names (SiteNamer) to every child that implements it,
// so a trace writer can ride alongside a live profiler.
func Tee(sinks ...Sink) Sink {
	return teeSink{sinks: sinks}
}

// Discard is a Sink that drops every event. Useful for measuring native
// (uninstrumented) workload cost in dilation experiments.
var Discard Sink = SinkFunc(func(Event) {})

// Buffer is an in-memory trace: a Sink that records every event.
// The zero value is ready to use.
type Buffer struct {
	Events []Event
}

// Emit appends e to the buffer.
func (b *Buffer) Emit(e Event) { b.Events = append(b.Events, e) }

// Len reports the number of recorded events.
func (b *Buffer) Len() int { return len(b.Events) }

// Replay feeds every recorded event to sink, in order.
func (b *Buffer) Replay(sink Sink) {
	for _, e := range b.Events {
		sink.Emit(e)
	}
}

// Accesses returns only the access events of the trace.
func (b *Buffer) Accesses() []Event {
	out := make([]Event, 0, len(b.Events))
	for _, e := range b.Events {
		if e.Kind == EvAccess {
			out = append(out, e)
		}
	}
	return out
}

// Stats summarizes a trace.
type Stats struct {
	Accesses  uint64 // instruction-probe events
	Loads     uint64
	Stores    uint64
	Allocs    uint64 // object-probe alloc events
	Frees     uint64
	BytesLive uint64 // peak concurrently allocated bytes
	Instrs    int    // distinct static instructions observed
	Sites     int    // distinct allocation sites observed
}

// StatsBuilder accumulates Stats incrementally — it is a Sink, so summary
// statistics stream with O(live objects) memory instead of requiring the
// materialized trace. The zero value is ready to use.
type StatsBuilder struct {
	st        Stats
	instrs    map[InstrID]struct{}
	sites     map[SiteID]struct{}
	liveBytes uint64
	liveSize  map[Addr]uint32
}

// Emit implements Sink.
func (b *StatsBuilder) Emit(e Event) {
	switch e.Kind {
	case EvAccess:
		b.st.Accesses++
		if e.Store {
			b.st.Stores++
		} else {
			b.st.Loads++
		}
		if b.instrs == nil {
			b.instrs = make(map[InstrID]struct{})
		}
		b.instrs[e.Instr] = struct{}{}
	case EvAlloc:
		b.st.Allocs++
		if b.sites == nil {
			b.sites = make(map[SiteID]struct{})
			b.liveSize = make(map[Addr]uint32)
		}
		b.sites[e.Site] = struct{}{}
		b.liveBytes += uint64(e.Size)
		b.liveSize[e.Addr] = e.Size
		if b.liveBytes > b.st.BytesLive {
			b.st.BytesLive = b.liveBytes
		}
	case EvFree:
		b.st.Frees++
		if sz, ok := b.liveSize[e.Addr]; ok {
			b.liveBytes -= uint64(sz)
			delete(b.liveSize, e.Addr)
		}
	}
}

// Stats returns the statistics accumulated so far.
func (b *StatsBuilder) Stats() Stats {
	st := b.st
	st.Instrs = len(b.instrs)
	st.Sites = len(b.sites)
	return st
}

// Collect computes summary statistics over a recorded trace.
func Collect(events []Event) Stats {
	var b StatsBuilder
	for _, e := range events {
		b.Emit(e)
	}
	return b.Stats()
}

// RawBytes reports the size in bytes of the uncompressed access trace when
// stored as fixed-width (instruction-id, address) records — the "original
// data trace" against which the paper's Table 1 compression ratios are
// computed. Each record is 4 bytes of instruction ID plus 8 bytes of address.
func RawBytes(accesses uint64) uint64 { return accesses * 12 }
