package trace

// Approximate per-entry live sizes for budget accounting.
const (
	statsInstrBytes = 24 // instrs set entry
	statsSiteBytes  = 24 // sites set entry
	statsLiveBytes  = 32 // liveSize map entry
)

// Footprint reports the builder's approximate live bytes in O(1): its
// state is three maps whose lengths are tracked by the runtime.
func (b *StatsBuilder) Footprint() int64 {
	return 192 +
		int64(len(b.instrs))*statsInstrBytes +
		int64(len(b.sites))*statsSiteBytes +
		int64(len(b.liveSize))*statsLiveBytes
}
