package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomEvents(rng *rand.Rand, n int) []Event {
	events := make([]Event, 0, n)
	now := Time(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			events = append(events, Event{
				Kind: EvAlloc, Time: now,
				Site: SiteID(rng.Intn(32)),
				Addr: Addr(rng.Intn(1 << 30)),
				Size: uint32(1 + rng.Intn(4096)),
			})
		case 1:
			events = append(events, Event{Kind: EvFree, Time: now, Addr: Addr(rng.Intn(1 << 30))})
		default:
			events = append(events, Event{
				Kind: EvAccess, Time: now,
				Instr: InstrID(rng.Intn(1 << 12)),
				Addr:  Addr(rng.Intn(1 << 30)),
				Size:  uint32(1 << rng.Intn(4)),
				Store: rng.Intn(2) == 0,
			})
			now++
		}
	}
	return events
}

func TestTraceFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		events := randomEvents(rng, rng.Intn(2000))

		var file bytes.Buffer
		w := NewWriter(&file)
		for _, e := range events {
			w.Emit(e)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		var got Buffer
		n, err := ReadTrace(bytes.NewReader(file.Bytes()), &got)
		if err != nil {
			t.Fatalf("ReadTrace: %v", err)
		}
		if n != len(events) {
			t.Fatalf("read %d events, wrote %d", n, len(events))
		}
		for i := range events {
			if got.Events[i] != events[i] {
				t.Fatalf("event %d: %v != %v", i, got.Events[i], events[i])
			}
		}
	}
}

func TestTraceFileCompactForStrided(t *testing.T) {
	// A strided access trace must delta-encode to ~3 bytes/event.
	var file bytes.Buffer
	w := NewWriter(&file)
	const n = 10000
	for i := 0; i < n; i++ {
		w.Emit(Event{Kind: EvAccess, Time: Time(i), Instr: 1, Addr: Addr(0x1000 + i*8), Size: 8})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(file.Len()) / n
	if perEvent > 5 {
		t.Errorf("strided trace costs %.1f bytes/event, want <= 5", perEvent)
	}
	if uint64(file.Len()) >= RawBytes(n) {
		t.Errorf("trace file (%d B) not smaller than fixed-width encoding (%d B)", file.Len(), RawBytes(n))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil), Discard); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTTRACE\x01")), Discard); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("ORMTRACE\xff")), Discard); err == nil {
		t.Error("bad version accepted")
	}
	// Unknown event kind.
	bad := append([]byte("ORMTRACE\x01"), 0x7f)
	if _, err := ReadTrace(bytes.NewReader(bad), Discard); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncated mid-event.
	var file bytes.Buffer
	w := NewWriter(&file)
	w.Emit(Event{Kind: EvAccess, Instr: 300, Addr: 0x123456, Size: 8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := file.Bytes()
	for cut := len(traceMagic) + 2; cut < len(full); cut++ {
		if _, err := ReadTrace(bytes.NewReader(full[:cut]), Discard); err == nil {
			t.Errorf("truncated trace (%d of %d bytes) accepted", cut, len(full))
		}
	}
}

func TestTraceTimestampsReconstructed(t *testing.T) {
	// Time stamps are implicit in the file; the reader must regenerate the
	// per-access counter exactly.
	events := []Event{
		{Kind: EvAlloc, Time: 0, Site: 1, Addr: 0x1000, Size: 64},
		{Kind: EvAccess, Time: 0, Instr: 1, Addr: 0x1000, Size: 8},
		{Kind: EvAccess, Time: 1, Instr: 2, Addr: 0x1008, Size: 8, Store: true},
		{Kind: EvFree, Time: 2, Addr: 0x1000},
		{Kind: EvAccess, Time: 2, Instr: 1, Addr: 0x2000, Size: 4},
	}
	var file bytes.Buffer
	w := NewWriter(&file)
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got Buffer
	if _, err := ReadTrace(&file, &got); err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if got.Events[i] != events[i] {
			t.Errorf("event %d: %v != %v", i, got.Events[i], events[i])
		}
	}
}

// FuzzReadTrace feeds arbitrary bytes to the trace reader: it must never
// panic and must account events consistently.
func FuzzReadTrace(f *testing.F) {
	var file bytes.Buffer
	w := NewWriter(&file)
	w.Emit(Event{Kind: EvAlloc, Site: 1, Addr: 0x1000, Size: 64})
	w.Emit(Event{Kind: EvAccess, Instr: 1, Addr: 0x1000, Size: 8})
	w.Emit(Event{Kind: EvFree, Addr: 0x1000})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(file.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ORMTRACE\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Buffer
		n, err := ReadTrace(bytes.NewReader(data), &got)
		if n != got.Len() {
			t.Fatalf("reported %d events, delivered %d", n, got.Len())
		}
		_ = err
	})
}
