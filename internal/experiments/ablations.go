package experiments

import (
	"ormprof/internal/depend"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/profiler"
	"ormprof/internal/sequitur"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

// InvarianceRow reports, for one allocator policy, the sizes of the raw and
// object-relative profiles and whether the object-relative dimension streams
// are bit-identical to the reference policy's.
type InvarianceRow struct {
	Policy      string
	RASGSymbols int
	OMSGSymbols int
	// ObjectRelativeIdentical is true when the (instr, group, object,
	// offset) streams match the reference run exactly.
	ObjectRelativeIdentical bool
	// RawIdentical is true when the raw address stream matches the
	// reference run exactly (expected only for deterministic policies).
	RawIdentical bool
}

// AllocatorInvariance demonstrates the paper's §1 motivation: running the
// same program under different allocator policies changes the raw-address
// profile but leaves the object-relative profile untouched. The first
// policy in the result is the reference.
func AllocatorInvariance(name string, cfg workloads.Config) ([]InvarianceRow, error) {
	policies := []struct {
		label string
		make  func() memsim.Allocator
	}{
		{"freelist", func() memsim.Allocator { return memsim.NewFreeListAllocator() }},
		{"bump", func() memsim.Allocator { return memsim.NewBumpAllocator() }},
		{"randomized-seedA", func() memsim.Allocator { return memsim.NewRandomizedAllocator(1) }},
		{"randomized-seedB", func() memsim.Allocator { return memsim.NewRandomizedAllocator(2) }},
	}

	var refTuples []uint64 // flattened reference dimension streams
	var refRaw []uint64

	rows := make([]InvarianceRow, 0, len(policies))
	for _, pol := range policies {
		prog, err := workloads.New(name, cfg)
		if err != nil {
			return nil, err
		}
		buf, sites := Record(prog, pol.make())

		rasg := whomp.NewRASG()
		buf.Replay(rasg)

		wp := whomp.New(sites)
		buf.Replay(wp)
		profile := wp.Profile(name)

		// Flatten the object-relative tuples and the raw stream for
		// comparison.
		var tuples []uint64
		for _, r := range profile.ReconstructTuples() {
			tuples = append(tuples,
				uint64(r.Instr), uint64(r.Ref.Group), uint64(r.Ref.Object), r.Ref.Offset)
		}
		raw := rasg.Addr.Expand()

		row := InvarianceRow{
			Policy:      pol.label,
			RASGSymbols: rasg.Symbols(),
			OMSGSymbols: profile.Symbols(),
		}
		if refTuples == nil {
			refTuples = tuples
			refRaw = raw
			row.ObjectRelativeIdentical = true
			row.RawIdentical = true
		} else {
			row.ObjectRelativeIdentical = equalU64(tuples, refTuples)
			row.RawIdentical = equalU64(raw, refRaw)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CapRow reports LEAP quality and cost for one LMAD budget.
type CapRow struct {
	MaxLMADs     int
	ProfileBytes int
	AccPct       float64 // accesses captured
	InstrPct     float64 // instructions completely captured
	DepWithin10  float64 // dependence pairs correct-or-within-10 %
}

// LMADCapSweep runs the §4.1 trade-off ablation: sweep the per-stream LMAD
// budget and measure profile size, sample quality, and dependence accuracy
// on one benchmark. The paper fixes the budget at 30 as a good middle
// ground; the sweep shows the knee.
func LMADCapSweep(name string, cfg workloads.Config, caps []int) ([]CapRow, error) {
	prog, err := workloads.New(name, cfg)
	if err != nil {
		return nil, err
	}
	buf, sites := Record(prog, nil)

	ideal := depend.NewIdeal()
	buf.Replay(ideal)

	rows := make([]CapRow, 0, len(caps))
	for _, c := range caps {
		lp := leap.New(sites, c)
		buf.Replay(lp)
		profile := lp.Profile(name)
		accPct, instrPct := profile.SampleQuality()
		est := depend.FromLEAP(profile)
		dist := depend.Distribution(ideal.Result(), est)
		rows = append(rows, CapRow{
			MaxLMADs:     c,
			ProfileBytes: profile.EncodedSize(),
			AccPct:       accPct,
			InstrPct:     instrPct,
			DepWithin10:  100 * dist.WithinTen(),
		})
	}
	return rows, nil
}

// DecompositionRow splits WHOMP's win over RASG into its two ingredients:
// object-relative *translation* (replace each raw address by a packed
// (group, object, offset) symbol, keep the RASG stream structure) and
// horizontal *decomposition* (one grammar per tuple dimension).
type DecompositionRow struct {
	Benchmark         string
	RASGBytes         int     // instr + raw address grammars, serialized
	TranslatedBytes   int     // instr + packed object-relative grammars
	OMSGBytes         int     // full per-dimension grammars
	TranslationOnly   float64 // % gain of translated over RASG
	FullDecomposition float64 // % gain of OMSG over RASG
}

// DecompositionAblation measures the contribution of each ingredient on
// every benchmark.
func DecompositionAblation(cfg workloads.Config) []DecompositionRow {
	rows := make([]DecompositionRow, 0, len(workloads.Names()))
	for _, prog := range workloads.All(cfg) {
		buf, sites := Record(prog, nil)

		rasg := whomp.NewRASG()
		buf.Replay(rasg)

		wp := whomp.New(sites)
		buf.Replay(wp)
		profile := wp.Profile(prog.Name())

		// Translation-only: the raw address stream with each address
		// replaced by an injectively packed object-relative symbol, so
		// allocator artifacts vanish but the stream stays interleaved.
		recs, _ := profiler.TranslateTrace(buf.Events, sites)
		instrG := sequitur.New()
		addrG := sequitur.New()
		for _, r := range recs {
			instrG.Append(uint64(r.Instr))
			addrG.Append(packRef(r))
		}

		row := DecompositionRow{
			Benchmark:       prog.Name(),
			RASGBytes:       rasg.EncodedBytes(),
			TranslatedBytes: instrG.EncodedSize() + addrG.EncodedSize(),
			OMSGBytes:       profile.EncodedBytes(),
		}
		if row.RASGBytes > 0 {
			base := float64(row.RASGBytes)
			row.TranslationOnly = 100 * (1 - float64(row.TranslatedBytes)/base)
			row.FullDecomposition = 100 * (1 - float64(row.OMSGBytes)/base)
		}
		rows = append(rows, row)
	}
	return rows
}

// packRef packs an object-relative reference into one symbol, injectively
// for the scales this repository produces (group < 2^18, object serial
// < 2^20, offset < 2^24). Mapped symbols start at 2^44, above every raw
// address (< 2^39), so unmapped references can keep their raw address.
func packRef(r profiler.Record) uint64 {
	if r.Ref.Group == 0 {
		return r.Ref.Offset // raw address of an unmapped access
	}
	return uint64(r.Ref.Group)<<44 | uint64(r.Ref.Object)<<24 | r.Ref.Offset
}

// PoolPolicyRow reports profile characteristics for one pool-handling
// policy (the paper's footnote 2).
type PoolPolicyRow struct {
	Policy      string
	OMSGBytes   int
	RASGBytes   int
	GainPct     float64
	AccPct      float64 // LEAP offset-level capture
	DepWithin10 float64 // dependence accuracy vs ideal
}

// PoolPolicyAblation reproduces footnote 2's design choice on 197.parser:
// treating the custom allocation pool as a single object (the paper's
// default) versus profiling each carved record as its own object.
func PoolPolicyAblation(cfg workloads.Config) ([]PoolPolicyRow, error) {
	run := func(label string, individual bool) (PoolPolicyRow, error) {
		c := cfg
		c.IndividualAlloc = individual
		prog, err := workloads.New("197.parser", c)
		if err != nil {
			return PoolPolicyRow{}, err
		}
		buf, sites := Record(prog, nil)

		rasg := whomp.NewRASG()
		buf.Replay(rasg)
		wp := whomp.New(sites)
		buf.Replay(wp)
		wprof := wp.Profile("197.parser")

		lp := leap.New(sites, 0)
		buf.Replay(lp)
		lprof := lp.Profile("197.parser")
		accPct, _ := lprof.SampleQuality()

		ideal := depend.NewIdeal()
		buf.Replay(ideal)
		dist := depend.Distribution(ideal.Result(), depend.FromLEAP(lprof))

		return PoolPolicyRow{
			Policy:      label,
			OMSGBytes:   wprof.EncodedBytes(),
			RASGBytes:   rasg.EncodedBytes(),
			GainPct:     whomp.CompressionGain(wprof, rasg),
			AccPct:      accPct,
			DepWithin10: 100 * dist.WithinTen(),
		}, nil
	}
	pooled, err := run("pool-as-object", false)
	if err != nil {
		return nil, err
	}
	individual, err := run("record-per-object", true)
	if err != nil {
		return nil, err
	}
	return []PoolPolicyRow{pooled, individual}, nil
}

// ScalingRow reports compression at one workload scale.
type ScalingRow struct {
	Scale       int
	Accesses    uint64
	LEAPBytes   int
	Compression float64
	AccPct      float64
}

// CompressionScaling measures how LEAP's Table 1 compression ratio grows
// with trace length: the profile size is bounded by the LMAD budget, so the
// ratio is roughly linear in the access count — which is how the paper's
// full SPEC train runs reach 3-4 orders of magnitude.
func CompressionScaling(name string, seed int64, scales []int) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(scales))
	for _, sc := range scales {
		prog, err := workloads.New(name, workloads.Config{Scale: sc, Seed: seed})
		if err != nil {
			return nil, err
		}
		buf, sites := Record(prog, nil)
		lp := leap.New(sites, 0)
		buf.Replay(lp)
		profile := lp.Profile(name)
		accPct, _ := profile.SampleQuality()
		rows = append(rows, ScalingRow{
			Scale:       sc,
			Accesses:    profile.Records,
			LEAPBytes:   profile.EncodedSize(),
			Compression: profile.CompressionRatio(),
			AccPct:      accPct,
		})
	}
	return rows, nil
}
