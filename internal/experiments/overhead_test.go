package experiments

import (
	"testing"

	"ormprof/internal/depend"
	"ormprof/internal/leap"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

// BenchmarkProfilerThroughput compares the event-processing cost of every
// profiler in the repository over the same recorded trace — the practical
// counterpart of the paper's dilation measurements (its Connors window was
// chosen to match LEAP's running time).
func BenchmarkProfilerThroughput(b *testing.B) {
	prog, err := workloads.New("197.parser", workloads.Config{Scale: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := Record(prog, nil)
	events := float64(len(buf.Events))

	run := func(name string, mk func() trace.Sink) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf.Replay(mk())
			}
			b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}

	run("discard", func() trace.Sink { return trace.Discard })
	run("rasg", func() trace.Sink { return whomp.NewRASG() })
	run("whomp", func() trace.Sink { return whomp.New(sites) })
	run("leap", func() trace.Sink { return leap.New(sites, 0) })
	run("connors", func() trace.Sink { return depend.NewConnors(0) })
	run("ideal-depend", func() trace.Sink { return depend.NewIdeal() })
	run("ideal-stride", func() trace.Sink { return stride.NewIdeal() })
}
