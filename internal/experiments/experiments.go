// Package experiments reproduces every figure and table of the paper's
// evaluation (Figures 5-9, Table 1, plus two ablations), producing
// structured results consumed by the cmd tools, the benchmark harness, and
// EXPERIMENTS.md.
package experiments

import (
	"compress/flate"
	"encoding/binary"
	"io"
	"time"

	"ormprof/internal/depend"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

// Record runs prog on a fresh machine and returns the full probe-event
// trace plus the machine's static site names.
func Record(prog memsim.Program, alloc memsim.Allocator) (*trace.Buffer, map[trace.SiteID]string) {
	buf := &trace.Buffer{}
	var opts []memsim.Option
	if alloc != nil {
		opts = append(opts, memsim.WithAllocator(alloc))
	}
	m := memsim.Run(prog, buf, opts...)
	return buf, m.StaticSites()
}

// Fig5Row is one benchmark's Figure 5 data: OMSG vs RASG size and
// collection time.
type Fig5Row struct {
	Benchmark   string
	Accesses    uint64
	RASGSymbols int
	OMSGSymbols int
	RASGBytes   int
	OMSGBytes   int
	// FlateBytes is the raw fixed-width access trace compressed with
	// DEFLATE — an off-the-shelf general-purpose baseline the paper did
	// not include but that calibrates the grammar results.
	FlateBytes int
	GainPct    float64 // paper metric: % compression of OMSG over RASG
	RASGTime   time.Duration
	OMSGTime   time.Duration
}

// Fig5 collects WHOMP (OMSG) and raw-address (RASG) profiles for every
// benchmark and compares their sizes, reproducing Figure 5.
func Fig5(cfg workloads.Config) []Fig5Row {
	rows := make([]Fig5Row, 0, len(workloads.Names()))
	for _, prog := range workloads.All(cfg) {
		buf, sites := Record(prog, nil)

		startR := time.Now()
		rasg := whomp.NewRASG()
		buf.Replay(rasg)
		rasgTime := time.Since(startR)

		startO := time.Now()
		wp := whomp.New(sites)
		buf.Replay(wp)
		profile := wp.Profile(prog.Name())
		omsgTime := time.Since(startO)

		rows = append(rows, Fig5Row{
			Benchmark:   prog.Name(),
			Accesses:    profile.Records,
			RASGSymbols: rasg.Symbols(),
			OMSGSymbols: profile.Symbols(),
			RASGBytes:   rasg.EncodedBytes(),
			OMSGBytes:   profile.EncodedBytes(),
			FlateBytes:  flateSize(buf),
			GainPct:     whomp.CompressionGain(profile, rasg),
			RASGTime:    rasgTime,
			OMSGTime:    omsgTime,
		})
	}
	return rows
}

// flateSize compresses the fixed-width (instr, addr) access records with
// DEFLATE (best compression) and reports the output size.
func flateSize(buf *trace.Buffer) int {
	cw := &countWriter{}
	fw, err := flate.NewWriter(cw, flate.BestCompression)
	if err != nil {
		return 0
	}
	var rec [12]byte
	for _, e := range buf.Events {
		if e.Kind != trace.EvAccess {
			continue
		}
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.Instr))
		binary.LittleEndian.PutUint64(rec[4:12], uint64(e.Addr))
		if _, err := fw.Write(rec[:]); err != nil {
			return 0
		}
	}
	if err := fw.Close(); err != nil {
		return 0
	}
	return cw.n
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)

// AverageGain computes Figure 5's headline number (paper: 22 %).
func AverageGain(rows []Fig5Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.GainPct
	}
	return sum / float64(len(rows))
}

// DepRow is one benchmark's dependence-error data for Figures 6-8.
type DepRow struct {
	Benchmark string
	LEAP      depend.ErrorDist // Figure 6
	Connors   depend.ErrorDist // Figure 7
}

// DepConfig parametrizes the dependence experiment.
type DepConfig struct {
	Workloads workloads.Config
	MaxLMADs  int // LEAP budget; ≤ 0 = paper default (30)
	Window    int // Connors history; ≤ 0 = depend.DefaultWindow
}

// Dependence runs the §4.2.1 experiment: for every benchmark, collect the
// ideal (lossless raw-address) dependence profile, the LEAP estimate, and
// the Connors estimate, and compute the two error distributions.
func Dependence(cfg DepConfig) []DepRow {
	rows := make([]DepRow, 0, len(workloads.Names()))
	for _, prog := range workloads.All(cfg.Workloads) {
		buf, sites := Record(prog, nil)

		ideal := depend.NewIdeal()
		buf.Replay(ideal)

		lp := leap.New(sites, cfg.MaxLMADs)
		buf.Replay(lp)
		leapRes := depend.FromLEAP(lp.Profile(prog.Name()))

		con := depend.NewConnors(cfg.Window)
		buf.Replay(con)

		rows = append(rows, DepRow{
			Benchmark: prog.Name(),
			LEAP:      depend.Distribution(ideal.Result(), leapRes),
			Connors:   depend.Distribution(ideal.Result(), con.Result()),
		})
	}
	return rows
}

// Fig8 summarizes a dependence run as the paper's Figure 8: the average
// LEAP and Connors distributions plus the headline improvement in
// correct-or-within-10 % pairs (paper: 56 %).
type Fig8 struct {
	LEAP, Connors  depend.ErrorDist
	LEAPWithin10   float64
	ConnWithin10   float64
	ImprovementPct float64
}

// Summarize computes Figure 8 from the per-benchmark rows.
func Summarize(rows []DepRow) Fig8 {
	ld := make([]depend.ErrorDist, len(rows))
	cd := make([]depend.ErrorDist, len(rows))
	for i, r := range rows {
		ld[i] = r.LEAP
		cd[i] = r.Connors
	}
	f := Fig8{
		LEAP:    depend.Average(ld...),
		Connors: depend.Average(cd...),
	}
	f.LEAPWithin10 = f.LEAP.WithinTen()
	f.ConnWithin10 = f.Connors.WithinTen()
	if f.ConnWithin10 > 0 {
		f.ImprovementPct = 100 * (f.LEAPWithin10 - f.ConnWithin10) / f.ConnWithin10
	}
	return f
}

// Fig9Row is one benchmark's stride-score data.
type Fig9Row struct {
	Benchmark string
	Real      int     // strongly strided instructions per the lossless profiler
	Found     int     // of those, identified by LEAP
	Score     float64 // percentage (Figure 9 bar)
	// ExtScore is the score with the §4.2.2 cross-object extension (uses
	// the run-dependent object table).
	ExtScore float64
}

// Fig9 runs the §4.2.2 experiment: strongly strided instructions from LEAP
// vs the lossless stride profiler, with and without the cross-object
// extension.
func Fig9(cfg workloads.Config, maxLMADs int) []Fig9Row {
	rows := make([]Fig9Row, 0, len(workloads.Names()))
	for _, prog := range workloads.All(cfg) {
		buf, sites := Record(prog, nil)

		ideal := stride.NewIdeal()
		buf.Replay(ideal)
		real := ideal.StronglyStrided()

		lp := leap.New(sites, maxLMADs)
		buf.Replay(lp)
		profile := lp.Profile(prog.Name())
		est := stride.FromLEAP(profile)
		ext := stride.FromLEAPCrossObject(profile, stride.OMCLocator{OMC: lp.OMC()})

		found := 0
		for id, ri := range real {
			if ei, ok := est[id]; ok && ei.Stride == ri.Stride {
				found++
			}
		}
		rows = append(rows, Fig9Row{
			Benchmark: prog.Name(),
			Real:      len(real),
			Found:     found,
			Score:     stride.Score(real, est),
			ExtScore:  stride.Score(real, ext),
		})
	}
	return rows
}

// AverageScore computes Figure 9's headline number (paper: 88 %).
func AverageScore(rows []Fig9Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Score
	}
	return sum / float64(len(rows))
}

// Table1Row is one benchmark's Table 1 data.
type Table1Row struct {
	Benchmark   string
	Accesses    uint64
	Compression float64 // raw trace bytes / LEAP profile bytes
	Dilation    float64 // profiled wall time / native wall time
	AccPct      float64 // % of accesses captured in LMADs
	InstrPct    float64 // % of instructions completely captured
}

// Table1 reproduces the LEAP size/speed/quality table. Dilation compares an
// instrumented run (machine wired straight into the LEAP pipeline) against
// a native run (probe events discarded).
func Table1(cfg workloads.Config, maxLMADs int) []Table1Row {
	rows := make([]Table1Row, 0, len(workloads.Names()))
	for _, name := range workloads.Names() {
		prog := mustWorkload(name, cfg)
		startN := time.Now()
		memsim.Run(prog, trace.Discard)
		native := time.Since(startN)

		prog = mustWorkload(name, cfg) // fresh program state
		lp := leap.New(nil, maxLMADs)
		startP := time.Now()
		m := memsim.Run(prog, lp)
		profiled := time.Since(startP)

		profile := lp.Profile(name)
		accPct, instrPct := profile.SampleQuality()
		dilation := 0.0
		if native > 0 {
			dilation = float64(profiled) / float64(native)
		}
		loads, stores, _, _ := m.Counters()
		rows = append(rows, Table1Row{
			Benchmark:   name,
			Accesses:    loads + stores,
			Compression: profile.CompressionRatio(),
			Dilation:    dilation,
			AccPct:      accPct,
			InstrPct:    instrPct,
		})
	}
	return rows
}

// Table1Average computes the paper's "Average" row.
func Table1Average(rows []Table1Row) Table1Row {
	avg := Table1Row{Benchmark: "Average"}
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.Accesses += r.Accesses
		avg.Compression += r.Compression
		avg.Dilation += r.Dilation
		avg.AccPct += r.AccPct
		avg.InstrPct += r.InstrPct
	}
	n := float64(len(rows))
	avg.Accesses /= uint64(len(rows))
	avg.Compression /= n
	avg.Dilation /= n
	avg.AccPct /= n
	avg.InstrPct /= n
	return avg
}

func mustWorkload(name string, cfg workloads.Config) memsim.Program {
	p, err := workloads.New(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}
