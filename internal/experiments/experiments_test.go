// Integration tests: each test runs one of the paper's experiments at test
// scale and asserts that the headline *shape* of the published result holds
// (who wins, roughly by how much). Exact values are recorded in
// EXPERIMENTS.md; these bounds are deliberately loose so the suite stays
// robust to workload tuning.
package experiments

import (
	"testing"

	"ormprof/internal/decomp"
	"ormprof/internal/memsim"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func cfg() workloads.Config { return workloads.Config{Scale: 1, Seed: 42} }

func TestFig5OMSGBeatsRASG(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows := Fig5(cfg())
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	avg := AverageGain(rows)
	// Paper: 22% average. Require a clear OMSG win.
	if avg < 10 {
		t.Errorf("average OMSG gain = %.1f%%, want >= 10%% (paper: 22%%)", avg)
	}
	wins := 0
	for _, r := range rows {
		if r.Accesses == 0 || r.OMSGBytes == 0 || r.RASGBytes == 0 {
			t.Errorf("%s: degenerate row %+v", r.Benchmark, r)
		}
		if r.GainPct > 0 {
			wins++
		}
	}
	if wins < 5 {
		t.Errorf("OMSG smaller on only %d/7 benchmarks", wins)
	}
}

func TestDependenceLEAPBeatsConnors(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows := Dependence(DepConfig{Workloads: cfg()})
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	f8 := Summarize(rows)
	// Paper: LEAP ~75% within ten, 56% better than Connors. Require LEAP
	// to be clearly ahead.
	if f8.LEAPWithin10 <= f8.ConnWithin10 {
		t.Errorf("LEAP within-10 (%.2f) not better than Connors (%.2f)", f8.LEAPWithin10, f8.ConnWithin10)
	}
	if f8.ImprovementPct < 20 {
		t.Errorf("improvement = %.0f%%, want >= 20%% (paper: 56%%)", f8.ImprovementPct)
	}
	if f8.LEAPWithin10 < 0.40 {
		t.Errorf("LEAP within-10 = %.2f, want >= 0.40 (paper: ~0.75)", f8.LEAPWithin10)
	}
	// Connors must never overestimate: all its mass at error <= 0.
	for i := 11; i < len(f8.Connors.Bins); i++ {
		if f8.Connors.Bins[i] > 0 {
			t.Errorf("Connors has positive-error mass in bin %d", i)
		}
	}
}

func TestFig9StrideScore(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows := Fig9(cfg(), 0)
	avg := AverageScore(rows)
	// Paper: 88% average.
	if avg < 70 {
		t.Errorf("average stride score = %.1f%%, want >= 70%% (paper: 88%%)", avg)
	}
	anyReal := false
	for _, r := range rows {
		if r.Real > 0 {
			anyReal = true
		}
		if r.Found > r.Real {
			t.Errorf("%s: found %d > real %d", r.Benchmark, r.Found, r.Real)
		}
	}
	if !anyReal {
		t.Error("no benchmark has strongly strided instructions")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows := Table1(cfg(), 0)
	avg := Table1Average(rows)
	// Paper: 3539x average compression (three orders of magnitude);
	// at test scale two orders is the floor.
	if avg.Compression < 50 {
		t.Errorf("average compression = %.0fx, want >= 50x", avg.Compression)
	}
	// Paper: 11.5x dilation. Instrumentation must cost something but not
	// be absurd.
	if avg.Dilation < 1 || avg.Dilation > 200 {
		t.Errorf("average dilation = %.1fx, out of sane range", avg.Dilation)
	}
	// Paper: 46.5% / 40.5% average sample quality.
	if avg.AccPct < 25 || avg.AccPct > 75 {
		t.Errorf("accesses captured = %.1f%%, want 25-75%% (paper: 46.5%%)", avg.AccPct)
	}
	// Shape: parser captures most, mcf least (paper Table 1 ordering).
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	if byName["197.parser"].AccPct <= byName["181.mcf"].AccPct {
		t.Errorf("parser (%.1f%%) should capture more than mcf (%.1f%%)",
			byName["197.parser"].AccPct, byName["181.mcf"].AccPct)
	}
	if byName["181.mcf"].AccPct > 25 {
		t.Errorf("mcf captured %.1f%%, want low (paper: 6.5%%)", byName["181.mcf"].AccPct)
	}
}

func TestAllocatorInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows, err := AllocatorInvariance("197.parser", cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		// The central claim (§1): object-relative streams are identical
		// under every allocator policy.
		if !r.ObjectRelativeIdentical {
			t.Errorf("policy %s: object-relative profile differs from reference", r.Policy)
		}
		// The raw stream must differ for at least the non-reference
		// policies with different layouts.
		if i > 0 && r.RawIdentical {
			t.Errorf("policy %s: raw stream identical to freelist reference (expected artifacts)", r.Policy)
		}
	}
}

func TestLMADCapSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	caps := []int{5, 30, 100}
	rows, err := LMADCapSweep("256.bzip2", cfg(), caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Larger budgets: never-smaller profiles and never-lower capture.
	for i := 1; i < len(rows); i++ {
		if rows[i].ProfileBytes < rows[i-1].ProfileBytes {
			t.Errorf("cap %d profile (%d B) smaller than cap %d (%d B)",
				rows[i].MaxLMADs, rows[i].ProfileBytes, rows[i-1].MaxLMADs, rows[i-1].ProfileBytes)
		}
		if rows[i].AccPct+1e-9 < rows[i-1].AccPct {
			t.Errorf("cap %d capture (%.1f%%) below cap %d (%.1f%%)",
				rows[i].MaxLMADs, rows[i].AccPct, rows[i-1].MaxLMADs, rows[i-1].AccPct)
		}
	}
}

func TestDecompositionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows := DecompositionAblation(cfg())
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RASGBytes == 0 || r.TranslatedBytes == 0 || r.OMSGBytes == 0 {
			t.Errorf("%s: degenerate row %+v", r.Benchmark, r)
		}
	}
}

func TestCompressionScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows, err := CompressionScaling("164.gzip", 42, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Compression <= rows[i-1].Compression {
			t.Errorf("compression did not grow with scale: %v then %v",
				rows[i-1].Compression, rows[i].Compression)
		}
		// The profile itself must stay within a small factor (it is
		// LMAD-budget-bounded, not trace-length-bounded).
		if rows[i].LEAPBytes > rows[0].LEAPBytes*3 {
			t.Errorf("profile bytes grew with trace length: %d at scale %d vs %d at scale %d",
				rows[i].LEAPBytes, rows[i].Scale, rows[0].LEAPBytes, rows[0].Scale)
		}
	}
}

func TestPoolPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	rows, err := PoolPolicyAblation(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	pooled, individual := rows[0], rows[1]
	// Footnote 2's choice must be visibly better on parser.
	if pooled.AccPct <= individual.AccPct {
		t.Errorf("pooling should capture more: %.1f vs %.1f", pooled.AccPct, individual.AccPct)
	}
	if pooled.OMSGBytes >= individual.OMSGBytes {
		t.Errorf("pooling should compress better: %d vs %d bytes", pooled.OMSGBytes, individual.OMSGBytes)
	}
}

// TestTable1PerBenchmarkShape pins each benchmark's LMAD capture to a window
// around the regime the paper reports for its namesake (Table 1), so
// workload tuning cannot silently drift the evaluation out of the paper's
// shape.
func TestTable1PerBenchmarkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	windows := map[string][2]float64{
		"164.gzip":   {50, 90}, // paper: 57.1
		"175.vpr":    {8, 40},  // paper: 34.7
		"181.mcf":    {3, 20},  // paper: 6.5
		"186.crafty": {35, 65}, // paper: 50.3
		"197.parser": {65, 95}, // paper: 76.3
		"256.bzip2":  {15, 45}, // paper: 31.6
		"300.twolf":  {40, 75}, // paper: 66.5
	}
	rows := Table1(cfg(), 0)
	for _, r := range rows {
		w, ok := windows[r.Benchmark]
		if !ok {
			t.Errorf("no window for %s", r.Benchmark)
			continue
		}
		if r.AccPct < w[0] || r.AccPct > w[1] {
			t.Errorf("%s: accesses captured %.1f%% outside paper-shape window [%.0f, %.0f]",
				r.Benchmark, r.AccPct, w[0], w[1])
		}
	}
}

// TestOMSGBytesAllocatorInvariant strengthens the invariance claim to the
// byte level: the serialized OMSG grammars must be identical under every
// allocator policy (the object table differs — it is the run-dependent
// half).
func TestOMSGBytesAllocatorInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	t.Parallel()
	encode := func(alloc memsim.Allocator) []string {
		prog, err := workloads.New("197.parser", cfg())
		if err != nil {
			t.Fatal(err)
		}
		buf, sites := Record(prog, alloc)
		wp := whomp.New(sites)
		buf.Replay(wp)
		profile := wp.Profile("197.parser")
		var out []string
		for _, d := range decomp.Dims {
			out = append(out, string(profile.Grammars[d].Encode()))
		}
		return out
	}
	ref := encode(memsim.NewFreeListAllocator())
	for _, alloc := range []memsim.Allocator{
		memsim.NewBumpAllocator(),
		memsim.NewRandomizedAllocator(9),
	} {
		got := encode(alloc)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("policy %s: %v grammar bytes differ from reference", alloc.PolicyName(), decomp.Dims[i])
			}
		}
	}
}
