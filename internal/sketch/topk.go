package sketch

import "sort"

// Entry is one tracked heavy hitter. Count is the space-saving counter
// (an overestimate); Err is the per-entry overcount bound, so the true
// count lies in [Count−Err, Count].
type Entry struct {
	Key   Key
	Count uint64
	Err   uint64
}

// TopK is a space-saving heavy-hitter summary with k counters. Any key
// whose true count exceeds Total/k is guaranteed to be tracked, and each
// tracked key's true count lies within [Count−Err, Count]. Memory is
// fixed at construction: k slots plus the index map, both charged up
// front by Footprint.
type TopK struct {
	k     int
	total uint64
	idx   map[Key]int
	slots []Entry
}

// NewTopK builds a summary tracking at most k keys.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{
		k:     k,
		idx:   make(map[Key]int, k),
		slots: make([]Entry, 0, k),
	}
}

// Add adds weight n to key. If the key is untracked and all k slots are
// full, the minimum-count slot is evicted: the new key inherits its
// count (plus n) and records the inherited count as its error bound.
// Ties on the minimum are broken deterministically by key order, so the
// summary's state is a pure function of the input sequence.
func (t *TopK) Add(key Key, n uint64) {
	if i, ok := t.idx[key]; ok {
		t.slots[i].Count += n
		t.total += n
		return
	}
	if len(t.slots) < t.k {
		t.idx[key] = len(t.slots)
		t.slots = append(t.slots, Entry{Key: key, Count: n})
		t.total += n
		return
	}
	// Evict the minimum-count slot; break ties by smallest key so the
	// choice does not depend on map iteration or insertion history.
	min := 0
	for i := 1; i < len(t.slots); i++ {
		if less(t.slots[i], t.slots[min]) {
			min = i
		}
	}
	old := t.slots[min]
	delete(t.idx, old.Key)
	t.idx[key] = min
	t.slots[min] = Entry{Key: key, Count: old.Count + n, Err: old.Count}
	t.total += n
}

func less(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	if a.Key.A != b.Key.A {
		return a.Key.A < b.Key.A
	}
	return a.Key.B < b.Key.B
}

// Total returns the total weight added.
func (t *TopK) Total() uint64 { return t.total }

// K returns the summary's capacity.
func (t *TopK) K() int { return t.k }

// ErrorBound returns Total/k — the guaranteed maximum overcount of any
// entry, and the threshold above which every key is guaranteed tracked.
func (t *TopK) ErrorBound() uint64 {
	return t.total / uint64(t.k)
}

// Entries returns the tracked entries in canonical order: count
// descending, then key ascending. The slice is freshly allocated.
func (t *TopK) Entries() []Entry {
	out := make([]Entry, len(t.slots))
	copy(out, t.slots)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Key.A != out[j].Key.A {
			return out[i].Key.A < out[j].Key.A
		}
		return out[i].Key.B < out[j].Key.B
	})
	return out
}

// Estimate returns the tracked count and error bound for key, or
// (0, false) if untracked (meaning its true count ≤ Total/k).
func (t *TopK) Estimate(key Key) (Entry, bool) {
	if i, ok := t.idx[key]; ok {
		return t.slots[i], true
	}
	return Entry{}, false
}

// Footprint returns the fixed heap footprint in bytes: k slots plus the
// index map, charged at capacity regardless of how many are occupied.
const topkSlotBytes = 32 + 48 // Entry + map bucket share

func (t *TopK) Footprint() int64 {
	return int64(t.k)*topkSlotBytes + 64
}

// Merge folds other into t using the mergeable-summaries construction
// (Agarwal et al.): counts and error bounds of common keys add; a key
// present on only one side is charged the other side's minimum count as
// additional error; the combined set is then truncated back to the k
// largest. The result remains a valid space-saving summary of the
// concatenated streams with bound (t.Total+other.Total)/k.
func (t *TopK) Merge(other *TopK) error {
	if t.k != other.k {
		return &MismatchError{What: "top-k capacities differ"}
	}
	tMin := t.minCountFloor()
	oMin := other.minCountFloor()
	merged := make(map[Key]Entry, len(t.slots)+len(other.slots))
	for _, e := range t.slots {
		merged[e.Key] = e
	}
	for _, e := range other.slots {
		if cur, ok := merged[e.Key]; ok {
			cur.Count += e.Count
			cur.Err += e.Err
			merged[e.Key] = cur
		} else {
			merged[e.Key] = Entry{Key: e.Key, Count: e.Count + tMin, Err: e.Err + tMin}
		}
	}
	for _, e := range t.slots {
		if _, ok := other.idx[e.Key]; !ok {
			cur := merged[e.Key]
			cur.Count += oMin
			cur.Err += oMin
			merged[e.Key] = cur
		}
	}
	all := make([]Entry, 0, len(merged))
	for _, e := range merged {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Key.A != all[j].Key.A {
			return all[i].Key.A < all[j].Key.A
		}
		return all[i].Key.B < all[j].Key.B
	})
	if len(all) > t.k {
		all = all[:t.k]
	}
	t.slots = t.slots[:0]
	for k := range t.idx {
		delete(t.idx, k)
	}
	for i, e := range all {
		t.idx[e.Key] = i
		t.slots = append(t.slots, e)
	}
	t.total += other.total
	return nil
}

// minCountFloor is the count a key absent from this summary could have
// accumulated unseen: 0 while slots remain free, else the minimum
// tracked count.
func (t *TopK) minCountFloor() uint64 {
	if len(t.slots) < t.k {
		return 0
	}
	min := t.slots[0].Count
	for _, e := range t.slots[1:] {
		if e.Count < min {
			min = e.Count
		}
	}
	return min
}
