package sketch

import (
	"math"
	"math/bits"
)

// Bloom is a bloom filter over Keys: m bits (power of two) probed by k
// seeded double hashes. Test never returns a false negative; the false
// positive probability is computed from the actual bit density rather
// than an a-priori estimate, so FPP reflects the filter as loaded.
type Bloom struct {
	words []uint64
	mask  uint64 // bit-index mask, m−1
	k     int
	seed  uint64
	ones  uint64 // set bits
	adds  uint64 // Add calls
	news  uint64 // Add calls that found the key absent
}

// NewBloom builds a filter with at least bits bits (rounded up to a
// power of two, minimum 64) and k hash functions.
func NewBloom(bits, k int, seed uint64) *Bloom {
	if bits < 64 {
		bits = 64
	}
	if k < 1 {
		k = 1
	}
	m := ceilPow2(bits)
	return &Bloom{
		words: make([]uint64, m/64),
		mask:  m - 1,
		k:     k,
		seed:  seed,
	}
}

// Add inserts k and reports whether it was (probably) already present:
// true means every probed bit was already set. A false return is exact —
// the key was definitely new.
func (b *Bloom) Add(key Key) (present bool) {
	h1, h2 := hash2(b.seed, key)
	present = true
	for i := 0; i < b.k; i++ {
		bit := h1 & b.mask
		w, m := bit/64, uint64(1)<<(bit%64)
		if b.words[w]&m == 0 {
			present = false
			b.words[w] |= m
			b.ones++
		}
		h1 += h2
	}
	b.adds++
	if !present {
		b.news++
	}
	return present
}

// Test reports whether key may have been added. False is exact; true is
// wrong with probability FPP.
func (b *Bloom) Test(key Key) bool {
	h1, h2 := hash2(b.seed, key)
	for i := 0; i < b.k; i++ {
		bit := h1 & b.mask
		if b.words[bit/64]&(uint64(1)<<(bit%64)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// FPP returns the current false-positive probability (ones/m)^k, using
// the filter's observed bit density.
func (b *Bloom) FPP() float64 {
	density := float64(b.ones) / float64(b.mask+1)
	return math.Pow(density, float64(b.k))
}

// Adds returns the number of Add calls; Distinct returns the number of
// Adds that found the key absent — a lower bound on (and, while FPP is
// small, a tight estimate of) the number of distinct keys added.
func (b *Bloom) Adds() uint64     { return b.adds }
func (b *Bloom) Distinct() uint64 { return b.news }

// Footprint returns the fixed heap footprint in bytes.
func (b *Bloom) Footprint() int64 {
	return int64(len(b.words))*8 + 64
}

// Merge ORs other into b. Both filters must have identical size, hash
// count, and seed; otherwise a *MismatchError is returned and b is
// unchanged. Distinct after a merge is recomputed conservatively: it is
// capped at the merged filter's capacity-independent sum but remains a
// lower bound on the union's distinct count only, so callers should
// treat it as "at least".
func (b *Bloom) Merge(other *Bloom) error {
	if b.mask != other.mask || b.k != other.k {
		return &MismatchError{What: "bloom dimensions differ"}
	}
	if b.seed != other.seed {
		return &MismatchError{What: "bloom seeds differ"}
	}
	var ones uint64
	for i, v := range other.words {
		b.words[i] |= v
		ones += uint64(bits.OnesCount64(b.words[i]))
	}
	b.ones = ones
	b.adds += other.adds
	b.news += other.news
	return nil
}
