// Package sketch implements the probabilistic summaries behind
// approximate profiling: seeded count-min sketches, a bloom filter, and
// space-saving top-K heavy-hitter tracking.
//
// All three structures share the properties the degradation ladder
// (internal/govern) needs from an intermediate rung between "full
// grammar" and "per-site counters":
//
//   - Fixed memory. Every structure allocates its arrays at construction
//     and never grows; Footprint is a constant, so a sketch rung cannot
//     re-trip a memory budget no matter how long the trace runs.
//   - Determinism. Hashing is seeded splitmix64 double hashing — a pure
//     function of (seed, key) — so estimates, reports, and snapshots are
//     byte-identical across worker counts, restarts, and replays.
//   - Error accounting. Each structure knows its own ε/δ (count-min),
//     false-positive probability (bloom), or N/k bound (top-K), so every
//     approximate report can carry the bound it guarantees instead of
//     trading correctness silently.
//   - Mergeability. Count-min sketches add cell-wise, bloom filters OR,
//     and space-saving summaries combine with the standard mergeable-
//     summaries construction, so per-session sketches from different
//     cluster shards fold into one bounded-error cluster report.
//   - Snapshots. Every structure round-trips through an exported,
//     gob-encodable snapshot form for ORMCKPT checkpoint/resume.
//
// None of the structures is safe for concurrent use; governed pipelines
// are sequential by design (see internal/govern).
package sketch

import "fmt"

// Key is a two-word sketch key. Single-valued callers set A and leave B
// zero; pair-valued callers (an (instruction, stride) stride-histogram
// cell, an (instruction, instruction) digram) use both words. Keys are
// exact — the structures hash them internally but report them verbatim.
type Key struct {
	A, B uint64
}

// MismatchError reports an attempt to merge two sketches with different
// shapes or seeds. Estimates from differently-hashed sketches are not
// comparable cell-wise, so the merge is refused rather than silently
// producing garbage.
type MismatchError struct {
	What string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("sketch: merge shape mismatch: %s", e.What)
}

// mix64 is splitmix64's finalizer: cheap, well distributed, and stable
// across platforms.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash2 derives the two independent hash words of double hashing from a
// seeded key. h2 is forced odd so the probe sequence h1 + i·h2 walks all
// of any power-of-two table.
func hash2(seed uint64, k Key) (h1, h2 uint64) {
	h1 = mix64(seed ^ mix64(k.A) ^ (k.B * 0x9e3779b97f4a7c15))
	h2 = mix64(h1^seed) | 1
	return h1, h2
}

// ceilPow2 rounds n up to the next power of two (minimum 2).
func ceilPow2(n int) uint64 {
	p := uint64(2)
	for p < uint64(n) {
		p <<= 1
	}
	return p
}
