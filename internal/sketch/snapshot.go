package sketch

import "fmt"

// Snapshot forms: exported, gob-encodable mirrors of each structure for
// ORMCKPT checkpoint/resume. Restore rebuilds a structure whose future
// behaviour is identical to the original's — same seed, same cells, same
// slot order — so a report produced after checkpoint/resume is
// byte-identical to one produced by an uninterrupted run.

// CountMinSnapshot mirrors CountMin.
type CountMinSnapshot struct {
	Depth int
	Width uint64
	Seed  uint64
	Rows  []uint64
	Total uint64
}

// Snapshot captures the sketch's complete state.
func (c *CountMin) Snapshot() *CountMinSnapshot {
	rows := make([]uint64, len(c.rows))
	copy(rows, c.rows)
	return &CountMinSnapshot{
		Depth: c.depth,
		Width: c.width,
		Seed:  c.seed,
		Rows:  rows,
		Total: c.total,
	}
}

// RestoreCountMin rebuilds a sketch from its snapshot.
func RestoreCountMin(s *CountMinSnapshot) (*CountMin, error) {
	if s.Depth < 1 || s.Width < 2 || s.Width&(s.Width-1) != 0 {
		return nil, fmt.Errorf("sketch: corrupt count-min snapshot: depth %d width %d", s.Depth, s.Width)
	}
	if uint64(len(s.Rows)) != uint64(s.Depth)*s.Width {
		return nil, fmt.Errorf("sketch: corrupt count-min snapshot: %d cells, want %d", len(s.Rows), uint64(s.Depth)*s.Width)
	}
	rows := make([]uint64, len(s.Rows))
	copy(rows, s.Rows)
	return &CountMin{
		depth: s.Depth,
		width: s.Width,
		seed:  s.Seed,
		rows:  rows,
		total: s.Total,
	}, nil
}

// BloomSnapshot mirrors Bloom.
type BloomSnapshot struct {
	Words []uint64
	K     int
	Seed  uint64
	Ones  uint64
	Adds  uint64
	News  uint64
}

// Snapshot captures the filter's complete state.
func (b *Bloom) Snapshot() *BloomSnapshot {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &BloomSnapshot{
		Words: words,
		K:     b.k,
		Seed:  b.seed,
		Ones:  b.ones,
		Adds:  b.adds,
		News:  b.news,
	}
}

// RestoreBloom rebuilds a filter from its snapshot.
func RestoreBloom(s *BloomSnapshot) (*Bloom, error) {
	n := uint64(len(s.Words))
	if s.K < 1 || n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("sketch: corrupt bloom snapshot: %d words, k %d", n, s.K)
	}
	words := make([]uint64, len(s.Words))
	copy(words, s.Words)
	return &Bloom{
		words: words,
		mask:  n*64 - 1,
		k:     s.K,
		seed:  s.Seed,
		ones:  s.Ones,
		adds:  s.Adds,
		news:  s.News,
	}, nil
}

// TopKSnapshot mirrors TopK. Slots preserve internal slot order (not
// canonical report order) so eviction ties resolve identically after a
// restore.
type TopKSnapshot struct {
	K     int
	Total uint64
	Slots []Entry
}

// Snapshot captures the summary's complete state.
func (t *TopK) Snapshot() *TopKSnapshot {
	slots := make([]Entry, len(t.slots))
	copy(slots, t.slots)
	return &TopKSnapshot{K: t.k, Total: t.total, Slots: slots}
}

// RestoreTopK rebuilds a summary from its snapshot.
func RestoreTopK(s *TopKSnapshot) (*TopK, error) {
	if s.K < 1 || len(s.Slots) > s.K {
		return nil, fmt.Errorf("sketch: corrupt top-k snapshot: %d slots, k %d", len(s.Slots), s.K)
	}
	t := &TopK{
		k:     s.K,
		total: s.Total,
		idx:   make(map[Key]int, s.K),
		slots: make([]Entry, 0, s.K),
	}
	for i, e := range s.Slots {
		if _, dup := t.idx[e.Key]; dup {
			return nil, fmt.Errorf("sketch: corrupt top-k snapshot: duplicate key %v", e.Key)
		}
		t.idx[e.Key] = i
		t.slots = append(t.slots, e)
	}
	return t, nil
}
