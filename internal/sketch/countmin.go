package sketch

import "math"

// CountMin is a count-min sketch: depth rows of width counters. Add
// increments one counter per row; Estimate takes the minimum over the
// rows, so it never under-counts and over-counts by at most ε·N with
// probability ≥ 1−δ, where N is the total weight added, ε = e/width,
// and δ = e^−depth.
type CountMin struct {
	depth int
	width uint64 // power of two
	seed  uint64
	rows  []uint64 // depth × width, row-major
	total uint64
}

// NewCountMin builds a sketch with the given depth and width (the width
// is rounded up to a power of two). All memory is allocated here; the
// footprint never changes afterwards.
func NewCountMin(depth, width int, seed uint64) *CountMin {
	if depth < 1 {
		depth = 1
	}
	w := ceilPow2(width)
	return &CountMin{
		depth: depth,
		width: w,
		seed:  seed,
		rows:  make([]uint64, uint64(depth)*w),
	}
}

// Add increments the count for k by n.
func (c *CountMin) Add(k Key, n uint64) {
	h1, h2 := hash2(c.seed, k)
	mask := c.width - 1
	for d := 0; d < c.depth; d++ {
		c.rows[uint64(d)*c.width+(h1&mask)] += n
		h1 += h2
	}
	c.total += n
}

// Estimate returns the sketch's count for k: always ≥ the true count,
// and ≤ true + ε·Total with probability ≥ 1−δ.
func (c *CountMin) Estimate(k Key) uint64 {
	h1, h2 := hash2(c.seed, k)
	mask := c.width - 1
	est := c.rows[h1&mask]
	h1 += h2
	for d := 1; d < c.depth; d++ {
		if v := c.rows[uint64(d)*c.width+(h1&mask)]; v < est {
			est = v
		}
		h1 += h2
	}
	return est
}

// Total returns the total weight added (N in the error bound).
func (c *CountMin) Total() uint64 { return c.total }

// Epsilon returns the relative error factor ε = e/width: any estimate
// exceeds the true count by at most ε·Total with probability ≥ 1−δ.
func (c *CountMin) Epsilon() float64 { return math.E / float64(c.width) }

// Delta returns the failure probability δ = e^−depth of the ε bound.
func (c *CountMin) Delta() float64 { return math.Exp(-float64(c.depth)) }

// ErrorBound returns the absolute overcount bound ε·Total.
func (c *CountMin) ErrorBound() float64 { return c.Epsilon() * float64(c.total) }

// Footprint returns the fixed heap footprint in bytes.
func (c *CountMin) Footprint() int64 {
	return int64(len(c.rows))*8 + 64
}

// Merge adds other into c cell-wise. Both sketches must have identical
// depth, width, and seed; otherwise a *MismatchError is returned and c
// is unchanged. Merging is exact: the merged sketch is identical to the
// sketch of the concatenated streams.
func (c *CountMin) Merge(other *CountMin) error {
	if c.depth != other.depth || c.width != other.width {
		return &MismatchError{What: "count-min dimensions differ"}
	}
	if c.seed != other.seed {
		return &MismatchError{What: "count-min seeds differ"}
	}
	for i, v := range other.rows {
		c.rows[i] += v
	}
	c.total += other.total
	return nil
}
