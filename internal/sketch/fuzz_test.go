package sketch

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzCountMin drives a count-min sketch (and a split pair merged back
// together) from arbitrary bytes and checks the structural invariants:
// estimates never undercount, totals add up, merge equals the
// whole-stream sketch cell-for-cell, and snapshot/restore preserves
// state exactly.
func FuzzCountMin(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		whole := NewCountMin(3, 64, 12345)
		a := NewCountMin(3, 64, 12345)
		b := NewCountMin(3, 64, 12345)
		exact := map[Key]uint64{}
		for i := 0; i+3 <= len(data); i += 3 {
			k := Key{A: uint64(data[i]), B: uint64(data[i+1] % 4)}
			n := uint64(data[i+2]%7) + 1
			whole.Add(k, n)
			if i%2 == 0 {
				a.Add(k, n)
			} else {
				b.Add(k, n)
			}
			exact[k] += n
		}
		for k, want := range exact {
			if got := whole.Estimate(k); got < want {
				t.Fatalf("Estimate(%v) = %d < true %d", k, got, want)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge: %v", err)
		}
		if a.Total() != whole.Total() {
			t.Fatalf("merged total %d != whole %d", a.Total(), whole.Total())
		}
		for i := range a.rows {
			if a.rows[i] != whole.rows[i] {
				t.Fatalf("merged cell %d = %d, whole %d", i, a.rows[i], whole.rows[i])
			}
		}
		restored, err := RestoreCountMin(whole.Snapshot())
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		for k := range exact {
			if restored.Estimate(k) != whole.Estimate(k) {
				t.Fatalf("restored estimate differs for %v", k)
			}
		}
	})
}

// FuzzBloom drives a bloom filter from arbitrary bytes and checks: no
// false negatives ever, a merged filter contains both sides' keys, and
// snapshot/restore preserves every bit and counter.
func FuzzBloom(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(bytes.Repeat([]byte{0xaa, 0x55}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		whole := NewBloom(1<<10, 3, 999)
		a := NewBloom(1<<10, 3, 999)
		b := NewBloom(1<<10, 3, 999)
		var keys []Key
		for i := 0; i+8 <= len(data); i += 8 {
			k := Key{A: binary.LittleEndian.Uint64(data[i:])}
			whole.Add(k)
			if i%16 == 0 {
				a.Add(k)
			} else {
				b.Add(k)
			}
			keys = append(keys, k)
		}
		for _, k := range keys {
			if !whole.Test(k) {
				t.Fatalf("false negative for %v", k)
			}
		}
		if fpp := whole.FPP(); fpp < 0 || fpp > 1 {
			t.Fatalf("FPP %g out of [0,1]", fpp)
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge: %v", err)
		}
		for _, k := range keys {
			if !a.Test(k) {
				t.Fatalf("merged filter lost %v", k)
			}
		}
		restored, err := RestoreBloom(whole.Snapshot())
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		for i := range whole.words {
			if restored.words[i] != whole.words[i] {
				t.Fatalf("restored word %d differs", i)
			}
		}
		if restored.ones != whole.ones || restored.adds != whole.adds || restored.news != whole.news {
			t.Fatal("restored counters differ")
		}
	})
}
