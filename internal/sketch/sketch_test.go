package sketch

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"testing"
)

// deterministic keyed pseudo-random stream for test inputs.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(4, 512, 42)
	exact := map[Key]uint64{}
	r := &rng{s: 7}
	for i := 0; i < 20000; i++ {
		k := Key{A: r.next() % 400, B: r.next() % 3}
		n := r.next()%5 + 1
		cm.Add(k, n)
		exact[k] += n
	}
	if cm.Total() == 0 {
		t.Fatal("total = 0")
	}
	bound := cm.ErrorBound()
	violations := 0
	for k, want := range exact {
		got := cm.Estimate(k)
		if got < want {
			t.Fatalf("Estimate(%v) = %d < true %d: count-min undercounted", k, got, want)
		}
		if float64(got-want) > bound {
			violations++
		}
	}
	// P(overcount > εN) ≤ δ per key; allow 2δ for sampling noise.
	maxViol := int(2*cm.Delta()*float64(len(exact))) + 1
	if violations > maxViol {
		t.Fatalf("%d/%d estimates exceed εN=%.1f bound, want ≤ %d (δ=%.4f)",
			violations, len(exact), bound, maxViol, cm.Delta())
	}
}

func TestCountMinMergeExact(t *testing.T) {
	a := NewCountMin(4, 256, 9)
	b := NewCountMin(4, 256, 9)
	whole := NewCountMin(4, 256, 9)
	r := &rng{s: 3}
	for i := 0; i < 5000; i++ {
		k := Key{A: r.next() % 200}
		n := r.next()%4 + 1
		if i%2 == 0 {
			a.Add(k, n)
		} else {
			b.Add(k, n)
		}
		whole.Add(k, n)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %d != whole total %d", a.Total(), whole.Total())
	}
	if !bytes.Equal(u64Bytes(a.rows), u64Bytes(whole.rows)) {
		t.Fatal("merged cells differ from whole-stream cells")
	}
}

func TestCountMinMergeMismatch(t *testing.T) {
	a := NewCountMin(4, 256, 9)
	var mm *MismatchError
	if err := a.Merge(NewCountMin(4, 512, 9)); !errors.As(err, &mm) {
		t.Fatalf("width mismatch: got %v, want *MismatchError", err)
	}
	if err := a.Merge(NewCountMin(4, 256, 10)); !errors.As(err, &mm) {
		t.Fatalf("seed mismatch: got %v, want *MismatchError", err)
	}
	if err := a.Merge(NewCountMin(3, 256, 9)); !errors.As(err, &mm) {
		t.Fatalf("depth mismatch: got %v, want *MismatchError", err)
	}
}

func TestCountMinBounds(t *testing.T) {
	cm := NewCountMin(4, 4096, 1)
	if got, want := cm.Epsilon(), math.E/4096; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Epsilon = %g, want %g", got, want)
	}
	if got, want := cm.Delta(), math.Exp(-4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Delta = %g, want %g", got, want)
	}
	fp := cm.Footprint()
	cm.Add(Key{A: 1}, 1000)
	if cm.Footprint() != fp {
		t.Fatal("Footprint changed after Add; must be fixed")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1<<14, 4, 99)
	r := &rng{s: 11}
	var added []Key
	for i := 0; i < 2000; i++ {
		k := Key{A: r.next(), B: r.next() % 16}
		b.Add(k)
		added = append(added, k)
	}
	for _, k := range added {
		if !b.Test(k) {
			t.Fatalf("Test(%v) = false for an added key: bloom false negative", k)
		}
	}
	if b.Adds() != 2000 {
		t.Fatalf("Adds = %d, want 2000", b.Adds())
	}
	if b.Distinct() == 0 || b.Distinct() > b.Adds() {
		t.Fatalf("Distinct = %d out of range (0, %d]", b.Distinct(), b.Adds())
	}
}

func TestBloomFPPTracksDensity(t *testing.T) {
	b := NewBloom(1<<16, 4, 5)
	if b.FPP() != 0 {
		t.Fatalf("empty filter FPP = %g, want 0", b.FPP())
	}
	r := &rng{s: 13}
	for i := 0; i < 4000; i++ {
		b.Add(Key{A: r.next()})
	}
	fpp := b.FPP()
	if fpp <= 0 || fpp >= 0.01 {
		t.Fatalf("FPP = %g, want small nonzero at this load", fpp)
	}
	// Empirical FPP on fresh keys should be near the computed one.
	misses, trials := 0, 20000
	for i := 0; i < trials; i++ {
		if b.Test(Key{A: r.next(), B: 1}) {
			misses++
		}
	}
	emp := float64(misses) / float64(trials)
	if emp > 10*fpp+0.001 {
		t.Fatalf("empirical FPP %g far above computed %g", emp, fpp)
	}
}

func TestBloomMerge(t *testing.T) {
	a := NewBloom(1<<12, 3, 7)
	b := NewBloom(1<<12, 3, 7)
	r := &rng{s: 17}
	var aKeys, bKeys []Key
	for i := 0; i < 500; i++ {
		ka, kb := Key{A: r.next()}, Key{B: r.next()}
		a.Add(ka)
		b.Add(kb)
		aKeys = append(aKeys, ka)
		bKeys = append(bKeys, kb)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range append(aKeys, bKeys...) {
		if !a.Test(k) {
			t.Fatalf("merged filter lost key %v", k)
		}
	}
	var mm *MismatchError
	if err := a.Merge(NewBloom(1<<13, 3, 7)); !errors.As(err, &mm) {
		t.Fatalf("size mismatch: got %v, want *MismatchError", err)
	}
	if err := a.Merge(NewBloom(1<<12, 4, 7)); !errors.As(err, &mm) {
		t.Fatalf("k mismatch: got %v, want *MismatchError", err)
	}
	if err := a.Merge(NewBloom(1<<12, 3, 8)); !errors.As(err, &mm) {
		t.Fatalf("seed mismatch: got %v, want *MismatchError", err)
	}
}

func TestTopKGuarantees(t *testing.T) {
	const k = 16
	tk := NewTopK(k)
	exact := map[Key]uint64{}
	r := &rng{s: 23}
	// Zipf-ish: a few heavy keys plus a long tail.
	for i := 0; i < 30000; i++ {
		var key Key
		if r.next()%2 == 0 {
			key = Key{A: r.next() % 8} // heavy
		} else {
			key = Key{A: 100 + r.next()%2000} // tail
		}
		tk.Add(key, 1)
		exact[key]++
	}
	if tk.Total() != 30000 {
		t.Fatalf("Total = %d, want 30000", tk.Total())
	}
	bound := tk.ErrorBound()
	// Every key above Total/k must be tracked.
	for key, n := range exact {
		if n > bound {
			e, ok := tk.Estimate(key)
			if !ok {
				t.Fatalf("heavy key %v (count %d > bound %d) not tracked", key, n, bound)
			}
			if e.Count < n || e.Count-e.Err > n {
				t.Fatalf("key %v: true %d outside [%d−%d, %d]", key, n, e.Count, e.Err, e.Count)
			}
		}
	}
	// Per-entry interval always contains the truth, and Err ≤ global bound.
	for _, e := range tk.Entries() {
		n := exact[e.Key]
		if e.Count < n || e.Count-e.Err > n {
			t.Fatalf("entry %v: true %d outside [%d−%d, %d]", e.Key, n, e.Count, e.Err, e.Count)
		}
		if e.Err > bound {
			t.Fatalf("entry %v: Err %d > global bound %d", e.Key, e.Err, bound)
		}
	}
	// Canonical order: count descending, key ascending.
	ents := tk.Entries()
	for i := 1; i < len(ents); i++ {
		if ents[i].Count > ents[i-1].Count {
			t.Fatal("Entries not sorted by count descending")
		}
	}
}

func TestTopKMergeBounds(t *testing.T) {
	const k = 8
	a, b := NewTopK(k), NewTopK(k)
	exact := map[Key]uint64{}
	r := &rng{s: 31}
	for i := 0; i < 10000; i++ {
		key := Key{A: r.next() % 64}
		if i%2 == 0 {
			a.Add(key, 1)
		} else {
			b.Add(key, 1)
		}
		exact[key]++
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 10000 {
		t.Fatalf("merged Total = %d, want 10000", a.Total())
	}
	for _, e := range a.Entries() {
		n := exact[e.Key]
		if e.Count < n || e.Count-e.Err > n {
			t.Fatalf("merged entry %v: true %d outside [%d−%d, %d]", e.Key, n, e.Count, e.Err, e.Count)
		}
	}
	if len(a.Entries()) > k {
		t.Fatalf("merged summary holds %d entries, cap %d", len(a.Entries()), k)
	}
	var mm *MismatchError
	if err := a.Merge(NewTopK(k + 1)); !errors.As(err, &mm) {
		t.Fatalf("capacity mismatch: got %v, want *MismatchError", err)
	}
}

func TestTopKDeterministicEviction(t *testing.T) {
	run := func() []Entry {
		tk := NewTopK(4)
		for i := 0; i < 1000; i++ {
			tk.Add(Key{A: uint64(i % 10)}, 1)
		}
		return tk.Entries()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic entry count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic entries: %v vs %v", a[i], b[i])
		}
	}
}

func TestSnapshotRoundTrips(t *testing.T) {
	r := &rng{s: 41}

	cm := NewCountMin(4, 256, 77)
	bl := NewBloom(1<<12, 4, 77)
	tk := NewTopK(8)
	for i := 0; i < 3000; i++ {
		k := Key{A: r.next() % 100, B: r.next() % 4}
		cm.Add(k, 1)
		bl.Add(k)
		tk.Add(k, 1)
	}

	// gob round-trip each snapshot, restore, then verify future behaviour
	// matches by feeding both copies the same suffix.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cm.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(bl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(tk.Snapshot()); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(&buf)
	var cs CountMinSnapshot
	var bs BloomSnapshot
	var ts TopKSnapshot
	if err := dec.Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&bs); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&ts); err != nil {
		t.Fatal(err)
	}
	cm2, err := RestoreCountMin(&cs)
	if err != nil {
		t.Fatal(err)
	}
	bl2, err := RestoreBloom(&bs)
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := RestoreTopK(&ts)
	if err != nil {
		t.Fatal(err)
	}

	r2 := *r // same suffix for both
	for i := 0; i < 2000; i++ {
		k := Key{A: r.next() % 150, B: r.next() % 4}
		cm.Add(k, 1)
		bl.Add(k)
		tk.Add(k, 1)
		k2 := Key{A: r2.next() % 150, B: r2.next() % 4}
		cm2.Add(k2, 1)
		bl2.Add(k2)
		tk2.Add(k2, 1)
	}
	if cm.Total() != cm2.Total() || !bytes.Equal(u64Bytes(cm.rows), u64Bytes(cm2.rows)) {
		t.Fatal("count-min diverged after snapshot/restore")
	}
	if bl.ones != bl2.ones || bl.adds != bl2.adds || bl.news != bl2.news ||
		!bytes.Equal(u64Bytes(bl.words), u64Bytes(bl2.words)) {
		t.Fatal("bloom diverged after snapshot/restore")
	}
	ea, eb := tk.Entries(), tk2.Entries()
	if len(ea) != len(eb) {
		t.Fatal("top-k diverged after snapshot/restore")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("top-k entry %d diverged: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	if _, err := RestoreCountMin(&CountMinSnapshot{Depth: 2, Width: 300, Rows: make([]uint64, 600)}); err == nil {
		t.Fatal("non-power-of-two width accepted")
	}
	if _, err := RestoreCountMin(&CountMinSnapshot{Depth: 2, Width: 256, Rows: make([]uint64, 100)}); err == nil {
		t.Fatal("short rows accepted")
	}
	if _, err := RestoreBloom(&BloomSnapshot{K: 2, Words: make([]uint64, 3)}); err == nil {
		t.Fatal("non-power-of-two bloom accepted")
	}
	if _, err := RestoreTopK(&TopKSnapshot{K: 2, Slots: make([]Entry, 5)}); err == nil {
		t.Fatal("overfull top-k accepted")
	}
	if _, err := RestoreTopK(&TopKSnapshot{K: 4, Slots: []Entry{{Key: Key{A: 1}}, {Key: Key{A: 1}}}}); err == nil {
		t.Fatal("duplicate top-k keys accepted")
	}
}

func u64Bytes(s []uint64) []byte {
	out := make([]byte, 0, len(s)*8)
	for _, v := range s {
		for i := 0; i < 8; i++ {
			out = append(out, byte(v>>(8*i)))
		}
	}
	return out
}
