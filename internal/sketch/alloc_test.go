package sketch

import "testing"

// TestSketchUpdateZeroAlloc is the bench-allocs gate for the sketch hot
// path: once the structures are built and the top-K working set is
// tracked, per-event updates (count-min Add, bloom Add, top-K Add of a
// tracked key) must not allocate. This is what lets a sketch rung claim
// a truly fixed footprint — the governor charges construction once and
// nothing accrues per event.
func TestSketchUpdateZeroAlloc(t *testing.T) {
	cm := NewCountMin(4, 1024, 1)
	bl := NewBloom(1<<12, 4, 1)
	tk := NewTopK(32)
	for i := uint64(0); i < 32; i++ {
		tk.Add(Key{A: i}, 1)
	}
	var i uint64
	avg := testing.AllocsPerRun(10000, func() {
		k := Key{A: i % 32, B: i % 4}
		cm.Add(k, 1)
		bl.Add(k)
		tk.Add(Key{A: i % 32}, 1)
		i++
	})
	if avg != 0 {
		t.Fatalf("sketch update allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkSketchUpdate measures the combined per-event sketch update:
// one count-min Add, one bloom Add, one top-K Add. Run via `make bench`
// or compared with benchstat; `make bench-allocs` gates the 0 allocs/op.
func BenchmarkSketchUpdate(b *testing.B) {
	cm := NewCountMin(4, 4096, 1)
	bl := NewBloom(1<<17, 4, 1)
	tk := NewTopK(64)
	for i := uint64(0); i < 64; i++ {
		tk.Add(Key{A: i}, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{A: uint64(i % 512), B: uint64(i % 8)}
		cm.Add(k, 1)
		bl.Add(k)
		tk.Add(Key{A: uint64(i % 64)}, 1)
	}
}
