// Package testutil holds the small helpers shared across this repo's test
// suites. Production code must not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and, at test end, polls until
// the count returns to (at most) the baseline or the deadline expires,
// then fails with a full stack dump. Polling absorbs goroutines that are
// mid-exit when the test body returns; it is the dependency-free stand-in
// for a leak detector that the soak and service tests share. The deadline
// is generous (10s) because a correct teardown converges in milliseconds —
// anything that needs longer IS the leak. Taking testing.TB lets
// benchmarks and fuzz targets share the same check as tests.
func LeakCheck(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d goroutines, baseline %d\n%s",
					runtime.NumGoroutine(), base, buf[:n])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}
