package soabtree

import "fmt"

// CheckInvariants verifies the full B+Tree shape — node fill bounds, key
// ordering, separator bounds, uniform leaf depth, leaf-chain consistency,
// free-list sanity, and size/node accounting — returning the first
// violation. Property tests and the fuzzer call it after every mutation.
func (m *Map) CheckInvariants() error {
	if m.root == 0 {
		if m.size != 0 {
			return fmt.Errorf("soabtree: empty tree reports size %d", m.size)
		}
		if m.nodes != 0 {
			return fmt.Errorf("soabtree: empty tree reports %d nodes", m.nodes)
		}
		return nil
	}
	ck := &checker{m: m}
	depth := 0
	for b := m.base(m.root); !m.isLeaf(b); b = m.base(m.child(b, 0)) {
		depth++
	}
	var lo, hi *uint64
	if err := ck.node(m.root, true, lo, hi, depth); err != nil {
		return err
	}
	if ck.keys != m.size {
		return fmt.Errorf("soabtree: tree holds %d keys but size is %d", ck.keys, m.size)
	}
	if ck.nodes != m.nodes {
		return fmt.Errorf("soabtree: tree has %d nodes but accounting says %d", ck.nodes, m.nodes)
	}
	return ck.chain()
}

type checker struct {
	m      *Map
	keys   int
	nodes  int
	leaves []uint32 // leaf pids in tree order, for the chain check
}

func (ck *checker) node(pid uint32, isRoot bool, lo, hi *uint64, depthLeft int) error {
	m := ck.m
	if pid == 0 || int(pid)*nodeWords >= len(m.words) {
		return fmt.Errorf("soabtree: child pid %d out of arena", pid)
	}
	ck.nodes++
	b := m.base(pid)
	n := m.count(b)
	if n > maxKeys {
		return fmt.Errorf("soabtree: node %d overfull (%d keys)", pid, n)
	}
	if !isRoot && n < minKeys {
		return fmt.Errorf("soabtree: node %d underfull (%d keys)", pid, n)
	}
	if isRoot && n < 1 {
		return fmt.Errorf("soabtree: root %d has no keys", pid)
	}
	for i := 0; i < n; i++ {
		k := m.words[b+offKeys+i]
		if i > 0 && m.words[b+offKeys+i-1] >= k {
			return fmt.Errorf("soabtree: node %d keys not strictly ascending at %d", pid, i)
		}
		if lo != nil && k < *lo {
			return fmt.Errorf("soabtree: node %d key %#x below subtree bound %#x", pid, k, *lo)
		}
		if hi != nil && k >= *hi {
			return fmt.Errorf("soabtree: node %d key %#x at or above subtree bound %#x", pid, k, *hi)
		}
	}
	if m.isLeaf(b) {
		if depthLeft != 0 {
			return fmt.Errorf("soabtree: leaf %d at depth deficit %d", pid, depthLeft)
		}
		ck.keys += n
		ck.leaves = append(ck.leaves, pid)
		return nil
	}
	for i := 0; i <= n; i++ {
		clo, chi := lo, hi
		if i > 0 {
			clo = &m.words[b+offKeys+i-1]
		}
		if i < n {
			chi = &m.words[b+offKeys+i]
		}
		if err := ck.node(m.child(b, i), false, clo, chi, depthLeft-1); err != nil {
			return err
		}
	}
	return nil
}

// chain verifies the leaf next-pointers thread every leaf exactly once, in
// tree order, and that the free list references only freed slots.
func (ck *checker) chain() error {
	m := ck.m
	pid := ck.leaves[0]
	for i, want := range ck.leaves {
		if pid != want {
			return fmt.Errorf("soabtree: leaf chain visits %d at position %d, want %d", pid, i, want)
		}
		pid = uint32(m.words[m.base(pid)+offNext])
	}
	if pid != 0 {
		return fmt.Errorf("soabtree: leaf chain continues past the last leaf into %d", pid)
	}
	seen := make(map[uint32]bool)
	for f := m.free; f != 0; f = uint32(m.words[m.base(f)]) {
		if int(f)*nodeWords >= len(m.words) {
			return fmt.Errorf("soabtree: free-list pid %d out of arena", f)
		}
		if seen[f] {
			return fmt.Errorf("soabtree: free-list cycle at %d", f)
		}
		seen[f] = true
	}
	total := len(m.words)/nodeWords - 1 // minus the reserved pid 0
	if ck.nodes+len(seen) != total {
		return fmt.Errorf("soabtree: %d live + %d free nodes, arena holds %d", ck.nodes, len(seen), total)
	}
	return nil
}
