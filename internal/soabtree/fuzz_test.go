package soabtree

import (
	"encoding/binary"
	"testing"
)

// FuzzTreeOps decodes the fuzz input as a stream of (op, key) pairs and
// replays it against both the tree and a map oracle, validating the full
// structural invariants — node fill, separator bounds, leaf chain, free
// list — after every mutation. Keys are folded into a small space so the
// fuzzer can actually hit delete/merge and duplicate-insert paths instead
// of wandering a 64-bit keyspace.
func FuzzTreeOps(f *testing.F) {
	seed := func(ops ...byte) []byte { return ops }
	f.Add(seed())
	// Ascending inserts force repeated right-edge leaf splits.
	asc := make([]byte, 0, 200*3)
	for i := 0; i < 200; i++ {
		asc = append(asc, 0, byte(i), byte(i>>8))
	}
	f.Add(asc)
	// Insert-all-then-delete-all exercises merge and root collapse.
	cycle := append([]byte(nil), asc...)
	for i := 0; i < 200; i++ {
		cycle = append(cycle, 1, byte(i), byte(i>>8))
	}
	f.Add(cycle)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map
		oracle := make(map[uint64]uint64)
		for len(data) >= 3 {
			op := data[0] % 4
			key := uint64(binary.LittleEndian.Uint16(data[1:3])) % 1024
			data = data[3:]
			switch op {
			case 0:
				val := key*2 + 1
				m.Set(key, val)
				oracle[key] = val
			case 1:
				if got, want := m.Delete(key), contains(oracle, key); got != want {
					t.Fatalf("Delete(%d) = %v, oracle %v", key, got, want)
				}
				delete(oracle, key)
			case 2:
				v, ok := m.Get(key)
				ov, ook := oracle[key]
				if ok != ook || v != ov {
					t.Fatalf("Get(%d) = (%d, %v), oracle (%d, %v)", key, v, ok, ov, ook)
				}
				continue // reads cannot break structure; skip the re-check
			case 3:
				fk, fv, ok := m.Floor(key)
				ok2, wk, wv := oracleFloor(oracle, key)
				if ok != ok2 || (ok && (fk != wk || fv != wv)) {
					t.Fatalf("Floor(%d) = (%d, %d, %v), oracle (%d, %d, %v)", key, fk, fv, ok, wk, wv, ok2)
				}
				continue
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if m.Len() != len(oracle) {
				t.Fatalf("Len() = %d, oracle %d", m.Len(), len(oracle))
			}
		}
		// Final sweep: every surviving key must be reachable both by point
		// lookup and in the cursor walk.
		n := 0
		m.Ascend(func(k, v uint64) bool {
			if ov, ok := oracle[k]; !ok || ov != v {
				t.Fatalf("Ascend yields (%d, %d), oracle (%d, %v)", k, v, ov, ok)
			}
			n++
			return true
		})
		if n != len(oracle) {
			t.Fatalf("Ascend visited %d entries, oracle holds %d", n, len(oracle))
		}
	})
}
