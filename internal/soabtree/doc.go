// Package soabtree implements a flat, structure-of-arrays B+Tree map from
// uint64 keys to uint64 values with floor search and cheap in-order
// cursors. It is the zero-allocation replacement for the pointer-based
// B-tree the OMC used to key live objects by start address (the paper's
// "auxiliary B-tree-like data structure", §3.1): translating a raw address
// is a Floor lookup (greatest start ≤ addr) plus a bounds check, executed
// once per traced memory access, which makes this structure the single
// hottest lookup in the repository.
//
// # Memory layout
//
// The entire tree lives in one flat []uint64 arena. There are no node
// objects and no pointers — a node is a fixed 64-word (512-byte) slot in
// the arena, identified by its slot index ("pid"), and child links are
// pids, not pointers:
//
//	word 0        header: key count (low 32 bits), leaf flag (bit 32)
//	words 1..31   keys, sorted ascending
//	words 32..62  leaf: values (value i belongs to key i)
//	              internal: child pids 0..count (one more child than keys)
//	word 63       leaf: pid of the next leaf (0 = last leaf)
//	              internal: child pid slot 31
//
// Keys and values are separate runs within the slot (structure of arrays),
// so a search touches only the key words — at most one or two cache lines
// per node — and value words load only on a hit. Fan-out is 31 keys per
// node; a million live objects fit in four levels.
//
// Because the arena is a single pointer-free slice, the garbage collector
// scans none of it, growth is one amortized append, and node recycling is
// a free list threaded through the headers of deleted slots. Once the tree
// has reached its steady-state size, Set, Get, Floor, Delete, and cursor
// scans perform zero allocations (asserted by TestZeroAllocSteadyState and
// gated in CI via the event-loop benchmarks — see docs/PERFORMANCE.md).
//
// Arenas are pooled package-wide: Release returns a map's arena for reuse
// by the next New/first-insert, so churning short-lived trees (one per
// profiled session, say) does not re-grow from scratch.
//
// # Semantics
//
// The zero Map is an empty map ready for use, like the built-in map after
// make. Keys are unique; Set replaces. The tree is not safe for concurrent
// use — every caller in this repository mutates it from exactly one
// goroutine (the CDC's translation loop), matching the trace.Sink
// single-producer contract. Cursors and Ascend observe a snapshot only as
// long as the tree is not mutated mid-iteration.
package soabtree
