package soabtree

// Cursor iterates key/value pairs in ascending order by walking the leaf
// chain. Cursors are plain values — obtaining or advancing one never
// allocates. The tree must not be mutated while a cursor is in use.
//
//	c := m.From(start)
//	for c.Next() {
//		use(c.Key(), c.Value())
//	}
type Cursor struct {
	m   *Map
	pid uint32 // leaf holding the *next* entry, 0 when exhausted
	i   int    // index of the next entry within that leaf
	key uint64 // current entry, valid after Next() returns true
	val uint64
}

// Key returns the current entry's key. Valid after Next() returned true.
func (c *Cursor) Key() uint64 { return c.key }

// Value returns the current entry's value. Valid after Next() returned true.
func (c *Cursor) Value() uint64 { return c.val }

// Next advances to the next entry, reporting whether one exists.
func (c *Cursor) Next() bool {
	if c.pid == 0 {
		return false
	}
	b := c.m.base(c.pid)
	for c.i >= c.m.count(b) {
		c.pid = uint32(c.m.words[b+offNext])
		if c.pid == 0 {
			return false
		}
		b = c.m.base(c.pid)
		c.i = 0
	}
	c.key = c.m.words[b+offKeys+c.i]
	c.val = c.m.words[b+offVals+c.i]
	c.i++
	return true
}

// Min returns a cursor positioned before the smallest key.
func (m *Map) Min() Cursor {
	if m.root == 0 {
		return Cursor{}
	}
	b := m.base(m.root)
	for !m.isLeaf(b) {
		b = m.base(m.child(b, 0))
	}
	return Cursor{m: m, pid: uint32(b / nodeWords)}
}

// From returns a cursor positioned before the smallest key ≥ key.
func (m *Map) From(key uint64) Cursor {
	if m.root == 0 {
		return Cursor{}
	}
	b := m.base(m.root)
	for !m.isLeaf(b) {
		b = m.base(m.child(b, m.upperBound(b, m.count(b), key)))
	}
	return Cursor{m: m, pid: uint32(b / nodeWords), i: m.lowerBound(b, m.count(b), key)}
}

// Ascend visits every (key, value) pair in ascending key order. The
// visitor returns false to stop early.
func (m *Map) Ascend(visit func(key, val uint64) bool) {
	c := m.Min()
	for c.Next() {
		if !visit(c.key, c.val) {
			return
		}
	}
}
