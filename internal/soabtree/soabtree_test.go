package soabtree

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMapOracle drives the tree against a plain map under randomized
// workloads — mixed inserts, replacements, deletions, floor queries, point
// lookups, and range scans — checking full invariants as it goes. Several
// key distributions exercise different tree shapes: dense sequential keys
// (long right-edge splits), sparse random keys, and a small hot set (heavy
// replacement and delete/re-insert churn, the OMC's live-set pattern).
func TestMapOracle(t *testing.T) {
	distributions := []struct {
		name string
		key  func(r *rand.Rand) uint64
	}{
		{"dense", func(r *rand.Rand) uint64 { return uint64(r.Intn(512)) }},
		{"sparse", func(r *rand.Rand) uint64 { return r.Uint64() }},
		{"hotset", func(r *rand.Rand) uint64 { return 0x1000 + 64*uint64(r.Intn(64)) }},
	}
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			var m Map
			oracle := make(map[uint64]uint64)
			for op := 0; op < 20000; op++ {
				k := dist.key(r)
				switch r.Intn(10) {
				case 0, 1, 2, 3: // insert / replace
					v := r.Uint64()
					m.Set(k, v)
					oracle[k] = v
				case 4, 5: // delete
					if got, want := m.Delete(k), oracle[k] != 0 || contains(oracle, k); got != want {
						t.Fatalf("op %d: Delete(%#x) = %v, oracle %v", op, k, got, want)
					}
					delete(oracle, k)
				case 6: // get
					v, ok := m.Get(k)
					ov, ook := oracle[k]
					if ok != ook || v != ov {
						t.Fatalf("op %d: Get(%#x) = (%d, %v), oracle (%d, %v)", op, k, v, ok, ov, ook)
					}
				case 7, 8: // floor
					fk, fv, ok := m.Floor(k)
					ok2, wk, wv := oracleFloor(oracle, k)
					if ok != ok2 || (ok && (fk != wk || fv != wv)) {
						t.Fatalf("op %d: Floor(%#x) = (%#x, %d, %v), oracle (%#x, %d, %v)",
							op, k, fk, fv, ok, wk, wv, ok2)
					}
				case 9: // range scan from k
					c := m.From(k)
					want := sortedFrom(oracle, k)
					for i, wk := range want {
						if !c.Next() {
							t.Fatalf("op %d: scan from %#x ended at %d of %d", op, k, i, len(want))
						}
						if c.Key() != wk || c.Value() != oracle[wk] {
							t.Fatalf("op %d: scan from %#x entry %d = (%#x, %d), want (%#x, %d)",
								op, k, i, c.Key(), c.Value(), wk, oracle[wk])
						}
					}
					if c.Next() {
						t.Fatalf("op %d: scan from %#x yields entries past the oracle's %d", op, k, len(want))
					}
				}
				if m.Len() != len(oracle) {
					t.Fatalf("op %d: Len() = %d, oracle %d", op, m.Len(), len(oracle))
				}
				if op%251 == 0 {
					if err := m.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Drain to empty through the oracle, invariants intact.
			keys := sortedFrom(oracle, 0)
			for i, k := range keys {
				if !m.Delete(k) {
					t.Fatalf("drain: Delete(%#x) missed", k)
				}
				if i%97 == 0 {
					if err := m.CheckInvariants(); err != nil {
						t.Fatalf("drain %d: %v", i, err)
					}
				}
			}
			if m.Len() != 0 {
				t.Fatalf("drained tree reports Len %d", m.Len())
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func contains(m map[uint64]uint64, k uint64) bool {
	_, ok := m[k]
	return ok
}

func oracleFloor(m map[uint64]uint64, k uint64) (ok bool, fk, fv uint64) {
	for mk, mv := range m {
		if mk <= k && (!ok || mk > fk) {
			ok, fk, fv = true, mk, mv
		}
	}
	return ok, fk, fv
}

func sortedFrom(m map[uint64]uint64, k uint64) []uint64 {
	var keys []uint64
	for mk := range m {
		if mk >= k {
			keys = append(keys, mk)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TestAscend pins full-tree iteration order and early stop.
func TestAscend(t *testing.T) {
	var m Map
	const n = 1000
	for i := n - 1; i >= 0; i-- {
		m.Set(uint64(i*3), uint64(i))
	}
	next := uint64(0)
	m.Ascend(func(k, v uint64) bool {
		if k != next*3 || v != next {
			t.Fatalf("visit (%d, %d), want (%d, %d)", k, v, next*3, next)
		}
		next++
		return true
	})
	if next != n {
		t.Fatalf("visited %d entries, want %d", next, n)
	}
	stops := 0
	m.Ascend(func(k, v uint64) bool { stops++; return false })
	if stops != 1 {
		t.Fatalf("early-stop visitor ran %d times", stops)
	}
}

// TestZeroValueAndReset covers the empty-map paths and arena reuse.
func TestZeroValueAndReset(t *testing.T) {
	var m Map
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on empty map")
	}
	if _, _, ok := m.Floor(1); ok {
		t.Fatal("Floor on empty map")
	}
	if m.Delete(1) {
		t.Fatal("Delete on empty map")
	}
	m.Ascend(func(uint64, uint64) bool { t.Fatal("visit on empty map"); return false })

	for i := 0; i < 100; i++ {
		m.Set(uint64(i), uint64(i))
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Set(7, 9)
	if v, ok := m.Get(7); !ok || v != 9 {
		t.Fatalf("Get(7) after Reset = (%d, %v)", v, ok)
	}
	m.Release()
	if m.Len() != 0 || m.words != nil {
		t.Fatal("Release left state behind")
	}
	m.Set(1, 2) // draws the pooled arena back
	if v, ok := m.Get(1); !ok || v != 2 {
		t.Fatalf("Get(1) after Release = (%d, %v)", v, ok)
	}
}

// TestZeroAllocSteadyState asserts the core claim: once the tree has grown
// to its working size, a churn of Set/Delete/Floor/Get allocates nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	var m Map
	const live = 4096
	for i := 0; i < live; i++ {
		m.Set(uint64(i)*64, uint64(i))
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := uint64(i%live) * 64
		m.Delete(k)
		m.Set(k, uint64(i))
		if _, _, ok := m.Floor(k + 63); !ok {
			t.Fatal("floor miss")
		}
		if _, ok := m.Get(k); !ok {
			t.Fatal("get miss")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %v times per op, want 0", allocs)
	}
}

// TestFootprint sanity-checks the O(1) accounting against arena geometry.
func TestFootprint(t *testing.T) {
	var m Map
	if f := m.Footprint(); f != mapBase {
		t.Fatalf("empty Footprint = %d, want %d", f, mapBase)
	}
	for i := 0; i < 10000; i++ {
		m.Set(uint64(i), uint64(i))
	}
	f := m.Footprint()
	if min := int64(m.Nodes()) * nodeWords * 8; f < min {
		t.Fatalf("Footprint %d below live node bytes %d", f, min)
	}
}
