package soabtree

import "sync"

// Node geometry. A node occupies nodeWords consecutive arena words; see
// doc.go for the slot layout. 31 keys keeps the key run inside two cache
// lines behind the header word and makes a slot exactly 512 bytes.
const (
	maxKeys   = 31
	minKeys   = 15 // every node but the root keeps at least this many keys
	nodeWords = 64

	offKeys  = 1  // words 1..31: keys
	offVals  = 32 // words 32..62: leaf values / internal child pids
	offNext  = 63 // leaf: next-leaf pid (0 = none); internal: child slot 31
	leafBit  = 1 << 32
	countLow = 1<<32 - 1
)

// zeroNode is the append source for fresh slots: appending it extends the
// arena by exactly one zeroed node with a single amortized append.
var zeroNode [nodeWords]uint64

// arenaPool recycles arenas across Map lifetimes (Release → next first
// insert), so short-lived trees reach steady state without re-growing.
var arenaPool sync.Pool

// Map is a B+Tree map from uint64 keys to uint64 values over a flat arena.
// The zero value is an empty map ready for use. Not safe for concurrent
// use.
type Map struct {
	words []uint64 // the arena: node slots, pid 0 reserved as nil
	root  uint32   // root pid, 0 while empty
	free  uint32   // head of the freed-slot list, 0 when empty
	size  int      // stored keys
	nodes int      // live (non-freed) nodes, for Footprint and invariants
}

// Len reports the number of keys stored.
func (m *Map) Len() int { return m.size }

// base returns the arena offset of node pid.
func (m *Map) base(pid uint32) int { return int(pid) * nodeWords }

func (m *Map) count(b int) int   { return int(uint32(m.words[b])) }
func (m *Map) isLeaf(b int) bool { return m.words[b]&leafBit != 0 }

func (m *Map) setCount(b, n int) {
	m.words[b] = m.words[b]&^uint64(countLow) | uint64(uint32(n))
}

// child returns the pid of child i of the internal node at base b.
func (m *Map) child(b, i int) uint32 { return uint32(m.words[b+offVals+i]) }

// lowerBound returns the first index in [0, n) whose key is ≥ key, else n.
func (m *Map) lowerBound(b, n int, key uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.words[b+offKeys+mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index in [0, n) whose key is > key, else n.
func (m *Map) upperBound(b, n int, key uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.words[b+offKeys+mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// newNode carves a fresh slot out of the free list or the arena tail and
// returns its pid. The slot comes back zeroed except for the header flags.
func (m *Map) newNode(leaf bool) uint32 {
	var pid uint32
	if m.free != 0 {
		pid = m.free
		b := m.base(pid)
		m.free = uint32(m.words[b])
		clear(m.words[b : b+nodeWords])
	} else {
		if m.words == nil {
			if p, _ := arenaPool.Get().(*[]uint64); p != nil {
				m.words = (*p)[:0]
			}
			m.words = append(m.words, zeroNode[:]...) // reserve pid 0 as nil
		}
		pid = uint32(len(m.words) / nodeWords)
		m.words = append(m.words, zeroNode[:]...)
	}
	if leaf {
		m.words[m.base(pid)] = leafBit
	}
	m.nodes++
	return pid
}

// freeNode pushes a slot onto the free list.
func (m *Map) freeNode(pid uint32) {
	m.words[m.base(pid)] = uint64(m.free)
	m.free = pid
	m.nodes--
}

// Get returns the value stored at key.
func (m *Map) Get(key uint64) (uint64, bool) {
	if m.root == 0 {
		return 0, false
	}
	b := m.base(m.root)
	for !m.isLeaf(b) {
		i := m.upperBound(b, m.count(b), key)
		b = m.base(m.child(b, i))
	}
	n := m.count(b)
	i := m.lowerBound(b, n, key)
	if i < n && m.words[b+offKeys+i] == key {
		return m.words[b+offVals+i], true
	}
	return 0, false
}

// Floor returns the greatest key ≤ key and its value. ok is false if no
// such key exists. This is the per-access lookup of the OMC's translation
// loop: it allocates nothing and touches O(log n) nodes.
func (m *Map) Floor(key uint64) (k, v uint64, ok bool) {
	if m.root == 0 || m.size == 0 {
		return 0, 0, false
	}
	// Descend, remembering the deepest point where a left sibling subtree
	// exists: if the leaf holds no key ≤ key (possible after deletions
	// leave a stale separator), the floor is the maximum of that subtree.
	b := m.base(m.root)
	branchB, branchIdx := -1, 0
	for !m.isLeaf(b) {
		i := m.upperBound(b, m.count(b), key)
		if i > 0 {
			branchB, branchIdx = b, i
		}
		b = m.base(m.child(b, i))
	}
	if i := m.upperBound(b, m.count(b), key); i > 0 {
		return m.words[b+offKeys+i-1], m.words[b+offVals+i-1], true
	}
	if branchB < 0 {
		return 0, 0, false
	}
	b = m.base(m.child(branchB, branchIdx-1))
	for !m.isLeaf(b) {
		b = m.base(m.child(b, m.count(b)))
	}
	n := m.count(b)
	return m.words[b+offKeys+n-1], m.words[b+offVals+n-1], true
}

// Set inserts or replaces the value at key.
func (m *Map) Set(key, val uint64) {
	if m.root == 0 {
		m.root = m.newNode(true)
		b := m.base(m.root)
		m.words[b+offKeys] = key
		m.words[b+offVals] = val
		m.setCount(b, 1)
		m.size = 1
		return
	}
	if m.count(m.base(m.root)) == maxKeys {
		// Grow the tree: a fresh internal root over the old one, then
		// split the old root as its child 0.
		old := m.root
		newRoot := m.newNode(false)
		m.words[m.base(newRoot)+offVals] = uint64(old)
		m.root = newRoot
		m.splitChild(newRoot, 0)
	}
	// Split-on-the-way-down: every node we descend into has room, so a
	// leaf insert never propagates back up.
	pid := m.root
	for {
		b := m.base(pid)
		n := m.count(b)
		if m.isLeaf(b) {
			i := m.lowerBound(b, n, key)
			if i < n && m.words[b+offKeys+i] == key {
				m.words[b+offVals+i] = val
				return
			}
			copy(m.words[b+offKeys+i+1:b+offKeys+n+1], m.words[b+offKeys+i:b+offKeys+n])
			copy(m.words[b+offVals+i+1:b+offVals+n+1], m.words[b+offVals+i:b+offVals+n])
			m.words[b+offKeys+i] = key
			m.words[b+offVals+i] = val
			m.setCount(b, n+1)
			m.size++
			return
		}
		i := m.upperBound(b, n, key)
		if m.count(m.base(m.child(b, i))) == maxKeys {
			m.splitChild(pid, i)
			// The new separator landed at index i; equal keys live in the
			// right half (separator = its smallest key at split time).
			if key >= m.words[b+offKeys+i] {
				i++
			}
		}
		pid = m.child(b, i)
	}
}

// splitChild splits the full child at index i of the (non-full) internal
// node parent, inserting the separator key at parent index i. For a leaf
// child the separator is a copy of the right half's first key and the
// right half is linked into the leaf chain; for an internal child the
// median key moves up and out of the children.
func (m *Map) splitChild(parent uint32, i int) {
	// Allocate first: newNode may grow the arena, so compute offsets after.
	pb := m.base(parent)
	cpid := m.child(pb, i)
	leaf := m.isLeaf(m.base(cpid))
	rpid := m.newNode(leaf)
	pb = m.base(parent)
	cb, rb := m.base(cpid), m.base(rpid)

	var sep uint64
	if leaf {
		// 31 keys split 16/15; the separator is right's first key, which
		// stays in the leaf.
		left, right := 16, maxKeys-16
		copy(m.words[rb+offKeys:rb+offKeys+right], m.words[cb+offKeys+left:cb+offKeys+maxKeys])
		copy(m.words[rb+offVals:rb+offVals+right], m.words[cb+offVals+left:cb+offVals+maxKeys])
		sep = m.words[rb+offKeys]
		m.setCount(cb, left)
		m.setCount(rb, right)
		m.words[rb+offNext] = m.words[cb+offNext]
		m.words[cb+offNext] = uint64(rpid)
	} else {
		// 31 keys split 15/15 around the median, which moves up.
		const mid = maxKeys / 2
		sep = m.words[cb+offKeys+mid]
		right := maxKeys - mid - 1
		copy(m.words[rb+offKeys:rb+offKeys+right], m.words[cb+offKeys+mid+1:cb+offKeys+maxKeys])
		copy(m.words[rb+offVals:rb+offVals+right+1], m.words[cb+offVals+mid+1:cb+offVals+maxKeys+1])
		m.setCount(cb, mid)
		m.setCount(rb, right)
	}
	n := m.count(pb)
	copy(m.words[pb+offKeys+i+1:pb+offKeys+n+1], m.words[pb+offKeys+i:pb+offKeys+n])
	copy(m.words[pb+offVals+i+2:pb+offVals+n+2], m.words[pb+offVals+i+1:pb+offVals+n+1])
	m.words[pb+offKeys+i] = sep
	m.words[pb+offVals+i+1] = uint64(rpid)
	m.setCount(pb, n+1)
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(key uint64) bool {
	if m.root == 0 {
		return false
	}
	// Rebalance-on-the-way-down: every node we descend into has more than
	// minKeys keys (root excepted), so the leaf deletion never underflows
	// an ancestor.
	pid := m.root
	for {
		b := m.base(pid)
		if m.isLeaf(b) {
			break
		}
		i := m.upperBound(b, m.count(b), key)
		if m.count(m.base(m.child(b, i))) == minKeys {
			i = m.fixChild(pid, i)
			if pid == m.root && m.count(m.base(pid)) == 0 {
				// The root lost its last separator in a merge: collapse.
				only := m.child(m.base(pid), 0)
				m.freeNode(pid)
				m.root = only
				pid = only
				continue
			}
			b = m.base(pid)
		}
		pid = m.child(b, i)
	}
	b := m.base(pid)
	n := m.count(b)
	i := m.lowerBound(b, n, key)
	if i >= n || m.words[b+offKeys+i] != key {
		return false
	}
	copy(m.words[b+offKeys+i:b+offKeys+n-1], m.words[b+offKeys+i+1:b+offKeys+n])
	copy(m.words[b+offVals+i:b+offVals+n-1], m.words[b+offVals+i+1:b+offVals+n])
	m.setCount(b, n-1)
	m.size--
	if m.size == 0 {
		m.freeNode(pid)
		m.root = 0
	}
	return true
}

// fixChild gives child i of the internal node parent more than minKeys
// keys — borrowing from a sibling or merging with one — and returns the
// (possibly shifted) index of the child now covering the deletion path.
func (m *Map) fixChild(parent uint32, i int) int {
	pb := m.base(parent)
	n := m.count(pb)
	if i > 0 && m.count(m.base(m.child(pb, i-1))) > minKeys {
		m.borrowFromLeft(pb, i)
		return i
	}
	if i < n && m.count(m.base(m.child(pb, i+1))) > minKeys {
		m.borrowFromRight(pb, i)
		return i
	}
	if i > 0 {
		m.mergeChildren(pb, i-1)
		return i - 1
	}
	m.mergeChildren(pb, i)
	return i
}

// borrowFromLeft moves one entry from child i-1 into child i through the
// separator at parent index i-1.
func (m *Map) borrowFromLeft(pb, i int) {
	lb := m.base(m.child(pb, i-1))
	cb := m.base(m.child(pb, i))
	ln, cn := m.count(lb), m.count(cb)
	if m.isLeaf(cb) {
		copy(m.words[cb+offKeys+1:cb+offKeys+cn+1], m.words[cb+offKeys:cb+offKeys+cn])
		copy(m.words[cb+offVals+1:cb+offVals+cn+1], m.words[cb+offVals:cb+offVals+cn])
		m.words[cb+offKeys] = m.words[lb+offKeys+ln-1]
		m.words[cb+offVals] = m.words[lb+offVals+ln-1]
		m.words[pb+offKeys+i-1] = m.words[cb+offKeys]
	} else {
		copy(m.words[cb+offKeys+1:cb+offKeys+cn+1], m.words[cb+offKeys:cb+offKeys+cn])
		copy(m.words[cb+offVals+1:cb+offVals+cn+2], m.words[cb+offVals:cb+offVals+cn+1])
		m.words[cb+offKeys] = m.words[pb+offKeys+i-1]
		m.words[cb+offVals] = m.words[lb+offVals+ln]
		m.words[pb+offKeys+i-1] = m.words[lb+offKeys+ln-1]
	}
	m.setCount(lb, ln-1)
	m.setCount(cb, cn+1)
}

// borrowFromRight moves one entry from child i+1 into child i through the
// separator at parent index i.
func (m *Map) borrowFromRight(pb, i int) {
	cb := m.base(m.child(pb, i))
	rb := m.base(m.child(pb, i+1))
	cn, rn := m.count(cb), m.count(rb)
	if m.isLeaf(cb) {
		m.words[cb+offKeys+cn] = m.words[rb+offKeys]
		m.words[cb+offVals+cn] = m.words[rb+offVals]
		copy(m.words[rb+offKeys:rb+offKeys+rn-1], m.words[rb+offKeys+1:rb+offKeys+rn])
		copy(m.words[rb+offVals:rb+offVals+rn-1], m.words[rb+offVals+1:rb+offVals+rn])
		m.words[pb+offKeys+i] = m.words[rb+offKeys]
	} else {
		m.words[cb+offKeys+cn] = m.words[pb+offKeys+i]
		m.words[cb+offVals+cn+1] = m.words[rb+offVals]
		m.words[pb+offKeys+i] = m.words[rb+offKeys]
		copy(m.words[rb+offKeys:rb+offKeys+rn-1], m.words[rb+offKeys+1:rb+offKeys+rn])
		copy(m.words[rb+offVals:rb+offVals+rn], m.words[rb+offVals+1:rb+offVals+rn+1])
	}
	m.setCount(rb, rn-1)
	m.setCount(cb, cn+1)
}

// mergeChildren folds child i+1 (and, for internal children, the separator
// at parent index i) into child i and frees the right slot.
func (m *Map) mergeChildren(pb, i int) {
	cpid, rpid := m.child(pb, i), m.child(pb, i+1)
	cb, rb := m.base(cpid), m.base(rpid)
	cn, rn := m.count(cb), m.count(rb)
	if m.isLeaf(cb) {
		copy(m.words[cb+offKeys+cn:cb+offKeys+cn+rn], m.words[rb+offKeys:rb+offKeys+rn])
		copy(m.words[cb+offVals+cn:cb+offVals+cn+rn], m.words[rb+offVals:rb+offVals+rn])
		m.words[cb+offNext] = m.words[rb+offNext]
		m.setCount(cb, cn+rn)
	} else {
		m.words[cb+offKeys+cn] = m.words[pb+offKeys+i]
		copy(m.words[cb+offKeys+cn+1:cb+offKeys+cn+1+rn], m.words[rb+offKeys:rb+offKeys+rn])
		copy(m.words[cb+offVals+cn+1:cb+offVals+cn+2+rn], m.words[rb+offVals:rb+offVals+rn+1])
		m.setCount(cb, cn+1+rn)
	}
	n := m.count(pb)
	copy(m.words[pb+offKeys+i:pb+offKeys+n-1], m.words[pb+offKeys+i+1:pb+offKeys+n])
	copy(m.words[pb+offVals+i+1:pb+offVals+n], m.words[pb+offVals+i+2:pb+offVals+n+1])
	m.setCount(pb, n-1)
	m.freeNode(rpid)
}

// Reset empties the map, keeping its arena for reuse.
func (m *Map) Reset() {
	if m.words != nil {
		m.words = m.words[:nodeWords]
	}
	m.root, m.free, m.size, m.nodes = 0, 0, 0, 0
}

// Release empties the map and returns its arena to the package pool, where
// the next tree's first insert picks it up. The map remains usable (as a
// fresh empty map that will draw a new arena).
func (m *Map) Release() {
	if m.words != nil {
		w := m.words[:0]
		arenaPool.Put(&w)
	}
	*m = Map{}
}

// mapBase approximates the Map header itself for footprint accounting.
const mapBase = 64

// Footprint reports the arena's physical size in bytes, in O(1). Note for
// governance callers: physical capacity depends on the exact mutation
// history (growth doubling, free-list state), so budget accounting that
// must stay deterministic across checkpoint/resume should charge per
// logical entry instead — see internal/omc's footprint accounting.
func (m *Map) Footprint() int64 {
	return mapBase + int64(cap(m.words))*8
}

// Nodes reports the number of live node slots (tests and diagnostics).
func (m *Map) Nodes() int { return m.nodes }
