package soabtree

import "testing"

// benchTree builds a tree with n live 64-byte-spaced keys, mirroring the
// OMC's live-set shape (object start addresses).
func benchTree(n int) *Map {
	var m Map
	for i := 0; i < n; i++ {
		m.Set(0x10000+uint64(i)*64, uint64(i))
	}
	return &m
}

func BenchmarkFloor(b *testing.B) {
	m := benchTree(1 << 16)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		// Hit the interior of object i — the Translate pattern.
		_, v, _ := m.Floor(0x10000 + uint64(i%(1<<16))*64 + 17)
		sink += v
	}
	_ = sink
}

func BenchmarkGet(b *testing.B) {
	m := benchTree(1 << 16)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := m.Get(0x10000 + uint64(i%(1<<16))*64)
		sink += v
	}
	_ = sink
}

func BenchmarkChurn(b *testing.B) {
	// Steady-state delete + re-insert at constant live size: the OMC's
	// alloc/free pattern. Must report 0 allocs/op.
	m := benchTree(1 << 14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := 0x10000 + uint64(i%(1<<14))*64
		m.Delete(k)
		m.Set(k, uint64(i))
	}
}

func BenchmarkCursorScan(b *testing.B) {
	m := benchTree(1 << 12)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		c := m.Min()
		for c.Next() {
			sink += c.Value()
		}
	}
	_ = sink
}
