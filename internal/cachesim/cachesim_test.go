package cachesim

import (
	"math/rand"
	"testing"

	"ormprof/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1},       // line not power of two
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},       // size not divisible
		{SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2}, // 3 sets: not a power of two
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
	if L1D.Sets() != 64 {
		t.Errorf("L1D sets = %d", L1D.Sets())
	}
	New(L1D)
	New(L2)
}

func TestBasicHitMiss(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}) // 8 sets
	if m := c.Access(0x1000, 8); m != 1 {
		t.Errorf("cold access missed %d lines, want 1", m)
	}
	if m := c.Access(0x1008, 8); m != 0 {
		t.Errorf("same-line access missed %d", m)
	}
	if m := c.Access(0x103c, 8); m != 1 {
		t.Errorf("line-crossing access missed %d, want 1 (second line cold)", m)
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Lines != 4 || st.Misses != 2 || st.Hits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways, 64-byte lines.
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	a, b, d := trace.Addr(0), trace.Addr(64), trace.Addr(128)
	c.Access(a, 1) // miss, set = [a]
	c.Access(b, 1) // miss, set = [b, a]
	c.Access(a, 1) // hit,  set = [a, b]
	c.Access(d, 1) // miss, evicts b (LRU), set = [d, a]
	if m := c.Access(a, 1); m != 0 {
		t.Error("a should still be resident")
	}
	if m := c.Access(b, 1); m != 1 {
		t.Error("b should have been evicted")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// Direct-mapped: two lines mapping to the same set thrash.
	c := New(Config{SizeBytes: 512, LineBytes: 64, Ways: 1}) // 8 sets
	a := trace.Addr(0)
	b := trace.Addr(512) // same set (8 sets * 64 B apart)
	for i := 0; i < 10; i++ {
		c.Access(a, 1)
		c.Access(b, 1)
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("conflict pair should always thrash: %+v", st)
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set smaller than the cache: after the cold pass, zero
	// misses.
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for pass := 0; pass < 3; pass++ {
		for off := 0; off < 2048; off += 64 {
			c.Access(trace.Addr(off), 8)
		}
	}
	st := c.Stats()
	if st.Misses != 32 { // cold misses only
		t.Errorf("misses = %d, want 32 cold", st.Misses)
	}
}

// Reference model: fully associative LRU via slice scan.
type refCache struct {
	lineBits uint
	ways     int
	lines    []uint64
}

func (r *refCache) access(addr trace.Addr) bool {
	line := uint64(addr) >> r.lineBits
	for i, l := range r.lines {
		if l == line {
			r.lines = append(r.lines[:i], r.lines[i+1:]...)
			r.lines = append([]uint64{line}, r.lines...)
			return true
		}
	}
	r.lines = append([]uint64{line}, r.lines...)
	if len(r.lines) > r.ways {
		r.lines = r.lines[:r.ways]
	}
	return false
}

func TestAgainstFullyAssociativeReference(t *testing.T) {
	// With a single set, the simulator must agree with a straightforward
	// fully-associative LRU model on every access.
	const ways = 8
	c := New(Config{SizeBytes: ways * 64, LineBytes: 64, Ways: ways})
	ref := &refCache{lineBits: 6, ways: ways}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		addr := trace.Addr(rng.Intn(32) * 64)
		want := ref.access(addr)
		got := c.Access(addr, 1) == 0
		if got != want {
			t.Fatalf("access %d (%#x): sim hit=%v, ref hit=%v", i, uint64(addr), got, want)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(L1D)
	c.Access(0x1000, 8)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
	if m := c.Access(0x1000, 8); m != 1 {
		t.Error("contents not cleared")
	}
}

func TestZeroSizeAccess(t *testing.T) {
	c := New(L1D)
	c.Access(0x40, 0) // treated as 1 byte
	if c.Stats().Lines != 1 {
		t.Errorf("lines = %d", c.Stats().Lines)
	}
}

func TestReplay(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EvAlloc, Addr: 0x1000, Size: 64},
		{Kind: trace.EvAccess, Addr: 0x1000, Size: 8},
		{Kind: trace.EvAccess, Addr: 0x1000, Size: 8},
		{Kind: trace.EvFree, Addr: 0x1000},
	}
	st := Replay(events, L1D)
	if st.Accesses != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("replay stats = %+v", st)
	}
	if st.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
}

func TestHierarchyFiltering(t *testing.T) {
	h := NewHierarchy(
		Config{SizeBytes: 128, LineBytes: 64, Ways: 2}, // tiny L1: 2 lines
		Config{SizeBytes: 1024, LineBytes: 64, Ways: 4},
	)
	// Three lines cycled: thrash the 2-line L1, fit easily in L2.
	for pass := 0; pass < 10; pass++ {
		for _, a := range []trace.Addr{0, 64, 128} {
			h.Access(a, 8)
		}
	}
	l1, l2 := h.Level(0), h.Level(1)
	if l1.Misses <= 3 {
		t.Errorf("L1 should thrash: %+v", l1)
	}
	// L2 sees only L1 misses and keeps all three lines after cold fill.
	if l2.Misses != 3 {
		t.Errorf("L2 misses = %d, want 3 cold", l2.Misses)
	}
	if l2.Lines != l1.Misses {
		t.Errorf("L2 consulted %d times, L1 missed %d", l2.Lines, l1.Misses)
	}
	if h.MemoryAccesses() != 3 {
		t.Errorf("memory accesses = %d", h.MemoryAccesses())
	}
	if h.Levels() != 2 {
		t.Errorf("Levels = %d", h.Levels())
	}
}

func TestHierarchyAMAT(t *testing.T) {
	h := NewHierarchy(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	h.Access(0, 8) // miss
	h.Access(0, 8) // hit
	// AMAT = L1 + missRatio·mem = 1 + 0.5·100 = 51.
	if got := h.AMAT(1, 100); got != 51 {
		t.Errorf("AMAT = %v, want 51", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("AMAT with wrong latency count should panic")
		}
	}()
	h.AMAT(1)
}

func TestHierarchyNeedsLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty hierarchy accepted")
		}
	}()
	NewHierarchy()
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(L1D)
	rng := rand.New(rand.NewSource(2))
	addrs := make([]trace.Addr, 1<<14)
	for i := range addrs {
		addrs[i] = trace.Addr(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], 8)
	}
}
