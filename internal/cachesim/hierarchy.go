package cachesim

import "ormprof/internal/trace"

// Hierarchy chains caches into a memory hierarchy: an access that misses
// level i is looked up in level i+1 (inclusive levels, LRU at each).
// It reports per-level statistics, so layout experiments can see where a
// proposal helps (an L1-resident working set gains nothing from L2 wins).
type Hierarchy struct {
	levels []*Cache
}

// NewHierarchy builds a hierarchy from first (closest) to last (largest)
// level. At least one level is required; line sizes may differ.
func NewHierarchy(cfgs ...Config) *Hierarchy {
	if len(cfgs) == 0 {
		panic("cachesim: hierarchy needs at least one level")
	}
	h := &Hierarchy{levels: make([]*Cache, len(cfgs))}
	for i, cfg := range cfgs {
		h.levels[i] = New(cfg)
	}
	return h
}

// Access simulates one access; each level is consulted only for the lines
// that missed the previous one. It returns the number of accesses that
// missed every level (reached memory).
func (h *Hierarchy) Access(addr trace.Addr, size uint32) int {
	// Line-level filtering across levels with different line sizes is
	// approximated by forwarding the whole access when any line missed.
	missed := h.levels[0].Access(addr, size)
	for i := 1; i < len(h.levels) && missed > 0; i++ {
		missed = h.levels[i].Access(addr, size)
	}
	return missed
}

// Level returns the statistics of level i (0 = closest).
func (h *Hierarchy) Level(i int) Stats { return h.levels[i].Stats() }

// Levels reports the number of levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// MemoryAccesses reports how many line accesses reached memory (missed the
// last level).
func (h *Hierarchy) MemoryAccesses() uint64 { return h.levels[len(h.levels)-1].Stats().Misses }

// Footprint sums the levels' simulator memory use (see Cache.Footprint).
func (h *Hierarchy) Footprint() int64 {
	var total int64
	for _, lvl := range h.levels {
		total += lvl.Footprint()
	}
	return total
}

// AMAT estimates the average memory access time in cycles for the given
// per-level hit latencies plus memory latency (lengths: len(levels)+1).
// It weights each level's latency by the fraction of line accesses that
// reach it.
func (h *Hierarchy) AMAT(latencies ...float64) float64 {
	if len(latencies) != len(h.levels)+1 {
		panic("cachesim: AMAT needs one latency per level plus memory")
	}
	total := float64(h.levels[0].Stats().Lines)
	if total == 0 {
		return 0
	}
	// Every line access pays L1; each level's misses pay the next level.
	cycles := total * latencies[0]
	for i, lvl := range h.levels {
		cycles += float64(lvl.Stats().Misses) * latencies[i+1]
	}
	return cycles / total
}
