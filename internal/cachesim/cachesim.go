// Package cachesim provides a set-associative LRU cache simulator.
//
// The paper motivates object-relative profiles with data-layout
// optimizations — cache-conscious placement, field reordering, object
// clustering (§1, §3.2, related work [4][13]). Evaluating those
// optimizations needs a cache model: this package replays address streams
// through a configurable cache and reports hit/miss statistics, so the
// layout package can quantify a proposed layout against the original.
package cachesim

import (
	"fmt"

	"ormprof/internal/trace"
)

// Config describes a cache. The zero value is not valid; use a preset or
// fill all fields.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity (1 = direct mapped)
}

// L1D is a typical small L1 data cache (32 KiB, 64-byte lines, 8-way), the
// default evaluation target.
var L1D = Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}

// L2 is a mid-size second-level cache (256 KiB, 64-byte lines, 8-way).
var L2 = Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8}

// Sets reports the number of sets the configuration yields.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: non-positive config %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	sets := c.Sets()
	if sets <= 0 || c.SizeBytes != sets*c.LineBytes*c.Ways {
		return fmt.Errorf("cachesim: size %d not divisible into %d-byte %d-way sets", c.SizeBytes, c.LineBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	return nil
}

// Stats accumulates access results.
type Stats struct {
	Accesses uint64 // memory accesses simulated
	Lines    uint64 // cache lines touched (≥ Accesses; split accesses touch 2+)
	Hits     uint64
	Misses   uint64

	// Prefetches counts lines touched by Prefetch (not included above);
	// PrefetchHits are the already-resident (wasted) ones.
	Prefetches   uint64
	PrefetchHits uint64
}

// MissRate reports Misses/Lines (0 for an empty run).
func (s Stats) MissRate() float64 {
	if s.Lines == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lines)
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg      Config
	setMask  uint64
	lineBits uint
	// sets[i] holds tags in LRU order, most recent first. A tag is the
	// line address (addr >> lineBits); valid entries only.
	sets  [][]uint64
	stats Stats
	// resident counts filled ways across all sets, maintained on insert so
	// Footprint is O(1).
	resident int
}

// New builds a cache; it panics on an invalid configuration (a programming
// error, caught by the validate tests).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(sets - 1),
		sets:    make([][]uint64, sets),
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates one memory access of size bytes at addr, touching every
// line the access overlaps. It returns the number of line misses incurred.
func (c *Cache) Access(addr trace.Addr, size uint32) int {
	if size == 0 {
		size = 1
	}
	c.stats.Accesses++
	first := uint64(addr) >> c.lineBits
	last := (uint64(addr) + uint64(size) - 1) >> c.lineBits
	misses := 0
	for line := first; line <= last; line++ {
		c.stats.Lines++
		if c.touch(line) {
			c.stats.Hits++
		} else {
			c.stats.Misses++
			misses++
		}
	}
	return misses
}

// touch looks the line up, updating LRU order and filling on miss; it
// reports whether the access hit.
func (c *Cache) touch(line uint64) bool {
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Move to front.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	// Miss: insert at front, evicting the LRU way if full.
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
		c.resident++
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line&c.setMask] = set
	return false
}

// Prefetch fills the lines covering [addr, addr+size) without counting them
// in the demand statistics; Prefetches/PrefetchHits are tracked separately
// so a prefetching policy's accuracy and bandwidth cost are visible.
func (c *Cache) Prefetch(addr trace.Addr, size uint32) {
	if size == 0 {
		size = 1
	}
	first := uint64(addr) >> c.lineBits
	last := (uint64(addr) + uint64(size) - 1) >> c.lineBits
	for line := first; line <= last; line++ {
		c.stats.Prefetches++
		if c.touch(line) {
			c.stats.PrefetchHits++ // already resident: wasted prefetch
		}
	}
}

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.stats = Stats{}
	c.resident = 0
}

// Footprint reports the simulator's own memory use in bytes (tag storage
// plus set headers), maintained incrementally as sets fill. This is what
// the resource-governance budget charges for an evaluation cache; note it
// is the simulator's cost, not the simulated capacity.
func (c *Cache) Footprint() int64 {
	const sliceHeader = 24
	return int64(len(c.sets))*sliceHeader + int64(c.resident)*8
}

// Replay drives the cache with every access event of a trace and returns
// the statistics.
func Replay(events []trace.Event, cfg Config) Stats {
	c := New(cfg)
	for _, e := range events {
		if e.Kind == trace.EvAccess {
			c.Access(e.Addr, e.Size)
		}
	}
	return c.Stats()
}
