package cachesim

import (
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// Resolve maps an object-relative reference (group, object, offset) to the
// address it occupies under some data layout. This is the paper's §1 insight
// made operational: the profile names accesses by tuples, so evaluating a
// proposed layout is just replaying the same tuples through a different
// resolution function. layout.OriginalResolver resolves to the profiled
// run's addresses; the plan resolvers resolve to the optimized layout.
//
// A false return means the reference cannot be placed under this layout
// (e.g. the object table has no entry); such accesses are skipped and
// counted by the replay entry points.
type Resolve func(ref omc.Ref) (trace.Addr, bool)

// ReplayRecords drives the cache with an object-relative record stream
// through resolve and returns the number of unresolvable (skipped) records.
func (c *Cache) ReplayRecords(recs []profiler.Record, resolve Resolve) int {
	skipped := 0
	for _, r := range recs {
		addr, ok := resolve(r.Ref)
		if !ok {
			skipped++
			continue
		}
		c.Access(addr, r.Size)
	}
	return skipped
}

// ReplayRecords drives every level of the hierarchy with the record stream
// through resolve (misses forwarded level to level, as in Access) and
// returns the number of skipped records.
func (h *Hierarchy) ReplayRecords(recs []profiler.Record, resolve Resolve) int {
	skipped := 0
	for _, r := range recs {
		addr, ok := resolve(r.Ref)
		if !ok {
			skipped++
			continue
		}
		h.Access(addr, r.Size)
	}
	return skipped
}
