package checkpoint

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

// buildState assembles a State from real mid-stream profiler pipelines, so
// round-trip tests cover the actual snapshot types end to end.
func buildState(t *testing.T, events int) *State {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	sites := map[trace.SiteID]string{1: "alpha", 2: "beta"}

	wOMC := omc.New(sites)
	wSCC := whomp.NewSCC()
	wCDC := profiler.NewCDC(wOMC, wSCC)
	lOMC := omc.New(sites)
	lSCC := leap.NewSCC(8)
	lCDC := profiler.NewCDC(lOMC, lSCC)
	ideal := stride.NewIdeal()

	for i := 0; i < events; i++ {
		var e trace.Event
		switch rng.Intn(8) {
		case 0:
			e = trace.Event{Kind: trace.EvAlloc, Site: trace.SiteID(rng.Intn(2) + 1),
				Addr: trace.Addr(0x1000 + rng.Intn(32)*0x100), Size: 128, Time: trace.Time(i)}
		case 1:
			e = trace.Event{Kind: trace.EvFree, Addr: trace.Addr(0x1000 + rng.Intn(32)*0x100), Time: trace.Time(i)}
		default:
			e = trace.Event{Kind: trace.EvAccess, Instr: trace.InstrID(rng.Intn(5) + 1),
				Addr: trace.Addr(0x1000 + rng.Intn(0x2200)), Time: trace.Time(i)}
		}
		wCDC.Emit(e)
		lCDC.Emit(e)
		ideal.Emit(e)
	}

	wo, err := wOMC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wSCC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lo, err := lOMC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return &State{
		SessionID:     "sess-1",
		Workload:      "synthetic",
		Sites:         SortSites(sites),
		FramesApplied: 7,
		EventsApplied: uint64(events),
		WhompOMC:      wo,
		Whomp:         ws,
		LeapOMC:       lo,
		Leap:          lSCC.Snapshot(),
		Stride:        ideal.Snapshot(),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st := buildState(t, 3000)
	path := PathFor(t.TempDir(), st.SessionID)
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("Save left its temp file behind")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Error("loaded state differs from saved state")
	}
	// The restored snapshots must actually reconstruct working pipelines.
	if _, err := omc.FromSnapshot(got.WhompOMC); err != nil {
		t.Errorf("restored WHOMP OMC: %v", err)
	}
	if _, err := whomp.SCCFromSnapshot(got.Whomp); err != nil {
		t.Errorf("restored WHOMP SCC: %v", err)
	}
	if _, err := leap.SCCFromSnapshot(got.Leap); err != nil {
		t.Errorf("restored LEAP SCC: %v", err)
	}
	if _, err := stride.FromSnapshot(got.Stride); err != nil {
		t.Errorf("restored stride profiler: %v", err)
	}
}

// TestLoadRejectsDamage flips or truncates bytes all over the file and
// requires every damaged variant to fail with *CorruptError — never decode
// silently, never panic.
func TestLoadRejectsDamage(t *testing.T) {
	st := buildState(t, 400)
	dir := t.TempDir()
	path := PathFor(dir, st.SessionID)
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(orig)/64 + 1
	for off := 0; off < len(orig); off += step {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0x41
		p := filepath.Join(dir, "bad.ckpt")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Fatalf("flip at %d: Load accepted a damaged checkpoint", off)
		} else if !IsCorrupt(err) {
			t.Fatalf("flip at %d: error %v is not a CorruptError", off, err)
		}
	}
	for _, n := range []int{0, 3, len(Magic), len(Magic) + 5, len(orig) / 2, len(orig) - 1} {
		p := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(p, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); !IsCorrupt(err) {
			t.Fatalf("truncation to %d: want CorruptError, got %v", n, err)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}

// TestSaveOverwriteAtomic: overwriting a checkpoint leaves either the old
// or the new state readable at every step (no in-place truncation window).
func TestSaveOverwriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := PathFor(dir, "s")
	st1 := buildState(t, 200)
	st2 := buildState(t, 900)
	st2.FramesApplied = 99
	if err := Save(path, st1); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, st2); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FramesApplied != 99 {
		t.Errorf("FramesApplied = %d, want the newer state's 99", got.FramesApplied)
	}
}

// TestLoadDirSkipsCorrupt: one damaged checkpoint must not block resuming
// the healthy sessions.
func TestLoadDirSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	good := buildState(t, 300)
	if err := Save(PathFor(dir, good.SessionID), good); err != nil {
		t.Fatal(err)
	}
	other := buildState(t, 100)
	other.SessionID = "sess-2"
	if err := Save(PathFor(dir, other.SessionID), other); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.ckpt"), []byte("ORMCKPTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	states, skipped, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 || states["sess-1"] == nil || states["sess-2"] == nil {
		t.Errorf("LoadDir found sessions %v, want sess-1 and sess-2", keysOf(states))
	}
	if len(skipped) != 1 {
		t.Errorf("skipped %v, want exactly the junk file", skipped)
	}
}

func keysOf(m map[string]*State) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestPathForSanitizes(t *testing.T) {
	p := PathFor("/tmp/ckpt", "../../etc/passwd")
	if filepath.Dir(p) != "/tmp/ckpt" {
		t.Fatalf("PathFor escaped the checkpoint directory: %s", p)
	}
}
