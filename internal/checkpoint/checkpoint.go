// Package checkpoint persists profiler state to disk so a long-running
// ingestion session survives a crash.
//
// A checkpoint is one file holding the complete mid-stream state of a
// session's profiling pipelines — the exact Snapshot forms exported by
// sequitur, omc, leap, stride, and whomp — plus the session's durable
// cursor (how many trace frames have been fully applied). Restoring the
// snapshots and replaying from the cursor yields profiles byte-identical
// to an uninterrupted run; that property is what lets `ormpd -resume`
// acknowledge only checkpointed frames and still guarantee exactness
// (see docs/ARCHITECTURE.md, "Service layer").
//
// On-disk container (see docs/FORMATS.md):
//
//	magic   "ORMCKPT" (7 bytes)
//	version 1 byte (currently 1)
//	length  8 bytes little-endian: payload byte count
//	crc     4 bytes little-endian: CRC-32C (Castagnoli) of the payload
//	payload gob-encoded State
//
// Writes are crash-atomic: Save writes <path>.tmp, fsyncs it, renames it
// over <path>, and fsyncs the directory, so a reader never observes a
// half-written checkpoint — it sees either the old file or the new one.
// A torn or bit-flipped file fails the length or CRC check and Load
// returns a *CorruptError, which resume treats as "no usable checkpoint"
// rather than trusting damaged state.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ormprof/internal/atomicfile"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

const (
	// Magic identifies a checkpoint file.
	Magic = "ORMCKPT"
	// Version is the current container version.
	Version = 1
	// MaxPayload bounds the payload length field so a corrupt header
	// cannot drive a huge allocation.
	MaxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a structurally damaged checkpoint file. Resume
// logic treats it as "checkpoint unusable" (start fresh), distinct from
// I/O errors, which are operational failures.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint %s: corrupt: %s", e.Path, e.Reason)
}

// IsCorrupt reports whether err is a *CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// SiteEntry is one allocation-site name, kept sorted for determinism.
type SiteEntry struct {
	Site trace.SiteID
	Name string
}

// State is the complete resumable state of one ingestion session.
//
// The WHOMP and LEAP pipelines each keep their own OMC (mirroring the
// offline tools, which build one per profiler run), so both are stored.
// All component fields are the exact-snapshot types whose restore is
// proven byte-exact by their packages' resume tests.
type State struct {
	// SessionID names the session (the client supplies it and keeps it
	// across reconnects).
	SessionID string
	// Workload is the trace header's workload name.
	Workload string
	// Sites is the trace header's site-name table, sorted by site.
	Sites []SiteEntry
	// FramesApplied is the durable cursor: the number of leading trace
	// frames whose events are fully reflected in the snapshots below.
	FramesApplied uint64
	// EventsApplied counts the events those frames carried.
	EventsApplied uint64

	WhompOMC *omc.Snapshot
	Whomp    *whomp.SCCSnapshot
	LeapOMC  *omc.Snapshot
	Leap     *leap.SCCSnapshot
	Stride   *stride.Snapshot

	// Ladder is the resource-governance state: the degradation rung the
	// session was on, its step history, and the degraded modes' own state.
	// nil in checkpoints written before governance existed (gob leaves the
	// field unset), which restores as an ungoverned full-rung session. At
	// rungs below object-sampled the pipeline snapshots above are nil: the
	// session's entire output lives in the ladder.
	Ladder *govern.Snapshot
}

// SitesMap converts the sorted site table back to map form.
func (s *State) SitesMap() map[trace.SiteID]string {
	if len(s.Sites) == 0 {
		return nil
	}
	m := make(map[trace.SiteID]string, len(s.Sites))
	for _, e := range s.Sites {
		m[e.Site] = e.Name
	}
	return m
}

// SortSites converts a site-name map to the sorted slice form.
func SortSites(m map[trace.SiteID]string) []SiteEntry {
	out := make([]SiteEntry, 0, len(m))
	for id, name := range m {
		out = append(out, SiteEntry{Site: id, Name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Encode serializes the state into the container format.
func Encode(st *State) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	if payload.Len() > MaxPayload {
		return nil, fmt.Errorf("checkpoint: payload %d bytes exceeds limit %d", payload.Len(), MaxPayload)
	}
	out := make([]byte, 0, len(Magic)+1+12+payload.Len())
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(payload.Len()))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), crcTable))
	out = append(out, payload.Bytes()...)
	return out, nil
}

// Decode parses a container produced by Encode. path is used only for
// error messages.
func Decode(path string, data []byte) (*State, error) {
	bad := func(format string, args ...any) (*State, error) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	head := len(Magic) + 1 + 8 + 4
	if len(data) < head {
		return bad("file too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return bad("bad magic")
	}
	if v := data[len(Magic)]; v != Version {
		return bad("unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[len(Magic)+1:])
	if n > MaxPayload {
		return bad("unreasonable payload length %d", n)
	}
	sum := binary.LittleEndian.Uint32(data[len(Magic)+9:])
	payload := data[head:]
	if uint64(len(payload)) != n {
		return bad("payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return bad("payload CRC %#08x, header says %#08x", got, sum)
	}
	st := new(State)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return bad("payload does not decode: %v", err)
	}
	return st, nil
}

// Save atomically writes the state to path: the container is written to
// <path>.tmp, fsynced, renamed over path, and the directory fsynced.
func Save(path string, st *State) error {
	data, err := Encode(st)
	if err != nil {
		return err
	}
	return writeAtomic(path, data)
}

// writeAtomic commits data to path crash-atomically via
// internal/atomicfile — tmp + fsync + rename + directory fsync, the same
// discipline for every durable artifact this package owns (session
// checkpoints, final states, the router table). A failure is a typed
// *atomicfile.WriteError and leaves the previous durable copy intact.
func writeAtomic(path string, data []byte) error {
	if err := atomicfile.Write(path, data); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and verifies the checkpoint at path. A missing file returns
// an error satisfying errors.Is(err, os.ErrNotExist); a damaged file
// returns a *CorruptError.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, MaxPayload+64))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	return Decode(path, data)
}

// PathFor returns the checkpoint path for a session in dir.
func PathFor(dir, sessionID string) string {
	return filepath.Join(dir, sanitize(sessionID)+".ckpt")
}

// Skipped describes one unusable checkpoint file LoadDir left behind:
// the path and the typed error (usually a *CorruptError) explaining why.
type Skipped struct {
	Path string
	Err  error
}

func (s Skipped) Error() string { return s.Err.Error() }

// LoadDir loads every readable checkpoint in dir, keyed by session ID.
// Corrupt or unreadable files are skipped with a typed per-file error, so
// one damaged checkpoint never blocks resuming the others.
func LoadDir(dir string) (states map[string]*State, skipped []Skipped, err error) {
	return loadDirExt(dir, ".ckpt")
}

// FinalPathFor returns the final-state path for a completed session in
// dir. A final state is the same container as a live checkpoint, written
// once when the session completes and never deleted: it is what the
// cluster merge plane combines (see docs/FORMATS.md, "Final session
// states").
func FinalPathFor(dir, sessionID string) string {
	return filepath.Join(dir, sanitize(sessionID)+".final")
}

// LoadFinalDir loads every readable final session state in dir, keyed by
// session ID, with the same skip-don't-block contract as LoadDir.
func LoadFinalDir(dir string) (states map[string]*State, skipped []Skipped, err error) {
	return loadDirExt(dir, ".final")
}

func loadDirExt(dir, ext string) (states map[string]*State, skipped []Skipped, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	states = make(map[string]*State)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ext {
			continue
		}
		p := filepath.Join(dir, e.Name())
		st, err := Load(p)
		if err != nil {
			skipped = append(skipped, Skipped{Path: p, Err: err})
			continue
		}
		states[st.SessionID] = st
	}
	return states, skipped, nil
}

// sanitize makes a session ID safe to use as a file name.
func sanitize(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "session"
	}
	return string(out)
}
