package checkpoint

// The router's durable cursor state. Where a shard's checkpoint remembers
// how much of a session's stream is applied, the router's table remembers
// WHERE each rerouted session's stream lives: a session whose primary
// shard died (or whose ring moved under it) is parked on another shard,
// and a router restart must send its reconnects back to that shard —
// otherwise the recovered primary would welcome the client at a stale
// cursor and the stream would be re-sent from scratch (still exact, but a
// full replay instead of a resume).
//
// Version 2 makes the table the cluster's topology document, not just its
// exception list: it carries the ring epoch and the shard list alongside
// the routes, so a standby router that replicates the table serves the
// same ring at the same epoch as the primary that wrote it — and a
// replica holding an older epoch can be detected and refused instead of
// silently resurrecting a retired topology.
//
// On-disk container (see docs/FORMATS.md):
//
//	magic   "ORMRTAB" (7 bytes)
//	version 1 byte (currently 2; version-1 files still load)
//	length  8 bytes little-endian: payload byte count
//	crc     4 bytes little-endian: CRC-32C (Castagnoli) of the payload
//	payload gob-encoded RouterState: ring epoch, shard list in ring
//	        order, routes sorted by session ID (v1 payloads carry only
//	        the routes and load with Epoch 0 and a nil shard list)
//
// Writes share Save's crash-atomic discipline, and a torn or bit-flipped
// table fails the CRC and loads as a *CorruptError — the router treats
// that as an empty table (every session back to its ring primary), which
// is always safe.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

const (
	// RouterMagic identifies a router routing-table file.
	RouterMagic = "ORMRTAB"
	// RouterVersion is the current table container version.
	RouterVersion = 2
	// routerVersion1 is the pre-epoch container, still readable.
	routerVersion1 = 1
	// MaxRouterPayload bounds the table payload so a corrupt header
	// cannot drive a huge allocation.
	MaxRouterPayload = 1 << 26
)

// Route is one session's pinned shard assignment.
type Route struct {
	Session string
	Shard   string
}

// RouterTable is the v1 persisted payload: routes only. It remains a
// named type so old gob payloads decode; new tables persist RouterState.
type RouterTable struct {
	Routes []Route // sorted by session ID
}

// RouterState is the router's full durable state: the ring topology
// (epoch + shard list) plus every pinned session→shard route. It is both
// the on-disk payload and the unit of router-to-router replication.
type RouterState struct {
	// Epoch is the ring version: 1 for a fresh ring, incremented by every
	// add-shard/remove-shard. Epoch 0 marks a legacy v1 table that carried
	// no topology.
	Epoch uint64
	// Shards is the ring's shard address list, in ring-build order.
	Shards []string
	// Routes maps session → shard for sessions pinned off their current
	// ring primary.
	Routes map[string]string
}

// gobRouterState is the serialized form: routes as a sorted slice so the
// payload bytes are a canonical function of the state — byte-comparing
// two table files compares the tables.
type gobRouterState struct {
	Epoch  uint64
	Shards []string
	Routes []Route
}

// EncodeRouterTable serializes the state into the ORMRTAB v2 container
// (the exact bytes SaveRouterTable writes). The encoding is canonical:
// routes are sorted by session ID, so equal states encode equal bytes and
// a replicated table is byte-identical to its source.
func EncodeRouterTable(st *RouterState) ([]byte, error) {
	g := gobRouterState{Epoch: st.Epoch, Shards: append([]string(nil), st.Shards...)}
	g.Routes = make([]Route, 0, len(st.Routes))
	for s, sh := range st.Routes {
		g.Routes = append(g.Routes, Route{Session: s, Shard: sh})
	}
	sort.Slice(g.Routes, func(i, j int) bool { return g.Routes[i].Session < g.Routes[j].Session })
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&g); err != nil {
		return nil, fmt.Errorf("checkpoint: encode router table: %w", err)
	}
	if payload.Len() > MaxRouterPayload {
		return nil, fmt.Errorf("checkpoint: router table %d bytes exceeds limit %d", payload.Len(), MaxRouterPayload)
	}
	out := make([]byte, 0, len(RouterMagic)+1+12+payload.Len())
	out = append(out, RouterMagic...)
	out = append(out, RouterVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(payload.Len()))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), crcTable))
	return append(out, payload.Bytes()...), nil
}

// DecodeRouterTable parses an ORMRTAB container (v1 or v2) from data. A
// damaged container returns a *CorruptError with path as its location
// label (the caller names the source: a file path, or a replication
// peer).
func DecodeRouterTable(path string, data []byte) (*RouterState, error) {
	bad := func(format string, args ...any) (*RouterState, error) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	head := len(RouterMagic) + 1 + 8 + 4
	if len(data) < head {
		return bad("file too short (%d bytes)", len(data))
	}
	if string(data[:len(RouterMagic)]) != RouterMagic {
		return bad("bad magic")
	}
	version := data[len(RouterMagic)]
	if version != RouterVersion && version != routerVersion1 {
		return bad("unsupported version %d", version)
	}
	n := binary.LittleEndian.Uint64(data[len(RouterMagic)+1:])
	if n > MaxRouterPayload {
		return bad("unreasonable payload length %d", n)
	}
	sum := binary.LittleEndian.Uint32(data[len(RouterMagic)+9:])
	payload := data[head:]
	if uint64(len(payload)) != n {
		return bad("payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return bad("payload CRC %#08x, header says %#08x", got, sum)
	}
	var routes []Route
	st := &RouterState{}
	if version == routerVersion1 {
		var tab RouterTable
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&tab); err != nil {
			return bad("payload does not decode: %v", err)
		}
		routes = tab.Routes
	} else {
		var g gobRouterState
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&g); err != nil {
			return bad("payload does not decode: %v", err)
		}
		st.Epoch = g.Epoch
		st.Shards = g.Shards
		routes = g.Routes
		seen := make(map[string]bool, len(g.Shards))
		for _, sh := range g.Shards {
			if sh == "" {
				return bad("empty shard address in topology")
			}
			if seen[sh] {
				return bad("duplicate shard address %q in topology", sh)
			}
			seen[sh] = true
		}
		if st.Epoch > 0 && len(st.Shards) == 0 {
			return bad("epoch %d with empty shard list", st.Epoch)
		}
	}
	st.Routes = make(map[string]string, len(routes))
	for _, r := range routes {
		if r.Session == "" || r.Shard == "" {
			return bad("route with empty session or shard")
		}
		if _, dup := st.Routes[r.Session]; dup {
			return bad("duplicate route for session %q", r.Session)
		}
		st.Routes[r.Session] = r.Shard
	}
	return st, nil
}

// SaveRouterTable atomically writes the router state to path.
func SaveRouterTable(path string, st *RouterState) error {
	out, err := EncodeRouterTable(st)
	if err != nil {
		return err
	}
	return writeAtomic(path, out)
}

// LoadRouterTable reads and verifies the routing table at path. A missing
// file returns an error satisfying errors.Is(err, os.ErrNotExist); a
// damaged file returns a *CorruptError.
func LoadRouterTable(path string) (*RouterState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, MaxRouterPayload+64))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	return DecodeRouterTable(path, data)
}
