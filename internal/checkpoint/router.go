package checkpoint

// The router's durable cursor state. Where a shard's checkpoint remembers
// how much of a session's stream is applied, the router's table remembers
// WHERE each rerouted session's stream lives: a session whose primary
// shard died is parked on another shard, and a router restart must send
// its reconnects back to that shard — otherwise the recovered primary
// would welcome the client at a stale cursor and the stream would be
// re-sent from scratch (still exact, but a full replay instead of a
// resume). Only sessions routed off their hash-ring primary appear in the
// table; the common case persists nothing.
//
// On-disk container (see docs/FORMATS.md):
//
//	magic   "ORMRTAB" (7 bytes)
//	version 1 byte (currently 1)
//	length  8 bytes little-endian: payload byte count
//	crc     4 bytes little-endian: CRC-32C (Castagnoli) of the payload
//	payload gob-encoded RouterTable, routes sorted by session ID
//
// Writes share Save's crash-atomic discipline, and a torn or bit-flipped
// table fails the CRC and loads as a *CorruptError — the router treats
// that as an empty table (every session back to its ring primary), which
// is always safe.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

const (
	// RouterMagic identifies a router routing-table file.
	RouterMagic = "ORMRTAB"
	// RouterVersion is the current table container version.
	RouterVersion = 1
	// MaxRouterPayload bounds the table payload so a corrupt header
	// cannot drive a huge allocation.
	MaxRouterPayload = 1 << 26
)

// Route is one session's pinned shard assignment.
type Route struct {
	Session string
	Shard   string
}

// RouterTable is the router's persisted session→shard assignments.
type RouterTable struct {
	Routes []Route // sorted by session ID
}

// SaveRouterTable atomically writes the session→shard map to path.
func SaveRouterTable(path string, routes map[string]string) error {
	tab := RouterTable{Routes: make([]Route, 0, len(routes))}
	for s, sh := range routes {
		tab.Routes = append(tab.Routes, Route{Session: s, Shard: sh})
	}
	sort.Slice(tab.Routes, func(i, j int) bool { return tab.Routes[i].Session < tab.Routes[j].Session })
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&tab); err != nil {
		return fmt.Errorf("checkpoint: encode router table: %w", err)
	}
	if payload.Len() > MaxRouterPayload {
		return fmt.Errorf("checkpoint: router table %d bytes exceeds limit %d", payload.Len(), MaxRouterPayload)
	}
	out := make([]byte, 0, len(RouterMagic)+1+12+payload.Len())
	out = append(out, RouterMagic...)
	out = append(out, RouterVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(payload.Len()))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), crcTable))
	out = append(out, payload.Bytes()...)
	return writeAtomic(path, out)
}

// LoadRouterTable reads and verifies the routing table at path. A missing
// file returns an error satisfying errors.Is(err, os.ErrNotExist); a
// damaged file returns a *CorruptError.
func LoadRouterTable(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, MaxRouterPayload+64))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	bad := func(format string, args ...any) (map[string]string, error) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	head := len(RouterMagic) + 1 + 8 + 4
	if len(data) < head {
		return bad("file too short (%d bytes)", len(data))
	}
	if string(data[:len(RouterMagic)]) != RouterMagic {
		return bad("bad magic")
	}
	if v := data[len(RouterMagic)]; v != RouterVersion {
		return bad("unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[len(RouterMagic)+1:])
	if n > MaxRouterPayload {
		return bad("unreasonable payload length %d", n)
	}
	sum := binary.LittleEndian.Uint32(data[len(RouterMagic)+9:])
	payload := data[head:]
	if uint64(len(payload)) != n {
		return bad("payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return bad("payload CRC %#08x, header says %#08x", got, sum)
	}
	var tab RouterTable
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&tab); err != nil {
		return bad("payload does not decode: %v", err)
	}
	routes := make(map[string]string, len(tab.Routes))
	for _, r := range tab.Routes {
		if r.Session == "" || r.Shard == "" {
			return bad("route with empty session or shard")
		}
		if _, dup := routes[r.Session]; dup {
			return bad("duplicate route for session %q", r.Session)
		}
		routes[r.Session] = r.Shard
	}
	return routes, nil
}
