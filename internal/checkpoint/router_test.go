package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestRouterTableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.rtab")
	st := &RouterState{
		Epoch:  3,
		Shards: []string{"10.0.0.2:7417", "10.0.0.3:7417"},
		Routes: map[string]string{
			"run7":     "10.0.0.2:7417",
			"soak-kr":  "10.0.0.3:7417",
			"baseline": "10.0.0.2:7417",
		},
	}
	if err := SaveRouterTable(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRouterTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != st.Epoch || !reflect.DeepEqual(got.Shards, st.Shards) || !reflect.DeepEqual(got.Routes, st.Routes) {
		t.Errorf("round trip: got %+v want %+v", got, st)
	}

	// An empty table round-trips too — the common no-reroutes case.
	if err := SaveRouterTable(path, &RouterState{Epoch: 1, Shards: []string{"h:1"}}); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadRouterTable(path); err != nil || len(got.Routes) != 0 || got.Epoch != 1 {
		t.Errorf("empty table: got %+v, %v", got, err)
	}
}

// TestRouterTableCanonical: equal states must encode equal bytes — the
// replication plane byte-compares tables, and map iteration order must
// not leak into the container.
func TestRouterTableCanonical(t *testing.T) {
	mk := func() *RouterState {
		return &RouterState{
			Epoch:  7,
			Shards: []string{"a:1", "b:1", "c:1"},
			Routes: map[string]string{"s1": "a:1", "s2": "b:1", "s3": "c:1", "s4": "a:1"},
		}
	}
	first, err := EncodeRouterTable(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := EncodeRouterTable(mk())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding is not canonical: differs on attempt %d", i)
		}
	}
}

// TestRouterTableV1Compat: a version-1 container (routes only, no epoch
// or shard list) still loads, as epoch 0 with a nil topology.
func TestRouterTableV1Compat(t *testing.T) {
	var payload bytes.Buffer
	tab := RouterTable{Routes: []Route{
		{Session: "old-a", Shard: "h:1"},
		{Session: "old-b", Shard: "h:2"},
	}}
	if err := gob.NewEncoder(&payload).Encode(&tab); err != nil {
		t.Fatal(err)
	}
	data := []byte(RouterMagic)
	data = append(data, routerVersion1)
	data = binary.LittleEndian.AppendUint64(data, uint64(payload.Len()))
	data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(payload.Bytes(), crcTable))
	data = append(data, payload.Bytes()...)

	path := filepath.Join(t.TempDir(), "v1.rtab")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRouterTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 0 || got.Shards != nil {
		t.Errorf("v1 table: got epoch %d shards %v, want legacy epoch 0, nil shards", got.Epoch, got.Shards)
	}
	want := map[string]string{"old-a": "h:1", "old-b": "h:2"}
	if !reflect.DeepEqual(got.Routes, want) {
		t.Errorf("v1 routes: got %v want %v", got.Routes, want)
	}
}

func TestRouterTableMissingFile(t *testing.T) {
	_, err := LoadRouterTable(filepath.Join(t.TempDir(), "absent.rtab"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want os.ErrNotExist", err)
	}
}

func TestRouterTableCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "router.rtab")
	err := SaveRouterTable(path, &RouterState{
		Epoch:  2,
		Shards: []string{"h:1", "h:2"},
		Routes: map[string]string{"s": "h:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated-header":  good[:len(RouterMagic)+2],
		"truncated-payload": good[:len(good)-1],
		"bad-magic":         append([]byte("ORMWRONG"), good[8:]...),
		"bad-version":       append(append([]byte(RouterMagic), 99), good[len(RouterMagic)+1:]...),
		"flipped-byte": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
		"flipped-epoch": func() []byte {
			// Damage inside the payload region: CRC must catch it.
			b := append([]byte(nil), good...)
			b[len(RouterMagic)+1+8+4+4] ^= 0x01
			return b
		}(),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRouterTable(p); !IsCorrupt(err) {
			t.Errorf("%s: got %v, want *CorruptError", name, err)
		}
	}
}

// TestRouterTableInvalidContents: containers whose framing is intact but
// whose decoded payload violates the format's invariants are corrupt too.
func TestRouterTableInvalidContents(t *testing.T) {
	frame := func(t *testing.T, g gobRouterState) []byte {
		t.Helper()
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&g); err != nil {
			t.Fatal(err)
		}
		data := []byte(RouterMagic)
		data = append(data, RouterVersion)
		data = binary.LittleEndian.AppendUint64(data, uint64(payload.Len()))
		data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(payload.Bytes(), crcTable))
		return append(data, payload.Bytes()...)
	}
	cases := map[string]gobRouterState{
		"duplicate-shard":    {Epoch: 1, Shards: []string{"h:1", "h:1"}},
		"empty-shard":        {Epoch: 1, Shards: []string{""}},
		"epoch-no-shards":    {Epoch: 4},
		"duplicate-session":  {Epoch: 1, Shards: []string{"h:1"}, Routes: []Route{{"s", "h:1"}, {"s", "h:1"}}},
		"empty-route-fields": {Epoch: 1, Shards: []string{"h:1"}, Routes: []Route{{"", ""}}},
	}
	for name, g := range cases {
		if _, err := DecodeRouterTable(name, frame(t, g)); !IsCorrupt(err) {
			t.Errorf("%s: got %v, want *CorruptError", name, err)
		}
	}
}

// FuzzRouterTable drives the ORMRTAB decoder with mutated containers. The
// decoder must never panic, and any input it accepts must re-encode to a
// container it accepts again with identical meaning (round-trip fixpoint).
func FuzzRouterTable(f *testing.F) {
	seed := func(st *RouterState) []byte {
		b, err := EncodeRouterTable(st)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(&RouterState{Epoch: 1, Shards: []string{"h:1"}}))
	f.Add(seed(&RouterState{
		Epoch:  9,
		Shards: []string{"10.0.0.2:7417", "10.0.0.3:7417", "10.0.0.4:7417"},
		Routes: map[string]string{"cl-a": "10.0.0.3:7417", "cl-b": "10.0.0.2:7417"},
	}))
	good := seed(&RouterState{Epoch: 2, Shards: []string{"a:1", "b:1"}, Routes: map[string]string{"s": "b:1"}})
	f.Add(good[:len(good)-3])                      // truncated payload
	f.Add(append([]byte("ORMWRONG"), good[8:]...)) // bad magic
	mut := append([]byte(nil), good...)
	mut[len(mut)-1] ^= 0x40 // CRC-detectable damage
	f.Add(mut)
	f.Add([]byte(RouterMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeRouterTable("fuzz", data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("decode error is not *CorruptError: %v", err)
			}
			return
		}
		out, err := EncodeRouterTable(st)
		if err != nil {
			t.Fatalf("accepted state fails to re-encode: %v", err)
		}
		st2, err := DecodeRouterTable("fuzz-reencoded", out)
		if err != nil {
			t.Fatalf("re-encoded container rejected: %v", err)
		}
		if st2.Epoch != st.Epoch || !reflect.DeepEqual(st2.Shards, st.Shards) || !reflect.DeepEqual(st2.Routes, st.Routes) {
			t.Fatalf("round trip drift: %+v vs %+v", st, st2)
		}
	})
}
