package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestRouterTableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.rtab")
	routes := map[string]string{
		"run7":     "10.0.0.2:7417",
		"soak-kr":  "10.0.0.3:7417",
		"baseline": "10.0.0.2:7417",
	}
	if err := SaveRouterTable(path, routes); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRouterTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, routes) {
		t.Errorf("round trip: got %v want %v", got, routes)
	}

	// An empty table round-trips too — the common no-reroutes case.
	if err := SaveRouterTable(path, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadRouterTable(path); err != nil || len(got) != 0 {
		t.Errorf("empty table: got %v, %v", got, err)
	}
}

func TestRouterTableMissingFile(t *testing.T) {
	_, err := LoadRouterTable(filepath.Join(t.TempDir(), "absent.rtab"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want os.ErrNotExist", err)
	}
}

func TestRouterTableCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "router.rtab")
	if err := SaveRouterTable(path, map[string]string{"s": "h:1"}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated-header":  good[:len(RouterMagic)+2],
		"truncated-payload": good[:len(good)-1],
		"bad-magic":         append([]byte("ORMWRONG"), good[8:]...),
		"bad-version":       append(append([]byte(RouterMagic), 99), good[len(RouterMagic)+1:]...),
		"flipped-byte": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRouterTable(p); !IsCorrupt(err) {
			t.Errorf("%s: got %v, want *CorruptError", name, err)
		}
	}
}
