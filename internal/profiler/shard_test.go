package profiler

import (
	"sync"
	"testing"

	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// lockedCollector is a Collector safe for use as a shard worker SCC in
// tests that read it after Finish; the mutex silences nothing real (each
// worker SCC is single-goroutine by construction) but keeps the race
// detector honest about the test's own cross-checks.
type lockedCollector struct {
	mu   sync.Mutex
	recs []Record
	fin  int
}

func (c *lockedCollector) Consume(r Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func (c *lockedCollector) Finish() {
	c.mu.Lock()
	c.fin++
	c.mu.Unlock()
}

func mkRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Instr: trace.InstrID(i % 17),
			Ref:   omc.Ref{Group: omc.GroupID(i % 5), Object: uint32(i % 3), Offset: uint64(i)},
			Time:  trace.Time(i),
		}
	}
	return recs
}

func TestShardedRoutesByKeyInOrder(t *testing.T) {
	const workers = 4
	cols := make([]*lockedCollector, workers)
	sh := NewSharded(workers, 16,
		func(r Record, n int) int { return int(uint32(r.Instr)) % n },
		func(i int) SCC {
			cols[i] = &lockedCollector{}
			return cols[i]
		})

	recs := mkRecords(1000)
	for _, r := range recs {
		sh.Consume(r)
	}
	sh.Finish()

	if sh.Records() != 1000 {
		t.Fatalf("Records() = %d, want 1000", sh.Records())
	}
	// Rebuild the expected per-shard substreams and compare exactly:
	// right shard, right records, original relative order.
	want := make([][]Record, workers)
	for _, r := range recs {
		w := int(uint32(r.Instr)) % workers
		want[w] = append(want[w], r)
	}
	total := 0
	for w := 0; w < workers; w++ {
		got := cols[w].recs
		total += len(got)
		if len(got) != len(want[w]) {
			t.Fatalf("shard %d: %d records, want %d", w, len(got), len(want[w]))
		}
		for i := range got {
			if got[i] != want[w][i] {
				t.Fatalf("shard %d record %d: got %v, want %v", w, i, got[i], want[w][i])
			}
		}
		if cols[w].fin != 1 {
			t.Fatalf("shard %d: Finish called %d times", w, cols[w].fin)
		}
	}
	if total != len(recs) {
		t.Fatalf("shards hold %d records in total, want %d", total, len(recs))
	}
}

func TestShardedPartialBatchFlush(t *testing.T) {
	// 10 records with batch size 64: everything rides the Finish flush.
	col := &lockedCollector{}
	sh := NewSharded(1, 64, func(Record, int) int { return 0 },
		func(int) SCC { return col })
	recs := mkRecords(10)
	for _, r := range recs {
		sh.Consume(r)
	}
	sh.Finish()
	if len(col.recs) != 10 {
		t.Fatalf("collector has %d records, want 10", len(col.recs))
	}
}

func TestBroadcastDeliversFullStreamToEveryWorker(t *testing.T) {
	const workers = 3
	cols := make([]*lockedCollector, workers)
	sccs := make([]SCC, workers)
	for i := range cols {
		cols[i] = &lockedCollector{}
		sccs[i] = cols[i]
	}
	bc := NewBroadcast(32, sccs...)

	recs := mkRecords(500)
	for _, r := range recs {
		bc.Consume(r)
	}
	bc.Finish()

	if bc.Records() != 500 {
		t.Fatalf("Records() = %d, want 500", bc.Records())
	}
	for w, c := range cols {
		if len(c.recs) != len(recs) {
			t.Fatalf("worker %d saw %d records, want %d", w, len(c.recs), len(recs))
		}
		for i := range recs {
			if c.recs[i] != recs[i] {
				t.Fatalf("worker %d record %d: got %v, want %v", w, i, c.recs[i], recs[i])
			}
		}
		if c.fin != 1 {
			t.Fatalf("worker %d: Finish called %d times", w, c.fin)
		}
	}
}

func TestShardedThroughCDC(t *testing.T) {
	// The sharded stage composes with the CDC exactly like a plain SCC:
	// translate a tiny synthetic trace and check the records arrive.
	col := &lockedCollector{}
	sh := NewSharded(2, 4, func(r Record, n int) int { return int(uint32(r.Instr)) % n },
		func(int) SCC { return col })
	o := omc.New(nil)
	cdc := NewCDC(o, sh)

	cdc.Emit(trace.Event{Kind: trace.EvAlloc, Site: 1, Addr: 0x1000, Size: 64, Time: 0})
	for i := 0; i < 8; i++ {
		cdc.Emit(trace.Event{Kind: trace.EvAccess, Instr: trace.InstrID(i % 2), Addr: trace.Addr(0x1000 + 8*i), Size: 8, Time: trace.Time(i + 1)})
	}
	cdc.Finish()

	if len(col.recs) != 8 {
		t.Fatalf("collector has %d records, want 8", len(col.recs))
	}
	for _, r := range col.recs {
		if r.Ref.Group == omc.Unmapped {
			t.Fatalf("record %v not translated", r)
		}
	}
}
