// Package profiler implements the paper's object-relative memory profiling
// framework (§2.3, Figure 4).
//
// The framework has three parts:
//
//   - the probes, which are the trace.Event stream produced by the
//     instrumented program (package memsim here);
//   - the Control and Decomposition Component (CDC), the hub that receives
//     instruction-probe events, queries the OMC to make them object-relative,
//     and forwards the translated 5-tuples;
//   - the Separation and Compression Component (SCC), which separates the
//     object-relative stream into substreams and compresses them. WHOMP and
//     LEAP are the two SCC implementations in this repository.
//
// The CDC is sequential by nature (each translation depends on the
// allocation history), but the SCC side parallelizes: the Sharded and
// Broadcast stages in this package fan the translated record stream out
// across worker goroutines with batched channels, deterministically — see
// docs/ARCHITECTURE.md for the pipeline's concurrency design.
//
// # Concurrency and buffer ownership
//
// Every SCC (and every trace.Sink) is fed by exactly one goroutine; the
// fan-out stages are that contract's multiplexers, not an exception to
// it — Consume on a Sharded/Broadcast stage must itself come from a
// single goroutine, and each worker lane is the single feeder of its
// downstream SCC. Record batches handed across lanes are pooled and
// reference-counted (see shard.go): the producer owns a batch while
// filling it, lanes borrow it read-only, and the last lane to release
// it recycles it. Steady-state fan-out therefore performs no per-batch
// allocation; docs/PERFORMANCE.md documents the ownership rules and the
// CI gate that enforces the zero-alloc event loop.
package profiler

import (
	"fmt"

	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// Record is the object-relative form of one executed memory access: the
// paper's 5-tuple (instruction-id, group, object, offset, time-stamp),
// extended with the access kind and width, which the dependence
// post-processor needs.
type Record struct {
	Instr trace.InstrID
	Ref   omc.Ref
	Time  trace.Time
	Store bool
	Size  uint32
}

// String renders the record in the paper's tuple notation.
func (r Record) String() string {
	op := "ld"
	if r.Store {
		op = "st"
	}
	return fmt.Sprintf("(%s%d, %d, %d, %d, t%d)", op, r.Instr, r.Ref.Group, r.Ref.Object, r.Ref.Offset, r.Time)
}

// SCC is the separation-and-compression component: it consumes the
// object-relative stream and builds a profile. Finish is called once, after
// the last record.
type SCC interface {
	Consume(Record)
	Finish()
}

// SCCFunc adapts a function to the SCC interface (Finish is a no-op).
type SCCFunc func(Record)

// Consume calls f(r).
func (f SCCFunc) Consume(r Record) { f(r) }

// Finish implements SCC.
func (SCCFunc) Finish() {}

// CDC is the control-and-decomposition component. It is a trace.Sink: object
// probes update the OMC, instruction probes are translated and forwarded to
// the SCC.
type CDC struct {
	OMC *omc.OMC
	Out SCC

	records uint64
}

// NewCDC wires a CDC to an OMC and an SCC.
func NewCDC(o *omc.OMC, out SCC) *CDC {
	return &CDC{OMC: o, Out: out}
}

// Emit implements trace.Sink.
func (c *CDC) Emit(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc, trace.EvFree:
		c.OMC.HandleEvent(e)
	case trace.EvAccess:
		ref := c.OMC.Translate(e.Addr)
		c.records++
		c.Out.Consume(Record{
			Instr: e.Instr,
			Ref:   ref,
			Time:  e.Time,
			Store: e.Store,
			Size:  e.Size,
		})
	}
}

// Finish finalizes the downstream SCC.
func (c *CDC) Finish() { c.Out.Finish() }

// Records reports how many access events were translated.
func (c *CDC) Records() uint64 { return c.records }

// Collector is an SCC that simply buffers the object-relative stream, used
// by tests, examples, and as the input stage for offline decomposition.
type Collector struct {
	Records []Record
}

// Consume implements SCC.
func (c *Collector) Consume(r Record) { c.Records = append(c.Records, r) }

// Finish implements SCC.
func (c *Collector) Finish() {}

// TranslateSource streams an event source through a fresh OMC and returns
// the object-relative stream and the OMC (whose object table holds the
// auxiliary lifetime information). siteNames may be nil. The translation
// itself is streaming — only the returned record slice grows with the
// trace; callers that stream all the way down should wire a CDC to their
// own SCC instead.
func TranslateSource(src trace.Source, siteNames map[trace.SiteID]string) ([]Record, *omc.OMC, error) {
	o := omc.New(siteNames)
	col := &Collector{}
	cdc := NewCDC(o, col)
	_, err := trace.Drain(src, cdc)
	cdc.Finish()
	return col.Records, o, err
}

// TranslateTrace replays a recorded event trace through a fresh OMC — the
// slice adapter over TranslateSource.
func TranslateTrace(events []trace.Event, siteNames map[trace.SiteID]string) ([]Record, *omc.OMC) {
	recs, o, _ := TranslateSource(trace.NewSliceSource(events), siteNames)
	return recs, o
}
