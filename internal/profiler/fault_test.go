package profiler_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ormprof/internal/profiler"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
)

// panicSCC panics on the Nth consumed record (or on Finish when n < 0).
type panicSCC struct {
	n        int
	seen     int
	finished bool
}

func (p *panicSCC) Consume(profiler.Record) {
	p.seen++
	if p.n >= 0 && p.seen >= p.n {
		panic("scc exploded")
	}
}

func (p *panicSCC) Finish() {
	if p.n < 0 {
		panic("finish exploded")
	}
	p.finished = true
}

// countSCC counts records; the well-behaved neighbor of a crashing worker.
type countSCC struct {
	seen     int
	finished bool
}

func (c *countSCC) Consume(profiler.Record) { c.seen++ }
func (c *countSCC) Finish()                 { c.finished = true }

func feed(s profiler.SCC, n int) {
	for i := 0; i < n; i++ {
		s.Consume(profiler.Record{Time: trace.Time(i), Instr: trace.InstrID(i)})
	}
	s.Finish()
}

func TestShardedWorkerPanicContained(t *testing.T) {
	testutil.LeakCheck(t)
	var healthy countSCC
	bad := &panicSCC{n: 10}
	s := profiler.NewSharded(2, 8, func(r profiler.Record, n int) int {
		return int(r.Instr) % n
	}, func(shard int) profiler.SCC {
		if shard == 0 {
			return bad
		}
		return &healthy
	})
	feed(s, 10_000) // must not panic the producer and must not deadlock

	var we *profiler.WorkerError
	if err := s.Err(); !errors.As(err, &we) {
		t.Fatalf("Err = %v, want *WorkerError", err)
	} else {
		if we.Worker != 0 || we.Value != "scc exploded" {
			t.Errorf("WorkerError = {Worker:%d Value:%v}", we.Worker, we.Value)
		}
		if !strings.Contains(string(we.Stack), "goroutine") {
			t.Errorf("WorkerError.Stack missing stack trace")
		}
	}
	// The healthy shard consumed its full substream and was finished.
	if healthy.seen != 5000 || !healthy.finished {
		t.Errorf("healthy shard: seen %d finished %v, want 5000 true", healthy.seen, healthy.finished)
	}
	// The crashed shard must not have had Finish called.
	if bad.finished {
		t.Error("crashed shard was finished")
	}
}

func TestShardedFinishPanicContained(t *testing.T) {
	testutil.LeakCheck(t)
	var healthy countSCC
	s := profiler.NewSharded(2, 8, func(r profiler.Record, n int) int {
		return int(r.Instr) % n
	}, func(shard int) profiler.SCC {
		if shard == 0 {
			return &panicSCC{n: -1} // panics in Finish, not Consume
		}
		return &healthy
	})
	feed(s, 1000)
	var we *profiler.WorkerError
	if err := s.Err(); !errors.As(err, &we) {
		t.Fatalf("Err = %v, want *WorkerError", err)
	}
	if !healthy.finished {
		t.Error("healthy shard not finished")
	}
}

func TestBroadcastWorkerPanicContained(t *testing.T) {
	testutil.LeakCheck(t)
	var healthy countSCC
	b := profiler.NewBroadcast(8, &panicSCC{n: 5}, &healthy)
	feed(b, 10_000)
	var we *profiler.WorkerError
	if err := b.Err(); !errors.As(err, &we) {
		t.Fatalf("Err = %v, want *WorkerError", err)
	}
	if we.Worker != 0 {
		t.Errorf("WorkerError.Worker = %d, want 0", we.Worker)
	}
	if healthy.seen != 10_000 || !healthy.finished {
		t.Errorf("healthy worker: seen %d finished %v, want 10000 true", healthy.seen, healthy.finished)
	}
}

func TestShardedCleanRunNoError(t *testing.T) {
	testutil.LeakCheck(t)
	var a, b countSCC
	sccs := []*countSCC{&a, &b}
	s := profiler.NewSharded(2, 8, func(r profiler.Record, n int) int {
		return int(r.Instr) % n
	}, func(shard int) profiler.SCC { return sccs[shard] })
	feed(s, 1000)
	if err := s.Err(); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
	if a.seen+b.seen != 1000 || !a.finished || !b.finished {
		t.Errorf("shards: %d+%d finished %v/%v", a.seen, b.seen, a.finished, b.finished)
	}
}

// stallSCC blocks in Consume until released, simulating a wedged worker
// whose queue backs up to the producer. It closes started on the first
// Consume so tests can synchronize on "the worker is now wedged" instead
// of sleeping and hoping.
type stallSCC struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newStallSCC() *stallSCC {
	return &stallSCC{started: make(chan struct{}), release: make(chan struct{})}
}

func (s *stallSCC) Consume(profiler.Record) {
	s.once.Do(func() { close(s.started) })
	<-s.release
}
func (s *stallSCC) Finish() {}

func TestShardedContextCancelUnblocksProducer(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stall := newStallSCC()

	s := profiler.NewShardedContext(ctx, 1, 4, func(profiler.Record, int) int { return 0 },
		func(int) profiler.SCC { return stall })

	done := make(chan struct{})
	go func() {
		defer close(done)
		feed(s, 1_000_000)
	}()
	// The worker wedges on its first record, the queue backs up, and the
	// producer blocks in send — until cancellation fires. Only then is
	// the stall released, so Finish can join the worker (cancellation is
	// cooperative: it unblocks the producer, not a wedged SCC).
	<-stall.started
	cancel()
	close(stall.release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer still blocked after cancellation")
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestBroadcastContextDeadline(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stall := newStallSCC()

	b := profiler.NewBroadcastContext(ctx, 4, stall)
	// Release the stall only once the deadline has actually fired, so the
	// deadline — not the release — is what unblocks the producer.
	go func() {
		<-ctx.Done()
		close(stall.release)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		feed(b, 1_000_000)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer still blocked after deadline")
	}
	if err := b.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", err)
	}
}

func TestShardedContextAlreadyCancelled(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c countSCC
	s := profiler.NewShardedContext(ctx, 1, 4, func(profiler.Record, int) int { return 0 },
		func(int) profiler.SCC { return &c })
	feed(s, 100)
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if !c.finished {
		t.Error("worker SCC not finished on cancelled run")
	}
}
