package profiler

import (
	"testing"

	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// figure3Trace builds the paper's Figure 3 scenario: three linked-list
// nodes at scattered addresses, traversed by instruction 1 (data) and
// instruction 2 (next).
func figure3Trace() []trace.Event {
	nodes := []trace.Addr{0x1000, 0x1480, 0x1120}
	var events []trace.Event
	now := trace.Time(0)
	for _, n := range nodes {
		events = append(events, trace.Event{Kind: trace.EvAlloc, Site: 1, Addr: n, Size: 48, Time: now})
	}
	for _, n := range nodes {
		events = append(events,
			trace.Event{Kind: trace.EvAccess, Instr: 1, Addr: n, Size: 8, Time: now},
			trace.Event{Kind: trace.EvAccess, Instr: 2, Addr: n + 8, Size: 8, Time: now + 1},
		)
		now += 2
	}
	return events
}

func TestCDCTranslation(t *testing.T) {
	recs, o := TranslateTrace(figure3Trace(), nil)
	if len(recs) != 6 {
		t.Fatalf("translated %d records", len(recs))
	}
	// All records must be in the same group with ascending serials and the
	// paper's offsets: instruction 1 at offset 0, instruction 2 at 8.
	group := recs[0].Ref.Group
	if group == omc.Unmapped {
		t.Fatal("access translated to unmapped")
	}
	for i, r := range recs {
		if r.Ref.Group != group {
			t.Errorf("record %d group %d, want %d", i, r.Ref.Group, group)
		}
		wantSerial := uint32(i / 2)
		if r.Ref.Object != wantSerial {
			t.Errorf("record %d serial %d, want %d", i, r.Ref.Object, wantSerial)
		}
		wantOffset := uint64(0)
		if r.Instr == 2 {
			wantOffset = 8
		}
		if r.Ref.Offset != wantOffset {
			t.Errorf("record %d offset %d, want %d", i, r.Ref.Offset, wantOffset)
		}
	}
	if o.LiveCount() != 3 {
		t.Errorf("OMC live count = %d", o.LiveCount())
	}
}

func TestCDCPassesKindAndSize(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EvAlloc, Site: 1, Addr: 0x1000, Size: 16},
		{Kind: trace.EvAccess, Instr: 5, Addr: 0x1000, Size: 4, Store: true, Time: 7},
	}
	recs, _ := TranslateTrace(events, nil)
	if len(recs) != 1 {
		t.Fatal("expected 1 record")
	}
	r := recs[0]
	if !r.Store || r.Size != 4 || r.Time != 7 || r.Instr != 5 {
		t.Errorf("record = %+v", r)
	}
}

func TestCDCRecordsCounter(t *testing.T) {
	o := omc.New(nil)
	col := &Collector{}
	cdc := NewCDC(o, col)
	for _, e := range figure3Trace() {
		cdc.Emit(e)
	}
	if cdc.Records() != 6 {
		t.Errorf("Records = %d", cdc.Records())
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Instr: 1, Ref: omc.Ref{Group: 2, Object: 3, Offset: 8}, Time: 9}
	if got := r.String(); got != "(ld1, 2, 3, 8, t9)" {
		t.Errorf("String = %q", got)
	}
	r.Store = true
	if got := r.String(); got != "(st1, 2, 3, 8, t9)" {
		t.Errorf("String = %q", got)
	}
}

func TestSCCFunc(t *testing.T) {
	n := 0
	var s SCC = SCCFunc(func(Record) { n++ })
	s.Consume(Record{})
	s.Finish()
	if n != 1 {
		t.Error("SCCFunc did not forward")
	}
}
