package profiler

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file implements the parallel fan-out stages of the profiling
// pipeline. The CDC itself is inherently sequential — the OMC is stateful
// and every translation depends on the allocations that preceded it — but
// everything downstream of translation decomposes: WHOMP's four dimension
// grammars are data-independent, and LEAP's vertically decomposed
// (instruction, group) streams only ever observe records of their own key.
// Two fan-out shapes cover both:
//
//   - Sharded partitions the record stream by key: each record goes to
//     exactly one worker, chosen by a ShardFunc. Records that share a shard
//     stay in stream order, which is all a vertical decomposition needs to
//     reproduce the sequential result exactly.
//   - Broadcast replicates the record stream: every worker sees every
//     record, in stream order. A horizontal decomposition needs the full
//     stream per dimension, so WHOMP's grammar builders use this shape.
//
// Both stages batch records before the channel send (DefaultShardBatch,
// following the async collector's design) so the per-record synchronization
// cost is amortized to a fraction of a channel operation.
//
// Batch ownership: batches are reference-counted (recBatch) and recycled
// through a per-stage pool. The producer fills a batch, sets its refcount
// to the number of receiving lanes (1 for Sharded, N for Broadcast), and
// sends the same pointer to each; every lane — including a crashed lane's
// drain loop — releases its reference when done, and the last release
// returns the batch to the pool. The steady-state fan-out therefore
// allocates nothing: batches cycle between the producer and the pool. The
// one exception is a cancelled broadcast, where lanes that never received
// the in-flight batch can't release it; that batch falls to the GC, which
// is fine — cancellation ends the stage.
//
// Fault containment: a panic inside a worker's SCC is recovered, recorded
// as a *WorkerError, and the dead lane keeps draining its queue — the
// single producer can never block on a crashed worker, Finish still joins
// every goroutine (no leaks), and the surviving shards' state remains
// readable. The NewShardedContext/NewBroadcastContext variants additionally
// honor context cancellation: once the context is done, queue sends stop
// blocking, further records are dropped, and Err reports ctx.Err().

// ShardFunc assigns a record to a worker shard. It must be deterministic —
// the same record always maps to the same shard — and must send every
// record of one vertically decomposed substream to the same shard, or the
// per-substream ordering guarantee is lost.
type ShardFunc func(Record, int) int

// DefaultShardBatch is the per-worker record batch size. One channel send
// per ~4096 records keeps synchronization overhead well under the cost of
// compressing the batch.
const DefaultShardBatch = 4096

// shardQueueDepth bounds the per-worker queue: the producer blocks once a
// worker is this many batches behind, bounding pipeline memory.
const shardQueueDepth = 8

// DefaultWorkers resolves a worker-count setting: values above zero are
// taken as given, anything else selects runtime.GOMAXPROCS(0).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerError is the typed error a fan-out stage reports when a worker's
// SCC panicked. The panic is contained in that worker: its lane drains
// without consuming further, and the stage's Finish still joins cleanly.
type WorkerError struct {
	// Worker is the index of the crashed lane.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *WorkerError) Error() string {
	return fmt.Sprintf("profiler: worker %d panicked: %v", e.Worker, e.Value)
}

// stageErr is the shared first-error slot of a fan-out stage.
type stageErr struct {
	mu  sync.Mutex
	err error
}

func (s *stageErr) set(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *stageErr) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// recBatch is a reference-counted record batch shared between fan-out
// lanes. The producer sets refs to the number of receivers before sending;
// each receiver treats the records as read-only and calls release when
// done. The last release recycles the batch through the stage pool.
type recBatch struct {
	recs []Record
	refs atomic.Int32
}

func (b *recBatch) release(pool *sync.Pool) {
	if b.refs.Add(-1) == 0 {
		b.recs = b.recs[:0]
		pool.Put(b)
	}
}

// getBatch draws an empty batch from the stage pool.
func getBatch(pool *sync.Pool) *recBatch {
	return pool.Get().(*recBatch)
}

// newBatchPool builds a stage's batch pool.
func newBatchPool(batchSize int) sync.Pool {
	return sync.Pool{New: func() any {
		return &recBatch{recs: make([]Record, 0, batchSize)}
	}}
}

// shardWorker is one fan-out lane: a batch being filled by the producer, a
// queue, and a goroutine draining the queue into an SCC.
type shardWorker struct {
	scc   SCC
	ch    chan *recBatch
	batch *recBatch
}

func (w *shardWorker) run(idx int, done *sync.WaitGroup, pool *sync.Pool, fail *stageErr) {
	defer done.Done()
	if err := w.work(pool); err != nil {
		err.Worker = idx
		fail.set(err)
		// The lane is dead, but the single producer must never block on
		// it: keep draining until the queue closes, still releasing each
		// batch so the surviving lanes' recycling keeps working.
		for batch := range w.ch {
			batch.release(pool)
		}
	}
}

// work consumes the lane's queue into the SCC and finishes it, converting
// a panic anywhere in the SCC into a *WorkerError.
func (w *shardWorker) work(pool *sync.Pool) (werr *WorkerError) {
	defer func() {
		if v := recover(); v != nil {
			werr = &WorkerError{Value: v, Stack: debug.Stack()}
		}
	}()
	for batch := range w.ch {
		for i := range batch.recs {
			w.scc.Consume(batch.recs[i])
		}
		batch.release(pool)
	}
	w.scc.Finish()
	return nil
}

// Sharded is a parallel SCC stage that partitions the record stream across
// N workers by a shard function. Each worker owns one downstream SCC;
// because a worker's queue is FIFO and filled by the single producer,
// every shard observes its records in original stream order — the
// per-substream order a vertical decomposition requires. Consume must be
// called from a single goroutine (the CDC), like any SCC.
type Sharded struct {
	workers []shardWorker
	shard   ShardFunc
	batchSz int
	pool    sync.Pool
	done    sync.WaitGroup
	records uint64

	ctxDone <-chan struct{} // nil without a context
	ctxErr  func() error
	stopped bool // context fired: drop instead of queue
	fail    stageErr
}

// NewSharded starts n workers, each draining into the SCC built by newSCC
// for its shard index. shard routes records; batchSize ≤ 0 selects
// DefaultShardBatch.
func NewSharded(n, batchSize int, shard ShardFunc, newSCC func(shard int) SCC) *Sharded {
	return NewShardedContext(context.Background(), n, batchSize, shard, newSCC)
}

// NewShardedContext is NewSharded with cooperative cancellation: once ctx
// is done the producer stops queueing (dropping further records instead of
// blocking on a stalled worker), Finish still joins every worker, and Err
// reports ctx.Err() if nothing worse happened first.
func NewShardedContext(ctx context.Context, n, batchSize int, shard ShardFunc, newSCC func(shard int) SCC) *Sharded {
	if n < 1 {
		n = 1
	}
	if batchSize <= 0 {
		batchSize = DefaultShardBatch
	}
	s := &Sharded{
		workers: make([]shardWorker, n),
		shard:   shard,
		batchSz: batchSize,
	}
	// A background context's Done is nil, which routes send to the
	// plain blocking path — the context machinery costs nothing there.
	s.ctxDone = ctx.Done()
	s.ctxErr = ctx.Err
	s.pool = newBatchPool(batchSize)
	s.done.Add(n)
	for i := range s.workers {
		w := &s.workers[i]
		w.scc = newSCC(i)
		w.ch = make(chan *recBatch, shardQueueDepth)
		w.batch = getBatch(&s.pool)
		go w.run(i, &s.done, &s.pool, &s.fail)
	}
	return s
}

// Consume implements SCC: the record is routed to its shard's batch and the
// batch is flushed to the worker when full.
func (s *Sharded) Consume(r Record) {
	s.records++
	if s.stopped {
		return
	}
	w := &s.workers[s.shard(r, len(s.workers))]
	w.batch.recs = append(w.batch.recs, r)
	if len(w.batch.recs) == s.batchSz {
		s.send(w)
	}
}

// send queues the worker's full batch, giving up (and dropping it) if the
// context fires while the queue is full.
func (s *Sharded) send(w *shardWorker) {
	w.batch.refs.Store(1)
	if s.ctxDone == nil {
		w.ch <- w.batch
	} else {
		select {
		case w.ch <- w.batch:
		case <-s.ctxDone:
			s.fail.set(s.ctxErr())
			s.stopped = true
		}
	}
	w.batch = getBatch(&s.pool)
}

// Finish implements SCC: it flushes every partial batch, closes the queues,
// and joins the workers. When it returns, every worker SCC has consumed its
// full substream and had its own Finish called (crashed or cancelled lanes
// excepted), and is safe to read. Check Err for faults.
func (s *Sharded) Finish() {
	for i := range s.workers {
		w := &s.workers[i]
		if !s.stopped && len(w.batch.recs) > 0 {
			s.send(w)
		}
		w.batch = nil
		close(w.ch)
	}
	s.done.Wait()
	if err := s.ctxErr(); err != nil {
		s.fail.set(err)
	}
}

// Err reports the stage's first fault — a *WorkerError if an SCC panicked,
// or the context's error if cancellation cut the stream short. It is nil
// after a clean run. Call after Finish for the final verdict.
func (s *Sharded) Err() error { return s.fail.get() }

// Records reports how many records the stage has routed.
func (s *Sharded) Records() uint64 { return s.records }

// NumWorkers reports the shard count.
func (s *Sharded) NumWorkers() int { return len(s.workers) }

// SCC returns shard i's downstream SCC. Only call after Finish (the worker
// goroutine owns the SCC until then).
func (s *Sharded) SCC(i int) SCC { return s.workers[i].scc }

// Broadcast is a parallel SCC stage that replicates the record stream to N
// workers: every worker's SCC consumes every record, in original stream
// order. Batches are shared read-only between the workers, with a
// reference count set to the worker count per flush; the last worker done
// with a batch recycles it, so the steady state allocates nothing.
// Consume must be called from a single goroutine.
type Broadcast struct {
	workers []shardWorker
	batch   *recBatch
	batchSz int
	pool    sync.Pool
	done    sync.WaitGroup
	records uint64

	ctxDone <-chan struct{}
	ctxErr  func() error
	stopped bool
	fail    stageErr
}

// NewBroadcast starts one worker per downstream SCC. batchSize ≤ 0 selects
// DefaultShardBatch.
func NewBroadcast(batchSize int, sccs ...SCC) *Broadcast {
	return NewBroadcastContext(context.Background(), batchSize, sccs...)
}

// NewBroadcastContext is NewBroadcast with cooperative cancellation,
// mirroring NewShardedContext.
func NewBroadcastContext(ctx context.Context, batchSize int, sccs ...SCC) *Broadcast {
	if batchSize <= 0 {
		batchSize = DefaultShardBatch
	}
	b := &Broadcast{
		workers: make([]shardWorker, len(sccs)),
		batchSz: batchSize,
	}
	b.pool = newBatchPool(batchSize)
	b.batch = getBatch(&b.pool)
	b.ctxDone = ctx.Done()
	b.ctxErr = ctx.Err
	b.done.Add(len(sccs))
	for i := range b.workers {
		w := &b.workers[i]
		w.scc = sccs[i]
		w.ch = make(chan *recBatch, shardQueueDepth)
		go w.run(i, &b.done, &b.pool, &b.fail)
	}
	return b
}

// Consume implements SCC.
func (b *Broadcast) Consume(r Record) {
	b.records++
	if b.stopped {
		return
	}
	b.batch.recs = append(b.batch.recs, r)
	if len(b.batch.recs) == b.batchSz {
		b.flush()
	}
}

func (b *Broadcast) flush() {
	if len(b.batch.recs) == 0 {
		return
	}
	// Refs must cover every lane before the first send: a fast worker may
	// release its reference while later sends are still in flight.
	b.batch.refs.Store(int32(len(b.workers)))
	for i := range b.workers {
		if b.ctxDone == nil {
			b.workers[i].ch <- b.batch
		} else {
			select {
			case b.workers[i].ch <- b.batch:
			case <-b.ctxDone:
				b.fail.set(b.ctxErr())
				b.stopped = true
				// Lanes that never got the batch can't release it; the
				// partially-sent batch is abandoned to the GC.
				b.batch = nil
				return
			}
		}
	}
	b.batch = getBatch(&b.pool)
}

// Finish implements SCC: flush, close, join. When it returns every worker
// SCC has seen the full stream, been finished (crashed or cancelled lanes
// excepted), and is safe to read. Check Err for faults.
func (b *Broadcast) Finish() {
	if !b.stopped {
		b.flush()
	}
	for i := range b.workers {
		close(b.workers[i].ch)
	}
	b.done.Wait()
	if err := b.ctxErr(); err != nil {
		b.fail.set(err)
	}
}

// Err reports the stage's first fault — a *WorkerError if an SCC panicked,
// or the context's error if cancellation cut the stream short. It is nil
// after a clean run. Call after Finish for the final verdict.
func (b *Broadcast) Err() error { return b.fail.get() }

// Records reports how many records the stage has broadcast.
func (b *Broadcast) Records() uint64 { return b.records }
