package profiler

import (
	"runtime"
	"sync"
)

// This file implements the parallel fan-out stages of the profiling
// pipeline. The CDC itself is inherently sequential — the OMC is stateful
// and every translation depends on the allocations that preceded it — but
// everything downstream of translation decomposes: WHOMP's four dimension
// grammars are data-independent, and LEAP's vertically decomposed
// (instruction, group) streams only ever observe records of their own key.
// Two fan-out shapes cover both:
//
//   - Sharded partitions the record stream by key: each record goes to
//     exactly one worker, chosen by a ShardFunc. Records that share a shard
//     stay in stream order, which is all a vertical decomposition needs to
//     reproduce the sequential result exactly.
//   - Broadcast replicates the record stream: every worker sees every
//     record, in stream order. A horizontal decomposition needs the full
//     stream per dimension, so WHOMP's grammar builders use this shape.
//
// Both stages batch records before the channel send (DefaultShardBatch,
// following the async collector's design) so the per-record synchronization
// cost is amortized to a fraction of a channel operation.

// ShardFunc assigns a record to a worker shard. It must be deterministic —
// the same record always maps to the same shard — and must send every
// record of one vertically decomposed substream to the same shard, or the
// per-substream ordering guarantee is lost.
type ShardFunc func(Record, int) int

// DefaultShardBatch is the per-worker record batch size. One channel send
// per ~4096 records keeps synchronization overhead well under the cost of
// compressing the batch.
const DefaultShardBatch = 4096

// shardQueueDepth bounds the per-worker queue: the producer blocks once a
// worker is this many batches behind, bounding pipeline memory.
const shardQueueDepth = 8

// DefaultWorkers resolves a worker-count setting: values above zero are
// taken as given, anything else selects runtime.GOMAXPROCS(0).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// shardWorker is one fan-out lane: a batch being filled by the producer, a
// queue, and a goroutine draining the queue into an SCC.
type shardWorker struct {
	scc   SCC
	ch    chan []Record
	batch []Record
}

func (w *shardWorker) run(done *sync.WaitGroup, pool *sync.Pool, recycle bool) {
	defer done.Done()
	for batch := range w.ch {
		for i := range batch {
			w.scc.Consume(batch[i])
		}
		if recycle {
			b := batch[:0]
			pool.Put(&b)
		}
	}
	w.scc.Finish()
}

// Sharded is a parallel SCC stage that partitions the record stream across
// N workers by a shard function. Each worker owns one downstream SCC;
// because a worker's queue is FIFO and filled by the single producer,
// every shard observes its records in original stream order — the
// per-substream order a vertical decomposition requires. Consume must be
// called from a single goroutine (the CDC), like any SCC.
type Sharded struct {
	workers []shardWorker
	shard   ShardFunc
	batchSz int
	pool    sync.Pool
	done    sync.WaitGroup
	records uint64
}

// NewSharded starts n workers, each draining into the SCC built by newSCC
// for its shard index. shard routes records; batchSize ≤ 0 selects
// DefaultShardBatch.
func NewSharded(n, batchSize int, shard ShardFunc, newSCC func(shard int) SCC) *Sharded {
	if n < 1 {
		n = 1
	}
	if batchSize <= 0 {
		batchSize = DefaultShardBatch
	}
	s := &Sharded{
		workers: make([]shardWorker, n),
		shard:   shard,
		batchSz: batchSize,
	}
	s.pool.New = func() any {
		b := make([]Record, 0, batchSize)
		return &b
	}
	s.done.Add(n)
	for i := range s.workers {
		w := &s.workers[i]
		w.scc = newSCC(i)
		w.ch = make(chan []Record, shardQueueDepth)
		w.batch = (*s.pool.Get().(*[]Record))[:0]
		go w.run(&s.done, &s.pool, true)
	}
	return s
}

// Consume implements SCC: the record is routed to its shard's batch and the
// batch is flushed to the worker when full.
func (s *Sharded) Consume(r Record) {
	s.records++
	w := &s.workers[s.shard(r, len(s.workers))]
	w.batch = append(w.batch, r)
	if len(w.batch) == s.batchSz {
		w.ch <- w.batch
		w.batch = (*s.pool.Get().(*[]Record))[:0]
	}
}

// Finish implements SCC: it flushes every partial batch, closes the queues,
// and joins the workers. When it returns, every worker SCC has consumed its
// full substream and had its own Finish called, and is safe to read.
func (s *Sharded) Finish() {
	for i := range s.workers {
		w := &s.workers[i]
		if len(w.batch) > 0 {
			w.ch <- w.batch
			w.batch = nil
		}
		close(w.ch)
	}
	s.done.Wait()
}

// Records reports how many records the stage has routed.
func (s *Sharded) Records() uint64 { return s.records }

// NumWorkers reports the shard count.
func (s *Sharded) NumWorkers() int { return len(s.workers) }

// SCC returns shard i's downstream SCC. Only call after Finish (the worker
// goroutine owns the SCC until then).
func (s *Sharded) SCC(i int) SCC { return s.workers[i].scc }

// Broadcast is a parallel SCC stage that replicates the record stream to N
// workers: every worker's SCC consumes every record, in original stream
// order. Batches are shared read-only between the workers (and therefore
// not pooled — each flush allocates a fresh batch the GC reclaims once the
// slowest worker is done with it). Consume must be called from a single
// goroutine.
type Broadcast struct {
	workers []shardWorker
	batch   []Record
	batchSz int
	done    sync.WaitGroup
	records uint64
}

// NewBroadcast starts one worker per downstream SCC. batchSize ≤ 0 selects
// DefaultShardBatch.
func NewBroadcast(batchSize int, sccs ...SCC) *Broadcast {
	if batchSize <= 0 {
		batchSize = DefaultShardBatch
	}
	b := &Broadcast{
		workers: make([]shardWorker, len(sccs)),
		batch:   make([]Record, 0, batchSize),
		batchSz: batchSize,
	}
	b.done.Add(len(sccs))
	for i := range b.workers {
		w := &b.workers[i]
		w.scc = sccs[i]
		w.ch = make(chan []Record, shardQueueDepth)
		go w.run(&b.done, nil, false)
	}
	return b
}

// Consume implements SCC.
func (b *Broadcast) Consume(r Record) {
	b.records++
	b.batch = append(b.batch, r)
	if len(b.batch) == b.batchSz {
		b.flush()
	}
}

func (b *Broadcast) flush() {
	if len(b.batch) == 0 {
		return
	}
	for i := range b.workers {
		b.workers[i].ch <- b.batch
	}
	b.batch = make([]Record, 0, b.batchSz)
}

// Finish implements SCC: flush, close, join. When it returns every worker
// SCC has seen the full stream, been finished, and is safe to read.
func (b *Broadcast) Finish() {
	b.flush()
	for i := range b.workers {
		close(b.workers[i].ch)
	}
	b.done.Wait()
}

// Records reports how many records the stage has broadcast.
func (b *Broadcast) Records() uint64 { return b.records }
