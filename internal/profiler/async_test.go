package profiler_test

import (
	"errors"
	"strings"
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func TestAsyncPreservesOrder(t *testing.T) {
	var got trace.Buffer
	a := profiler.NewAsync(&got)
	const n = 10_000
	for i := 0; i < n; i++ {
		a.Emit(trace.Event{Kind: trace.EvAccess, Time: trace.Time(i), Instr: trace.InstrID(i % 7), Addr: trace.Addr(i)})
	}
	a.Close()
	if got.Len() != n {
		t.Fatalf("collected %d events, want %d", got.Len(), n)
	}
	for i, e := range got.Events {
		if e.Time != trace.Time(i) {
			t.Fatalf("event %d out of order: time %d", i, e.Time)
		}
	}
}

func TestAsyncIdenticalProfiles(t *testing.T) {
	// A WHOMP profile collected through the threaded pipeline must be
	// identical to one collected synchronously.
	prog := workloads.NewLinkedList(workloads.Config{Scale: 2, Seed: 4})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	sites := m.StaticSites()

	sync := whomp.New(sites)
	buf.Replay(sync)
	syncProfile := sync.Profile("ll")

	asyncP := whomp.New(sites)
	a := profiler.NewAsync(asyncP)
	buf.Replay(a)
	a.Close()
	asyncProfile := asyncP.Profile("ll")

	if syncProfile.Records != asyncProfile.Records {
		t.Fatalf("records: %d vs %d", syncProfile.Records, asyncProfile.Records)
	}
	if syncProfile.Symbols() != asyncProfile.Symbols() {
		t.Errorf("grammar sizes differ: %d vs %d", syncProfile.Symbols(), asyncProfile.Symbols())
	}
	i1, a1, err := syncProfile.ReconstructAccesses()
	if err != nil {
		t.Fatal(err)
	}
	i2, a2, err := asyncProfile.ReconstructAccesses()
	if err != nil {
		t.Fatal(err)
	}
	for i := range i1 {
		if i1[i] != i2[i] || a1[i] != a2[i] {
			t.Fatalf("reconstructed access %d differs", i)
		}
	}
}

func TestAsyncCloseIdempotent(t *testing.T) {
	a := profiler.NewAsync(trace.Discard)
	a.Emit(trace.Event{Kind: trace.EvAccess})
	if err := a.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := a.Close(); err != nil { // must not panic or deadlock
		t.Fatalf("second Close: %v", err)
	}
}

func TestAsyncEmitAfterCloseRecordsError(t *testing.T) {
	// Regression: a late Emit used to panic the producer goroutine — in a
	// live instrumented program, the very process being profiled. It must
	// instead drop the event and surface a recorded error at Close/Err.
	var got trace.Buffer
	a := profiler.NewAsync(&got)
	a.Emit(trace.Event{Kind: trace.EvAccess, Time: 1})
	if err := a.Close(); err != nil {
		t.Fatalf("clean Close: %v", err)
	}

	a.Emit(trace.Event{Kind: trace.EvAccess, Time: 2})
	a.Emit(trace.Event{Kind: trace.EvAccess, Time: 3})

	if err := a.Err(); !errors.Is(err, profiler.ErrEmitAfterClose) {
		t.Fatalf("Err = %v, want ErrEmitAfterClose", err)
	}
	err := a.Close()
	if !errors.Is(err, profiler.ErrEmitAfterClose) {
		t.Fatalf("Close = %v, want ErrEmitAfterClose", err)
	}
	if !strings.Contains(err.Error(), "2 event(s) dropped") {
		t.Errorf("Close error %q does not report the drop count", err)
	}
	if got.Len() != 1 {
		t.Errorf("collected %d events, want only the pre-Close event", got.Len())
	}
}

func BenchmarkAsyncVsSyncLEAP(b *testing.B) {
	prog, err := workloads.New("197.parser", workloads.Config{Scale: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)

	b.Run("sync", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := leap.New(nil, 0)
			buf.Replay(p)
			p.Profile("x")
		}
	})
	b.Run("async", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := leap.New(nil, 0)
			a := profiler.NewAsync(p)
			buf.Replay(a)
			a.Close()
			p.Profile("x")
		}
	})
}
