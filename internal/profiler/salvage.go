package profiler

import (
	"context"

	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// TranslateSourceSalvage is the fault-tolerant TranslateSource: the drain
// runs with cooperative cancellation and panic containment, and the
// records translated before any fault are returned alongside the typed
// error (*tracefmt.CorruptionError from a lenient reader,
// *trace.PanicError for a contained crash, ctx.Err() for cancellation).
// The OMC is returned too — its object table reflects every allocation
// seen before the fault, which is exactly what a salvaged profile needs.
func TranslateSourceSalvage(ctx context.Context, src trace.Source, siteNames map[trace.SiteID]string) ([]Record, *omc.OMC, error) {
	o := omc.New(siteNames)
	col := &Collector{}
	cdc := NewCDC(o, col)
	_, err := trace.DrainSalvage(ctx, src, cdc)
	cdc.Finish()
	return col.Records, o, err
}
