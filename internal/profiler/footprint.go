package profiler

// recordBytes approximates one collected Record (struct plus slice slot
// share).
const recordBytes = 40

// Footprint reports the collector's approximate live bytes in O(1). len
// (not cap) keeps the estimate stable across checkpoint/restore.
func (c *Collector) Footprint() int64 {
	return 64 + int64(len(c.Records))*recordBytes
}
