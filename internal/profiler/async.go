package profiler

import (
	"errors"
	"fmt"
	"sync"

	"ormprof/internal/trace"
)

// ErrEmitAfterClose reports that a producer kept emitting events after the
// collector was closed. The late events are dropped, not profiled; the
// condition is recorded and surfaced at Close/Err rather than panicking the
// producer, which in a live instrumented program would take down the very
// process being observed.
var ErrEmitAfterClose = errors.New("profiler: Emit after Close")

// Async decouples the instrumented program from the profiling pipeline the
// way the paper's implementation does (§3.1: "Interactions between the
// instrumented program and the CDC/OMC components take place via
// thread-to-thread communication", §4.2.3: "used multiple threads to
// collect and analyze data"). Probe events are batched into a buffered
// channel; a collector goroutine drains them into the downstream sink
// (typically a CDC). Close flushes and joins.
//
// Because the downstream sink runs in exactly one goroutine, it needs no
// locking, and event order is preserved — the profile is identical to a
// synchronous run (asserted in tests).
type Async struct {
	downstream trace.Sink

	batch   []trace.Event
	ch      chan []trace.Event
	done    sync.WaitGroup
	pool    sync.Pool
	closed  bool
	batchSz int
	err     error // first recorded fault (late Emit), surfaced at Close/Err
	late    int64 // events dropped after Close
}

// asyncBatchSize balances channel traffic against latency; one synchronizing
// send per 512 events keeps the probe-side overhead small.
const asyncBatchSize = 512

// asyncQueueDepth bounds memory when the collector falls behind; the probe
// side blocks once the queue is full, exactly like a bounded pipe between
// threads.
const asyncQueueDepth = 64

// NewAsync starts the collector goroutine draining into downstream.
func NewAsync(downstream trace.Sink) *Async {
	a := &Async{
		downstream: downstream,
		ch:         make(chan []trace.Event, asyncQueueDepth),
		batchSz:    asyncBatchSize,
		pool: sync.Pool{New: func() any {
			s := make([]trace.Event, 0, asyncBatchSize)
			return &s
		}},
	}
	a.batch = (*a.pool.Get().(*[]trace.Event))[:0]
	a.done.Add(1)
	go a.collect()
	return a
}

func (a *Async) collect() {
	defer a.done.Done()
	for batch := range a.ch {
		for _, e := range batch {
			a.downstream.Emit(e)
		}
		b := batch[:0]
		a.pool.Put(&b)
	}
}

// Emit implements trace.Sink. It must be called from a single producer
// goroutine (the instrumented program), matching the paper's
// one-program/one-collector structure. An Emit after Close drops the event
// and records ErrEmitAfterClose — returned by Close and Err — instead of
// panicking the producer.
func (a *Async) Emit(e trace.Event) {
	if a.closed {
		a.late++
		if a.err == nil {
			a.err = ErrEmitAfterClose
		}
		return
	}
	a.batch = append(a.batch, e)
	if len(a.batch) == a.batchSz {
		a.flush()
	}
}

func (a *Async) flush() {
	if len(a.batch) == 0 {
		return
	}
	a.ch <- a.batch
	a.batch = (*a.pool.Get().(*[]trace.Event))[:0]
}

// Close flushes outstanding events and waits for the collector to finish.
// The downstream sink is safe to read afterwards. It returns the first
// recorded fault — ErrEmitAfterClose (wrapped, with the drop count) if the
// producer emitted after an earlier Close — or nil.
func (a *Async) Close() error {
	if !a.closed {
		a.closed = true
		a.flush()
		close(a.ch)
		a.done.Wait()
	}
	return a.Err()
}

// Err reports the first recorded fault without closing.
func (a *Async) Err() error {
	if a.err != nil && a.late > 0 {
		return fmt.Errorf("%w (%d event(s) dropped)", a.err, a.late)
	}
	return a.err
}
