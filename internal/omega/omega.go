// Package omega implements the "omega-test-like" integer linear machinery
// the paper's dependence post-processor uses (§4.2.1): solving
//
//	start₁ + stride₁·k₁ = start₂ + stride₂·k₂,  0 ≤ kᵢ < countᵢ
//
// via extended-GCD linear Diophantine analysis. The package works on the
// two-variable equations that arise from pairs of LMAD dimensions; package
// depend composes one equation per dimension and counts solutions.
package omega

import "fmt"

// FloorDiv returns ⌊a/b⌋ for b ≠ 0 (division rounding toward -∞).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b ≠ 0 (division rounding toward +∞).
func CeilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// GCD returns the non-negative greatest common divisor; GCD(0,0) = 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns (g, x, y) with a·x + b·y = g = GCD(a,b) (g ≥ 0).
func ExtGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		switch {
		case a > 0:
			return a, 1, 0
		case a < 0:
			return -a, -1, 0
		default:
			return 0, 0, 0
		}
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// Kind classifies the solution set of one two-variable equation.
type Kind int

// Solution-set kinds.
const (
	None Kind = iota // no integer solutions
	All              // every (x, y) is a solution (0 = 0)
	Lin              // a one-parameter family (a lattice line)
)

// Line parametrizes a one-dimensional solution family:
// x = X0 + Dx·t, y = Y0 + Dy·t for t ∈ ℤ. (Dx, Dy) ≠ (0, 0).
type Line struct {
	X0, Y0, Dx, Dy int64
}

// At returns the point at parameter t.
func (l Line) At(t int64) (x, y int64) { return l.X0 + l.Dx*t, l.Y0 + l.Dy*t }

// String renders the family.
func (l Line) String() string {
	return fmt.Sprintf("(x,y) = (%d%+d·t, %d%+d·t)", l.X0, l.Dx, l.Y0, l.Dy)
}

// Set is the solution set of a linear Diophantine equation in two variables.
type Set struct {
	Kind Kind
	Line Line // valid when Kind == Lin
}

// Solve returns the integer solution set of a·x + b·y = c.
func Solve(a, b, c int64) Set {
	if a == 0 && b == 0 {
		if c == 0 {
			return Set{Kind: All}
		}
		return Set{Kind: None}
	}
	g, x0, y0 := ExtGCD(a, b)
	if c%g != 0 {
		return Set{Kind: None}
	}
	m := c / g
	// Particular solution (x0·m, y0·m); homogeneous solutions are
	// t·(b/g, -a/g).
	return Set{Kind: Lin, Line: Line{
		X0: x0 * m,
		Y0: y0 * m,
		Dx: b / g,
		Dy: -a / g,
	}}
}

// IntersectLine substitutes line l into a·x + b·y = c and returns the set of
// parameters t for which the constrained point also satisfies the equation:
// kind None (no t), All (every t), or Lin with the single valid t in Line.X0
// (Dx = Dy = 0 is not used; a single parameter value is returned as a
// degenerate line at t with zero direction).
func IntersectLine(l Line, a, b, c int64) (Kind, int64) {
	coeff := a*l.Dx + b*l.Dy
	rhs := c - a*l.X0 - b*l.Y0
	if coeff == 0 {
		if rhs == 0 {
			return All, 0
		}
		return None, 0
	}
	if rhs%coeff != 0 {
		return None, 0
	}
	return Lin, rhs / coeff
}

// Interval is a (possibly empty, possibly unbounded) integer interval.
type Interval struct {
	Lo, Hi         int64
	LoOpen, HiOpen bool // true means unbounded on that side
	Empty          bool
}

// AllInts is the unbounded interval.
func AllInts() Interval { return Interval{LoOpen: true, HiOpen: true} }

// EmptyInterval is the empty interval.
func EmptyInterval() Interval { return Interval{Empty: true} }

// Bounded returns the interval [lo, hi] (empty if lo > hi).
func Bounded(lo, hi int64) Interval {
	if lo > hi {
		return EmptyInterval()
	}
	return Interval{Lo: lo, Hi: hi}
}

// AtLeast returns [lo, +∞).
func AtLeast(lo int64) Interval { return Interval{Lo: lo, HiOpen: true} }

// AtMost returns (-∞, hi].
func AtMost(hi int64) Interval { return Interval{Hi: hi, LoOpen: true} }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	if iv.Empty || other.Empty {
		return EmptyInterval()
	}
	out := Interval{LoOpen: iv.LoOpen && other.LoOpen, HiOpen: iv.HiOpen && other.HiOpen}
	switch {
	case iv.LoOpen:
		out.Lo = other.Lo
	case other.LoOpen:
		out.Lo = iv.Lo
	default:
		out.Lo = max64(iv.Lo, other.Lo)
	}
	switch {
	case iv.HiOpen:
		out.Hi = other.Hi
	case other.HiOpen:
		out.Hi = iv.Hi
	default:
		out.Hi = min64(iv.Hi, other.Hi)
	}
	if !out.LoOpen && !out.HiOpen && out.Lo > out.Hi {
		return EmptyInterval()
	}
	return out
}

// Count returns the number of integers in the interval; ok is false when the
// interval is unbounded.
func (iv Interval) Count() (n uint64, ok bool) {
	if iv.Empty {
		return 0, true
	}
	if iv.LoOpen || iv.HiOpen {
		return 0, false
	}
	return uint64(iv.Hi-iv.Lo) + 1, true
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int64) bool {
	if iv.Empty {
		return false
	}
	if !iv.LoOpen && t < iv.Lo {
		return false
	}
	if !iv.HiOpen && t > iv.Hi {
		return false
	}
	return true
}

// LinearGE returns the t-interval on which a·t + b ≥ 0.
func LinearGE(a, b int64) Interval {
	switch {
	case a == 0:
		if b >= 0 {
			return AllInts()
		}
		return EmptyInterval()
	case a > 0:
		return AtLeast(CeilDiv(-b, a))
	default:
		// a < 0: a·t ≥ -b  ⇔  t ≤ b/(-a)
		return AtMost(FloorDiv(b, -a))
	}
}

// LinearLT returns the t-interval on which a·t + b < 0.
func LinearLT(a, b int64) Interval {
	switch {
	case a == 0:
		if b < 0 {
			return AllInts()
		}
		return EmptyInterval()
	case a > 0:
		// t < -b/a  ⇔  t ≤ ceil(-b/a) - 1 when exact, floor otherwise
		return AtMost(ceilMinusOne(-b, a))
	default:
		// a < 0: t > -b/a  ⇔  t ≥ floor(-b/a) + 1 when exact, ceil otherwise
		return AtLeast(floorPlusOne(-b, a))
	}
}

// ceilMinusOne returns the largest integer t with t < p/q for q > 0.
func ceilMinusOne(p, q int64) int64 {
	f := FloorDiv(p, q)
	if p%q == 0 {
		return f - 1
	}
	return f
}

// floorPlusOne returns the smallest integer t with t > p/q for q < 0 (i.e.
// t·q < p flips). It computes the smallest t with t > p/q.
func floorPlusOne(p, q int64) int64 {
	// p/q with q < 0 equals (-p)/(-q) with positive denominator.
	return FloorDiv(-p, -q) + 1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
