package omega

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 1, 1, 1},
		{-1, 1, -1, -1},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestExtGCD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := int64(rng.Intn(201) - 100)
		b := int64(rng.Intn(201) - 100)
		g, x, y := ExtGCD(a, b)
		if g != GCD(a, b) {
			t.Fatalf("ExtGCD(%d,%d) g=%d, GCD=%d", a, b, g, GCD(a, b))
		}
		if a*x+b*y != g {
			t.Fatalf("ExtGCD(%d,%d) = (%d,%d,%d): %d·%d + %d·%d != %d", a, b, g, x, y, a, x, b, y, g)
		}
	}
}

// bruteSolutions enumerates solutions of a·x + b·y = c over a box.
func bruteSolutions(a, b, c, lox, hix, loy, hiy int64) map[[2]int64]bool {
	out := make(map[[2]int64]bool)
	for x := lox; x <= hix; x++ {
		for y := loy; y <= hiy; y++ {
			if a*x+b*y == c {
				out[[2]int64{x, y}] = true
			}
		}
	}
	return out
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const lo, hi = -12, 12
	for i := 0; i < 3000; i++ {
		a := int64(rng.Intn(11) - 5)
		b := int64(rng.Intn(11) - 5)
		c := int64(rng.Intn(21) - 10)
		want := bruteSolutions(a, b, c, lo, hi, lo, hi)
		set := Solve(a, b, c)
		got := make(map[[2]int64]bool)
		switch set.Kind {
		case None:
		case All:
			for x := int64(lo); x <= hi; x++ {
				for y := int64(lo); y <= hi; y++ {
					got[[2]int64{x, y}] = true
				}
			}
		case Lin:
			// The line must cover the box within a bounded parameter
			// sweep: |t| ≤ large enough to leave the box.
			for tpar := int64(-2000); tpar <= 2000; tpar++ {
				x, y := set.Line.At(tpar)
				if x >= lo && x <= hi && y >= lo && y <= hi {
					got[[2]int64{x, y}] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Solve(%d,%d,%d): got %d box solutions, want %d", a, b, c, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("Solve(%d,%d,%d): missing solution %v", a, b, c, k)
			}
		}
	}
}

func TestIntersectLineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		l := Line{
			X0: int64(rng.Intn(21) - 10),
			Y0: int64(rng.Intn(21) - 10),
			Dx: int64(rng.Intn(7) - 3),
			Dy: int64(rng.Intn(7) - 3),
		}
		a := int64(rng.Intn(7) - 3)
		b := int64(rng.Intn(7) - 3)
		c := int64(rng.Intn(21) - 10)

		want := make(map[int64]bool)
		for tpar := int64(-50); tpar <= 50; tpar++ {
			x, y := l.At(tpar)
			if a*x+b*y == c {
				want[tpar] = true
			}
		}
		kind, tval := IntersectLine(l, a, b, c)
		switch kind {
		case None:
			if len(want) != 0 {
				t.Fatalf("IntersectLine(%v, %d,%d,%d) = None, brute force found %d", l, a, b, c, len(want))
			}
		case All:
			if len(want) != 101 {
				t.Fatalf("IntersectLine(%v, %d,%d,%d) = All, brute force found %d/101", l, a, b, c, len(want))
			}
		case Lin:
			// Exactly one t satisfies the equation; it may lie outside
			// the brute-force sweep.
			x, y := l.At(tval)
			if a*x+b*y != c {
				t.Fatalf("IntersectLine(%v, %d,%d,%d) = t=%d does not satisfy the equation", l, a, b, c, tval)
			}
			for tp := range want {
				if tp != tval {
					t.Fatalf("IntersectLine(%v, %d,%d,%d) = t=%d, but t=%d also satisfies", l, a, b, c, tval, tp)
				}
			}
		}
	}
}

func TestIntervalOps(t *testing.T) {
	iv := Bounded(3, 7).Intersect(Bounded(5, 10))
	if n, _ := iv.Count(); n != 3 {
		t.Errorf("[3,7] ∩ [5,10] has %d ints, want 3", n)
	}
	if !Bounded(3, 7).Intersect(AtLeast(6)).Contains(7) {
		t.Error("[3,7] ∩ [6,∞) should contain 7")
	}
	if got := Bounded(3, 7).Intersect(Bounded(8, 9)); !got.Empty {
		t.Error("[3,7] ∩ [8,9] should be empty")
	}
	if got := AllInts().Intersect(Bounded(1, 2)); got.LoOpen || got.HiOpen {
		t.Error("ℤ ∩ [1,2] should be bounded")
	}
	if _, ok := AtLeast(0).Count(); ok {
		t.Error("Count of unbounded interval should report !ok")
	}
	if n, ok := EmptyInterval().Count(); !ok || n != 0 {
		t.Error("Count of empty interval should be 0")
	}
}

func TestLinearInequalitiesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		a := int64(rng.Intn(9) - 4)
		b := int64(rng.Intn(41) - 20)
		ge := LinearGE(a, b)
		lt := LinearLT(a, b)
		for tpar := int64(-30); tpar <= 30; tpar++ {
			v := a*tpar + b
			if ge.Contains(tpar) != (v >= 0) {
				t.Fatalf("LinearGE(%d,%d).Contains(%d) = %v, want %v", a, b, tpar, ge.Contains(tpar), v >= 0)
			}
			if lt.Contains(tpar) != (v < 0) {
				t.Fatalf("LinearLT(%d,%d).Contains(%d) = %v, want %v", a, b, tpar, lt.Contains(tpar), v < 0)
			}
		}
	}
}

func TestQuickFloorDivIdentity(t *testing.T) {
	f := func(a int64, b int64) bool {
		if b == 0 {
			return true
		}
		// Clamp to avoid overflow in the check.
		a %= 1 << 40
		b %= 1 << 20
		if b == 0 {
			b = 1
		}
		q := FloorDiv(a, b)
		r := a - q*b
		if b > 0 {
			return r >= 0 && r < b
		}
		return r <= 0 && r > b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
