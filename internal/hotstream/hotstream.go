// Package hotstream extracts hot data streams — frequently repeated
// subsequences — from a Sequitur grammar, in the style of Chilimbi and
// Hirzel's dynamic hot data stream prefetching, which §3.2 names as a
// consumer of the OMSG ("information about repeating memory access
// patterns, which is useful for … hot data stream prefetching").
//
// Sequitur makes this cheap: every grammar rule *is* a repeated
// subsequence. A rule's frequency is how many times its expansion occurs in
// the original input (the number of times it is reached from the start
// rule), its length is the size of its expansion, and its heat is
// frequency × length — the number of input symbols the rule covers.
package hotstream

import (
	"sort"

	"ormprof/internal/sequitur"
)

// Stream is one hot data stream: a repeated subsequence of the compressed
// input.
type Stream struct {
	RuleID  uint32
	Symbols []uint64 // the expanded subsequence
	Freq    uint64   // occurrences in the input
	Heat    uint64   // Freq × len(Symbols): input symbols covered
}

// Options bound the extraction.
type Options struct {
	// MinLength drops trivial streams (default 2).
	MinLength int
	// MinFreq drops rare streams (default 2).
	MinFreq uint64
	// MaxStreams caps the result, hottest first (default 16).
	MaxStreams int
	// KeepNested keeps rules whose occurrences all sit inside hotter
	// reported rules; by default such rules are skipped so the report
	// lists maximal streams.
	KeepNested bool
}

func (o Options) normalized() Options {
	if o.MinLength <= 0 {
		o.MinLength = 2
	}
	if o.MinFreq == 0 {
		o.MinFreq = 2
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 16
	}
	return o
}

// Extract returns the grammar's hot data streams, hottest first.
func Extract(g *sequitur.Grammar, opt Options) []Stream {
	opt = opt.normalized()
	ids := g.RuleIDs()
	if len(ids) == 0 {
		return nil
	}

	bodies := make(map[uint32][]sequitur.Sym, len(ids))
	for _, id := range ids {
		body, ok := g.RuleBody(id)
		if !ok {
			continue
		}
		bodies[id] = body
	}

	freq := frequencies(ids, bodies)
	lengths := make(map[uint32]uint64, len(ids))
	expansions := make(map[uint32][]uint64, len(ids))

	var expand func(id uint32) []uint64
	expand = func(id uint32) []uint64 {
		if e, ok := expansions[id]; ok {
			return e
		}
		var out []uint64
		for _, s := range bodies[id] {
			if s.IsRule {
				out = append(out, expand(uint32(s.Value))...)
			} else {
				out = append(out, s.Value)
			}
		}
		expansions[id] = out
		lengths[id] = uint64(len(out))
		return out
	}

	var streams []Stream
	for _, id := range ids {
		if id == 0 {
			continue // the start rule is the whole input, not a repeat
		}
		f := freq[id]
		e := expand(id)
		if len(e) < opt.MinLength || f < opt.MinFreq {
			continue
		}
		streams = append(streams, Stream{
			RuleID:  id,
			Symbols: e,
			Freq:    f,
			Heat:    f * uint64(len(e)),
		})
	}
	sort.Slice(streams, func(i, j int) bool {
		if streams[i].Heat != streams[j].Heat {
			return streams[i].Heat > streams[j].Heat
		}
		return streams[i].RuleID < streams[j].RuleID
	})

	if !opt.KeepNested {
		streams = dropNested(streams, bodies, freq)
	}
	if len(streams) > opt.MaxStreams {
		streams = streams[:opt.MaxStreams]
	}
	return streams
}

// frequencies computes how many times each rule's expansion occurs in the
// input: the start rule occurs once, and each occurrence of a parent
// contributes its per-body occurrence count to every child.
func frequencies(ids []uint32, bodies map[uint32][]sequitur.Sym) map[uint32]uint64 {
	freq := make(map[uint32]uint64, len(ids))
	freq[0] = 1
	// Children always have higher IDs than the rule that first created
	// them is not guaranteed after rule-utility inlining, so process in
	// topological order computed by DFS.
	order := topoOrder(ids, bodies)
	for _, id := range order {
		f := freq[id]
		if f == 0 {
			continue // unreachable rule (should not happen)
		}
		for _, s := range bodies[id] {
			if s.IsRule {
				freq[uint32(s.Value)] += f
			}
		}
	}
	return freq
}

// topoOrder returns rule IDs parents-before-children.
func topoOrder(ids []uint32, bodies map[uint32][]sequitur.Sym) []uint32 {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[uint32]uint8, len(ids))
	var order []uint32 // reverse post-order gives parents-first
	var post []uint32
	var visit func(id uint32)
	visit = func(id uint32) {
		if state[id] != unvisited {
			return
		}
		state[id] = inStack
		for _, s := range bodies[id] {
			if s.IsRule {
				visit(uint32(s.Value))
			}
		}
		state[id] = done
		post = append(post, id)
	}
	visit(0)
	for _, id := range ids {
		visit(id)
	}
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	return order
}

// dropNested removes streams all of whose occurrences are inside an
// already-kept (hotter) stream's rule, keeping the maximal repeats.
func dropNested(streams []Stream, bodies map[uint32][]sequitur.Sym, freq map[uint32]uint64) []Stream {
	kept := make(map[uint32]bool)
	// usesInKept counts, per rule, the occurrences contributed by kept
	// rules' bodies (weighted by the kept rules' own frequencies).
	out := streams[:0]
	for _, s := range streams {
		inside := uint64(0)
		for parent := range kept {
			occ := uint64(0)
			for _, sym := range bodies[parent] {
				if sym.IsRule && uint32(sym.Value) == s.RuleID {
					occ++
				}
			}
			inside += occ * freq[parent]
		}
		if inside >= s.Freq {
			continue // every occurrence is inside a hotter kept stream
		}
		kept[s.RuleID] = true
		out = append(out, s)
	}
	return out
}

// Coverage reports the fraction of the grammar's input covered by the given
// streams (heat sum over input length); streams may overlap, so the value
// is an upper bound and is clamped to 1.
func Coverage(g *sequitur.Grammar, streams []Stream) float64 {
	in := g.InputLen()
	if in == 0 {
		return 0
	}
	var heat uint64
	for _, s := range streams {
		heat += s.Heat
	}
	c := float64(heat) / float64(in)
	if c > 1 {
		c = 1
	}
	return c
}
