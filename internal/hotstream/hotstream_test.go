package hotstream

import (
	"reflect"
	"testing"

	"ormprof/internal/sequitur"
)

func fromString(s string) []uint64 {
	out := make([]uint64, len(s))
	for i := range s {
		out[i] = uint64(s[i])
	}
	return out
}

func build(s string) *sequitur.Grammar {
	g := sequitur.New()
	g.AppendAll(fromString(s))
	return g
}

func TestPaperGrammarStreams(t *testing.T) {
	// "abcbcabcbc" → S → AA; A → aBB; B → bc.
	// A covers "abcbc" twice (heat 10); B covers "bc" 4 times (heat 8) but
	// every occurrence of B is inside A, so the maximal report is just A.
	g := build("abcbcabcbc")
	streams := Extract(g, Options{})
	if len(streams) != 1 {
		t.Fatalf("got %d streams: %+v", len(streams), streams)
	}
	a := streams[0]
	if !reflect.DeepEqual(a.Symbols, fromString("abcbc")) {
		t.Errorf("symbols = %v", a.Symbols)
	}
	if a.Freq != 2 || a.Heat != 10 {
		t.Errorf("freq = %d, heat = %d", a.Freq, a.Heat)
	}
	if c := Coverage(g, streams); c != 1.0 {
		t.Errorf("coverage = %v, want 1.0", c)
	}
}

func TestKeepNested(t *testing.T) {
	g := build("abcbcabcbc")
	streams := Extract(g, Options{KeepNested: true})
	if len(streams) != 2 {
		t.Fatalf("got %d streams with KeepNested: %+v", len(streams), streams)
	}
	// Hottest first: A (10) before B (8).
	if streams[0].Heat < streams[1].Heat {
		t.Error("streams not sorted by heat")
	}
	if !reflect.DeepEqual(streams[1].Symbols, fromString("bc")) {
		t.Errorf("nested stream = %v", streams[1].Symbols)
	}
	if streams[1].Freq != 4 {
		t.Errorf("nested freq = %d, want 4", streams[1].Freq)
	}
}

func TestThresholds(t *testing.T) {
	g := build("abcbcabcbc")
	if got := Extract(g, Options{MinLength: 6}); len(got) != 0 {
		t.Errorf("MinLength filter failed: %+v", got)
	}
	// MinFreq 3 drops A (freq 2); B (freq 4) is then no longer nested
	// inside a kept stream and surfaces on its own.
	if got := Extract(g, Options{MinFreq: 3}); len(got) != 1 || got[0].Freq != 4 {
		t.Errorf("MinFreq 3: %+v", got)
	}
	if got := Extract(g, Options{MinFreq: 5}); len(got) != 0 {
		t.Errorf("MinFreq 5 should drop everything: %+v", got)
	}
	if got := Extract(g, Options{KeepNested: true, MaxStreams: 1}); len(got) != 1 {
		t.Errorf("MaxStreams cap failed: %+v", got)
	}
}

func TestLoopTrace(t *testing.T) {
	// A hot loop body repeated 50 times with a cold prologue: the loop
	// body must surface as the dominant stream.
	var in []uint64
	in = append(in, 90, 91, 92, 93, 94) // prologue, never repeats
	body := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 50; i++ {
		in = append(in, body...)
	}
	g := sequitur.New()
	g.AppendAll(in)

	streams := Extract(g, Options{MaxStreams: 3})
	if len(streams) == 0 {
		t.Fatal("no streams found")
	}
	top := streams[0]
	// The top stream must be (a power-of-two grouping of) the loop body:
	// its expansion is body repeated k times for some k ≥ 1.
	if len(top.Symbols)%len(body) != 0 {
		t.Fatalf("top stream length %d not a multiple of body length", len(top.Symbols))
	}
	for i, v := range top.Symbols {
		if v != body[i%len(body)] {
			t.Fatalf("top stream diverges from loop body at %d: %v", i, top.Symbols)
		}
	}
	if top.Heat < 200 {
		t.Errorf("top stream heat = %d, want most of the 400 loop symbols", top.Heat)
	}
	// Coverage of the top streams should be high (the prologue is 5 of 405).
	if c := Coverage(g, streams); c < 0.5 {
		t.Errorf("coverage = %v", c)
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	g := sequitur.New()
	if got := Extract(g, Options{}); len(got) != 0 {
		t.Errorf("empty grammar: %+v", got)
	}
	if Coverage(g, nil) != 0 {
		t.Error("coverage of empty grammar should be 0")
	}
	g.AppendAll(fromString("abcdef")) // no repeats: no rules
	if got := Extract(g, Options{}); len(got) != 0 {
		t.Errorf("repeat-free input: %+v", got)
	}
}

func TestFrequencyPropagation(t *testing.T) {
	// "xyxy xyxy xyxy xyxy" (without spaces): deep nesting — freq of the
	// innermost "xy" rule must equal its true occurrence count (8).
	g := build("xyxyxyxyxyxyxyxy")
	streams := Extract(g, Options{KeepNested: true, MaxStreams: 10, MinFreq: 2})
	var found bool
	for _, s := range streams {
		if reflect.DeepEqual(s.Symbols, fromString("xy")) {
			found = true
			if s.Freq != 8 {
				t.Errorf("freq(xy) = %d, want 8", s.Freq)
			}
		}
	}
	if !found {
		t.Errorf("xy stream not reported: %+v", streams)
	}
}
