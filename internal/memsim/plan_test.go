package memsim

import (
	"reflect"
	"testing"

	"ormprof/internal/plan"
	"ormprof/internal/trace"
)

// planProg is a small scripted workload: three allocations at two sites,
// field accesses at fixed offsets, one free, one access to an unplanned
// object and one wild access.
type planProg struct{}

func (planProg) Name() string { return "planprog" }

func (planProg) Run(m *Machine) {
	a := m.Alloc(3, 32) // site 3, serial 0: planned
	b := m.Alloc(3, 32) // site 3, serial 1: unplanned
	c := m.Alloc(7, 16) // site 7, serial 0: planned
	m.Load(1, a, 8)     // slot 0
	m.Load(1, a+8, 8)   // slot 1
	m.Store(2, c+8, 8)
	m.Load(1, b, 8)
	m.Load(4, trace.Addr(0x1234), 4) // hits no live object
	m.Free(b)
	m.Free(a)
	m.Free(c)
}

func testPlan() *plan.Plan {
	return &plan.Plan{
		Workload: "planprog",
		Region:   0x7000_0000_0000,
		Fields: []plan.FieldOrder{
			// Site 3: swap the first two slots, keep the rest.
			{Site: 3, RecordSize: 32, NewOffset: []uint32{8, 0, 16, 24}},
		},
		Placements: []plan.ObjectPlacement{
			{Site: 3, Serial: 0, Size: 32, Addr: 0x7000_0000_0000},
			{Site: 7, Serial: 0, Size: 16, Addr: 0x7000_0000_0020},
		},
	}
}

// runPlanned executes planProg under the plan on top of the given base
// policy and returns the emitted events.
func runPlanned(t *testing.T, base Allocator) []trace.Event {
	t.Helper()
	p := testPlan()
	var got []trace.Event
	sink := trace.SinkFunc(func(e trace.Event) { got = append(got, e) })
	Run(planProg{}, sink,
		WithAllocator(NewPlanAllocator(base, p.Placer())),
		WithRemap(p.FieldRemapper()))
	return got
}

// accessesTo filters the access events landing inside [base, base+n).
func accessesTo(events []trace.Event, base trace.Addr, n uint64) []trace.Event {
	var out []trace.Event
	for _, e := range events {
		if e.Kind == trace.EvAccess && e.Addr >= base && e.Addr < base+trace.Addr(n) {
			out = append(out, e)
		}
	}
	return out
}

// TestPlanApplicationDeterministic proves the core plan property: the
// addresses of plan-placed objects and the remapped field accesses are
// identical under all three base allocator policies, and repeated runs under
// the same policy emit identical event streams.
func TestPlanApplicationDeterministic(t *testing.T) {
	region := trace.Addr(0x7000_0000_0000)
	var planned [][]trace.Event
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			first := runPlanned(t, Policies(5)[name])
			again := runPlanned(t, Policies(5)[name])
			if !reflect.DeepEqual(first, again) {
				t.Fatal("two runs under the same base policy differ")
			}
			// The planned objects' accesses are fully determined by the plan.
			pa := accessesTo(first, region, 0x40)
			want := []struct {
				addr trace.Addr
				size uint32
			}{
				// a's slot 0 moved to offset 8, slot 1 to 0 (field swap).
				{region + 8, 8},
				{region + 0, 8},
				// c at region+0x20, no field order for site 7.
				{region + 0x20 + 8, 8},
			}
			if len(pa) != len(want) {
				t.Fatalf("%d planned accesses, want %d", len(pa), len(want))
			}
			for i, w := range want {
				if pa[i].Addr != w.addr || pa[i].Size != w.size {
					t.Errorf("planned access %d = %#x/%d, want %#x/%d",
						i, uint64(pa[i].Addr), pa[i].Size, uint64(w.addr), w.size)
				}
			}
			planned = append(planned, pa)
		})
	}
	for i := 1; i < len(planned); i++ {
		if !reflect.DeepEqual(planned[i], planned[0]) {
			t.Error("planned-object accesses differ across base policies")
		}
	}
}

// TestPlanAllocatorFallback proves unplanned allocations go to the base
// policy untouched and plan-placed blocks never enter the base free lists.
func TestPlanAllocatorFallback(t *testing.T) {
	p := testPlan()
	base := NewFreeListAllocator()
	pa := NewPlanAllocator(base, p.Placer())

	a := pa.Alloc(3, 32) // planned
	if a != 0x7000_0000_0000 {
		t.Fatalf("planned alloc at %#x", uint64(a))
	}
	b := pa.Alloc(3, 32) // serial 1: unplanned, base policy
	if b < HeapBase || b >= 0x7000_0000_0000 {
		t.Fatalf("unplanned alloc at %#x, want base-policy heap", uint64(b))
	}
	// Freeing the planned block must not feed the base free list.
	pa.Free(a, 32)
	c := pa.Alloc(9, 32) // unplanned site
	if c == a {
		t.Fatal("base policy reused a plan-region address")
	}
	// Size mismatch: placement declined, base policy serves it.
	pa2 := NewPlanAllocator(NewBumpAllocator(), p.Placer())
	if got := pa2.Alloc(7, 64); got >= 0x7000_0000_0000 {
		t.Errorf("stale placement applied despite size mismatch: %#x", uint64(got))
	}
	placed, total := pa.Placed()
	if placed != 1 || total != 3 {
		t.Errorf("Placed() = %d/%d, want 1/3", placed, total)
	}
	if pa.PolicyName() != "freelist+plan" {
		t.Errorf("PolicyName = %q", pa.PolicyName())
	}
}

// TestRemapUntouchedPaths proves accesses outside live objects and accesses
// straddling a slot pass through the remapper unchanged.
func TestRemapUntouchedPaths(t *testing.T) {
	p := testPlan()
	var got []trace.Event
	sink := trace.SinkFunc(func(e trace.Event) { got = append(got, e) })
	m := New(sink, WithAllocator(NewPlanAllocator(NewBumpAllocator(), p.Placer())), WithRemap(p.FieldRemapper()))
	m.Start()
	a := m.Alloc(3, 32)
	m.Load(1, trace.Addr(0x99), 4) // no live object: unchanged
	m.Load(1, a+4, 8)              // straddles slots 0 and 1: unchanged
	m.Free(a)
	m.Load(1, a+8, 8) // object freed: unchanged
	m.End()
	var acc []trace.Event
	for _, e := range got {
		if e.Kind == trace.EvAccess {
			acc = append(acc, e)
		}
	}
	if acc[0].Addr != 0x99 {
		t.Errorf("wild access moved to %#x", uint64(acc[0].Addr))
	}
	if acc[1].Addr != a+4 {
		t.Errorf("straddling access moved to %#x", uint64(acc[1].Addr))
	}
	if acc[2].Addr != a+8 {
		t.Errorf("access to freed object moved to %#x", uint64(acc[2].Addr))
	}
}
