package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ormprof/internal/trace"
)

// checkNoOverlap drives an allocator through a random alloc/free workload
// and verifies no two live blocks ever overlap and all blocks are aligned.
func checkNoOverlap(t *testing.T, a Allocator, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type block struct {
		addr trace.Addr
		size uint32
	}
	var live []block
	for op := 0; op < 3000; op++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			a.Free(live[i].addr, live[i].size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint32(1 + rng.Intn(200))
		addr := a.Alloc(1, size)
		if addr < HeapBase {
			t.Fatalf("%s: alloc below HeapBase", a.PolicyName())
		}
		if addr%blockAlign != 0 {
			t.Fatalf("%s: unaligned block %#x", a.PolicyName(), uint64(addr))
		}
		for _, b := range live {
			if addr < b.addr+trace.Addr(alignUp(b.size)) && b.addr < addr+trace.Addr(alignUp(size)) {
				t.Fatalf("%s: block [%#x,%d) overlaps live [%#x,%d)",
					a.PolicyName(), uint64(addr), size, uint64(b.addr), b.size)
			}
		}
		live = append(live, block{addr, size})
	}
}

func TestAllocatorsNoOverlap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		checkNoOverlap(t, NewBumpAllocator(), seed)
		checkNoOverlap(t, NewFreeListAllocator(), seed)
		checkNoOverlap(t, NewRandomizedAllocator(seed), seed)
	}
}

func TestBumpNeverReuses(t *testing.T) {
	b := NewBumpAllocator()
	a1 := b.Alloc(1, 32)
	b.Free(a1, 32)
	a2 := b.Alloc(1, 32)
	if a1 == a2 {
		t.Error("bump allocator reused an address")
	}
}

func TestFreeListReuses(t *testing.T) {
	f := NewFreeListAllocator()
	a1 := f.Alloc(1, 40)
	f.Free(a1, 40)
	a2 := f.Alloc(1, 40) // same size class: must reuse
	if a1 != a2 {
		t.Errorf("free list did not reuse: %#x then %#x", uint64(a1), uint64(a2))
	}
	if f.ReuseRate() != 0.5 {
		t.Errorf("ReuseRate = %v, want 0.5", f.ReuseRate())
	}
	// Different size class: no reuse.
	a3 := f.Alloc(1, 100)
	if a3 == a1 {
		t.Error("free list reused across size classes")
	}
}

func TestFreeListLIFO(t *testing.T) {
	f := NewFreeListAllocator()
	a1 := f.Alloc(1, 16)
	a2 := f.Alloc(1, 16)
	f.Free(a1, 16)
	f.Free(a2, 16)
	if got := f.Alloc(1, 16); got != a2 {
		t.Errorf("expected LIFO reuse of %#x, got %#x", uint64(a2), uint64(got))
	}
}

func TestRandomizedDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []trace.Addr {
		r := NewRandomizedAllocator(seed)
		var out []trace.Addr
		for i := 0; i < 50; i++ {
			out = append(out, r.Alloc(1, 32))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("randomized allocator not deterministic for equal seeds")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("randomized allocator identical across different seeds")
	}
}

func TestPoliciesRegistry(t *testing.T) {
	ps := Policies(1)
	if len(ps) != 3 {
		t.Fatalf("Policies returned %d entries", len(ps))
	}
	for name, p := range ps {
		if p.PolicyName() != name {
			t.Errorf("policy %q reports name %q", name, p.PolicyName())
		}
	}
	names := PolicyNames()
	if len(names) != 3 {
		t.Errorf("PolicyNames = %v", names)
	}
}

func TestQuickAlignUp(t *testing.T) {
	f := func(n uint32) bool {
		n %= 1 << 24
		a := alignUp(n)
		return a >= n && a%blockAlign == 0 && a-n < blockAlign
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
