// Package memsim provides the simulated machine that stands in for the
// paper's instrumented IA-64 binaries.
//
// A Machine owns a 64-bit virtual address space split into a static segment
// and a heap segment. Workload programs (package workloads) execute against
// the Machine API: DefineStatic registers statically allocated objects,
// Alloc/Free go through a pluggable heap allocator, and Load/Store issue
// memory accesses. Every one of those calls emits exactly the probe event the
// paper's assembly-level instrumentation would (instruction probes next to
// every load/store, object probes at allocation/deallocation points and at
// program start/end for statics), so the profiling stack above never needs to
// know the accesses are simulated.
//
// The allocator policies reproduce the "confounding artifacts" of §1 of the
// paper: address reuse (false aliasing), irregular placement, and
// run-to-run layout variation.
package memsim

import (
	"fmt"
	"sort"

	"ormprof/internal/soabtree"
	"ormprof/internal/trace"
)

// Segment layout of the simulated address space. The bases are arbitrary but
// non-zero so that address 0 never denotes a valid object.
const (
	StaticBase trace.Addr = 0x0000_0000_0060_0000 // static data segment
	HeapBase   trace.Addr = 0x0000_0000_4000_0000 // heap segment
)

// Program is a synthetic workload that runs against a Machine. Run must be
// deterministic given the machine's seed: all randomness must come from the
// machine's RNG or from seeds derived from it.
type Program interface {
	// Name is a short identifier (used in reports and as a map key).
	Name() string
	// Run executes the workload to completion against m.
	Run(m *Machine)
}

// staticObj records one statically allocated object.
type staticObj struct {
	name string
	site trace.SiteID
	addr trace.Addr
	size uint32
}

// Machine is the simulated processor + memory system. It is not safe for
// concurrent use; workloads are single-threaded, as in the paper.
type Machine struct {
	sink  trace.Sink
	alloc Allocator
	clock trace.Time

	statics     []staticObj
	staticNames map[string]trace.Addr
	staticTop   trace.Addr

	live map[trace.Addr]uint32 // live heap objects: start -> size

	// Access-time field remapping (WithRemap): the index tracks live
	// objects (start -> site/size) so accesses can be translated to the
	// optimized record layout. Nil remap leaves the index unused.
	remap    OffsetRemapper
	objIndex soabtree.Map

	// counters for dilation and sanity metrics
	nLoads, nStores, nAllocs, nFrees uint64

	started bool
	ended   bool
}

// Option configures a Machine.
type Option func(*Machine)

// WithAllocator selects the heap allocator policy. The default is the
// free-list allocator with address reuse (the realistic one).
func WithAllocator(a Allocator) Option {
	return func(m *Machine) { m.alloc = a }
}

// New creates a Machine whose probes emit into sink. A nil sink discards all
// events (useful to measure native, uninstrumented workload cost).
func New(sink trace.Sink, opts ...Option) *Machine {
	if sink == nil {
		sink = trace.Discard
	}
	m := &Machine{
		sink:        sink,
		staticNames: make(map[string]trace.Addr),
		staticTop:   StaticBase,
		live:        make(map[trace.Addr]uint32),
	}
	for _, o := range opts {
		o(m)
	}
	if m.alloc == nil {
		m.alloc = NewFreeListAllocator()
	}
	return m
}

// Clock returns the current logical time (number of accesses collected).
func (m *Machine) Clock() trace.Time { return m.clock }

// Counters reports executed loads, stores, allocations, and frees.
func (m *Machine) Counters() (loads, stores, allocs, frees uint64) {
	return m.nLoads, m.nStores, m.nAllocs, m.nFrees
}

// DefineStatic registers a statically allocated object (a global variable in
// the profiled program). All statics must be defined before Start. Each
// static object gets its own allocation site, mirroring WHOMP's use of the
// gcc symbol table to size and group statics (§3.1). The site ID is
// 1<<24 + index so static sites never collide with heap sites.
func (m *Machine) DefineStatic(name string, size uint32) trace.Addr {
	if m.started {
		panic("memsim: DefineStatic after Start")
	}
	if size == 0 {
		panic("memsim: zero-size static " + name)
	}
	if _, dup := m.staticNames[name]; dup {
		panic("memsim: duplicate static " + name)
	}
	addr := m.staticTop
	// Align the next static to 16 bytes, like a linker would.
	m.staticTop += trace.Addr((size + 15) &^ 15)
	site := trace.SiteID(1<<24 + len(m.statics))
	m.statics = append(m.statics, staticObj{name: name, site: site, addr: addr, size: size})
	m.staticNames[name] = addr
	return addr
}

// StaticAddr returns the address of a previously defined static object.
func (m *Machine) StaticAddr(name string) trace.Addr {
	a, ok := m.staticNames[name]
	if !ok {
		panic("memsim: unknown static " + name)
	}
	return a
}

// StaticSites returns (site, name) pairs for every defined static object, in
// definition order. The OMC can use this to attach symbolic names to groups.
func (m *Machine) StaticSites() map[trace.SiteID]string {
	out := make(map[trace.SiteID]string, len(m.statics))
	for _, s := range m.statics {
		out[s.site] = s.name
	}
	return out
}

// Start emits the alloc probes for all static objects, modeling the paper's
// "probes ... at the beginning ... of the program for all statically
// allocated objects". It must be called exactly once before any access.
//
// Before the first probe fires, Start announces every static site's
// symbolic name to the sink if it implements trace.SiteNamer — this is how
// a trace writer (tracefmt.Writer) riding on the probe stream captures the
// site table, so a replayed trace reconstructs the same group names as the
// live run.
func (m *Machine) Start() {
	if m.started {
		panic("memsim: Start called twice")
	}
	m.started = true
	if namer, ok := m.sink.(trace.SiteNamer); ok {
		for _, s := range m.statics {
			namer.NameSite(s.site, s.name)
		}
	}
	for _, s := range m.statics {
		if m.remap != nil {
			m.indexObject(s.addr, s.site, s.size)
		}
		m.sink.Emit(trace.Event{Kind: trace.EvAlloc, Time: m.clock, Site: s.site, Addr: s.addr, Size: s.size})
	}
}

// End emits free probes for all static objects (the "end of the program"
// object probes) and for any leaked heap objects. It must be called exactly
// once, after the workload finishes.
func (m *Machine) End() {
	if !m.started {
		panic("memsim: End before Start")
	}
	if m.ended {
		panic("memsim: End called twice")
	}
	m.ended = true
	// Free leaked heap objects first (deterministic order), then statics,
	// mirroring process teardown.
	leaked := make([]trace.Addr, 0, len(m.live))
	for a := range m.live {
		leaked = append(leaked, a)
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i] < leaked[j] })
	for _, a := range leaked {
		m.sink.Emit(trace.Event{Kind: trace.EvFree, Time: m.clock, Addr: a})
	}
	for _, s := range m.statics {
		m.sink.Emit(trace.Event{Kind: trace.EvFree, Time: m.clock, Addr: s.addr})
	}
}

// Alloc allocates a heap object of the given size at the given allocation
// site and emits the object probe. Site IDs identify static program points;
// objects allocated at the same site form one group.
func (m *Machine) Alloc(site trace.SiteID, size uint32) trace.Addr {
	if size == 0 {
		panic("memsim: zero-size allocation")
	}
	if site >= 1<<24 {
		panic(fmt.Sprintf("memsim: heap site %d collides with static site space", site))
	}
	addr := m.alloc.Alloc(site, size)
	if addr < HeapBase {
		panic(fmt.Sprintf("memsim: allocator returned %#x below heap base", uint64(addr)))
	}
	m.live[addr] = size
	if m.remap != nil {
		m.indexObject(addr, site, size)
	}
	m.nAllocs++
	m.sink.Emit(trace.Event{Kind: trace.EvAlloc, Time: m.clock, Site: site, Addr: addr, Size: size})
	return addr
}

// Free releases a heap object and emits the object probe.
func (m *Machine) Free(addr trace.Addr) {
	size, ok := m.live[addr]
	if !ok {
		panic(fmt.Sprintf("memsim: free of non-live address %#x", uint64(addr)))
	}
	delete(m.live, addr)
	if m.remap != nil {
		m.objIndex.Delete(uint64(addr))
	}
	m.alloc.Free(addr, size)
	m.nFrees++
	m.sink.Emit(trace.Event{Kind: trace.EvFree, Time: m.clock, Addr: addr})
}

// Load issues a load of size bytes at addr by static instruction instr and
// emits the instruction probe. The logical clock advances by one, matching
// the paper's time-stamp ("incremented after every collected access").
func (m *Machine) Load(instr trace.InstrID, addr trace.Addr, size uint32) {
	m.access(instr, addr, size, false)
	m.nLoads++
}

// Store issues a store, analogous to Load.
func (m *Machine) Store(instr trace.InstrID, addr trace.Addr, size uint32) {
	m.access(instr, addr, size, true)
	m.nStores++
}

func (m *Machine) access(instr trace.InstrID, addr trace.Addr, size uint32, store bool) {
	if !m.started {
		panic("memsim: access before Start")
	}
	if m.remap != nil {
		addr = m.remapAddr(addr, size)
	}
	m.sink.Emit(trace.Event{Kind: trace.EvAccess, Time: m.clock, Instr: instr, Addr: addr, Size: size, Store: store})
	m.clock++
}

// Run executes prog on a fresh machine wired to sink, wrapping it with
// Start/End, and returns the machine for counter inspection.
func Run(prog Program, sink trace.Sink, opts ...Option) *Machine {
	m := New(sink, opts...)
	// Programs may define statics inside Run before touching memory; the
	// convention is that Run calls m.Start() itself after statics are
	// defined. To keep workloads simple we instead let Run be bracketed
	// here and require programs to define statics via the Setup hook if
	// they implement it.
	if s, ok := prog.(interface{ Setup(m *Machine) }); ok {
		s.Setup(m)
	}
	m.Start()
	prog.Run(m)
	m.End()
	return m
}
