package memsim

import (
	"ormprof/internal/trace"
)

// Placement is a profile-guided placement overlay: it answers "where should
// the serial-th object allocated at site go?" for the objects a layout plan
// placed explicitly, and declines (ok=false) for everything else. Keying on
// (site, serial) rather than raw addresses is what makes a plan portable
// across runs: allocation order at a site is a program property, addresses
// are an allocator accident (§3.2 of the paper).
//
// plan.Plan's Placer implements this interface.
type Placement interface {
	Place(site trace.SiteID, serial, size uint32) (trace.Addr, bool)
}

// OffsetRemapper rewrites an intra-object offset at access time, realizing
// field reordering: the workload still addresses fields at their original
// offsets, and the remapper moves each access to where the optimized record
// layout put that field.
//
// plan.Plan's FieldRemapper implements this interface.
type OffsetRemapper interface {
	RemapOffset(site trace.SiteID, off uint64, size uint32) uint64
}

// PlanAllocator composes a base allocation policy with a placement overlay:
// objects the plan placed get exactly the plan's address; everything else
// falls through to the base policy. This is the "different resolution
// function from tuples to addresses" of §1, enacted at allocation time.
type PlanAllocator struct {
	base    Allocator
	place   Placement
	serial  map[trace.SiteID]uint32
	planned map[trace.Addr]struct{}
	hits    uint64
	total   uint64
}

// NewPlanAllocator wraps base with the placement overlay. A nil place
// degenerates to the base policy.
func NewPlanAllocator(base Allocator, place Placement) *PlanAllocator {
	return &PlanAllocator{
		base:    base,
		place:   place,
		serial:  make(map[trace.SiteID]uint32),
		planned: make(map[trace.Addr]struct{}),
	}
}

// Alloc consults the plan first, keyed by the site's running serial number,
// and falls back to the base policy for unplanned objects.
func (p *PlanAllocator) Alloc(site trace.SiteID, size uint32) trace.Addr {
	serial := p.serial[site]
	p.serial[site] = serial + 1
	p.total++
	if p.place != nil {
		if addr, ok := p.place.Place(site, serial, size); ok {
			p.planned[addr] = struct{}{}
			p.hits++
			return addr
		}
	}
	return p.base.Alloc(site, size)
}

// Free returns unplanned blocks to the base policy. Plan-placed blocks live
// in the plan's dedicated region and are never recycled — feeding their
// addresses to the base free lists would leak plan addresses into unplanned
// allocations and break the placement's exactness.
func (p *PlanAllocator) Free(addr trace.Addr, size uint32) {
	if _, ok := p.planned[addr]; ok {
		delete(p.planned, addr)
		return
	}
	p.base.Free(addr, size)
}

// Placed reports how many allocations the plan placed, out of the total.
func (p *PlanAllocator) Placed() (placed, total uint64) { return p.hits, p.total }

// PolicyName implements Allocator.
func (p *PlanAllocator) PolicyName() string { return p.base.PolicyName() + "+plan" }

// WithRemap installs an access-time offset remapper on the machine. The
// machine then maintains a live-object index (start address -> site/size) so
// every Load/Store can be translated: find the containing object, rewrite
// the intra-object offset through the remapper, and emit the access at the
// relocated field. Accesses that hit no live object, or that straddle an
// object's end, pass through untouched.
func WithRemap(r OffsetRemapper) Option {
	return func(m *Machine) { m.remap = r }
}

// indexObject records a live object in the remap index. The value packs
// (site, size) into one word so the index stays a flat uint64->uint64 map.
func (m *Machine) indexObject(addr trace.Addr, site trace.SiteID, size uint32) {
	m.objIndex.Set(uint64(addr), uint64(site)<<32|uint64(size))
}

// remapAddr translates one access through the remapper. It returns addr
// unchanged when no live object contains the full access.
func (m *Machine) remapAddr(addr trace.Addr, size uint32) trace.Addr {
	start, packed, ok := m.objIndex.Floor(uint64(addr))
	if !ok {
		return addr
	}
	objSize := uint64(packed & 0xffff_ffff)
	off := uint64(addr) - start
	if off+uint64(size) > objSize {
		return addr
	}
	site := trace.SiteID(packed >> 32)
	return trace.Addr(start + m.remap.RemapOffset(site, off, size))
}

var _ Allocator = (*PlanAllocator)(nil)
