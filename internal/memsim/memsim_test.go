package memsim

import (
	"testing"

	"ormprof/internal/trace"
)

func TestStaticLifecycle(t *testing.T) {
	var buf trace.Buffer
	m := New(&buf)
	a := m.DefineStatic("table", 100)
	b := m.DefineStatic("board", 64)
	if a < StaticBase || b <= a {
		t.Fatalf("static layout wrong: %#x %#x", uint64(a), uint64(b))
	}
	if b-a != 112 { // 100 rounded up to 16-byte alignment
		t.Errorf("static alignment: gap %d, want 112", b-a)
	}
	if m.StaticAddr("table") != a {
		t.Error("StaticAddr mismatch")
	}
	m.Start()
	m.Load(1, a, 8)
	m.End()

	st := trace.Collect(buf.Events)
	if st.Allocs != 2 || st.Frees != 2 {
		t.Errorf("static probes: %d allocs, %d frees", st.Allocs, st.Frees)
	}
	names := m.StaticSites()
	if len(names) != 2 {
		t.Errorf("StaticSites = %v", names)
	}
}

// namerSink records NameSite calls and the number of events seen before
// each one, verifying the machine announces every static site to a
// SiteNamer sink before the first probe event.
type namerSink struct {
	trace.Buffer
	named       map[trace.SiteID]string
	eventsFirst bool
}

func (n *namerSink) NameSite(site trace.SiteID, name string) {
	if n.Len() > 0 {
		n.eventsFirst = true
	}
	if n.named == nil {
		n.named = make(map[trace.SiteID]string)
	}
	n.named[site] = name
}

func TestStartAnnouncesSiteNames(t *testing.T) {
	sink := &namerSink{}
	m := New(sink)
	m.DefineStatic("table", 100)
	m.DefineStatic("board", 64)
	m.Start()
	m.Load(1, m.StaticAddr("table"), 8)
	m.End()

	if sink.eventsFirst {
		t.Error("NameSite arrived after the first event")
	}
	want := m.StaticSites()
	if len(sink.named) != len(want) {
		t.Fatalf("sink named %v, machine has %v", sink.named, want)
	}
	for id, name := range want {
		if sink.named[id] != name {
			t.Errorf("site %d named %q, want %q", id, sink.named[id], name)
		}
	}
}

func TestHeapLifecycleAndClock(t *testing.T) {
	var buf trace.Buffer
	m := New(&buf)
	m.Start()
	p := m.Alloc(1, 48)
	if p < HeapBase {
		t.Fatalf("heap alloc below heap base: %#x", uint64(p))
	}
	m.Load(1, p, 8)
	m.Store(2, p+8, 8)
	if m.Clock() != 2 {
		t.Errorf("clock = %d, want 2 (one tick per access)", m.Clock())
	}
	m.Free(p)
	m.End()

	loads, stores, allocs, frees := m.Counters()
	if loads != 1 || stores != 1 || allocs != 1 || frees != 1 {
		t.Errorf("counters: %d %d %d %d", loads, stores, allocs, frees)
	}
	// Events: alloc, access, access, free; End adds nothing (no leaks, no
	// statics).
	if buf.Len() != 4 {
		t.Errorf("event count = %d, want 4: %v", buf.Len(), buf.Events)
	}
}

func TestLeakedObjectsFreedAtEnd(t *testing.T) {
	var buf trace.Buffer
	m := New(&buf)
	m.Start()
	m.Alloc(1, 16)
	m.Alloc(1, 16)
	m.End()
	st := trace.Collect(buf.Events)
	if st.Frees != 2 {
		t.Errorf("End should free leaked objects: %d frees", st.Frees)
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("access before Start", func() {
		m := New(nil)
		m.Load(1, HeapBase, 8)
	})
	expectPanic("double Start", func() {
		m := New(nil)
		m.Start()
		m.Start()
	})
	expectPanic("End before Start", func() {
		m := New(nil)
		m.End()
	})
	expectPanic("double free", func() {
		m := New(nil)
		m.Start()
		p := m.Alloc(1, 16)
		m.Free(p)
		m.Free(p)
	})
	expectPanic("DefineStatic after Start", func() {
		m := New(nil)
		m.Start()
		m.DefineStatic("x", 8)
	})
	expectPanic("duplicate static", func() {
		m := New(nil)
		m.DefineStatic("x", 8)
		m.DefineStatic("x", 8)
	})
	expectPanic("zero-size alloc", func() {
		m := New(nil)
		m.Start()
		m.Alloc(1, 0)
	})
	expectPanic("heap site in static space", func() {
		m := New(nil)
		m.Start()
		m.Alloc(1<<24, 16)
	})
	expectPanic("unknown static", func() {
		m := New(nil)
		m.StaticAddr("nope")
	})
}

type probeProg struct {
	setupCalled bool
	ranAt       trace.Time
}

func (p *probeProg) Name() string { return "probe" }
func (p *probeProg) Setup(m *Machine) {
	p.setupCalled = true
	m.DefineStatic("g", 32)
}
func (p *probeProg) Run(m *Machine) {
	m.Load(1, m.StaticAddr("g"), 8)
	p.ranAt = m.Clock()
}

func TestRunHelper(t *testing.T) {
	var buf trace.Buffer
	p := &probeProg{}
	m := Run(p, &buf)
	if !p.setupCalled {
		t.Error("Setup hook not called")
	}
	if m.Clock() != 1 {
		t.Errorf("clock = %d", m.Clock())
	}
	// Events: static alloc, access, static free.
	if buf.Len() != 3 {
		t.Errorf("event count = %d: %v", buf.Len(), buf.Events)
	}
}
