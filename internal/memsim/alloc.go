package memsim

import (
	"math/rand"
	"sort"

	"ormprof/internal/trace"
)

// Allocator is a heap allocation policy for the simulated machine. Alloc
// receives the static allocation site alongside the size, so placement
// policies can be profile-guided: the base policies below ignore the site,
// while the plan overlay (NewPlanAllocator) keys its placements on it.
//
// The three base implementations model the "confounding artifacts" of the
// paper's §1:
//
//   - BumpAllocator: no reuse, monotone addresses. The cleanest possible
//     layout — raw addresses still scatter across object instances, but there
//     is no false aliasing.
//   - FreeListAllocator: segregated free lists with address reuse, like a
//     production malloc. Reuse makes distinct objects share raw addresses
//     over time (false aliasing) and makes placement depend on the program's
//     allocation history.
//   - RandomizedAllocator: adds placement jitter, modeling run-to-run layout
//     variation from ASLR, allocator versions, or probe-shifted segments.
//
// All policies carve from the heap segment starting at HeapBase and align
// blocks to 16 bytes.
type Allocator interface {
	Alloc(site trace.SiteID, size uint32) trace.Addr
	Free(addr trace.Addr, size uint32)
	// PolicyName identifies the policy in reports.
	PolicyName() string
}

const blockAlign = 16

func alignUp(n uint32) uint32 { return (n + blockAlign - 1) &^ (blockAlign - 1) }

// BumpAllocator allocates monotonically increasing addresses and never
// reuses freed space.
type BumpAllocator struct {
	next trace.Addr
}

// NewBumpAllocator returns a bump allocator starting at HeapBase.
func NewBumpAllocator() *BumpAllocator { return &BumpAllocator{next: HeapBase} }

// Alloc carves the next aligned block.
func (b *BumpAllocator) Alloc(_ trace.SiteID, size uint32) trace.Addr {
	a := b.next
	b.next += trace.Addr(alignUp(size))
	return a
}

// Free is a no-op: bump allocation never reuses memory.
func (b *BumpAllocator) Free(trace.Addr, uint32) {}

// PolicyName implements Allocator.
func (b *BumpAllocator) PolicyName() string { return "bump" }

// FreeListAllocator is a segregated free-list allocator: freed blocks are
// binned by size class and reused LIFO, like dlmalloc's fastbins. This is the
// default policy because address reuse is the main source of false aliasing
// the paper's object-relative translation eliminates.
type FreeListAllocator struct {
	next  trace.Addr
	bins  map[uint32][]trace.Addr // size class -> LIFO free stack
	alloc uint64
	reuse uint64
}

// NewFreeListAllocator returns an empty free-list allocator.
func NewFreeListAllocator() *FreeListAllocator {
	return &FreeListAllocator{next: HeapBase, bins: make(map[uint32][]trace.Addr)}
}

// Alloc reuses the most recently freed block of the same size class if one
// exists, else bumps.
func (f *FreeListAllocator) Alloc(_ trace.SiteID, size uint32) trace.Addr {
	f.alloc++
	class := alignUp(size)
	if stack := f.bins[class]; len(stack) > 0 {
		a := stack[len(stack)-1]
		f.bins[class] = stack[:len(stack)-1]
		f.reuse++
		return a
	}
	a := f.next
	f.next += trace.Addr(class)
	return a
}

// Free pushes the block onto its size-class bin.
func (f *FreeListAllocator) Free(addr trace.Addr, size uint32) {
	class := alignUp(size)
	f.bins[class] = append(f.bins[class], addr)
}

// ReuseRate reports the fraction of allocations served from free lists.
func (f *FreeListAllocator) ReuseRate() float64 {
	if f.alloc == 0 {
		return 0
	}
	return float64(f.reuse) / float64(f.alloc)
}

// PolicyName implements Allocator.
func (f *FreeListAllocator) PolicyName() string { return "freelist" }

// RandomizedAllocator behaves like the free-list allocator but perturbs fresh
// placements by a seeded random gap and serves free bins in random order,
// modeling layout that differs from run to run even for identical inputs.
type RandomizedAllocator struct {
	rng  *rand.Rand
	next trace.Addr
	bins map[uint32][]trace.Addr
}

// NewRandomizedAllocator returns a randomized allocator seeded with seed.
// Different seeds model different runs/allocator versions.
func NewRandomizedAllocator(seed int64) *RandomizedAllocator {
	return &RandomizedAllocator{
		rng:  rand.New(rand.NewSource(seed)),
		next: HeapBase,
		bins: make(map[uint32][]trace.Addr),
	}
}

// Alloc reuses a random free block of the class, else bumps past a random
// gap of 0..15 blocks.
func (r *RandomizedAllocator) Alloc(_ trace.SiteID, size uint32) trace.Addr {
	class := alignUp(size)
	if stack := r.bins[class]; len(stack) > 0 {
		i := r.rng.Intn(len(stack))
		a := stack[i]
		stack[i] = stack[len(stack)-1]
		r.bins[class] = stack[:len(stack)-1]
		return a
	}
	gap := trace.Addr(r.rng.Intn(16)) * blockAlign
	a := r.next + gap
	r.next = a + trace.Addr(class)
	return a
}

// Free pushes the block onto its size-class bin.
func (r *RandomizedAllocator) Free(addr trace.Addr, size uint32) {
	class := alignUp(size)
	r.bins[class] = append(r.bins[class], addr)
}

// PolicyName implements Allocator.
func (r *RandomizedAllocator) PolicyName() string { return "randomized" }

// Policies returns one fresh instance of each allocator policy, keyed by
// name, for the allocator-invariance ablation. The randomized policy is
// seeded with seed.
func Policies(seed int64) map[string]Allocator {
	return map[string]Allocator{
		"bump":       NewBumpAllocator(),
		"freelist":   NewFreeListAllocator(),
		"randomized": NewRandomizedAllocator(seed),
	}
}

// PolicyNames returns the policy names in deterministic order.
func PolicyNames() []string {
	names := []string{"bump", "freelist", "randomized"}
	sort.Strings(names)
	return names
}
