package leap

import (
	"context"

	"ormprof/internal/decomp"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// ParallelSCC is the concurrent LEAP compression stage. The vertical
// decomposition by (instruction, group) that defines LEAP also defines its
// parallelism: a stream's LMAD compressors only ever see records of their
// own key, so the record stream shards cleanly across workers as long as
// all records of one key land on the same worker. Sharding by instruction
// ID (decomp.Shard) guarantees that, and additionally keeps each
// instruction's execution counters on a single worker, so the merged
// profile is the disjoint union of the shard profiles — no cross-worker
// reconciliation, and exactly the profile the sequential SCC builds.
//
// Each worker runs an ordinary sequential SCC over its shard of the
// stream; a profiler.Sharded stage routes batched records to the workers.
type ParallelSCC struct {
	sh     *profiler.Sharded
	shards []*SCC
}

// NewParallelSCC returns a LEAP compression stage with the given per-stream
// LMAD budget (≤ 0 selects lmad.DefaultMax) fanned out across workers
// shards.
func NewParallelSCC(maxLMADs, workers int) *ParallelSCC {
	return NewParallelSCCContext(context.Background(), maxLMADs, workers)
}

// NewParallelSCCContext is NewParallelSCC with cooperative cancellation
// wired into the sharded stage (see profiler.NewShardedContext).
func NewParallelSCCContext(ctx context.Context, maxLMADs, workers int) *ParallelSCC {
	if workers < 1 {
		workers = 1
	}
	p := &ParallelSCC{shards: make([]*SCC, workers)}
	p.sh = profiler.NewShardedContext(ctx, workers, profiler.DefaultShardBatch,
		func(r profiler.Record, n int) int { return decomp.Shard(r, n) },
		func(i int) profiler.SCC {
			s := NewSCC(maxLMADs)
			p.shards[i] = s
			return s
		})
	return p
}

// Consume implements profiler.SCC: the record is routed to its
// instruction's shard.
func (p *ParallelSCC) Consume(r profiler.Record) { p.sh.Consume(r) }

// Finish implements profiler.SCC: it flushes the shard queues and joins the
// workers; afterwards the shard SCCs are complete and safe to read.
func (p *ParallelSCC) Finish() { p.sh.Finish() }

// Err reports the sharded stage's first fault (nil after a clean run).
func (p *ParallelSCC) Err() error { return p.sh.Err() }

// BuildProfile merges the shard profiles into one Profile. The shards
// partition the key space by instruction, so the merge is a disjoint union:
// stream and instruction entries are simply collected, and the record count
// is the sum. Call after Finish.
func (p *ParallelSCC) BuildProfile(workload string) *Profile {
	out := &Profile{
		Workload:   workload,
		Streams:    make(map[StreamKey]*Stream),
		InstrExecs: make(map[trace.InstrID]uint64),
		InstrStore: make(map[trace.InstrID]bool),
	}
	for _, s := range p.shards {
		sp := s.BuildProfile(workload)
		out.Records += sp.Records
		for k, st := range sp.Streams {
			out.Streams[k] = st
		}
		for id, n := range sp.InstrExecs {
			out.InstrExecs[id] += n
		}
		for id, store := range sp.InstrStore {
			out.InstrStore[id] = store
		}
	}
	return out
}
