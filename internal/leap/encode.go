package leap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ormprof/internal/lmad"
	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// LEAP profile file format:
//
//	magic    "ORMLEAP1"
//	string   workload
//	uvarint  record count
//	uvarint  instruction count
//	per instruction (ascending ID): uvarint id, uvarint execs, u8 isStore
//	uvarint  stream count
//	per stream (ascending (instr, group)):
//	  uvarint instr, uvarint group,
//	  u8 flags (bit0 store, bit1 overflowed, bit2 offset-overflowed)
//	  uvarint offered, uvarint captured, uvarint offsetCaptured
//	  uvarint lmadCount
//	  per LMAD: 3 × varint start, 3 × varint stride, uvarint count
//	  if overflowed: 3 × varint min, 3 × varint max, 3 × varint granularity,
//	                 uvarint summarized point count
//	  uvarint offsetLmadCount
//	  per offset LMAD: 2 × varint start, 2 × varint stride, uvarint count,
//	                   uvarint reps
//
// Signed quantities use zig-zag varints (binary.AppendVarint).

const leapMagic = "ORMLEAP1"

// ErrBadProfile reports a malformed LEAP profile file.
var ErrBadProfile = errors.New("leap: bad profile file")

// EncodedSize returns the exact serialized size in bytes, which Table 1's
// compression ratio uses.
func (p *Profile) EncodedSize() int {
	// Cheap and obviously correct: serialize into a counting writer.
	n, err := p.WriteTo(io.Discard)
	if err != nil {
		return 0
	}
	return int(n)
}

// WriteTo serializes the profile.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	cw.Write([]byte(leapMagic)) //nolint:errcheck // latched
	writeString(cw, p.Workload)
	writeUvarint(cw, p.Records)

	instrs := p.Instrs()
	writeUvarint(cw, uint64(len(instrs)))
	for _, id := range instrs {
		writeUvarint(cw, uint64(id))
		writeUvarint(cw, p.InstrExecs[id])
		b := byte(0)
		if p.InstrStore[id] {
			b = 1
		}
		cw.Write([]byte{b}) //nolint:errcheck // latched
	}

	keys := p.Keys()
	writeUvarint(cw, uint64(len(keys)))
	for _, k := range keys {
		s := p.Streams[k]
		writeUvarint(cw, uint64(k.Instr))
		writeUvarint(cw, uint64(k.Group))
		flags := byte(0)
		if s.Store {
			flags |= 1
		}
		if s.Overflowed {
			flags |= 2
		}
		if s.OffsetOverflowed {
			flags |= 4
		}
		cw.Write([]byte{flags}) //nolint:errcheck // latched
		writeUvarint(cw, s.Offered)
		writeUvarint(cw, s.Captured)
		writeUvarint(cw, s.OffsetCaptured)
		writeUvarint(cw, uint64(len(s.LMADs)))
		for i := range s.LMADs {
			l := &s.LMADs[i]
			for d := 0; d < NumDims; d++ {
				writeVarint(cw, l.Start[d])
			}
			for d := 0; d < NumDims; d++ {
				writeVarint(cw, l.Stride[d])
			}
			writeUvarint(cw, uint64(l.Count))
		}
		if s.Overflowed {
			for d := 0; d < NumDims; d++ {
				writeVarint(cw, s.Summary.Min[d])
			}
			for d := 0; d < NumDims; d++ {
				writeVarint(cw, s.Summary.Max[d])
			}
			for d := 0; d < NumDims; d++ {
				writeVarint(cw, s.Summary.Granularity[d])
			}
			writeUvarint(cw, s.Summary.Points)
		}
		writeUvarint(cw, uint64(len(s.OffsetLMADs)))
		for i := range s.OffsetLMADs {
			l := &s.OffsetLMADs[i]
			for d := 0; d < 2; d++ {
				writeVarint(cw, l.Start[d])
			}
			for d := 0; d < 2; d++ {
				writeVarint(cw, l.Stride[d])
			}
			writeUvarint(cw, uint64(l.Count))
			writeUvarint(cw, uint64(l.Reps))
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadProfile parses a profile written by WriteTo.
func ReadProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(leapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	if string(magic) != leapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadProfile, magic)
	}
	p := &Profile{
		Streams:    make(map[StreamKey]*Stream),
		InstrExecs: make(map[trace.InstrID]uint64),
		InstrStore: make(map[trace.InstrID]bool),
	}
	var err error
	if p.Workload, err = readString(br); err != nil {
		return nil, err
	}
	if p.Records, err = readUvarint(br); err != nil {
		return nil, err
	}
	nInstr, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nInstr; i++ {
		id, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		execs, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
		}
		p.InstrExecs[trace.InstrID(id)] = execs
		p.InstrStore[trace.InstrID(id)] = b == 1
	}
	nStreams, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nStreams; i++ {
		var s Stream
		instr, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		group, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		s.Key = StreamKey{Instr: trace.InstrID(instr), Group: omc.GroupID(group)}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
		}
		s.Store = flags&1 != 0
		s.Overflowed = flags&2 != 0
		s.OffsetOverflowed = flags&4 != 0
		if s.Offered, err = readUvarint(br); err != nil {
			return nil, err
		}
		if s.Captured, err = readUvarint(br); err != nil {
			return nil, err
		}
		if s.OffsetCaptured, err = readUvarint(br); err != nil {
			return nil, err
		}
		nL, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nL; j++ {
			l := lmad.LMAD{Start: make([]int64, NumDims), Stride: make([]int64, NumDims)}
			for d := 0; d < NumDims; d++ {
				if l.Start[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			for d := 0; d < NumDims; d++ {
				if l.Stride[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			cnt, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			l.Count = uint32(cnt)
			s.LMADs = append(s.LMADs, l)
		}
		if s.Overflowed {
			s.Summary.Min = make([]int64, NumDims)
			s.Summary.Max = make([]int64, NumDims)
			s.Summary.Granularity = make([]int64, NumDims)
			for d := 0; d < NumDims; d++ {
				if s.Summary.Min[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			for d := 0; d < NumDims; d++ {
				if s.Summary.Max[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			for d := 0; d < NumDims; d++ {
				if s.Summary.Granularity[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			if s.Summary.Points, err = readUvarint(br); err != nil {
				return nil, err
			}
		}
		nOff, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nOff; j++ {
			l := lmad.RepLMAD{LMAD: lmad.LMAD{Start: make([]int64, 2), Stride: make([]int64, 2)}}
			for d := 0; d < 2; d++ {
				if l.Start[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			for d := 0; d < 2; d++ {
				if l.Stride[d], err = readVarint(br); err != nil {
					return nil, err
				}
			}
			cnt, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			l.Count = uint32(cnt)
			reps, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			l.Reps = uint32(reps)
			s.OffsetLMADs = append(s.OffsetLMADs, l)
		}
		p.Streams[s.Key] = &s
	}
	return p, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // countingWriter latches the error
}

func writeVarint(w io.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // countingWriter latches the error
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s) //nolint:errcheck // countingWriter latches the error
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	return v, nil
}

func readVarint(br *bufio.Reader) (int64, error) {
	v, err := binary.ReadVarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	return v, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: unreasonable string length %d", ErrBadProfile, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	return string(buf), nil
}
