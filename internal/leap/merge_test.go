package leap

import (
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func profileOf(t *testing.T, seed int64) *Profile {
	t.Helper()
	prog, err := workloads.New("197.parser", workloads.Config{Scale: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)
	p := New(nil, 0)
	buf.Replay(p)
	return p.Profile("197.parser")
}

func TestMergeCounters(t *testing.T) {
	a := profileOf(t, 1)
	b := profileOf(t, 2)
	m := Merge(a, b)

	if m.Records != a.Records+b.Records {
		t.Errorf("Records = %d, want %d", m.Records, a.Records+b.Records)
	}
	for id, n := range a.InstrExecs {
		if m.InstrExecs[id] != n+b.InstrExecs[id] {
			t.Errorf("instr %d execs = %d, want %d", id, m.InstrExecs[id], n+b.InstrExecs[id])
		}
	}
	if m.Workload != "197.parser" {
		t.Errorf("Workload = %q", m.Workload)
	}

	// Stream keys are the union; counters add.
	for k, sa := range a.Streams {
		sm := m.Streams[k]
		if sm == nil {
			t.Fatalf("stream %v lost in merge", k)
		}
		var sbOff uint64
		if sb := b.Streams[k]; sb != nil {
			sbOff = sb.Offered
		}
		if sm.Offered != sa.Offered+sbOff {
			t.Errorf("stream %v offered = %d", k, sm.Offered)
		}
	}

	// Aggregate quality is well-defined on the merged profile.
	acc, _ := m.SampleQuality()
	if acc <= 0 || acc > 100 {
		t.Errorf("merged sample quality = %v", acc)
	}
}

func TestMergeSkipsNil(t *testing.T) {
	a := profileOf(t, 1)
	m := Merge(nil, a, nil)
	if m.Records != a.Records {
		t.Errorf("Records = %d", m.Records)
	}
}

func TestMergeDistinctWorkloadNames(t *testing.T) {
	a := profileOf(t, 1)
	b := profileOf(t, 1)
	b.Workload = "other"
	if m := Merge(a, b); m.Workload != "197.parser+other" {
		t.Errorf("Workload = %q", m.Workload)
	}
}
