package leap

import (
	"bytes"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// FuzzReadProfile feeds arbitrary bytes to the profile decoder: it must
// never panic, and a profile it accepts must round-trip.
func FuzzReadProfile(f *testing.F) {
	// Seed with a real profile.
	prog, err := workloads.New("197.parser", workloads.Config{Scale: 1, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)
	p := New(nil, 0)
	buf.Replay(p)
	var enc bytes.Buffer
	if _, err := p.Profile("x").WriteTo(&enc); err != nil {
		f.Fatal(err)
	}
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ORMLEAP1"))
	f.Add(append([]byte("ORMLEAP1"), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		prof, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := prof.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of accepted profile: %v", err)
		}
		if _, err := ReadProfile(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
