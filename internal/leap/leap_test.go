package leap

import (
	"bytes"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// syntheticTrace builds a trace with one strided store/load pair over a
// heap array plus one irregular load.
func syntheticTrace() *trace.Buffer {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 1024)
	for i := 0; i < 64; i++ {
		m.Store(1, arr+trace.Addr(i*8), 8) // strided store
	}
	for i := 0; i < 64; i++ {
		m.Load(2, arr+trace.Addr(i*8), 8) // strided load: depends on instr 1
	}
	// Irregular load: pseudo-random offsets.
	for i := 0; i < 64; i++ {
		m.Load(3, arr+trace.Addr((i*137)%1024/8*8), 8)
	}
	m.Free(arr)
	m.End()
	return buf
}

func TestLEAPProfileStructure(t *testing.T) {
	buf := syntheticTrace()
	p := New(nil, 0)
	buf.Replay(p)
	profile := p.Profile("synthetic")

	if profile.Records != 192 {
		t.Fatalf("Records = %d", profile.Records)
	}
	if len(profile.Instrs()) != 3 {
		t.Fatalf("instrs = %v", profile.Instrs())
	}
	if profile.InstrExecs[1] != 64 || !profile.InstrStore[1] {
		t.Error("instr 1 bookkeeping wrong")
	}
	if profile.InstrStore[2] || profile.InstrStore[3] {
		t.Error("loads marked as stores")
	}

	keys := profile.Keys()
	if len(keys) != 3 {
		t.Fatalf("streams = %d", len(keys))
	}
	// The strided store must compress into a single timed LMAD.
	s1 := profile.Streams[StreamKey{Instr: 1, Group: profileGroup(profile)}]
	if s1 == nil {
		t.Fatal("no stream for instr 1")
	}
	if len(s1.LMADs) != 1 || s1.LMADs[0].Count != 64 {
		t.Errorf("store stream LMADs = %v", s1.LMADs)
	}
	if s1.LMADs[0].Stride[DimOffset] != 8 || s1.LMADs[0].Stride[DimTime] != 1 {
		t.Errorf("store stride = %v", s1.LMADs[0].Stride)
	}
	if s1.Overflowed || s1.Captured != 64 {
		t.Errorf("store stream: overflowed=%v captured=%d", s1.Overflowed, s1.Captured)
	}
}

// profileGroup returns the single heap group in the synthetic profile.
func profileGroup(p *Profile) omc.GroupID {
	for k := range p.Streams {
		if k.Group != omc.Unmapped {
			return k.Group
		}
	}
	return omc.Unmapped
}

func TestSampleQuality(t *testing.T) {
	buf := syntheticTrace()
	p := New(nil, 5) // tiny budget: the irregular load must overflow
	buf.Replay(p)
	profile := p.Profile("synthetic")

	accPct, instrPct := profile.SampleQuality()
	if accPct <= 0 || accPct >= 100 {
		t.Errorf("accesses captured = %.1f%%, want strictly between 0 and 100", accPct)
	}
	// 2 of 3 instructions fully captured.
	if instrPct < 60 || instrPct > 70 {
		t.Errorf("instructions captured = %.1f%%, want ~66.7%%", instrPct)
	}
}

func TestCompressionRatio(t *testing.T) {
	buf := syntheticTrace()
	p := New(nil, 0)
	buf.Replay(p)
	profile := p.Profile("synthetic")
	if r := profile.CompressionRatio(); r <= 1 {
		t.Errorf("compression ratio = %.2f, want > 1", r)
	}
	if profile.TotalLMADs() == 0 {
		t.Error("no LMADs collected")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	// Use a real workload for a structurally rich profile.
	prog, err := workloads.New("197.parser", workloads.Config{Scale: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)

	p := New(nil, 0)
	buf.Replay(p)
	profile := p.Profile("197.parser")

	var out bytes.Buffer
	if _, err := profile.WriteTo(&out); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if out.Len() != profile.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual = %d", profile.EncodedSize(), out.Len())
	}

	back, err := ReadProfile(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("ReadProfile: %v", err)
	}
	if back.Workload != profile.Workload || back.Records != profile.Records {
		t.Error("metadata mismatch")
	}
	if len(back.Streams) != len(profile.Streams) {
		t.Fatalf("stream count: %d vs %d", len(back.Streams), len(profile.Streams))
	}
	for _, k := range profile.Keys() {
		a, b := profile.Streams[k], back.Streams[k]
		if b == nil {
			t.Fatalf("stream %v missing after round trip", k)
		}
		if a.Offered != b.Offered || a.Captured != b.Captured ||
			a.OffsetCaptured != b.OffsetCaptured ||
			a.Store != b.Store || a.Overflowed != b.Overflowed ||
			a.OffsetOverflowed != b.OffsetOverflowed {
			t.Fatalf("stream %v scalar fields differ", k)
		}
		if len(a.LMADs) != len(b.LMADs) || len(a.OffsetLMADs) != len(b.OffsetLMADs) {
			t.Fatalf("stream %v LMAD counts differ", k)
		}
		for i := range a.LMADs {
			la, lb := a.LMADs[i], b.LMADs[i]
			if la.Count != lb.Count {
				t.Fatalf("stream %v LMAD %d count differs", k, i)
			}
			for d := 0; d < NumDims; d++ {
				if la.Start[d] != lb.Start[d] || la.Stride[d] != lb.Stride[d] {
					t.Fatalf("stream %v LMAD %d vectors differ", k, i)
				}
			}
		}
		for i := range a.OffsetLMADs {
			la, lb := a.OffsetLMADs[i], b.OffsetLMADs[i]
			if la.Count != lb.Count || la.Reps != lb.Reps {
				t.Fatalf("stream %v offset LMAD %d differs", k, i)
			}
		}
		if a.Overflowed {
			for d := 0; d < NumDims; d++ {
				if a.Summary.Min[d] != b.Summary.Min[d] || a.Summary.Max[d] != b.Summary.Max[d] ||
					a.Summary.Granularity[d] != b.Summary.Granularity[d] {
					t.Fatalf("stream %v summary differs", k)
				}
			}
			if a.Summary.Points != b.Summary.Points {
				t.Fatalf("stream %v summary points differ", k)
			}
		}
	}
	for id, e := range profile.InstrExecs {
		if back.InstrExecs[id] != e || back.InstrStore[id] != profile.InstrStore[id] {
			t.Fatalf("instr %d metadata differs", id)
		}
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadProfile(bytes.NewReader([]byte("BADMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	buf := syntheticTrace()
	p := New(nil, 0)
	buf.Replay(p)
	var full bytes.Buffer
	if _, err := p.Profile("x").WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < full.Len(); cut += 7 {
		if _, err := ReadProfile(bytes.NewReader(full.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated profile (%d of %d bytes) accepted", cut, full.Len())
		}
	}
}

func TestUnmappedAccessesAreProfiled(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	// Accesses with no live object: group 0, offset = raw address.
	m.Load(1, 0xdead0, 8)
	m.Load(1, 0xdead8, 8)
	m.End()

	p := New(nil, 0)
	buf.Replay(p)
	profile := p.Profile("unmapped")
	s := profile.Streams[StreamKey{Instr: 1, Group: omc.Unmapped}]
	if s == nil {
		t.Fatal("no unmapped stream")
	}
	if s.Offered != 2 {
		t.Errorf("Offered = %d", s.Offered)
	}
}
