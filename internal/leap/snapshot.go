package leap

import (
	"fmt"

	"ormprof/internal/decomp"
	"ormprof/internal/lmad"
	"ormprof/internal/trace"
)

// This file implements exact SCC snapshots for checkpoint/resume
// (internal/checkpoint): the per-(instruction, group) compressor states —
// including their in-progress pattern cursors — plus the execution and
// store-kind tables, captured as pure data.

// StreamSnapshot is the complete state of one (instruction, group) stream.
type StreamSnapshot struct {
	Key     StreamKey
	Store   bool
	Timed   *lmad.CompressorSnapshot
	Untimed *lmad.RepeatSnapshot
}

// InstrCount is one instruction's execution count.
type InstrCount struct {
	Instr trace.InstrID
	Execs uint64
	Store bool
}

// SCCSnapshot is the complete mutable state of a LEAP SCC. Streams and
// Instrs are sorted by key so equal SCCs produce equal snapshots.
type SCCSnapshot struct {
	MaxLMADs int
	Records  uint64
	Streams  []StreamSnapshot
	Instrs   []InstrCount
}

// Snapshot captures the SCC's complete state; the result shares no memory
// with the live SCC.
func (s *SCC) Snapshot() *SCCSnapshot {
	snap := &SCCSnapshot{
		MaxLMADs: s.maxLMADs,
		Records:  s.records,
		Streams:  make([]StreamSnapshot, 0, len(s.compressors)),
		Instrs:   make([]InstrCount, 0, len(s.instrExecs)),
	}
	for _, k := range decomp.SortedKeys(s.compressors) {
		c := s.compressors[k]
		snap.Streams = append(snap.Streams, StreamSnapshot{
			Key:     k,
			Store:   c.store,
			Timed:   c.timed.Snapshot(),
			Untimed: c.untimed.Snapshot(),
		})
	}
	for _, instr := range decomp.SortedInstrs(s.instrExecs) {
		snap.Instrs = append(snap.Instrs, InstrCount{
			Instr: instr,
			Execs: s.instrExecs[instr],
			Store: s.instrStore[instr],
		})
	}
	return snap
}

// SCCFromSnapshot reconstructs an SCC that behaves identically to the
// snapshotted one for all future records.
func SCCFromSnapshot(snap *SCCSnapshot) (*SCC, error) {
	s := NewSCC(snap.MaxLMADs)
	s.records = snap.Records
	for _, ss := range snap.Streams {
		if _, dup := s.compressors[ss.Key]; dup {
			return nil, fmt.Errorf("leap: duplicate stream %v in snapshot", ss.Key)
		}
		if ss.Timed == nil || ss.Untimed == nil {
			return nil, fmt.Errorf("leap: stream %v missing compressor state", ss.Key)
		}
		if ss.Timed.Dims != NumDims {
			return nil, fmt.Errorf("leap: stream %v timed compressor has %d dims, want %d", ss.Key, ss.Timed.Dims, NumDims)
		}
		if ss.Untimed.Dims != 2 {
			return nil, fmt.Errorf("leap: stream %v untimed compressor has %d dims, want 2", ss.Key, ss.Untimed.Dims)
		}
		timed, err := lmad.CompressorFromSnapshot(ss.Timed)
		if err != nil {
			return nil, fmt.Errorf("leap: stream %v timed: %w", ss.Key, err)
		}
		untimed, err := lmad.RepeatFromSnapshot(ss.Untimed)
		if err != nil {
			return nil, fmt.Errorf("leap: stream %v untimed: %w", ss.Key, err)
		}
		c := &streamState{timed: timed, untimed: untimed, store: ss.Store}
		s.compressors[ss.Key] = c
		s.foot += sccStreamBytes + c.footprint()
	}
	for _, ic := range snap.Instrs {
		if _, dup := s.instrExecs[ic.Instr]; dup {
			return nil, fmt.Errorf("leap: duplicate instruction %d in snapshot", ic.Instr)
		}
		s.instrExecs[ic.Instr] = ic.Execs
		s.instrStore[ic.Instr] = ic.Store
		s.foot += sccInstrBytes
	}
	return s, nil
}
