// Package leap implements LEAP, the paper's Loss-Enhanced Access Profiler
// (§4).
//
// LEAP decomposes the object-relative stream vertically by instruction ID
// and then by group, producing one (object, offset, time) point stream per
// (instruction, group) pair, and compresses each stream with the LMAD linear
// compressor under a fixed LMAD budget (30 in the paper). Streams that
// exceed the budget degrade to summary information, making the profile
// lossy; the captured fraction is tracked as sample quality.
//
// Two post-processors consume LEAP profiles: memory dependence frequency
// (package depend) and stride patterns (package stride).
//
// Because streams are keyed by (instruction, group), compression shards
// cleanly by instruction: NewParallel fans the record stream out across
// workers and merges the disjoint shard profiles, producing a profile
// identical to the sequential one (see ParallelSCC and
// docs/ARCHITECTURE.md).
package leap

import (
	"ormprof/internal/decomp"
	"ormprof/internal/lmad"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// StreamKey identifies one vertically decomposed stream: the paper's
// (instruction-id, group) pair.
type StreamKey = decomp.InstrGroupKey

// Stream is the compressed profile of one (instruction, group) pair.
//
// Each stream is compressed twice, following §4.1's hybrid of vertical and
// horizontal decomposition: the full 3-dimensional (object, offset, time)
// points feed the LMADs used by the dependence post-processor (which needs
// the time ordering), and the horizontally decomposed 2-dimensional
// (object, offset) points feed the LMADs used for stride detection and the
// Table 1 sample-quality metric, which the paper defines "at the level of
// offsets inside objects (not including the timing information)".
type Stream struct {
	Key   StreamKey
	Store bool // whether the instruction is a store

	// LMADs are the timed descriptors (object, offset, time).
	LMADs      []lmad.LMAD
	Overflowed bool
	Summary    lmad.Summary

	// OffsetLMADs are the untimed repeat-aware descriptors
	// (object, offset).
	OffsetLMADs      []lmad.RepLMAD
	OffsetOverflowed bool
	OffsetCaptured   uint64 // points captured by the untimed descriptors

	Offered  uint64 // points seen
	Captured uint64 // points captured by the timed descriptors
}

// Point dimensions within a LEAP LMAD. The untimed descriptors use the
// first two dimensions only.
const (
	DimObject = 0
	DimOffset = 1
	DimTime   = 2
	NumDims   = 3
)

// Profile is a collected LEAP profile.
type Profile struct {
	Workload string
	Records  uint64 // total accesses profiled

	// Streams maps each (instruction, group) pair to its compressed
	// stream. Iterate with Keys for determinism.
	Streams map[StreamKey]*Stream

	// InstrExecs counts total executions per instruction (maintained even
	// for overflowed streams, so MDF denominators are exact).
	InstrExecs map[trace.InstrID]uint64

	// InstrStore records each instruction's kind.
	InstrStore map[trace.InstrID]bool
}

// Keys returns the stream keys in deterministic (instr, group) order.
func (p *Profile) Keys() []StreamKey { return decomp.SortedKeys(p.Streams) }

// Instrs returns the instruction IDs in ascending order.
func (p *Profile) Instrs() []trace.InstrID { return decomp.SortedInstrs(p.InstrExecs) }

// SCC is LEAP's separation-and-compression component: online vertical
// decomposition by (instruction, group) feeding per-stream LMAD compressors.
type SCC struct {
	maxLMADs    int
	compressors map[StreamKey]*streamState
	instrExecs  map[trace.InstrID]uint64
	instrStore  map[trace.InstrID]bool
	records     uint64
	foot        int64 // incremental byte estimate, see Footprint
}

// Approximate per-element live sizes for budget accounting.
const (
	sccBase        = 192
	sccStreamBytes = 96 // streamState + stream-map entry
	sccInstrBytes  = 56 // instrExecs + instrStore entries
)

// footprint is one stream's compressor contribution to the estimate.
func (c *streamState) footprint() int64 {
	return c.timed.Footprint() + c.untimed.Footprint()
}

// Footprint reports the SCC's approximate live bytes in O(1); the estimate
// is maintained incrementally in Consume.
func (s *SCC) Footprint() int64 { return sccBase + s.foot }

type streamState struct {
	timed   *lmad.Compressor       // (object, offset, time)
	untimed *lmad.RepeatCompressor // (object, offset)
	store   bool
}

// NewSCC returns a LEAP compression stage with the given per-stream LMAD
// budget (≤ 0 selects lmad.DefaultMax, the paper's 30).
func NewSCC(maxLMADs int) *SCC {
	return &SCC{
		maxLMADs:    maxLMADs,
		compressors: make(map[StreamKey]*streamState),
		instrExecs:  make(map[trace.InstrID]uint64),
		instrStore:  make(map[trace.InstrID]bool),
	}
}

// Consume implements profiler.SCC.
func (s *SCC) Consume(r profiler.Record) {
	s.records++
	if _, seen := s.instrExecs[r.Instr]; !seen {
		s.foot += sccInstrBytes
	}
	s.instrExecs[r.Instr]++
	s.instrStore[r.Instr] = r.Store
	k := StreamKey{Instr: r.Instr, Group: r.Ref.Group}
	c, ok := s.compressors[k]
	if !ok {
		c = &streamState{
			timed:   lmad.NewCompressor(NumDims, s.maxLMADs),
			untimed: lmad.NewRepeatCompressor(2, s.maxLMADs),
			store:   r.Store,
		}
		s.compressors[k] = c
		s.foot += sccStreamBytes + c.footprint()
	}
	var p [NumDims]int64
	p[DimObject] = int64(r.Ref.Object)
	p[DimOffset] = int64(r.Ref.Offset)
	p[DimTime] = int64(r.Time)
	pre := c.footprint()
	c.timed.Add(p[:])
	c.untimed.Add(p[:2])
	s.foot += c.footprint() - pre
}

// Finish implements profiler.SCC.
func (s *SCC) Finish() {}

// BuildProfile freezes the SCC into a Profile.
func (s *SCC) BuildProfile(workload string) *Profile {
	p := &Profile{
		Workload:   workload,
		Records:    s.records,
		Streams:    make(map[StreamKey]*Stream, len(s.compressors)),
		InstrExecs: s.instrExecs,
		InstrStore: s.instrStore,
	}
	for k, c := range s.compressors {
		p.Streams[k] = &Stream{
			Key:              k,
			Store:            c.store,
			LMADs:            c.timed.LMADs(),
			Overflowed:       c.timed.Overflowed(),
			Summary:          c.timed.Summary(),
			OffsetLMADs:      c.untimed.LMADs(),
			OffsetOverflowed: c.untimed.Overflowed(),
			OffsetCaptured:   c.untimed.Captured(),
			Offered:          c.timed.Offered(),
			Captured:         c.timed.Captured(),
		}
	}
	return p
}

// compressorSCC is the contract between the Profiler front end and a LEAP
// compression stage: the sequential SCC and the ParallelSCC both satisfy
// it and build identical profiles for the same input stream.
type compressorSCC interface {
	profiler.SCC
	BuildProfile(workload string) *Profile
}

// Profiler bundles the full LEAP pipeline: OMC + CDC + SCC. It is a
// trace.Sink.
type Profiler struct {
	omc *omc.OMC
	scc compressorSCC
	cdc *profiler.CDC
}

// New creates a LEAP profiler with the given LMAD budget (≤ 0 for the
// paper's default of 30). siteNames may be nil.
func New(siteNames map[trace.SiteID]string, maxLMADs int) *Profiler {
	o := omc.New(siteNames)
	scc := NewSCC(maxLMADs)
	return &Profiler{omc: o, scc: scc, cdc: profiler.NewCDC(o, scc)}
}

// NewParallel creates a LEAP profiler whose per-(instruction, group) stream
// compression fans out across the given number of workers, sharded by
// instruction ID. workers ≤ 0 selects runtime.GOMAXPROCS(0); workers == 1
// returns the plain sequential profiler. The resulting profile is identical
// to the sequential one regardless of worker count (asserted by
// TestParallelDeterminism).
func NewParallel(siteNames map[trace.SiteID]string, maxLMADs, workers int) *Profiler {
	workers = profiler.DefaultWorkers(workers)
	if workers <= 1 {
		return New(siteNames, maxLMADs)
	}
	o := omc.New(siteNames)
	scc := NewParallelSCC(maxLMADs, workers)
	return &Profiler{omc: o, scc: scc, cdc: profiler.NewCDC(o, scc)}
}

// Emit implements trace.Sink.
func (p *Profiler) Emit(e trace.Event) { p.cdc.Emit(e) }

// FromSource drains a streaming event source (a replayed trace file, say)
// through a parallel LEAP profiler and returns the finished profile. The
// profiler holds descriptors, never the event stream, so memory is bounded
// by the LMAD budget, not the trace.
func FromSource(workload string, src trace.Source, siteNames map[trace.SiteID]string, maxLMADs, workers int) (*Profile, error) {
	p := NewParallel(siteNames, maxLMADs, workers)
	if _, err := trace.Drain(src, p); err != nil {
		return nil, err
	}
	return p.Profile(workload), nil
}

// OMC exposes the profiler's object-management component.
func (p *Profiler) OMC() *omc.OMC { return p.omc }

// Footprint reports the pipeline's approximate live bytes (OMC + SCC).
// The parallel SCC does not account — governed runs are sequential — so
// it contributes zero.
func (p *Profiler) Footprint() int64 {
	n := p.omc.Footprint()
	if f, ok := p.scc.(interface{ Footprint() int64 }); ok {
		n += f.Footprint()
	}
	return n
}

// Profile finalizes collection and returns the profile.
func (p *Profiler) Profile(workload string) *Profile {
	p.cdc.Finish()
	return p.scc.BuildProfile(workload)
}

// SampleQuality reports the Table 1 quality pair: the fraction of all memory
// accesses captured by LMADs at the level of offsets inside objects (not
// including the timing information, per §4.2.3), and the fraction of
// instructions whose behaviour was completely captured (no stream of theirs
// overflowed).
func (p *Profile) SampleQuality() (accessesPct, instrsPct float64) {
	var offered, captured uint64
	incomplete := make(map[trace.InstrID]bool)
	for _, s := range p.Streams {
		offered += s.Offered
		captured += s.OffsetCaptured
		if s.OffsetOverflowed {
			incomplete[s.Key.Instr] = true
		}
	}
	if offered > 0 {
		accessesPct = 100 * float64(captured) / float64(offered)
	} else {
		accessesPct = 100
	}
	total := len(p.InstrExecs)
	if total > 0 {
		instrsPct = 100 * float64(total-len(incomplete)) / float64(total)
	} else {
		instrsPct = 100
	}
	return accessesPct, instrsPct
}

// CompressionRatio reports the Table 1 ratio of the raw fixed-width access
// trace size to the serialized LEAP profile size.
func (p *Profile) CompressionRatio() float64 {
	enc := p.EncodedSize()
	if enc == 0 {
		return 0
	}
	return float64(trace.RawBytes(p.Records)) / float64(enc)
}

// TotalLMADs reports the number of LMADs across all streams.
func (p *Profile) TotalLMADs() int {
	n := 0
	for _, s := range p.Streams {
		n += len(s.LMADs)
	}
	return n
}
