package leap

import (
	"ormprof/internal/lmad"
	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// StaticDescriptor is compile-time knowledge about one instruction's memory
// behaviour: "instruction Instr accesses the object(s) of group Group with
// this (object, offset) pattern, Count·Reps times". When the compiler can
// prove this (§6's future-work integration), the instruction's probes are
// elided at run time (trace.Elider) and the descriptor is injected into the
// collected profile afterwards, so downstream consumers see the same
// information at a fraction of the collection cost.
type StaticDescriptor struct {
	Instr        trace.InstrID
	Group        omc.GroupID
	Store        bool
	ObjectStart  int64
	ObjectStride int64
	OffsetStart  int64
	OffsetStride int64
	Count        uint32
	Reps         uint32
}

// InjectStatic adds statically derived descriptors to a collected profile.
// The injected streams carry no timing information (time strides are not
// statically known in general), so they serve the untimed consumers —
// stride detection and sample-quality accounting — and are marked fully
// captured.
func InjectStatic(p *Profile, descs ...StaticDescriptor) {
	for _, d := range descs {
		if d.Count == 0 || d.Reps == 0 {
			continue
		}
		points := uint64(d.Count) * uint64(d.Reps)
		k := StreamKey{Instr: d.Instr, Group: d.Group}
		s := p.Streams[k]
		if s == nil {
			s = &Stream{Key: k, Store: d.Store}
			p.Streams[k] = s
		}
		s.OffsetLMADs = append(s.OffsetLMADs, lmad.RepLMAD{
			LMAD: lmad.LMAD{
				Start:  []int64{d.ObjectStart, d.OffsetStart},
				Stride: []int64{d.ObjectStride, d.OffsetStride},
				Count:  d.Count,
			},
			Reps: d.Reps,
		})
		s.Offered += points
		s.OffsetCaptured += points
		p.Records += points
		p.InstrExecs[d.Instr] += points
		p.InstrStore[d.Instr] = d.Store
	}
}
