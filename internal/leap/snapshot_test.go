package leap

import (
	"math/rand"
	"reflect"
	"testing"

	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

func snapshotRecords(n int) []profiler.Record {
	rng := rand.New(rand.NewSource(5))
	recs := make([]profiler.Record, n)
	for i := range recs {
		instr := trace.InstrID(rng.Intn(6) + 1)
		var ref omc.Ref
		switch rng.Intn(3) {
		case 0: // linear sweep within one object
			ref = omc.Ref{Group: 1, Object: 0, Offset: uint64(i%64) * 8}
		case 1: // object-hopping
			ref = omc.Ref{Group: 2, Object: uint32(i % 5), Offset: uint64(i % 16)}
		default: // noise
			ref = omc.Ref{Group: omc.GroupID(rng.Intn(3) + 1), Object: uint32(rng.Intn(8)), Offset: uint64(rng.Intn(4096))}
		}
		recs[i] = profiler.Record{
			Instr: instr,
			Ref:   ref,
			Time:  trace.Time(i),
			Store: instr%2 == 0,
		}
	}
	return recs
}

// TestSCCSnapshotResumeExact: an SCC restored mid-stream and fed the rest of
// the records must build exactly the profile of an uninterrupted SCC.
func TestSCCSnapshotResumeExact(t *testing.T) {
	recs := snapshotRecords(5000)
	cuts := []int{0, 1, 10, len(recs) / 3, len(recs) / 2, len(recs) - 1, len(recs)}
	for _, cut := range cuts {
		full := NewSCC(8)
		for _, r := range recs {
			full.Consume(r)
		}

		s := NewSCC(8)
		for _, r := range recs[:cut] {
			s.Consume(r)
		}
		restored, err := SCCFromSnapshot(s.Snapshot())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, r := range recs[cut:] {
			restored.Consume(r)
		}

		if !reflect.DeepEqual(restored.Snapshot(), full.Snapshot()) {
			t.Errorf("cut %d: resumed SCC state differs from uninterrupted run", cut)
		}
		if !reflect.DeepEqual(restored.BuildProfile("w"), full.BuildProfile("w")) {
			t.Errorf("cut %d: resumed profile differs from uninterrupted run", cut)
		}
	}
}

// TestSCCFromSnapshotRejectsCorrupt: broken snapshots error, never panic.
func TestSCCFromSnapshotRejectsCorrupt(t *testing.T) {
	mk := func() *SCCSnapshot {
		s := NewSCC(8)
		for _, r := range snapshotRecords(500) {
			s.Consume(r)
		}
		return s.Snapshot()
	}
	cases := map[string]func(*SCCSnapshot){
		"dup stream":  func(s *SCCSnapshot) { s.Streams = append(s.Streams, s.Streams[0]) },
		"nil timed":   func(s *SCCSnapshot) { s.Streams[0].Timed = nil },
		"nil untimed": func(s *SCCSnapshot) { s.Streams[0].Untimed = nil },
		"timed dims":  func(s *SCCSnapshot) { s.Streams[0].Timed.Dims = 2 },
		"dup instr":   func(s *SCCSnapshot) { s.Instrs = append(s.Instrs, s.Instrs[0]) },
		"bad lmad":    func(s *SCCSnapshot) { s.Streams[0].Untimed.Active = 99 },
	}
	for name, corrupt := range cases {
		s := mk()
		corrupt(s)
		if _, err := SCCFromSnapshot(s); err == nil {
			t.Errorf("%s: SCCFromSnapshot accepted a corrupt snapshot", name)
		}
	}
}
