package leap

import (
	"strings"

	"ormprof/internal/lmad"
	"ormprof/internal/trace"
)

// Merge combines LEAP profiles from multiple runs of the same program into
// one aggregate profile. This is only meaningful because the profiles are
// object-relative: stream keys are (static instruction, allocation-site
// group), which are identical across runs no matter how the allocator laid
// memory out — a raw-address profile from run A cannot be combined with one
// from run B at all (§1).
//
// The merged profile is intended for the aggregate consumers — stride
// detection (descriptor histograms add) and sample-quality accounting
// (counters add). Dependence analysis must not be run on a merged profile,
// because descriptors from different runs do not share a timeline; merge
// dependence *results* instead (depend.MergeResults).
func Merge(profiles ...*Profile) *Profile {
	out := &Profile{
		Streams:    make(map[StreamKey]*Stream),
		InstrExecs: make(map[trace.InstrID]uint64),
		InstrStore: make(map[trace.InstrID]bool),
	}
	var names []string
	for _, p := range profiles {
		if p == nil {
			continue
		}
		names = append(names, p.Workload)
		out.Records += p.Records
		for id, n := range p.InstrExecs {
			out.InstrExecs[id] += n
		}
		for id, st := range p.InstrStore {
			out.InstrStore[id] = st
		}
		for k, s := range p.Streams {
			dst := out.Streams[k]
			if dst == nil {
				dst = &Stream{Key: k, Store: s.Store}
				out.Streams[k] = dst
			}
			dst.LMADs = append(dst.LMADs, s.LMADs...)
			dst.OffsetLMADs = append(dst.OffsetLMADs, s.OffsetLMADs...)
			dst.Overflowed = dst.Overflowed || s.Overflowed
			dst.OffsetOverflowed = dst.OffsetOverflowed || s.OffsetOverflowed
			dst.Offered += s.Offered
			dst.Captured += s.Captured
			dst.OffsetCaptured += s.OffsetCaptured
			mergeSummary(&dst.Summary, &s.Summary)
		}
	}
	out.Workload = strings.Join(dedup(names), "+")
	return out
}

func dedup(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func mergeSummary(dst, src *lmad.Summary) {
	if src.Min == nil {
		return
	}
	if dst.Min == nil {
		dst.Min = append([]int64(nil), src.Min...)
		dst.Max = append([]int64(nil), src.Max...)
		dst.Granularity = append([]int64(nil), src.Granularity...)
		dst.Points = src.Points
		return
	}
	for d := range dst.Min {
		if src.Min[d] < dst.Min[d] {
			dst.Min[d] = src.Min[d]
		}
		if src.Max[d] > dst.Max[d] {
			dst.Max[d] = src.Max[d]
		}
		dst.Granularity[d] = gcd64(dst.Granularity[d], src.Granularity[d])
	}
	dst.Points += src.Points
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
