package leap

import (
	"bytes"
	"reflect"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func collectParallelDemo(t *testing.T) (*trace.Buffer, map[trace.SiteID]string) {
	t.Helper()
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 7})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	return buf, m.StaticSites()
}

// TestParallelDeterminism is the parallel pipeline's determinism gate: the
// profile built with instruction-sharded workers must serialize
// byte-identically to the sequential profile for every worker count.
func TestParallelDeterminism(t *testing.T) {
	buf, sites := collectParallelDemo(t)

	seq := New(sites, 0)
	buf.Replay(seq)
	var seqBytes bytes.Buffer
	if _, err := seq.Profile("linkedlist").WriteTo(&seqBytes); err != nil {
		t.Fatalf("sequential WriteTo: %v", err)
	}

	for _, workers := range []int{1, 2, 8} {
		par := NewParallel(sites, 0, workers)
		buf.Replay(par)
		profile := par.Profile("linkedlist")
		var parBytes bytes.Buffer
		if _, err := profile.WriteTo(&parBytes); err != nil {
			t.Fatalf("workers=%d WriteTo: %v", workers, err)
		}
		if !bytes.Equal(seqBytes.Bytes(), parBytes.Bytes()) {
			t.Fatalf("workers=%d: profile differs from sequential (%d vs %d bytes)",
				workers, parBytes.Len(), seqBytes.Len())
		}
	}
}

// TestParallelProfileStructure checks the merged profile piecewise against
// the sequential one — sharper diagnostics than the byte-level gate when a
// merge bug slips in.
func TestParallelProfileStructure(t *testing.T) {
	buf, sites := collectParallelDemo(t)

	seq := New(sites, 0)
	buf.Replay(seq)
	sp := seq.Profile("linkedlist")

	par := NewParallel(sites, 0, 4)
	buf.Replay(par)
	pp := par.Profile("linkedlist")

	if pp.Records != sp.Records {
		t.Fatalf("records: parallel %d, sequential %d", pp.Records, sp.Records)
	}
	if !reflect.DeepEqual(pp.InstrExecs, sp.InstrExecs) {
		t.Fatalf("InstrExecs differ")
	}
	if !reflect.DeepEqual(pp.InstrStore, sp.InstrStore) {
		t.Fatalf("InstrStore differ")
	}
	if len(pp.Streams) != len(sp.Streams) {
		t.Fatalf("streams: parallel %d, sequential %d", len(pp.Streams), len(sp.Streams))
	}
	for _, k := range sp.Keys() {
		ps, ok := pp.Streams[k]
		if !ok {
			t.Fatalf("stream %v missing from parallel profile", k)
		}
		if !reflect.DeepEqual(ps, sp.Streams[k]) {
			t.Fatalf("stream %v differs:\nparallel:   %+v\nsequential: %+v", k, ps, sp.Streams[k])
		}
	}
}
