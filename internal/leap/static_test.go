package leap

import (
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// TestElisionPlusInjectionMatchesFullProfile: eliding a statically known
// strided instruction and injecting its descriptor must leave the untimed
// consumers (capture accounting, stride histograms) with the same view as
// full profiling, while processing far fewer events.
func TestElisionPlusInjectionMatchesFullProfile(t *testing.T) {
	build := func(sink trace.Sink) {
		m := memsim.New(sink)
		m.Start()
		arr := m.Alloc(1, 4096)
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 256; i++ {
				m.Load(1, arr+trace.Addr(i*16), 8) // statically known stride
				if i%4 == 0 {
					m.Load(2, arr+trace.Addr((i*37)%512*8), 8) // not static
				}
			}
		}
		m.Free(arr)
		m.End()
	}

	// Full profile.
	full := New(nil, 0)
	build(full)
	fullProfile := full.Profile("full")

	// Elided profile + injection.
	elided := New(nil, 0)
	el := trace.NewElider(map[trace.InstrID]bool{1: true}, elided)
	build(el)
	elidedProfile := elided.Profile("elided")

	dropped, kept := el.Stats()
	if dropped != 2560 {
		t.Fatalf("dropped = %d, want 2560", dropped)
	}
	if kept >= dropped {
		t.Fatalf("elision saved nothing: dropped %d, kept %d", dropped, kept)
	}

	// The "compiler" knows instruction 1's behaviour exactly.
	InjectStatic(elidedProfile, StaticDescriptor{
		Instr: 1, Group: 1,
		OffsetStride: 16, Count: 256, Reps: 10,
	})

	if elidedProfile.InstrExecs[1] != fullProfile.InstrExecs[1] {
		t.Errorf("instr 1 execs: %d vs %d", elidedProfile.InstrExecs[1], fullProfile.InstrExecs[1])
	}
	if elidedProfile.Records != fullProfile.Records {
		t.Errorf("records: %d vs %d", elidedProfile.Records, fullProfile.Records)
	}
	accFull, _ := fullProfile.SampleQuality()
	accElided, _ := elidedProfile.SampleQuality()
	if accElided < accFull-1 {
		t.Errorf("capture dropped: %.1f%% vs %.1f%%", accElided, accFull)
	}

	// Stride detection must see instruction 1 identically.
	k := StreamKey{Instr: 1, Group: omc.GroupID(1)}
	fs, es := fullProfile.Streams[k], elidedProfile.Streams[k]
	if fs == nil || es == nil {
		t.Fatal("stream missing")
	}
	var fullEvents, elidedEvents uint64
	for _, l := range fs.OffsetLMADs {
		fullEvents += uint64(l.Count-1) * uint64(l.Reps)
	}
	for _, l := range es.OffsetLMADs {
		elidedEvents += uint64(l.Count-1) * uint64(l.Reps)
	}
	if fullEvents != elidedEvents {
		t.Errorf("stride events: full %d, elided+injected %d", fullEvents, elidedEvents)
	}
}

func TestInjectStaticIgnoresEmpty(t *testing.T) {
	p := &Profile{
		Streams:    make(map[StreamKey]*Stream),
		InstrExecs: make(map[trace.InstrID]uint64),
		InstrStore: make(map[trace.InstrID]bool),
	}
	InjectStatic(p, StaticDescriptor{Instr: 1, Count: 0, Reps: 5})
	InjectStatic(p, StaticDescriptor{Instr: 1, Count: 5, Reps: 0})
	if len(p.Streams) != 0 || p.Records != 0 {
		t.Error("empty descriptors must be ignored")
	}
}
