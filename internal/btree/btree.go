// Package btree implements an in-memory B-tree map from uint64 keys to
// arbitrary values, with floor search.
//
// This is the paper's "auxiliary B-tree-like data structure which stores the
// range of addresses that each object takes up" (§3.1). The OMC keys the tree
// by object start address; translating a raw address is a Floor lookup
// (greatest start ≤ addr) followed by a bounds check, which works because
// live objects never overlap.
package btree

// degree is the minimum branching factor: every node other than the root has
// at least degree-1 and at most 2*degree-1 keys. 16 keeps nodes within a
// couple of cache lines of keys.
const degree = 16

const (
	minKeys = degree - 1
	maxKeys = 2*degree - 1
)

type node[V any] struct {
	keys     []uint64
	vals     []V
	children []*node[V] // nil for leaves
}

func (n *node[V]) leaf() bool { return n.children == nil }

// Map is a B-tree map. The zero value is an empty map ready for use.
type Map[V any] struct {
	root *node[V]
	size int
}

// Len reports the number of keys stored.
func (m *Map[V]) Len() int { return m.size }

// Get returns the value stored at key.
func (m *Map[V]) Get(key uint64) (V, bool) {
	n := m.root
	for n != nil {
		i, eq := search(n.keys, key)
		if eq {
			return n.vals[i], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Floor returns the greatest key ≤ key and its value. ok is false if no such
// key exists.
func (m *Map[V]) Floor(key uint64) (k uint64, v V, ok bool) {
	n := m.root
	for n != nil {
		i, eq := search(n.keys, key)
		if eq {
			return n.keys[i], n.vals[i], true
		}
		// keys[i-1] < key < keys[i]; the candidate at this node is i-1.
		if i > 0 {
			k, v, ok = n.keys[i-1], n.vals[i-1], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return k, v, ok
}

// search returns the index of the first key ≥ key, and whether it equals key.
func search(keys []uint64, key uint64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == key
}

// Set inserts or replaces the value at key.
func (m *Map[V]) Set(key uint64, val V) {
	if m.root == nil {
		m.root = &node[V]{keys: []uint64{key}, vals: []V{val}}
		m.size = 1
		return
	}
	if len(m.root.keys) == maxKeys {
		old := m.root
		m.root = &node[V]{children: []*node[V]{old}}
		m.root.splitChild(0)
	}
	if m.root.insert(key, val) {
		m.size++
	}
}

// insert inserts into a non-full subtree; reports whether a new key was added
// (false means an existing key's value was replaced).
func (n *node[V]) insert(key uint64, val V) bool {
	i, eq := search(n.keys, key)
	if eq {
		n.vals[i] = val
		return false
	}
	if n.leaf() {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return true
	}
	if len(n.children[i].keys) == maxKeys {
		n.splitChild(i)
		if key == n.keys[i] {
			n.vals[i] = val
			return false
		}
		if key > n.keys[i] {
			i++
		}
	}
	return n.children[i].insert(key, val)
}

// splitChild splits the full child at index i, hoisting its median into n.
func (n *node[V]) splitChild(i int) {
	child := n.children[i]
	mid := maxKeys / 2
	medianK, medianV := child.keys[mid], child.vals[mid]

	right := &node[V]{
		keys: append([]uint64(nil), child.keys[mid+1:]...),
		vals: append([]V(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*node[V](nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = medianK
	var zero V
	n.vals = append(n.vals, zero)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = medianV
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key uint64) bool {
	if m.root == nil {
		return false
	}
	deleted := m.root.delete(key)
	if len(m.root.keys) == 0 {
		if m.root.leaf() {
			m.root = nil
		} else {
			m.root = m.root.children[0]
		}
	}
	if deleted {
		m.size--
	}
	return deleted
}

// delete removes key from the subtree rooted at n. Precondition (except for
// the root): n has more than minKeys keys.
func (n *node[V]) delete(key uint64) bool {
	i, eq := search(n.keys, key)
	if n.leaf() {
		if !eq {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	if eq {
		// Replace with predecessor (max of left child) or successor, or
		// merge if both children are minimal.
		left, right := n.children[i], n.children[i+1]
		switch {
		case len(left.keys) > minKeys:
			pk, pv := left.max()
			n.keys[i], n.vals[i] = pk, pv
			n.ensureChild(i)
			return n.children[i].delete(pk)
		case len(right.keys) > minKeys:
			sk, sv := right.min()
			n.keys[i], n.vals[i] = sk, sv
			n.ensureChild(i + 1)
			return n.children[i+1].delete(sk)
		default:
			n.merge(i)
			return n.children[i].delete(key)
		}
	}
	n.ensureChild(i)
	// ensureChild may have merged, shifting indices; re-search.
	i, eq = search(n.keys, key)
	if eq {
		return n.delete(key)
	}
	return n.children[i].delete(key)
}

// max returns the maximum key/value in the subtree.
func (n *node[V]) max() (uint64, V) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

// min returns the minimum key/value in the subtree.
func (n *node[V]) min() (uint64, V) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

// ensureChild guarantees children[i] has more than minKeys keys, borrowing
// from a sibling or merging as needed.
func (n *node[V]) ensureChild(i int) {
	if len(n.children[i].keys) > minKeys {
		return
	}
	switch {
	case i > 0 && len(n.children[i-1].keys) > minKeys:
		n.rotateRight(i - 1)
	case i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys:
		n.rotateLeft(i)
	case i > 0:
		n.merge(i - 1)
	default:
		n.merge(i)
	}
}

// rotateRight moves the max of children[i] up to n and n's key i down to
// children[i+1].
func (n *node[V]) rotateRight(i int) {
	left, right := n.children[i], n.children[i+1]
	right.keys = append(right.keys, 0)
	copy(right.keys[1:], right.keys)
	right.keys[0] = n.keys[i]
	var zero V
	right.vals = append(right.vals, zero)
	copy(right.vals[1:], right.vals)
	right.vals[0] = n.vals[i]
	n.keys[i] = left.keys[len(left.keys)-1]
	n.vals[i] = left.vals[len(left.vals)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.vals = left.vals[:len(left.vals)-1]
	if !left.leaf() {
		right.children = append(right.children, nil)
		copy(right.children[1:], right.children)
		right.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
	}
}

// rotateLeft moves the min of children[i+1] up to n and n's key i down to
// children[i].
func (n *node[V]) rotateLeft(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	right.vals = append(right.vals[:0], right.vals[1:]...)
	if !left.leaf() {
		left.children = append(left.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// merge folds key i and children[i+1] into children[i].
func (n *node[V]) merge(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend visits every (key, value) pair in ascending key order. The visitor
// returns false to stop early.
func (m *Map[V]) Ascend(visit func(key uint64, val V) bool) {
	m.root.ascend(visit)
}

func (n *node[V]) ascend(visit func(uint64, V) bool) bool {
	if n == nil {
		return true
	}
	for i, k := range n.keys {
		if !n.leaf() && !n.children[i].ascend(visit) {
			return false
		}
		if !visit(k, n.vals[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(visit)
	}
	return true
}

// CheckInvariants panics with a description of the first violated B-tree
// invariant, or returns nil. Used by property tests.
func (m *Map[V]) CheckInvariants() error {
	if m.root == nil {
		return nil
	}
	return m.root.check(true, nil, nil, m.depth())
}

func (m *Map[V]) depth() int {
	d := 0
	for n := m.root; n != nil; {
		d++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return d
}

type invariantError struct{ msg string }

func (e *invariantError) Error() string { return "btree: " + e.msg }

func (n *node[V]) check(isRoot bool, lo, hi *uint64, depthLeft int) error {
	if len(n.keys) != len(n.vals) {
		return &invariantError{"keys/vals length mismatch"}
	}
	if !isRoot && len(n.keys) < minKeys {
		return &invariantError{"underfull node"}
	}
	if len(n.keys) > maxKeys {
		return &invariantError{"overfull node"}
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return &invariantError{"keys not strictly ascending"}
		}
	}
	if lo != nil && len(n.keys) > 0 && n.keys[0] <= *lo {
		return &invariantError{"key below subtree lower bound"}
	}
	if hi != nil && len(n.keys) > 0 && n.keys[len(n.keys)-1] >= *hi {
		return &invariantError{"key above subtree upper bound"}
	}
	if n.leaf() {
		if depthLeft != 1 {
			return &invariantError{"leaves at different depths"}
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return &invariantError{"children count != keys+1"}
	}
	for i, c := range n.children {
		var clo, chi *uint64
		if i > 0 {
			clo = &n.keys[i-1]
		} else {
			clo = lo
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		} else {
			chi = hi
		}
		if err := c.check(false, clo, chi, depthLeft-1); err != nil {
			return err
		}
	}
	return nil
}
