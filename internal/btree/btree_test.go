package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var m Map[int]
	if m.Len() != 0 {
		t.Error("empty map has nonzero length")
	}
	if _, ok := m.Get(1); ok {
		t.Error("Get on empty map returned ok")
	}
	if _, _, ok := m.Floor(1); ok {
		t.Error("Floor on empty map returned ok")
	}
	if m.Delete(1) {
		t.Error("Delete on empty map returned true")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetGetOverwrite(t *testing.T) {
	var m Map[string]
	m.Set(5, "a")
	m.Set(5, "b")
	if m.Len() != 1 {
		t.Errorf("Len = %d after overwrite", m.Len())
	}
	if v, ok := m.Get(5); !ok || v != "b" {
		t.Errorf("Get = %q, %v", v, ok)
	}
}

func TestFloorSemantics(t *testing.T) {
	var m Map[int]
	for _, k := range []uint64{10, 20, 30} {
		m.Set(k, int(k))
	}
	cases := []struct {
		q    uint64
		want uint64
		ok   bool
	}{
		{9, 0, false},
		{10, 10, true},
		{15, 10, true},
		{20, 20, true},
		{29, 20, true},
		{35, 30, true},
		{^uint64(0), 30, true},
	}
	for _, c := range cases {
		k, v, ok := m.Floor(c.q)
		if ok != c.ok || (ok && (k != c.want || v != int(c.want))) {
			t.Errorf("Floor(%d) = (%d, %d, %v), want (%d, _, %v)", c.q, k, v, ok, c.want, c.ok)
		}
	}
}

// model-based test: the B-tree must match a reference map under random
// operations, and invariants must hold throughout.
func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Map[uint64]
	model := make(map[uint64]uint64)

	floorOf := func(q uint64) (uint64, bool) {
		var best uint64
		found := false
		for k := range model {
			if k <= q && (!found || k > best) {
				best, found = k, true
			}
		}
		return best, found
	}

	for op := 0; op < 30000; op++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(4) {
		case 0, 1: // set
			m.Set(k, k*10)
			model[k] = k * 10
		case 2: // delete
			want := false
			if _, ok := model[k]; ok {
				want = true
				delete(model, k)
			}
			if got := m.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
		case 3: // lookup + floor
			v, ok := m.Get(k)
			mv, mok := model[k]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", op, k, v, ok, mv, mok)
			}
			fk, fv, fok := m.Floor(k)
			wantK, wantOK := floorOf(k)
			if fok != wantOK || (fok && (fk != wantK || fv != model[wantK])) {
				t.Fatalf("op %d: Floor(%d) = (%d, %d, %v), want key %d ok %v", op, k, fk, fv, fok, wantK, wantOK)
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, m.Len(), len(model))
		}
		if op%500 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	var m Map[int]
	perm := rand.New(rand.NewSource(2)).Perm(500)
	for _, k := range perm {
		m.Set(uint64(k), k)
	}
	var keys []uint64
	m.Ascend(func(k uint64, v int) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 500 {
		t.Fatalf("Ascend visited %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Ascend out of order")
		}
	}
	count := 0
	m.Ascend(func(uint64, int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestDeleteDrainsToEmpty(t *testing.T) {
	var m Map[int]
	const n = 2000
	for i := 0; i < n; i++ {
		m.Set(uint64(i), i)
	}
	for i := n - 1; i >= 0; i-- {
		if !m.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if i%100 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("after Delete(%d): %v", i, err)
			}
		}
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after draining", m.Len())
	}
}

func TestQuickSetGetDelete(t *testing.T) {
	f := func(keys []uint16) bool {
		var m Map[uint64]
		for _, k := range keys {
			m.Set(uint64(k), uint64(k)+1)
		}
		for _, k := range keys {
			if v, ok := m.Get(uint64(k)); !ok || v != uint64(k)+1 {
				return false
			}
		}
		if err := m.CheckInvariants(); err != nil {
			return false
		}
		for _, k := range keys {
			m.Delete(uint64(k))
		}
		return m.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 1<<14)
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m Map[int]
		for _, k := range keys {
			m.Set(k, 1)
		}
	}
}

func BenchmarkFloor(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var m Map[int]
	for i := 0; i < 1<<14; i++ {
		m.Set(rng.Uint64()>>16, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Floor(rng.Uint64() >> 16)
	}
}
