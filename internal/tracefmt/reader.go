package tracefmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ormprof/internal/trace"
)

// Reader streams events out of a trace file. It implements trace.Source:
// profilers pull events one at a time while the reader holds only the
// current frame in memory, so replaying an arbitrarily long trace costs
// O(batch) memory, never O(trace).
//
// Every decode error wraps ErrBadTrace. The reader is deliberately
// paranoid — lengths and counts are bounded before any allocation, so a
// corrupt or hostile file produces an error, never a panic or an
// unbounded allocation (see FuzzReader).
type Reader struct {
	br    *bufio.Reader
	name  string
	sites map[trace.SiteID]string

	payload []byte // current frame payload (reused between frames)
	off     int    // decode offset into payload
	left    int    // records remaining in the current frame

	lastAddr trace.Addr
	lastTime trace.Time

	events int64
	err    error
}

// NewReader parses the trace header of r and returns a Reader positioned
// at the first event.
func NewReader(r io.Reader) (*Reader, error) {
	t := &Reader{br: bufio.NewReader(r)}
	if err := t.readHeader(); err != nil {
		return nil, err
	}
	return t, nil
}

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadTrace, fmt.Sprintf(format, args...))
}

func (t *Reader) readHeader() error {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(t.br, magic); err != nil {
		return badf("header: %v", err)
	}
	if string(magic) != Magic {
		return badf("bad magic %q", magic)
	}
	ver, err := t.br.ReadByte()
	if err != nil {
		return badf("version: %v", err)
	}
	if ver != Version {
		return badf("unsupported version %d (want %d)", ver, Version)
	}
	if t.name, err = t.readString(MaxNameLen); err != nil {
		return fmt.Errorf("%w (workload name)", err)
	}
	nSites, err := binary.ReadUvarint(t.br)
	if err != nil {
		return badf("site count: %v", err)
	}
	if nSites > MaxSites {
		return badf("unreasonable site count %d", nSites)
	}
	if nSites > 0 {
		t.sites = make(map[trace.SiteID]string, nSites)
	}
	for i := uint64(0); i < nSites; i++ {
		id, err := binary.ReadUvarint(t.br)
		if err != nil {
			return badf("site id: %v", err)
		}
		if id > uint64(^trace.SiteID(0)) {
			return badf("site id %d overflows SiteID", id)
		}
		name, err := t.readString(MaxNameLen)
		if err != nil {
			return fmt.Errorf("%w (site name)", err)
		}
		t.sites[trace.SiteID(id)] = name
	}
	return nil
}

func (t *Reader) readString(maxLen uint64) (string, error) {
	n, err := binary.ReadUvarint(t.br)
	if err != nil {
		return "", badf("string length: %v", err)
	}
	if n > maxLen {
		return "", badf("string length %d exceeds limit %d", n, maxLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.br, buf); err != nil {
		return "", badf("string body: %v", err)
	}
	return string(buf), nil
}

// Name returns the workload name recorded in the header ("" if none).
func (t *Reader) Name() string { return t.name }

// Sites returns the static allocation-site name table from the header.
// The map may be nil; the caller must not modify it.
func (t *Reader) Sites() map[trace.SiteID]string { return t.sites }

// Events reports how many events have been decoded so far.
func (t *Reader) Events() int64 { return t.events }

// nextFrame loads and validates the next frame. Returns io.EOF on a clean
// end of trace.
func (t *Reader) nextFrame() error {
	pl, err := binary.ReadUvarint(t.br)
	if err == io.EOF {
		return io.EOF // clean end: trace ends on a frame boundary
	}
	if err != nil {
		return badf("frame length: %v", err)
	}
	if pl == 0 || pl > MaxFramePayload {
		return badf("frame payload %d outside (0, %d]", pl, MaxFramePayload)
	}
	if uint64(cap(t.payload)) < pl {
		t.payload = make([]byte, pl)
	}
	t.payload = t.payload[:pl]
	if _, err := io.ReadFull(t.br, t.payload); err != nil {
		return badf("frame body: %v", err)
	}
	t.off = 0
	cnt, err := t.uvarint()
	if err != nil {
		return badf("record count: %v", err)
	}
	// Every record costs at least 3 payload bytes (kind + Δtime + Δaddr),
	// so a count beyond the payload length is corrupt, not just large.
	if cnt == 0 || cnt > pl {
		return badf("record count %d impossible for %d-byte frame", cnt, pl)
	}
	t.left = int(cnt)
	t.lastAddr = 0
	t.lastTime = 0
	return nil
}

// uvarint decodes from the current frame payload.
func (t *Reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(t.payload[t.off:])
	if n <= 0 {
		return 0, badf("truncated or oversized uvarint in frame")
	}
	t.off += n
	return v, nil
}

func (t *Reader) varint() (int64, error) {
	v, n := binary.Varint(t.payload[t.off:])
	if n <= 0 {
		return 0, badf("truncated or oversized varint in frame")
	}
	t.off += n
	return v, nil
}

// Next implements trace.Source: decode the next event, loading the next
// frame when the current one is exhausted. Returns io.EOF at a clean end
// of trace, or an ErrBadTrace-wrapped error on corruption.
func (t *Reader) Next() (trace.Event, error) {
	if t.err != nil {
		return trace.Event{}, t.err
	}
	e, err := t.next()
	if err != nil {
		t.err = err // sticky: a broken stream stays broken
		return trace.Event{}, err
	}
	t.events++
	return e, nil
}

func (t *Reader) next() (trace.Event, error) {
	if t.left == 0 {
		if err := t.nextFrame(); err != nil {
			return trace.Event{}, err
		}
	}
	if t.off >= len(t.payload) {
		return trace.Event{}, badf("frame ends after %d of %d records", t.events, t.left)
	}
	kindByte := t.payload[t.off]
	t.off++
	store := kindByte&storeFlag != 0
	kind := trace.EventKind(kindByte &^ storeFlag)

	dt, err := t.varint()
	if err != nil {
		return trace.Event{}, err
	}
	t.lastTime += trace.Time(dt)

	var e trace.Event
	switch kind {
	case trace.EvAccess:
		instr, err := t.uvarint()
		if err != nil {
			return trace.Event{}, err
		}
		if instr > uint64(^trace.InstrID(0)) {
			return trace.Event{}, badf("instruction id %d overflows InstrID", instr)
		}
		da, err := t.varint()
		if err != nil {
			return trace.Event{}, err
		}
		size, err := t.uvarint()
		if err != nil {
			return trace.Event{}, err
		}
		if size > uint64(^uint32(0)) {
			return trace.Event{}, badf("access size %d overflows uint32", size)
		}
		t.lastAddr += trace.Addr(da)
		e = trace.Event{Kind: trace.EvAccess, Time: t.lastTime, Instr: trace.InstrID(instr),
			Addr: t.lastAddr, Size: uint32(size), Store: store}
	case trace.EvAlloc:
		if store {
			return trace.Event{}, badf("store flag on alloc event")
		}
		site, err := t.uvarint()
		if err != nil {
			return trace.Event{}, err
		}
		if site > uint64(^trace.SiteID(0)) {
			return trace.Event{}, badf("site id %d overflows SiteID", site)
		}
		da, err := t.varint()
		if err != nil {
			return trace.Event{}, err
		}
		size, err := t.uvarint()
		if err != nil {
			return trace.Event{}, badf("alloc size: %v", err)
		}
		if size > uint64(^uint32(0)) {
			return trace.Event{}, badf("alloc size %d overflows uint32", size)
		}
		t.lastAddr += trace.Addr(da)
		e = trace.Event{Kind: trace.EvAlloc, Time: t.lastTime, Site: trace.SiteID(site),
			Addr: t.lastAddr, Size: uint32(size)}
	case trace.EvFree:
		if store {
			return trace.Event{}, badf("store flag on free event")
		}
		da, err := t.varint()
		if err != nil {
			return trace.Event{}, err
		}
		t.lastAddr += trace.Addr(da)
		e = trace.Event{Kind: trace.EvFree, Time: t.lastTime, Addr: t.lastAddr}
	default:
		return trace.Event{}, badf("unknown event kind %d", kindByte)
	}
	t.left--
	if t.left == 0 && t.off != len(t.payload) {
		return trace.Event{}, badf("%d trailing bytes after last record of frame", len(t.payload)-t.off)
	}
	return e, nil
}

// Replay decodes a whole trace from r into sink, returning the event count
// and the header metadata. It is the push-style convenience over Reader.
func Replay(r io.Reader, sink trace.Sink) (int, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	return trace.Drain(tr, sink)
}
