package tracefmt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ormprof/internal/trace"
)

// Reader streams events out of a trace file. It implements trace.Source:
// profilers pull events one at a time while the reader holds only the
// current frame in memory, so replaying an arbitrarily long trace costs
// O(batch) memory, never O(trace).
//
// Every decode error wraps ErrBadTrace. The reader is deliberately
// paranoid — lengths and counts are bounded before any allocation, so a
// corrupt or hostile file produces an error, never a panic or an
// unbounded allocation (see FuzzReader).
//
// The reader has two fault policies:
//
//   - strict (the default): the first corrupt, truncated, or
//     checksum-failed frame is fatal. The error is sticky; no further
//     events are delivered.
//   - lenient (WithLenient): a damaged frame is abandoned and the reader
//     resynchronizes to the next valid frame boundary — for v3 traces by
//     scanning for the frame sync marker and verifying the CRC32C, for
//     legacy v2 traces by a structural scan that fully decodes each
//     candidate frame. Events keep flowing; only the damaged frame's
//     records are lost. Skips are accounted in Stats, and once the input
//     is exhausted Next returns a *CorruptionError (instead of io.EOF)
//     summarizing the damage — the salvage signal consumed by
//     trace.DrainSalvage and the tools' -lenient mode.
//
// Header damage is fatal in both modes: without the version byte and the
// site table there is no way to interpret, or correctly label, whatever
// frames might follow.
type Reader struct {
	br    *bufio.Reader
	name  string
	sites map[trace.SiteID]string
	ver   byte

	lenient  bool
	stats    Stats
	firstErr error

	cur     frameDecoder
	inFrame bool
	payload []byte // current frame payload (reused between frames)

	pend    []byte // lenient mode: buffered input awaiting frame validation
	pendOff int

	scratch [8]byte // frame magic + checksum reads (avoids per-frame allocs)

	err error
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// WithLenient selects the lenient fault policy: resynchronize past damaged
// frames instead of failing on the first one. See the Reader documentation
// for the exact semantics.
func WithLenient() ReaderOption {
	return func(t *Reader) { t.lenient = true }
}

// NewReader parses the trace header of r and returns a Reader positioned
// at the first event.
func NewReader(r io.Reader, opts ...ReaderOption) (*Reader, error) {
	t := &Reader{br: bufio.NewReader(r)}
	for _, o := range opts {
		o(t)
	}
	if err := t.readHeader(); err != nil {
		return nil, err
	}
	return t, nil
}

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadTrace, fmt.Sprintf(format, args...))
}

func (t *Reader) readHeader() error {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(t.br, magic); err != nil {
		return badf("header: %v", err)
	}
	if string(magic) != Magic {
		return badf("bad magic %q", magic)
	}
	ver, err := t.br.ReadByte()
	if err != nil {
		return badf("version: %v", err)
	}
	if ver != Version && ver != VersionNoChecksum {
		return badf("unsupported version %d (want %d)", ver, Version)
	}
	t.ver = ver
	t.stats.Version = int(ver)
	if t.name, err = t.readString(MaxNameLen); err != nil {
		return fmt.Errorf("%w (workload name)", err)
	}
	nSites, err := binary.ReadUvarint(t.br)
	if err != nil {
		return badf("site count: %v", err)
	}
	if nSites > MaxSites {
		return badf("unreasonable site count %d", nSites)
	}
	if nSites > 0 {
		t.sites = make(map[trace.SiteID]string, nSites)
	}
	for i := uint64(0); i < nSites; i++ {
		id, err := binary.ReadUvarint(t.br)
		if err != nil {
			return badf("site id: %v", err)
		}
		if id > uint64(^trace.SiteID(0)) {
			return badf("site id %d overflows SiteID", id)
		}
		name, err := t.readString(MaxNameLen)
		if err != nil {
			return fmt.Errorf("%w (site name)", err)
		}
		t.sites[trace.SiteID(id)] = name
	}
	return nil
}

func (t *Reader) readString(maxLen uint64) (string, error) {
	n, err := binary.ReadUvarint(t.br)
	if err != nil {
		return "", badf("string length: %v", err)
	}
	if n > maxLen {
		return "", badf("string length %d exceeds limit %d", n, maxLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.br, buf); err != nil {
		return "", badf("string body: %v", err)
	}
	return string(buf), nil
}

// Name returns the workload name recorded in the header ("" if none).
func (t *Reader) Name() string { return t.name }

// Sites returns the static allocation-site name table from the header.
// The map may be nil; the caller must not modify it.
func (t *Reader) Sites() map[trace.SiteID]string { return t.sites }

// Events reports how many events have been decoded so far.
func (t *Reader) Events() int64 { return t.stats.Events }

// Version reports the format version of the trace being read (2 or 3).
func (t *Reader) Version() int { return int(t.ver) }

// Stats returns the reader's delivery and damage accounting so far. In
// strict mode the skip counters are always zero.
func (t *Reader) Stats() Stats { return t.stats }

// frameDecoder decodes the records of one self-contained frame payload.
// Frames reset the delta baselines to 0, so a decoder needs nothing beyond
// the payload bytes — which is what lets the lenient reader validate a
// candidate frame found mid-scan before committing to it.
type frameDecoder struct {
	payload  []byte
	off      int
	left     int
	total    int
	lastAddr trace.Addr
	lastTime trace.Time
}

// start parses and bounds the record count, resetting the delta baselines.
func (d *frameDecoder) start(payload []byte) error {
	d.payload = payload
	d.off = 0
	d.lastAddr = 0
	d.lastTime = 0
	cnt, err := d.uvarint()
	if err != nil {
		return badf("record count: %v", err)
	}
	// Every record costs at least 3 payload bytes (kind + Δtime + Δaddr),
	// so a count beyond the payload length is corrupt, not just large.
	if cnt == 0 || cnt > uint64(len(payload)) {
		return badf("record count %d impossible for %d-byte frame", cnt, len(payload))
	}
	d.left = int(cnt)
	d.total = int(cnt)
	return nil
}

// uvarint decodes from the current frame payload.
func (d *frameDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.payload[d.off:])
	if n <= 0 {
		return 0, badf("truncated or oversized uvarint in frame")
	}
	d.off += n
	return v, nil
}

func (d *frameDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.payload[d.off:])
	if n <= 0 {
		return 0, badf("truncated or oversized varint in frame")
	}
	d.off += n
	return v, nil
}

// next decodes one record. delivered is the reader's running event count,
// used only to label truncation errors.
func (d *frameDecoder) next(delivered int64) (trace.Event, error) {
	if d.off >= len(d.payload) {
		return trace.Event{}, badf("frame ends after %d of %d records", delivered, d.left)
	}
	kindByte := d.payload[d.off]
	d.off++
	store := kindByte&storeFlag != 0
	kind := trace.EventKind(kindByte &^ storeFlag)

	dt, err := d.varint()
	if err != nil {
		return trace.Event{}, err
	}
	d.lastTime += trace.Time(dt)

	var e trace.Event
	switch kind {
	case trace.EvAccess:
		instr, err := d.uvarint()
		if err != nil {
			return trace.Event{}, err
		}
		if instr > uint64(^trace.InstrID(0)) {
			return trace.Event{}, badf("instruction id %d overflows InstrID", instr)
		}
		da, err := d.varint()
		if err != nil {
			return trace.Event{}, err
		}
		size, err := d.uvarint()
		if err != nil {
			return trace.Event{}, err
		}
		if size > uint64(^uint32(0)) {
			return trace.Event{}, badf("access size %d overflows uint32", size)
		}
		d.lastAddr += trace.Addr(da)
		e = trace.Event{Kind: trace.EvAccess, Time: d.lastTime, Instr: trace.InstrID(instr),
			Addr: d.lastAddr, Size: uint32(size), Store: store}
	case trace.EvAlloc:
		if store {
			return trace.Event{}, badf("store flag on alloc event")
		}
		site, err := d.uvarint()
		if err != nil {
			return trace.Event{}, err
		}
		if site > uint64(^trace.SiteID(0)) {
			return trace.Event{}, badf("site id %d overflows SiteID", site)
		}
		da, err := d.varint()
		if err != nil {
			return trace.Event{}, err
		}
		size, err := d.uvarint()
		if err != nil {
			return trace.Event{}, badf("alloc size: %v", err)
		}
		if size > uint64(^uint32(0)) {
			return trace.Event{}, badf("alloc size %d overflows uint32", size)
		}
		d.lastAddr += trace.Addr(da)
		e = trace.Event{Kind: trace.EvAlloc, Time: d.lastTime, Site: trace.SiteID(site),
			Addr: d.lastAddr, Size: uint32(size)}
	case trace.EvFree:
		if store {
			return trace.Event{}, badf("store flag on free event")
		}
		da, err := d.varint()
		if err != nil {
			return trace.Event{}, err
		}
		d.lastAddr += trace.Addr(da)
		e = trace.Event{Kind: trace.EvFree, Time: d.lastTime, Addr: d.lastAddr}
	default:
		return trace.Event{}, badf("unknown event kind %d", kindByte)
	}
	d.left--
	if d.left == 0 && d.off != len(d.payload) {
		return trace.Event{}, badf("%d trailing bytes after last record of frame", len(d.payload)-d.off)
	}
	return e, nil
}

// grow returns buf resized to n bytes, reallocating only when needed.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// Next implements trace.Source: decode the next event, loading the next
// frame when the current one is exhausted. Returns io.EOF at a clean end
// of trace. In strict mode any corruption surfaces immediately as an
// ErrBadTrace-wrapped error; in lenient mode corruption is skipped and the
// end of input surfaces as a *CorruptionError if anything was lost.
// Terminal errors are sticky.
func (t *Reader) Next() (trace.Event, error) {
	if t.err != nil {
		return trace.Event{}, t.err
	}
	e, err := t.next()
	if err != nil {
		t.err = err // sticky: a broken (or exhausted) stream stays that way
		return trace.Event{}, err
	}
	t.stats.Events++
	return e, nil
}

func (t *Reader) next() (trace.Event, error) {
	for {
		if !t.inFrame {
			if err := t.nextFrame(); err != nil {
				return trace.Event{}, err
			}
		}
		e, err := t.cur.next(t.stats.Events)
		if err == nil {
			if t.cur.left == 0 {
				t.inFrame = false
			}
			return e, nil
		}
		if !t.lenient {
			return trace.Event{}, err
		}
		// Lenient: a frame that validated still failed to decode — only
		// possible for checksum-less v2 traces raced mid-scan or a forged
		// v3 checksum. Abandon the rest of the frame and resynchronize.
		t.recordCorruption(err, int64(t.cur.left))
		t.stats.SkippedFrames++
		t.inFrame = false
	}
}

func (t *Reader) recordCorruption(err error, lostEvents int64) {
	t.stats.Corruptions++
	t.stats.SkippedEvents += lostEvents
	if t.firstErr == nil {
		t.firstErr = err
	}
}

func (t *Reader) nextFrame() error {
	if t.lenient {
		return t.lenientNextFrame()
	}
	if t.ver == VersionNoChecksum {
		return t.strictNextFrameV2()
	}
	return t.strictNextFrameV3()
}

// strictNextFrameV2 loads and validates the next checksum-less legacy
// frame. Returns io.EOF on a clean end of trace.
func (t *Reader) strictNextFrameV2() error {
	pl, err := binary.ReadUvarint(t.br)
	if err == io.EOF {
		return io.EOF // clean end: trace ends on a frame boundary
	}
	if err != nil {
		return badf("frame length: %v", err)
	}
	if pl == 0 || pl > MaxFramePayload {
		return badf("frame payload %d outside (0, %d]", pl, MaxFramePayload)
	}
	t.payload = grow(t.payload, int(pl))
	if _, err := io.ReadFull(t.br, t.payload); err != nil {
		return badf("frame body: %v", err)
	}
	if err := t.cur.start(t.payload); err != nil {
		return err
	}
	t.inFrame = true
	t.stats.Frames++
	return nil
}

// strictNextFrameV3 loads the next checksummed frame: sync marker, payload
// length, CRC32C, payload. Returns io.EOF on a clean end of trace.
func (t *Reader) strictNextFrameV3() error {
	magic := t.scratch[:len(FrameMagic)]
	if _, err := io.ReadFull(t.br, magic); err != nil {
		if err == io.EOF {
			return io.EOF // clean end: trace ends on a frame boundary
		}
		return badf("frame magic: %v", err)
	}
	if string(magic) != FrameMagic {
		return badf("bad frame magic %x", magic)
	}
	pl, err := binary.ReadUvarint(t.br)
	if err != nil {
		return badf("frame length: %v", err)
	}
	if pl == 0 || pl > MaxFramePayload {
		return badf("frame payload %d outside (0, %d]", pl, MaxFramePayload)
	}
	crcBuf := t.scratch[4:8]
	if _, err := io.ReadFull(t.br, crcBuf); err != nil {
		return badf("frame checksum: %v", err)
	}
	t.payload = grow(t.payload, int(pl))
	if _, err := io.ReadFull(t.br, t.payload); err != nil {
		return badf("frame body: %v", err)
	}
	want := binary.LittleEndian.Uint32(crcBuf)
	if got := crc32.Checksum(t.payload, crcTable); got != want {
		return badf("frame checksum mismatch: payload %08x, header %08x", got, want)
	}
	if err := t.cur.start(t.payload); err != nil {
		return err
	}
	t.inFrame = true
	t.stats.Frames++
	return nil
}

// fillChunk is how much input the lenient reader pulls per refill while
// validating or scanning.
const fillChunk = 64 << 10

// errNeedMore signals that the buffered window is too short to decide
// whether a frame starts at the current offset.
var errNeedMore = errors.New("tracefmt: need more data")

// fill grows the lenient read-ahead buffer, compacting consumed bytes
// first. io.EOF means the underlying stream is exhausted.
func (t *Reader) fill() error {
	if t.pendOff > 0 {
		n := copy(t.pend, t.pend[t.pendOff:])
		t.pend = t.pend[:n]
		t.pendOff = 0
	}
	start := len(t.pend)
	t.pend = append(t.pend, make([]byte, fillChunk)...)
	n, err := t.br.Read(t.pend[start:])
	t.pend = t.pend[:start+n]
	if n > 0 {
		return nil
	}
	if err == nil || err == io.EOF {
		return io.EOF
	}
	return err
}

// lenientNextFrame acquires the next valid frame, skipping damage. All
// input flows through the pend buffer so that a frame mis-parse (a corrupt
// length field claiming megabytes, say) never consumes bytes that a later
// scan could still recognize as real frames.
func (t *Reader) lenientNextFrame() error {
	scanning := false
	for {
		lost, err := t.tryFrame()
		if err == nil {
			return nil
		}
		if err == errNeedMore {
			ferr := t.fill()
			if ferr == nil {
				continue
			}
			if ferr != io.EOF {
				return ferr // a real I/O error, not trace damage
			}
			// Input exhausted: whatever remains cannot form a frame.
			rem := int64(len(t.pend) - t.pendOff)
			if rem > 0 && !scanning {
				t.recordCorruption(badf("truncated frame at end of trace"), lost)
				t.stats.SkippedFrames++
			}
			t.stats.SkippedBytes += rem
			t.pendOff = len(t.pend)
			return t.endOfTrace()
		}
		// No valid frame starts here. The first failure at an expected
		// frame boundary is the corruption incident; subsequent failures
		// are just the scan walking over garbage.
		if !scanning {
			scanning = true
			t.recordCorruption(err, lost)
			t.stats.SkippedFrames++
		}
		t.skipForward()
	}
}

func (t *Reader) endOfTrace() error {
	if t.stats.Damaged() {
		return &CorruptionError{Stats: t.stats, First: t.firstErr}
	}
	return io.EOF
}

// tryFrame attempts to parse one complete frame at the current buffer
// offset, consuming it on success. It returns errNeedMore when the window
// must grow, or the decode error when no valid frame starts here — along
// with a best-effort count of the events the failed frame claimed to hold
// (0 when the count itself is unreadable).
func (t *Reader) tryFrame() (int64, error) {
	w := t.pend[t.pendOff:]
	if t.ver == VersionNoChecksum {
		return t.tryFrameV2(w)
	}
	return t.tryFrameV3(w)
}

// claimedCount best-effort-parses a damaged payload's record count for the
// skipped-events accounting.
func claimedCount(payload []byte) int64 {
	cnt, n := binary.Uvarint(payload)
	if n > 0 && cnt > 0 && cnt <= uint64(len(payload)) {
		return int64(cnt)
	}
	return 0
}

func (t *Reader) tryFrameV3(w []byte) (int64, error) {
	if len(w) < len(FrameMagic) {
		return 0, errNeedMore
	}
	if string(w[:len(FrameMagic)]) != FrameMagic {
		return 0, badf("bad frame magic %x", w[:len(FrameMagic)])
	}
	rest := w[len(FrameMagic):]
	pl, n := binary.Uvarint(rest)
	if n == 0 {
		if len(rest) < binary.MaxVarintLen64 {
			return 0, errNeedMore
		}
		return 0, badf("frame length: malformed varint")
	}
	if n < 0 || pl == 0 || pl > MaxFramePayload {
		return 0, badf("frame payload %d outside (0, %d]", pl, MaxFramePayload)
	}
	rest = rest[n:]
	if len(rest) < 4+int(pl) {
		return 0, errNeedMore
	}
	want := binary.LittleEndian.Uint32(rest[:4])
	payload := rest[4 : 4+pl]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return claimedCount(payload), badf("frame checksum mismatch: payload %08x, header %08x", got, want)
	}
	t.payload = append(t.payload[:0], payload...)
	if err := t.cur.start(t.payload); err != nil {
		return claimedCount(payload), err
	}
	t.pendOff += len(FrameMagic) + n + 4 + int(pl)
	t.inFrame = true
	t.stats.Frames++
	return 0, nil
}

func (t *Reader) tryFrameV2(w []byte) (int64, error) {
	pl, n := binary.Uvarint(w)
	if n == 0 {
		if len(w) < binary.MaxVarintLen64 {
			return 0, errNeedMore
		}
		return 0, badf("frame length: malformed varint")
	}
	if n < 0 || pl == 0 || pl > MaxFramePayload {
		return 0, badf("frame payload %d outside (0, %d]", pl, MaxFramePayload)
	}
	if uint64(len(w)-n) < pl {
		return 0, errNeedMore
	}
	payload := w[n : n+int(pl)]
	// A checksum-less candidate proves itself structurally: every record
	// must decode and consume the payload exactly.
	if err := validatePayload(payload); err != nil {
		return claimedCount(payload), err
	}
	t.payload = append(t.payload[:0], payload...)
	if err := t.cur.start(t.payload); err != nil {
		return claimedCount(payload), err
	}
	t.pendOff += n + int(pl)
	t.inFrame = true
	t.stats.Frames++
	return 0, nil
}

// validatePayload decodes every record of a candidate v2 frame payload —
// the structural stand-in for a checksum when resynchronizing a
// checksum-less trace.
func validatePayload(payload []byte) error {
	var d frameDecoder
	if err := d.start(payload); err != nil {
		return err
	}
	for d.left > 0 {
		if _, err := d.next(0); err != nil {
			return err
		}
	}
	return nil
}

// skipForward advances the scan past an offset where no frame starts. For
// checksummed traces it jumps straight to the next sync-marker candidate;
// for legacy traces every offset is a candidate, so it steps one byte.
func (t *Reader) skipForward() {
	w := t.pend[t.pendOff:]
	if t.ver == VersionNoChecksum {
		t.pendOff++
		t.stats.SkippedBytes++
		return
	}
	skip := 1
	if i := bytes.Index(w[1:], []byte(FrameMagic)); i >= 0 {
		skip = 1 + i
	} else if d := len(w) - (len(FrameMagic) - 1); d > 1 {
		// No marker in the window: drop everything except a tail short
		// enough that a marker could still straddle the next refill.
		skip = d
	}
	t.pendOff += skip
	t.stats.SkippedBytes += int64(skip)
}

// Replay decodes a whole trace from r into sink, returning the event count
// and the header metadata. It is the push-style convenience over Reader.
func Replay(r io.Reader, sink trace.Sink) (int, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	return trace.Drain(tr, sink)
}
