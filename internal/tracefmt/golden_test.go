package tracefmt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ormprof/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace fixture")

// goldenEvents is a small, fixed stream exercising every record shape:
// loads, stores, allocs, frees, forward and backward address deltas, and a
// frame boundary (batch 4 over 10 events → three frames).
func goldenEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.EvAlloc, Time: 0, Site: 1, Addr: 0x40000000, Size: 64},
		{Kind: trace.EvAlloc, Time: 0, Site: 2, Addr: 0x40000040, Size: 128},
		{Kind: trace.EvAccess, Time: 1, Instr: 10, Addr: 0x40000000, Size: 8},
		{Kind: trace.EvAccess, Time: 2, Instr: 10, Addr: 0x40000008, Size: 8},
		{Kind: trace.EvAccess, Time: 3, Instr: 11, Addr: 0x40000040, Size: 4, Store: true},
		{Kind: trace.EvAccess, Time: 4, Instr: 10, Addr: 0x40000010, Size: 8},
		{Kind: trace.EvAccess, Time: 5, Instr: 12, Addr: 0x40000020, Size: 2},
		{Kind: trace.EvFree, Time: 6, Addr: 0x40000000},
		{Kind: trace.EvAccess, Time: 7, Instr: 11, Addr: 0x40000044, Size: 4, Store: true},
		{Kind: trace.EvFree, Time: 8, Addr: 0x40000040},
	}
}

func goldenBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, WithName("golden"), WithBatch(4))
	w.NameSite(1, "node")
	w.NameSite(2, "table")
	for _, e := range goldenEvents() {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenFile pins the on-disk byte layout: re-encoding the fixed event
// stream must reproduce the committed fixture exactly. If this fails, the
// format changed — bump Version and regenerate with -update-golden rather
// than silently breaking old traces.
func TestGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "golden_v3.ormtrace")
	got := goldenBytes(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoded bytes differ from committed fixture %s\n got:  %x\n want: %x",
			path, got, want)
	}

	// And the committed fixture must still decode to the original events.
	decodeGolden(t, want, Version)
}

// TestGoldenFileV2 pins backward compatibility: the committed checksum-less
// v2 fixture must keep decoding even though we no longer write that layout.
func TestGoldenFileV2(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_v2.ormtrace"))
	if err != nil {
		t.Fatal(err)
	}
	decodeGolden(t, want, VersionNoChecksum)

	// The legacy layout must also survive a lenient-mode pass unscathed.
	r, err := NewReader(bytes.NewReader(want), WithLenient())
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(goldenEvents()) || r.Stats().Damaged() {
		t.Errorf("lenient v2 decode: %d events, stats %+v", len(events), r.Stats())
	}
}

func decodeGolden(t *testing.T, data []byte, version int) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != version {
		t.Errorf("Version = %d, want %d", r.Version(), version)
	}
	if r.Name() != "golden" {
		t.Errorf("Name = %q, want golden", r.Name())
	}
	if s := r.Sites(); s[1] != "node" || s[2] != "table" {
		t.Errorf("Sites = %v", s)
	}
	events, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenEvents()
	if len(events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}
