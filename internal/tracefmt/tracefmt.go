// Package tracefmt implements the on-disk probe-trace encoding — the
// persisted form of the (instruction-id, address) + object-event contract
// between the instrumentation front end and the profiling framework.
//
// A trace is captured once, while the workload runs, and replayed any
// number of times through any profiler ("collect once, profile many").
// The encoding is designed for that workflow:
//
//   - self-describing: the header carries the format version, the workload
//     name, and the static allocation-site name table, so a replayed trace
//     reconstructs exactly the profile a live run would have built —
//     byte-identical, including symbolic group names;
//   - streaming: the Writer is a trace.Sink fed straight from the machine's
//     probes, the Reader is a trace.Source pulled by the profilers; neither
//     side ever holds more than one frame of events in memory, so replay is
//     O(batch), not O(trace);
//   - compact: fields are LEB128 varints, times and addresses are
//     delta-encoded within each frame, so strided access traces cost a few
//     bytes per event.
//
// See docs/FORMATS.md for the byte-level layout and the versioning policy.
package tracefmt

import "errors"

// Magic identifies a probe-trace file.
const Magic = "ORMTRACE"

// Version is the current format version. Version 1 was the unframed
// encoding with implicit time stamps (pre-streaming layer); it is no
// longer written or read. Any change to the byte layout below must bump
// this constant — the golden-file test pins the layout.
const Version = 2

// DefaultBatch is the default number of events per frame. Replay memory
// is bounded by the frame size, so this is the streaming layer's
// memory/syscall trade-off knob.
const DefaultBatch = 4096

// MaxBatch caps the writer's events-per-frame setting so that frames
// always stay decodable within MaxFramePayload.
const MaxBatch = 1 << 16

// MaxFramePayload is the largest frame payload a reader accepts. Frames
// written with any legal batch size are far smaller; the cap exists so a
// corrupt or hostile length field cannot make the reader allocate
// unboundedly.
const MaxFramePayload = 1 << 22

// MaxSites and MaxNameLen bound the header's site-name table for the same
// reason.
const (
	MaxSites   = 1 << 20
	MaxNameLen = 1 << 12
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("tracefmt: bad trace file")

// storeFlag is ORed into the kind byte of store accesses.
const storeFlag = 0x80
