// Package tracefmt implements the on-disk probe-trace encoding — the
// persisted form of the (instruction-id, address) + object-event contract
// between the instrumentation front end and the profiling framework.
//
// A trace is captured once, while the workload runs, and replayed any
// number of times through any profiler ("collect once, profile many").
// The encoding is designed for that workflow:
//
//   - self-describing: the header carries the format version, the workload
//     name, and the static allocation-site name table, so a replayed trace
//     reconstructs exactly the profile a live run would have built —
//     byte-identical, including symbolic group names;
//   - streaming: the Writer is a trace.Sink fed straight from the machine's
//     probes, the Reader is a trace.Source pulled by the profilers; neither
//     side ever holds more than one frame of events in memory, so replay is
//     O(batch), not O(trace);
//   - compact: fields are LEB128 varints, times and addresses are
//     delta-encoded within each frame, so strided access traces cost a few
//     bytes per event;
//   - damage-tolerant: every v3 frame starts with a sync marker and carries
//     a CRC32C of its payload, so a reader in lenient mode (WithLenient)
//     can detect a corrupt, truncated, or overwritten frame, scan forward
//     to the next valid frame boundary, and keep delivering events — losing
//     only the damaged frame. Skips are accounted in Stats and reported as
//     a typed *CorruptionError once the salvageable events are exhausted.
//
// See docs/FORMATS.md for the byte-level layout and the versioning policy.
package tracefmt

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a probe-trace file.
const Magic = "ORMTRACE"

// Version is the current format version. Version 3 added the per-frame
// sync marker and CRC32C checksum that make corruption detection and
// resynchronization possible. Version 2 (checksum-less frames) is still
// read; version 1 was the unframed encoding with implicit time stamps
// (pre-streaming layer) and is no longer written or read. Any change to
// the byte layout below must bump this constant — the golden-file tests
// pin both readable layouts.
const Version = 3

// VersionNoChecksum is the newest readable legacy version: v2 frames have
// no sync marker and no checksum, so lenient-mode resynchronization falls
// back to a structural scan (see Reader).
const VersionNoChecksum = 2

// FrameMagic is the 4-byte sync marker that opens every v3 frame. The
// lenient reader scans for it to find the next frame boundary after
// corruption; the leading 0xF7 byte never occurs in ASCII metadata and
// keeps accidental matches rare (the CRC rejects the rest).
const FrameMagic = "\xf7ORF"

// crcTable is the Castagnoli polynomial table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultBatch is the default number of events per frame. Replay memory
// is bounded by the frame size, so this is the streaming layer's
// memory/syscall trade-off knob.
const DefaultBatch = 4096

// MaxBatch caps the writer's events-per-frame setting so that frames
// always stay decodable within MaxFramePayload.
const MaxBatch = 1 << 16

// MaxFramePayload is the largest frame payload a reader accepts. Frames
// written with any legal batch size are far smaller; the cap exists so a
// corrupt or hostile length field cannot make the reader allocate
// unboundedly.
const MaxFramePayload = 1 << 22

// MaxSites and MaxNameLen bound the header's site-name table for the same
// reason.
const (
	MaxSites   = 1 << 20
	MaxNameLen = 1 << 12
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("tracefmt: bad trace file")

// storeFlag is ORed into the kind byte of store accesses.
const storeFlag = 0x80

// Stats is the Reader's accounting of what it delivered and — in lenient
// mode — what it had to skip. In strict mode the skip counters stay zero
// (the first corruption is fatal).
type Stats struct {
	// Version is the format version of the trace being read (2 or 3).
	Version int
	// Frames counts frames whose payload validated and started delivering.
	Frames int64
	// Events counts events actually delivered to the caller.
	Events int64
	// Corruptions counts distinct corruption incidents: each detected
	// checksum failure, structural decode error, or truncation that forced
	// the lenient reader to abandon data and resynchronize.
	Corruptions int64
	// SkippedFrames counts damaged frames that were abandoned. A frame
	// abandoned mid-delivery counts in both Frames and SkippedFrames.
	SkippedFrames int64
	// SkippedEvents is the best-effort count of events lost in abandoned
	// frames, taken from each damaged frame's record-count field when that
	// field itself still parses. Corruption that destroys the count leaves
	// the loss uncounted here (Corruptions still records the incident).
	SkippedEvents int64
	// SkippedBytes counts input bytes discarded while scanning for the
	// next valid frame boundary.
	SkippedBytes int64
}

// Damaged reports whether any corruption was encountered.
func (s Stats) Damaged() bool { return s.Corruptions > 0 }

// CorruptionError is the typed error a lenient Reader returns once the
// trace is exhausted and at least one frame had to be skipped: every
// salvageable event was already delivered through Next, and the error
// carries the damage accounting. It wraps the first underlying decode
// error (which itself wraps ErrBadTrace), so errors.Is(err, ErrBadTrace)
// holds.
type CorruptionError struct {
	// Stats is the reader's final accounting, including the skip counters.
	Stats Stats
	// First is the first decode error encountered.
	First error
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf(
		"tracefmt: trace damaged but salvaged: %d corruption(s), skipped %d frame(s) / %d event(s) / %d byte(s), delivered %d event(s); first: %v",
		e.Stats.Corruptions, e.Stats.SkippedFrames, e.Stats.SkippedEvents,
		e.Stats.SkippedBytes, e.Stats.Events, e.First)
}

// Unwrap returns the first underlying decode error.
func (e *CorruptionError) Unwrap() error { return e.First }
