package tracefmt

import (
	"encoding/binary"
	"hash/crc32"

	"ormprof/internal/trace"
)

// This file factors the v3 frame envelope into a standalone codec, so a
// frame is a first-class unit independent of the file Writer/Reader: the
// ormpd wire protocol ships each batch of events as exactly one of these
// frames, inheriting the per-frame CRC-32C end-to-end (a frame corrupted
// anywhere between sender and profiler is detected by the same check that
// guards trace files).

// appendEvent encodes one event in the record layout shared by every v3
// producer, updating the caller's delta baselines. It returns false for an
// unencodable event kind.
func appendEvent(frame []byte, e trace.Event, lastAddr *trace.Addr, lastTime *trace.Time) ([]byte, bool) {
	dt := int64(e.Time - *lastTime)
	da := int64(e.Addr - *lastAddr)

	kind := byte(e.Kind)
	if e.Store {
		kind |= storeFlag
	}
	switch e.Kind {
	case trace.EvAccess:
		frame = append(frame, kind)
		frame = appendVarint(frame, dt)
		frame = appendUvarint(frame, uint64(e.Instr))
		frame = appendVarint(frame, da)
		frame = appendUvarint(frame, uint64(e.Size))
	case trace.EvAlloc:
		frame = append(frame, kind)
		frame = appendVarint(frame, dt)
		frame = appendUvarint(frame, uint64(e.Site))
		frame = appendVarint(frame, da)
		frame = appendUvarint(frame, uint64(e.Size))
	case trace.EvFree:
		frame = append(frame, kind)
		frame = appendVarint(frame, dt)
		frame = appendVarint(frame, da)
	default:
		return frame, false
	}
	*lastTime = e.Time
	*lastAddr = e.Addr
	return frame, true
}

// appendFrame appends the complete v3 frame envelope — sync marker, payload
// length, CRC-32C, record count, records — to dst.
func appendFrame(dst []byte, records []byte, count int) []byte {
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], uint64(count))
	crc := crc32.Update(crc32.Checksum(cnt[:cn], crcTable), crcTable, records)
	dst = append(dst, FrameMagic...)
	dst = appendUvarint(dst, uint64(cn+len(records)))
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = append(dst, cnt[:cn]...)
	dst = append(dst, records...)
	return dst
}

// EncodeFrame encodes a batch of events as one standalone v3 frame. Frames
// are self-contained (delta baselines start at zero), so the result is
// byte-identical to what a Writer with this exact batch would emit. The
// batch must be non-empty, hold at most MaxBatch events, and encode within
// MaxFramePayload bytes.
func EncodeFrame(events []trace.Event) ([]byte, error) {
	if len(events) == 0 {
		return nil, badf("cannot encode an empty frame")
	}
	if len(events) > MaxBatch {
		return nil, badf("frame of %d events exceeds batch limit %d", len(events), MaxBatch)
	}
	var records []byte
	var lastAddr trace.Addr
	var lastTime trace.Time
	for _, e := range events {
		var ok bool
		records, ok = appendEvent(records, e, &lastAddr, &lastTime)
		if !ok {
			return nil, badf("cannot encode event kind %d", e.Kind)
		}
	}
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], uint64(len(events)))
	if cn+len(records) > MaxFramePayload {
		return nil, badf("frame payload %d exceeds limit %d", cn+len(records), MaxFramePayload)
	}
	return appendFrame(nil, records, len(events)), nil
}

// DecodeFrame decodes one standalone v3 frame produced by EncodeFrame (or
// cut from a v3 trace file). The slice must hold exactly one frame; the
// CRC is verified before any record is decoded, and every decode error
// wraps ErrBadTrace.
func DecodeFrame(data []byte) ([]trace.Event, error) {
	return DecodeFrameInto(nil, data)
}

// DecodeFrameInto is DecodeFrame appending into dst's capacity, so a
// caller decoding frames in a loop (the ormpd session reader, replay
// tools) can reuse one buffer across frames instead of allocating per
// frame: pass the previous result re-sliced to [:0]. On error the
// returned slice is dst unchanged.
func DecodeFrameInto(dst []trace.Event, data []byte) ([]trace.Event, error) {
	if len(data) < len(FrameMagic) {
		return dst, badf("frame shorter than its sync marker")
	}
	if string(data[:len(FrameMagic)]) != FrameMagic {
		return dst, badf("bad frame magic %x", data[:len(FrameMagic)])
	}
	rest := data[len(FrameMagic):]
	pl, n := binary.Uvarint(rest)
	if n <= 0 {
		return dst, badf("frame length: malformed varint")
	}
	if pl == 0 || pl > MaxFramePayload {
		return dst, badf("frame payload %d outside (0, %d]", pl, MaxFramePayload)
	}
	rest = rest[n:]
	if uint64(len(rest)) < 4+pl {
		return dst, badf("frame truncated: %d bytes, want %d", len(rest), 4+pl)
	}
	if uint64(len(rest)) > 4+pl {
		return dst, badf("%d trailing bytes after frame", uint64(len(rest))-(4+pl))
	}
	want := binary.LittleEndian.Uint32(rest[:4])
	payload := rest[4 : 4+pl]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return dst, badf("frame checksum mismatch: payload %08x, header %08x", got, want)
	}
	var d frameDecoder
	if err := d.start(payload); err != nil {
		return dst, err
	}
	events := dst
	base := len(events)
	if cap(events)-base < d.total {
		grown := make([]trace.Event, base, base+d.total)
		copy(grown, events)
		events = grown
	}
	for d.left > 0 {
		e, err := d.next(int64(len(events) - base))
		if err != nil {
			return dst, err
		}
		events = append(events, e)
	}
	return events, nil
}
