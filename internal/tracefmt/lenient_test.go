package tracefmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ormprof/internal/trace"
)

// frameLoc records the byte extents of one v3 frame within an encoded trace.
type frameLoc struct {
	start      int // first byte of the sync marker
	payloadOff int // first byte of the payload (count varint)
	end        int // one past the last payload byte
}

// v3Frames walks the frames of an encoded v3 trace, returning their extents.
func v3Frames(t *testing.T, data []byte, headerLen int) []frameLoc {
	t.Helper()
	var frames []frameLoc
	off := headerLen
	for off < len(data) {
		if string(data[off:off+len(FrameMagic)]) != FrameMagic {
			t.Fatalf("no frame magic at offset %d", off)
		}
		pl, n := binary.Uvarint(data[off+len(FrameMagic):])
		if n <= 0 {
			t.Fatalf("bad frame length at offset %d", off)
		}
		payloadOff := off + len(FrameMagic) + n + 4
		end := payloadOff + int(pl)
		frames = append(frames, frameLoc{start: off, payloadOff: payloadOff, end: end})
		off = end
	}
	return frames
}

func headerLen(t *testing.T) int {
	t.Helper()
	return len(encode(t, nil))
}

// readAllLenient drains a lenient reader, returning the delivered events and
// the terminal error (io.EOF or *CorruptionError).
func readAllLenient(t *testing.T, data []byte) ([]trace.Event, Stats, error) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data), WithLenient())
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	var events []trace.Event
	for {
		e, err := r.Next()
		if err != nil {
			// Terminal errors are sticky.
			if _, err2 := r.Next(); !errors.Is(err2, err) && err2 != err {
				t.Errorf("terminal error not sticky: %v then %v", err, err2)
			}
			return events, r.Stats(), err
		}
		events = append(events, e)
	}
}

// TestLenientSingleCorruptFrame is the acceptance gate for resync: a trace
// with one corrupted frame must lose exactly that frame's events and
// nothing else, with the loss accounted precisely in Stats.
func TestLenientSingleCorruptFrame(t *testing.T) {
	const n, batch = 300, 16
	events := randomEvents(n, 7)
	data := encode(t, events, WithBatch(batch))
	frames := v3Frames(t, data, headerLen(t))
	const victim = 5

	bad := bytes.Clone(data)
	bad[frames[victim].payloadOff+3] ^= 0xff

	got, stats, err := readAllLenient(t, bad)

	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("terminal error = %v, want *CorruptionError", err)
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("CorruptionError does not wrap ErrBadTrace: %v", err)
	}
	want := append(append([]trace.Event(nil), events[:victim*batch]...), events[(victim+1)*batch:]...)
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	totalFrames := int64((n + batch - 1) / batch)
	if stats.Frames != totalFrames-1 {
		t.Errorf("Frames = %d, want %d", stats.Frames, totalFrames-1)
	}
	if stats.Corruptions != 1 || stats.SkippedFrames != 1 {
		t.Errorf("Corruptions/SkippedFrames = %d/%d, want 1/1", stats.Corruptions, stats.SkippedFrames)
	}
	if stats.SkippedEvents != batch {
		t.Errorf("SkippedEvents = %d, want %d", stats.SkippedEvents, batch)
	}
	if wantBytes := int64(frames[victim].end - frames[victim].start); stats.SkippedBytes != wantBytes {
		t.Errorf("SkippedBytes = %d, want %d", stats.SkippedBytes, wantBytes)
	}
	if stats.Events != int64(len(want)) {
		t.Errorf("Events = %d, want %d", stats.Events, len(want))
	}
	if ce.Stats != stats {
		t.Errorf("CorruptionError.Stats = %+v, want %+v", ce.Stats, stats)
	}
}

// TestLenientCleanTrace: lenient mode on an undamaged trace behaves exactly
// like strict mode — all events, clean io.EOF, zero skip counters.
func TestLenientCleanTrace(t *testing.T) {
	events := randomEvents(100, 11)
	data := encode(t, events, WithBatch(8))
	got, stats, err := readAllLenient(t, data)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(got) != len(events) || stats.Damaged() {
		t.Errorf("delivered %d/%d events, stats %+v", len(got), len(events), stats)
	}
}

// TestLenientTruncatedTail: cutting the trace mid-frame salvages every
// complete frame before the cut.
func TestLenientTruncatedTail(t *testing.T) {
	const n, batch = 128, 16
	events := randomEvents(n, 13)
	data := encode(t, events, WithBatch(batch))
	frames := v3Frames(t, data, headerLen(t))

	// Cut in the middle of the second-to-last frame's payload.
	f := frames[len(frames)-2]
	cut := (f.payloadOff + f.end) / 2
	got, stats, err := readAllLenient(t, data[:cut])

	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("terminal error = %v, want *CorruptionError", err)
	}
	wantEvents := (len(frames) - 2) * batch
	if len(got) != wantEvents {
		t.Fatalf("delivered %d events, want %d", len(got), wantEvents)
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	if stats.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", stats.Corruptions)
	}
	if stats.SkippedBytes != int64(cut-f.start) {
		t.Errorf("SkippedBytes = %d, want %d", stats.SkippedBytes, cut-f.start)
	}
}

// TestLenientGarbageBetweenFrames: junk injected between two frames is
// scanned over without losing a single event.
func TestLenientGarbageBetweenFrames(t *testing.T) {
	const n, batch = 64, 16
	events := randomEvents(n, 17)
	data := encode(t, events, WithBatch(batch))
	frames := v3Frames(t, data, headerLen(t))

	junk := []byte("\x00\x01garbage\xff\xfe not a frame \xf7OR")
	cut := frames[2].start
	bad := append(append(append([]byte(nil), data[:cut]...), junk...), data[cut:]...)

	got, stats, err := readAllLenient(t, bad)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("terminal error = %v, want *CorruptionError", err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d events, want all %d", len(got), n)
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	if stats.Corruptions != 1 || stats.SkippedEvents != 0 {
		t.Errorf("Corruptions/SkippedEvents = %d/%d, want 1/0", stats.Corruptions, stats.SkippedEvents)
	}
	if stats.SkippedBytes != int64(len(junk)) {
		t.Errorf("SkippedBytes = %d, want %d", stats.SkippedBytes, len(junk))
	}
}

// TestLenientMultipleCorruptFrames: damage in several places is skipped
// independently; the frames in between still deliver.
func TestLenientMultipleCorruptFrames(t *testing.T) {
	const n, batch = 320, 16
	events := randomEvents(n, 19)
	data := encode(t, events, WithBatch(batch))
	frames := v3Frames(t, data, headerLen(t))

	bad := bytes.Clone(data)
	victims := []int{2, 9, 15}
	for _, v := range victims {
		bad[frames[v].payloadOff+1] ^= 0x55
	}
	got, stats, err := readAllLenient(t, bad)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("terminal error = %v, want *CorruptionError", err)
	}
	if want := n - len(victims)*batch; len(got) != want {
		t.Fatalf("delivered %d events, want %d", len(got), want)
	}
	if stats.Corruptions != int64(len(victims)) || stats.SkippedFrames != int64(len(victims)) {
		t.Errorf("Corruptions/SkippedFrames = %d/%d, want %d/%d",
			stats.Corruptions, stats.SkippedFrames, len(victims), len(victims))
	}
	if stats.SkippedEvents != int64(len(victims)*batch) {
		t.Errorf("SkippedEvents = %d, want %d", stats.SkippedEvents, len(victims)*batch)
	}
}

// TestLenientV2Resync: a corrupt byte in a checksum-less legacy trace is
// survivable too, via the structural scan.
func TestLenientV2Resync(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_v2.ormtrace"))
	if err != nil {
		t.Fatal(err)
	}
	// The golden v2 trace holds 10 events in frames of 4+4+2. Make the
	// second frame's payload undecodable (0x7f is not a valid event kind).
	bad := bytes.Clone(data)
	idx := bytes.IndexByte(bad, 0x17) // second frame's length byte (23-byte payload)
	if idx < 0 {
		t.Fatal("fixture layout changed; update this test")
	}
	bad[idx+2] = 0x7f

	got, stats, err := readAllLenient(t, bad)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("terminal error = %v, want *CorruptionError", err)
	}
	if len(got) == 0 || len(got) >= 10 {
		t.Fatalf("delivered %d events, want partial salvage (0 < n < 10)", len(got))
	}
	// The first frame must survive untouched.
	want := goldenEvents()
	for i := 0; i < 4 && i < len(got); i++ {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if !stats.Damaged() {
		t.Errorf("stats not damaged: %+v", stats)
	}
}

// TestLenientHeaderDamageFatal: the header has no redundancy to salvage
// with — damage there is fatal in both modes.
func TestLenientHeaderDamageFatal(t *testing.T) {
	data := encode(t, randomEvents(10, 23))
	for _, off := range []int{0, len(Magic), len(Magic) + 1} {
		bad := bytes.Clone(data)
		bad[off] ^= 0xff
		if _, err := NewReader(bytes.NewReader(bad), WithLenient()); !errors.Is(err, ErrBadTrace) {
			t.Errorf("header corruption at %d: err = %v, want ErrBadTrace", off, err)
		}
	}
}

// TestStrictRejectsCorruptFrame: strict mode still fails fast on the same
// damage lenient mode survives, and stays damage-free in Stats.
func TestStrictRejectsCorruptFrame(t *testing.T) {
	events := randomEvents(64, 29)
	data := encode(t, events, WithBatch(16))
	frames := v3Frames(t, data, headerLen(t))

	bad := bytes.Clone(data)
	bad[frames[1].payloadOff] ^= 0xff
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = trace.ReadAll(r)
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("strict error = %v, want ErrBadTrace", err)
	}
	var ce *CorruptionError
	if errors.As(err, &ce) {
		t.Errorf("strict mode returned *CorruptionError: %v", err)
	}
	if r.Stats().Damaged() {
		t.Errorf("strict stats report damage: %+v", r.Stats())
	}
	if r.Events() != 16 {
		t.Errorf("strict delivered %d events before failing, want 16", r.Events())
	}
}
