package tracefmt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ormprof/internal/trace"
)

// FuzzReader throws arbitrary bytes at the trace decoder. The invariants:
// it never panics, never allocates unboundedly (the length caps fire before
// any allocation), never yields more events than the input could possibly
// hold, and every failure is an ErrBadTrace (or clean io.EOF).
func FuzzReader(f *testing.F) {
	// Seed with a valid trace...
	var buf bytes.Buffer
	w := NewWriter(&buf, WithName("seed"), WithBatch(4))
	w.NameSite(1, "site_one")
	for _, e := range randomEvents(32, 42) {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// ...its truncations and light corruptions...
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(Magic)+1])
	bad := bytes.Clone(valid)
	bad[len(Magic)] = 99 // wrong version
	f.Add(bad)
	// ...and shapes aimed at the length fields.
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(append([]byte(Magic), Version, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append([]byte(Magic), Version, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("header error %v does not wrap ErrBadTrace", err)
			}
			return
		}
		// Each decoded event consumes at least one payload byte, so the
		// input length bounds the event count.
		max := int64(len(data)) + 1
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("decode error %v does not wrap ErrBadTrace", err)
				}
				break
			}
			if r.Events() > max {
				t.Fatalf("decoded %d events from %d input bytes", r.Events(), len(data))
			}
		}
	})
}

// FuzzReaderResync throws mutated traces at the lenient reader. The
// invariants: it never panics, never loops forever (every scan step either
// consumes input or ends the trace), never yields more events than the
// input could hold, terminates in exactly io.EOF or *CorruptionError, and
// its Stats stay consistent with what was actually delivered.
func FuzzReaderResync(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithName("seed"), WithBatch(8))
	w.NameSite(1, "site_one")
	for _, e := range randomEvents(64, 42) {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Truncations, single-byte damage at various depths, and injected junk.
	f.Add(valid[:len(valid)*3/4])
	f.Add(valid[:len(valid)/2+3])
	for _, off := range []int{20, 40, len(valid) / 2, len(valid) - 10} {
		bad := bytes.Clone(valid)
		bad[off] ^= 0xff
		f.Add(bad)
	}
	mid := len(valid) / 2
	f.Add(append(append(append([]byte(nil), valid[:mid]...), "JUNKJUNK"...), valid[mid:]...))
	// A legacy v2 trace (and a damaged one) exercise the structural scan.
	if v2, err := os.ReadFile(filepath.Join("testdata", "golden_v2.ormtrace")); err == nil {
		f.Add(v2)
		bad := bytes.Clone(v2)
		bad[len(bad)/2] ^= 0xff
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add(append([]byte(Magic), Version, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), WithLenient())
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("header error %v does not wrap ErrBadTrace", err)
			}
			return
		}
		max := int64(len(data)) + 1
		var n int64
		for {
			_, err := r.Next()
			if err == nil {
				n++
				if n > max {
					t.Fatalf("decoded %d events from %d input bytes", n, len(data))
				}
				continue
			}
			var ce *CorruptionError
			switch {
			case err == io.EOF:
				if r.Stats().Damaged() {
					t.Fatalf("clean io.EOF but stats report damage: %+v", r.Stats())
				}
			case errors.As(err, &ce):
				if !ce.Stats.Damaged() {
					t.Fatalf("CorruptionError with no recorded corruption: %+v", ce.Stats)
				}
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("CorruptionError does not wrap ErrBadTrace: %v", err)
				}
			default:
				t.Fatalf("lenient terminal error = %v, want io.EOF or *CorruptionError", err)
			}
			st := r.Stats()
			if st.Events != n {
				t.Fatalf("Stats.Events = %d, delivered %d", st.Events, n)
			}
			if st.Frames < 0 || st.Corruptions < 0 || st.SkippedFrames < 0 ||
				st.SkippedEvents < 0 || st.SkippedBytes < 0 {
				t.Fatalf("negative stats: %+v", st)
			}
			if st.SkippedBytes > int64(len(data)) {
				t.Fatalf("SkippedBytes %d exceeds input %d", st.SkippedBytes, len(data))
			}
			// Terminal errors are sticky.
			if _, err2 := r.Next(); err2 != err {
				t.Fatalf("terminal error not sticky: %v then %v", err, err2)
			}
			return
		}
	})
}

// FuzzRoundTrip checks the encoder/decoder pair from the other side:
// any sequence of well-formed events survives a round trip exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(16), uint16(100))
	f.Add(int64(99), uint8(1), uint16(3))
	f.Fuzz(func(t *testing.T, seed int64, batch uint8, n uint16) {
		events := randomEvents(int(n%2048), seed)
		var buf bytes.Buffer
		w := NewWriter(&buf, WithBatch(int(batch)%257))
		for _, e := range events {
			w.Emit(e)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
			}
		}
	})
}
