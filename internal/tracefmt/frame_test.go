package tracefmt

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ormprof/internal/trace"
)

func frameEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, n)
	for i := range evs {
		switch rng.Intn(6) {
		case 0:
			evs[i] = trace.Event{Kind: trace.EvAlloc, Site: trace.SiteID(rng.Intn(9)),
				Addr: trace.Addr(rng.Uint64()), Size: uint32(rng.Intn(1 << 16)), Time: trace.Time(i)}
		case 1:
			evs[i] = trace.Event{Kind: trace.EvFree, Addr: trace.Addr(rng.Uint64()), Time: trace.Time(i)}
		default:
			evs[i] = trace.Event{Kind: trace.EvAccess, Instr: trace.InstrID(rng.Intn(64)),
				Addr: trace.Addr(rng.Uint64()), Size: 8, Store: rng.Intn(2) == 0, Time: trace.Time(i)}
		}
	}
	return evs
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 17, DefaultBatch} {
		evs := frameEvents(n, int64(n))
		frame, err := EncodeFrame(evs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, evs) {
			t.Errorf("n=%d: round trip altered events", n)
		}
	}
}

// TestFrameMatchesWriter: a standalone frame is byte-identical to the frame
// a Writer emits for the same batch — one encoding, whether the frame goes
// to a file or over the wire. (The golden v3 fixture therefore pins both.)
func TestFrameMatchesWriter(t *testing.T) {
	evs := frameEvents(300, 77)
	var buf bytes.Buffer
	w := NewWriter(&buf, WithBatch(len(evs)))
	for _, e := range evs {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Skip the header: magic, version, name, site count.
	headerLen := len(Magic) + 1 + 1 + 1
	fromWriter := buf.Bytes()[headerLen:]
	standalone, err := EncodeFrame(evs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromWriter, standalone) {
		t.Error("standalone frame differs from Writer output for the same batch")
	}
}

func TestFrameEncodeRejects(t *testing.T) {
	if _, err := EncodeFrame(nil); err == nil {
		t.Error("EncodeFrame accepted an empty batch")
	}
	if _, err := EncodeFrame([]trace.Event{{Kind: 99}}); err == nil {
		t.Error("EncodeFrame accepted an unknown event kind")
	}
	if _, err := EncodeFrame(make([]trace.Event, MaxBatch+1)); err == nil {
		t.Error("EncodeFrame accepted an oversized batch")
	}
}

// TestFrameDecodeRejectsDamage: every single-byte flip and truncation of a
// valid frame must be rejected with an ErrBadTrace error — the CRC is what
// carries the file format's corruption detection onto the wire.
func TestFrameDecodeRejectsDamage(t *testing.T) {
	frame, err := EncodeFrame(frameEvents(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	for off := range frame {
		bad := append([]byte(nil), frame...)
		bad[off] ^= 0x10
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("flip at %d accepted", off)
		} else if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("flip at %d: error %v does not wrap ErrBadTrace", off, err)
		}
	}
	for _, n := range []int{0, 1, len(FrameMagic), len(frame) / 2, len(frame) - 1} {
		if _, err := DecodeFrame(frame[:n]); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("truncation to %d: want ErrBadTrace, got %v", n, err)
		}
	}
	if _, err := DecodeFrame(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Error("DecodeFrame accepted trailing bytes")
	}
}
