package tracefmt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"ormprof/internal/trace"
)

// randomEvents builds a pseudo-random but well-formed event stream with
// monotonically increasing time stamps and a mix of all three kinds.
func randomEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	tm := trace.Time(0)
	for i := 0; i < n; i++ {
		tm += trace.Time(rng.Intn(3))
		switch rng.Intn(10) {
		case 0:
			events = append(events, trace.Event{
				Kind: trace.EvAlloc,
				Time: tm,
				Site: trace.SiteID(rng.Intn(50)),
				Addr: trace.Addr(rng.Uint64()),
				Size: uint32(rng.Intn(4096) + 1),
			})
		case 1:
			events = append(events, trace.Event{
				Kind: trace.EvFree,
				Time: tm,
				Addr: trace.Addr(rng.Uint64()),
			})
		default:
			events = append(events, trace.Event{
				Kind:  trace.EvAccess,
				Time:  tm,
				Instr: trace.InstrID(rng.Intn(200)),
				Addr:  trace.Addr(rng.Uint64()),
				Size:  uint32(1 << uint(rng.Intn(4))),
				Store: rng.Intn(3) == 0,
			})
		}
	}
	return events
}

// encode writes events through a Writer with the given options.
func encode(t *testing.T, events []trace.Event, opts ...WriterOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opts...)
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// decode reads every event back out.
func decode(t *testing.T, data []byte) (*Reader, []trace.Event) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	events, err := trace.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return r, events
}

func TestRoundTrip(t *testing.T) {
	for _, batch := range []int{1, 7, 64, DefaultBatch} {
		events := randomEvents(5000, 1)
		data := encode(t, events, WithBatch(batch))
		_, got := decode(t, data)
		if len(got) != len(events) {
			t.Fatalf("batch %d: decoded %d events, want %d", batch, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("batch %d: event %d = %+v, want %+v", batch, i, got[i], events[i])
			}
		}
	}
}

func TestRoundTripExtremeValues(t *testing.T) {
	// Wrap-around deltas: every 64-bit address and time must survive,
	// including maximal jumps in both directions.
	events := []trace.Event{
		{Kind: trace.EvAccess, Time: 0, Instr: 0, Addr: 0, Size: 0},
		{Kind: trace.EvAccess, Time: ^trace.Time(0), Instr: ^trace.InstrID(0), Addr: ^trace.Addr(0), Size: ^uint32(0), Store: true},
		{Kind: trace.EvAccess, Time: 1, Instr: 1, Addr: 1, Size: 1},
		{Kind: trace.EvAlloc, Time: 2, Site: ^trace.SiteID(0), Addr: 1 << 63, Size: ^uint32(0)},
		{Kind: trace.EvFree, Time: 3, Addr: 0},
		{Kind: trace.EvFree, Time: 3, Addr: ^trace.Addr(0)},
	}
	data := encode(t, events, WithBatch(2))
	_, got := decode(t, data)
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestHeaderMetadata(t *testing.T) {
	sites := map[trace.SiteID]string{3: "s3", 1: "s1", 7: "lookup_table"}
	var buf bytes.Buffer
	w := NewWriter(&buf, WithName("linkedlist"))
	for id, name := range sites {
		w.NameSite(id, name)
	}
	w.Emit(trace.Event{Kind: trace.EvAccess, Instr: 1, Addr: 8, Size: 8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, events := decode(t, buf.Bytes())
	if r.Name() != "linkedlist" {
		t.Errorf("Name = %q, want linkedlist", r.Name())
	}
	if len(events) != 1 {
		t.Fatalf("decoded %d events, want 1", len(events))
	}
	got := r.Sites()
	if len(got) != len(sites) {
		t.Fatalf("Sites = %v, want %v", got, sites)
	}
	for id, name := range sites {
		if got[id] != name {
			t.Errorf("site %d = %q, want %q", id, got[id], name)
		}
	}
}

func TestDeterministicBytes(t *testing.T) {
	// The site table is sorted by ID, so encoding the same trace twice —
	// with map iteration order left to chance — yields identical bytes.
	events := randomEvents(500, 2)
	sites := map[trace.SiteID]string{9: "a", 4: "b", 22: "c", 1: "d", 13: "e"}
	enc := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, WithName("det"))
		w.SetSites(sites)
		for _, e := range events {
			w.Emit(e)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := enc()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(first, enc()) {
			t.Fatal("same trace encoded to different bytes")
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	data := encode(t, nil, WithName("empty"))
	r, events := decode(t, data)
	if r.Name() != "empty" || len(events) != 0 {
		t.Errorf("empty trace: name %q, %d events", r.Name(), len(events))
	}
}

func TestStridedCompactness(t *testing.T) {
	// The format exists because delta encoding makes regular access
	// patterns tiny: a strided scan must cost only a few bytes per event.
	const n = 10000
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Event{
			Kind:  trace.EvAccess,
			Time:  trace.Time(i),
			Instr: 7,
			Addr:  trace.Addr(0x40000000 + 8*i),
			Size:  8,
		}
	}
	data := encode(t, events)
	perEvent := float64(len(data)) / n
	if perEvent > 6 {
		t.Errorf("strided trace costs %.1f bytes/event, want <= 6", perEvent)
	}
	_, got := decode(t, data)
	if len(got) != n {
		t.Fatalf("decoded %d events, want %d", len(got), n)
	}
}

func TestVersionRejected(t *testing.T) {
	data := encode(t, randomEvents(10, 3))
	for _, ver := range []byte{0, 1, 4, 255} {
		bad := bytes.Clone(data)
		bad[len(Magic)] = ver
		if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("version %d: err = %v, want ErrBadTrace", ver, err)
		}
	}
	// The legacy version byte is accepted at the header (frame layouts
	// differ, so decoding the body is the v2 golden test's job).
	bad := bytes.Clone(data)
	bad[len(Magic)] = VersionNoChecksum
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("version %d header rejected: %v", VersionNoChecksum, err)
	}
	if r.Version() != VersionNoChecksum {
		t.Errorf("Version = %d, want %d", r.Version(), VersionNoChecksum)
	}
}

func TestGarbageRejected(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"short magic":   []byte("ORM"),
		"wrong magic":   []byte("NOTATRACEFILE AT ALL"),
		"no version":    []byte(Magic),
		"name overflow": append([]byte(Magic), Version, 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	// Any prefix of a valid trace must decode cleanly up to the cut and
	// then return either io.EOF (frame boundary) or ErrBadTrace — never a
	// panic, never silently invented events.
	events := randomEvents(300, 4)
	data := encode(t, events, WithBatch(16))
	for cut := 0; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("cut %d: header err = %v", cut, err)
			}
			continue
		}
		n := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("cut %d: err = %v", cut, err)
				}
				break
			}
			if n++; n > len(events) {
				t.Fatalf("cut %d: decoded more events than were written", cut)
			}
		}
	}
}

func TestCorruptFrameRejected(t *testing.T) {
	// Flip every byte of the first frame in turn; decoding must either
	// error with ErrBadTrace or produce no more events than were written.
	events := randomEvents(64, 5)
	data := encode(t, events, WithBatch(64))
	headerLen := len(encode(t, nil))
	for i := headerLen; i < len(data); i++ {
		bad := bytes.Clone(data)
		bad[i] ^= 0xff
		r, err := NewReader(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		n := 0
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
			if n++; n > len(events) {
				t.Fatalf("corrupt byte %d: unbounded decode", i)
			}
		}
	}
}

func TestStickyReaderError(t *testing.T) {
	data := encode(t, randomEvents(100, 6), WithBatch(8))
	bad := data[:len(data)-3] // truncate mid-frame
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for {
		_, err := r.Next()
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == io.EOF {
		t.Fatal("truncated trace decoded cleanly")
	}
	if _, err := r.Next(); err != firstErr {
		t.Errorf("second Next after error = %v, want sticky %v", err, firstErr)
	}
}

func TestNameSiteAfterEmitFails(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(trace.Event{Kind: trace.EvAccess, Instr: 1, Addr: 8, Size: 8})
	w.NameSite(1, "too late")
	if err := w.Close(); err == nil {
		t.Error("NameSite after first event must fail the writer")
	}
}

func TestBoundedReplayMemory(t *testing.T) {
	// The whole point of framing: replaying a trace ≥10× the batch size
	// must allocate O(frames + constant), not O(events). With the payload
	// buffer reused across frames, a full replay costs a small fixed
	// number of allocations regardless of trace length.
	const batch = 64
	events := randomEvents(batch*20, 7) // 20 frames, 10×+ the batch size
	data := encode(t, events, WithBatch(batch))

	allocs := testing.AllocsPerRun(10, func() {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				break
			}
		}
	})
	// bufio.Reader + payload buffer + reader struct and little else; the
	// bound is far below one alloc per event or per frame.
	if allocs > 16 {
		t.Errorf("replay of %d events allocated %.0f times, want <= 16", len(events), allocs)
	}
}

func TestReplayHelper(t *testing.T) {
	events := randomEvents(1000, 8)
	data := encode(t, events)
	var buf trace.Buffer
	n, err := Replay(bytes.NewReader(data), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) || buf.Len() != len(events) {
		t.Fatalf("Replay delivered %d events, want %d", n, len(events))
	}
}
