package tracefmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"ormprof/internal/trace"
)

// Writer streams events into a trace file. It implements trace.Sink, so it
// wires directly to the simulated machine's probes (or into a trace.Tee
// alongside a live profiler), and trace.SiteNamer, so the machine's static
// site names land in the header. Events are buffered into frames of the
// configured batch size; memory never exceeds one encoded frame.
//
// Errors are sticky: the first write error is remembered and returned by
// Close, and subsequent Emits become no-ops.
type Writer struct {
	w     *bufio.Writer
	name  string
	batch int

	sites       map[trace.SiteID]string
	wroteHeader bool

	frame    []byte // encoded records of the open frame
	out      []byte // reusable envelope buffer for flushFrame
	inFrame  int    // records in the open frame
	lastAddr trace.Addr
	lastTime trace.Time

	events int64
	n      int64
	err    error

	scratch [binary.MaxVarintLen64]byte
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithName records the workload name in the trace header. Replay tools use
// it to label profiles identically to a live run.
func WithName(name string) WriterOption {
	return func(w *Writer) { w.name = name }
}

// WithBatch sets the events-per-frame batch size (default DefaultBatch,
// capped at MaxBatch). Smaller frames mean lower replay memory and worse
// compression at the frame boundaries.
func WithBatch(n int) WriterOption {
	return func(w *Writer) {
		if n < 1 {
			n = 1
		}
		if n > MaxBatch {
			n = MaxBatch
		}
		w.batch = n
	}
}

// NewWriter starts a trace on w. The header is not written until the first
// event (or Close), so site names may still be announced via NameSite.
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	tw := &Writer{w: bufio.NewWriter(w), batch: DefaultBatch}
	for _, o := range opts {
		o(tw)
	}
	return tw
}

// NameSite implements trace.SiteNamer: it records a static site's symbolic
// name for the header table. All names must arrive before the first Emit.
func (t *Writer) NameSite(site trace.SiteID, name string) {
	if t.wroteHeader {
		t.fail(fmt.Errorf("tracefmt: NameSite(%d, %q) after first event", site, name))
		return
	}
	if t.sites == nil {
		t.sites = make(map[trace.SiteID]string)
	}
	t.sites[site] = name
}

// SetSites replaces the header site-name table wholesale (convenience for
// re-encoding an already-collected trace).
func (t *Writer) SetSites(sites map[trace.SiteID]string) {
	for id, name := range sites {
		t.NameSite(id, name)
	}
}

func (t *Writer) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

func (t *Writer) write(b []byte) {
	if t.err != nil {
		return
	}
	n, err := t.w.Write(b)
	t.n += int64(n)
	t.err = err
}

func (t *Writer) uvarint(v uint64) {
	t.write(t.scratch[:binary.PutUvarint(t.scratch[:], v)])
}

func (t *Writer) writeString(s string) {
	t.uvarint(uint64(len(s)))
	t.write([]byte(s))
}

// header writes magic, version, workload name, and the site table, sorted
// by site ID so the bytes are deterministic.
func (t *Writer) header() {
	t.wroteHeader = true
	t.write([]byte(Magic))
	t.write([]byte{Version})
	t.writeString(t.name)
	ids := make([]trace.SiteID, 0, len(t.sites))
	for id := range t.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t.uvarint(uint64(len(ids)))
	for _, id := range ids {
		t.uvarint(uint64(id))
		t.writeString(t.sites[id])
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutUvarint(buf[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutVarint(buf[:], v)]...)
}

// Emit implements trace.Sink: encode one event into the open frame,
// flushing the frame when it reaches the batch size.
func (t *Writer) Emit(e trace.Event) {
	if !t.wroteHeader {
		t.header()
	}
	// Deltas use two's-complement wrap-around so every 64-bit value round-
	// trips; frames reset the baselines to 0 to stay self-contained.
	var ok bool
	t.frame, ok = appendEvent(t.frame, e, &t.lastAddr, &t.lastTime)
	if !ok {
		t.fail(fmt.Errorf("tracefmt: cannot encode event kind %d", e.Kind))
		return
	}
	t.inFrame++
	t.events++
	if t.inFrame >= t.batch {
		t.flushFrame()
	}
}

// flushFrame writes the open frame: sync marker, payload length, CRC32C of
// the payload, record count, records. The marker lets a lenient reader find
// the next frame boundary after corruption; the checksum tells it whether a
// candidate boundary really is one.
func (t *Writer) flushFrame() {
	if t.inFrame == 0 {
		return
	}
	// Reuse one envelope buffer across frames: bufio copies the bytes out
	// synchronously, so the writer's steady state allocates nothing.
	t.out = appendFrame(t.out[:0], t.frame, t.inFrame)
	t.write(t.out)
	t.frame = t.frame[:0]
	t.inFrame = 0
	t.lastAddr = 0
	t.lastTime = 0
}

// Flush writes any buffered frame and flushes the underlying writer.
func (t *Writer) Flush() error {
	t.flushFrame()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes the trace and returns the first error encountered, if any.
// A trace with no events still gets its header, so an empty file is valid.
func (t *Writer) Close() error {
	if !t.wroteHeader {
		t.header()
	}
	return t.Flush()
}

// BytesWritten reports the encoded size so far (flushed frames only).
func (t *Writer) BytesWritten() int64 { return t.n }

// Events reports how many events have been emitted.
func (t *Writer) Events() int64 { return t.events }
