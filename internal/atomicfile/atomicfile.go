// Package atomicfile is the one implementation of the crash-atomic write
// discipline every durable artifact uses: data goes to <path>.tmp, the
// tmp file is fsynced, renamed over path, and the directory fsynced. A
// reader therefore sees either the previous complete file or the new
// complete file — never a torn mixture — and a failed write leaves the
// previous durable copy untouched.
//
// Checkpoints (ORMCKPT), final session states, the router table
// (ORMRTAB), and optimization plans (ORMPLAN) all commit through Write.
// Failures surface as a typed *WriteError naming the stage that failed
// (create, write, sync, close, rename), wrapping the underlying cause so
// errors.Is(err, syscall.ENOSPC) and friends keep working.
//
// The filesystem is reached through the FS interface so the fault
// injection suite (internal/faultinject) can stand in a disk that runs
// out of space mid-write, tears the tmp file, or fails the rename — and
// prove that every caller's previous durable copy survives.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File that Write needs from an open file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the subset of the filesystem that Write needs. OS is the real
// implementation; internal/faultinject provides broken ones.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// OpenDir opens a directory for syncing. Directory-sync failures are
	// advisory (the rename already happened), so Write treats an OpenDir
	// or Sync error here as best-effort.
	OpenDir(name string) (File, error)
}

// OS is the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }

func (OS) OpenDir(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// defaultFS is what Write uses; SetFS swaps it for fault injection.
var defaultFS FS = OS{}

// SetFS replaces the filesystem behind Write and returns a func that
// restores the previous one. It exists for fault-injection tests; swap
// only while no writer is in flight.
func SetFS(fs FS) (restore func()) {
	prev := defaultFS
	defaultFS = fs
	return func() { defaultFS = prev }
}

// WriteError is the typed failure of an atomic write: which path, which
// stage of the tmp+fsync+rename sequence, and the underlying cause. By
// construction the previous durable copy of Path is intact whenever a
// *WriteError is returned: every stage either never touched Path or
// failed before the rename, and the tmp file has been removed.
type WriteError struct {
	Path  string // the destination the caller asked for
	Stage string // create, write, sync, close, or rename
	Err   error  // the underlying filesystem error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("atomic write %s: %s: %v", e.Path, e.Stage, e.Err)
}

func (e *WriteError) Unwrap() error { return e.Err }

// Write commits data to path crash-atomically on the default filesystem.
func Write(path string, data []byte) error {
	return WriteFS(defaultFS, path, data)
}

// WriteFS commits data to path crash-atomically on fsys: tmp + fsync +
// rename + best-effort directory fsync. On failure the tmp file is
// removed, the previous file at path is untouched, and the error is a
// *WriteError naming the failed stage.
func WriteFS(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return &WriteError{Path: path, Stage: "create", Err: err}
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return &WriteError{Path: path, Stage: "write", Err: err}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return &WriteError{Path: path, Stage: "sync", Err: err}
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return &WriteError{Path: path, Stage: "close", Err: err}
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return &WriteError{Path: path, Stage: "rename", Err: err}
	}
	if dir, err := fsys.OpenDir(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}
