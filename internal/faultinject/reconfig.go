package faultinject

// Reconfiguration fault injection. A live ring change has its own failure
// vocabulary beyond dead/flapping/slow shards: the orchestrator can die
// between migration stages, an operator (or their retry loop) can submit
// the same topology command twice, and a standby router can silently stop
// receiving replication and go stale. Each class below makes one of those
// deterministic, so a resize-under-fire soak failure replays exactly.

import (
	"net"
	"sync"
	"sync/atomic"
)

// MigrationTrap builds a migration-stage hook (the cluster's MigrateHook
// shape) that fires action exactly once: on the n-th time (1-based) the
// named stage is reported, for any session. The stages a migration
// reports, in order, are "held", "handoff", "adopted", "repointed" — so a
// trap on "adopted" with an action that kills the source shard exercises
// the two-durable-copies window, and one on "handoff" the
// still-only-at-source window.
func MigrationTrap(stage string, n int64, action func(session string)) func(stage, session string) {
	var seen atomic.Int64
	var once sync.Once
	return func(s, session string) {
		if s != stage {
			return
		}
		if seen.Add(1) == n {
			once.Do(func() { action(session) })
		}
	}
}

// DuplicateCommand submits the same admin command twice back to back —
// the operator whose first attempt timed out on the reply and whose retry
// therefore replays a command that was already applied. It returns the
// first submission's result and both errors; against a correct epoch-CAS
// admin plane the first succeeds and the second is refused as stale.
func DuplicateCommand(cmd func() (uint64, error)) (epoch uint64, first, second error) {
	epoch, first = cmd()
	_, second = cmd()
	return epoch, first, second
}

// MuteListener wraps ln so the first n accepted connections are served
// normally and every later one is closed immediately. Wrapped around a
// standby router's admin listener it manufactures the stale-epoch
// replica: replication lands during setup, then stops arriving, and the
// standby's table quietly falls behind the active's epoch — the state a
// correct cluster must refuse to promote placements from, not serve.
func MuteListener(ln net.Listener, n int) net.Listener {
	return &muteListener{Listener: ln, budget: int64(n)}
}

type muteListener struct {
	net.Listener
	budget int64
	done   atomic.Int64
}

func (l *muteListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.done.Add(1) <= l.budget {
			return conn, nil
		}
		conn.Close()
	}
}
