package faultinject

// Network fault injection for the ormpd service layer: deterministic
// net.Conn and net.Listener wrappers covering the fault classes a
// trace-pushing client must survive — connections reset mid-frame,
// reads that stall against deadlines, writes that land partially before
// failing, and listeners that refuse service. As with the stream
// wrappers above, the same parameters always produce the same fault at
// the same byte position.

import (
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the error surfaced by connections cut by
// ResetAfterBytes and PartialWrite — a stand-in for ECONNRESET.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// ErrRefused is the error surfaced by RefuseListener for refused
// connections — a stand-in for ECONNREFUSED.
var ErrRefused = errors.New("faultinject: injected connection refusal")

// ResetAfterBytes wraps conn so the connection dies (both directions,
// ErrInjectedReset) once n total bytes have been written through it. The
// cut lands mid-frame for any n that is not a frame boundary, which is
// exactly the interesting case.
func ResetAfterBytes(conn net.Conn, n int64) net.Conn {
	return &resetConn{Conn: conn, budget: n}
}

type resetConn struct {
	net.Conn
	budget int64 // remaining write bytes before the reset
	dead   atomic.Bool
}

func (c *resetConn) Write(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, ErrInjectedReset
	}
	if int64(len(p)) >= c.budget {
		k := int(c.budget)
		if k > 0 {
			c.Conn.Write(p[:k])
		}
		c.dead.Store(true)
		c.Conn.Close()
		return k, ErrInjectedReset
	}
	c.budget -= int64(len(p))
	return c.Conn.Write(p)
}

func (c *resetConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

// StallConn wraps conn so that after n bytes have been read through it,
// every subsequent Read blocks for d before touching the network — a
// peer that stops talking. Reads still honor the connection deadline,
// so the victim's idle timeout is what cuts the stall short.
func StallConn(conn net.Conn, n int64, d time.Duration) net.Conn {
	return &stallConn{Conn: conn, after: n, d: d}
}

type stallConn struct {
	net.Conn
	after int64
	d     time.Duration
	got   atomic.Int64
}

func (c *stallConn) Read(p []byte) (int, error) {
	if c.got.Load() >= c.after {
		time.Sleep(c.d)
	}
	n, err := c.Conn.Read(p)
	c.got.Add(int64(n))
	return n, err
}

// PartialWrite wraps conn so its k-th Write (1-based) delivers only half
// the buffer before failing with ErrInjectedReset and killing the
// connection — a send buffer torn mid-flush.
func PartialWrite(conn net.Conn, k int) net.Conn {
	return &partialConn{Conn: conn, k: int64(k)}
}

type partialConn struct {
	net.Conn
	k      int64
	writes atomic.Int64
}

func (c *partialConn) Write(p []byte) (int, error) {
	if c.writes.Add(1) == c.k {
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, ErrInjectedReset
	}
	return c.Conn.Write(p)
}

// RefuseListener wraps ln so its first n accepted connections are closed
// immediately — from the client's perspective, the dial succeeds and the
// first read or write then fails, which is how a refusing or crashing
// server commonly manifests through loopback.
func RefuseListener(ln net.Listener, n int) net.Listener {
	return &refuseListener{Listener: ln, budget: int64(n)}
}

type refuseListener struct {
	net.Listener
	budget int64
	done   atomic.Int64
}

func (l *refuseListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.done.Add(1) > l.budget {
			return conn, nil
		}
		conn.Close()
	}
}

// FaultyDialer composes a dial function whose i-th connection (1-based)
// is wrapped by wrap(i, conn). It is the hook Push's Dial option wants:
// schedule a different fault per attempt and the whole scenario stays
// reproducible.
func FaultyDialer(dial func() (net.Conn, error), wrap func(attempt int, conn net.Conn) net.Conn) func() (net.Conn, error) {
	var attempts atomic.Int64
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return wrap(int(attempts.Add(1)), conn), nil
	}
}
