package faultinject

// Network fault injection for the ormpd service layer: deterministic
// net.Conn and net.Listener wrappers covering the fault classes a
// trace-pushing client must survive — connections reset mid-frame,
// reads that stall against deadlines, writes that land partially before
// failing, and listeners that refuse service. As with the stream
// wrappers above, the same parameters always produce the same fault at
// the same byte position.

import (
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the error surfaced by connections cut by
// ResetAfterBytes and PartialWrite — a stand-in for ECONNRESET.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// ErrRefused is the error surfaced by RefuseListener for refused
// connections — a stand-in for ECONNREFUSED.
var ErrRefused = errors.New("faultinject: injected connection refusal")

// ResetAfterBytes wraps conn so the connection dies (both directions,
// ErrInjectedReset) once n total bytes have been written through it. The
// cut lands mid-frame for any n that is not a frame boundary, which is
// exactly the interesting case.
func ResetAfterBytes(conn net.Conn, n int64) net.Conn {
	return &resetConn{Conn: conn, budget: n}
}

type resetConn struct {
	net.Conn
	budget int64 // remaining write bytes before the reset
	dead   atomic.Bool
}

func (c *resetConn) Write(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, ErrInjectedReset
	}
	if int64(len(p)) >= c.budget {
		k := int(c.budget)
		if k > 0 {
			c.Conn.Write(p[:k])
		}
		c.dead.Store(true)
		c.Conn.Close()
		return k, ErrInjectedReset
	}
	c.budget -= int64(len(p))
	return c.Conn.Write(p)
}

func (c *resetConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

// StallConn wraps conn so that after n bytes have been read through it,
// every subsequent Read blocks for d before touching the network — a
// peer that stops talking. Reads still honor the connection deadline,
// so the victim's idle timeout is what cuts the stall short.
func StallConn(conn net.Conn, n int64, d time.Duration) net.Conn {
	return &stallConn{Conn: conn, after: n, d: d}
}

type stallConn struct {
	net.Conn
	after int64
	d     time.Duration
	got   atomic.Int64
}

func (c *stallConn) Read(p []byte) (int, error) {
	if c.got.Load() >= c.after {
		time.Sleep(c.d)
	}
	n, err := c.Conn.Read(p)
	c.got.Add(int64(n))
	return n, err
}

// PartialWrite wraps conn so its k-th Write (1-based) delivers only half
// the buffer before failing with ErrInjectedReset and killing the
// connection — a send buffer torn mid-flush.
func PartialWrite(conn net.Conn, k int) net.Conn {
	return &partialConn{Conn: conn, k: int64(k)}
}

type partialConn struct {
	net.Conn
	k      int64
	writes atomic.Int64
}

func (c *partialConn) Write(p []byte) (int, error) {
	if c.writes.Add(1) == c.k {
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, ErrInjectedReset
	}
	return c.Conn.Write(p)
}

// RefuseListener wraps ln so its first n accepted connections are closed
// immediately — from the client's perspective, the dial succeeds and the
// first read or write then fails, which is how a refusing or crashing
// server commonly manifests through loopback.
func RefuseListener(ln net.Listener, n int) net.Listener {
	return &refuseListener{Listener: ln, budget: int64(n)}
}

type refuseListener struct {
	net.Listener
	budget int64
	done   atomic.Int64
}

func (l *refuseListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.done.Add(1) > l.budget {
			return conn, nil
		}
		conn.Close()
	}
}

// The cluster fault classes. A sharded ormpd deployment dies in ways a
// single daemon cannot: a shard can be dead (covered by killing the shard
// server, plus RefuseListener for never-up), flapping (alternating
// accept/refuse so the router's failover state machine keeps changing its
// mind), slow (alive but serving at a crawl, which must read as degraded
// throughput, never as down), or partitioned (a connection that silently
// stops passing bytes without closing — the failure mode that only
// deadlines can detect). All wrappers below are deterministic in their
// parameters: same schedule, same fault, same position, every run.

// FlappingListener wraps ln so accepted connections cycle deterministically
// through availability: each period of up+down connections serves the
// first up normally and closes the next down immediately. up must be at
// least 1. It is the "flapping shard" fault class: the shard is neither
// reliably up nor reliably down, and the router must neither wedge on it
// nor bounce a session forever.
func FlappingListener(ln net.Listener, up, down int) net.Listener {
	if up < 1 {
		panic("faultinject: FlappingListener needs up >= 1")
	}
	return &flappingListener{Listener: ln, up: int64(up), period: int64(up + down)}
}

type flappingListener struct {
	net.Listener
	up     int64
	period int64
	n      atomic.Int64
}

func (l *flappingListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if (l.n.Add(1)-1)%l.period < l.up {
			return conn, nil
		}
		conn.Close()
	}
}

// SlowConn wraps conn so every Read and Write sleeps for d first — a
// shard that is alive but serving at a crawl. Unlike StallConn the delay
// is unconditional and bounded, so the peer's deadlines should NOT fire:
// the contract under test is that slowness degrades throughput without
// ever being misclassified as death.
func SlowConn(conn net.Conn, d time.Duration) net.Conn {
	return &slowConn{Conn: conn, d: d}
}

type slowConn struct {
	net.Conn
	d time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.d)
	return c.Conn.Read(p)
}

func (c *slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.d)
	return c.Conn.Write(p)
}

// PartitionConn wraps conn so that once n total bytes have crossed it (in
// either direction) the connection is partitioned: every subsequent Read
// and Write blocks for d, then fails with ErrInjectedReset. Until the
// partition trips, traffic flows untouched; after it, nothing crosses and
// nothing closes — the torn-but-not-closed connection a router or merge
// reader can only escape via its own deadline or retry budget.
func PartitionConn(conn net.Conn, n int64, d time.Duration) net.Conn {
	return &partitionConn{Conn: conn, budget: n, d: d}
}

type partitionConn struct {
	net.Conn
	budget int64
	d      time.Duration
	moved  atomic.Int64
}

func (c *partitionConn) partitioned() bool { return c.moved.Load() >= c.budget }

func (c *partitionConn) Read(p []byte) (int, error) {
	if c.partitioned() {
		time.Sleep(c.d)
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Read(p)
	c.moved.Add(int64(n))
	return n, err
}

func (c *partitionConn) Write(p []byte) (int, error) {
	if c.partitioned() {
		time.Sleep(c.d)
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Write(p)
	c.moved.Add(int64(n))
	return n, err
}

// FaultyDialer composes a dial function whose i-th connection (1-based)
// is wrapped by wrap(i, conn). It is the hook Push's Dial option wants:
// schedule a different fault per attempt and the whole scenario stays
// reproducible.
func FaultyDialer(dial func() (net.Conn, error), wrap func(attempt int, conn net.Conn) net.Conn) func() (net.Conn, error) {
	var attempts atomic.Int64
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return wrap(int(attempts.Add(1)), conn), nil
	}
}
