package faultinject

import (
	"os"
	"sync/atomic"
	"syscall"

	"ormprof/internal/atomicfile"
)

// This file is the disk half of the fault suite: an atomicfile.FS that
// behaves like a disk going bad under the durable-artifact writers
// (ORMCKPT checkpoints, final states, the ORMRTAB router table, ORMPLAN
// plans). Faults are deterministic — a byte budget is spent in call
// order — so a failing test replays exactly.

// FaultFS wraps the real filesystem with injected write-path faults. The
// zero value injects nothing; each field arms one fault class:
//
//   - BytesBudget ≥ 0: the disk holds that many more bytes. The write
//     that crosses the budget commits only the prefix that fits — a torn
//     tmp file, exactly what a full disk leaves behind — and returns
//     ENOSPC. Subsequent writes fail immediately.
//   - FailSync: every Sync fails with EIO (writes seemed fine, the disk
//     lied at the barrier).
//   - FailRename: every Rename fails with EIO (the commit point itself
//     fails).
//
// Everything else passes through to the OS, so the files a test hands to
// the real loaders afterwards are exactly what a crashed writer would
// have left on disk.
type FaultFS struct {
	// BytesBudget is the remaining disk capacity in bytes; negative means
	// unlimited. Spent atomically across all files opened through this FS.
	BytesBudget int64
	// FailSync makes every file Sync fail with syscall.EIO.
	FailSync bool
	// FailRename makes every Rename fail with syscall.EIO.
	FailRename bool

	unlimited bool
	remaining atomic.Int64
	armed     atomic.Bool
}

var _ atomicfile.FS = (*FaultFS)(nil)

func (f *FaultFS) arm() {
	if f.armed.CompareAndSwap(false, true) {
		f.unlimited = f.BytesBudget < 0
		f.remaining.Store(f.BytesBudget)
	}
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (atomicfile.File, error) {
	f.arm()
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.arm()
	if f.FailRename {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	return os.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return os.Remove(name) }

func (f *FaultFS) OpenDir(name string) (atomicfile.File, error) {
	file, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, dir: true}, nil
}

// faultFile spends the FS byte budget on writes and injects sync faults.
type faultFile struct {
	fs  *FaultFS
	f   *os.File
	dir bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.unlimited {
		return ff.f.Write(p)
	}
	// Spend the budget first, then commit exactly the prefix that fit:
	// a concurrent writer can race for the last bytes, but each byte is
	// sold once, so the torn file's length always matches the budget.
	n := int64(len(p))
	left := ff.fs.remaining.Add(-n)
	if left >= 0 {
		return ff.f.Write(p)
	}
	fits := n + left // bytes that were still in budget, possibly ≤ 0
	if fits <= 0 {
		return 0, &os.PathError{Op: "write", Path: ff.f.Name(), Err: syscall.ENOSPC}
	}
	if _, err := ff.f.Write(p[:fits]); err != nil {
		return 0, err
	}
	return int(fits), &os.PathError{Op: "write", Path: ff.f.Name(), Err: syscall.ENOSPC}
}

func (ff *faultFile) Sync() error {
	if ff.fs.FailSync && !ff.dir {
		return &os.PathError{Op: "sync", Path: ff.f.Name(), Err: syscall.EIO}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
