package faultinject_test

// Disk-fault tests for the durable-artifact writers. The claim under
// test is the atomic-write contract end to end: when the disk fills
// mid-write, tears the tmp file, fails the sync barrier, or fails the
// rename, every writer (checkpoint.Save, SaveRouterTable, plan.Save)
// surfaces a typed *atomicfile.WriteError wrapping the real errno — and
// the previous durable copy still loads, byte-for-byte.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"ormprof/internal/atomicfile"
	"ormprof/internal/checkpoint"
	"ormprof/internal/faultinject"
	"ormprof/internal/govern"
	"ormprof/internal/plan"
	"ormprof/internal/trace"
)

// diskFaults enumerates the injected fault classes and the errno each
// must surface.
var diskFaults = []struct {
	name  string
	fs    func() *faultinject.FaultFS
	errno syscall.Errno
	stage string
}{
	{"enospc-immediately", func() *faultinject.FaultFS { return &faultinject.FaultFS{BytesBudget: 0} }, syscall.ENOSPC, "write"},
	{"enospc-torn-write", func() *faultinject.FaultFS { return &faultinject.FaultFS{BytesBudget: 7} }, syscall.ENOSPC, "write"},
	{"sync-fails", func() *faultinject.FaultFS { return &faultinject.FaultFS{BytesBudget: -1, FailSync: true} }, syscall.EIO, "sync"},
	{"rename-fails", func() *faultinject.FaultFS { return &faultinject.FaultFS{BytesBudget: -1, FailRename: true} }, syscall.EIO, "rename"},
}

// checkWriteFault asserts the typed-error contract: err unwraps to a
// *atomicfile.WriteError at the expected stage, carries the expected
// errno, and no tmp litter remains next to path.
func checkWriteFault(t *testing.T, err error, path, stage string, errno syscall.Errno) {
	t.Helper()
	if err == nil {
		t.Fatal("faulty write reported success")
	}
	var we *atomicfile.WriteError
	if !errors.As(err, &we) {
		t.Fatalf("error is not a *atomicfile.WriteError: %v", err)
	}
	if we.Stage != stage {
		t.Errorf("failed at stage %q, want %q (err: %v)", we.Stage, stage, err)
	}
	if !errors.Is(err, errno) {
		t.Errorf("error does not wrap %v: %v", errno, err)
	}
	if _, serr := os.Stat(path + ".tmp"); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("tmp file left behind after failed write (stat: %v)", serr)
	}
}

// TestCheckpointSaveDiskFaults: a checkpoint overwrite that hits a disk
// fault fails typed and leaves the previous checkpoint loading intact.
func TestCheckpointSaveDiskFaults(t *testing.T) {
	prev := &checkpoint.State{SessionID: "s", Workload: "w", FramesApplied: 3, EventsApplied: 96}
	next := &checkpoint.State{SessionID: "s", Workload: "w", FramesApplied: 9, EventsApplied: 288}
	for _, tc := range diskFaults {
		t.Run(tc.name, func(t *testing.T) {
			path := checkpoint.PathFor(t.TempDir(), "s")
			if err := checkpoint.Save(path, prev); err != nil {
				t.Fatal(err)
			}
			restore := atomicfile.SetFS(tc.fs())
			err := checkpoint.Save(path, next)
			restore()
			checkWriteFault(t, err, path, tc.stage, tc.errno)
			got, lerr := checkpoint.Load(path)
			if lerr != nil {
				t.Fatalf("previous checkpoint no longer loads: %v", lerr)
			}
			if got.FramesApplied != prev.FramesApplied || got.EventsApplied != prev.EventsApplied {
				t.Errorf("previous durable copy changed: cursor %d/%d, want %d/%d",
					got.FramesApplied, got.EventsApplied, prev.FramesApplied, prev.EventsApplied)
			}
		})
	}
}

// TestRouterTableSaveDiskFaults: same contract for the ORMRTAB writer.
func TestRouterTableSaveDiskFaults(t *testing.T) {
	prev := &checkpoint.RouterState{Epoch: 4, Shards: []string{"a:1", "b:1"},
		Routes: map[string]string{"sess": "b:1"}}
	next := &checkpoint.RouterState{Epoch: 5, Shards: []string{"a:1"}}
	for _, tc := range diskFaults {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "router.rtab")
			if err := checkpoint.SaveRouterTable(path, prev); err != nil {
				t.Fatal(err)
			}
			restore := atomicfile.SetFS(tc.fs())
			err := checkpoint.SaveRouterTable(path, next)
			restore()
			checkWriteFault(t, err, path, tc.stage, tc.errno)
			got, lerr := checkpoint.LoadRouterTable(path)
			if lerr != nil {
				t.Fatalf("previous router table no longer loads: %v", lerr)
			}
			if got.Epoch != prev.Epoch || !reflect.DeepEqual(got.Shards, prev.Shards) {
				t.Errorf("previous durable copy changed: epoch %d shards %v, want epoch %d shards %v",
					got.Epoch, got.Shards, prev.Epoch, prev.Shards)
			}
		})
	}
}

// TestPlanSaveDiskFaults: same contract for the ORMPLAN writer.
func TestPlanSaveDiskFaults(t *testing.T) {
	prev := &plan.Plan{Workload: "w", Region: 0x1000,
		Prefetch: []plan.PrefetchRule{{Instr: 7, Stride: 64, Distance: 4}}}
	next := &plan.Plan{Workload: "w", Region: 0x2000,
		Prefetch: []plan.PrefetchRule{{Instr: 7, Stride: 64, Distance: 4}, {Instr: 9, Stride: 128, Distance: 4}}}
	for _, tc := range diskFaults {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w.ormplan")
			if err := plan.Save(path, prev); err != nil {
				t.Fatal(err)
			}
			restore := atomicfile.SetFS(tc.fs())
			err := plan.Save(path, next)
			restore()
			checkWriteFault(t, err, path, tc.stage, tc.errno)
			got, lerr := plan.Load(path)
			if lerr != nil {
				t.Fatalf("previous plan no longer loads: %v", lerr)
			}
			if got.Region != prev.Region || len(got.Prefetch) != len(prev.Prefetch) {
				t.Errorf("previous durable copy changed: region %#x rules %d, want %#x %d",
					got.Region, len(got.Prefetch), prev.Region, len(prev.Prefetch))
			}
		})
	}
}

// TestTornTmpWriteLeavesPrefix: the ENOSPC torn write really does tear —
// the failing writer sees a partial file of exactly the budgeted length
// mid-sequence — yet atomicfile removes it and the target never existed.
func TestTornTmpWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	ffs := &faultinject.FaultFS{BytesBudget: 7}
	err := atomicfile.WriteFS(ffs, path, []byte("0123456789abcdef"))
	checkWriteFault(t, err, path, "write", syscall.ENOSPC)
	if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("target file exists after torn first write (stat: %v)", serr)
	}
}

// TestFaultFSBudgetSharedAcrossFiles: the byte budget models one disk,
// not one file — a second writer on the same FS inherits what the first
// left. Ensures multi-artifact flush tests exercise cascading ENOSPC.
func TestFaultFSBudgetSharedAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultinject.FaultFS{BytesBudget: 10}
	if err := atomicfile.WriteFS(ffs, filepath.Join(dir, "a"), []byte("12345678")); err != nil {
		t.Fatalf("first write within budget failed: %v", err)
	}
	err := atomicfile.WriteFS(ffs, filepath.Join(dir, "b"), []byte("12345678"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second write exceeding the shared budget: got %v, want ENOSPC", err)
	}
}

// TestSketchCheckpointSurvivesDiskFault: the sketch rungs ride the same
// discipline — a checkpoint carrying a ladder snapshot at a sketch rung
// keeps its previous durable copy through an ENOSPC overwrite. Guards
// the PR's two new rungs against regressions in the fault path.
func TestSketchCheckpointSurvivesDiskFault(t *testing.T) {
	st := sketchState(t, 2000)
	path := checkpoint.PathFor(t.TempDir(), "sk")
	if err := checkpoint.Save(path, st); err != nil {
		t.Fatal(err)
	}
	restore := atomicfile.SetFS(&faultinject.FaultFS{BytesBudget: 128})
	err := checkpoint.Save(path, sketchState(t, 4000))
	restore()
	checkWriteFault(t, err, path, "write", syscall.ENOSPC)
	got, lerr := checkpoint.Load(path)
	if lerr != nil {
		t.Fatalf("previous sketch checkpoint no longer loads: %v", lerr)
	}
	if got.Ladder == nil || got.Ladder.SketchStride == nil {
		t.Fatal("restored checkpoint lost its sketch-stride ladder snapshot")
	}
	if got.EventsApplied != st.EventsApplied {
		t.Errorf("cursor %d, want %d", got.EventsApplied, st.EventsApplied)
	}
}

// sketchState builds a checkpoint State whose ladder sits on the
// sketch-stride rung after n synthetic events.
func sketchState(t *testing.T, n uint64) *checkpoint.State {
	t.Helper()
	lad := govern.NewLadder(govern.Config{
		Budget:    govern.NewBudget(0),
		StartRung: govern.RungSketchStride,
	})
	for i := uint64(0); i < n; i++ {
		lad.Emit(trace.Event{Kind: trace.EvAccess,
			Instr: trace.InstrID(i % 17), Addr: trace.Addr(0x1000 + 8*i)})
	}
	return &checkpoint.State{
		SessionID: "sk", Workload: "w",
		FramesApplied: 1, EventsApplied: n,
		Ladder: lad.Snapshot(),
	}
}
