// Package faultinject wraps the streaming pipeline's interfaces with
// deliberately broken implementations — the hostile-input half of the
// robustness test suite. Each wrapper injects exactly one fault class the
// fault-tolerant pipeline must survive:
//
//   - CorruptByte / Truncate damage the encoded byte stream, exercising
//     the lenient reader's checksum detection and frame resynchronization;
//   - FlipField, PanicAfter, ErrorAfter, and Stall damage the decoded
//     event stream, exercising salvage drains, panic containment, and
//     deadline enforcement;
//   - PanicSCC crashes a downstream compression stage, exercising the
//     fan-out stages' worker containment.
//
// Everything here is deterministic: the same wrapper parameters produce
// the same fault at the same position, so a soak failure replays exactly.
package faultinject

import (
	"fmt"
	"io"
	"time"

	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// CorruptByte returns a reader that delivers r's bytes with the byte at
// the given offset XORed with mask (mask 0 is promoted to 0xFF so the
// byte always actually changes).
func CorruptByte(r io.Reader, offset int64, mask byte) io.Reader {
	if mask == 0 {
		mask = 0xff
	}
	return &corruptReader{r: r, offset: offset, mask: mask}
}

type corruptReader struct {
	r      io.Reader
	offset int64
	mask   byte
	pos    int64
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.offset >= c.pos && c.offset < c.pos+int64(n) {
		p[c.offset-c.pos] ^= c.mask
	}
	c.pos += int64(n)
	return n, err
}

// Truncate returns a reader that ends the stream (clean io.EOF) after n
// bytes — a partially written or torn trace file.
func Truncate(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// FlipField returns a source that delivers src's events with the Nth
// (0-based) event passed through mutate — bit rot that slipped past the
// encoding layer, or a buggy producer.
func FlipField(src trace.Source, n int64, mutate func(*trace.Event)) trace.Source {
	var i int64
	return trace.SourceFunc(func() (trace.Event, error) {
		e, err := src.Next()
		if err == nil {
			if i == n {
				mutate(&e)
			}
			i++
		}
		return e, err
	})
}

// PanicAfter returns a source that panics on the Nth (0-based) call to
// Next — a crashing producer inside the pipeline's own goroutine.
func PanicAfter(src trace.Source, n int64) trace.Source {
	var i int64
	return trace.SourceFunc(func() (trace.Event, error) {
		if i == n {
			panic(fmt.Sprintf("faultinject: injected panic at event %d", n))
		}
		i++
		return src.Next()
	})
}

// ErrorAfter returns a source that fails with err after delivering n
// events — a typed mid-stream failure.
func ErrorAfter(src trace.Source, n int64, err error) trace.Source {
	var i int64
	return trace.SourceFunc(func() (trace.Event, error) {
		if i >= n {
			return trace.Event{}, err
		}
		i++
		return src.Next()
	})
}

// Stall returns a source that blocks for d before delivering the Nth
// (0-based) event — a stalled producer. The stall is duration-bounded by
// construction: cooperative cancellation cannot preempt a blocked Next, so
// an unbounded stall is indistinguishable from a hang; what a deadline
// buys is that the pipeline notices the overrun at the next delivered
// event and stops there (see trace.DrainContext).
func Stall(src trace.Source, n int64, d time.Duration) trace.Source {
	var i int64
	return trace.SourceFunc(func() (trace.Event, error) {
		if i == n {
			time.Sleep(d)
		}
		i++
		return src.Next()
	})
}

// PanicSCC returns an SCC that consumes into next but panics on the Nth
// (0-based) record — a crashing compression worker.
func PanicSCC(next profiler.SCC, n uint64) profiler.SCC {
	return &panicSCC{next: next, n: n}
}

type panicSCC struct {
	next profiler.SCC
	n    uint64
	i    uint64
}

func (p *panicSCC) Consume(r profiler.Record) {
	if p.i == p.n {
		panic(fmt.Sprintf("faultinject: injected SCC panic at record %d", p.n))
	}
	p.i++
	p.next.Consume(r)
}

func (p *panicSCC) Finish() { p.next.Finish() }
