package report

import (
	"encoding/csv"
	"io"
)

// WriteCSV emits the table in CSV form (header row first), for feeding
// results into external plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		// Pad short rows so every record has the header's width.
		padded := make([]string, len(t.header))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
