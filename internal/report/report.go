// Package report renders the experiment results as plain-text tables and
// bar charts, shared by the command-line tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v except float64, which gets two decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		total += int64(n)
		return err
	}
	if err := line(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return total, err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder never fails
	return b.String()
}

// BarChart renders labelled horizontal bars scaled to maxWidth characters,
// used for the error-distribution figures.
func BarChart(w io.Writer, labels []string, values []float64, maxWidth int) {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	maxVal := 0.0
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(maxWidth))
		}
		fmt.Fprintf(w, "%*s | %s %.1f%%\n", labelW, labels[i], strings.Repeat("#", bar), 100*v)
	}
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Delta formats the relative change from before to after as a signed
// percentage (negative = reduction), for before/after comparison tables.
// A zero baseline with a nonzero after has no finite percentage and
// renders "n/a".
func Delta(before, after uint64) string {
	if before == 0 {
		if after == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(after)-float64(before))/float64(before))
}

// Ratio formats a compression ratio like Table 1 ("3539x").
func Ratio(v float64) string { return fmt.Sprintf("%.0fx", v) }
