package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Name", "Value")
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "23456")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator line: %q", lines[1])
	}
	// The Value column must start at the same offset on every row.
	idx := strings.Index(lines[0], "Value")
	if !strings.Contains(lines[3][idx:], "23456") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("A", "B", "C")
	tbl.AddRowf("x", 3.14159, 42)
	out := tbl.String()
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Errorf("float formatting: %q", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int formatting: %q", out)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tbl := NewTable("A")
	tbl.AddRow("x", "dropped")
	if strings.Contains(tbl.String(), "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	BarChart(&b, []string{"a", "bb"}, []float64{0.5, 1.0}, 10)
	out := b.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Errorf("half bar missing:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "100.0%") {
		t.Errorf("percentages missing:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var b strings.Builder
	BarChart(&b, []string{"a"}, []float64{0}, 0)
	if !strings.Contains(b.String(), "0.0%") {
		t.Error("zero bar not rendered")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
	if Ratio(3539.4) != "3539x" {
		t.Errorf("Ratio = %q", Ratio(3539.4))
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := NewTable("A", "B")
	tbl.AddRow("x", "1")
	tbl.AddRow("y") // short row: padded
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "A,B\nx,1\ny,\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
