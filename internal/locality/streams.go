package locality

import (
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// LineSink is a trace.Sink that feeds every touched cache line of the raw
// access stream into a reuse-distance analyzer (the hardware-level locality
// view).
type LineSink struct {
	a     *Analyzer
	shift uint
}

// NewLineSink returns a sink analyzing reuse at lineBytes granularity.
func NewLineSink(lineBytes uint) *LineSink {
	shift := uint(0)
	for b := lineBytes; b > 1; b >>= 1 {
		shift++
	}
	return &LineSink{a: NewAnalyzer(), shift: shift}
}

// Emit implements trace.Sink.
func (s *LineSink) Emit(e trace.Event) {
	if e.Kind != trace.EvAccess {
		return
	}
	first := uint64(e.Addr) >> s.shift
	size := e.Size
	if size == 0 {
		size = 1
	}
	last := (uint64(e.Addr) + uint64(size) - 1) >> s.shift
	for line := first; line <= last; line++ {
		s.a.Touch(line)
	}
}

// Histogram returns the distances observed so far.
func (s *LineSink) Histogram() Histogram { return s.a.Histogram() }

// LineHistogram computes the cache-line reuse-distance distribution of a
// materialized access trace — the slice adapter over LineSink.
func LineHistogram(events []trace.Event, lineBytes uint) Histogram {
	s := NewLineSink(lineBytes)
	for _, e := range events {
		s.Emit(e)
	}
	return s.Histogram()
}

// ObjectHistogram computes the object-level reuse-distance distribution of
// an object-relative stream: keys are (group, object) pairs, so the
// distance counts distinct *objects* touched between reuses — the paper's
// object-granularity locality, free of allocator placement effects.
// Unmapped accesses are keyed by their raw address.
func ObjectHistogram(recs []profiler.Record) Histogram {
	a := NewAnalyzer()
	for _, r := range recs {
		var key uint64
		if r.Ref.Group == 0 {
			key = 1<<63 | r.Ref.Offset
		} else {
			key = uint64(r.Ref.Group)<<32 | uint64(r.Ref.Object)
		}
		a.Touch(key)
	}
	return a.Histogram()
}
