package locality

import (
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// LineHistogram computes the cache-line reuse-distance distribution of a
// raw access trace (the hardware-level locality view).
func LineHistogram(events []trace.Event, lineBytes uint) Histogram {
	shift := uint(0)
	for b := lineBytes; b > 1; b >>= 1 {
		shift++
	}
	a := NewAnalyzer()
	for _, e := range events {
		if e.Kind != trace.EvAccess {
			continue
		}
		first := uint64(e.Addr) >> shift
		size := e.Size
		if size == 0 {
			size = 1
		}
		last := (uint64(e.Addr) + uint64(size) - 1) >> shift
		for line := first; line <= last; line++ {
			a.Touch(line)
		}
	}
	return a.Histogram()
}

// ObjectHistogram computes the object-level reuse-distance distribution of
// an object-relative stream: keys are (group, object) pairs, so the
// distance counts distinct *objects* touched between reuses — the paper's
// object-granularity locality, free of allocator placement effects.
// Unmapped accesses are keyed by their raw address.
func ObjectHistogram(recs []profiler.Record) Histogram {
	a := NewAnalyzer()
	for _, r := range recs {
		var key uint64
		if r.Ref.Group == 0 {
			key = 1<<63 | r.Ref.Offset
		} else {
			key = uint64(r.Ref.Group)<<32 | uint64(r.Ref.Object)
		}
		a.Touch(key)
	}
	return a.Histogram()
}
