package locality_test

import (
	"fmt"

	"ormprof/internal/locality"
)

// Reuse distances predict LRU cache behaviour: cycling through 4 keys gives
// every non-cold access a reuse distance of 3, so an LRU cache of capacity
// 4 never misses after warm-up while capacity 3 always does.
func Example() {
	a := locality.NewAnalyzer()
	for round := 0; round < 25; round++ {
		for key := uint64(0); key < 4; key++ {
			a.Touch(key)
		}
	}
	h := a.Histogram()
	fmt.Printf("distinct keys: %d\n", a.Distinct())
	fmt.Printf("miss ratio at capacity 3: %.2f\n", h.MissRatio(3))
	fmt.Printf("miss ratio at capacity 4: %.2f\n", h.MissRatio(4))
	// Output:
	// distinct keys: 4
	// miss ratio at capacity 3: 1.00
	// miss ratio at capacity 4: 0.04
}
