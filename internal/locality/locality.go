// Package locality quantifies data reference locality with reuse-distance
// (LRU stack distance) analysis — the measurement underlying Chilimbi's
// "quantifying and exploiting data reference locality" (the paper's related
// work [10], whose address abstraction the object-relative representation
// generalizes).
//
// The reuse distance of an access is the number of distinct keys touched
// since the previous access to the same key (∞ for first touches). The
// distribution predicts cache behaviour directly: a fully associative LRU
// cache of capacity C misses exactly the accesses with reuse distance ≥ C.
// Computing it naively is O(n²); the Analyzer uses the classic
// last-access-time + Fenwick-tree formulation for O(n log n).
//
// Keys are arbitrary: cache-line addresses give the hardware view, while
// (group, object) pairs from the object-relative stream give the paper's
// object-level locality view.
package locality

import "math/bits"

// Analyzer computes reuse distances online.
type Analyzer struct {
	lastTime map[uint64]int
	tree     fenwick
	now      int
	hist     Histogram
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{lastTime: make(map[uint64]int)}
}

// Touch records an access to key and returns its reuse distance
// (cold = true for the first touch, in which case dist is meaningless).
func (a *Analyzer) Touch(key uint64) (dist uint64, cold bool) {
	t := a.now
	a.now++
	a.tree.grow(t + 1)
	prev, seen := a.lastTime[key]
	a.lastTime[key] = t
	a.tree.add(t, 1)
	if !seen {
		a.hist.Cold++
		a.hist.Total++
		return 0, true
	}
	// Distinct keys touched strictly between prev and t: each currently
	// live key is marked exactly once, at its most recent access time.
	dist = uint64(a.tree.rangeSum(prev+1, t-1))
	a.tree.add(prev, -1)
	a.hist.add(dist)
	a.hist.Total++
	return dist, false
}

// Histogram returns the distances observed so far (log₂ bucketed), plus
// exact counts for small distances.
func (a *Analyzer) Histogram() Histogram { return a.hist }

// Distinct reports how many distinct keys have been touched.
func (a *Analyzer) Distinct() int { return len(a.lastTime) }

// Histogram is a reuse-distance distribution: exact counts for distances
// below 2^maxExact, log₂ buckets above, plus cold (first-touch) accesses.
type Histogram struct {
	// Exact[d] counts accesses with reuse distance d, for d < len(Exact).
	Exact [exactLimit]uint64
	// Log2[b] counts accesses with distance in [2^b, 2^(b+1)) for
	// distances ≥ exactLimit.
	Log2 [64]uint64
	// Cold counts first touches (infinite distance).
	Cold uint64
	// Total counts all accesses.
	Total uint64
}

const exactLimit = 1024

func (h *Histogram) add(d uint64) {
	if d < exactLimit {
		h.Exact[d]++
		return
	}
	h.Log2[bits.Len64(d)-1]++
}

// AtLeast counts accesses with reuse distance ≥ c, including cold misses
// (a cold access misses any cache). Distances in a log₂ bucket straddling c
// are counted conservatively as ≥ c (they may predict slightly more misses
// than reality for non-power-of-two capacities above exactLimit).
func (h *Histogram) AtLeast(c uint64) uint64 {
	n := h.Cold
	if c < exactLimit {
		for d := c; d < exactLimit; d++ {
			n += h.Exact[d]
		}
		for _, v := range h.Log2 {
			n += v
		}
		return n
	}
	for b, v := range h.Log2 {
		// Bucket b holds distances in [2^b, 2^(b+1)).
		if uint64(1)<<(b+1) > c {
			n += v
		}
	}
	return n
}

// MissRatio predicts the miss ratio of a fully associative LRU cache with
// capacity c keys: the fraction of accesses whose reuse distance is ≥ c.
// For capacities below the exact-count limit (1024) the prediction is
// exact.
func (h *Histogram) MissRatio(c uint64) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.AtLeast(c)) / float64(h.Total)
}

// fenwick is a grow-on-demand Fenwick (binary indexed) tree over access
// times with point update and prefix sum. Point values are kept alongside
// the tree because growth requires a rebuild: a new high node covers a
// range that spans old indices, so the tree cannot be zero-extended.
type fenwick struct {
	n     int
	tree  []int64
	marks []int64
}

func (f *fenwick) grow(n int) {
	if n <= f.n {
		return
	}
	capN := f.n
	if capN == 0 {
		capN = 1024
	}
	for capN < n {
		capN *= 2
	}
	marks := make([]int64, capN)
	copy(marks, f.marks)
	f.marks = marks
	f.n = capN
	// O(n) rebuild: initialize nodes to point values, then push each
	// node's total into its parent.
	f.tree = make([]int64, capN+1)
	for i := 1; i <= capN; i++ {
		f.tree[i] += marks[i-1]
		if j := i + i&(-i); j <= capN {
			f.tree[j] += f.tree[i]
		}
	}
}

func (f *fenwick) add(i int, delta int64) {
	f.marks[i] += delta
	for i++; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefix(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum sums marks in [lo, hi]; empty when lo > hi.
func (f *fenwick) rangeSum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	if lo == 0 {
		return f.prefix(hi)
	}
	return f.prefix(hi) - f.prefix(lo-1)
}
