package locality

import (
	"math/rand"
	"testing"

	"ormprof/internal/cachesim"
	"ormprof/internal/memsim"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// naive recomputes reuse distance by scanning backwards — the O(n²)
// reference the Fenwick implementation is checked against.
func naiveDistances(keys []uint64) (dists []int64) {
	for i, k := range keys {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if keys[j] == k {
				prev = j
				break
			}
		}
		if prev == -1 {
			dists = append(dists, -1) // cold
			continue
		}
		seen := make(map[uint64]bool)
		for j := prev + 1; j < i; j++ {
			seen[keys[j]] = true
		}
		dists = append(dists, int64(len(seen)))
	}
	return dists
}

func TestAnalyzerAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		// Cross the Fenwick growth boundary (1024) on some trials — tree
		// growth requires a rebuild, which a regression once got wrong.
		n := 1 + rng.Intn(500)
		if trial%10 == 0 {
			n = 2000 + rng.Intn(2000)
		}
		alphabet := 1 + rng.Intn(40)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(alphabet))
		}
		want := naiveDistances(keys)
		a := NewAnalyzer()
		for i, k := range keys {
			dist, cold := a.Touch(k)
			if want[i] == -1 {
				if !cold {
					t.Fatalf("trial %d access %d: expected cold", trial, i)
				}
				continue
			}
			if cold || int64(dist) != want[i] {
				t.Fatalf("trial %d access %d: dist %d cold=%v, want %d", trial, i, dist, cold, want[i])
			}
		}
		if a.Distinct() > alphabet {
			t.Fatalf("Distinct = %d > alphabet %d", a.Distinct(), alphabet)
		}
	}
}

func TestKnownSequence(t *testing.T) {
	// a b c a: reuse distance of the second 'a' is 2 (b and c between).
	a := NewAnalyzer()
	a.Touch(10)
	a.Touch(20)
	a.Touch(30)
	d, cold := a.Touch(10)
	if cold || d != 2 {
		t.Errorf("dist = %d, cold = %v; want 2, false", d, cold)
	}
	// Immediate reuse: distance 0.
	d, _ = a.Touch(10)
	if d != 0 {
		t.Errorf("immediate reuse dist = %d", d)
	}
}

func TestHistogramMissRatioExactness(t *testing.T) {
	// A fully associative LRU cache of capacity C misses exactly the
	// accesses with reuse distance ≥ C. Validate the histogram prediction
	// against the cache simulator configured with a single set, on a real
	// workload, for several capacities.
	prog, err := workloads.New("197.parser", workloads.Config{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)

	hist := LineHistogram(buf.Events, 64)

	for _, ways := range []int{4, 16, 64, 256} {
		c := cachesim.New(cachesim.Config{SizeBytes: ways * 64, LineBytes: 64, Ways: ways})
		for _, e := range buf.Events {
			if e.Kind == trace.EvAccess {
				c.Access(e.Addr, e.Size)
			}
		}
		measured := c.Stats().Misses
		predicted := hist.AtLeast(uint64(ways))
		if predicted != measured {
			t.Errorf("capacity %d: predicted %d misses, simulator measured %d", ways, predicted, measured)
		}
	}
}

func TestMissRatioMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAnalyzer()
	for i := 0; i < 20000; i++ {
		a.Touch(uint64(rng.Intn(3000)))
	}
	h := a.Histogram()
	prev := 1.1
	for _, c := range []uint64{1, 2, 8, 64, 512, 1024, 4096, 1 << 20} {
		mr := h.MissRatio(c)
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio not monotone: %v at capacity %d after %v", mr, c, prev)
		}
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio %v out of range", mr)
		}
		prev = mr
	}
	if h.MissRatio(1<<40) <= 0 {
		t.Error("cold misses must keep the ratio positive")
	}
	if (&Histogram{}).MissRatio(8) != 0 {
		t.Error("empty histogram ratio should be 0")
	}
}

func TestObjectVsLineLocality(t *testing.T) {
	// The linked-list workload touches each 48-byte node once per pass:
	// at object granularity the reuse distance of each node is ~#nodes;
	// the object histogram must see exactly #objects distinct keys.
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 4})
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)
	recs, _ := profilerTranslate(buf)

	h := ObjectHistogram(recs)
	if h.Total == 0 || h.Cold == 0 {
		t.Fatalf("histogram empty: %+v", h.Total)
	}
	// 64 nodes: the traversal reuse distance at object level is 63 (all
	// other nodes touched between two visits to the same node).
	if h.Exact[63] == 0 {
		t.Errorf("expected mass at object reuse distance 63")
	}
}

func profilerTranslate(buf *trace.Buffer) ([]profiler.Record, struct{}) {
	recs, _ := profiler.TranslateTrace(buf.Events, nil)
	return recs, struct{}{}
}

func BenchmarkTouch(b *testing.B) {
	a := NewAnalyzer()
	rngState := uint64(88172645463325252)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		a.Touch(rngState % 100000)
	}
}
