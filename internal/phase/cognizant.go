package phase

import (
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// CognizantLEAP is a phase-cognizant LEAP collector: records are buffered
// per interval, the interval is classified, and its records are routed to
// that phase's own LEAP compression stage. Each phase's streams are more
// homogeneous than the monolithic stream, so the same per-stream LMAD
// budget captures more of each (the §6 future-work payoff).
//
// It implements profiler.SCC and can replace leap.SCC in the pipeline.
type CognizantLEAP struct {
	det      *Detector
	maxLMADs int
	buf      []profiler.Record
	sccs     map[int]*leap.SCC
}

// NewCognizantLEAP creates a phase-cognizant collector. cfg tunes the
// detector; maxLMADs is the per-stream budget inside each phase (≤ 0 = the
// paper's 30).
func NewCognizantLEAP(cfg Config, maxLMADs int) *CognizantLEAP {
	return &CognizantLEAP{
		det:      NewDetector(cfg),
		maxLMADs: maxLMADs,
		sccs:     make(map[int]*leap.SCC),
	}
}

// Consume implements profiler.SCC.
func (c *CognizantLEAP) Consume(r profiler.Record) {
	c.buf = append(c.buf, r)
	if p, done := c.det.Observe(r.Instr); done {
		c.flush(p)
	}
}

// Finish implements profiler.SCC: the trailing partial interval is
// classified and flushed.
func (c *CognizantLEAP) Finish() {
	if len(c.buf) > 0 {
		c.det.Finish()
		phases := c.det.Intervals()
		c.flush(phases[len(phases)-1])
	}
	for _, s := range c.sccs {
		s.Finish()
	}
}

func (c *CognizantLEAP) flush(phase int) {
	scc := c.sccs[phase]
	if scc == nil {
		scc = leap.NewSCC(c.maxLMADs)
		c.sccs[phase] = scc
	}
	for _, r := range c.buf {
		scc.Consume(r)
	}
	c.buf = c.buf[:0]
}

// CognizantFromSource drains a streaming event source through a full
// phase-cognizant LEAP pipeline (CDC + per-phase compression) and returns
// the finished collector. Memory is bounded by one detection interval plus
// the per-phase descriptors, never the trace.
func CognizantFromSource(src trace.Source, siteNames map[trace.SiteID]string, cfg Config, maxLMADs int) (*CognizantLEAP, error) {
	cog := NewCognizantLEAP(cfg, maxLMADs)
	cdc := profiler.NewCDC(omc.New(siteNames), cog)
	if _, err := trace.Drain(src, cdc); err != nil {
		return nil, err
	}
	cdc.Finish()
	return cog, nil
}

// Detector exposes the underlying phase detector.
func (c *CognizantLEAP) Detector() *Detector { return c.det }

// Profiles freezes and returns one LEAP profile per phase.
func (c *CognizantLEAP) Profiles(workload string) map[int]*leap.Profile {
	out := make(map[int]*leap.Profile, len(c.sccs))
	for p, scc := range c.sccs {
		out[p] = scc.BuildProfile(workload)
	}
	return out
}

// Quality aggregates sample quality across the per-phase profiles: the
// fraction of all accesses captured (offset-level) and the total records.
func Quality(profiles map[int]*leap.Profile) (accessesPct float64, records uint64) {
	var offered, captured uint64
	for _, p := range profiles {
		records += p.Records
		for _, s := range p.Streams {
			offered += s.Offered
			captured += s.OffsetCaptured
		}
	}
	if offered == 0 {
		return 100, records
	}
	return 100 * float64(captured) / float64(offered), records
}

// Observe is a convenience for feeding a raw event stream when no full LEAP
// pipeline is wanted: it updates only the detector.
func (c *CognizantLEAP) Observe(e trace.Event) {
	if e.Kind == trace.EvAccess {
		c.det.Observe(e.Instr)
	}
}
