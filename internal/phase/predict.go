package phase

// Phase prediction, the second half of the §6 citation (Sherwood, Sair and
// Calder track *and predict* phases): given the phase of the current
// interval, predict the next interval's phase so the profiler can switch
// configuration (e.g., select the right per-phase LEAP collector) before
// the interval runs rather than after.

// Predictor is a second-order Markov predictor over phase IDs: the most
// frequent successor of the last *two* phases, falling back to first-order
// and then to last-phase prediction (Sherwood's baseline) while the longer
// context is still unseen. Second order matters because phase sequences are
// typically run patterns like A A B B …, on which the pair context is
// deterministic while single-phase context is a coin flip.
type Predictor struct {
	second map[[2]int]map[int]uint64
	first  map[int]map[int]uint64
	last   [2]int
	seen   int // how many observations so far (bounds context validity)

	predictions uint64
	correct     uint64
}

// NewPredictor returns an empty predictor.
func NewPredictor() *Predictor {
	return &Predictor{
		second: make(map[[2]int]map[int]uint64),
		first:  make(map[int]map[int]uint64),
	}
}

// argmax returns the most frequent successor in row, with deterministic
// tie-breaking toward fallback and then the smaller ID.
func argmax(row map[int]uint64, fallback int) (int, bool) {
	if len(row) == 0 {
		return fallback, false
	}
	best, bestN, have := fallback, row[fallback], row[fallback] > 0
	for next, n := range row {
		if !have || n > bestN || (n == bestN && next < best) {
			best, bestN, have = next, n, true
		}
	}
	return best, true
}

// Predict returns the predicted next phase given the history so far.
func (p *Predictor) Predict() int {
	if p.seen == 0 {
		return 0
	}
	lastPhase := p.last[1]
	if p.seen >= 2 {
		if next, ok := argmax(p.second[p.last], lastPhase); ok {
			return next
		}
	}
	if next, ok := argmax(p.first[lastPhase], lastPhase); ok {
		return next
	}
	return lastPhase
}

// Observe feeds the actual phase of the interval that just completed,
// scoring the pending prediction and updating the transition tables.
func (p *Predictor) Observe(actual int) {
	if p.seen > 0 {
		p.predictions++
		if p.Predict() == actual {
			p.correct++
		}
		row := p.first[p.last[1]]
		if row == nil {
			row = make(map[int]uint64)
			p.first[p.last[1]] = row
		}
		row[actual]++
		if p.seen >= 2 {
			row2 := p.second[p.last]
			if row2 == nil {
				row2 = make(map[int]uint64)
				p.second[p.last] = row2
			}
			row2[actual]++
		}
	}
	p.last[0], p.last[1] = p.last[1], actual
	p.seen++
}

// Accuracy reports the fraction of scored predictions that were correct
// (1.0 when nothing has been predicted yet).
func (p *Predictor) Accuracy() float64 {
	if p.predictions == 0 {
		return 1
	}
	return float64(p.correct) / float64(p.predictions)
}

// Predictions reports how many predictions were scored.
func (p *Predictor) Predictions() uint64 { return p.predictions }

// EvaluatePrediction replays a detector's interval sequence through a fresh
// predictor and reports its accuracy — the offline measure of how
// predictable the workload's phase behaviour is.
func EvaluatePrediction(intervals []int) float64 {
	p := NewPredictor()
	for _, ph := range intervals {
		p.Observe(ph)
	}
	return p.Accuracy()
}
