package phase

import (
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func TestPredictorAlternation(t *testing.T) {
	// A strict A B A B … pattern is perfectly predictable by a first-order
	// Markov predictor after it has seen each transition once.
	p := NewPredictor()
	seq := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	for _, ph := range seq {
		p.Observe(ph)
	}
	// 9 scored predictions; the first two transitions are unseen, the
	// remaining 7 are predicted correctly.
	if p.Predictions() != 9 {
		t.Fatalf("predictions = %d", p.Predictions())
	}
	if acc := p.Accuracy(); acc < 7.0/9-1e-9 {
		t.Errorf("accuracy = %v, want >= 7/9", acc)
	}
}

func TestPredictorSteadyPhase(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 50; i++ {
		p.Observe(3)
	}
	if p.Accuracy() != 1.0 {
		t.Errorf("steady phase accuracy = %v", p.Accuracy())
	}
}

func TestPredictorUnprimed(t *testing.T) {
	p := NewPredictor()
	if p.Predict() != 0 || p.Accuracy() != 1.0 {
		t.Error("unprimed predictor defaults wrong")
	}
}

func TestEvaluatePrediction(t *testing.T) {
	if acc := EvaluatePrediction([]int{0, 0, 0, 0}); acc != 1.0 {
		t.Errorf("steady accuracy = %v", acc)
	}
	if acc := EvaluatePrediction(nil); acc != 1.0 {
		t.Errorf("empty accuracy = %v", acc)
	}
	// Repeating block pattern: highly predictable.
	var seq []int
	for i := 0; i < 20; i++ {
		seq = append(seq, 0, 0, 1, 1)
	}
	if acc := EvaluatePrediction(seq); acc < 0.7 {
		t.Errorf("block pattern accuracy = %v", acc)
	}
}

func TestPredictionOnRealWorkload(t *testing.T) {
	// bzip2's block pipeline gives a repeating phase sequence that the
	// Markov predictor should predict well above chance.
	prog, err := workloads.New("256.bzip2", workloads.Config{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)

	d := NewDetector(Config{IntervalLen: 4096})
	for _, e := range buf.Events {
		if e.Kind == trace.EvAccess {
			d.Observe(e.Instr)
		}
	}
	d.Finish()

	acc := EvaluatePrediction(d.Intervals())
	chance := 1.0 / float64(d.NumPhases())
	if acc <= chance {
		t.Errorf("prediction accuracy %.2f not above chance %.2f (%s)", acc, chance, d)
	}
	t.Logf("phase prediction accuracy %.0f%% over %d intervals, %d phases",
		100*acc, len(d.Intervals()), d.NumPhases())
}
