package phase

import (
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func TestDetectorTwoAlternatingPhases(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 100})
	// Phase A: instructions 1-2. Phase B: instructions 50-51. Alternate
	// A A B B A A B B …
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < 200; i++ {
			d.Observe(trace.InstrID(1 + i%2))
		}
		for i := 0; i < 200; i++ {
			d.Observe(trace.InstrID(50 + i%2))
		}
	}
	d.Finish()
	if d.NumPhases() != 2 {
		t.Fatalf("detected %d phases, want 2 (%s)", d.NumPhases(), d)
	}
	iv := d.Intervals()
	if len(iv) != 16 {
		t.Fatalf("intervals = %d, want 16", len(iv))
	}
	// Pattern: 2 of phase 0, 2 of phase 1, repeating.
	for i, p := range iv {
		want := (i / 2) % 2
		if p != want {
			t.Errorf("interval %d phase %d, want %d (%v)", i, p, want, iv)
		}
	}
	if d.Transitions() != 7 {
		t.Errorf("transitions = %d, want 7", d.Transitions())
	}
}

func TestDetectorStablePhase(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 64})
	for i := 0; i < 64*10; i++ {
		d.Observe(trace.InstrID(i % 4))
	}
	d.Finish()
	if d.NumPhases() != 1 {
		t.Errorf("uniform stream split into %d phases", d.NumPhases())
	}
	if d.Transitions() != 0 {
		t.Errorf("transitions = %d", d.Transitions())
	}
}

func TestDetectorMaxPhases(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 10, MaxPhases: 3, Threshold: 0.01})
	// Every interval uses a unique instruction: without the cap each would
	// be its own phase.
	for iv := 0; iv < 10; iv++ {
		for i := 0; i < 10; i++ {
			d.Observe(trace.InstrID(100 + iv))
		}
	}
	d.Finish()
	if d.NumPhases() > 3 {
		t.Errorf("phases = %d exceeds cap 3", d.NumPhases())
	}
}

func TestDetectorPartialInterval(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 1000})
	for i := 0; i < 10; i++ {
		d.Observe(1)
	}
	if len(d.Intervals()) != 0 {
		t.Error("partial interval classified early")
	}
	d.Finish()
	if len(d.Intervals()) != 1 {
		t.Error("Finish did not classify the trailing interval")
	}
	d.Finish() // idempotent on empty state
	if len(d.Intervals()) != 1 {
		t.Error("second Finish added an interval")
	}
}

func TestDistance(t *testing.T) {
	a := signature{1: 0.5, 2: 0.5}
	b := signature{1: 0.5, 2: 0.5}
	if d := distance(a, b); d != 0 {
		t.Errorf("identical signatures distance %v", d)
	}
	c := signature{9: 1.0}
	if d := distance(a, c); d != 2 {
		t.Errorf("disjoint signatures distance %v, want 2", d)
	}
}

// phasedProgram alternates between two very different access behaviours.
type phasedProgram struct{}

func (phasedProgram) Name() string { return "phased" }

func (phasedProgram) Run(m *memsim.Machine) {
	arr := m.Alloc(1, 64*1024)
	state := 1
	for block := 0; block < 8; block++ {
		// Phase A: strided sweep.
		for i := 0; i < 8192; i++ {
			m.Load(1, arr+trace.Addr(i%8192*8), 8)
		}
		// Phase B: pseudo-random probing with different instructions.
		for i := 0; i < 8192; i++ {
			state = (state*1103515245 + 12345) & 0x7fffffff
			m.Load(2, arr+trace.Addr(state%8192*8), 8)
			i++
			m.Store(3, arr+trace.Addr(state%8192*8), 8)
		}
	}
	m.Free(arr)
}

func TestCognizantLEAPSeparatesPhases(t *testing.T) {
	buf := &trace.Buffer{}
	memsim.Run(phasedProgram{}, buf)

	o := omc.New(nil)
	cog := NewCognizantLEAP(Config{IntervalLen: 4096}, 0)
	cdc := profiler.NewCDC(o, cog)
	buf.Replay(cdc)
	cdc.Finish()

	if cog.Detector().NumPhases() < 2 {
		t.Fatalf("detected %d phases, want >= 2 (%s)", cog.Detector().NumPhases(), cog.Detector())
	}
	profiles := cog.Profiles("phased")
	if len(profiles) != cog.Detector().NumPhases() {
		t.Errorf("%d profiles for %d phases", len(profiles), cog.Detector().NumPhases())
	}
	var total uint64
	for _, p := range profiles {
		total += p.Records
	}
	want := trace.Collect(buf.Events).Accesses
	if total != want {
		t.Errorf("per-phase records sum to %d, trace has %d", total, want)
	}
}

func TestCognizantAtLeastMonolithicCapture(t *testing.T) {
	// On a phase-rich benchmark, phase-cognizant collection must capture
	// at least as much as the monolithic profile (its streams are strictly
	// more homogeneous).
	prog, err := workloads.New("256.bzip2", workloads.Config{Scale: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)

	mono := leap.New(nil, 0)
	buf.Replay(mono)
	monoAcc, _ := mono.Profile("bzip2").SampleQuality()

	o := omc.New(nil)
	cog := NewCognizantLEAP(Config{IntervalLen: 4096}, 0)
	cdc := profiler.NewCDC(o, cog)
	buf.Replay(cdc)
	cdc.Finish()
	cogAcc, records := Quality(cog.Profiles("bzip2"))

	if records != mono.Profile("bzip2").Records {
		t.Fatalf("record counts differ: %d vs %d", records, mono.Profile("bzip2").Records)
	}
	if cogAcc+1 < monoAcc { // tolerate a point of interval-boundary noise
		t.Errorf("phase-cognizant capture %.1f%% below monolithic %.1f%%", cogAcc, monoAcc)
	}
	t.Logf("capture: monolithic %.1f%%, phase-cognizant %.1f%% (%s)", monoAcc, cogAcc, cog.Detector())
}
