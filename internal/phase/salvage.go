package phase

import (
	"context"
	"runtime/debug"

	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// CognizantFromSourceSalvage is the fault-tolerant CognizantFromSource:
// the drain runs with cooperative cancellation and panic containment, the
// collector is always finalized (itself under containment — post-fault
// state may be inconsistent), and the phase profiles built from the events
// delivered before any fault are returned alongside the typed error.
func CognizantFromSourceSalvage(ctx context.Context, src trace.Source, siteNames map[trace.SiteID]string, cfg Config, maxLMADs int) (*CognizantLEAP, error) {
	cog := NewCognizantLEAP(cfg, maxLMADs)
	cdc := profiler.NewCDC(omc.New(siteNames), cog)
	_, err := trace.DrainSalvage(ctx, src, cdc)
	if ferr := finishSalvage(cdc); err == nil {
		err = ferr
	}
	return cog, err
}

func finishSalvage(cdc *profiler.CDC) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &trace.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	cdc.Finish()
	return nil
}
