// Package phase implements interval-based program phase detection in the
// style of Sherwood, Sair and Calder's phase tracking — the direction the
// paper's §6 names as future work ("make use of recent results on phase
// detection and prediction to profile references in a phase cognizant
// manner").
//
// Execution is split into fixed-length intervals of memory accesses. Each
// interval's signature is its distribution of executed load/store
// instructions; intervals whose signatures are close (Manhattan distance
// under a threshold) belong to the same phase, clustered online with a
// leader-follower scheme. Package phase also provides the phase-cognizant
// LEAP collector built on top.
package phase

import (
	"fmt"
	"math"

	"ormprof/internal/trace"
)

// Config tunes the detector.
type Config struct {
	// IntervalLen is the number of accesses per interval (default 4096).
	IntervalLen int
	// Threshold is the maximum normalized Manhattan distance (0..2) at
	// which an interval joins an existing phase (default 0.5).
	Threshold float64
	// MaxPhases caps the number of phases; further outlier intervals are
	// folded into the nearest phase (default 16).
	MaxPhases int
}

func (c Config) normalized() Config {
	if c.IntervalLen <= 0 {
		c.IntervalLen = 4096
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 16
	}
	return c
}

// signature is a normalized instruction-frequency vector.
type signature map[trace.InstrID]float64

// distance is the Manhattan distance between two normalized signatures
// (range 0..2).
func distance(a, b signature) float64 {
	d := 0.0
	for k, av := range a {
		d += math.Abs(av - b[k])
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			d += bv
		}
	}
	return d
}

// Detector assigns each interval of the access stream to a phase.
type Detector struct {
	cfg Config

	counts map[trace.InstrID]uint64
	filled int

	centroids []signature
	weights   []uint64 // intervals per phase, for centroid updates

	phaseOf []int // per completed interval
}

// NewDetector creates a detector.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.normalized()
	return &Detector{cfg: cfg, counts: make(map[trace.InstrID]uint64)}
}

// Observe feeds one executed access's instruction ID. It returns the phase
// just assigned and true when this access completed an interval.
func (d *Detector) Observe(instr trace.InstrID) (int, bool) {
	d.counts[instr]++
	d.filled++
	if d.filled < d.cfg.IntervalLen {
		return 0, false
	}
	p := d.closeInterval()
	return p, true
}

// Finish classifies a trailing partial interval, if any.
func (d *Detector) Finish() {
	if d.filled > 0 {
		d.closeInterval()
	}
}

func (d *Detector) closeInterval() int {
	sig := make(signature, len(d.counts))
	total := float64(d.filled)
	for k, v := range d.counts {
		sig[k] = float64(v) / total
	}
	d.counts = make(map[trace.InstrID]uint64)
	d.filled = 0

	best, bestDist := -1, math.Inf(1)
	for i, c := range d.centroids {
		if dist := distance(sig, c); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	if best >= 0 && (bestDist <= d.cfg.Threshold || len(d.centroids) >= d.cfg.MaxPhases) {
		// Join: move the centroid toward the new signature.
		w := float64(d.weights[best])
		c := d.centroids[best]
		for k := range c {
			c[k] = (c[k]*w + sig[k]) / (w + 1)
		}
		for k, v := range sig {
			if _, ok := c[k]; !ok {
				c[k] = v / (w + 1)
			}
		}
		d.weights[best]++
		d.phaseOf = append(d.phaseOf, best)
		return best
	}
	d.centroids = append(d.centroids, sig)
	d.weights = append(d.weights, 1)
	p := len(d.centroids) - 1
	d.phaseOf = append(d.phaseOf, p)
	return p
}

// NumPhases reports the phases discovered so far.
func (d *Detector) NumPhases() int { return len(d.centroids) }

// Intervals returns the per-interval phase assignments.
func (d *Detector) Intervals() []int { return d.phaseOf }

// Transitions counts phase changes between consecutive intervals.
func (d *Detector) Transitions() int {
	n := 0
	for i := 1; i < len(d.phaseOf); i++ {
		if d.phaseOf[i] != d.phaseOf[i-1] {
			n++
		}
	}
	return n
}

// String summarizes the detection.
func (d *Detector) String() string {
	return fmt.Sprintf("%d phases over %d intervals (%d transitions)",
		d.NumPhases(), len(d.phaseOf), d.Transitions())
}
