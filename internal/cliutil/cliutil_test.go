package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/workloads"
)

func TestCheckWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := CheckWorkers(n); err != nil {
			t.Errorf("CheckWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -100} {
		if err := CheckWorkers(n); err == nil {
			t.Errorf("CheckWorkers(%d) accepted", n)
		}
	}
}

func TestWorkersFlagDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := WorkersFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := CheckWorkers(*w); err != nil {
		t.Errorf("default -workers value %d rejected: %v", *w, err)
	}
}

func TestRecordReplayMutuallyExclusive(t *testing.T) {
	tf := &TraceFlags{Record: "a", Replay: "b"}
	if _, err := tf.Load("linkedlist", workloads.Config{Scale: 1, Seed: 42}); err == nil {
		t.Error("Load accepted -record together with -replay")
	}
}

func TestLoadRequiresWorkloadOrReplay(t *testing.T) {
	tf := &TraceFlags{}
	if _, err := tf.Load("", workloads.Config{}); err == nil {
		t.Error("Load accepted neither workload nor -replay")
	}
}

func TestLiveRecordReplayAgree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ormtrace")
	cfg := workloads.Config{Scale: 1, Seed: 42}

	// Live run teeing to a trace file.
	live, err := (&TraceFlags{Record: path}).Load("linkedlist", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live.Replayed() {
		t.Error("live run claims to be replayed")
	}
	var liveBuf trace.Buffer
	n, err := live.Pass(&liveBuf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("live pass delivered no events")
	}

	// Replay of the recorded file: same name, same sites, same events.
	rep, err := (&TraceFlags{Replay: path}).Load("ignored-name", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replayed() {
		t.Error("replay run claims to be live")
	}
	if rep.Name != live.Name {
		t.Errorf("replay Name = %q, live %q", rep.Name, live.Name)
	}
	if len(rep.Sites) != len(live.Sites) {
		t.Errorf("replay Sites = %v, live %v", rep.Sites, live.Sites)
	}
	for id, name := range live.Sites {
		if rep.Sites[id] != name {
			t.Errorf("site %d = %q, want %q", id, rep.Sites[id], name)
		}
	}
	var repBuf trace.Buffer
	m, err := rep.Pass(&repBuf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("replay pass delivered %d events, live %d", m, n)
	}
	for i := range liveBuf.Events {
		if repBuf.Events[i] != liveBuf.Events[i] {
			t.Fatalf("event %d: replay %+v, live %+v", i, repBuf.Events[i], liveBuf.Events[i])
		}
	}

	// Passes are repeatable on both paths (multi-pass profiling).
	var again trace.Buffer
	if m2, err := rep.Pass(&again); err != nil || m2 != n {
		t.Fatalf("second replay pass: %d events, err %v", m2, err)
	}

	// Translations agree record-for-record.
	liveRecs, _, err := live.Translate()
	if err != nil {
		t.Fatal(err)
	}
	repRecs, _, err := rep.Translate()
	if err != nil {
		t.Fatal(err)
	}
	if len(liveRecs) != len(repRecs) {
		t.Fatalf("translate: live %d records, replay %d", len(liveRecs), len(repRecs))
	}
	for i := range liveRecs {
		if liveRecs[i] != repRecs[i] {
			t.Fatalf("record %d: live %+v, replay %+v", i, liveRecs[i], repRecs[i])
		}
	}
}

func TestReplayRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ormtrace")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (&TraceFlags{Replay: path}).Load("", workloads.Config{}); err == nil {
		t.Error("Load accepted a garbage trace file")
	}
}

func TestReplayMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.ormtrace")
	if _, err := (&TraceFlags{Replay: path}).Load("", workloads.Config{}); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Load(missing file) = %v, want ErrNotExist", err)
	}
}

func TestReplayZeroByteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ormtrace")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// An empty file fails header validation on both strict and lenient
	// paths — lenient mode never excuses a missing header.
	for _, lenient := range []bool{false, true} {
		tf := &TraceFlags{Replay: path, Lenient: lenient}
		if _, err := tf.Load("", workloads.Config{}); !errors.Is(err, tracefmt.ErrBadTrace) {
			t.Errorf("lenient=%v: Load(empty file) = %v, want ErrBadTrace", lenient, err)
		}
	}
}

func TestReplayTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ormtrace")
	cfg := workloads.Config{Scale: 1, Seed: 42}
	// Encode with a small batch so the trace spans many frames — a
	// truncated tail then costs only the last frame, not everything.
	live, err := (&TraceFlags{}).Load("linkedlist", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events trace.Buffer
	if _, err := live.Pass(&events); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(full)
	if err != nil {
		t.Fatal(err)
	}
	tw := tracefmt.NewWriter(f, tracefmt.WithName("linkedlist"), tracefmt.WithBatch(64))
	tw.SetSites(live.Sites)
	for _, e := range events.Events {
		tw.Emit(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Cut inside the header: unreadable even leniently.
	header := filepath.Join(dir, "header.ormtrace")
	if err := os.WriteFile(header, data[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (&TraceFlags{Replay: header, Lenient: true}).Load("", cfg); err == nil {
		t.Error("Load accepted a header-truncated trace")
	}

	// Cut mid-body: the header opens, the strict pass fails, and a lenient
	// pass salvages every complete frame with a typed damage report.
	body := filepath.Join(dir, "body.ormtrace")
	if err := os.WriteFile(body, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	strictEv, err := (&TraceFlags{Replay: body}).Load("", cfg)
	if err != nil {
		t.Fatalf("strict Load(truncated body) failed at open: %v", err)
	}
	if _, err := strictEv.Pass(&trace.Buffer{}); err == nil {
		t.Error("strict pass accepted a truncated trace body")
	}

	ev, err := (&TraceFlags{Replay: body, Lenient: true}).Load("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	n, err := ev.Pass(&buf)
	var ce *tracefmt.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("lenient pass error = %v, want *CorruptionError", err)
	}
	if !Salvaged(err) || ExitCode(err) != 2 {
		t.Errorf("truncation error not classified as salvaged/exit 2: %v", err)
	}
	if n == 0 || buf.Len() != n {
		t.Errorf("lenient pass delivered %d events, buffered %d", n, buf.Len())
	}
	if st := ev.Stats(); !st.Damaged() || st.Events != int64(n) {
		t.Errorf("Stats() = %+v, want damaged with Events == %d", st, n)
	}
}

func TestExitCodeConvention(t *testing.T) {
	if got := ExitCode(nil); got != 0 {
		t.Errorf("ExitCode(nil) = %d, want 0", got)
	}
	if got := ExitCode(os.ErrNotExist); got != 1 {
		t.Errorf("ExitCode(hard error) = %d, want 1", got)
	}
	salvaged := []error{
		&tracefmt.CorruptionError{},
		&trace.PanicError{Value: "boom"},
		&profiler.WorkerError{Worker: 3, Value: "boom"},
		context.DeadlineExceeded,
		context.Canceled,
		fmt.Errorf("wrapped: %w", &tracefmt.CorruptionError{}),
	}
	for _, err := range salvaged {
		if !Salvaged(err) || ExitCode(err) != 2 {
			t.Errorf("%v: Salvaged=%v ExitCode=%d, want true/2", err, Salvaged(err), ExitCode(err))
		}
	}
}

func TestDegradedAccumulator(t *testing.T) {
	var deg Degraded
	if err := deg.Check(nil); err != nil || deg.Err() != nil {
		t.Fatal("clean Check must stay clean")
	}
	first := &tracefmt.CorruptionError{}
	if err := deg.Check(first); err != nil {
		t.Fatalf("salvaged error returned as hard: %v", err)
	}
	if err := deg.Check(context.DeadlineExceeded); err != nil {
		t.Fatalf("second salvaged error returned as hard: %v", err)
	}
	if deg.Err() != error(first) {
		t.Errorf("Err() = %v, want the first salvaged error", deg.Err())
	}
	hard := os.ErrNotExist
	if err := deg.Check(hard); err != hard {
		t.Errorf("hard error filtered: %v", err)
	}
}

// TestDeadlineSharedAcrossPasses: -deadline is one budget for the whole
// invocation, not a fresh allowance per pass. A budget generous enough
// for the first pass but exhausted afterwards must cut the second pass
// short with a salvaged (deadline) error, while without a deadline both
// passes complete.
func TestDeadlineSharedAcrossPasses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ormtrace")
	cfg := workloads.Config{Scale: 1, Seed: 42}
	if _, err := (&TraceFlags{Record: path}).Load("linkedlist", cfg); err != nil {
		t.Fatal(err)
	}

	ev, err := (&TraceFlags{Replay: path, Deadline: 5 * time.Minute}).Load("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Pass(trace.Discard); err != nil {
		t.Fatalf("first pass within budget: %v", err)
	}
	// Exhaust the shared budget; the next pass must hit the same clock.
	ev.budget = time.Now().Add(-time.Second)
	if _, err := ev.Pass(trace.Discard); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second pass after budget exhaustion: got %v, want DeadlineExceeded", err)
	}
	if !Salvaged(err) && err != nil {
		t.Fatalf("deadline overrun not salvaged: %v", err)
	}

	// Sanity: with no deadline, repeated passes never expire.
	ev2, err := (&TraceFlags{Replay: path}).Load("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ev2.Pass(trace.Discard); err != nil {
			t.Fatalf("pass %d without deadline: %v", i, err)
		}
	}
}
