package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func TestCheckWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := CheckWorkers(n); err != nil {
			t.Errorf("CheckWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -100} {
		if err := CheckWorkers(n); err == nil {
			t.Errorf("CheckWorkers(%d) accepted", n)
		}
	}
}

func TestWorkersFlagDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := WorkersFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := CheckWorkers(*w); err != nil {
		t.Errorf("default -workers value %d rejected: %v", *w, err)
	}
}

func TestRecordReplayMutuallyExclusive(t *testing.T) {
	tf := &TraceFlags{Record: "a", Replay: "b"}
	if _, err := tf.Load("linkedlist", workloads.Config{Scale: 1, Seed: 42}); err == nil {
		t.Error("Load accepted -record together with -replay")
	}
}

func TestLoadRequiresWorkloadOrReplay(t *testing.T) {
	tf := &TraceFlags{}
	if _, err := tf.Load("", workloads.Config{}); err == nil {
		t.Error("Load accepted neither workload nor -replay")
	}
}

func TestLiveRecordReplayAgree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ormtrace")
	cfg := workloads.Config{Scale: 1, Seed: 42}

	// Live run teeing to a trace file.
	live, err := (&TraceFlags{Record: path}).Load("linkedlist", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live.Replayed() {
		t.Error("live run claims to be replayed")
	}
	var liveBuf trace.Buffer
	n, err := live.Pass(&liveBuf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("live pass delivered no events")
	}

	// Replay of the recorded file: same name, same sites, same events.
	rep, err := (&TraceFlags{Replay: path}).Load("ignored-name", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replayed() {
		t.Error("replay run claims to be live")
	}
	if rep.Name != live.Name {
		t.Errorf("replay Name = %q, live %q", rep.Name, live.Name)
	}
	if len(rep.Sites) != len(live.Sites) {
		t.Errorf("replay Sites = %v, live %v", rep.Sites, live.Sites)
	}
	for id, name := range live.Sites {
		if rep.Sites[id] != name {
			t.Errorf("site %d = %q, want %q", id, rep.Sites[id], name)
		}
	}
	var repBuf trace.Buffer
	m, err := rep.Pass(&repBuf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("replay pass delivered %d events, live %d", m, n)
	}
	for i := range liveBuf.Events {
		if repBuf.Events[i] != liveBuf.Events[i] {
			t.Fatalf("event %d: replay %+v, live %+v", i, repBuf.Events[i], liveBuf.Events[i])
		}
	}

	// Passes are repeatable on both paths (multi-pass profiling).
	var again trace.Buffer
	if m2, err := rep.Pass(&again); err != nil || m2 != n {
		t.Fatalf("second replay pass: %d events, err %v", m2, err)
	}

	// Translations agree record-for-record.
	liveRecs, _, err := live.Translate()
	if err != nil {
		t.Fatal(err)
	}
	repRecs, _, err := rep.Translate()
	if err != nil {
		t.Fatal(err)
	}
	if len(liveRecs) != len(repRecs) {
		t.Fatalf("translate: live %d records, replay %d", len(liveRecs), len(repRecs))
	}
	for i := range liveRecs {
		if liveRecs[i] != repRecs[i] {
			t.Fatalf("record %d: live %+v, replay %+v", i, liveRecs[i], repRecs[i])
		}
	}
}

func TestReplayRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ormtrace")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (&TraceFlags{Replay: path}).Load("", workloads.Config{}); err == nil {
		t.Error("Load accepted a garbage trace file")
	}
}
