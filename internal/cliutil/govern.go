package cliutil

import (
	"flag"
	"io"

	"ormprof/internal/govern"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// sizeFlag is a self-validating flag.Value for byte-size flags
// (-mem-budget): malformed or negative sizes are rejected in Set, so the
// FlagSet's own error handling prints the message plus usage and exits 2
// uniformly across all tools.
type sizeFlag struct{ n *int64 }

var _ flag.Value = sizeFlag{}

func (v sizeFlag) String() string {
	if v.n == nil {
		return "0"
	}
	return govern.FormatSize(*v.n)
}

func (v sizeFlag) Set(s string) error {
	n, err := govern.ParseSize(s)
	if err != nil {
		return err
	}
	*v.n = n
	return nil
}

// SizeFlag registers a self-validating byte-size flag on fs and returns
// its destination. Tools that do not use RegisterTraceFlags (tracecat's
// positional-file interface) still get the same -mem-budget syntax and
// the same parse-time validation.
func SizeFlag(fs *flag.FlagSet, name, usage string) *int64 {
	n := new(int64)
	fs.Var(sizeFlag{n}, name, usage)
	return n
}

// Governed reports whether -mem-budget or -approx was set: governed tools
// should use the sequential ladder path (trip points are deterministic
// only on a sequential pipeline) and render the governance report.
func (ev *Events) Governed() bool { return ev.memBudget > 0 || ev.approx }

// MemBudget reports the configured memory budget (0 = unlimited).
func (ev *Events) MemBudget() int64 { return ev.memBudget }

// Approx reports whether -approx was set: governed passes start at the
// sketch-stride rung and the report carries error bounds instead of exact
// profiles.
func (ev *Events) Approx() bool { return ev.approx }

// GovernedPass streams one complete pass through a degradation ladder
// built around full. All governed passes of the invocation share one
// parent budget — like -deadline, -mem-budget bounds the tool's total
// footprint, not each pass's — so a second pass's structures count
// against what the first pass still holds live.
//
// The returned error is the pass error (corruption, deadline), not the
// degradation: check ladder.Err() separately, typically feeding both
// through Degraded.Check so partial output still renders before exit 2.
func (ev *Events) GovernedPass(seed uint64, full func() govern.Mode) (*govern.Ladder, int, error) {
	if ev.govBudget == nil {
		ev.govBudget = govern.NewBudget(ev.memBudget)
	}
	cfg := govern.Config{
		Budget: ev.govBudget.Sub(0),
		Seed:   seed,
		Full:   full,
	}
	if ev.approx {
		// -approx: skip the exact rungs entirely. The ladder starts on the
		// fixed-memory sketches and records no step-downs for doing so; a
		// -mem-budget can still push it further.
		cfg.StartRung = govern.RungSketchStride
	}
	lad := govern.NewLadder(cfg)
	n, err := ev.Pass(lad)
	return lad, n, err
}

// translateMode is the govern.Mode for tools whose pipeline starts from a
// materialized object-relative record stream: OMC translation plus a
// record collector.
type translateMode struct {
	o   *omc.OMC
	col *profiler.Collector
	cdc *profiler.CDC
}

func newTranslateMode(sites map[trace.SiteID]string) *translateMode {
	o := omc.New(sites)
	col := &profiler.Collector{}
	return &translateMode{o: o, col: col, cdc: profiler.NewCDC(o, col)}
}

func (m *translateMode) Emit(e trace.Event) { m.cdc.Emit(e) }
func (m *translateMode) Footprint() int64   { return m.o.Footprint() + m.col.Footprint() }

// TranslateGoverned is Translate under a memory budget: it returns the
// ladder alongside the records. If the budget forced the ladder below the
// sampled rung, the record stream is gone — records and OMC come back nil
// and the caller renders the ladder's own report instead. The error is
// the pass error; degradation is ladder.Err().
func (ev *Events) TranslateGoverned(seed uint64) (*govern.Ladder, []profiler.Record, *omc.OMC, error) {
	lad, _, err := ev.GovernedPass(seed, func() govern.Mode { return newTranslateMode(ev.Sites) })
	if err != nil && !Salvaged(err) {
		return nil, nil, nil, err
	}
	if m, ok := lad.FullMode().(*translateMode); ok {
		m.cdc.Finish()
		return lad, m.col.Records, m.o, err
	}
	return lad, nil, nil, err
}

// WriteGovernance renders each ladder's governance report to w — the
// standard tail section of a governed tool's output. Reports are
// deterministic, so governed output remains byte-comparable across
// worker counts and restarts.
func WriteGovernance(w io.Writer, lads ...*govern.Ladder) error {
	for _, lad := range lads {
		if lad == nil {
			continue
		}
		if err := lad.WriteReport(w); err != nil {
			return err
		}
	}
	return nil
}
