// optimize.go holds the shared profile→plan→re-measure pipeline behind
// `ormprof optimize` and cmd/layoutopt: one deterministic sequence that
// profiles a workload (live or replayed), derives an ORMPLAN layout plan
// from the streaming profiler output, applies it, and measures before/after
// cache-miss rates per hierarchy level.
//
// The paper's §1 insight makes the "apply" step cheap: the profile names
// accesses by (group, object, offset), so a new layout is just a different
// resolution function. Live runs additionally re-execute the workload in
// memsim under a plan-driven allocator (placement at Alloc, field remap at
// access time) — the two application paths land on the same addresses.
package cliutil

import (
	"fmt"
	"io"

	"ormprof/internal/cachesim"
	"ormprof/internal/govern"
	"ormprof/internal/layout"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/plan"
	"ormprof/internal/prefetch"
	"ormprof/internal/profiler"
	"ormprof/internal/report"
	"ormprof/internal/trace"
)

// fanout duplicates the object-relative record stream to several SCCs, so
// the optimize pass derives its plan in the same single pass that collects
// the record stream.
type fanout []profiler.SCC

// Consume implements profiler.SCC.
func (f fanout) Consume(r profiler.Record) {
	for _, s := range f {
		s.Consume(r)
	}
}

// Finish implements profiler.SCC.
func (f fanout) Finish() {
	for _, s := range f {
		s.Finish()
	}
}

// optimizeMode is translateMode plus the streaming layout planner: the
// governed optimize pass accounts the planner's histograms and first-touch
// table alongside the OMC and the record collector, so a tight budget
// degrades plan derivation through the ladder instead of OOMing.
type optimizeMode struct {
	o       *omc.OMC
	col     *profiler.Collector
	planner *layout.Planner
	cdc     *profiler.CDC
}

func newOptimizeMode(sites map[trace.SiteID]string) *optimizeMode {
	o := omc.New(sites)
	col := &profiler.Collector{}
	p := layout.NewPlanner()
	return &optimizeMode{o: o, col: col, planner: p, cdc: profiler.NewCDC(o, fanout{col, p})}
}

func (m *optimizeMode) Emit(e trace.Event) { m.cdc.Emit(e) }
func (m *optimizeMode) Footprint() int64 {
	return m.o.Footprint() + m.col.Footprint() + m.planner.Footprint()
}

// Derived is the output of the shared plan-derivation pass: the
// materialized record stream, the object table, and the streaming planner
// that watched the same pass. On a governed run that degraded below the
// full rung the stream is gone — OMC is nil and only Ladder renders.
type Derived struct {
	Ladder  *govern.Ladder // non-nil on governed runs
	Records []profiler.Record
	OMC     *omc.OMC
	Planner *layout.Planner
	Events  int
}

// DeriveLayout runs one translate pass with the streaming layout planner
// riding the record fan-out. The returned error follows the Pass
// convention: salvaged errors come back alongside partial results.
func (ev *Events) DeriveLayout(seed uint64) (*Derived, error) {
	if ev.Governed() {
		lad, n, err := ev.GovernedPass(seed, func() govern.Mode { return newOptimizeMode(ev.Sites) })
		if err != nil && !Salvaged(err) {
			return nil, err
		}
		d := &Derived{Ladder: lad, Events: n}
		if m, ok := lad.FullMode().(*optimizeMode); ok {
			m.cdc.Finish()
			d.Records, d.OMC, d.Planner = m.col.Records, m.o, m.planner
		}
		return d, err
	}
	m := newOptimizeMode(ev.Sites)
	n, err := ev.Pass(m)
	if err != nil && !Salvaged(err) {
		return nil, err
	}
	m.cdc.Finish()
	return &Derived{Records: m.col.Records, OMC: m.o, Planner: m.planner, Events: n}, err
}

// OptimizeConfig parameterizes the optimize pipeline.
type OptimizeConfig struct {
	// Workers parallelizes the LEAP prefetch-analysis pass; results are
	// identical for any count.
	Workers int
	// Seed drives the governed ladder's deterministic site sampling.
	Seed uint64
	// Lookahead is the prefetch lookahead distance in strides
	// (0 = prefetch.DefaultLookahead).
	Lookahead int64
	// PlanPath, when non-empty, is where the ORMPLAN artifact is saved.
	PlanPath string
}

// LevelDelta is one hierarchy level's before/after comparison.
type LevelDelta struct {
	Name          string
	Config        cachesim.Config
	Before, After cachesim.Stats
}

// OptimizeResult is everything the optimize pipeline measured.
type OptimizeResult struct {
	Name     string
	Events   int // probe events in the profiling pass
	Accesses int // translated object-relative records

	// Plan is the derived layout plan; nil when a governed run degraded
	// below the full rung and no plan could be built.
	Plan      *plan.Plan
	PlanBytes int
	PlanPath  string

	// Live reports how "after" was measured: a live re-run under the
	// plan-driven allocator, or replay resolution of the recorded tuples.
	Live           bool
	Placed, Allocs uint64 // live mode: plan-placed / total heap allocations
	SkippedBefore  int    // unresolvable records in the "before" replay
	SkippedAfter   int    // unresolvable records in the "after" replay

	Levels                []LevelDelta
	BeforeAMAT, AfterAMAT float64

	// EvalNote is non-empty when the memory budget degraded or skipped the
	// evaluation phase; EvalErr is the matching salvage error (exit 2).
	EvalNote string
	EvalErr  error

	// Ladders holds the governance ladders of the governed passes, for
	// WriteGovernance and exit-code accounting.
	Ladders []*govern.Ladder
}

// optLevels is the evaluation hierarchy: L1D backed by L2, as in
// cmd/layoutopt's AMAT estimate.
var (
	optLevels     = []cachesim.Config{cachesim.L1D, cachesim.L2}
	optLevelNames = []string{"L1D", "L2"}
	// amatLatencies are cycles per level plus memory: L1 4, L2 12, mem 200.
	amatLatencies = []float64{4, 12, 200}
)

// evalFootprint bounds one hierarchy's simulator memory: every set filled
// to full associativity (see Cache.Footprint).
func evalFootprint(levels []cachesim.Config) int64 {
	var total int64
	for _, cfg := range levels {
		sets := int64(cfg.Sets())
		total += sets*24 + sets*int64(cfg.Ways)*8
	}
	return total
}

// Optimize runs the closed loop: derive a plan from one profiling pass,
// collect prefetch rules from a LEAP pass, serialize the ORMPLAN, and
// measure before/after miss rates per hierarchy level. The returned error
// follows the Pass convention — salvaged errors accompany partial results;
// callers feed it (and the result's ladders) through Degraded.
func (ev *Events) Optimize(cfg OptimizeConfig) (*OptimizeResult, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	var deg Degraded

	// Pass 1: translate + streaming plan derivation.
	d, err := ev.DeriveLayout(cfg.Seed)
	if err := deg.Check(err); err != nil {
		return nil, err
	}
	res := &OptimizeResult{Name: ev.Name, Events: d.Events, Live: !ev.Replayed()}
	if d.Ladder != nil {
		res.Ladders = append(res.Ladders, d.Ladder)
	}
	if d.OMC == nil {
		return res, deg.Err() // degraded below full: no plan, governance only
	}
	recs, o, planner := d.Records, d.OMC, d.Planner
	res.Accesses = len(recs)

	// Pass 2: LEAP stride analysis for the plan's prefetch rules.
	var rules []plan.PrefetchRule
	lineBytes := int64(optLevels[0].LineBytes)
	if ev.Governed() {
		lad, _, err := ev.GovernedPass(cfg.Seed, func() govern.Mode { return leap.New(ev.Sites, 0) })
		if err := deg.Check(err); err != nil {
			return nil, err
		}
		res.Ladders = append(res.Ladders, lad)
		if lp, ok := lad.FullMode().(*leap.Profiler); ok {
			rules = prefetch.BuildPlan(lp.Profile(ev.Name), lineBytes, cfg.Lookahead).Rules()
		}
	} else {
		lp := leap.NewParallel(ev.Sites, 0, cfg.Workers)
		_, err := ev.Pass(lp)
		if err := deg.Check(err); err != nil {
			return nil, err
		}
		rules = prefetch.BuildPlan(lp.Profile(ev.Name), lineBytes, cfg.Lookahead).Rules()
	}

	// Assemble and serialize the plan.
	pl := planner.BuildPlan(ev.Name, o)
	pl.Prefetch = rules
	pl.Canonicalize()
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("derived plan invalid: %w", err)
	}
	b, err := plan.Encode(pl)
	if err != nil {
		return nil, err
	}
	res.Plan, res.PlanBytes = pl, len(b)
	if cfg.PlanPath != "" {
		if err := plan.Save(cfg.PlanPath, pl); err != nil {
			return nil, err
		}
		res.PlanPath = cfg.PlanPath
	}

	// Evaluation phase: two hierarchies (before/after). Under a memory
	// budget their worst-case footprint is charged up front — the geometry
	// bounds it — degrading deterministically: drop the outer level, then
	// skip evaluation entirely, rather than OOM.
	levels, names := optLevels, optLevelNames
	var charged int64
	if ev.Governed() {
		if ev.govBudget == nil {
			ev.govBudget = govern.NewBudget(ev.memBudget)
		}
		for {
			need := 2 * evalFootprint(levels)
			ev.govBudget.Add(need)
			if !ev.govBudget.Over() {
				charged = need
				break
			}
			ev.govBudget.Add(-need)
			if len(levels) == 1 {
				levels, names = nil, nil
				res.EvalNote = "evaluation skipped (memory budget)"
				break
			}
			levels, names = levels[:len(levels)-1], names[:len(names)-1]
			res.EvalNote = fmt.Sprintf("evaluation degraded to %s only (memory budget)", names[len(names)-1])
		}
		if res.EvalNote != "" {
			res.EvalErr = &govern.DegradedError{Limit: ev.govBudget.EffectiveLimit(), Rung: govern.RungFull}
			deg.Check(res.EvalErr) //nolint:errcheck // DegradedError is always salvaged
		}
	}
	if len(levels) > 0 {
		before := cachesim.NewHierarchy(levels...)
		res.SkippedBefore = before.ReplayRecords(recs, layout.OriginalResolver(layout.OMCInfo{OMC: o}))

		after := cachesim.NewHierarchy(levels...)
		if res.Live {
			// Genuine re-run: same deterministic program, plan-driven
			// placement at Alloc and field remap at access time.
			pa := memsim.NewPlanAllocator(memsim.NewFreeListAllocator(), pl.Placer())
			err := ev.Rerun(trace.SinkFunc(func(e trace.Event) {
				if e.Kind == trace.EvAccess {
					after.Access(e.Addr, e.Size)
				}
			}), memsim.WithAllocator(pa), memsim.WithRemap(pl.FieldRemapper()))
			if err != nil {
				return nil, err
			}
			res.Placed, res.Allocs = pa.Placed()
		} else {
			// Replay resolution: the recorded tuples under the plan's
			// resolution function.
			res.SkippedAfter = after.ReplayRecords(recs, layout.PlanResolver(pl, o))
		}

		for i := range levels {
			res.Levels = append(res.Levels, LevelDelta{
				Name: names[i], Config: levels[i],
				Before: before.Level(i), After: after.Level(i),
			})
		}
		lat := append(append([]float64{}, amatLatencies[:len(levels)]...), amatLatencies[len(amatLatencies)-1])
		res.BeforeAMAT, res.AfterAMAT = before.AMAT(lat...), after.AMAT(lat...)
		if charged != 0 {
			ev.govBudget.Add(-charged)
		}
	}
	return res, deg.Err()
}

// DeltaTable renders the per-level before/after comparison.
func (r *OptimizeResult) DeltaTable() *report.Table {
	t := report.NewTable("level", "geometry", "before-misses", "miss%", "after-misses", "miss%", "delta")
	for _, lv := range r.Levels {
		t.AddRow(lv.Name,
			fmt.Sprintf("%dKiB/%dB/%d-way", lv.Config.SizeBytes>>10, lv.Config.LineBytes, lv.Config.Ways),
			fmt.Sprintf("%d", lv.Before.Misses), report.Pct(100*lv.Before.MissRate()),
			fmt.Sprintf("%d", lv.After.Misses), report.Pct(100*lv.After.MissRate()),
			report.Delta(lv.Before.Misses, lv.After.Misses))
	}
	return t
}

// WriteText renders the full human-readable report (governance excluded:
// callers append it with WriteGovernance, keeping the tail section uniform
// across tools).
func (r *OptimizeResult) WriteText(w io.Writer) error {
	if r.Plan == nil {
		rung := "unknown"
		if len(r.Ladders) > 0 {
			rung = r.Ladders[0].Rung().String()
		}
		_, err := fmt.Fprintf(w, "workload %s: optimization unavailable (degraded to %s)\n", r.Name, rung)
		return err
	}
	fmt.Fprintf(w, "workload %s: %d events, %d accesses\n", r.Name, r.Events, r.Accesses)
	fmt.Fprintf(w, "plan: %d field orders, %d placements, %d prefetch rules (%d bytes)",
		len(r.Plan.Fields), len(r.Plan.Placements), len(r.Plan.Prefetch), r.PlanBytes)
	if r.PlanPath != "" {
		fmt.Fprintf(w, " -> %s", r.PlanPath)
	}
	fmt.Fprintln(w)
	if r.Live {
		fmt.Fprintf(w, "applied via live re-run: %d/%d heap allocations placed\n", r.Placed, r.Allocs)
	} else {
		fmt.Fprintf(w, "applied via replay resolution: %d before / %d after records unresolvable\n",
			r.SkippedBefore, r.SkippedAfter)
	}
	if r.EvalNote != "" {
		fmt.Fprintf(w, "note: %s\n", r.EvalNote)
	}
	if len(r.Levels) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	if _, err := r.DeltaTable().WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if r.BeforeAMAT > 0 {
		fmt.Fprintf(w, "AMAT (L1 4cy, L2 12cy, mem 200cy): %.2f -> %.2f cycles/access (%.1f%% faster)\n",
			r.BeforeAMAT, r.AfterAMAT, 100*(1-r.AfterAMAT/r.BeforeAMAT))
	} else {
		fmt.Fprintf(w, "AMAT (L1 4cy, L2 12cy, mem 200cy): %.2f -> %.2f cycles/access\n",
			r.BeforeAMAT, r.AfterAMAT)
	}
	return nil
}
