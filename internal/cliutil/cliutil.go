// Package cliutil factors the flag handling and event-stream plumbing
// shared by every cmd tool: the -workers flag with its validation, and the
// -record / -replay pair that connects the tools to the on-disk trace
// layer (internal/tracefmt).
//
// The central type is Events: a replayable event source that is either a
// live workload run (optionally teeing its probe stream to a trace file)
// or a recorded trace. Each Pass streams the whole event stream into a
// sink; replay passes read the file with O(batch) memory, so profiling a
// recorded trace never materializes it.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ormprof/internal/govern"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/serve"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/workloads"
)

// workersValue is a self-validating flag.Value for -workers: rejecting a
// bad value in Set means every tool gets the FlagSet's own error handling
// — message plus usage on stderr, exit code 2 — instead of each main
// hand-rolling (and subtly diverging on) the failure path.
type workersValue int

func (v *workersValue) String() string { return strconv.Itoa(int(*v)) }

func (v *workersValue) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("must be an integer (got %q)", s)
	}
	if n < 1 {
		return fmt.Errorf("must be at least 1 (got %d)", n)
	}
	*v = workersValue(n)
	return nil
}

// WorkersFlag registers the shared -workers flag on fs. The default is
// runtime.GOMAXPROCS(0); values below 1 are rejected at parse time (usage
// on stderr, exit 2 under flag.ExitOnError). CheckWorkers remains for
// values that arrive outside flag parsing.
func WorkersFlag(fs *flag.FlagSet) *int {
	v := workersValue(runtime.GOMAXPROCS(0))
	fs.Var(&v, "workers",
		"worker goroutines for profile construction (>= 1; profiles are identical for any count)")
	return (*int)(&v)
}

// CheckWorkers validates a -workers value: the pipeline needs at least one
// worker, and a silent fallback would hide typos like -workers -3.
func CheckWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", n)
	}
	return nil
}

// listValue is a self-validating flag.Value for comma-separated lists
// (shard addresses, merge directories): elements must be non-empty and
// unique, and a violation is rejected at parse time so the tool fails
// with usage text and exit 2 before anything runs — a duplicate shard
// address would silently skew the hash ring, and catching it in Set is
// the same no-per-main-code discipline as workersValue.
type listValue []string

func (v *listValue) String() string { return strings.Join(*v, ",") }

func (v *listValue) Set(s string) error {
	parts := strings.Split(s, ",")
	seen := make(map[string]bool, len(parts))
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return fmt.Errorf("empty element in list %q", s)
		}
		if seen[p] {
			return fmt.Errorf("duplicate element %q", p)
		}
		seen[p] = true
		out = append(out, p)
	}
	*v = out
	return nil
}

// ListFlag registers a comma-separated list flag on fs. Empty and
// duplicate elements are rejected at parse time (usage on stderr, exit 2
// under flag.ExitOnError). An unset flag yields a nil slice.
func ListFlag(fs *flag.FlagSet, name, usage string) *[]string {
	v := listValue(nil)
	fs.Var(&v, name, usage)
	return (*[]string)(&v)
}

// countValue is a self-validating flag.Value for small positive counts
// (shard counts and the like): integers below min are rejected in Set.
type countValue struct {
	p   *int
	min int
}

func (v countValue) String() string {
	if v.p == nil {
		return "0"
	}
	return strconv.Itoa(*v.p)
}

func (v countValue) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("must be an integer (got %q)", s)
	}
	if n < v.min {
		return fmt.Errorf("must be at least %d (got %d)", v.min, n)
	}
	*v.p = n
	return nil
}

// CountFlag registers an integer flag that must be at least min when set.
// The default may sit below min (conventionally 0 = "not selected") —
// the bound applies to explicit values, where 0 would be a typo.
func CountFlag(fs *flag.FlagSet, name string, def, min int, usage string) *int {
	n := def
	fs.Var(countValue{p: &n, min: min}, name, usage)
	return &n
}

// TraceFlags holds the record/replay pair every tool exposes, plus the
// degraded-mode knobs (-lenient, -deadline).
type TraceFlags struct {
	// Record: while running a live workload, also stream its probe trace
	// to this file.
	Record string
	// Replay: read events from this trace file instead of running a
	// workload.
	Replay string
	// Lenient: tolerate damaged trace frames on replay, resynchronizing
	// past corruption and salvaging every frame that still decodes.
	Lenient bool
	// Deadline is a total time budget for the invocation's event-stream
	// work, shared by every pass; 0 means none. The clock starts at the
	// first pass, so a tool that makes three passes gets one budget, not
	// three.
	Deadline time.Duration
	// MemBudget is the invocation's memory budget in bytes, shared by
	// every governed pass; 0 means none. When a pass's accounted footprint
	// trips the budget, the pipeline steps down the degradation ladder
	// (internal/govern) and the tool exits 2 with partial output.
	MemBudget int64
	// Approx starts every governed pass directly at the sketch-stride
	// rung: fixed-memory count-min/bloom/top-K summaries with ε/δ error
	// bounds instead of exact profiles. Starting there is a request, not
	// degradation — the tool exits 0 unless a -mem-budget forces the
	// ladder further down.
	Approx bool
}

// RegisterTraceFlags adds -record, -replay, -lenient, -deadline, and
// -mem-budget to fs.
func RegisterTraceFlags(fs *flag.FlagSet) *TraceFlags {
	t := &TraceFlags{}
	fs.StringVar(&t.Record, "record", "",
		"also record the probe trace of the live workload run to this file")
	fs.StringVar(&t.Replay, "replay", "",
		"profile a recorded trace file instead of running a workload")
	fs.BoolVar(&t.Lenient, "lenient", false,
		"tolerate corrupt frames in the -replay trace: skip damage, salvage the rest (exit code 2 if events were lost)")
	fs.DurationVar(&t.Deadline, "deadline", 0,
		"total time budget (e.g. 30s) shared by all passes over the event stream; an overrunning pass stops and reports the partial result (exit code 2)")
	fs.Var(sizeFlag{&t.MemBudget}, "mem-budget",
		"memory budget (e.g. 64M) shared by all profiling passes; over budget the pipeline degrades (full -> object-sampled -> sketch-stride -> sketch-counters -> stride-only -> counters) and the tool exits 2 with partial output (0 = unlimited)")
	fs.BoolVar(&t.Approx, "approx", false,
		"profile with fixed-memory sketches (count-min stride histograms, seen-digram bloom filter, top-K heavy hitters) carrying epsilon/delta error bounds, instead of exact profiles")
	return t
}

// Active reports whether either trace flag was set.
func (t *TraceFlags) Active() bool { return t.Record != "" || t.Replay != "" }

// Events is a replayable probe-event stream: either an in-memory live run
// or a pointer to a recorded trace file. Passes over a live run replay the
// buffered events; passes over a recording stream from disk.
type Events struct {
	// Name labels the stream: the workload name, recovered from the trace
	// header on replay (falling back to the file name for traces recorded
	// without one).
	Name string
	// Sites is the static allocation-site name table.
	Sites map[trace.SiteID]string

	buf  *trace.Buffer // live mode
	path string        // replay mode

	lenient   bool
	deadline  time.Duration
	budget    time.Time      // absolute cutoff shared by all passes; set at the first pass
	stats     tracefmt.Stats // reader stats from the most recent replay pass
	memBudget int64          // memory budget shared by all governed passes
	approx    bool           // start governed passes at the sketch-stride rung
	govBudget *govern.Budget // lazily created parent budget; see GovernedPass

	workload string           // live mode: the selected workload name
	wcfg     workloads.Config // live mode: its configuration
}

// Load resolves the trace flags into an event stream. With -replay it
// opens the trace file (validating the header) and any workload selection
// is ignored — the trace header names its workload. Otherwise it runs
// workload under cfg, teeing the probe stream to -record if set.
func (t *TraceFlags) Load(workload string, cfg workloads.Config) (*Events, error) {
	if t.Replay != "" {
		if t.Record != "" {
			return nil, fmt.Errorf("-record and -replay are mutually exclusive")
		}
		ev, err := openReplay(t.Replay)
		if err != nil {
			return nil, err
		}
		ev.lenient = t.Lenient
		ev.deadline = t.Deadline
		ev.memBudget = t.MemBudget
		ev.approx = t.Approx
		return ev, nil
	}
	if workload == "" {
		return nil, fmt.Errorf("no workload selected")
	}
	prog, err := workloads.New(workload, cfg)
	if err != nil {
		return nil, err
	}
	buf := &trace.Buffer{}
	sink := trace.Sink(buf)
	var tw *tracefmt.Writer
	var f *os.File
	if t.Record != "" {
		f, err = os.Create(t.Record)
		if err != nil {
			return nil, err
		}
		tw = tracefmt.NewWriter(f, tracefmt.WithName(workload))
		sink = trace.Tee(buf, tw)
	}
	m := memsim.Run(prog, sink)
	if tw != nil {
		if err := tw.Close(); err != nil {
			f.Close()
			return nil, fmt.Errorf("recording trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("recording trace: %w", err)
		}
	}
	return &Events{
		Name: workload, Sites: m.StaticSites(), buf: buf,
		deadline: t.Deadline, memBudget: t.MemBudget, approx: t.Approx,
		workload: workload, wcfg: cfg,
	}, nil
}

// Rerun executes the live workload a second time into sink under the given
// machine options — the optimize pipeline's "after" measurement re-runs the
// same deterministic program under a plan-driven allocator. It is an error
// on a replayed event stream: a trace file has no program to re-execute
// (replay callers re-resolve the recorded tuples instead).
func (ev *Events) Rerun(sink trace.Sink, opts ...memsim.Option) error {
	if ev.path != "" {
		return fmt.Errorf("cannot re-run a replayed trace")
	}
	prog, err := workloads.New(ev.workload, ev.wcfg)
	if err != nil {
		return err
	}
	memsim.Run(prog, sink, opts...)
	return nil
}

// openReplay validates the header and captures the metadata; events are
// streamed per Pass.
func openReplay(path string) (*Events, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := tracefmt.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	name := r.Name()
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return &Events{Name: name, Sites: r.Sites(), path: path}, nil
}

// Pass streams one complete pass of the event stream into sink and reports
// the number of events delivered. Replay passes hold O(batch) events in
// memory; live passes replay the run's buffer. When -deadline is set, all
// passes of the invocation share one time budget (the clock starts at the
// first pass), so -deadline bounds the tool's total event-stream work
// rather than multiplying by the pass count; with -lenient the replay
// reader resynchronizes past damaged frames and the pass returns the
// salvaged count alongside a *tracefmt.CorruptionError. Either way a
// non-nil error accompanied by n > 0 means partial results were
// delivered, not none.
func (ev *Events) Pass(sink trace.Sink) (int, error) {
	ctx := context.Background()
	if ev.deadline > 0 {
		if ev.budget.IsZero() {
			ev.budget = time.Now().Add(ev.deadline)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, ev.budget)
		defer cancel()
	}
	if ev.path == "" {
		if ev.deadline <= 0 {
			ev.buf.Replay(sink)
			return ev.buf.Len(), nil
		}
		return trace.DrainContext(ctx, ev.buf.Source(), sink)
	}
	f, err := os.Open(ev.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var opts []tracefmt.ReaderOption
	if ev.lenient {
		opts = append(opts, tracefmt.WithLenient())
	}
	r, err := tracefmt.NewReader(f, opts...)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", ev.path, err)
	}
	n, err := trace.DrainContext(ctx, r, sink)
	ev.stats = r.Stats()
	if err != nil {
		return n, fmt.Errorf("%s: %w", ev.path, err)
	}
	return n, nil
}

// Stats reports the trace reader's counters from the most recent replay
// pass — in lenient mode this is the damage report (skipped frames, skipped
// events, corruption incidents). Zero for live streams.
func (ev *Events) Stats() tracefmt.Stats { return ev.stats }

// Translate runs one pass through a fresh OMC and returns the
// object-relative record stream plus the OMC. A salvaged pass (lenient
// corruption skip, deadline overrun) still returns the partial record
// stream alongside its error; only hard failures return nil.
func (ev *Events) Translate() ([]profiler.Record, *omc.OMC, error) {
	o := omc.New(ev.Sites)
	col := &profiler.Collector{}
	cdc := profiler.NewCDC(o, col)
	_, err := ev.Pass(cdc)
	if err != nil && !Salvaged(err) {
		return nil, nil, err
	}
	cdc.Finish()
	return col.Records, o, err
}

// Replayed reports whether the events come from a recorded trace file.
func (ev *Events) Replayed() bool { return ev.path != "" }

// Salvaged reports whether err is a degraded-mode error: the pipeline lost
// part of the stream but contained the fault and salvaged the rest. These
// are exactly the typed errors of the fault-tolerant layer — trace
// corruption skipped by a lenient reader, a contained panic in the drain or
// a worker, a deadline/cancellation that cut the pass short, a memory
// budget that degraded the profiling mode, or a cluster merge that had to
// skip unusable final states. Anything else (unreadable file, bad flags,
// strict-mode decode failure) is a hard error.
func Salvaged(err error) bool {
	var ce *tracefmt.CorruptionError
	var pe *trace.PanicError
	var we *profiler.WorkerError
	var de *govern.DegradedError
	var pr *serve.PartialReportError
	return errors.As(err, &ce) || errors.As(err, &pe) || errors.As(err, &we) ||
		errors.As(err, &de) || errors.As(err, &pr) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// Degraded accumulates the first salvaged error across a tool's passes so
// partial results still print before the tool exits with code 2. The idiom:
//
//	var deg Degraded
//	_, err := ev.Pass(sink)
//	if err := deg.Check(err); err != nil {
//		return err // hard failure, abort
//	}
//	... render (possibly partial) results ...
//	return deg.Err() // nil, or the remembered salvaged error
type Degraded struct{ err error }

// Check filters a pass error: hard errors come back to abort the tool;
// salvaged errors are remembered (first wins) and nil is returned so the
// tool keeps going with the partial data.
func (d *Degraded) Check(err error) error {
	if err == nil {
		return nil
	}
	if !Salvaged(err) {
		return err
	}
	if d.err == nil {
		d.err = err
	}
	return nil
}

// Err reports the remembered salvaged error, nil after a clean run.
func (d *Degraded) Err() error { return d.err }

// ExitCode maps an error to the tools' shared exit-code convention:
// 0 for a clean run, 2 for a salvaged run (partial results were produced
// but data was lost), 1 for a hard failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case Salvaged(err):
		return 2
	default:
		return 1
	}
}

// Fatal prints err prefixed with the tool name and exits with the
// ExitCode convention. A nil err exits 0 silently.
func Fatal(tool string, err error) {
	if err == nil {
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitCode(err))
}
