// Package cliutil factors the flag handling and event-stream plumbing
// shared by every cmd tool: the -workers flag with its validation, and the
// -record / -replay pair that connects the tools to the on-disk trace
// layer (internal/tracefmt).
//
// The central type is Events: a replayable event source that is either a
// live workload run (optionally teeing its probe stream to a trace file)
// or a recorded trace. Each Pass streams the whole event stream into a
// sink; replay passes read the file with O(batch) memory, so profiling a
// recorded trace never materializes it.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/workloads"
)

// WorkersFlag registers the shared -workers flag on fs. The default is
// runtime.GOMAXPROCS(0); CheckWorkers rejects anything below 1.
func WorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for profile construction (>= 1; profiles are identical for any count)")
}

// CheckWorkers validates a -workers value: the pipeline needs at least one
// worker, and a silent fallback would hide typos like -workers -3.
func CheckWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", n)
	}
	return nil
}

// TraceFlags holds the record/replay pair every tool exposes.
type TraceFlags struct {
	// Record: while running a live workload, also stream its probe trace
	// to this file.
	Record string
	// Replay: read events from this trace file instead of running a
	// workload.
	Replay string
}

// RegisterTraceFlags adds -record and -replay to fs.
func RegisterTraceFlags(fs *flag.FlagSet) *TraceFlags {
	t := &TraceFlags{}
	fs.StringVar(&t.Record, "record", "",
		"also record the probe trace of the live workload run to this file")
	fs.StringVar(&t.Replay, "replay", "",
		"profile a recorded trace file instead of running a workload")
	return t
}

// Active reports whether either trace flag was set.
func (t *TraceFlags) Active() bool { return t.Record != "" || t.Replay != "" }

// Events is a replayable probe-event stream: either an in-memory live run
// or a pointer to a recorded trace file. Passes over a live run replay the
// buffered events; passes over a recording stream from disk.
type Events struct {
	// Name labels the stream: the workload name, recovered from the trace
	// header on replay (falling back to the file name for traces recorded
	// without one).
	Name string
	// Sites is the static allocation-site name table.
	Sites map[trace.SiteID]string

	buf  *trace.Buffer // live mode
	path string        // replay mode
}

// Load resolves the trace flags into an event stream. With -replay it
// opens the trace file (validating the header) and any workload selection
// is ignored — the trace header names its workload. Otherwise it runs
// workload under cfg, teeing the probe stream to -record if set.
func (t *TraceFlags) Load(workload string, cfg workloads.Config) (*Events, error) {
	if t.Replay != "" {
		if t.Record != "" {
			return nil, fmt.Errorf("-record and -replay are mutually exclusive")
		}
		return openReplay(t.Replay)
	}
	if workload == "" {
		return nil, fmt.Errorf("no workload selected")
	}
	prog, err := workloads.New(workload, cfg)
	if err != nil {
		return nil, err
	}
	buf := &trace.Buffer{}
	sink := trace.Sink(buf)
	var tw *tracefmt.Writer
	var f *os.File
	if t.Record != "" {
		f, err = os.Create(t.Record)
		if err != nil {
			return nil, err
		}
		tw = tracefmt.NewWriter(f, tracefmt.WithName(workload))
		sink = trace.Tee(buf, tw)
	}
	m := memsim.Run(prog, sink)
	if tw != nil {
		if err := tw.Close(); err != nil {
			f.Close()
			return nil, fmt.Errorf("recording trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("recording trace: %w", err)
		}
	}
	return &Events{Name: workload, Sites: m.StaticSites(), buf: buf}, nil
}

// openReplay validates the header and captures the metadata; events are
// streamed per Pass.
func openReplay(path string) (*Events, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := tracefmt.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	name := r.Name()
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return &Events{Name: name, Sites: r.Sites(), path: path}, nil
}

// Pass streams one complete pass of the event stream into sink and reports
// the number of events delivered. Replay passes hold O(batch) events in
// memory; live passes replay the run's buffer.
func (ev *Events) Pass(sink trace.Sink) (int, error) {
	if ev.path == "" {
		ev.buf.Replay(sink)
		return ev.buf.Len(), nil
	}
	f, err := os.Open(ev.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := tracefmt.Replay(f, sink)
	if err != nil {
		return n, fmt.Errorf("%s: %w", ev.path, err)
	}
	return n, nil
}

// Translate runs one pass through a fresh OMC and returns the
// object-relative record stream plus the OMC.
func (ev *Events) Translate() ([]profiler.Record, *omc.OMC, error) {
	o := omc.New(ev.Sites)
	col := &profiler.Collector{}
	cdc := profiler.NewCDC(o, col)
	if _, err := ev.Pass(cdc); err != nil {
		return nil, nil, err
	}
	cdc.Finish()
	return col.Records, o, nil
}

// Replayed reports whether the events come from a recorded trace file.
func (ev *Events) Replayed() bool { return ev.path != "" }
