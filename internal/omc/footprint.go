package omc

// Approximate per-element live sizes for budget accounting (struct +
// container share). These charge *logical* state — groups, objects ever
// allocated, live objects — not physical capacity: the governance ladder
// (internal/govern) compares Footprint against budgets to pick a rung, and
// that decision must be identical across worker counts and across a
// checkpoint/resume, whereas physical capacity (arena high-water marks,
// pooled buffers) depends on the path taken to reach the current state. A
// resumed OMC rebuilds its tree compactly and would report a different
// physical size than the original — and a different rung would change the
// output. Logical counts are state, so they resume exactly.
const (
	objectBytes = 96  // ObjectInfo arena slot + object-table index share
	groupBytes  = 128 // GroupInfo + site-map entry + object-table header
	liveBytes   = 40  // live-tree entry share (key + value + node overhead)
	omcBase     = 256
)

// Footprint reports the OMC's approximate live bytes in O(1): its state
// grows with groups, allocated objects, and live objects, all of which
// are counted incrementally. For the physical high-water mark of the live
// tree's arena (observability, not governance), see soabtree.Map.Footprint.
func (o *OMC) Footprint() int64 {
	return omcBase +
		int64(len(o.groupInfo))*groupBytes +
		int64(o.recs.n)*objectBytes +
		int64(o.live.Len())*liveBytes
}
