package omc

// Approximate per-element live sizes for budget accounting (struct +
// pointer + container share).
const (
	objectBytes = 96  // ObjectInfo + object-table slot
	groupBytes  = 128 // GroupInfo + site-map entry + object-table header
	liveBytes   = 40  // live B-tree entry share
	omcBase     = 256
)

// Footprint reports the OMC's approximate live bytes in O(1): its state
// grows with groups, allocated objects, and live objects, all of which
// are counted incrementally.
func (o *OMC) Footprint() int64 {
	return omcBase +
		int64(len(o.groupInfo))*groupBytes +
		int64(o.objCount)*objectBytes +
		int64(o.live.Len())*liveBytes
}
