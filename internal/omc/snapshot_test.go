package omc

import (
	"math/rand"
	"reflect"
	"testing"

	"ormprof/internal/trace"
)

// omcOp is one scripted OMC operation for the resume tests.
type omcOp struct {
	kind byte // 'a' alloc, 'f' free, 't' translate
	site trace.SiteID
	addr trace.Addr
	size uint32
	t    trace.Time
}

// snapshotOps builds a stream that exercises the tricky OMC states:
// interleaved alloc/free, unmapped translations, double frees, and
// re-allocation at an address whose previous occupant was never freed
// (the overwritten-live case the explicit live-set serialization exists
// for).
func snapshotOps() []omcOp {
	rng := rand.New(rand.NewSource(3))
	var ops []omcOp
	now := trace.Time(0)
	live := []trace.Addr{}
	for i := 0; i < 3000; i++ {
		now++
		switch rng.Intn(10) {
		case 0, 1, 2:
			addr := trace.Addr(0x1000 + rng.Intn(64)*0x100)
			ops = append(ops, omcOp{kind: 'a', site: trace.SiteID(rng.Intn(6) + 1), addr: addr, size: uint32(rng.Intn(200) + 8), t: now})
			live = append(live, addr)
		case 3:
			if len(live) > 0 {
				j := rng.Intn(len(live))
				ops = append(ops, omcOp{kind: 'f', addr: live[j], t: now})
				live = append(live[:j], live[j+1:]...)
			} else {
				ops = append(ops, omcOp{kind: 'f', addr: 0xdead, t: now})
			}
		default:
			ops = append(ops, omcOp{kind: 't', addr: trace.Addr(0x1000 + rng.Intn(64*0x100+0x200))})
		}
	}
	return ops
}

func apply(o *OMC, ops []omcOp) []Ref {
	var refs []Ref
	for _, op := range ops {
		switch op.kind {
		case 'a':
			o.Alloc(op.site, op.addr, op.size, op.t)
		case 'f':
			o.Free(op.addr, op.t)
		case 't':
			refs = append(refs, o.Translate(op.addr))
		}
	}
	return refs
}

// TestOMCSnapshotResumeExact: an OMC restored from a mid-stream snapshot and
// fed the remaining operations must translate identically to an
// uninterrupted OMC and end in exactly the same state.
func TestOMCSnapshotResumeExact(t *testing.T) {
	ops := snapshotOps()
	for _, typed := range []bool{false, true} {
		mk := func() *OMC {
			names := map[trace.SiteID]string{1: "alpha", 2: "beta"}
			if typed {
				return NewWithTypes(names, map[trace.SiteID]string{1: "node", 3: "node", 4: "leaf"})
			}
			return New(names)
		}
		cuts := []int{0, 1, 10, len(ops) / 3, len(ops) / 2, len(ops) - 1, len(ops)}
		for _, cut := range cuts {
			full := mk()
			fullRefs := apply(full, ops)

			o := mk()
			prefixRefs := apply(o, ops[:cut])
			snap, err := o.Snapshot()
			if err != nil {
				t.Fatalf("typed=%v cut=%d: Snapshot: %v", typed, cut, err)
			}
			restored, err := FromSnapshot(snap)
			if err != nil {
				t.Fatalf("typed=%v cut=%d: FromSnapshot: %v", typed, cut, err)
			}
			resumedRefs := append(prefixRefs, apply(restored, ops[cut:])...)

			if !reflect.DeepEqual(resumedRefs, fullRefs) {
				t.Errorf("typed=%v cut=%d: resumed translations differ from uninterrupted run", typed, cut)
			}
			s1, err := restored.Snapshot()
			if err != nil {
				t.Fatalf("typed=%v cut=%d: final Snapshot: %v", typed, cut, err)
			}
			s2, err := full.Snapshot()
			if err != nil {
				t.Fatalf("typed=%v cut=%d: full Snapshot: %v", typed, cut, err)
			}
			if !reflect.DeepEqual(s1, s2) {
				t.Errorf("typed=%v cut=%d: resumed OMC state differs from uninterrupted run", typed, cut)
			}
		}
	}
}

// TestOMCSnapshotOverwrittenLive pins the case that forces the explicit
// live-set serialization: two allocations at one address with no free in
// between leave two un-Freed records of which only the newer is live.
func TestOMCSnapshotOverwrittenLive(t *testing.T) {
	o := New(nil)
	o.Alloc(1, 0x1000, 64, 1)
	o.Alloc(2, 0x1000, 32, 2) // overwrites the live entry; first object never freed
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Live) != 1 {
		t.Fatalf("want 1 live ref, got %d", len(snap.Live))
	}
	if snap.Live[0].Group != 2 {
		t.Fatalf("live ref names group %d, want the newer object's group 2", snap.Live[0].Group)
	}
	restored, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r := restored.Translate(0x1008); r.Group != 2 {
		t.Errorf("restored OMC translates into group %d, want 2", r.Group)
	}
	// Freeing must mutate the record shared with the object table.
	restored.Free(0x1000, 9)
	objs := restored.Objects(2)
	if len(objs) != 1 || !objs[0].Freed || objs[0].FreeTime != 9 {
		t.Error("Free after restore did not mutate the shared object record")
	}
	if first := restored.Objects(1); len(first) != 1 || first[0].Freed {
		t.Error("overwritten (never freed) object gained a Freed mark")
	}
}

// TestOMCFromSnapshotRejectsCorrupt: broken snapshots error, never panic.
func TestOMCFromSnapshotRejectsCorrupt(t *testing.T) {
	mk := func() *Snapshot {
		o := New(nil)
		o.Alloc(1, 0x1000, 64, 1)
		o.Alloc(2, 0x2000, 64, 2)
		o.Free(0x2000, 3)
		s, err := o.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[string]func(*Snapshot){
		"group id gap":    func(s *Snapshot) { s.Groups[1].ID = 7 },
		"site bad group":  func(s *Snapshot) { s.SiteGroups[0].Group = 99 },
		"live bad object": func(s *Snapshot) { s.Live[0].Serial = 42 },
		"live bad addr":   func(s *Snapshot) { s.Live[0].Addr = 0x9999 },
		"live freed":      func(s *Snapshot) { s.Groups[0].Objects[0].Freed = true },
		"live dup":        func(s *Snapshot) { s.Live = append(s.Live, s.Live[0]) },
		"type bad group":  func(s *Snapshot) { s.TypeGroups = append(s.TypeGroups, TypeGroup{Type: "x", Group: 99}) },
	}
	for name, corrupt := range cases {
		s := mk()
		corrupt(s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: FromSnapshot accepted a corrupt snapshot", name)
		}
	}
}
