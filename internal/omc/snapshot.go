package omc

import (
	"fmt"
	"sort"

	"ormprof/internal/trace"
)

// This file implements exact OMC snapshots for checkpoint/resume
// (internal/checkpoint). The one structural subtlety: the live tree and
// the per-group object tables reference the same arena records (Free
// mutates a record through its live entry), and the live set cannot be
// recomputed from the tables — a re-allocation at an address whose
// previous occupant was never freed leaves two un-Freed records of which
// only the newer is live. The snapshot therefore stores the live set
// explicitly as (address, group, serial) references, and restore re-links
// them to the rebuilt arena records so the sharing is reconstructed
// exactly. The wire format is unchanged from the pointer-tree era, so old
// checkpoints restore into the arena-backed OMC byte-for-byte.

// ObjectRecord is one object's lifetime record; its serial is its index in
// the enclosing GroupObjects.
type ObjectRecord struct {
	Start     trace.Addr
	Size      uint32
	AllocTime trace.Time
	FreeTime  trace.Time
	Freed     bool
}

// GroupSnapshot is one group's descriptor plus all its objects.
type GroupSnapshot struct {
	ID      GroupID
	Site    trace.SiteID
	Name    string
	Objects []ObjectRecord
}

// SiteEntry maps one allocation site to a value (group or name).
type SiteEntry struct {
	Site trace.SiteID
	Name string
}

// SiteGroup maps one allocation site to its group.
type SiteGroup struct {
	Site  trace.SiteID
	Group GroupID
}

// TypeGroup maps one type name to its group (type-based grouping only).
type TypeGroup struct {
	Type  string
	Group GroupID
}

// LiveRef identifies one live object by address and identity.
type LiveRef struct {
	Addr   uint64
	Group  GroupID
	Serial uint32
}

// Snapshot is the complete mutable state of an OMC. All slices are sorted
// (by site, type, ID, or address) so equal OMCs produce equal snapshots.
type Snapshot struct {
	Groups     []GroupSnapshot
	SiteGroups []SiteGroup
	SiteNames  []SiteEntry
	SiteTypes  []SiteEntry
	TypeGroups []TypeGroup
	Typed      bool // whether the OMC was built with NewWithTypes
	Live       []LiveRef
	Translated uint64
	Unmapped   uint64
}

// Snapshot captures the OMC's complete state; the result shares no memory
// with the live OMC.
func (o *OMC) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		Typed:      o.typeGroup != nil,
		Translated: o.translated,
		Unmapped:   o.unmapped,
	}
	for _, gi := range o.groupInfo {
		g := GroupSnapshot{ID: gi.ID, Site: gi.Site, Name: gi.Name}
		idxs := o.objects[gi.ID]
		if uint32(len(idxs)) != gi.Count {
			return nil, fmt.Errorf("omc: group %d has %d objects but count %d", gi.ID, len(idxs), gi.Count)
		}
		g.Objects = make([]ObjectRecord, len(idxs))
		for s, idx := range idxs {
			info := o.recs.at(idx)
			if info.Group != gi.ID || info.Serial != uint32(s) {
				return nil, fmt.Errorf("omc: object table entry (%d, %d) holds object (%d, %d)",
					gi.ID, s, info.Group, info.Serial)
			}
			g.Objects[s] = ObjectRecord{
				Start:     info.Start,
				Size:      info.Size,
				AllocTime: info.AllocTime,
				FreeTime:  info.FreeTime,
				Freed:     info.Freed,
			}
		}
		snap.Groups = append(snap.Groups, g)
	}
	for site, g := range o.groups {
		snap.SiteGroups = append(snap.SiteGroups, SiteGroup{Site: site, Group: g})
	}
	sort.Slice(snap.SiteGroups, func(i, j int) bool { return snap.SiteGroups[i].Site < snap.SiteGroups[j].Site })
	for site, name := range o.siteNames {
		snap.SiteNames = append(snap.SiteNames, SiteEntry{Site: site, Name: name})
	}
	sort.Slice(snap.SiteNames, func(i, j int) bool { return snap.SiteNames[i].Site < snap.SiteNames[j].Site })
	for site, typ := range o.siteTypes {
		snap.SiteTypes = append(snap.SiteTypes, SiteEntry{Site: site, Name: typ})
	}
	sort.Slice(snap.SiteTypes, func(i, j int) bool { return snap.SiteTypes[i].Site < snap.SiteTypes[j].Site })
	for typ, g := range o.typeGroup {
		snap.TypeGroups = append(snap.TypeGroups, TypeGroup{Type: typ, Group: g})
	}
	sort.Slice(snap.TypeGroups, func(i, j int) bool { return snap.TypeGroups[i].Type < snap.TypeGroups[j].Type })
	var liveErr error
	o.live.Ascend(func(addr, idx uint64) bool {
		info := o.recs.at(uint32(idx))
		if uint64(info.Start) != addr {
			liveErr = fmt.Errorf("omc: live entry at %#x holds object starting at %#x", addr, info.Start)
			return false
		}
		snap.Live = append(snap.Live, LiveRef{Addr: addr, Group: info.Group, Serial: info.Serial})
		return true
	})
	if liveErr != nil {
		return nil, liveErr
	}
	return snap, nil
}

// FromSnapshot reconstructs an OMC that behaves identically to the
// snapshotted one for all future events and translations.
func FromSnapshot(snap *Snapshot) (*OMC, error) {
	o := New(nil)
	if len(snap.SiteNames) > 0 {
		o.siteNames = make(map[trace.SiteID]string, len(snap.SiteNames))
		for _, e := range snap.SiteNames {
			o.siteNames[e.Site] = e.Name
		}
	}
	if snap.Typed || len(snap.SiteTypes) > 0 || len(snap.TypeGroups) > 0 {
		o.siteTypes = make(map[trace.SiteID]string, len(snap.SiteTypes))
		for _, e := range snap.SiteTypes {
			o.siteTypes[e.Site] = e.Name
		}
		o.typeGroup = make(map[string]GroupID, len(snap.TypeGroups))
		for _, e := range snap.TypeGroups {
			if int(e.Group) < 1 || int(e.Group) > len(snap.Groups) {
				return nil, fmt.Errorf("omc: type %q maps to unknown group %d", e.Type, e.Group)
			}
			o.typeGroup[e.Type] = e.Group
		}
	}
	o.translated = snap.Translated
	o.unmapped = snap.Unmapped
	for i, g := range snap.Groups {
		if g.ID != GroupID(i+1) {
			return nil, fmt.Errorf("omc: group at index %d has ID %d, want %d", i, g.ID, i+1)
		}
		o.groupInfo = append(o.groupInfo, GroupInfo{
			ID: g.ID, Site: g.Site, Name: g.Name, Count: uint32(len(g.Objects)),
		})
		idxs := make([]uint32, len(g.Objects))
		for s, rec := range g.Objects {
			idx, info := o.recs.alloc()
			*info = ObjectInfo{
				Group:     g.ID,
				Serial:    uint32(s),
				Start:     rec.Start,
				Size:      rec.Size,
				AllocTime: rec.AllocTime,
				FreeTime:  rec.FreeTime,
				Freed:     rec.Freed,
			}
			idxs[s] = idx
		}
		o.objects[g.ID] = idxs
	}
	for _, e := range snap.SiteGroups {
		if int(e.Group) < 1 || int(e.Group) > len(snap.Groups) {
			return nil, fmt.Errorf("omc: site %d maps to unknown group %d", e.Site, e.Group)
		}
		o.groups[e.Site] = e.Group
	}
	for _, ref := range snap.Live {
		idxs := o.objects[ref.Group]
		if int(ref.Serial) >= len(idxs) {
			return nil, fmt.Errorf("omc: live ref (%d, %d) names an unknown object", ref.Group, ref.Serial)
		}
		idx := idxs[ref.Serial]
		info := o.recs.at(idx)
		if uint64(info.Start) != ref.Addr {
			return nil, fmt.Errorf("omc: live ref at %#x names object starting at %#x", ref.Addr, info.Start)
		}
		if info.Freed {
			return nil, fmt.Errorf("omc: live ref (%d, %d) names a freed object", ref.Group, ref.Serial)
		}
		if _, dup := o.live.Get(ref.Addr); dup {
			return nil, fmt.Errorf("omc: duplicate live ref at %#x", ref.Addr)
		}
		o.live.Set(ref.Addr, uint64(idx))
	}
	return o, nil
}
