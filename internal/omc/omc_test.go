package omc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ormprof/internal/trace"
)

func TestGroupAssignment(t *testing.T) {
	o := New(map[trace.SiteID]string{7: "my_table"})
	r1 := o.Alloc(7, 0x1000, 64, 0)
	r2 := o.Alloc(7, 0x2000, 64, 1)
	r3 := o.Alloc(9, 0x3000, 32, 2)

	if r1.Group != r2.Group {
		t.Error("same site must map to same group")
	}
	if r1.Group == r3.Group {
		t.Error("different sites must map to different groups")
	}
	if r1.Object != 0 || r2.Object != 1 || r3.Object != 0 {
		t.Errorf("serials: %d %d %d", r1.Object, r2.Object, r3.Object)
	}
	if o.GroupName(r1.Group) != "my_table" {
		t.Errorf("GroupName = %q", o.GroupName(r1.Group))
	}
	if o.GroupName(r3.Group) != "site#9" {
		t.Errorf("default GroupName = %q", o.GroupName(r3.Group))
	}
	if o.GroupName(Unmapped) != "unmapped" {
		t.Errorf("unmapped GroupName = %q", o.GroupName(Unmapped))
	}
	groups := o.Groups()
	if len(groups) != 2 || groups[0].Count != 2 || groups[1].Count != 1 {
		t.Errorf("Groups = %+v", groups)
	}
}

func TestTranslateBasics(t *testing.T) {
	o := New(nil)
	o.Alloc(1, 0x1000, 64, 0)

	r := o.Translate(0x1000)
	if r.Group == Unmapped || r.Object != 0 || r.Offset != 0 {
		t.Errorf("Translate(start) = %v", r)
	}
	r = o.Translate(0x103f)
	if r.Offset != 63 {
		t.Errorf("Translate(last byte) = %v", r)
	}
	r = o.Translate(0x1040) // one past the end
	if r.Group != Unmapped || r.Offset != 0x1040 {
		t.Errorf("Translate(past end) = %v", r)
	}
	r = o.Translate(0xfff) // just before
	if r.Group != Unmapped {
		t.Errorf("Translate(before) = %v", r)
	}
	translated, unmapped := o.Stats()
	if translated != 2 || unmapped != 2 {
		t.Errorf("Stats = %d, %d", translated, unmapped)
	}
}

func TestFreeRemovesFromIndex(t *testing.T) {
	o := New(nil)
	o.Alloc(1, 0x1000, 64, 0)
	if o.LiveCount() != 1 {
		t.Fatal("LiveCount != 1")
	}
	o.Free(0x1000, 5)
	if o.LiveCount() != 0 {
		t.Fatal("LiveCount != 0 after free")
	}
	if r := o.Translate(0x1000); r.Group != Unmapped {
		t.Errorf("Translate after free = %v", r)
	}
	info := o.Lookup(1, 0)
	if info == nil || !info.Freed || info.FreeTime != 5 {
		t.Errorf("lifetime record = %+v", info)
	}
	// Freeing a non-live address is a no-op.
	o.Free(0x9999, 6)
}

func TestAddressReuseGetsNewSerial(t *testing.T) {
	// The false-aliasing scenario: the same raw address hosts two objects
	// over time; they must be distinguishable in object-relative form.
	o := New(nil)
	o.Alloc(1, 0x1000, 64, 0)
	first := o.Translate(0x1010)
	o.Free(0x1000, 2)
	o.Alloc(1, 0x1000, 64, 3)
	second := o.Translate(0x1010)

	if first.Group != second.Group {
		t.Error("same site: groups must match")
	}
	if first.Object == second.Object {
		t.Error("address reuse must yield a fresh object serial")
	}
	if first.Offset != 16 || second.Offset != 16 {
		t.Error("offsets must be object-relative")
	}
}

func TestHandleEvent(t *testing.T) {
	o := New(nil)
	o.HandleEvent(trace.Event{Kind: trace.EvAlloc, Site: 1, Addr: 0x1000, Size: 32, Time: 0})
	if o.LiveCount() != 1 {
		t.Error("alloc event not handled")
	}
	o.HandleEvent(trace.Event{Kind: trace.EvAccess, Addr: 0x1000}) // ignored
	o.HandleEvent(trace.Event{Kind: trace.EvFree, Addr: 0x1000, Time: 1})
	if o.LiveCount() != 0 {
		t.Error("free event not handled")
	}
}

func TestInvert(t *testing.T) {
	o := New(nil)
	ref := o.Alloc(1, 0x1000, 64, 0)
	ref.Offset = 24

	addr, ok := o.Invert(ref)
	if !ok || addr != 0x1018 {
		t.Errorf("Invert = %#x, %v", uint64(addr), ok)
	}
	// Unmapped refs invert to the raw address they carry.
	addr, ok = o.Invert(Ref{Group: Unmapped, Offset: 0x5555})
	if !ok || addr != 0x5555 {
		t.Errorf("Invert(unmapped) = %#x, %v", uint64(addr), ok)
	}
	// Out-of-range offset fails.
	if _, ok := o.Invert(Ref{Group: ref.Group, Object: 0, Offset: 64}); ok {
		t.Error("Invert past object end should fail")
	}
	// Unknown object fails.
	if _, ok := o.Invert(Ref{Group: ref.Group, Object: 99}); ok {
		t.Error("Invert of unknown serial should fail")
	}
	if _, ok := o.Invert(Ref{Group: 42}); ok {
		t.Error("Invert of unknown group should fail")
	}
}

// Property: Translate and Invert are inverses for live objects.
func TestQuickTranslateInvertRoundTrip(t *testing.T) {
	o := New(nil)
	rng := rand.New(rand.NewSource(1))
	type obj struct {
		start trace.Addr
		size  uint32
	}
	var objs []obj
	base := trace.Addr(0x10000)
	for i := 0; i < 200; i++ {
		size := uint32(8 + rng.Intn(120))
		o.Alloc(trace.SiteID(1+rng.Intn(5)), base, size, trace.Time(i))
		objs = append(objs, obj{base, size})
		base += trace.Addr(size + uint32(rng.Intn(64)))
	}
	f := func(pick uint16, off uint16) bool {
		ob := objs[int(pick)%len(objs)]
		offset := uint64(off) % uint64(ob.size)
		addr := ob.start + trace.Addr(offset)
		ref := o.Translate(addr)
		if ref.Group == Unmapped || ref.Offset != offset {
			return false
		}
		back, ok := o.Invert(ref)
		return ok && back == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefString(t *testing.T) {
	if s := (Ref{Group: 2, Object: 3, Offset: 8}).String(); s != "(2, 3, 8)" {
		t.Errorf("Ref.String = %q", s)
	}
	if s := (Ref{Group: Unmapped, Offset: 0x10}).String(); s != "(unmapped, 0x10)" {
		t.Errorf("unmapped Ref.String = %q", s)
	}
}

func TestManyLiveObjectsStress(t *testing.T) {
	// Interleave allocs and frees; the B-tree index must stay consistent.
	o := New(nil)
	rng := rand.New(rand.NewSource(2))
	live := make(map[trace.Addr]uint32)
	next := trace.Addr(0x100000)
	now := trace.Time(0)
	for op := 0; op < 20000; op++ {
		now++
		if len(live) > 0 && rng.Intn(3) == 0 {
			for a := range live {
				o.Free(a, now)
				delete(live, a)
				break
			}
			continue
		}
		size := uint32(16 + rng.Intn(64))
		o.Alloc(trace.SiteID(rng.Intn(10)), next, size, now)
		live[next] = size
		next += trace.Addr(size + 16)
	}
	if o.LiveCount() != len(live) {
		t.Fatalf("LiveCount = %d, want %d", o.LiveCount(), len(live))
	}
	for a, size := range live {
		r := o.Translate(a + trace.Addr(size-1))
		if r.Group == Unmapped || r.Offset != uint64(size-1) {
			t.Fatalf("Translate(%#x) = %v", uint64(a), r)
		}
	}
}

func TestTypeRefinedGrouping(t *testing.T) {
	// Two sites allocate the same record type (e.g. two call sites of the
	// same constructor); with compiler-provided type information they
	// share one group, while an untyped site keeps its own.
	o := NewWithTypes(nil, map[trace.SiteID]string{
		1: "node_t",
		2: "node_t",
		3: "edge_t",
	})
	r1 := o.Alloc(1, 0x1000, 32, 0)
	r2 := o.Alloc(2, 0x2000, 32, 1)
	r3 := o.Alloc(3, 0x3000, 16, 2)
	r4 := o.Alloc(9, 0x4000, 8, 3) // no type info: per-site fallback

	if r1.Group != r2.Group {
		t.Errorf("same-type sites split into groups %d and %d", r1.Group, r2.Group)
	}
	if r1.Object != 0 || r2.Object != 1 {
		t.Errorf("shared group serials: %d, %d", r1.Object, r2.Object)
	}
	if r3.Group == r1.Group || r4.Group == r1.Group || r3.Group == r4.Group {
		t.Errorf("distinct types must have distinct groups: %v %v %v", r1.Group, r3.Group, r4.Group)
	}
	if o.GroupName(r1.Group) != "node_t" {
		t.Errorf("type group name = %q", o.GroupName(r1.Group))
	}
	if o.GroupName(r4.Group) != "site#9" {
		t.Errorf("fallback name = %q", o.GroupName(r4.Group))
	}
	// Translation still resolves through the shared group.
	if got := o.Translate(0x2008); got.Group != r1.Group || got.Object != 1 || got.Offset != 8 {
		t.Errorf("Translate through type group = %v", got)
	}
}

func BenchmarkTranslate(b *testing.B) {
	o := New(nil)
	rng := rand.New(rand.NewSource(9))
	const nObjs = 10000
	addrs := make([]trace.Addr, nObjs)
	base := trace.Addr(0x100000)
	for i := range addrs {
		size := uint32(16 + rng.Intn(240))
		o.Alloc(trace.SiteID(rng.Intn(32)), base, size, trace.Time(i))
		addrs[i] = base + trace.Addr(rng.Intn(int(size)))
		base += trace.Addr(size + 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Translate(addrs[i%nObjs])
	}
}
