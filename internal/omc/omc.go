// Package omc implements the paper's Object Management Component (§2.3).
//
// The OMC records every object allocated in the program — when it was
// allocated and de-allocated, the address range it occupies, and its group —
// and assigns identifiers: objects created at the same program point
// (allocation site) form a group, and each object receives a serial number
// within its group. Given a raw address, the OMC identifies the live object
// containing it and translates the address into a (group, object, offset)
// triple.
//
// Live objects are indexed by a flat structure-of-arrays B+Tree keyed on
// start address (§3.1's "auxiliary B-tree-like data structure", see
// internal/soabtree); translation is a floor search plus a bounds check,
// valid because live objects never overlap.
//
// # Memory layout & ownership
//
// Object lifetime records live in a chunked arena (recArena): fixed-size
// chunks allocated full-size up front, so record addresses are stable for
// the OMC's lifetime and allocating a record is pointer-bump cheap. The
// live tree and the per-group object tables both store compact *indices*
// into the arena rather than pointers, which keeps the hot structures
// pointer-free (nothing for the garbage collector to trace) and makes the
// steady-state event loop allocation-free: an alloc/free/access cycle
// touches only pre-grown arena slots and recycled tree nodes. The OMC is
// single-goroutine, matching the trace.Sink contract — one translation
// loop owns it; snapshots hand out copies, never aliases.
package omc

import (
	"fmt"
	"sort"

	"ormprof/internal/soabtree"
	"ormprof/internal/trace"
)

// GroupID identifies a group: the collection of all objects allocated at one
// static program point. Group 0 is reserved for unmapped addresses (accesses
// that hit no live object, e.g. unprofiled stack accesses).
type GroupID uint32

// Unmapped is the reserved group for addresses outside every live object.
const Unmapped GroupID = 0

// Ref is the object-relative form of one address: which group, which object
// in the group (its serial number), and the byte offset from the object's
// start. For unmapped addresses Group and Object are zero and Offset holds
// the raw address, which keeps the translated stream information-lossless.
type Ref struct {
	Group  GroupID
	Object uint32
	Offset uint64
}

// String renders the triple in the paper's (group, object, offset) notation.
func (r Ref) String() string {
	if r.Group == Unmapped {
		return fmt.Sprintf("(unmapped, %#x)", r.Offset)
	}
	return fmt.Sprintf("(%d, %d, %d)", r.Group, r.Object, r.Offset)
}

// ObjectInfo is the per-object lifetime record kept by the OMC: the
// run-dependent auxiliary information the profiler outputs separately from
// the invariant object-relative tuples (§2.3). Pointers returned by Lookup
// and Objects reference the OMC's record arena directly and stay valid (and
// observe later Free updates) for the OMC's lifetime.
type ObjectInfo struct {
	Group     GroupID
	Serial    uint32
	Start     trace.Addr
	Size      uint32
	AllocTime trace.Time
	FreeTime  trace.Time // meaningful only if Freed
	Freed     bool
}

// GroupInfo describes one group.
type GroupInfo struct {
	ID    GroupID
	Site  trace.SiteID
	Name  string // symbolic name when known (statics), else "site#N"
	Count uint32 // objects allocated so far (== next serial)
}

// recChunk is the record-arena chunk size. Chunks are allocated at full
// size so &chunk[i] stays valid forever; growth costs one slice allocation
// per recChunk objects — amortized to nothing on the event loop.
const recChunk = 1024

// recArena is a chunked, address-stable store of ObjectInfo records,
// addressed by dense global index in allocation order.
type recArena struct {
	chunks [][]ObjectInfo
	n      int
}

// alloc reserves the next record and returns its global index and address.
func (a *recArena) alloc() (uint32, *ObjectInfo) {
	if a.n%recChunk == 0 {
		a.chunks = append(a.chunks, make([]ObjectInfo, recChunk))
	}
	idx := a.n
	a.n++
	return uint32(idx), &a.chunks[idx/recChunk][idx%recChunk]
}

// at returns the record at a global index.
func (a *recArena) at(idx uint32) *ObjectInfo {
	return &a.chunks[int(idx)/recChunk][int(idx)%recChunk]
}

// OMC is the object-management component. Not safe for concurrent use; the
// paper's multi-threaded collection is an implementation convenience we do
// not need.
type OMC struct {
	groups    map[trace.SiteID]GroupID
	groupInfo []GroupInfo // index = GroupID-1
	siteNames map[trace.SiteID]string
	siteTypes map[trace.SiteID]string
	typeGroup map[string]GroupID

	live    soabtree.Map // start address -> global record index
	recs    recArena
	objects map[GroupID][]uint32 // group -> record indices, serial order

	translated uint64
	unmapped   uint64
}

// New creates an empty OMC. siteNames optionally maps allocation sites to
// symbolic names (e.g. static symbol names from the compiler's symbol
// table); it may be nil.
func New(siteNames map[trace.SiteID]string) *OMC {
	return &OMC{
		groups:    make(map[trace.SiteID]GroupID),
		siteNames: siteNames,
		objects:   make(map[GroupID][]uint32),
	}
}

// NewWithTypes creates an OMC that groups by *type* where the compiler has
// provided type information: sites mapped to the same type name share one
// group (§3.1: "the profiler groups allocated dynamic objects by static
// instruction. The compiler can provide type information to further refine
// this strategy."). Sites absent from siteTypes fall back to per-site
// grouping.
func NewWithTypes(siteNames map[trace.SiteID]string, siteTypes map[trace.SiteID]string) *OMC {
	o := New(siteNames)
	o.siteTypes = siteTypes
	o.typeGroup = make(map[string]GroupID)
	return o
}

// groupFor returns the group for an allocation site, creating it on first
// use.
func (o *OMC) groupFor(site trace.SiteID) GroupID {
	if g, ok := o.groups[site]; ok {
		return g
	}
	if o.siteTypes != nil {
		if typ, ok := o.siteTypes[site]; ok && typ != "" {
			if g, ok := o.typeGroup[typ]; ok {
				o.groups[site] = g
				return g
			}
			g := o.newGroup(site, typ)
			o.typeGroup[typ] = g
			return g
		}
	}
	name := ""
	if o.siteNames != nil {
		name = o.siteNames[site]
	}
	if name == "" {
		name = fmt.Sprintf("site#%d", site)
	}
	return o.newGroup(site, name)
}

func (o *OMC) newGroup(site trace.SiteID, name string) GroupID {
	id := GroupID(len(o.groupInfo) + 1)
	o.groups[site] = id
	o.groupInfo = append(o.groupInfo, GroupInfo{ID: id, Site: site, Name: name})
	return id
}

// Alloc records an object creation probe and returns the object's reference.
func (o *OMC) Alloc(site trace.SiteID, addr trace.Addr, size uint32, t trace.Time) Ref {
	g := o.groupFor(site)
	gi := &o.groupInfo[g-1]
	idx, info := o.recs.alloc()
	*info = ObjectInfo{
		Group:     g,
		Serial:    gi.Count,
		Start:     addr,
		Size:      size,
		AllocTime: t,
	}
	gi.Count++
	o.live.Set(uint64(addr), uint64(idx))
	o.objects[g] = append(o.objects[g], idx)
	return Ref{Group: g, Object: info.Serial}
}

// Free records an object destruction probe. Freeing an address with no live
// object is ignored (a double free in the profiled program is its bug, not
// the profiler's).
func (o *OMC) Free(addr trace.Addr, t trace.Time) {
	idx, ok := o.live.Get(uint64(addr))
	if !ok {
		return
	}
	info := o.recs.at(uint32(idx))
	info.Freed = true
	info.FreeTime = t
	o.live.Delete(uint64(addr))
}

// HandleEvent dispatches an object-probe event to Alloc or Free. Access
// events are ignored (they go through Translate).
func (o *OMC) HandleEvent(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		o.Alloc(e.Site, e.Addr, e.Size, e.Time)
	case trace.EvFree:
		o.Free(e.Addr, e.Time)
	}
}

// Translate converts a raw address to object-relative form against the
// currently live objects. Addresses outside every live object translate to
// the Unmapped group with the raw address preserved in Offset.
func (o *OMC) Translate(addr trace.Addr) Ref {
	start, idx, ok := o.live.Floor(uint64(addr))
	if ok {
		info := o.recs.at(uint32(idx))
		if uint64(addr) < start+uint64(info.Size) {
			o.translated++
			return Ref{Group: info.Group, Object: info.Serial, Offset: uint64(addr) - start}
		}
	}
	o.unmapped++
	return Ref{Group: Unmapped, Offset: uint64(addr)}
}

// Lookup returns the lifetime record for (group, serial), or nil if the
// object was never allocated. The pointer references the OMC's arena and
// remains valid for the OMC's lifetime.
func (o *OMC) Lookup(g GroupID, serial uint32) *ObjectInfo {
	idxs := o.objects[g]
	if int(serial) >= len(idxs) {
		return nil
	}
	return o.recs.at(idxs[serial])
}

// Invert maps an object-relative reference back to the raw address it was
// translated from, using the object table. This is the reconstruction path
// that makes a WHOMP profile lossless: OMSG + object table regenerate the
// raw address trace.
func (o *OMC) Invert(r Ref) (trace.Addr, bool) {
	if r.Group == Unmapped {
		return trace.Addr(r.Offset), true
	}
	info := o.Lookup(r.Group, r.Object)
	if info == nil || r.Offset >= uint64(info.Size) {
		return 0, false
	}
	return info.Start + trace.Addr(r.Offset), true
}

// Groups returns descriptions of all groups in ID order.
func (o *OMC) Groups() []GroupInfo {
	out := append([]GroupInfo(nil), o.groupInfo...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GroupName returns the symbolic name of a group ("unmapped" for group 0).
func (o *OMC) GroupName(g GroupID) string {
	if g == Unmapped {
		return "unmapped"
	}
	if int(g-1) < len(o.groupInfo) {
		return o.groupInfo[g-1].Name
	}
	return fmt.Sprintf("group#%d", g)
}

// Objects returns the lifetime records of every object ever allocated in
// group g, in serial order. The slice is materialized per call (reporting
// path, not the event loop); the records it points at are the arena's.
func (o *OMC) Objects(g GroupID) []*ObjectInfo {
	idxs := o.objects[g]
	if idxs == nil {
		return nil
	}
	out := make([]*ObjectInfo, len(idxs))
	for i, idx := range idxs {
		out[i] = o.recs.at(idx)
	}
	return out
}

// LiveCount reports the number of currently live objects.
func (o *OMC) LiveCount() int { return o.live.Len() }

// Stats reports how many translations hit a live object and how many were
// unmapped.
func (o *OMC) Stats() (translated, unmapped uint64) {
	return o.translated, o.unmapped
}
