package omc_test

import (
	"fmt"

	"ormprof/internal/omc"
)

// Object-relative translation on the paper's linked-list scenario: two
// nodes of the same allocation site at scattered addresses translate to the
// same group with ascending serials and field offsets.
func Example() {
	o := omc.New(nil)
	o.Alloc(7, 0x40001000, 48, 0) // first node
	o.Alloc(7, 0x40001480, 48, 1) // second node, far away

	fmt.Println(o.Translate(0x40001000)) // node 0, data field
	fmt.Println(o.Translate(0x40001008)) // node 0, next field
	fmt.Println(o.Translate(0x40001488)) // node 1, next field
	fmt.Println(o.Translate(0xdeadbeef)) // no live object
	// Output:
	// (1, 0, 0)
	// (1, 0, 8)
	// (1, 1, 8)
	// (unmapped, 0xdeadbeef)
}
