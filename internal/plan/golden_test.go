package plan

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden plan fixture")

// TestGoldenPlan pins the ORMPLAN v1 byte layout: if this fails, the wire
// format changed — bump Version and regenerate with -update-golden rather
// than silently breaking old plan files.
func TestGoldenPlan(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.ormplan")
	got, err := Encode(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from golden fixture: %d bytes vs %d", len(got), len(want))
	}
	p, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, samplePlan()) {
		t.Error("golden fixture decodes to a different plan")
	}
}

// TestVersionRejection proves a future-versioned plan file is refused with
// a version error instead of being misparsed.
func TestVersionRejection(t *testing.T) {
	data, err := Encode(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)] = Version + 1
	_, err = Decode(data)
	if !IsFormat(err) {
		t.Fatalf("Decode = %v, want *FormatError", err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("error %q does not mention the version", err)
	}
}
