package plan

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ormprof/internal/trace"
)

// samplePlan exercises every section of the format.
func samplePlan() *Plan {
	return &Plan{
		Workload: "181.mcf",
		Region:   0x7000_0000_0000,
		Fields: []FieldOrder{
			{Site: 3, RecordSize: 32, NewOffset: []uint32{24, 0, 8, 16}},
			{Site: 7, RecordSize: 16, NewOffset: []uint32{8, 0}},
		},
		Placements: []ObjectPlacement{
			{Site: 3, Serial: 0, Size: 32, Addr: 0x7000_0000_0000},
			{Site: 3, Serial: 2, Size: 32, Addr: 0x7000_0000_0020},
			{Site: 7, Serial: 1, Size: 16, Addr: 0x7000_0000_0040},
		},
		Prefetch: []PrefetchRule{
			{Instr: 11, Stride: 64, Distance: 16},
			{Instr: 12, Stride: -32, Distance: 8},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := samplePlan()
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEmptyPlanRoundTrip(t *testing.T) {
	want := &Plan{Workload: "empty"}
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() || got.Workload != "empty" {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodes of the same plan differ")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"unsorted fields", func(p *Plan) { p.Fields[0].Site = 9 }},
		{"duplicate field site", func(p *Plan) { p.Fields[1].Site = p.Fields[0].Site }},
		{"record size not slot multiple", func(p *Plan) { p.Fields[0].RecordSize = 30 }},
		{"slot count mismatch", func(p *Plan) { p.Fields[0].NewOffset = p.Fields[0].NewOffset[:3] }},
		{"offset out of record", func(p *Plan) { p.Fields[0].NewOffset[0] = 32 }},
		{"offset unaligned", func(p *Plan) { p.Fields[0].NewOffset[0] = 4 }},
		{"offset not a permutation", func(p *Plan) { p.Fields[0].NewOffset[0] = 0 }},
		{"unsorted placements", func(p *Plan) { p.Placements[0].Serial = 5 }},
		{"duplicate placement", func(p *Plan) { p.Placements[1].Serial = p.Placements[0].Serial }},
		{"zero-size placement", func(p *Plan) { p.Placements[0].Size = 0 }},
		{"placement below region", func(p *Plan) { p.Placements[0].Addr = 0x1000 }},
		{"unsorted prefetch", func(p *Plan) { p.Prefetch[0].Instr = 99 }},
		{"zero prefetch distance", func(p *Plan) { p.Prefetch[0].Distance = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := samplePlan()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted an invalid plan")
			}
			if _, err := Encode(p); err == nil {
				t.Error("Encode accepted an invalid plan")
			}
		})
	}
}

func TestCanonicalize(t *testing.T) {
	p := samplePlan()
	// Shuffle each section out of order.
	p.Fields[0], p.Fields[1] = p.Fields[1], p.Fields[0]
	p.Placements[0], p.Placements[2] = p.Placements[2], p.Placements[0]
	p.Prefetch[0], p.Prefetch[1] = p.Prefetch[1], p.Prefetch[0]
	if err := p.Validate(); err == nil {
		t.Fatal("shuffled plan unexpectedly valid")
	}
	p.Canonicalize()
	if err := p.Validate(); err != nil {
		t.Fatalf("canonicalized plan invalid: %v", err)
	}
	if !reflect.DeepEqual(p, samplePlan()) {
		t.Error("canonicalize did not restore the canonical order")
	}
}

func TestPlacer(t *testing.T) {
	pl := samplePlan().Placer()
	if a, ok := pl.Place(3, 0, 32); !ok || a != 0x7000_0000_0000 {
		t.Errorf("Place(3,0,32) = %#x, %v", uint64(a), ok)
	}
	if _, ok := pl.Place(3, 1, 32); ok {
		t.Error("unplanned serial placed")
	}
	// Size mismatch means the plan is stale: decline.
	if _, ok := pl.Place(3, 0, 48); ok {
		t.Error("placement accepted despite size mismatch")
	}
	if _, ok := pl.Place(99, 0, 32); ok {
		t.Error("unplanned site placed")
	}
}

func TestFieldRemapper(t *testing.T) {
	fr := samplePlan().FieldRemapper()
	// Site 3: slot 0 -> offset 24, slot 1 -> 0.
	if got := fr.RemapOffset(3, 0, 8); got != 24 {
		t.Errorf("RemapOffset(3, 0) = %d, want 24", got)
	}
	if got := fr.RemapOffset(3, 8, 8); got != 0 {
		t.Errorf("RemapOffset(3, 8) = %d, want 0", got)
	}
	// Sub-word access inside a slot keeps its remainder.
	if got := fr.RemapOffset(3, 10, 2); got != 2 {
		t.Errorf("RemapOffset(3, 10, 2) = %d, want 2", got)
	}
	// Pool object: second record remaps record-wise.
	if got := fr.RemapOffset(3, 32, 8); got != 32+24 {
		t.Errorf("RemapOffset(3, 32) = %d, want 56", got)
	}
	// Unplanned site passes through.
	if got := fr.RemapOffset(42, 16, 8); got != 16 {
		t.Errorf("RemapOffset(42, 16) = %d, want 16", got)
	}
	// Straddling access passes through untouched.
	if got := fr.RemapOffset(3, 4, 8); got != 4 {
		t.Errorf("straddling RemapOffset(3, 4, 8) = %d, want 4", got)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ormplan")
	want := samplePlan()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Save/Load mismatch")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	data, err := Encode(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), data...))
			if _, err := Decode(b); !IsFormat(err) {
				t.Errorf("Decode = %v, want *FormatError", err)
			}
		})
	}
}

func TestStaticSitesAllowed(t *testing.T) {
	// Field orders may cover static sites (>= 1<<24); placements are for
	// heap objects but the codec itself does not care.
	p := &Plan{
		Workload: "w",
		Fields:   []FieldOrder{{Site: trace.SiteID(1<<24 + 5), RecordSize: 16, NewOffset: []uint32{8, 0}}},
	}
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields[0].Site != trace.SiteID(1<<24+5) {
		t.Errorf("site = %d", got.Fields[0].Site)
	}
}
