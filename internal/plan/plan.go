// Package plan defines the ORMPLAN artifact: a serialized, versioned data
// layout plan derived from an object-relative profile.
//
// A plan is the actionable output of the profiling stack — the "different
// resolution function from tuples to addresses" of the paper's §1, written
// down. It carries three kinds of directives:
//
//   - field orders: per allocation site, a permutation of the record's
//     word-sized slots (hot fields packed first, §3.2 field reordering);
//   - object placements: per (site, serial) object, an explicit address in
//     a dedicated packed region (cache-conscious clustering in first-touch
//     order, related work [4]);
//   - prefetch rules: per instruction, a stride and distance derived from
//     the LEAP profile's LMADs.
//
// Everything is keyed by static program points (allocation sites,
// instruction IDs) plus per-site allocation serial numbers — never by raw
// addresses from the profiled run — so a plan produced from one run can be
// applied to another run, or to a re-execution under a different base
// allocator policy. That portability is what closes the PGO loop: profile,
// derive plan, re-run under the plan, measure the delta.
//
// The on-disk container follows the ORMTRACE/ORMCKPT conventions (magic +
// version + length + CRC-32C, see docs/FORMATS.md).
package plan

import (
	"fmt"
	"sort"

	"ormprof/internal/trace"
)

// SlotSize is the field-reordering granularity, one machine word. It must
// match layout.SlotSize.
const SlotSize = 8

// FieldOrder permutes the slots of records allocated at one site. Offsets
// are taken modulo RecordSize, so pool objects holding many records are
// rearranged record-wise.
type FieldOrder struct {
	Site       trace.SiteID
	RecordSize uint32
	// NewOffset[oldSlot] is the byte offset the slot moves to. It is a
	// permutation of {0, SlotSize, 2*SlotSize, ...}.
	NewOffset []uint32
}

// Remap translates an intra-object offset to its offset under the order.
func (f *FieldOrder) Remap(off uint64) uint64 {
	rec := off / uint64(f.RecordSize)
	within := off % uint64(f.RecordSize)
	slot := within / SlotSize
	rem := within % SlotSize
	return rec*uint64(f.RecordSize) + uint64(f.NewOffset[slot]) + rem
}

// ObjectPlacement pins the serial-th object allocated at Site to Addr in the
// plan's packed region. Size is the object size observed in the profile; an
// application run whose allocation differs in size ignores the placement
// (the plan is stale for that object).
type ObjectPlacement struct {
	Site   trace.SiteID
	Serial uint32
	Size   uint32
	Addr   trace.Addr
}

// PrefetchRule asks for a prefetch of the line Stride*Distance bytes ahead
// on every access by Instr.
type PrefetchRule struct {
	Instr    trace.InstrID
	Stride   int64
	Distance int64
}

// Plan is one complete layout plan for a workload.
type Plan struct {
	// Workload names the profiled workload the plan was derived from.
	Workload string
	// Region is the base of the packed-placement address region. All
	// placement addresses are >= Region.
	Region trace.Addr
	// Fields is sorted by Site, one entry per site at most.
	Fields []FieldOrder
	// Placements is sorted by (Site, Serial), one entry per object at most.
	Placements []ObjectPlacement
	// Prefetch is sorted by Instr, one entry per instruction at most.
	Prefetch []PrefetchRule
}

// Empty reports whether the plan carries no directives at all.
func (p *Plan) Empty() bool {
	return len(p.Fields) == 0 && len(p.Placements) == 0 && len(p.Prefetch) == 0
}

// Validate checks the structural invariants the codec and the appliers rely
// on: canonical sort orders, bounded sizes, and slot permutations. Encode
// refuses an invalid plan and Decode rejects one, so every *Plan obtained
// through this package is valid.
func (p *Plan) Validate() error {
	if len(p.Workload) > maxWorkload {
		return fmt.Errorf("plan: workload name %d bytes (max %d)", len(p.Workload), maxWorkload)
	}
	if len(p.Fields) > maxFields {
		return fmt.Errorf("plan: %d field orders (max %d)", len(p.Fields), maxFields)
	}
	for i := range p.Fields {
		f := &p.Fields[i]
		if i > 0 && p.Fields[i-1].Site >= f.Site {
			return fmt.Errorf("plan: field orders not strictly sorted by site at %d", i)
		}
		if f.RecordSize == 0 || f.RecordSize%SlotSize != 0 || f.RecordSize > maxRecordSize {
			return fmt.Errorf("plan: site %d: record size %d invalid", f.Site, f.RecordSize)
		}
		n := int(f.RecordSize / SlotSize)
		if len(f.NewOffset) != n {
			return fmt.Errorf("plan: site %d: %d slots for record size %d", f.Site, len(f.NewOffset), f.RecordSize)
		}
		seen := make([]bool, n)
		for slot, off := range f.NewOffset {
			if off%SlotSize != 0 || off >= f.RecordSize {
				return fmt.Errorf("plan: site %d: slot %d moves to invalid offset %d", f.Site, slot, off)
			}
			if seen[off/SlotSize] {
				return fmt.Errorf("plan: site %d: offset %d assigned twice", f.Site, off)
			}
			seen[off/SlotSize] = true
		}
	}
	if len(p.Placements) > maxPlacements {
		return fmt.Errorf("plan: %d placements (max %d)", len(p.Placements), maxPlacements)
	}
	for i := range p.Placements {
		pl := &p.Placements[i]
		if i > 0 {
			prev := &p.Placements[i-1]
			if prev.Site > pl.Site || (prev.Site == pl.Site && prev.Serial >= pl.Serial) {
				return fmt.Errorf("plan: placements not strictly sorted by (site, serial) at %d", i)
			}
		}
		if pl.Size == 0 {
			return fmt.Errorf("plan: placement %d: zero size", i)
		}
		if pl.Addr < p.Region {
			return fmt.Errorf("plan: placement %d: address %#x below region %#x", i, uint64(pl.Addr), uint64(p.Region))
		}
	}
	if len(p.Prefetch) > maxRules {
		return fmt.Errorf("plan: %d prefetch rules (max %d)", len(p.Prefetch), maxRules)
	}
	for i := range p.Prefetch {
		r := &p.Prefetch[i]
		if i > 0 && p.Prefetch[i-1].Instr >= r.Instr {
			return fmt.Errorf("plan: prefetch rules not strictly sorted by instruction at %d", i)
		}
		if r.Distance <= 0 {
			return fmt.Errorf("plan: prefetch rule %d: distance %d", i, r.Distance)
		}
	}
	return nil
}

// Canonicalize sorts the plan's sections into the canonical orders Validate
// requires. Builders can append in any order and canonicalize once.
func (p *Plan) Canonicalize() {
	sort.Slice(p.Fields, func(i, j int) bool { return p.Fields[i].Site < p.Fields[j].Site })
	sort.Slice(p.Placements, func(i, j int) bool {
		a, b := &p.Placements[i], &p.Placements[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Serial < b.Serial
	})
	sort.Slice(p.Prefetch, func(i, j int) bool { return p.Prefetch[i].Instr < p.Prefetch[j].Instr })
}

// Placer is the allocation-time view of the plan's placements: it implements
// memsim's Placement interface without either package importing the other.
type Placer struct {
	m map[uint64]ObjectPlacement
}

// Placer builds the (site, serial) -> placement lookup.
func (p *Plan) Placer() *Placer {
	pl := &Placer{m: make(map[uint64]ObjectPlacement, len(p.Placements))}
	for _, e := range p.Placements {
		pl.m[uint64(e.Site)<<32|uint64(e.Serial)] = e
	}
	return pl
}

// Place returns the planned address for the serial-th object allocated at
// site. A size mismatch against the profiled size means the plan is stale
// for this object and the placement is declined.
func (pl *Placer) Place(site trace.SiteID, serial, size uint32) (trace.Addr, bool) {
	e, ok := pl.m[uint64(site)<<32|uint64(serial)]
	if !ok || e.Size != size {
		return 0, false
	}
	return e.Addr, true
}

// FieldRemapper is the access-time view of the plan's field orders: it
// implements memsim's OffsetRemapper interface.
type FieldRemapper struct {
	m map[trace.SiteID]*FieldOrder
}

// FieldRemapper builds the per-site remap lookup.
func (p *Plan) FieldRemapper() *FieldRemapper {
	fr := &FieldRemapper{m: make(map[trace.SiteID]*FieldOrder, len(p.Fields))}
	for i := range p.Fields {
		fr.m[p.Fields[i].Site] = &p.Fields[i]
	}
	return fr
}

// RemapOffset translates an intra-object offset for an object allocated at
// site. Offsets in sites without a field order, and accesses that straddle a
// slot's end, pass through unchanged.
func (fr *FieldRemapper) RemapOffset(site trace.SiteID, off uint64, size uint32) uint64 {
	f, ok := fr.m[site]
	if !ok {
		return off
	}
	if uint64(size) > SlotSize-off%SlotSize {
		// Straddles slots: moving only part of it would tear the access.
		return off
	}
	return f.Remap(off)
}
