package plan

import (
	"bytes"
	"testing"
)

// FuzzPlanReader throws arbitrary bytes at the ORMPLAN decoder. The decoder
// must never panic or over-allocate, must reject non-canonical encodings,
// and must round-trip exactly whatever it accepts.
func FuzzPlanReader(f *testing.F) {
	if seed, err := Encode(samplePlan()); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-2])
		flip := append([]byte(nil), seed...)
		flip[headerSize+3] ^= 0x40
		f.Add(flip)
	}
	if empty, err := Encode(&Plan{}); err == nil {
		f.Add(empty)
	}
	f.Add([]byte(Magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if !IsFormat(err) {
				t.Fatalf("non-format error from Decode: %v", err)
			}
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid plan: %v", verr)
		}
		// Accepted plans re-encode to the identical bytes: the encoding is
		// canonical, so equality of files is equality of plans.
		out, err := Encode(p)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not byte-identical: %d vs %d bytes", len(out), len(data))
		}
	})
}
