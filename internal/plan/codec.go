package plan

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ormprof/internal/atomicfile"
	"ormprof/internal/trace"
)

// On-disk container (see docs/FORMATS.md):
//
//	magic   "ORMPLAN" (7 bytes)
//	version 1 byte (currently 1)
//	length  8 bytes little-endian: payload byte count
//	crc     4 bytes little-endian: CRC-32C (Castagnoli) of the payload
//	payload varint-encoded plan body (below)
//
// Payload, all integers unsigned LEB128 varints unless noted:
//
//	workload  len + bytes
//	region    base address of the packed-placement region
//	fields    count, then per entry (strictly sorted by site):
//	            site, recordSize, then recordSize/8 slot offsets
//	placements count, then per entry (strictly sorted by site, serial):
//	            site, serial, size, addr - region
//	prefetch  count, then per entry (strictly sorted by instr):
//	            instr, stride (signed varint), distance
//
// The sort orders are mandatory: there is exactly one valid encoding of a
// given plan, so byte-comparing two ORMPLAN files compares the plans.
const (
	// Magic identifies an ORMPLAN file.
	Magic = "ORMPLAN"
	// Version is the current container version.
	Version = 1
	// MaxPayload bounds the payload length field so a corrupt header
	// cannot drive a huge allocation.
	MaxPayload = 1 << 28

	maxWorkload   = 4096
	maxRecordSize = 1 << 20
	maxFields     = 1 << 16
	maxPlacements = 1 << 24
	maxRules      = 1 << 20

	headerSize = len(Magic) + 1 + 8 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FormatError reports a structurally invalid ORMPLAN container or payload.
type FormatError struct {
	Reason string
}

func (e *FormatError) Error() string { return "ormplan: " + e.Reason }

// IsFormat reports whether err is a *FormatError.
func IsFormat(err error) bool {
	var fe *FormatError
	return errors.As(err, &fe)
}

func formatf(format string, args ...any) error {
	return &FormatError{Reason: fmt.Sprintf(format, args...)}
}

// Encode serializes the plan, validating it first.
func Encode(p *Plan) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var body []byte
	body = binary.AppendUvarint(body, uint64(len(p.Workload)))
	body = append(body, p.Workload...)
	body = binary.AppendUvarint(body, uint64(p.Region))
	body = binary.AppendUvarint(body, uint64(len(p.Fields)))
	for i := range p.Fields {
		f := &p.Fields[i]
		body = binary.AppendUvarint(body, uint64(f.Site))
		body = binary.AppendUvarint(body, uint64(f.RecordSize))
		for _, off := range f.NewOffset {
			body = binary.AppendUvarint(body, uint64(off))
		}
	}
	body = binary.AppendUvarint(body, uint64(len(p.Placements)))
	for i := range p.Placements {
		pl := &p.Placements[i]
		body = binary.AppendUvarint(body, uint64(pl.Site))
		body = binary.AppendUvarint(body, uint64(pl.Serial))
		body = binary.AppendUvarint(body, uint64(pl.Size))
		body = binary.AppendUvarint(body, uint64(pl.Addr-p.Region))
	}
	body = binary.AppendUvarint(body, uint64(len(p.Prefetch)))
	for i := range p.Prefetch {
		r := &p.Prefetch[i]
		body = binary.AppendUvarint(body, uint64(r.Instr))
		body = binary.AppendVarint(body, r.Stride)
		body = binary.AppendUvarint(body, uint64(r.Distance))
	}
	if len(body) > MaxPayload {
		return nil, formatf("payload %d bytes exceeds max %d", len(body), MaxPayload)
	}

	out := make([]byte, 0, headerSize+len(body))
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	out = append(out, body...)
	return out, nil
}

// cursor is a bounds-checked varint reader over the payload.
type cursor struct {
	b   []byte
	pos int
}

// uvarintLen is the minimal encoded size of v; the decoders reject padded
// encodings so that every plan has exactly one byte representation.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (c *cursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, formatf("truncated or overlong varint reading %s", what)
	}
	if n != uvarintLen(v) {
		return 0, formatf("non-minimal varint reading %s", what)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) varint(what string) (int64, error) {
	v, n := binary.Varint(c.b[c.pos:])
	if n <= 0 {
		return 0, formatf("truncated or overlong varint reading %s", what)
	}
	if n != uvarintLen(uint64(v)<<1^uint64(v>>63)) {
		return 0, formatf("non-minimal varint reading %s", what)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) bytes(n int, what string) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.b) {
		return nil, formatf("truncated %s", what)
	}
	out := c.b[c.pos : c.pos+n]
	c.pos += n
	return out, nil
}

// Decode parses a complete ORMPLAN file image, validating the container and
// the plan's invariants. All errors are *FormatError.
func Decode(data []byte) (*Plan, error) {
	if len(data) < headerSize {
		return nil, formatf("file %d bytes, header is %d", len(data), headerSize)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, formatf("bad magic %q", data[:len(Magic)])
	}
	if v := data[len(Magic)]; v != Version {
		return nil, formatf("unsupported version %d (want %d)", v, Version)
	}
	length := binary.LittleEndian.Uint64(data[len(Magic)+1:])
	if length > MaxPayload {
		return nil, formatf("payload length %d exceeds max %d", length, MaxPayload)
	}
	crc := binary.LittleEndian.Uint32(data[len(Magic)+9:])
	body := data[headerSize:]
	if uint64(len(body)) != length {
		return nil, formatf("payload %d bytes, header says %d", len(body), length)
	}
	if got := crc32.Checksum(body, crcTable); got != crc {
		return nil, formatf("payload crc %#x, header says %#x", got, crc)
	}

	c := &cursor{b: body}
	p := &Plan{}
	nameLen, err := c.uvarint("workload length")
	if err != nil {
		return nil, err
	}
	if nameLen > maxWorkload {
		return nil, formatf("workload name %d bytes (max %d)", nameLen, maxWorkload)
	}
	name, err := c.bytes(int(nameLen), "workload name")
	if err != nil {
		return nil, err
	}
	p.Workload = string(name)
	region, err := c.uvarint("region")
	if err != nil {
		return nil, err
	}
	p.Region = trace.Addr(region)

	nFields, err := c.uvarint("field count")
	if err != nil {
		return nil, err
	}
	if nFields > maxFields {
		return nil, formatf("%d field orders (max %d)", nFields, maxFields)
	}
	for i := uint64(0); i < nFields; i++ {
		var f FieldOrder
		site, err := c.uvarint("field site")
		if err != nil {
			return nil, err
		}
		rs, err := c.uvarint("record size")
		if err != nil {
			return nil, err
		}
		if rs == 0 || rs > maxRecordSize || rs%SlotSize != 0 {
			return nil, formatf("field order %d: record size %d invalid", i, rs)
		}
		f.Site = trace.SiteID(site)
		f.RecordSize = uint32(rs)
		f.NewOffset = make([]uint32, rs/SlotSize)
		for s := range f.NewOffset {
			off, err := c.uvarint("slot offset")
			if err != nil {
				return nil, err
			}
			if off >= rs {
				return nil, formatf("field order %d: slot offset %d out of record", i, off)
			}
			f.NewOffset[s] = uint32(off)
		}
		p.Fields = append(p.Fields, f)
	}

	nPlace, err := c.uvarint("placement count")
	if err != nil {
		return nil, err
	}
	if nPlace > maxPlacements {
		return nil, formatf("%d placements (max %d)", nPlace, maxPlacements)
	}
	for i := uint64(0); i < nPlace; i++ {
		var pl ObjectPlacement
		site, err := c.uvarint("placement site")
		if err != nil {
			return nil, err
		}
		serial, err := c.uvarint("placement serial")
		if err != nil {
			return nil, err
		}
		size, err := c.uvarint("placement size")
		if err != nil {
			return nil, err
		}
		delta, err := c.uvarint("placement address")
		if err != nil {
			return nil, err
		}
		if site > 1<<32-1 || serial > 1<<32-1 || size > 1<<32-1 {
			return nil, formatf("placement %d: field overflows 32 bits", i)
		}
		addr := region + delta
		if addr < region {
			return nil, formatf("placement %d: address overflows", i)
		}
		pl.Site = trace.SiteID(site)
		pl.Serial = uint32(serial)
		pl.Size = uint32(size)
		pl.Addr = trace.Addr(addr)
		p.Placements = append(p.Placements, pl)
	}

	nRules, err := c.uvarint("prefetch count")
	if err != nil {
		return nil, err
	}
	if nRules > maxRules {
		return nil, formatf("%d prefetch rules (max %d)", nRules, maxRules)
	}
	for i := uint64(0); i < nRules; i++ {
		var r PrefetchRule
		instr, err := c.uvarint("rule instruction")
		if err != nil {
			return nil, err
		}
		stride, err := c.varint("rule stride")
		if err != nil {
			return nil, err
		}
		dist, err := c.uvarint("rule distance")
		if err != nil {
			return nil, err
		}
		if instr > 1<<32-1 || dist > 1<<31 {
			return nil, formatf("prefetch rule %d: field out of range", i)
		}
		r.Instr = trace.InstrID(instr)
		r.Stride = stride
		r.Distance = int64(dist)
		p.Prefetch = append(p.Prefetch, r)
	}

	if c.pos != len(body) {
		return nil, formatf("%d trailing payload bytes", len(body)-c.pos)
	}
	if err := p.Validate(); err != nil {
		return nil, &FormatError{Reason: err.Error()}
	}
	return p, nil
}

// Write encodes the plan to w.
func Write(w io.Writer, p *Plan) error {
	data, err := Encode(p)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Read decodes a plan from r (reading to EOF).
func Read(r io.Reader) (*Plan, error) {
	data, err := io.ReadAll(io.LimitReader(r, int64(headerSize+MaxPayload+1)))
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Save writes the plan to path crash-atomically via internal/atomicfile
// (tmp + fsync + rename), mirroring checkpoint.Save: a reader sees either
// the old file or the new, and a failed write surfaces as a typed
// *atomicfile.WriteError with the previous durable copy intact.
func Save(path string, p *Plan) error {
	data, err := Encode(p)
	if err != nil {
		return err
	}
	return atomicfile.Write(path, data)
}

// Load reads and validates the plan at path.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
