package layout

import (
	"testing"
	"testing/quick"

	"ormprof/internal/cachesim"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// sessionTrace builds the field-reorder scenario: a pool of 128-byte
// records whose hot fields sit at offsets 0 and 96 (two cache lines apart).
func sessionTrace(t *testing.T) ([]profiler.Record, *omc.OMC) {
	t.Helper()
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	const nRecs = 512
	pool := m.Alloc(1, nRecs*128)
	for round := 0; round < 10; round++ {
		for i := 0; i < nRecs; i++ {
			rec := pool + trace.Addr(i*128)
			m.Load(1, rec, 8)
			m.Load(2, rec+96, 8)
			m.Store(3, rec+96, 8)
		}
	}
	m.Free(pool)
	m.End()
	return profiler.TranslateTrace(buf.Events, nil)
}

func TestPlanFieldsHotFirst(t *testing.T) {
	recs, o := sessionTrace(t)
	g := recs[0].Ref.Group
	plan, err := PlanFields(recs, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Hot slots: 0 (one access/record/round) and 12 (two). Hot-first
	// packing must place slot 12 at offset 0 and slot 0 at offset 8.
	if plan.NewOffset[12] != 0 {
		t.Errorf("hottest slot 12 mapped to %d, want 0", plan.NewOffset[12])
	}
	if plan.NewOffset[0] != 8 {
		t.Errorf("slot 0 mapped to %d, want 8", plan.NewOffset[0])
	}
	if plan.Hits[12] != 2*10*512 || plan.Hits[0] != 10*512 {
		t.Errorf("hits = %d, %d", plan.Hits[12], plan.Hits[0])
	}
	_ = o
}

func TestPlanFieldsRejectsBadRecordSize(t *testing.T) {
	if _, err := PlanFields(nil, 1, 0); err == nil {
		t.Error("record size 0 accepted")
	}
	if _, err := PlanFields(nil, 1, 12); err == nil {
		t.Error("non-multiple record size accepted")
	}
}

func TestRemapIsBijective(t *testing.T) {
	recs, _ := sessionTrace(t)
	plan, err := PlanFields(recs, recs[0].Ref.Group, 128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint32) bool {
		o := uint64(off) % (512 * 128)
		m := plan.Remap(o)
		// Same record, valid range, and injective on slot starts.
		if m/128 != o/128 || m >= 512*128 {
			return false
		}
		return m%SlotSize == o%SlotSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Injectivity over one record's slots.
	seen := make(map[uint64]bool)
	for s := uint64(0); s < 128; s += SlotSize {
		m := plan.Remap(s)
		if seen[m] {
			t.Fatalf("Remap collides at %d", s)
		}
		seen[m] = true
	}
}

func TestFieldReorderReducesMisses(t *testing.T) {
	recs, o := sessionTrace(t)
	g := recs[0].Ref.Group
	plan, err := PlanFields(recs, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	orig := OriginalResolver(OMCInfo{OMC: o})
	before, skipB := Evaluate(recs, orig, cachesim.L1D)
	after, skipA := Evaluate(recs, FieldResolver(orig, plan), cachesim.L1D)
	if skipB != 0 || skipA != 0 {
		t.Fatalf("skipped %d/%d accesses", skipB, skipA)
	}
	imp := Improvement(before, after)
	// The working set (512 records × 2 hot lines = 64 KiB) thrashes a
	// 32 KiB L1; packing the two hot fields into one line halves the hot
	// footprint. Expect a large improvement.
	if imp < 30 {
		t.Errorf("field reorder improvement = %.1f%% (before %d misses, after %d), want >= 30%%",
			imp, before.Misses, after.Misses)
	}
}

func TestClusterReducesMisses(t *testing.T) {
	// The linked-list workload with clutter: nodes are scattered, so each
	// 48-byte node occupies its own line; packing them makes consecutive
	// nodes share lines.
	prog := workloads.NewLinkedList(workloads.Config{Scale: 8, Seed: 3})
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)
	recs, o := profiler.TranslateTrace(buf.Events, nil)

	orig := OriginalResolver(OMCInfo{OMC: o})
	plan := PlanClusters(recs, OMCInfo{OMC: o})
	if plan.Packed == 0 {
		t.Fatal("no objects packed")
	}
	before, _ := Evaluate(recs, orig, cachesim.L1D)
	after, skipped := Evaluate(recs, ClusterResolver(orig, plan), cachesim.L1D)
	if skipped != 0 {
		t.Fatalf("skipped %d", skipped)
	}
	if after.Misses >= before.Misses {
		t.Errorf("clustering did not reduce misses: %d -> %d", before.Misses, after.Misses)
	}
}

func TestClusterPlanPlacementsDisjoint(t *testing.T) {
	recs, o := sessionTrace(t)
	plan := PlanClusters(recs, OMCInfo{OMC: o})
	// Packed placements must not overlap (checked via sorted bases).
	type placed struct {
		start trace.Addr
		size  uint32
	}
	var all []placed
	for _, r := range recs {
		if a, ok := plan.Resolve(r.Ref.Group, r.Ref.Object); ok {
			_, size, _ := OMCInfo{OMC: o}.Object(r.Ref.Group, r.Ref.Object)
			all = append(all, placed{a, size})
		}
	}
	seen := make(map[trace.Addr]bool)
	for _, p := range all {
		if p.start < plan.Region {
			t.Fatalf("placement %#x below region", uint64(p.start))
		}
		seen[p.start] = true
	}
	if len(seen) != plan.Packed {
		t.Fatalf("distinct bases %d != packed %d", len(seen), plan.Packed)
	}
}

func TestOriginalResolverErrors(t *testing.T) {
	o := omc.New(nil)
	o.Alloc(1, 0x1000, 16, 0)
	r := OriginalResolver(OMCInfo{OMC: o})
	if _, ok := r(omc.Ref{Group: 1, Object: 0, Offset: 16}); ok {
		t.Error("out-of-object offset resolved")
	}
	if _, ok := r(omc.Ref{Group: 5}); ok {
		t.Error("unknown group resolved")
	}
	if a, ok := r(omc.Ref{Group: omc.Unmapped, Offset: 0x42}); !ok || a != 0x42 {
		t.Error("unmapped ref should resolve to its raw address")
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(cachesim.Stats{Misses: 100}, cachesim.Stats{Misses: 60}) != 40 {
		t.Error("improvement math wrong")
	}
	if Improvement(cachesim.Stats{}, cachesim.Stats{Misses: 5}) != 0 {
		t.Error("zero-miss baseline should report 0")
	}
}
