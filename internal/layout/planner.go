package layout

import (
	"sort"

	"ormprof/internal/omc"
	"ormprof/internal/plan"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// maxPlanSlots caps the per-group slot histogram: objects beyond
// maxPlanSlots*SlotSize bytes (32 KiB) do not get field orders — a record
// that large spans the whole cache anyway.
const maxPlanSlots = 4096

// Planner is a streaming SCC that accumulates exactly what a layout plan
// needs — per-group slot-hit histograms for field ordering and the global
// first-touch object order for clustering — without buffering the record
// stream. It replaces the ad-hoc []Record slices PlanFields/PlanClusters
// consume: the optimize pipeline feeds it straight from the profiler's
// collector, so plan derivation is single-pass and budget-accountable.
//
// Footprint is maintained incrementally as histograms grow and objects are
// first seen, so a governance ladder can charge the planner per event.
type Planner struct {
	hist  map[omc.GroupID][]uint64 // slot (offset/SlotSize) -> access count
	seen  map[objKey]struct{}
	touch []objKey // global first-touch order, heap and static alike
	foot  int64
}

// NewPlanner returns an empty planner.
func NewPlanner() *Planner {
	return &Planner{
		hist: make(map[omc.GroupID][]uint64),
		seen: make(map[objKey]struct{}),
	}
}

const (
	plannerHistEntry  = 8
	plannerTouchEntry = 8 + 16 // objKey in slice + map set entry
)

// Consume feeds one object-relative record. It implements profiler.SCC's
// consume side so the planner can ride any collector fan-out.
func (p *Planner) Consume(r profiler.Record) {
	if r.Ref.Group == omc.Unmapped {
		return
	}
	slot := r.Ref.Offset / SlotSize
	if slot < maxPlanSlots {
		h := p.hist[r.Ref.Group]
		if uint64(len(h)) <= slot {
			grown := make([]uint64, slot+1)
			copy(grown, h)
			p.foot += int64(len(grown)-len(h)) * plannerHistEntry
			h = grown
		}
		h[slot]++
		p.hist[r.Ref.Group] = h
	}
	k := objKey{r.Ref.Group, r.Ref.Object}
	if _, ok := p.seen[k]; !ok {
		p.seen[k] = struct{}{}
		p.touch = append(p.touch, k)
		p.foot += plannerTouchEntry
	}
}

// Finish implements the SCC contract; the planner needs no finalization.
func (p *Planner) Finish() {}

// Footprint reports the planner's accumulated memory in bytes, maintained
// incrementally (no walking).
func (p *Planner) Footprint() int64 { return p.foot }

// Touched reports how many distinct objects the stream accessed.
func (p *Planner) Touched() int { return len(p.touch) }

// FieldOrders derives hot-first field orders for every group whose objects
// share one uniform size that is a multiple of SlotSize with at least two
// slots (record size = object size, as in cmd/layoutopt). Orders are keyed
// by the group's allocation site so they apply across runs; groups are
// visited in OMC order and a site is planned at most once.
func (p *Planner) FieldOrders(o *omc.OMC) []plan.FieldOrder {
	var out []plan.FieldOrder
	planned := make(map[trace.SiteID]bool)
	for _, g := range o.Groups() {
		if planned[g.Site] {
			continue
		}
		objs := o.Objects(g.ID)
		if len(objs) == 0 {
			continue
		}
		size := objs[0].Size
		uniform := true
		for _, ob := range objs {
			if ob.Size != size {
				uniform = false
				break
			}
		}
		if !uniform || size%SlotSize != 0 || size < 2*SlotSize || size > maxPlanSlots*SlotSize {
			continue
		}
		hist := p.hist[g.ID]
		nSlots := int(size / SlotSize)
		// Fold the flat offset histogram record-wise: offset/SlotSize mod
		// nSlots is the record slot (pool objects hold many records).
		hits := make([]uint64, nSlots)
		for slot, n := range hist {
			hits[slot%nSlots] += n
		}
		order := make([]int, nSlots) // order[newIdx] = oldSlot
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return hits[order[a]] > hits[order[b]] })
		f := plan.FieldOrder{Site: g.Site, RecordSize: size, NewOffset: make([]uint32, nSlots)}
		for newIdx, oldSlot := range order {
			f.NewOffset[oldSlot] = uint32(newIdx) * SlotSize
		}
		out = append(out, f)
		planned[g.Site] = true
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Placements packs every touched heap object contiguously in first-touch
// order starting at region (16-byte aligned, as the simulated allocators
// align), keyed by (site, serial) via the object table. Static objects
// (site >= 1<<24) already have fixed linker placements and are skipped.
func (p *Planner) Placements(o *omc.OMC, region trace.Addr) []plan.ObjectPlacement {
	groupSite := make(map[omc.GroupID]trace.SiteID)
	for _, g := range o.Groups() {
		groupSite[g.ID] = g.Site
	}
	var out []plan.ObjectPlacement
	next := region
	for _, k := range p.touch {
		site, ok := groupSite[k.g]
		if !ok || site >= 1<<24 {
			continue
		}
		info := o.Lookup(k.g, k.serial)
		if info == nil || info.Size == 0 {
			continue
		}
		out = append(out, plan.ObjectPlacement{Site: site, Serial: k.serial, Size: info.Size, Addr: next})
		next += trace.Addr((info.Size + 15) &^ 15)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Serial < out[j].Serial
	})
	return out
}

// BuildPlan assembles the complete layout plan for a workload from the
// planner's state: field orders plus first-touch placements at the standard
// packed region.
func (p *Planner) BuildPlan(workload string, o *omc.OMC) *plan.Plan {
	pl := &plan.Plan{
		Workload:   workload,
		Region:     clusterRegion,
		Fields:     p.FieldOrders(o),
		Placements: p.Placements(o, clusterRegion),
	}
	return pl
}

// PlanResolver resolves object-relative references to the addresses the
// plan's layout gives them: field orders rearrange intra-object offsets and
// placements relocate whole objects, with the original layout as fallback.
// This is the replay-mode twin of re-running under memsim's PlanAllocator:
// same plan, applied to the recorded stream instead of a live re-execution.
func PlanResolver(pl *plan.Plan, o *omc.OMC) Resolver {
	siteGroup := make(map[trace.SiteID]omc.GroupID)
	for _, g := range o.Groups() {
		if _, ok := siteGroup[g.Site]; !ok {
			siteGroup[g.Site] = g.ID
		}
	}
	fields := make(map[omc.GroupID]*plan.FieldOrder, len(pl.Fields))
	for i := range pl.Fields {
		if g, ok := siteGroup[pl.Fields[i].Site]; ok {
			fields[g] = &pl.Fields[i]
		}
	}
	placed := make(map[objKey]trace.Addr, len(pl.Placements))
	for _, e := range pl.Placements {
		g, ok := siteGroup[e.Site]
		if !ok {
			continue
		}
		if info := o.Lookup(g, e.Serial); info == nil || info.Size != e.Size {
			continue // stale placement: size drifted since profiling
		}
		placed[objKey{g, e.Serial}] = e.Addr
	}
	orig := OriginalResolver(OMCInfo{OMC: o})
	return func(ref omc.Ref) (trace.Addr, bool) {
		if ref.Group == omc.Unmapped {
			return orig(ref)
		}
		if f, ok := fields[ref.Group]; ok {
			ref.Offset = f.Remap(ref.Offset)
		}
		if a, ok := placed[objKey{ref.Group, ref.Object}]; ok {
			return a + trace.Addr(ref.Offset), true
		}
		return orig(ref)
	}
}
