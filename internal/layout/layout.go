// Package layout implements the data-layout optimizations the paper's
// profiles are meant to direct (§1, §3.2, related work [4][13]):
//
//   - field reordering: rearrange the slots of a record type so the hot
//     fields share cache lines, driven by the offset dimension of the
//     object-relative stream;
//   - object clustering: reassign object placements so temporally adjacent
//     objects pack together (Calder et al.'s cache-conscious data
//     placement), driven by the object dimension and the OMC's lifetime
//     table.
//
// Both plans are evaluated by replaying the *object-relative* stream through
// the cache simulator under the original and the proposed layouts. Working
// object-relative rather than raw is what makes this possible at all: the
// profile describes accesses by (group, object, offset), so a new layout is
// just a different resolution function from tuples to addresses.
package layout

import (
	"fmt"
	"sort"

	"ormprof/internal/cachesim"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// SlotSize is the granularity of field rearrangement, one machine word.
const SlotSize = 8

// ObjectInfo resolves object placement and size from the auxiliary object
// table. *omc.OMC satisfies it via OMCInfo.
type ObjectInfo interface {
	Object(g omc.GroupID, serial uint32) (start trace.Addr, size uint32, ok bool)
}

// OMCInfo adapts an OMC to ObjectInfo.
type OMCInfo struct {
	OMC *omc.OMC
}

// Object implements ObjectInfo.
func (i OMCInfo) Object(g omc.GroupID, serial uint32) (trace.Addr, uint32, bool) {
	info := i.OMC.Lookup(g, serial)
	if info == nil {
		return 0, 0, false
	}
	return info.Start, info.Size, true
}

// FieldPlan rearranges the slots of one group's records. Offsets are taken
// modulo RecordSize, so a pool object holding many records (the paper's
// footnote 2 pools) is rearranged record-wise.
type FieldPlan struct {
	Group      omc.GroupID
	RecordSize uint32
	// NewOffset[oldSlot] is the byte offset the slot moves to.
	NewOffset []uint32
	// Hits counts profile accesses per old slot (diagnostic).
	Hits []uint64
}

// PlanFields builds a hot-first field plan for group g with the given
// record size: slots are packed in descending access-count order, so the
// hottest fields land together at the front of the record. Returns an error
// if recordSize is not a positive multiple of SlotSize.
func PlanFields(recs []profiler.Record, g omc.GroupID, recordSize uint32) (*FieldPlan, error) {
	if recordSize == 0 || recordSize%SlotSize != 0 {
		return nil, fmt.Errorf("layout: record size %d not a positive multiple of %d", recordSize, SlotSize)
	}
	nSlots := int(recordSize / SlotSize)
	hits := make([]uint64, nSlots)
	for _, r := range recs {
		if r.Ref.Group != g {
			continue
		}
		slot := int(r.Ref.Offset % uint64(recordSize) / SlotSize)
		hits[slot]++
	}
	order := make([]int, nSlots) // order[newIdx] = oldSlot
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return hits[order[a]] > hits[order[b]]
	})
	plan := &FieldPlan{
		Group:      g,
		RecordSize: recordSize,
		NewOffset:  make([]uint32, nSlots),
		Hits:       hits,
	}
	for newIdx, oldSlot := range order {
		plan.NewOffset[oldSlot] = uint32(newIdx) * SlotSize
	}
	return plan, nil
}

// Remap translates an offset within the group's object to its offset under
// the plan.
func (p *FieldPlan) Remap(off uint64) uint64 {
	rec := off / uint64(p.RecordSize)
	within := off % uint64(p.RecordSize)
	slot := within / SlotSize
	rem := within % SlotSize
	return rec*uint64(p.RecordSize) + uint64(p.NewOffset[slot]) + rem
}

// objKey identifies an object across the run.
type objKey struct {
	g      omc.GroupID
	serial uint32
}

// ClusterPlan assigns new start addresses to heap objects: objects are
// packed contiguously in first-touch order, so objects used together sit on
// the same or neighbouring lines regardless of where the allocator put them.
type ClusterPlan struct {
	base map[objKey]trace.Addr
	// Region is where the packed objects start.
	Region trace.Addr
	// Packed reports how many objects were placed.
	Packed int
}

// clusterRegion is far above both simulated segments, so packed placements
// never collide with original ones.
const clusterRegion trace.Addr = 0x7000_0000_0000

// PlanClusters packs every touched heap object in first-touch order.
func PlanClusters(recs []profiler.Record, info ObjectInfo) *ClusterPlan {
	plan := &ClusterPlan{base: make(map[objKey]trace.Addr), Region: clusterRegion}
	next := clusterRegion
	for _, r := range recs {
		if r.Ref.Group == omc.Unmapped {
			continue
		}
		k := objKey{r.Ref.Group, r.Ref.Object}
		if _, done := plan.base[k]; done {
			continue
		}
		_, size, ok := info.Object(r.Ref.Group, r.Ref.Object)
		if !ok {
			continue
		}
		plan.base[k] = next
		next += trace.Addr((size + 15) &^ 15)
		plan.Packed++
	}
	return plan
}

// Resolve returns the object's packed base address.
func (p *ClusterPlan) Resolve(g omc.GroupID, serial uint32) (trace.Addr, bool) {
	a, ok := p.base[objKey{g, serial}]
	return a, ok
}

// Resolver maps an object-relative reference to the address it would have
// under some layout. It is cachesim's Resolve type: a resolver plugs
// directly into Cache.ReplayRecords / Hierarchy.ReplayRecords.
type Resolver = cachesim.Resolve

// OriginalResolver resolves references to their original run addresses via
// the object table (unmapped references keep their raw address).
func OriginalResolver(info ObjectInfo) Resolver {
	return func(ref omc.Ref) (trace.Addr, bool) {
		if ref.Group == omc.Unmapped {
			return trace.Addr(ref.Offset), true
		}
		start, size, ok := info.Object(ref.Group, ref.Object)
		if !ok || ref.Offset >= uint64(size) {
			return 0, false
		}
		return start + trace.Addr(ref.Offset), true
	}
}

// FieldResolver applies field plans (keyed by group) on top of base.
func FieldResolver(base Resolver, plans ...*FieldPlan) Resolver {
	byGroup := make(map[omc.GroupID]*FieldPlan, len(plans))
	for _, p := range plans {
		byGroup[p.Group] = p
	}
	return func(ref omc.Ref) (trace.Addr, bool) {
		if p, ok := byGroup[ref.Group]; ok {
			ref.Offset = p.Remap(ref.Offset)
		}
		return base(ref)
	}
}

// ClusterResolver resolves via the cluster plan, falling back to base for
// objects the plan does not cover.
func ClusterResolver(base Resolver, plan *ClusterPlan) Resolver {
	return func(ref omc.Ref) (trace.Addr, bool) {
		if ref.Group != omc.Unmapped {
			if a, ok := plan.Resolve(ref.Group, ref.Object); ok {
				return a + trace.Addr(ref.Offset), true
			}
		}
		return base(ref)
	}
}

// Evaluate replays the object-relative stream through a cache under the
// given layout and returns the statistics. References the resolver cannot
// place are skipped (counted in the returned skip count).
func Evaluate(recs []profiler.Record, resolve Resolver, cfg cachesim.Config) (cachesim.Stats, int) {
	c := cachesim.New(cfg)
	skipped := c.ReplayRecords(recs, resolve)
	return c.Stats(), skipped
}

// Improvement reports the relative miss reduction of after vs before, in
// percent (positive = fewer misses).
func Improvement(before, after cachesim.Stats) float64 {
	if before.Misses == 0 {
		return 0
	}
	return 100 * (1 - float64(after.Misses)/float64(before.Misses))
}
