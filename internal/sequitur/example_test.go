package sequitur_test

import (
	"fmt"

	"ormprof/internal/sequitur"
)

// The paper's §3.1 example: "abcbcabcbc" compresses to
// S → AA; A → aBB; B → bc.
func Example() {
	g := sequitur.New()
	for _, c := range "abcbcabcbc" {
		g.Append(uint64(c))
	}
	fmt.Println("rules:", g.NumRules())
	fmt.Println("grammar symbols:", g.Symbols())

	// Losslessness: the grammar expands back to the input.
	out := g.Expand()
	s := make([]rune, len(out))
	for i, v := range out {
		s[i] = rune(v)
	}
	fmt.Println("expands to:", string(s))
	// Output:
	// rules: 3
	// grammar symbols: 7
	// expands to: abcbcabcbc
}
