package sequitur

import "fmt"

// CheckInvariants verifies the two Sequitur invariants plus internal
// bookkeeping consistency, returning a descriptive error for the first
// violation found. Intended for tests; it walks the whole grammar.
//
// Digram uniqueness is checked in its precise form: no digram value may
// occur at two non-overlapping positions. Overlapping occurrences inside a
// run of identical symbols (as in "aaa") are permitted, exactly as in the
// reference algorithm.
func (g *Grammar) CheckInvariants() error {
	type pos struct {
		rule uint32
		idx  int
	}
	seen := make(map[digram]pos)
	refs := make(map[uint32]int)

	for id, r := range g.rules {
		if r.ID != id {
			return fmt.Errorf("sequitur: rule map key %d != rule ID %d", id, r.ID)
		}
		if !r.guard.guard || r.guard.rule != r {
			return fmt.Errorf("sequitur: rule %d has a corrupt guard", id)
		}
		i := 0
		for s := r.first(); !s.guard; s = s.next {
			if s.next.prev != s || s.prev.next != s {
				return fmt.Errorf("sequitur: rule %d has corrupt links at index %d", id, i)
			}
			if s.rule != nil {
				if _, ok := g.rules[s.rule.ID]; !ok {
					return fmt.Errorf("sequitur: rule %d references dead rule %d", id, s.rule.ID)
				}
				refs[s.rule.ID]++
			}
			if !s.next.guard {
				k := key(s)
				if prev, dup := seen[k]; dup {
					overlapping := prev.rule == id && prev.idx == i-1 && sameValue(s.prev, s)
					if !overlapping {
						return fmt.Errorf("sequitur: digram %v occurs at rule %d idx %d and rule %d idx %d",
							k, prev.rule, prev.idx, id, i)
					}
				} else {
					seen[k] = pos{rule: id, idx: i}
				}
			}
			i++
		}
	}

	for id, r := range g.rules {
		if id == g.start.ID {
			continue
		}
		actual := refs[id]
		if actual < 2 {
			return fmt.Errorf("sequitur: rule %d used %d time(s); rule utility requires >= 2", id, actual)
		}
		if actual != r.refs {
			return fmt.Errorf("sequitur: rule %d stored refcount %d != actual %d", id, r.refs, actual)
		}
	}

	// The incremental symbol count backing Footprint must agree with a
	// full walk.
	if n := g.Symbols(); n != g.symCount {
		return fmt.Errorf("sequitur: incremental symbol count %d != walked count %d", g.symCount, n)
	}

	// The digram index must point at live, correctly keyed occurrences.
	for k, s := range g.digrams {
		if s.next == nil || s.prev == nil {
			return fmt.Errorf("sequitur: digram index entry %v points at an unlinked symbol", k)
		}
		if s.guard || s.next.guard {
			return fmt.Errorf("sequitur: digram index entry %v points at a guard adjacency", k)
		}
		if key(s) != k {
			return fmt.Errorf("sequitur: digram index entry %v keyed wrong (actual %v)", k, key(s))
		}
	}
	return nil
}
