package sequitur

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Grammar serialization: a compact varint wire format used both to persist
// WHOMP profiles and to measure compressed profile size in bytes.
//
// Layout:
//
//	uvarint  ruleCount
//	per rule, in ascending rule-ID order:
//	  uvarint  bodyLen
//	  per symbol:
//	    uvarint  tag = value*2 + isRule
//	             (terminals store the raw value; non-terminals store the
//	             rule's *index* in the serialized order, so decoding needs
//	             no ID table)
//
// Terminal values must fit in 63 bits so the tag does not overflow. Every
// symbol a memory profiler compresses (instruction IDs, group IDs, object
// serials, offsets, virtual addresses) is far below 2^63.
//
// Rule IDs are not preserved across a round trip — only structure is, which
// is all losslessness requires.

// EncodedSize returns the exact size in bytes of Encode's output without
// materializing it.
func (g *Grammar) EncodedSize() int {
	ids := g.RuleIDs()
	idx := make(map[uint32]uint64, len(ids))
	for i, id := range ids {
		idx[id] = uint64(i)
	}
	n := uvarintLen(uint64(len(ids)))
	for _, id := range ids {
		r := g.rules[id]
		n += uvarintLen(uint64(r.Len()))
		for s := r.first(); !s.guard; s = s.next {
			if s.rule != nil {
				n += uvarintLen(idx[s.rule.ID]*2 + 1)
			} else {
				n += uvarintLen(s.term * 2)
			}
		}
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Encode serializes the grammar.
func (g *Grammar) Encode() []byte {
	ids := g.RuleIDs()
	idx := make(map[uint32]uint64, len(ids))
	for i, id := range ids {
		idx[id] = uint64(i)
	}
	buf := make([]byte, 0, g.EncodedSize())
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		r := g.rules[id]
		buf = binary.AppendUvarint(buf, uint64(r.Len()))
		for s := r.first(); !s.guard; s = s.next {
			if s.rule != nil {
				buf = binary.AppendUvarint(buf, idx[s.rule.ID]*2+1)
			} else {
				buf = binary.AppendUvarint(buf, s.term*2)
			}
		}
	}
	return buf
}

// Decoded is a grammar read back from its serialized form: rule bodies by
// serialized index, with index 0 the start rule.
type Decoded struct {
	Rules [][]Sym
}

// ErrCorrupt reports a malformed serialized grammar.
var ErrCorrupt = errors.New("sequitur: corrupt serialized grammar")

// Decode parses the output of Encode.
func Decode(buf []byte) (*Decoded, error) {
	ruleCount, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("%w: rule count", ErrCorrupt)
	}
	buf = buf[n:]
	// Every rule needs at least one byte (its body length), so a count
	// beyond the remaining input is corrupt — and must be rejected before
	// it reaches make.
	if ruleCount > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: rule count %d exceeds input", ErrCorrupt, ruleCount)
	}
	d := &Decoded{Rules: make([][]Sym, ruleCount)}
	for i := range d.Rules {
		bodyLen, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("%w: body length of rule %d", ErrCorrupt, i)
		}
		buf = buf[n:]
		// Each symbol costs at least one byte.
		if bodyLen > uint64(len(buf)) {
			return nil, fmt.Errorf("%w: rule %d body length %d exceeds input", ErrCorrupt, i, bodyLen)
		}
		body := make([]Sym, bodyLen)
		for j := range body {
			tag, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("%w: symbol %d of rule %d", ErrCorrupt, j, i)
			}
			buf = buf[n:]
			if tag&1 == 1 {
				ref := tag >> 1
				if ref >= ruleCount {
					return nil, fmt.Errorf("%w: rule %d references out-of-range rule %d", ErrCorrupt, i, ref)
				}
				body[j] = Sym{Value: ref, IsRule: true}
			} else {
				body[j] = Sym{Value: tag >> 1}
			}
		}
		d.Rules[i] = body
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return d, nil
}

// Expand regenerates the original sequence from a decoded grammar.
// It returns ErrCorrupt if expansion recurses through a rule cycle.
func (d *Decoded) Expand() ([]uint64, error) {
	return d.ExpandLimit(0)
}

// ExpandLimit is Expand with an output cap: a decoded grammar from an
// untrusted source can be a "zip bomb" (n nested rules expand to 2ⁿ
// symbols), so readers must bound the expansion. max ≤ 0 means unlimited.
func (d *Decoded) ExpandLimit(max int) ([]uint64, error) {
	if len(d.Rules) == 0 {
		return nil, nil
	}
	var out []uint64
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]uint8, len(d.Rules))
	var walk func(idx uint64) error
	walk = func(idx uint64) error {
		if state[idx] == inStack {
			return fmt.Errorf("%w: rule cycle through %d", ErrCorrupt, idx)
		}
		state[idx] = inStack
		for _, s := range d.Rules[idx] {
			if s.IsRule {
				if err := walk(s.Value); err != nil {
					return err
				}
			} else {
				if max > 0 && len(out) >= max {
					return fmt.Errorf("%w: expansion exceeds %d symbols", ErrCorrupt, max)
				}
				out = append(out, s.Value)
			}
		}
		state[idx] = done
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}
