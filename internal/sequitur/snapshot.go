package sequitur

import (
	"fmt"
	"sort"
)

// This file implements exact grammar snapshots: an exported, pure-data view
// of every piece of mutable Grammar state, sufficient to reconstruct a
// grammar that behaves identically to the original under all future
// Appends. Snapshots are what make a long-running profiling session
// checkpointable (internal/checkpoint): grammar construction is
// incremental and history-dependent, so resuming a session mid-stream
// requires more than the rules — it requires the digram index, whose
// entries record *which occurrence* of each digram is canonical, and the
// nextID counter, which outlives deleted rules.

// SnapshotRule is the exported body of one rule.
type SnapshotRule struct {
	ID   uint32
	Body []Sym
}

// DigramRef locates one indexed digram occurrence: the digram starting at
// symbol Pos (0-based) of rule Rule's body.
type DigramRef struct {
	Rule uint32
	Pos  uint32
}

// Snapshot is the complete mutable state of a Grammar at one instant.
// It contains no pointers into the live grammar; mutating the grammar
// after Snapshot does not affect it.
type Snapshot struct {
	// NextID is the next rule ID to be minted (rule IDs are never reused,
	// so this can exceed the largest live rule ID).
	NextID uint32
	// Input is the number of terminals appended so far.
	Input uint64
	// Rules holds every live rule in ascending ID order; the start rule
	// (ID 0) is always first.
	Rules []SnapshotRule
	// Digrams locates the canonical occurrence of every indexed digram,
	// sorted by (Rule, Pos) for deterministic serialization.
	Digrams []DigramRef
}

// Snapshot captures the grammar's complete state. It fails only if the
// internal invariants are broken (a digram index entry pointing at an
// unlinked symbol), which would make any snapshot unsound.
func (g *Grammar) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		NextID: g.nextID,
		Input:  g.input,
		Rules:  make([]SnapshotRule, 0, len(g.rules)),
	}
	// Walk every rule body once, recording each symbol's location so the
	// digram index can be expressed positionally.
	loc := make(map[*symbol]DigramRef, g.Symbols())
	for _, id := range g.RuleIDs() {
		r := g.rules[id]
		body := make([]Sym, 0, 8)
		i := uint32(0)
		for s := r.first(); !s.guard; s = s.next {
			v, isRule := value(s)
			body = append(body, Sym{Value: v, IsRule: isRule})
			loc[s] = DigramRef{Rule: id, Pos: i}
			i++
		}
		snap.Rules = append(snap.Rules, SnapshotRule{ID: id, Body: body})
	}
	snap.Digrams = make([]DigramRef, 0, len(g.digrams))
	for k, s := range g.digrams {
		ref, ok := loc[s]
		if !ok {
			return nil, fmt.Errorf("sequitur: digram index entry %v points at an unlinked symbol", k)
		}
		if key(s) != k {
			return nil, fmt.Errorf("sequitur: digram index entry %v is stale (symbol now keys %v)", k, key(s))
		}
		snap.Digrams = append(snap.Digrams, ref)
	}
	sort.Slice(snap.Digrams, func(i, j int) bool {
		a, b := snap.Digrams[i], snap.Digrams[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Pos < b.Pos
	})
	return snap, nil
}

// FromSnapshot reconstructs a grammar from a snapshot. The result is
// behaviorally identical to the snapshotted grammar: the same rules, the
// same canonical digram occurrences, the same ID counter — so any sequence
// of future Appends produces exactly the grammar the original would have.
func FromSnapshot(snap *Snapshot) (*Grammar, error) {
	g := &Grammar{
		rules:   make(map[uint32]*Rule, len(snap.Rules)),
		digrams: make(map[digram]*symbol, len(snap.Digrams)),
		nextID:  snap.NextID,
		input:   snap.Input,
	}
	// Pass 1: create every rule's shell so non-terminal references resolve
	// regardless of rule order.
	for _, sr := range snap.Rules {
		if _, dup := g.rules[sr.ID]; dup {
			return nil, fmt.Errorf("sequitur: snapshot has duplicate rule %d", sr.ID)
		}
		if sr.ID >= snap.NextID {
			return nil, fmt.Errorf("sequitur: rule %d not below NextID %d", sr.ID, snap.NextID)
		}
		r := &Rule{ID: sr.ID}
		guard := &symbol{rule: r, guard: true}
		guard.next, guard.prev = guard, guard
		r.guard = guard
		g.rules[sr.ID] = r
	}
	start, ok := g.rules[0]
	if !ok {
		return nil, fmt.Errorf("sequitur: snapshot has no start rule (ID 0)")
	}
	g.start = start
	// Pass 2: fill bodies with raw pointer surgery — no digram maintenance,
	// the index is restored verbatim below.
	for _, sr := range snap.Rules {
		r := g.rules[sr.ID]
		g.symCount += len(sr.Body)
		for _, sym := range sr.Body {
			s := &symbol{}
			if sym.IsRule {
				ref, ok := g.rules[uint32(sym.Value)]
				if !ok {
					return nil, fmt.Errorf("sequitur: rule %d references missing rule %d", sr.ID, sym.Value)
				}
				if sym.Value > uint64(^uint32(0)) {
					return nil, fmt.Errorf("sequitur: rule reference %d overflows uint32", sym.Value)
				}
				s.rule = ref
				ref.refs++
			} else {
				s.term = sym.Value
			}
			last := r.guard.prev
			last.next = s
			s.prev = last
			s.next = r.guard
			r.guard.prev = s
		}
	}
	// Pass 3: restore the digram index positionally.
	for _, ref := range snap.Digrams {
		r, ok := g.rules[ref.Rule]
		if !ok {
			return nil, fmt.Errorf("sequitur: digram ref names missing rule %d", ref.Rule)
		}
		s := r.first()
		for i := uint32(0); i < ref.Pos; i++ {
			if s.guard {
				break
			}
			s = s.next
		}
		if s.guard || s.next.guard {
			return nil, fmt.Errorf("sequitur: digram ref (%d, %d) out of range", ref.Rule, ref.Pos)
		}
		k := key(s)
		if _, dup := g.digrams[k]; dup {
			return nil, fmt.Errorf("sequitur: duplicate digram index entry at (%d, %d)", ref.Rule, ref.Pos)
		}
		g.digrams[k] = s
	}
	return g, nil
}
