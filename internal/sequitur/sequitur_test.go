package sequitur

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func fromString(s string) []uint64 {
	out := make([]uint64, len(s))
	for i := range s {
		out[i] = uint64(s[i])
	}
	return out
}

func buildAndVerify(t *testing.T, input []uint64) *Grammar {
	t.Helper()
	g := New()
	g.AppendAll(input)
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated for input %v: %v", input, err)
	}
	got := g.Expand()
	if len(got) == 0 && len(input) == 0 {
		return g
	}
	if !reflect.DeepEqual(got, input) {
		t.Fatalf("round trip failed:\n input: %v\noutput: %v\ngrammar: %s", input, got, g)
	}
	return g
}

func TestPaperExample(t *testing.T) {
	// The paper's §3.1 example: "abcbcabcbc" compresses to
	// S → AA; A → aBB; B → bc — two extra rules, 7 body symbols total.
	g := buildAndVerify(t, fromString("abcbcabcbc"))
	if g.NumRules() != 3 {
		t.Errorf("NumRules = %d, want 3 (S, A, B); grammar: %s", g.NumRules(), g)
	}
	if g.Symbols() != 7 {
		t.Errorf("Symbols = %d, want 7; grammar: %s", g.Symbols(), g)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	for _, in := range [][]uint64{
		{},
		{42},
		{1, 2},
		{1, 1},
		{1, 2, 3},
	} {
		g := buildAndVerify(t, in)
		if got := g.InputLen(); got != uint64(len(in)) {
			t.Errorf("InputLen = %d, want %d", got, len(in))
		}
	}
}

func TestRuns(t *testing.T) {
	// Runs of identical symbols exercise the overlapping-digram handling
	// and the "triples" index repair.
	for n := 1; n <= 40; n++ {
		in := make([]uint64, n)
		for i := range in {
			in[i] = 7
		}
		buildAndVerify(t, in)
	}
}

func TestRunsMixed(t *testing.T) {
	cases := []string{
		"aaabaaab",
		"abbbabcbb", // the sequence from the classic implementation's comment
		"aaaa",
		"aabaaab",
		"abababab",
		"aabbaabb",
		"abcabcabcabc",
		"xyxyxzxyxyxz",
		"mississippi",
		"aaabbbaaabbb",
	}
	for _, c := range cases {
		buildAndVerify(t, fromString(c))
	}
}

func TestRuleReuse(t *testing.T) {
	// "abab" must produce exactly one rule for "ab" reused twice.
	g := buildAndVerify(t, fromString("abab"))
	if g.NumRules() != 2 {
		t.Fatalf("NumRules = %d, want 2; grammar: %s", g.NumRules(), g)
	}
	for _, id := range g.RuleIDs() {
		if id == 0 {
			continue
		}
		if uses := g.RuleUses(id); uses != 2 {
			t.Errorf("rule %d used %d times, want 2", id, uses)
		}
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		alphabet := 1 + rng.Intn(8) // small alphabets force heavy repetition
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(rng.Intn(alphabet))
		}
		buildAndVerify(t, in)
	}
}

func TestStructuredRoundTrip(t *testing.T) {
	// Loop-like streams: the shape memory traces actually have.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		var in []uint64
		for block := 0; block < 5; block++ {
			pat := make([]uint64, 1+rng.Intn(6))
			for i := range pat {
				pat[i] = uint64(rng.Intn(10))
			}
			reps := 1 + rng.Intn(20)
			for r := 0; r < reps; r++ {
				in = append(in, pat...)
			}
		}
		g := buildAndVerify(t, in)
		if len(in) > 60 && g.Symbols() >= len(in) {
			t.Errorf("no compression on highly repetitive input: %d symbols for %d terminals", g.Symbols(), len(in))
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(bytes []byte) bool {
		in := make([]uint64, len(bytes))
		for i, b := range bytes {
			in[i] = uint64(b % 5)
		}
		g := New()
		g.AppendAll(in)
		if err := g.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		out := g.Expand()
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(300)
		in := make([]uint64, n)
		for i := range in {
			// Mix small and large values to exercise varint widths.
			// Terminals are capped at 63 bits (see encode.go).
			if rng.Intn(4) == 0 {
				in[i] = rng.Uint64() >> uint(1+rng.Intn(40))
			} else {
				in[i] = uint64(rng.Intn(6))
			}
		}
		g := New()
		g.AppendAll(in)
		buf := g.Encode()
		if len(buf) != g.EncodedSize() {
			t.Fatalf("EncodedSize = %d, len(Encode) = %d", g.EncodedSize(), len(buf))
		}
		d, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		out, err := d.Expand()
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("encode/decode round trip failed (n=%d)", n)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	g := New()
	g.AppendAll(fromString("abcbcabcbc"))
	buf := g.Encode()

	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("Decode(truncated) should fail")
	}
	if _, err := Decode(append(append([]byte{}, buf...), 0x00)); err == nil {
		t.Error("Decode(trailing bytes) should fail")
	}
	// A grammar whose rule references itself must be rejected at expansion.
	selfRef := []byte{1, 1, 1} // 1 rule, body length 1, symbol tag 1 => rule ref 0
	d, err := Decode(selfRef)
	if err != nil {
		t.Fatalf("Decode(selfRef): %v", err)
	}
	if _, err := d.Expand(); err == nil {
		t.Error("Expand of cyclic grammar should fail")
	}
}

func TestCompressionOnRepetitive(t *testing.T) {
	// A long strided pattern — like an offset stream from a loop — must
	// compress dramatically.
	in := make([]uint64, 0, 4096)
	for i := 0; i < 1024; i++ {
		in = append(in, 0, 8, 16, 24)
	}
	g := buildAndVerify(t, in)
	if g.Symbols() > 64 {
		t.Errorf("repetitive stream compressed to %d symbols, want <= 64", g.Symbols())
	}
}

func TestStringRendering(t *testing.T) {
	g := New()
	g.AppendAll(fromString("abab"))
	s := g.String()
	if s == "" {
		t.Fatal("String() returned empty grammar rendering")
	}
}

func BenchmarkAppendRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := make([]uint64, 1<<16)
	for i := range in {
		in[i] = uint64(rng.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New()
		g.AppendAll(in)
	}
	b.ReportMetric(float64(len(in)), "symbols/op")
}

func BenchmarkAppendRepetitive(b *testing.B) {
	in := make([]uint64, 0, 1<<16)
	for i := 0; len(in) < 1<<16; i++ {
		in = append(in, 1, 2, 3, 4, 5, 6, 7, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New()
		g.AppendAll(in)
	}
	b.ReportMetric(float64(len(in)), "symbols/op")
}
