// Package sequitur implements the Sequitur compression scheme of
// Nevill-Manning and Witten ("Identifying hierarchical structure in
// sequences: a linear-time algorithm", JAIR 1997), which WHOMP uses to
// compress the decomposed object-relative streams (§3.1).
//
// Sequitur encodes a symbol stream as a context-free grammar built
// incrementally under two invariants:
//
//	digram uniqueness: no pair of adjacent symbols appears more than once
//	                   (at non-overlapping positions) in the grammar;
//	rule utility:      every rule other than the start rule is used at
//	                   least twice.
//
// Each repetition of a digram gives rise to a rule, and repeated
// subsequences are replaced by non-terminals, e.g. "abcbcabcbc" compresses
// to S → AA; A → aBB; B → bc.
//
// The implementation follows the authors' classic linked-list formulation,
// including the digram-index repair for runs of equal symbols ("triples").
//
// A Grammar is not safe for concurrent use, and its construction is
// inherently sequential in its input (each Append depends on the digram
// index the previous appends built); the parallel WHOMP pipeline therefore
// parallelizes across grammars — one per decomposed dimension — never
// within one.
package sequitur

import "fmt"

// symbol is one element of a rule body: either a terminal value or a
// non-terminal reference to a rule. Each rule body is a circular
// doubly-linked list closed by a guard symbol.
type symbol struct {
	next, prev *symbol
	term       uint64
	rule       *Rule // non-terminal reference; for guards, the owning rule
	guard      bool
}

// Rule is one grammar rule. Its body is the circular list hanging off the
// guard.
type Rule struct {
	ID    uint32
	guard *symbol
	refs  int
}

func (r *Rule) first() *symbol { return r.guard.next }
func (r *Rule) last() *symbol  { return r.guard.prev }

// Len reports the number of symbols in the rule body.
func (r *Rule) Len() int {
	n := 0
	for s := r.first(); !s.guard; s = s.next {
		n++
	}
	return n
}

// digram identifies the value pair of two adjacent symbols. Terminals and
// non-terminals live in disjoint key spaces.
type digram struct {
	a, b         uint64
	aRule, bRule bool
}

func value(s *symbol) (uint64, bool) {
	if s.rule != nil {
		return uint64(s.rule.ID), true
	}
	return s.term, false
}

func sameValue(a, b *symbol) bool {
	av, ar := value(a)
	bv, br := value(b)
	return av == bv && ar == br
}

// Grammar is an incrementally built Sequitur grammar. The zero value is not
// usable; create with New.
type Grammar struct {
	start   *Rule
	rules   map[uint32]*Rule
	digrams map[digram]*symbol
	nextID  uint32
	input   uint64 // terminals appended so far
	// symCount tracks the live body symbols (== Symbols(), maintained
	// incrementally so Footprint never walks the grammar).
	symCount int
}

// New returns an empty grammar.
func New() *Grammar {
	g := &Grammar{
		rules:   make(map[uint32]*Rule),
		digrams: make(map[digram]*symbol),
	}
	g.start = g.newRule()
	return g
}

func (g *Grammar) newRule() *Rule {
	r := &Rule{ID: g.nextID}
	g.nextID++
	guard := &symbol{rule: r, guard: true}
	guard.next, guard.prev = guard, guard
	r.guard = guard
	g.rules[r.ID] = r
	return r
}

// key returns the digram key for (s, s.next). Only valid when neither is a
// guard.
func key(s *symbol) digram {
	av, ar := value(s)
	bv, br := value(s.next)
	return digram{a: av, b: bv, aRule: ar, bRule: br}
}

// setDigram indexes the digram starting at s, overwriting any existing
// entry. No-op if s's digram involves a guard.
func (g *Grammar) setDigram(s *symbol) {
	if s == nil || s.guard || s.next == nil || s.next.guard {
		return
	}
	g.digrams[key(s)] = s
}

// deleteDigram removes the index entry for the digram starting at s, if s is
// the indexed occurrence.
func (g *Grammar) deleteDigram(s *symbol) {
	if s.guard || s.next == nil || s.next.guard {
		return
	}
	k := key(s)
	if g.digrams[k] == s {
		delete(g.digrams, k)
	}
}

// join links left→right, cleaning up the digram that previously started at
// left and repairing the index for runs of identical symbols (the classic
// implementation's "triples" fix-up).
func (g *Grammar) join(left, right *symbol) {
	if left.next != nil {
		g.deleteDigram(left)

		if right.prev != nil && right.next != nil &&
			sameValue(right, right.prev) && sameValue(right, right.next) {
			g.setDigram(right)
		}
		if left.prev != nil && left.next != nil &&
			sameValue(left, left.prev) && sameValue(left, left.next) {
			g.setDigram(left.prev)
		}
	}
	left.next = right
	right.prev = left
}

// insertAfter splices fresh symbol y immediately after s.
func (g *Grammar) insertAfter(s, y *symbol) {
	g.join(y, s.next)
	g.join(s, y)
}

// destroy unlinks s from its rule, cleaning up digrams and the refcount of a
// non-terminal's rule.
func (g *Grammar) destroy(s *symbol) {
	g.join(s.prev, s.next)
	if !s.guard {
		g.deleteDigram(s)
		if s.rule != nil {
			s.rule.refs--
		}
		g.symCount--
	}
	s.next, s.prev = nil, nil
}

// check enforces digram uniqueness for the digram starting at s. It reports
// whether the grammar changed.
func (g *Grammar) check(s *symbol) bool {
	if s.guard || s.next.guard {
		return false
	}
	k := key(s)
	x, ok := g.digrams[k]
	if !ok {
		g.digrams[k] = s
		return false
	}
	if x == s {
		return false
	}
	if x.next != s && s.next != x { // non-overlapping occurrence
		g.match(s, x)
		return true
	}
	return false
}

func (g *Grammar) copySym(s *symbol) *symbol {
	n := &symbol{term: s.term, rule: s.rule}
	if n.rule != nil {
		n.rule.refs++
	}
	g.symCount++
	return n
}

// match handles a repeated digram: s is the new occurrence, m the indexed
// one. If m is exactly a rule's whole body, reuse that rule; otherwise mint a
// new rule from the digram and substitute both occurrences.
func (g *Grammar) match(s, m *symbol) {
	var r *Rule
	if m.prev.guard && m.next.next.guard {
		r = m.prev.rule
		g.substitute(s, r)
	} else {
		r = g.newRule()
		g.insertAfter(r.last(), g.copySym(s))
		g.insertAfter(r.last(), g.copySym(s.next))
		g.substitute(m, r)
		g.substitute(s, r)
		g.setDigram(r.first())
	}
	// Rule utility: if the new rule's body begins with a non-terminal whose
	// rule is now used only once, inline it.
	if f := r.first(); !f.guard && f.rule != nil && f.rule.refs == 1 {
		g.expand(f)
	}
}

// substitute replaces the digram starting at s with a non-terminal referring
// to r, then re-checks the two adjacencies this creates.
func (g *Grammar) substitute(s *symbol, r *Rule) {
	q := s.prev
	g.destroy(q.next)
	g.destroy(q.next)
	n := &symbol{rule: r}
	r.refs++
	g.symCount++
	g.insertAfter(q, n)
	if !g.check(q) {
		g.check(n)
	}
}

// expand inlines the body of s's rule in place of s. Called when the rule's
// reference count has dropped to one (rule utility).
func (g *Grammar) expand(s *symbol) {
	left, right := s.prev, s.next
	r := s.rule
	f, l := r.first(), r.last()

	g.deleteDigram(s)
	g.join(left, right) // unlink s (also removes digram (left, s))
	g.symCount--        // s dies here without going through destroy
	delete(g.rules, r.ID)

	g.join(left, f)
	g.join(l, right)
	g.setDigram(l)
}

// Append feeds the next terminal of the input stream into the grammar.
func (g *Grammar) Append(v uint64) {
	g.input++
	s := &symbol{term: v}
	g.symCount++
	g.insertAfter(g.start.last(), s)
	g.check(s.prev)
}

// AppendAll feeds a whole sequence.
func (g *Grammar) AppendAll(vs []uint64) {
	for _, v := range vs {
		g.Append(v)
	}
}

// InputLen reports how many terminals have been appended.
func (g *Grammar) InputLen() uint64 { return g.input }

// NumRules reports the number of rules, including the start rule.
func (g *Grammar) NumRules() int { return len(g.rules) }

// Symbols reports the total number of symbols on the right-hand sides of all
// rules — the standard Sequitur grammar-size metric the paper's compression
// comparison uses.
func (g *Grammar) Symbols() int {
	n := 0
	for _, r := range g.rules {
		n += r.Len()
	}
	return n
}

// Expand regenerates the original input sequence from the grammar, proving
// losslessness.
func (g *Grammar) Expand() []uint64 {
	out := make([]uint64, 0, g.input)
	var walk func(r *Rule)
	walk = func(r *Rule) {
		for s := r.first(); !s.guard; s = s.next {
			if s.rule != nil {
				walk(s.rule)
			} else {
				out = append(out, s.term)
			}
		}
	}
	walk(g.start)
	return out
}

// Sym is the exported view of one grammar symbol.
type Sym struct {
	Value  uint64 // terminal value, or rule ID when IsRule
	IsRule bool
}

// RuleBody returns the body of rule id as exported symbols. ok is false for
// unknown rules.
func (g *Grammar) RuleBody(id uint32) ([]Sym, bool) {
	r, ok := g.rules[id]
	if !ok {
		return nil, false
	}
	body := make([]Sym, 0, 8)
	for s := r.first(); !s.guard; s = s.next {
		v, isRule := value(s)
		body = append(body, Sym{Value: v, IsRule: isRule})
	}
	return body, true
}

// RuleIDs returns all rule IDs in ascending order; the start rule is always
// ID 0.
func (g *Grammar) RuleIDs() []uint32 {
	ids := make([]uint32, 0, len(g.rules))
	for id := range g.rules {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

// RuleUses reports how many times rule id is referenced (0 for the start
// rule).
func (g *Grammar) RuleUses(id uint32) int {
	r, ok := g.rules[id]
	if !ok {
		return 0
	}
	return r.refs
}

// String renders the grammar in the paper's "S → AA; A → aBB; B → bc" style
// with numeric IDs: rule 0 is S.
func (g *Grammar) String() string {
	out := ""
	for _, id := range g.RuleIDs() {
		body, _ := g.RuleBody(id)
		if out != "" {
			out += "; "
		}
		out += fmt.Sprintf("R%d →", id)
		for _, s := range body {
			if s.IsRule {
				out += fmt.Sprintf(" R%d", s.Value)
			} else {
				out += fmt.Sprintf(" %d", s.Value)
			}
		}
	}
	return out
}
