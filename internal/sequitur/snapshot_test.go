package sequitur

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// streams returns a spread of symbol streams chosen to exercise every
// grammar mechanism: repeats (rule creation), runs of equal symbols (the
// triples fix-up), rule reuse, rule inlining (utility), and plain noise.
func snapshotStreams() map[string][]uint64 {
	rng := rand.New(rand.NewSource(7))
	noise := make([]uint64, 4000)
	for i := range noise {
		noise[i] = uint64(rng.Intn(50))
	}
	runs := make([]uint64, 2000)
	for i := range runs {
		runs[i] = uint64(i / 37 % 3)
	}
	period := make([]uint64, 3000)
	for i := range period {
		period[i] = uint64(i % 17)
	}
	mixed := append(append(append([]uint64{}, period[:800]...), noise[:800]...), runs...)
	return map[string][]uint64{
		"noise":    noise,
		"runs":     runs,
		"periodic": period,
		"mixed":    mixed,
	}
}

// TestSnapshotResumeExact is the load-bearing test for checkpointing: a
// grammar restored from a mid-stream snapshot and fed the rest of the input
// must serialize byte-identically to one that saw the whole stream
// uninterrupted — at every cut point tried.
func TestSnapshotResumeExact(t *testing.T) {
	for name, stream := range snapshotStreams() {
		cuts := []int{0, 1, 2, 3, 10, len(stream) / 3, len(stream) / 2, len(stream) - 1, len(stream)}
		for _, cut := range cuts {
			full := New()
			full.AppendAll(stream)

			g := New()
			g.AppendAll(stream[:cut])
			snap, err := g.Snapshot()
			if err != nil {
				t.Fatalf("%s/%d: Snapshot: %v", name, cut, err)
			}
			restored, err := FromSnapshot(snap)
			if err != nil {
				t.Fatalf("%s/%d: FromSnapshot: %v", name, cut, err)
			}
			restored.AppendAll(stream[cut:])

			if got, want := restored.Encode(), full.Encode(); !bytes.Equal(got, want) {
				t.Errorf("%s/%d: resumed grammar differs from uninterrupted one\nresumed: %s\nfull:    %s",
					name, cut, restored, full)
			}
			if got, want := restored.InputLen(), full.InputLen(); got != want {
				t.Errorf("%s/%d: InputLen = %d, want %d", name, cut, got, want)
			}
			if !reflect.DeepEqual(restored.Expand(), full.Expand()) {
				t.Errorf("%s/%d: expansion differs after resume", name, cut)
			}
		}
	}
}

// TestSnapshotRoundTrip: snapshot → restore → snapshot is a fixed point.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, stream := range snapshotStreams() {
		g := New()
		g.AppendAll(stream)
		s1, err := g.Snapshot()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := FromSnapshot(s1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("%s: restored grammar invariants: %v", name, err)
		}
		s2, err := r.Snapshot()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: snapshot not a fixed point", name)
		}
	}
}

// TestSnapshotIndependent: mutating the grammar after Snapshot must not
// change the snapshot.
func TestSnapshotIndependent(t *testing.T) {
	g := New()
	g.AppendAll([]uint64{1, 2, 1, 2, 3, 1, 2})
	s1, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := *s1
	beforeRules := append([]SnapshotRule(nil), s1.Rules...)
	g.AppendAll([]uint64{9, 9, 9, 9, 1, 2, 1, 2})
	if before.NextID != s1.NextID || before.Input != s1.Input || !reflect.DeepEqual(beforeRules, s1.Rules) {
		t.Error("snapshot aliased live grammar state")
	}
}

// TestFromSnapshotRejectsCorrupt: structurally broken snapshots are typed
// errors, never panics or silently wrong grammars.
func TestFromSnapshotRejectsCorrupt(t *testing.T) {
	mk := func() *Snapshot {
		g := New()
		g.AppendAll([]uint64{1, 2, 1, 2, 1, 2, 3, 4, 3, 4})
		s, err := g.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[string]func(*Snapshot){
		"no start rule":     func(s *Snapshot) { s.Rules = s.Rules[1:] },
		"duplicate rule":    func(s *Snapshot) { s.Rules = append(s.Rules, s.Rules[0]) },
		"dangling rule ref": func(s *Snapshot) { s.Rules[0].Body[0] = Sym{Value: 999, IsRule: true} },
		"digram oob pos": func(s *Snapshot) {
			s.Digrams = append(s.Digrams, DigramRef{Rule: 0, Pos: 1 << 20})
		},
		"digram bad rule": func(s *Snapshot) {
			s.Digrams = append(s.Digrams, DigramRef{Rule: 999, Pos: 0})
		},
		"rule above nextID": func(s *Snapshot) { s.NextID = 0 },
	}
	for name, corrupt := range cases {
		s := mk()
		corrupt(s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: FromSnapshot accepted a corrupt snapshot", name)
		}
	}
}
