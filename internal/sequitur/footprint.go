package sequitur

// Approximate per-element live sizes, including allocator and map-bucket
// overhead. Footprints are budget-accounting estimates, not exact heap
// measurements; what matters is that they are O(1) to read and grow
// linearly with the structures that actually grow.
const (
	symbolBytes = 48 // symbol struct (two pointers, value, rule pointer, flag)
	ruleBytes   = 88 // Rule struct + its guard symbol + map entry share
	digramBytes = 64 // digram key + pointer + map bucket share
	grammarBase = 256
)

// Footprint reports the grammar's approximate live bytes. It is O(1):
// the symbol count is maintained incrementally by every mutation, so the
// governance layer can read it after each appended terminal.
func (g *Grammar) Footprint() int64 {
	return grammarBase +
		int64(g.symCount)*symbolBytes +
		int64(len(g.rules))*ruleBytes +
		int64(len(g.digrams))*digramBytes
}
