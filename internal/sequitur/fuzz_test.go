package sequitur

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRoundTrip drives the full build → encode → decode → expand chain with
// arbitrary byte sequences (mapped to a small alphabet to force heavy rule
// churn) and checks losslessness plus grammar invariants.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("abcbcabcbc"))
	f.Add([]byte("aaaaaaaaaa"))
	f.Add([]byte("abbbabcbb"))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0})
	f.Add(bytes.Repeat([]byte{7, 7, 3}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		in := make([]uint64, len(data))
		for i, b := range data {
			in[i] = uint64(b % 7)
		}
		g := New()
		g.AppendAll(in)
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		out := g.Expand()
		if len(in) == 0 {
			if len(out) != 0 {
				t.Fatal("empty input expanded to symbols")
			}
			return
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatal("expand mismatch")
		}
		dec, err := Decode(g.Encode())
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		out2, err := dec.Expand()
		if err != nil {
			t.Fatalf("expand of decoded grammar: %v", err)
		}
		if !reflect.DeepEqual(out2, in) {
			t.Fatal("decode/expand mismatch")
		}
	})
}

// FuzzDecode feeds arbitrary bytes to the grammar decoder: it must reject
// or accept without panicking, and anything accepted must expand or report
// a cycle error.
func FuzzDecode(f *testing.F) {
	g := New()
	g.AppendAll([]uint64{1, 2, 1, 2, 3, 1, 2})
	f.Add(g.Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		dec.Expand() //nolint:errcheck // must only not panic
	})
}
