package decomp

// Footprint reports the decomposition's approximate live bytes in O(1):
// four uint64 slices. len (not cap) keeps the estimate identical across a
// checkpoint/restore cycle, where restored slices are exact-sized.
func (h *Horizontal) Footprint() int64 {
	return 128 + int64(len(h.Instr)+len(h.Group)+len(h.Object)+len(h.Offset))*8
}
