package decomp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

func randomRecords(rng *rand.Rand, n int) []profiler.Record {
	recs := make([]profiler.Record, n)
	for i := range recs {
		recs[i] = profiler.Record{
			Instr: trace.InstrID(rng.Intn(8)),
			Ref: omc.Ref{
				Group:  omc.GroupID(rng.Intn(4)),
				Object: uint32(rng.Intn(16)),
				Offset: uint64(rng.Intn(64) * 8),
			},
			Time: trace.Time(i),
		}
	}
	return recs
}

func TestHorizontalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := randomRecords(rng, 500)
	h := Decompose(recs)
	if h.Len() != 500 {
		t.Fatalf("Len = %d", h.Len())
	}
	back := h.Recompose()
	if len(back) != len(recs) {
		t.Fatalf("Recompose returned %d records", len(back))
	}
	for i := range recs {
		if back[i].Instr != recs[i].Instr || back[i].Ref != recs[i].Ref {
			t.Fatalf("record %d: %v != %v", i, back[i], recs[i])
		}
		if back[i].Time != trace.Time(i) {
			t.Fatalf("record %d time %d", i, back[i].Time)
		}
	}
}

func TestDimensionAccessors(t *testing.T) {
	r := profiler.Record{
		Instr: 3,
		Ref:   omc.Ref{Group: 5, Object: 7, Offset: 9},
		Time:  11,
	}
	cases := map[Dimension]uint64{
		DimInstr: 3, DimGroup: 5, DimObject: 7, DimOffset: 9, DimTime: 11,
	}
	for d, want := range cases {
		if got := Value(r, d); got != want {
			t.Errorf("Value(%v) = %d, want %d", d, got, want)
		}
	}
	h := Decompose([]profiler.Record{r})
	for _, d := range Dims {
		if got := h.Stream(d)[0]; got != cases[d] {
			t.Errorf("Stream(%v)[0] = %d, want %d", d, got, cases[d])
		}
	}
	if DimInstr.String() != "instr" || DimOffset.String() != "offset" || DimTime.String() != "time" {
		t.Error("dimension names wrong")
	}
}

func TestVerticalByInstr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := randomRecords(rng, 300)
	sub := ByInstr(recs)

	total := 0
	for id, s := range sub {
		total += len(s)
		last := trace.Time(0)
		for i, r := range s {
			if r.Instr != id {
				t.Fatalf("substream %d contains instr %d", id, r.Instr)
			}
			if i > 0 && r.Time <= last {
				t.Fatalf("substream %d not time-ordered", id)
			}
			last = r.Time
		}
	}
	if total != len(recs) {
		t.Fatalf("substreams cover %d of %d records", total, len(recs))
	}
	ids := SortedInstrs(sub)
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("SortedInstrs out of order")
		}
	}
}

func TestVerticalByInstrGroupAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := randomRecords(rng, 400)
	sub := ByInstrGroup(recs)

	keys := SortedKeys(sub)
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Instr > b.Instr || (a.Instr == b.Instr && a.Group >= b.Group) {
			t.Fatal("SortedKeys out of order")
		}
	}

	// Vertical decomposition + time-stamp merge must reproduce the
	// original stream exactly (§2.2: the time dimension makes substreams
	// uniquely identifiable).
	streams := make([][]profiler.Record, 0, len(sub))
	for _, k := range keys {
		streams = append(streams, sub[k])
	}
	merged := Merge(streams...)
	if !reflect.DeepEqual(merged, recs) {
		t.Fatal("Merge(ByInstrGroup(recs)) != recs")
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(); len(got) != 0 {
		t.Errorf("Merge() = %v", got)
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Errorf("Merge(nil, nil) = %v", got)
	}
}

func TestQuickVerticalRecomposition(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(nRaw))
		sub := ByInstr(recs)
		streams := make([][]profiler.Record, 0, len(sub))
		for _, id := range SortedInstrs(sub) {
			streams = append(streams, sub[id])
		}
		return reflect.DeepEqual(Merge(streams...), recs) ||
			(len(recs) == 0 && len(Merge(streams...)) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
