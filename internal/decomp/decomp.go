// Package decomp implements the paper's object-relative stream
// decompositions (§2.2).
//
// Horizontal decomposition splits the 5-tuple stream into its dimensions —
// one stream per tuple element — so that each dimension's (simpler, more
// regular) pattern can be compressed on its own. Vertical decomposition
// collects the tuples that share a value in one dimension (all accesses by
// one instruction, say) into substreams; the time-stamp dimension keeps
// every tuple uniquely identified so substreams can be recomposed.
//
// Vertical decomposition also defines the parallel pipeline's partitioning:
// Shard assigns records to workers by instruction so that every substream
// lands whole, and in order, on a single worker.
package decomp

import (
	"sort"

	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// Dimension names one element of the object-relative tuple.
type Dimension int

// The tuple dimensions, in the paper's order.
const (
	DimInstr Dimension = iota
	DimGroup
	DimObject
	DimOffset
	DimTime
)

// String returns the dimension name.
func (d Dimension) String() string {
	switch d {
	case DimInstr:
		return "instr"
	case DimGroup:
		return "group"
	case DimObject:
		return "object"
	case DimOffset:
		return "offset"
	case DimTime:
		return "time"
	default:
		return "dim?"
	}
}

// Dims lists the four compressible dimensions (time is implicit in stream
// order after horizontal decomposition).
var Dims = []Dimension{DimInstr, DimGroup, DimObject, DimOffset}

// Value extracts dimension d of record r as a symbol.
func Value(r profiler.Record, d Dimension) uint64 {
	switch d {
	case DimInstr:
		return uint64(r.Instr)
	case DimGroup:
		return uint64(r.Ref.Group)
	case DimObject:
		return uint64(r.Ref.Object)
	case DimOffset:
		return r.Ref.Offset
	case DimTime:
		return uint64(r.Time)
	default:
		panic("decomp: unknown dimension")
	}
}

// Horizontal is the result of horizontal decomposition: one symbol stream
// per dimension, all of equal length, index-aligned (index = position in the
// original stream = relative time).
type Horizontal struct {
	Instr  []uint64
	Group  []uint64
	Object []uint64
	Offset []uint64
}

// Add appends one record's dimension symbols — the streaming form of
// Decompose, usable as the body of a profiler.SCCFunc so decomposition can
// ride directly on the translated record stream.
func (h *Horizontal) Add(r profiler.Record) {
	h.Instr = append(h.Instr, uint64(r.Instr))
	h.Group = append(h.Group, uint64(r.Ref.Group))
	h.Object = append(h.Object, uint64(r.Ref.Object))
	h.Offset = append(h.Offset, r.Ref.Offset)
}

// Decompose splits the object-relative stream into its four dimension
// streams.
func Decompose(recs []profiler.Record) Horizontal {
	h := Horizontal{
		Instr:  make([]uint64, 0, len(recs)),
		Group:  make([]uint64, 0, len(recs)),
		Object: make([]uint64, 0, len(recs)),
		Offset: make([]uint64, 0, len(recs)),
	}
	for _, r := range recs {
		h.Add(r)
	}
	return h
}

// Stream returns dimension d's symbol stream.
func (h Horizontal) Stream(d Dimension) []uint64 {
	switch d {
	case DimInstr:
		return h.Instr
	case DimGroup:
		return h.Group
	case DimObject:
		return h.Object
	case DimOffset:
		return h.Offset
	default:
		panic("decomp: no stream for dimension " + d.String())
	}
}

// Len reports the stream length.
func (h Horizontal) Len() int { return len(h.Instr) }

// Recompose zips the dimension streams back into tuples. Time stamps are
// positions; Store/Size are not part of the 5-tuple and come back zero.
// Together with Decompose it witnesses that horizontal decomposition loses
// nothing.
func (h Horizontal) Recompose() []profiler.Record {
	recs := make([]profiler.Record, h.Len())
	for i := range recs {
		recs[i] = profiler.Record{
			Instr: trace.InstrID(h.Instr[i]),
			Ref: omc.Ref{
				Group:  omc.GroupID(h.Group[i]),
				Object: uint32(h.Object[i]),
				Offset: h.Offset[i],
			},
			Time: trace.Time(i),
		}
	}
	return recs
}

// Shard assigns a record to one of n vertical shards by instruction ID.
// All records of one instruction — and therefore of every
// (instruction, group) substream — map to the same shard, so a sharded
// consumer sees each vertically decomposed substream whole and in order.
// This is the shard function the parallel LEAP pipeline uses; the
// multiplicative hash spreads clustered instruction IDs evenly.
func Shard(r profiler.Record, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint32(r.Instr) * 0x9e3779b1) % uint32(n))
}

// InstrGroupKey keys vertical decomposition by instruction then group — the
// decomposition LEAP uses (§4.1: "decomposes the stream vertically by
// instruction id and then by group").
type InstrGroupKey struct {
	Instr trace.InstrID
	Group omc.GroupID
}

// ByInstr vertically decomposes the stream by instruction: one substream per
// static instruction, each in original (time) order.
func ByInstr(recs []profiler.Record) map[trace.InstrID][]profiler.Record {
	out := make(map[trace.InstrID][]profiler.Record)
	for _, r := range recs {
		out[r.Instr] = append(out[r.Instr], r)
	}
	return out
}

// ByInstrGroup vertically decomposes by instruction and then group, yielding
// the (object, offset, time) substreams LEAP compresses.
func ByInstrGroup(recs []profiler.Record) map[InstrGroupKey][]profiler.Record {
	out := make(map[InstrGroupKey][]profiler.Record)
	for _, r := range recs {
		k := InstrGroupKey{Instr: r.Instr, Group: r.Ref.Group}
		out[k] = append(out[k], r)
	}
	return out
}

// SortedInstrs returns the instruction keys of a ByInstr decomposition in
// ascending order, for deterministic iteration.
func SortedInstrs[T any](m map[trace.InstrID]T) []trace.InstrID {
	keys := make([]trace.InstrID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeys returns the keys of a ByInstrGroup decomposition ordered by
// (instr, group), for deterministic iteration.
func SortedKeys[T any](m map[InstrGroupKey]T) []InstrGroupKey {
	keys := make([]InstrGroupKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Instr != keys[j].Instr {
			return keys[i].Instr < keys[j].Instr
		}
		return keys[i].Group < keys[j].Group
	})
	return keys
}

// Merge recomposes vertically decomposed substreams into a single stream
// ordered by time-stamp. Each substream must already be time-ordered (as
// produced by ByInstr / ByInstrGroup). This witnesses that the added time
// dimension makes vertical decomposition invertible (§2.2).
func Merge(substreams ...[]profiler.Record) []profiler.Record {
	n := 0
	for _, s := range substreams {
		n += len(s)
	}
	out := make([]profiler.Record, 0, n)
	idx := make([]int, len(substreams))
	for len(out) < n {
		best := -1
		var bestTime trace.Time
		for i, s := range substreams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || s[idx[i]].Time < bestTime {
				best = i
				bestTime = s[idx[i]].Time
			}
		}
		out = append(out, substreams[best][idx[best]])
		idx[best]++
	}
	return out
}
