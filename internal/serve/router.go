package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"ormprof/internal/checkpoint"
)

// RouterConfig configures a Router. Zero values select the documented
// defaults.
type RouterConfig struct {
	// Shards is the backend shard address list (required, unique,
	// non-empty). It seeds the epoch-1 ring; a durable or replicated
	// ORMRTAB table carrying a higher epoch overrides it, because the
	// table records topology changes made while this config sat still.
	Shards []string

	// StatePath, when set, persists the router's full state (ORMRTAB v2:
	// ring epoch, shard list, session→shard reroutes — see
	// internal/checkpoint) so a restarted router resumes the exact
	// topology and placements it last served.
	StatePath string

	// Standby starts the router in standby mode: it refuses every ingest
	// Hello with a Retry carrying ActiveAddr as a redirect hint, while
	// its admin plane stays live to receive replicated tables. Promote()
	// flips it active.
	Standby bool
	// ActiveAddr is the active router's ingest address, handed to clients
	// a standby refuses. Empty means "no hint" (plain Retry).
	ActiveAddr string
	// Peers lists the admin addresses of peer routers. The router pulls
	// the freshest table from them at startup and pushes its own after
	// every durable state change, so a standby holds the active's
	// placements by the time a failover promotes it.
	Peers []string

	// OnAddShard and OnRemoveShard, when set, take over the admin plane's
	// add-shard/remove-shard commands. The local cluster wires these to
	// its migration orchestrator so a topology change also moves the
	// affected sessions; a bare router (external shards) installs the new
	// ring directly.
	OnAddShard    func(epoch uint64, addr string) (uint64, error)
	OnRemoveShard func(epoch uint64, addr string) (uint64, error)

	// RetryAfter is the backoff hint the router sends when it must refuse
	// a connection itself (no live shard reachable, session held for
	// migration, standby mode) and the target shard has never supplied
	// its own hint. Default DefaultRetryAfter. When the shard HAS told
	// the router its retry-after — in a Retry the router relayed earlier —
	// that hint is propagated instead of this one.
	RetryAfter time.Duration
	// DialTimeout bounds each backend dial. Default 2s.
	DialTimeout time.Duration
	// HelloTimeout bounds reading the client's preamble+Hello and the
	// shard's first reply. Default 10s.
	HelloTimeout time.Duration

	// ProbeBackoffBase, ProbeBackoffMax, and ProbeJitterSeed shape the
	// down-shard probe schedule (ormpush's backoff machinery, reused).
	// Defaults 100ms, 2s, seed 1.
	ProbeBackoffBase time.Duration
	ProbeBackoffMax  time.Duration
	ProbeJitterSeed  int64

	// Logf, when set, receives one line per routing event.
	Logf func(format string, args ...any)
}

func (c *RouterConfig) withDefaults() RouterConfig {
	out := *c
	if out.RetryAfter <= 0 {
		out.RetryAfter = DefaultRetryAfter
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 2 * time.Second
	}
	if out.HelloTimeout <= 0 {
		out.HelloTimeout = 10 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Router is the cluster's ingest tier: it terminates nothing. Each client
// connection's preamble and Hello are parsed once — only to learn the
// session ID — then forwarded byte-for-byte to the shard the consistent-
// hash ring (or the reroute table) names, and from there the connection
// is a verbatim bidirectional splice: the shard speaks ORMP/1 to the
// client exactly as if it were listening itself. All session state,
// checkpointing, and acknowledgement semantics stay in the shard, so
// Ack == durable holds end-to-end through the router unchanged.
//
// Failover: a typed failure reaching a shard (dial error, death before
// its first reply) marks it Down; sessions whose shard is Down are routed
// to the next live shard in their ring order and the reroute is recorded
// (and persisted when StatePath is set). Down shards are probed back to
// Up on a capped exponential backoff with seeded jitter. A shard that is
// merely slow, or answering Retry, is never marked Down.
//
// Reconfiguration: the ring is versioned (see ring.epoch) and mutable
// through the admin plane (admin.go). Installing a new ring pins every
// known live placement that survives the change, so existing sessions
// stay where their durable cursor lives while new sessions follow the
// new ring; sessions the orchestrator migrates are Held (refused with
// Retry) for the handoff window and Repointed to their new owner before
// release. The full state replicates to standby routers after every
// durable change, and a standby Promote()d after the active dies serves
// the same placements at the same epoch.
type Router struct {
	cfg    RouterConfig
	ln     net.Listener
	health *health

	mu         sync.Mutex
	ring       *ring
	routes     map[string]string // session → shard, only when off-primary
	placements map[string]string // session → shard, every committed landing
	held       map[string]bool   // sessions refused during migration
	standby    bool
	adminLn    net.Listener
	conns      map[net.Conn]struct{}
	draining   bool
	killed     bool
	killCh     chan struct{}

	// repMu serializes state snapshots and their pushes to peers, so a
	// peer can never observe replication going backwards in time.
	repMu sync.Mutex

	wg sync.WaitGroup
}

// NewRouter creates a Router listening on ln, routing to cfg.Shards. With
// cfg.StatePath set, a readable state table is loaded; a table carrying a
// ring epoch overrides cfg.Shards (the table is newer by construction),
// while a corrupt table is discarded (primary routing is always safe)
// with a log line. With cfg.Peers set, the freshest peer table newer than
// the local state is adopted before serving.
func NewRouter(ln net.Listener, cfg RouterConfig) (*Router, error) {
	c := cfg.withDefaults()
	rg, err := newRing(c.Shards)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:        c,
		ln:         ln,
		ring:       rg,
		routes:     make(map[string]string),
		placements: make(map[string]string),
		held:       make(map[string]bool),
		standby:    c.Standby,
		conns:      make(map[net.Conn]struct{}),
		killCh:     make(chan struct{}),
	}
	if c.StatePath != "" {
		st, err := checkpoint.LoadRouterTable(c.StatePath)
		switch {
		case err == nil:
			if st.Epoch > 0 {
				ng, rerr := newRingAt(st.Epoch, st.Shards)
				if rerr != nil {
					return nil, fmt.Errorf("serve: router state: %w", rerr)
				}
				if ng.epoch >= rg.epoch {
					if !sameShards(ng.addrs, rg.addrs) {
						c.Logf("router: durable table epoch %d overrides configured shard list", ng.epoch)
					}
					r.ring = ng
				}
			}
			valid := make(map[string]bool, len(r.ring.addrs))
			for _, a := range r.ring.addrs {
				valid[a] = true
			}
			for s, sh := range st.Routes {
				if valid[sh] {
					r.routes[s] = sh
					r.placements[s] = sh
				}
			}
			c.Logf("router: restored epoch %d with %d reroute(s)", r.ring.epoch, len(r.routes))
		case errors.Is(err, os.ErrNotExist):
		case checkpoint.IsCorrupt(err):
			c.Logf("router: discarding corrupt state table: %v", err)
		default:
			return nil, fmt.Errorf("serve: router state: %w", err)
		}
	}
	r.health = newHealth(r.ring.addrs, healthConfig{
		probeBase:   c.ProbeBackoffBase,
		probeMax:    c.ProbeBackoffMax,
		probeJitter: c.ProbeJitterSeed,
		dialTimeout: c.DialTimeout,
		logf:        c.Logf,
	})
	// Peers may hold a newer topology than both config and local disk —
	// the normal case for a standby (re)started behind a long-lived
	// active. Adopt the freshest one; unreachable peers are not fatal.
	for _, peer := range c.Peers {
		st, perr := AdminPullTable(peer, r.Epoch(), c.DialTimeout)
		if perr != nil {
			c.Logf("router: startup pull from %s: %v", peer, perr)
			continue
		}
		if st.Epoch > r.Epoch() || (st.Epoch == r.Epoch() && st.Epoch > 0) {
			if aerr := r.ApplyTable(st); aerr != nil {
				c.Logf("router: apply table from %s: %v", peer, aerr)
			} else {
				c.Logf("router: adopted epoch %d from peer %s", st.Epoch, peer)
			}
		}
	}
	r.health.start()
	return r, nil
}

func sameShards(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Addr returns the listener address.
func (r *Router) Addr() net.Addr { return r.ln.Addr() }

// Epoch returns the current ring epoch.
func (r *Router) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.epoch
}

// Shards returns the current ring's shard addresses.
func (r *Router) Shards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ring.addrs...)
}

// Standby reports whether the router is refusing ingest as a standby.
func (r *Router) Standby() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.standby
}

// Promote flips a standby router active: it starts accepting ingest with
// whatever topology and placements replication has delivered.
func (r *Router) Promote() {
	r.mu.Lock()
	was := r.standby
	r.standby = false
	epoch := r.ring.epoch
	r.mu.Unlock()
	if was {
		r.cfg.Logf("router: promoted to active at epoch %d", epoch)
	}
}

// State snapshots the router's full durable state.
func (r *Router) State() *checkpoint.RouterState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stateLocked()
}

func (r *Router) stateLocked() *checkpoint.RouterState {
	st := &checkpoint.RouterState{
		Epoch:  r.ring.epoch,
		Shards: append([]string(nil), r.ring.addrs...),
		Routes: make(map[string]string, len(r.routes)),
	}
	for s, sh := range r.routes {
		st.Routes[s] = sh
	}
	return st
}

// persistLocked writes the current state to StatePath. Callers hold r.mu;
// persistence failures are logged, not fatal — the in-memory state is
// still authoritative, only crash recovery degrades.
func (r *Router) persistLocked() {
	if r.cfg.StatePath == "" {
		return
	}
	if err := checkpoint.SaveRouterTable(r.cfg.StatePath, r.stateLocked()); err != nil {
		r.cfg.Logf("router: persist state table: %v", err)
	}
}

// replicate pushes the current state to every peer, in snapshot order
// (repMu serializes concurrent replications). Push failures are logged:
// a dead standby re-syncs by pulling at restart.
func (r *Router) replicate() {
	if len(r.cfg.Peers) == 0 {
		return
	}
	r.repMu.Lock()
	defer r.repMu.Unlock()
	st := r.State()
	for _, peer := range r.cfg.Peers {
		if err := AdminPushTable(peer, st, r.cfg.DialTimeout); err != nil {
			r.cfg.Logf("router: replicate to %s: %v", peer, err)
		}
	}
}

// SyncPeers replicates synchronously — the deterministic flush an
// orchestrator runs before declaring a reconfiguration complete, so a
// live standby is promotable the moment the change lands. An
// unreachable peer is logged and skipped, not failed: a dead standby
// must never veto a resize, and it re-syncs by pulling at restart. The
// one reported failure is a peer that answered and refused the table as
// stale — that means a second router holds a newer ring than this one,
// and the orchestrator is about to split the brain.
func (r *Router) SyncPeers() error {
	if len(r.cfg.Peers) == 0 {
		return nil
	}
	r.repMu.Lock()
	defer r.repMu.Unlock()
	st := r.State()
	var first error
	for _, peer := range r.cfg.Peers {
		err := AdminPushTable(peer, st, r.cfg.DialTimeout)
		if err == nil {
			continue
		}
		var stale *StaleEpochError
		if errors.As(err, &stale) {
			if first == nil {
				first = fmt.Errorf("serve: sync %s: %w", peer, err)
			}
			continue
		}
		r.cfg.Logf("router: sync %s: peer unreachable: %v", peer, err)
	}
	return first
}

// AddShard handles an admin add-shard command presented against epoch.
// With an orchestrator hook installed (local cluster) the hook owns the
// whole change, migration included; otherwise the ring is installed
// directly and existing placements are pinned where they live.
func (r *Router) AddShard(epoch uint64, addr string) (uint64, error) {
	if r.Standby() {
		return 0, fmt.Errorf("serve: standby router does not accept topology commands")
	}
	if r.cfg.OnAddShard != nil {
		return r.cfg.OnAddShard(epoch, addr)
	}
	return r.InstallAdd(epoch, addr)
}

// RemoveShard is AddShard's inverse.
func (r *Router) RemoveShard(epoch uint64, addr string) (uint64, error) {
	if r.Standby() {
		return 0, fmt.Errorf("serve: standby router does not accept topology commands")
	}
	if r.cfg.OnRemoveShard != nil {
		return r.cfg.OnRemoveShard(epoch, addr)
	}
	return r.InstallRemove(epoch, addr)
}

// InstallAdd compare-and-swaps the ring: it must still be at epoch, or
// the command is refused with a *StaleEpochError — a duplicate of an
// applied command always lands here, which is what makes admin retries
// safe. On success the new ring (epoch+1) is installed, persisted, and
// replicated, and the new epoch returned.
func (r *Router) InstallAdd(epoch uint64, addr string) (uint64, error) {
	r.mu.Lock()
	if epoch != r.ring.epoch {
		se := &StaleEpochError{Have: r.ring.epoch, Got: epoch}
		r.mu.Unlock()
		return se.Have, se
	}
	ng, err := r.ring.add(addr)
	if err != nil {
		r.mu.Unlock()
		return epoch, err
	}
	r.installLocked(ng)
	r.mu.Unlock()
	r.cfg.Logf("router: epoch %d: added shard %s", ng.epoch, addr)
	r.replicate()
	return ng.epoch, nil
}

// InstallRemove is InstallAdd for shard removal.
func (r *Router) InstallRemove(epoch uint64, addr string) (uint64, error) {
	r.mu.Lock()
	if epoch != r.ring.epoch {
		se := &StaleEpochError{Have: r.ring.epoch, Got: epoch}
		r.mu.Unlock()
		return se.Have, se
	}
	ng, err := r.ring.remove(addr)
	if err != nil {
		r.mu.Unlock()
		return epoch, err
	}
	r.installLocked(ng)
	r.mu.Unlock()
	r.cfg.Logf("router: epoch %d: removed shard %s", ng.epoch, addr)
	r.replicate()
	return ng.epoch, nil
}

// installLocked swaps in a new ring. Health tracking follows the shard
// set, and every known placement is reconciled against the new topology:
// a session whose shard survived stays exactly where its durable cursor
// lives (pinned off-primary if the ring now disagrees), while placements
// on a departed shard are dropped — those sessions are the orchestrator's
// to migrate and Repoint. Callers hold r.mu.
func (r *Router) installLocked(ng *ring) {
	old := r.ring
	r.ring = ng
	have := make(map[string]bool, len(ng.addrs))
	for _, a := range ng.addrs {
		have[a] = true
	}
	for _, a := range ng.addrs {
		if !old.contains(a) {
			r.health.addShard(a)
		}
	}
	for _, a := range old.addrs {
		if !have[a] {
			r.health.removeShard(a)
		}
	}
	for s, a := range r.placements {
		switch {
		case !have[a]:
			delete(r.placements, s)
			delete(r.routes, s)
		case ng.primary(s) == a:
			delete(r.routes, s)
		default:
			r.routes[s] = a
		}
	}
	for s, a := range r.routes {
		if !have[a] || ng.primary(s) == a {
			delete(r.routes, s)
		}
	}
	r.persistLocked()
}

// ApplyTable installs a replicated full state: ring, routes, placements.
// A table older than the local epoch is refused with *StaleEpochError —
// the stale-replica guard. Equal epochs apply (routes evolve within an
// epoch); the legacy epoch-0 form carries no topology and is not
// applicable.
func (r *Router) ApplyTable(st *checkpoint.RouterState) error {
	if st.Epoch == 0 {
		return fmt.Errorf("serve: cannot apply a legacy epoch-0 table")
	}
	ng, err := newRingAt(st.Epoch, st.Shards)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if st.Epoch < r.ring.epoch {
		se := &StaleEpochError{Have: r.ring.epoch, Got: st.Epoch}
		r.mu.Unlock()
		return se
	}
	old := r.ring
	r.ring = ng
	for _, a := range ng.addrs {
		if !old.contains(a) {
			r.health.addShard(a)
		}
	}
	for _, a := range old.addrs {
		if !ng.contains(a) {
			r.health.removeShard(a)
		}
	}
	r.routes = make(map[string]string, len(st.Routes))
	r.placements = make(map[string]string, len(st.Routes))
	for s, sh := range st.Routes {
		r.routes[s] = sh
		r.placements[s] = sh
	}
	r.persistLocked()
	r.mu.Unlock()
	return nil
}

// Hold refuses the session's new connections with Retry until Release.
// The orchestrator holds a session before its handoff starts so a client
// reconnect cannot race the migration into creating fresh state on a
// shard that is about to stop owning it.
func (r *Router) Hold(session string) {
	r.mu.Lock()
	r.held[session] = true
	r.mu.Unlock()
}

// Release lifts a Hold.
func (r *Router) Release(session string) {
	r.mu.Lock()
	delete(r.held, session)
	r.mu.Unlock()
}

// Repoint pins a migrated session to its new owner, durably and on every
// replica, so the next reconnect lands on the shard that now holds its
// cursor. Call between the destination's Adopt and the Release.
func (r *Router) Repoint(session, addr string) {
	r.mu.Lock()
	r.placements[session] = addr
	if r.ring.primary(session) == addr {
		delete(r.routes, session)
	} else {
		r.routes[session] = addr
	}
	r.persistLocked()
	r.mu.Unlock()
	r.replicate()
}

// Serve accepts and routes connections until the listener closes.
func (r *Router) Serve() error {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			r.mu.Lock()
			closing := r.draining || r.killed
			r.mu.Unlock()
			if closing {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		r.mu.Lock()
		if r.draining || r.killed {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.route(conn)
		}()
	}
}

// Shutdown stops accepting and waits for in-flight connections to finish
// their splices, force-closing them when ctx expires.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.draining || r.killed {
		r.mu.Unlock()
		return nil
	}
	r.draining = true
	adminLn := r.adminLn
	r.mu.Unlock()
	r.ln.Close()
	if adminLn != nil {
		adminLn.Close()
	}
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		r.closeConns()
		<-done
		err = ctx.Err()
	}
	r.health.stop()
	return err
}

// Kill simulates a router crash: listeners and all spliced connections
// close immediately. The state table survives only as far as StatePath
// made it durable — which is the point of StatePath.
func (r *Router) Kill() {
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		return
	}
	r.killed = true
	close(r.killCh)
	adminLn := r.adminLn
	r.mu.Unlock()
	r.ln.Close()
	if adminLn != nil {
		adminLn.Close()
	}
	r.closeConns()
	r.wg.Wait()
	r.health.stop()
}

func (r *Router) closeConns() {
	r.mu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
}

func (r *Router) dropConn(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
	conn.Close()
}

// candidates returns the shard addresses to try for a session, in order:
// its pinned reroute first (if still live), then its ring order with Down
// shards filtered out.
func (r *Router) candidates(session string) []string {
	var out []string
	seen := make(map[string]bool)
	r.mu.Lock()
	pinned, hasPin := r.routes[session]
	order := r.ring.order(session)
	addrs := r.ring.addrs
	r.mu.Unlock()
	if hasPin && r.health.up(pinned) {
		out = append(out, pinned)
		seen[pinned] = true
	}
	for _, i := range order {
		a := addrs[i]
		if !seen[a] && r.health.up(a) {
			out = append(out, a)
			seen[a] = true
		}
	}
	return out
}

// commit records where a session actually landed. Off-primary placements
// are pinned (and persisted); a session back on its primary drops its pin.
// Every landing updates the placements map — the knowledge a future ring
// change uses to keep live sessions with their cursors.
func (r *Router) commit(session, addr string) {
	r.mu.Lock()
	r.placements[session] = addr
	primary := r.ring.primary(session)
	prev, had := r.routes[session]
	changed := false
	switch {
	case addr == primary && had:
		delete(r.routes, session)
		changed = true
	case addr != primary && (!had || prev != addr):
		r.routes[session] = addr
		changed = true
	}
	if changed {
		r.persistLocked()
	}
	r.mu.Unlock()
	if changed {
		r.replicate()
	}
}

// refuse answers the client with Retry, propagating the named shard's own
// most recent retry-after hint when one is known and falling back to the
// router's configured hint only when the shard has never supplied one.
// A non-empty redirect carries the address the client should try instead
// (the standby → active redirect).
func (r *Router) refuse(conn net.Conn, bw *bufio.Writer, shard, redirect string) {
	hint := time.Duration(0)
	if shard != "" {
		hint = r.health.retryHint(shard)
	}
	if hint <= 0 {
		hint = r.cfg.RetryAfter
	}
	conn.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
	writeMsg(bw, MsgRetry, encodeRetry(uint64(hint.Milliseconds()), redirect))
	bw.Flush()
}

// route handles one client connection end to end.
func (r *Router) route(client net.Conn) {
	defer r.dropConn(client)
	br := bufio.NewReader(client)
	bw := bufio.NewWriter(client)

	// The routing path: the only bytes the router interprets.
	client.SetReadDeadline(time.Now().Add(r.cfg.HelloTimeout))
	if err := readPreamble(br); err != nil {
		return
	}
	mt, rawHello, body, err := readRawMsg(br)
	if err != nil || mt != MsgHello {
		return
	}
	hello, err := decodeHello(body)
	if err != nil {
		client.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
		writeMsg(bw, MsgErr, []byte(err.Error()))
		bw.Flush()
		return
	}

	r.mu.Lock()
	standby, held := r.standby, r.held[hello.SessionID]
	activeHint := r.cfg.ActiveAddr
	r.mu.Unlock()
	if standby {
		r.cfg.Logf("session %s: refused by standby (active %s)", hello.SessionID, activeHint)
		r.refuse(client, bw, "", activeHint)
		return
	}
	if held {
		r.cfg.Logf("session %s: held for migration", hello.SessionID)
		r.refuse(client, bw, "", "")
		return
	}

	cands := r.candidates(hello.SessionID)
	if len(cands) == 0 {
		r.cfg.Logf("session %s: no live shard", hello.SessionID)
		r.refuse(client, bw, r.primaryOf(hello.SessionID), "")
		return
	}
	for _, addr := range cands {
		if r.routeTo(client, br, bw, hello.SessionID, rawHello, addr) {
			return
		}
		// Typed failure reaching addr: it is marked down; fall through to
		// the next candidate with the same Hello.
	}
	r.cfg.Logf("session %s: every candidate shard failed", hello.SessionID)
	r.refuse(client, bw, cands[0], "")
}

func (r *Router) primaryOf(session string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.primary(session)
}

// routeTo attempts to hand the connection to one shard. It returns true
// when the client's connection is settled (spliced to completion, or
// answered with the shard's own Retry/Err); false when the shard failed
// before its first reply, in which case it has been marked down and the
// caller may try the next candidate.
func (r *Router) routeTo(client net.Conn, cbr *bufio.Reader, cbw *bufio.Writer, session string, rawHello []byte, addr string) bool {
	shard, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
	if err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		shard.Close()
		return true
	}
	r.conns[shard] = struct{}{}
	r.mu.Unlock()
	defer r.dropConn(shard)

	sbw := bufio.NewWriter(shard)
	sbr := bufio.NewReader(shard)
	shard.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
	if _, err := sbw.WriteString(ProtoMagic); err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	if _, err := sbw.Write(rawHello); err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	if err := sbw.Flush(); err != nil {
		r.health.markFailure(addr, err)
		return false
	}

	// The shard's verdict: relay it verbatim, but remember a Retry's
	// hint — it is the shard's own admission control speaking, and the
	// router reuses it when it must refuse on the shard's behalf later.
	shard.SetReadDeadline(time.Now().Add(r.cfg.HelloTimeout))
	mt, raw, body, err := readRawMsg(sbr)
	if err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	if mt == MsgRetry {
		if ms, _, perr := decodeRetry(body); perr == nil {
			r.health.noteRetryHint(addr, time.Duration(ms)*time.Millisecond)
		}
	}
	client.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
	if _, err := cbw.Write(raw); err != nil {
		return true // client side failed; nothing to hold against the shard
	}
	if err := cbw.Flush(); err != nil {
		return true
	}
	if mt != MsgWelcome {
		// Retry or Err: the shard settled the connection itself.
		return true
	}
	r.commit(session, addr)
	r.cfg.Logf("session %s: routed to %s", session, addr)
	r.splice(client, cbr, cbw, shard, sbr, sbw)
	return true
}

// splice relays bytes verbatim in both directions until either side
// closes. Deadlines are cleared: liveness is the endpoints' business (the
// shard enforces its IdleTimeout, the client its attempt timeouts), and a
// router-imposed cadence would add a third clock that can only misfire.
func (r *Router) splice(client net.Conn, cbr *bufio.Reader, cbw *bufio.Writer, shard net.Conn, sbr *bufio.Reader, sbw *bufio.Writer) {
	client.SetDeadline(time.Time{})
	shard.SetDeadline(time.Time{})
	var wg sync.WaitGroup
	wg.Add(2)
	relay := func(dst *bufio.Writer, dstConn net.Conn, src *bufio.Reader) {
		defer wg.Done()
		buf := make([]byte, 32<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
				if werr := dst.Flush(); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		// Half-close toward the destination so its reader sees EOF once
		// the in-flight bytes land; full close if the conn cannot.
		if tc, ok := dstConn.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			dstConn.Close()
		}
	}
	go relay(sbw, shard, cbr)
	go relay(cbw, client, sbr)
	wg.Wait()
}
