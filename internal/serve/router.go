package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"ormprof/internal/checkpoint"
)

// RouterConfig configures a Router. Zero values select the documented
// defaults.
type RouterConfig struct {
	// Shards is the backend shard address list (required, unique,
	// non-empty). Ring assignment is a pure function of this list, so
	// every router replica given the same list routes identically.
	Shards []string

	// StatePath, when set, persists the session→shard reroute table
	// (ORMRTAB, see internal/checkpoint) so a restarted router keeps
	// sending a failed-over session to the shard that holds its durable
	// cursor instead of bouncing it back to a recovered primary.
	StatePath string

	// RetryAfter is the backoff hint the router sends when it must refuse
	// a connection itself (no live shard reachable) and the target shard
	// has never supplied its own hint. Default DefaultRetryAfter. When the
	// shard HAS told the router its retry-after — in a Retry the router
	// relayed earlier — that hint is propagated instead of this one.
	RetryAfter time.Duration
	// DialTimeout bounds each backend dial. Default 2s.
	DialTimeout time.Duration
	// HelloTimeout bounds reading the client's preamble+Hello and the
	// shard's first reply. Default 10s.
	HelloTimeout time.Duration

	// ProbeBackoffBase, ProbeBackoffMax, and ProbeJitterSeed shape the
	// down-shard probe schedule (ormpush's backoff machinery, reused).
	// Defaults 100ms, 2s, seed 1.
	ProbeBackoffBase time.Duration
	ProbeBackoffMax  time.Duration
	ProbeJitterSeed  int64

	// Logf, when set, receives one line per routing event.
	Logf func(format string, args ...any)
}

func (c *RouterConfig) withDefaults() RouterConfig {
	out := *c
	if out.RetryAfter <= 0 {
		out.RetryAfter = DefaultRetryAfter
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 2 * time.Second
	}
	if out.HelloTimeout <= 0 {
		out.HelloTimeout = 10 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Router is the cluster's ingest tier: it terminates nothing. Each client
// connection's preamble and Hello are parsed once — only to learn the
// session ID — then forwarded byte-for-byte to the shard the consistent-
// hash ring (or the reroute table) names, and from there the connection
// is a verbatim bidirectional splice: the shard speaks ORMP/1 to the
// client exactly as if it were listening itself. All session state,
// checkpointing, and acknowledgement semantics stay in the shard, so
// Ack == durable holds end-to-end through the router unchanged.
//
// Failover: a typed failure reaching a shard (dial error, death before
// its first reply) marks it Down; sessions whose shard is Down are routed
// to the next live shard in their ring order and the reroute is recorded
// (and persisted when StatePath is set). Down shards are probed back to
// Up on a capped exponential backoff with seeded jitter. A shard that is
// merely slow, or answering Retry, is never marked Down.
type Router struct {
	cfg    RouterConfig
	ln     net.Listener
	ring   *ring
	health *health

	mu       sync.Mutex
	routes   map[string]string // session → shard, only when off-primary
	conns    map[net.Conn]struct{}
	draining bool
	killed   bool
	killCh   chan struct{}

	wg sync.WaitGroup
}

// NewRouter creates a Router listening on ln, routing to cfg.Shards. With
// cfg.StatePath set, a readable reroute table is loaded; a corrupt table
// is discarded (primary routing is always safe) with a log line.
func NewRouter(ln net.Listener, cfg RouterConfig) (*Router, error) {
	c := cfg.withDefaults()
	rg, err := newRing(c.Shards)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:    c,
		ln:     ln,
		ring:   rg,
		routes: make(map[string]string),
		conns:  make(map[net.Conn]struct{}),
		killCh: make(chan struct{}),
	}
	r.health = newHealth(c.Shards, healthConfig{
		probeBase:   c.ProbeBackoffBase,
		probeMax:    c.ProbeBackoffMax,
		probeJitter: c.ProbeJitterSeed,
		dialTimeout: c.DialTimeout,
		logf:        c.Logf,
	})
	if c.StatePath != "" {
		routes, err := checkpoint.LoadRouterTable(c.StatePath)
		switch {
		case err == nil:
			valid := make(map[string]bool, len(c.Shards))
			for _, a := range c.Shards {
				valid[a] = true
			}
			for s, sh := range routes {
				if valid[sh] {
					r.routes[s] = sh
				}
			}
			c.Logf("router: restored %d reroute(s)", len(r.routes))
		case errors.Is(err, os.ErrNotExist):
		case checkpoint.IsCorrupt(err):
			c.Logf("router: discarding corrupt reroute table: %v", err)
		default:
			return nil, fmt.Errorf("serve: router state: %w", err)
		}
	}
	r.health.start()
	return r, nil
}

// Addr returns the listener address.
func (r *Router) Addr() net.Addr { return r.ln.Addr() }

// Serve accepts and routes connections until the listener closes.
func (r *Router) Serve() error {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			r.mu.Lock()
			closing := r.draining || r.killed
			r.mu.Unlock()
			if closing {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		r.mu.Lock()
		if r.draining || r.killed {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.route(conn)
		}()
	}
}

// Shutdown stops accepting and waits for in-flight connections to finish
// their splices, force-closing them when ctx expires.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.draining || r.killed {
		r.mu.Unlock()
		return nil
	}
	r.draining = true
	r.mu.Unlock()
	r.ln.Close()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		r.closeConns()
		<-done
		err = ctx.Err()
	}
	r.health.stop()
	return err
}

// Kill simulates a router crash: listener and all spliced connections
// close immediately. The reroute table survives only as far as StatePath
// made it durable — which is the point of StatePath.
func (r *Router) Kill() {
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		return
	}
	r.killed = true
	close(r.killCh)
	r.mu.Unlock()
	r.ln.Close()
	r.closeConns()
	r.wg.Wait()
	r.health.stop()
}

func (r *Router) closeConns() {
	r.mu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
}

func (r *Router) dropConn(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
	conn.Close()
}

// candidates returns the shard addresses to try for a session, in order:
// its pinned reroute first (if still live), then its ring order with Down
// shards filtered out.
func (r *Router) candidates(session string) []string {
	var out []string
	seen := make(map[string]bool)
	r.mu.Lock()
	pinned, hasPin := r.routes[session]
	r.mu.Unlock()
	if hasPin && r.health.up(pinned) {
		out = append(out, pinned)
		seen[pinned] = true
	}
	for _, i := range r.ring.order(session) {
		a := r.ring.addrs[i]
		if !seen[a] && r.health.up(a) {
			out = append(out, a)
			seen[a] = true
		}
	}
	return out
}

// commit records where a session actually landed. Off-primary placements
// are pinned (and persisted); a session back on its primary drops its pin.
func (r *Router) commit(session, addr string) {
	primary := r.ring.primary(session)
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, had := r.routes[session]
	switch {
	case addr == primary && had:
		delete(r.routes, session)
	case addr != primary && (!had || prev != addr):
		r.routes[session] = addr
	default:
		return
	}
	if r.cfg.StatePath != "" {
		if err := checkpoint.SaveRouterTable(r.cfg.StatePath, r.routes); err != nil {
			r.cfg.Logf("router: persist reroute table: %v", err)
		}
	}
}

// refuse answers the client with Retry, propagating the named shard's own
// most recent retry-after hint when one is known and falling back to the
// router's configured hint only when the shard has never supplied one.
func (r *Router) refuse(conn net.Conn, bw *bufio.Writer, shard string) {
	hint := time.Duration(0)
	if shard != "" {
		hint = r.health.retryHint(shard)
	}
	if hint <= 0 {
		hint = r.cfg.RetryAfter
	}
	conn.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
	writeMsg(bw, MsgRetry, uvarintBody(uint64(hint.Milliseconds())))
	bw.Flush()
}

// route handles one client connection end to end.
func (r *Router) route(client net.Conn) {
	defer r.dropConn(client)
	br := bufio.NewReader(client)
	bw := bufio.NewWriter(client)

	// The routing path: the only bytes the router interprets.
	client.SetReadDeadline(time.Now().Add(r.cfg.HelloTimeout))
	if err := readPreamble(br); err != nil {
		return
	}
	mt, rawHello, body, err := readRawMsg(br)
	if err != nil || mt != MsgHello {
		return
	}
	hello, err := decodeHello(body)
	if err != nil {
		client.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
		writeMsg(bw, MsgErr, []byte(err.Error()))
		bw.Flush()
		return
	}

	cands := r.candidates(hello.SessionID)
	if len(cands) == 0 {
		r.cfg.Logf("session %s: no live shard", hello.SessionID)
		r.refuse(client, bw, r.ring.primary(hello.SessionID))
		return
	}
	for _, addr := range cands {
		if r.routeTo(client, br, bw, hello.SessionID, rawHello, addr) {
			return
		}
		// Typed failure reaching addr: it is marked down; fall through to
		// the next candidate with the same Hello.
	}
	r.cfg.Logf("session %s: every candidate shard failed", hello.SessionID)
	r.refuse(client, bw, cands[0])
}

// routeTo attempts to hand the connection to one shard. It returns true
// when the client's connection is settled (spliced to completion, or
// answered with the shard's own Retry/Err); false when the shard failed
// before its first reply, in which case it has been marked down and the
// caller may try the next candidate.
func (r *Router) routeTo(client net.Conn, cbr *bufio.Reader, cbw *bufio.Writer, session string, rawHello []byte, addr string) bool {
	shard, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
	if err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		shard.Close()
		return true
	}
	r.conns[shard] = struct{}{}
	r.mu.Unlock()
	defer r.dropConn(shard)

	sbw := bufio.NewWriter(shard)
	sbr := bufio.NewReader(shard)
	shard.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
	if _, err := sbw.WriteString(ProtoMagic); err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	if _, err := sbw.Write(rawHello); err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	if err := sbw.Flush(); err != nil {
		r.health.markFailure(addr, err)
		return false
	}

	// The shard's verdict: relay it verbatim, but remember a Retry's
	// hint — it is the shard's own admission control speaking, and the
	// router reuses it when it must refuse on the shard's behalf later.
	shard.SetReadDeadline(time.Now().Add(r.cfg.HelloTimeout))
	mt, raw, body, err := readRawMsg(sbr)
	if err != nil {
		r.health.markFailure(addr, err)
		return false
	}
	if mt == MsgRetry {
		if ms, perr := parseUvarintBody(mt, body); perr == nil {
			r.health.noteRetryHint(addr, time.Duration(ms)*time.Millisecond)
		}
	}
	client.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
	if _, err := cbw.Write(raw); err != nil {
		return true // client side failed; nothing to hold against the shard
	}
	if err := cbw.Flush(); err != nil {
		return true
	}
	if mt != MsgWelcome {
		// Retry or Err: the shard settled the connection itself.
		return true
	}
	r.commit(session, addr)
	r.cfg.Logf("session %s: routed to %s", session, addr)
	r.splice(client, cbr, cbw, shard, sbr, sbw)
	return true
}

// splice relays bytes verbatim in both directions until either side
// closes. Deadlines are cleared: liveness is the endpoints' business (the
// shard enforces its IdleTimeout, the client its attempt timeouts), and a
// router-imposed cadence would add a third clock that can only misfire.
func (r *Router) splice(client net.Conn, cbr *bufio.Reader, cbw *bufio.Writer, shard net.Conn, sbr *bufio.Reader, sbw *bufio.Writer) {
	client.SetDeadline(time.Time{})
	shard.SetDeadline(time.Time{})
	var wg sync.WaitGroup
	wg.Add(2)
	relay := func(dst *bufio.Writer, dstConn net.Conn, src *bufio.Reader) {
		defer wg.Done()
		buf := make([]byte, 32<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
				if werr := dst.Flush(); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		// Half-close toward the destination so its reader sees EOF once
		// the in-flight bytes land; full close if the conn cannot.
		if tc, ok := dstConn.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			dstConn.Close()
		}
	}
	go relay(sbw, shard, cbr)
	go relay(cbw, client, sbr)
	wg.Wait()
}
