package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is the cluster's consistent-hash ring: session IDs map to shard
// addresses through a fixed set of virtual points, so adding or removing
// one shard moves only ~1/N of the sessions and — just as important here —
// every router instance, restarted or not, computes the same assignment
// from nothing but the shard list. Determinism over cleverness: the hash
// is FNV-1a with a murmur-style avalanche finalizer (see fmix64), the
// points are "addr#replica", and ties cannot occur because point
// collisions are resolved by address order at build time.
//
// Rings are immutable and versioned: add/remove build a NEW ring with the
// epoch advanced by one. Every placement decision, admin command, and
// replicated table names the epoch it was computed against, so two
// routers can tell "same topology" from "same shards, different history"
// and a stale actor is refused instead of silently re-homing sessions.
type ring struct {
	epoch  uint64      // topology version; 1 for a fresh ring
	points []ringPoint // sorted by hash
	addrs  []string    // the distinct shard addresses, in given order
}

type ringPoint struct {
	hash uint64
	addr int // index into addrs
}

// ringReplicas is the virtual-node count per shard. 64 keeps the
// assignment spread within a few percent of even for single-digit shard
// counts without making ring construction measurable.
const ringReplicas = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is the MurmurHash3 avalanche finalizer. FNV-1a alone leaves the
// trailing bytes under-mixed: IDs that differ only in their last byte
// ("cl-a" vs "cl-f") hash within ~2^43 of each other — adjacent on a
// 2^64 ring — so a whole family of similarly-named sessions collapses
// onto one arc and one shard, and a newly added shard attracts that arc
// with probability 1/(n+1) instead of per-session independence. The
// finalizer makes every input bit flip ~half the output bits, restoring
// the even spread the virtual-node count is sized for.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newRing builds an epoch-1 ring over the given shard addresses.
// Addresses must be non-empty and unique.
func newRing(addrs []string) (*ring, error) { return newRingAt(1, addrs) }

// newRingAt builds a ring at an explicit epoch — used when reconstructing
// the topology a durable or replicated ORMRTAB table describes.
func newRingAt(epoch uint64, addrs []string) (*ring, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("serve: cluster needs at least one shard")
	}
	seen := make(map[string]bool, len(addrs))
	r := &ring{epoch: epoch, addrs: append([]string(nil), addrs...)}
	for i, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("serve: empty shard address")
		}
		if seen[a] {
			return nil, fmt.Errorf("serve: duplicate shard address %q", a)
		}
		seen[a] = true
		for rep := 0; rep < ringReplicas; rep++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", a, rep)), addr: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual points: break the tie by
		// address order so every build of the same list sorts identically.
		return r.points[i].addr < r.points[j].addr
	})
	return r, nil
}

// order returns the session's full failover order: every shard index,
// starting at the session's primary and continuing around the ring in
// successor order. The first entry is the primary; a router that finds it
// down tries the rest in sequence, so "which shard adopts an orphaned
// session" is as deterministic as the primary assignment itself.
func (r *ring) order(session string) []int {
	h := hash64(session)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, len(r.addrs))
	seen := make(map[int]bool, len(r.addrs))
	for i := 0; i < len(r.points) && len(out) < len(r.addrs); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}

// primary returns the session's home shard address.
func (r *ring) primary(session string) string {
	return r.addrs[r.order(session)[0]]
}

// contains reports whether addr is a shard of this ring.
func (r *ring) contains(addr string) bool {
	for _, a := range r.addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// add builds the successor ring with addr appended and the epoch advanced.
func (r *ring) add(addr string) (*ring, error) {
	if r.contains(addr) {
		return nil, fmt.Errorf("serve: shard %q already in ring", addr)
	}
	return newRingAt(r.epoch+1, append(append([]string(nil), r.addrs...), addr))
}

// remove builds the successor ring without addr, epoch advanced. The last
// shard cannot be removed: an empty ring has nowhere to put any session.
func (r *ring) remove(addr string) (*ring, error) {
	if !r.contains(addr) {
		return nil, fmt.Errorf("serve: shard %q not in ring", addr)
	}
	if len(r.addrs) == 1 {
		return nil, fmt.Errorf("serve: cannot remove the last shard %q", addr)
	}
	keep := make([]string, 0, len(r.addrs)-1)
	for _, a := range r.addrs {
		if a != addr {
			keep = append(keep, a)
		}
	}
	return newRingAt(r.epoch+1, keep)
}
