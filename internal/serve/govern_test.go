package serve

// Tests for resource governance in the daemon: per-session budgets that
// step a pipeline down the degradation ladder, deterministic global load
// shedding, admission rejection at the global watermark, ladder state in
// checkpoints, resilience to corrupt checkpoints on resume, and a fuzzer
// over the raw connection bytes.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ormprof/internal/checkpoint"
	"ormprof/internal/govern"
	"ormprof/internal/testutil"
)

// newBareServer builds a Server without running its accept loop, for
// tests that drive resolveSession/enforceGlobal directly.
func newBareServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	}
	if cfg.OutputDir == "" {
		cfg.OutputDir = filepath.Join(t.TempDir(), "out")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv, err := New(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// govReport reads and minimally parses a .govern artifact.
func govReport(t *testing.T, dir, workload string) (mode string, steps int, raw string) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, sanitizeName(workload)+".govern"))
	if err != nil {
		t.Fatalf("governance artifact: %v", err)
	}
	raw = string(b)
	for _, line := range strings.Split(raw, "\n") {
		if s, ok := strings.CutPrefix(line, "mode "); ok {
			mode = s
		}
		if s, ok := strings.CutPrefix(line, "steps "); ok {
			fmt.Sscanf(s, "%d", &steps)
		}
	}
	if mode == "" {
		t.Fatalf("no mode line in governance artifact:\n%s", raw)
	}
	return mode, steps, raw
}

// TestSessionBudgetDegrades: a session over its memory budget steps down
// the ladder instead of growing without bound; the push still completes,
// and the .govern artifact records which mode produced the output.
func TestSessionBudgetDegrades(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	ts := startServer(t, Config{SessionMemBudget: 16 << 10})
	stats, err := Push(t.Context(), ClientConfig{
		Addr: ts.addr, SessionID: "tight", Workload: "linkedlist", Sites: sites,
	}, frames)
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("acked %d of %d frames", stats.FramesAcked, len(frames))
	}
	ts.shutdown(t)

	mode, steps, raw := govReport(t, ts.outDir, "linkedlist")
	if mode == "full" || steps == 0 {
		t.Errorf("16K budget did not degrade the session:\n%s", raw)
	}
	// The full-profile artifacts exist exactly when the final rung still
	// runs a full pipeline (full or object-sampled).
	_, werr := os.Stat(filepath.Join(ts.outDir, "linkedlist.whomp"))
	fullLive := mode == "full" || mode == "object-sampled"
	if fullLive && werr != nil {
		t.Errorf("mode %s but no WHOMP artifact: %v", mode, werr)
	}
	if !fullLive && !errors.Is(werr, os.ErrNotExist) {
		t.Errorf("mode %s but WHOMP artifact present (err=%v)", mode, werr)
	}
}

// TestGlobalSheddingDeterministic: when the summed footprint crosses the
// global watermark, the heaviest session sheds first; ties break on the
// smaller session ID. Parked sessions step immediately; a session owned
// by a live connection is only flagged.
func TestGlobalSheddingDeterministic(t *testing.T) {
	_, sites, events := makeFrames(t, "linkedlist", 256)

	srv := newBareServer(t, Config{GlobalMemBudget: 1 << 40})
	sa, _ := srv.resolveSession(&Hello{SessionID: "a", Workload: "w", Sites: sites}, nil)
	sb, _ := srv.resolveSession(&Hello{SessionID: "b", Workload: "w", Sites: sites}, nil)
	sa.active, sb.active = false, false // parked
	sa.pl.applyFrame(events)            // heavy
	sb.pl.applyFrame(events[:64])       // light
	usedA, usedB := sa.pl.lad.Budget().Used(), sb.pl.lad.Budget().Used()
	if usedA <= usedB {
		t.Fatalf("test premise broken: usedA=%d usedB=%d", usedA, usedB)
	}
	srv.cfg.GlobalMemBudget = usedA + usedB // watermark is below current use
	srv.enforceGlobal(nil)
	if sa.pl.lad.Rung() == govern.RungFull {
		t.Error("heaviest session was not stepped down")
	}
	if sb.pl.lad.Rung() != govern.RungFull {
		t.Errorf("lighter session stepped to %s; only the heaviest should shed", sb.pl.lad.Rung())
	}

	// Equal footprints: the smaller session ID sheds, every time.
	srv2 := newBareServer(t, Config{GlobalMemBudget: 1 << 40})
	ta, _ := srv2.resolveSession(&Hello{SessionID: "a", Workload: "w", Sites: sites}, nil)
	tb, _ := srv2.resolveSession(&Hello{SessionID: "b", Workload: "w", Sites: sites}, nil)
	ta.active, tb.active = false, false
	ta.pl.applyFrame(events)
	tb.pl.applyFrame(events)
	ua, ub := ta.pl.lad.Budget().Used(), tb.pl.lad.Budget().Used()
	if ua != ub {
		t.Fatalf("identical inputs accounted differently: %d vs %d", ua, ub)
	}
	srv2.cfg.GlobalMemBudget = ua + ub
	srv2.enforceGlobal(nil)
	if ta.pl.lad.Rung() == govern.RungFull {
		t.Error("tie-break: session a (smaller ID) should shed first")
	}
	if tb.pl.lad.Rung() != govern.RungFull {
		t.Error("tie-break: session b should be untouched")
	}

	// An active session owned by another connection is flagged, not
	// stepped: only its own worker may touch the ladder.
	srv3 := newBareServer(t, Config{GlobalMemBudget: 1 << 40})
	oa, _ := srv3.resolveSession(&Hello{SessionID: "a", Workload: "w", Sites: sites}, nil)
	oa.pl.applyFrame(events) // heaviest, and active (resolveSession claimed it)
	srv3.cfg.GlobalMemBudget = oa.pl.lad.Budget().Used()
	srv3.enforceGlobal(nil)
	if oa.pl.lad.Rung() != govern.RungFull {
		t.Errorf("active session stepped to %s by another goroutine", oa.pl.lad.Rung())
	}
	if !oa.stepReq.Load() {
		t.Error("active session was not flagged for step-down at its next frame")
	}
}

// TestAdmissionRejectedOverGlobalWatermark: once the accounted footprint
// holds the global budget over its watermark even after shedding, new
// sessions get Retry instead of Welcome.
func TestAdmissionRejectedOverGlobalWatermark(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 128)
	ts := startServer(t, Config{GlobalMemBudget: 1, CheckpointEvery: 1, RetryAfter: 7 * time.Millisecond})
	defer ts.shutdown(t)

	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
	conn.Write([]byte(ProtoMagic))
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: "g1", Workload: "w", Sites: sites}))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgWelcome {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	writeMsg(bw, MsgFrame, encodeFrameMsg(0, frames[0]))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgAck {
		t.Fatalf("expected Ack after frame, got %v %v", mt, err)
	}

	// Even the counters floor accounts nonzero bytes, so a 1-byte global
	// budget stays over its watermark: the next session must be refused.
	conn2, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	br2, bw2 := bufio.NewReader(conn2), bufio.NewWriter(conn2)
	conn2.Write([]byte(ProtoMagic))
	writeMsg(bw2, MsgHello, encodeHello(&Hello{SessionID: "g2", Workload: "w"}))
	bw2.Flush()
	mt, body, err := readMsg(br2)
	if err != nil || mt != MsgRetry {
		t.Fatalf("over watermark: got %v %v, want Retry", mt, err)
	}
	if ms, err := parseUvarintBody(mt, body); err != nil || ms != 7 {
		t.Errorf("retry hint: got %d %v, want 7ms", ms, err)
	}
}

// TestLadderCheckpointRoundTrip: a checkpoint taken at every rung restores
// to the same rung with the same cursor, re-accounts its footprint, and
// renders byte-identical artifacts. Below the sampled rung the component
// snapshots must be absent — the ladder carries the whole session.
func TestLadderCheckpointRoundTrip(t *testing.T) {
	_, sites, events := makeFrames(t, "linkedlist", 256)
	for _, target := range []govern.Rung{
		govern.RungFull, govern.RungSampled, govern.RungSketchStride,
		govern.RungSketchCounters, govern.RungStrideOnly, govern.RungCounters,
	} {
		t.Run(target.String(), func(t *testing.T) {
			p := newPipeline("linkedlist", sites, 0, govern.NewBudget(0), sessionSeed("rt"), true, false)
			p.applyFrame(events[:1024])
			for p.lad.Rung().Rank() < target.Rank() {
				p.lad.ForceStep()
			}
			p.applyFrame(events[1024:])

			st, err := p.state("rt")
			if err != nil {
				t.Fatal(err)
			}
			hasComponents := st.Whomp != nil && st.WhompOMC != nil && st.Stride != nil
			if wantComponents := target.FullPipeline(); hasComponents != wantComponents {
				t.Errorf("rung %s: component snapshots present=%v, want %v", target, hasComponents, wantComponents)
			}
			if st.Ladder == nil {
				t.Fatal("checkpoint lost the ladder snapshot")
			}

			// Through the real on-disk format, not just the struct.
			dir := t.TempDir()
			path := checkpoint.PathFor(dir, "rt")
			if err := checkpoint.Save(path, st); err != nil {
				t.Fatal(err)
			}
			loaded, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			budget := govern.NewBudget(0)
			p2, err := pipelineFromState(loaded, 0, budget, true)
			if err != nil {
				t.Fatal(err)
			}
			if p2.lad.Rung() != target {
				t.Errorf("restored rung %s, want %s", p2.lad.Rung(), target)
			}
			if p2.framesApplied != p.framesApplied || p2.eventsApplied != p.eventsApplied {
				t.Errorf("cursor: got %d/%d, want %d/%d",
					p2.framesApplied, p2.eventsApplied, p.framesApplied, p.eventsApplied)
			}
			if p.lad.Budget().Used() > 0 && budget.Used() == 0 {
				t.Error("restored footprint was not re-accounted into the budget")
			}

			d1, d2 := t.TempDir(), t.TempDir()
			if err := p.writeProfiles(d1); err != nil {
				t.Fatal(err)
			}
			if err := p2.writeProfiles(d2); err != nil {
				t.Fatal(err)
			}
			compareDirs(t, d1, d2)
		})
	}
}

// compareDirs asserts two artifact directories hold identical file sets
// with identical bytes.
func compareDirs(t *testing.T, d1, d2 string) {
	t.Helper()
	l1, err := os.ReadDir(d1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := os.ReadDir(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != len(l2) {
		t.Fatalf("artifact sets differ: %d vs %d files", len(l1), len(l2))
	}
	for _, e := range l1 {
		b1, err := os.ReadFile(filepath.Join(d1, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, e.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing from second run: %v", e.Name(), err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("artifact %s differs", e.Name())
		}
	}
}

// TestResumeSkipsCorruptCheckpoints: truncated and bit-flipped checkpoint
// files are reported (typed, per file), skipped, and do not stop the
// server from resuming healthy sessions or serving fresh ones.
func TestResumeSkipsCorruptCheckpoints(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, events := makeFrames(t, "linkedlist", 128)
	ckDir := t.TempDir()

	save := func(id string, n int) *checkpoint.State {
		p := newPipeline("linkedlist", sites, 0, nil, 0, false, false)
		p.applyFrame(events[:n])
		st, err := p.state(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkpoint.Save(checkpoint.PathFor(ckDir, id), st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	good := save("good", 512)
	save("trunc", 256)
	save("crcflip", 256)

	// Damage: cut the truncated one in half; flip a payload byte of the
	// other so its CRC no longer matches.
	truncPath := checkpoint.PathFor(ckDir, "trunc")
	b, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncPath, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	flipPath := checkpoint.PathFor(ckDir, "crcflip")
	b, err = os.ReadFile(flipPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(flipPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// The loader reports each damaged file with the typed CorruptError.
	states, skipped, err := checkpoint.LoadDir(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states["good"] == nil {
		t.Fatalf("LoadDir kept %d states, want only the healthy one", len(states))
	}
	if len(skipped) != 2 {
		t.Fatalf("LoadDir skipped %d files, want 2: %v", len(skipped), skipped)
	}
	for _, sk := range skipped {
		var ce *checkpoint.CorruptError
		if !errors.As(sk.Err, &ce) {
			t.Errorf("%s: skip reason %v is not a CorruptError", sk.Path, sk.Err)
		}
	}

	// The server resumes over the same directory: one log line per bad
	// file, healthy session resumed at its cursor, fresh sessions served.
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	ts := startServer(t, Config{
		CheckpointDir: ckDir, OutputDir: filepath.Join(t.TempDir(), "out"), Resume: true,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			fmt.Fprintf(&logBuf, format+"\n", args...)
			logMu.Unlock()
		},
	})
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	for _, path := range []string{truncPath, flipPath} {
		if !strings.Contains(logs, "skipping unusable checkpoint "+path) {
			t.Errorf("no skip report for %s in logs:\n%s", path, logs)
		}
	}

	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
	conn.Write([]byte(ProtoMagic))
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: "good", Workload: "linkedlist", Sites: sites}))
	bw.Flush()
	mt, body, err := readMsg(br)
	if err != nil || mt != MsgWelcome {
		t.Fatalf("resumed handshake: %v %v", mt, err)
	}
	if cur, err := parseUvarintBody(mt, body); err != nil || cur != good.FramesApplied {
		t.Errorf("resume cursor: got %d %v, want %d", cur, err, good.FramesApplied)
	}
	conn.Close()

	stats, err := Push(t.Context(), ClientConfig{
		Addr: ts.addr, SessionID: "fresh", Workload: "linkedlist", Sites: sites,
	}, frames)
	if err != nil {
		t.Fatalf("fresh session after corrupt resume: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("fresh session acked %d of %d", stats.FramesAcked, len(frames))
	}
	ts.shutdown(t)
}

// FuzzSession throws arbitrary bytes at a live server connection. The
// invariant is structural, not behavioral: the server never panics, never
// leaks the session goroutines, and always settles the connection.
func FuzzSession(f *testing.F) {
	frames, _, _ := makeFrames(f, "linkedlist", 256)
	hello := encodeHello(&Hello{SessionID: "fz", Workload: "w"})

	var valid bytes.Buffer
	valid.WriteString(ProtoMagic)
	writeMsg(&valid, MsgHello, hello)

	f.Add([]byte{})                             // nothing at all
	f.Add([]byte("GET / HTTP/1.1"))             // wrong protocol entirely
	f.Add([]byte("ORMP\x02"))                   // wrong version byte
	f.Add(valid.Bytes())                        // clean handshake, then EOF
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated Hello
	// Oversized length prefix: claims a body far beyond MaxBody.
	f.Add(append([]byte(ProtoMagic), byte(MsgHello), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	// Garbage after a valid frame.
	var g bytes.Buffer
	g.Write(valid.Bytes())
	writeMsg(&g, MsgFrame, encodeFrameMsg(0, frames[0]))
	g.WriteString("\xde\xad\xbe\xef not a message")
	f.Add(g.Bytes())
	// A frame whose payload is slashed mid-record.
	var h bytes.Buffer
	h.Write(valid.Bytes())
	writeMsg(&h, MsgFrame, encodeFrameMsg(0, frames[0][:len(frames[0])/2]))
	f.Add(h.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		testutil.LeakCheck(t)
		ts := startServer(t, Config{
			IdleTimeout: 250 * time.Millisecond, RetryAfter: time.Millisecond,
		})
		conn, err := net.Dial("tcp", ts.addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(data)
		// Drain whatever the server says until it hangs up; the read
		// deadline bounds the whole exchange.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		br := bufio.NewReader(conn)
		for {
			if _, _, err := readMsg(br); err != nil {
				break
			}
		}
		conn.Close()
		ts.shutdown(t)
	})
}
