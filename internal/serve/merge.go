package serve

import (
	"bufio"
	"fmt"
	"path/filepath"
	"sort"

	"ormprof/internal/checkpoint"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/stride"
)

// The cluster merge plane. Each shard writes every completed session's
// final durable state (ORMCKPT, <session>.final) before the session's
// Bye; the merge plane loads those states across all shards and combines
// them into one cluster-level report. Merging states rather than text
// profiles is what makes the result byte-identical regardless of shard
// count: a final state reconstructs the session's pipelines losslessly,
// sessions are processed in sorted-session-ID order, and every combining
// operation (leap.Merge, stride histogram addition) is deterministic
// under that order — so one shard or eight, kill/restart or clean run,
// the same set of completed sessions produces the same bytes.
//
// Cross-shard object-relative merging is exactly the paper's §1 claim in
// distributed form: streams keyed by (instruction, allocation-site
// group) combine across machines that never shared an address space.

// MergeError is the typed failure of the merge plane. The only
// structural failure is a session appearing in more than one shard's
// final directory: that can only happen if two shards both completed the
// same session, which breaks the disjoint-union premise and must not be
// papered over by picking one.
type MergeError struct {
	Session string
	DirA    string
	DirB    string
}

func (e *MergeError) Error() string {
	return fmt.Sprintf("serve: session %q completed on two shards (%s and %s)", e.Session, e.DirA, e.DirB)
}

// PartialReportError reports a merge that completed but skipped unusable
// final states: the report is correct for every session it covers, yet it
// does not cover everything the cluster ingested. ClusterReport itself
// still returns the stats with a nil error — the artifacts are written and
// usable — but a caller that must not conflate "complete" with "best
// effort" (ormpd -merge exits 2) builds this from ClusterStats.Skipped.
type PartialReportError struct {
	Skipped int
}

func (e *PartialReportError) Error() string {
	return fmt.Sprintf("serve: merge skipped %d unusable final state(s); report is partial", e.Skipped)
}

// ClusterStats summarizes one merge run.
type ClusterStats struct {
	Sessions int // final states merged
	Degraded int // sessions whose ladder ended below the sampled rung
	Approx   int // sessions that ended on a sketch rung (folded into cluster.approx)
	Skipped  int // unreadable/corrupt final files, logged and skipped
}

// sessionFinal is one loaded final state plus where it came from.
type sessionFinal struct {
	state *checkpoint.State
	dir   string
}

// ClusterReport merges the final session states found in dirs and writes
// the cluster report into outDir:
//
//	cluster.leap   — leap.Merge over every session's LEAP profile, in
//	                 sorted-session order (the ORMLEAP binary format)
//	cluster.stride — the merged lossless stride histograms against the
//	                 merged-LEAP estimate, via WriteStrideReport
//	cluster.whomp  — a deterministic per-session summary table (WHOMP
//	                 grammars are per-timeline and do not merge; the
//	                 per-session .whomp artifacts remain the real output)
//
// Corrupt or unreadable final files are skipped with a log line, exactly
// like resume treats damaged checkpoints; a session present in two dirs
// is a *MergeError. maxLMADs ≤ 0 selects the paper default.
func ClusterReport(dirs []string, outDir string, maxLMADs int, logf func(string, ...any)) (*ClusterStats, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	finals := make(map[string]sessionFinal)
	stats := &ClusterStats{}
	for _, dir := range dirs {
		states, skipped, err := checkpoint.LoadFinalDir(dir)
		if err != nil {
			return nil, fmt.Errorf("serve: merge: %w", err)
		}
		for _, sk := range skipped {
			stats.Skipped++
			logf("merge: skipping unusable final state %s: %v", sk.Path, sk.Err)
		}
		for id, st := range states {
			if prev, ok := finals[id]; ok {
				return nil, &MergeError{Session: id, DirA: prev.dir, DirB: dir}
			}
			finals[id] = sessionFinal{state: st, dir: dir}
		}
	}
	ids := make([]string, 0, len(finals))
	for id := range finals {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type row struct {
		id, workload, rung      string
		frames, events, records uint64
		objects, symbols        int
	}
	var (
		rows     []row
		lps      []*leap.Profile
		merged   = stride.NewIdeal()
		appStr   *govern.SketchStrideSnapshot
		appCtr   *govern.SketchCountersSnapshot
		approxed int
	)
	for _, id := range ids {
		st := finals[id].state
		pl, err := pipelineFromState(st, maxLMADs, govern.NewBudget(0), false)
		if err != nil {
			// Decoded but does not reconstruct: same contract as resume —
			// skip it rather than poison the whole report.
			stats.Skipped++
			logf("merge: session %s: final state unusable: %v", id, err)
			continue
		}
		stats.Sessions++
		r := row{
			id:       id,
			workload: st.Workload,
			rung:     pl.lad.Rung().String(),
			frames:   st.FramesApplied,
			events:   st.EventsApplied,
		}
		if m := pl.fullMode(); m != nil {
			wp, lp, ideal := m.profiles(st.Workload)
			r.records = wp.Records
			r.objects = wp.Objects.NumObjects()
			r.symbols = wp.Symbols()
			lps = append(lps, lp)
			merged.Merge(ideal)
		} else {
			stats.Degraded++
			// Sketch-rung sessions still contribute to the cluster report:
			// their fixed-memory summaries merge losslessly (count-min cells
			// add, bloom bits OR, top-K via the mergeable-summaries
			// construction) because every session hashes with the shared
			// DefaultSketchSeed. Folding in sorted-session order keeps the
			// artifact byte-identical at any shard count.
			if lsnap := pl.lad.Snapshot(); lsnap.Rung.Sketch() {
				if err := foldApprox(&appStr, &appCtr, lsnap); err != nil {
					stats.Sessions--
					stats.Degraded--
					stats.Skipped++
					logf("merge: session %s: sketch state unmergeable: %v", id, err)
					continue
				}
				stats.Approx++
				approxed++
			}
		}
		rows = append(rows, r)
	}

	mergedLeap := leap.Merge(lps...)
	if err := writeArtifact(filepath.Join(outDir, "cluster.leap"), func(w *bufio.Writer) error {
		_, err := mergedLeap.WriteTo(w)
		return err
	}); err != nil {
		return nil, fmt.Errorf("serve: merge: write cluster LEAP profile: %w", err)
	}
	if err := writeArtifact(filepath.Join(outDir, "cluster.stride"), func(w *bufio.Writer) error {
		return WriteStrideReport(w, merged.StronglyStrided(), stride.FromLEAP(mergedLeap))
	}); err != nil {
		return nil, fmt.Errorf("serve: merge: write cluster stride report: %w", err)
	}
	if approxed > 0 {
		if err := writeArtifact(filepath.Join(outDir, "cluster.approx"), func(w *bufio.Writer) error {
			return govern.WriteApproxReport(w, appStr, appCtr, approxed)
		}); err != nil {
			return nil, fmt.Errorf("serve: merge: write cluster approx report: %w", err)
		}
	}
	if err := writeArtifact(filepath.Join(outDir, "cluster.whomp"), func(w *bufio.Writer) error {
		fmt.Fprintf(w, "# cluster whomp summary\n")
		fmt.Fprintf(w, "sessions %d\n", len(rows))
		fmt.Fprintf(w, "skipped %d\n", stats.Skipped)
		for _, r := range rows {
			fmt.Fprintf(w, "session %s workload %s rung %s frames %d events %d records %d objects %d symbols %d\n",
				r.id, sanitizeName(r.workload), r.rung, r.frames, r.events, r.records, r.objects, r.symbols)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("serve: merge: write cluster whomp summary: %w", err)
	}
	return stats, nil
}

// foldApprox merges one session's sketch-rung ladder snapshot into the
// cluster accumulators. The first session of each sketch kind seeds its
// accumulator; later ones fold in via the snapshot Merge operations.
func foldApprox(appStr **govern.SketchStrideSnapshot, appCtr **govern.SketchCountersSnapshot, snap *govern.Snapshot) error {
	switch {
	case snap.SketchStride != nil:
		if *appStr == nil {
			*appStr = snap.SketchStride
			return nil
		}
		return (*appStr).Merge(snap.SketchStride)
	case snap.SketchCounters != nil:
		if *appCtr == nil {
			*appCtr = snap.SketchCounters
			return nil
		}
		return (*appCtr).Merge(snap.SketchCounters)
	default:
		return fmt.Errorf("sketch rung %s snapshot has no sketch state", snap.Rung)
	}
}
