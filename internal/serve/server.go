package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ormprof/internal/checkpoint"
	"ormprof/internal/govern"
	"ormprof/internal/trace"
)

// DefaultRetryAfter is the backoff hint carried by Retry responses when
// Config.RetryAfter is unset. It is a named constant rather than a magic
// number inside withDefaults because the router must know it too: when a
// router refuses on behalf of a shard that has never supplied its own
// hint, this is the shared fallback both tiers agree on.
const DefaultRetryAfter = 500 * time.Millisecond

// Config configures a Server. Zero values select the documented defaults.
type Config struct {
	// CheckpointDir is where session checkpoints live (required).
	CheckpointDir string
	// OutputDir is where finished profiles are written (required).
	OutputDir string
	// FinalDir, when set, receives each completed session's final durable
	// state (<session>.final, same ORMCKPT container as checkpoints)
	// before the Bye goes out. These per-session final states are what
	// the cluster merge plane consumes: unlike the text profiles, they
	// reconstruct losslessly, so a cluster of N shards merges to the same
	// bytes a single node would have produced.
	FinalDir string
	// Resume loads existing checkpoints from CheckpointDir at startup, so
	// returning clients continue from their durable cursor.
	Resume bool

	// MaxSessions bounds concurrently connected sessions; connections
	// beyond it receive Retry. Default 16.
	MaxSessions int
	// MaxQueuedBytes bounds the total bytes of queued-but-unapplied
	// frames across all sessions; new connections beyond it receive
	// Retry. Default 64 MiB.
	MaxQueuedBytes int64
	// QueueFrames is the per-session frame queue capacity. When the
	// queue is full the session's reader stops reading the socket, so a
	// slow pipeline back-pressures the sender through TCP instead of
	// buffering without bound. Default 8.
	QueueFrames int
	// CheckpointEvery checkpoints after this many frames. Default 32.
	CheckpointEvery int
	// CheckpointInterval forces a checkpoint this long after the first
	// unacknowledged frame, so a client waiting on its ack window never
	// deadlocks against the frame-count cadence. Default 1s.
	CheckpointInterval time.Duration
	// IdleTimeout bounds each read from a client; a stalled connection
	// is checkpointed and parked rather than held open forever.
	// Default 30s.
	IdleTimeout time.Duration
	// RetryAfter is the backoff hint carried by Retry responses.
	// Default DefaultRetryAfter.
	RetryAfter time.Duration
	// MaxLMADs is the LEAP descriptor budget (≤ 0 = paper default).
	MaxLMADs int
	// SessionMemBudget bounds each session's accounted profiling
	// footprint; over it the session's pipeline steps down the
	// degradation ladder (0 = unlimited).
	SessionMemBudget int64
	// GlobalMemBudget bounds the accounted footprint summed across all
	// sessions. Over its watermark, new sessions are rejected with Retry
	// and the heaviest live session is stepped down first — largest
	// accounted footprint, ties broken by smallest session ID, so the
	// shedding choice is deterministic (0 = unlimited).
	GlobalMemBudget int64
	// ParentBudget, when set, becomes the parent of this server's
	// accounting root, so a cluster-wide budget sees the footprint summed
	// across every shard while each shard keeps its own GlobalMemBudget.
	ParentBudget *govern.Budget
	// OverBudget, when set, is consulted alongside the local global
	// watermark: a true return rejects new sessions with Retry and trips
	// the same heaviest-first shedding as a local budget breach. The
	// cluster uses it to push a fleet-wide budget decision down into the
	// shard that should degrade.
	OverBudget func() bool
	// Approx starts every new session's ladder directly at the
	// sketch-stride rung (approximate profiling, the CLI's -approx)
	// instead of full profiling. Resumed sessions keep their
	// checkpointed rung regardless.
	Approx bool
	// Logf, when set, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxSessions <= 0 {
		out.MaxSessions = 16
	}
	if out.MaxQueuedBytes <= 0 {
		out.MaxQueuedBytes = 64 << 20
	}
	if out.QueueFrames <= 0 {
		out.QueueFrames = 8
	}
	if out.CheckpointEvery <= 0 {
		out.CheckpointEvery = 32
	}
	if out.CheckpointInterval <= 0 {
		out.CheckpointInterval = time.Second
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 30 * time.Second
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = DefaultRetryAfter
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// sessionState is one session's profiling state, active or parked. A
// session survives its connections: a dropped connection parks the
// state in memory, and a reconnect with the same session ID adopts it.
type sessionState struct {
	id     string
	pl     *pipeline
	acked  uint64   // durable cursor: FramesApplied at the last checkpoint
	dirty  bool     // frames applied since the last checkpoint
	active bool     // a connection currently owns this session
	conn   net.Conn // the owning connection while active (migration closes it)

	// parting is set (under the server mutex) just before the owning
	// handler writes its final park checkpoint, and released is closed
	// when the handler gives the session up. Together they make
	// parked-session adoption race-free: the checkpoint file is the
	// client's signal to reconnect, but it becomes visible while the old
	// handler still owns the session — a reconnect landing in that window
	// waits for the imminent release instead of bouncing with Retry.
	// A session that is active and NOT parting is a live duplicate and
	// still draws Retry.
	parting  bool
	released chan struct{}

	// stepReq asks the session's worker to step its ladder down at the
	// next frame boundary: global load shedding may not touch a ladder
	// owned by another goroutine directly.
	stepReq atomic.Bool

	// evbuf is the session's reusable frame-decode buffer. Only the
	// connection goroutine that owns the session touches it, and
	// applyFrame consumes the events synchronously, so one buffer per
	// session amortizes decode allocations to zero.
	evbuf []trace.Event
}

// Server is the ormpd ingestion service.
type Server struct {
	cfg Config
	ln  net.Listener

	mu        sync.Mutex
	sessions  map[string]*sessionState
	resumed   map[string]*checkpoint.State // disk checkpoints not yet adopted
	migrating map[string]bool              // sessions mid-handoff; reconnects draw Retry
	draining  bool
	drainCh   chan struct{} // closed when Shutdown begins
	killed    bool
	killCh    chan struct{} // closed by Kill
	conns     map[net.Conn]struct{}

	queuedBytes atomic.Int64
	wg          sync.WaitGroup

	// govRoot accounts the summed profiling footprint of every session.
	// Its own limit is 0 (pure accounting): the global trip is checked by
	// the server, which sheds the heaviest session deterministically,
	// rather than by whichever session happens to emit first.
	govRoot *govern.Budget
}

// New creates a Server listening on ln. With cfg.Resume it loads every
// readable checkpoint in cfg.CheckpointDir; corrupt checkpoints are
// skipped (those sessions restart from zero, which the protocol makes
// safe — the client simply re-sends everything).
func New(ln net.Listener, cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.CheckpointDir == "" || c.OutputDir == "" {
		return nil, fmt.Errorf("serve: CheckpointDir and OutputDir are required")
	}
	dirs := []string{c.CheckpointDir, c.OutputDir}
	if c.FinalDir != "" {
		dirs = append(dirs, c.FinalDir)
	}
	for _, dir := range dirs {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	govRoot := govern.NewBudget(0)
	if c.ParentBudget != nil {
		govRoot = c.ParentBudget.Sub(0)
	}
	s := &Server{
		cfg:       c,
		ln:        ln,
		sessions:  make(map[string]*sessionState),
		resumed:   make(map[string]*checkpoint.State),
		migrating: make(map[string]bool),
		drainCh:   make(chan struct{}),
		killCh:    make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		govRoot:   govRoot,
	}
	if c.Resume {
		states, skipped, err := checkpoint.LoadDir(c.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("serve: resume: %w", err)
		}
		for _, sk := range skipped {
			c.Logf("resume: skipping unusable checkpoint %s: %v", sk.Path, sk.Err)
		}
		s.resumed = states
		c.Logf("resume: loaded %d checkpoint(s)", len(states))
	}
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until the listener closes (via Shutdown or
// Kill). It returns nil on clean shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.draining || s.killed
			s.mu.Unlock()
			if closing {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.draining || s.killed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// governed reports whether any memory budget is configured. A parent
// budget counts: its watermark lives upstream, but it only works if the
// sessions here account their footprint into it.
func (s *Server) governed() bool {
	return s.cfg.SessionMemBudget > 0 || s.cfg.GlobalMemBudget > 0 ||
		s.cfg.ParentBudget != nil || s.cfg.OverBudget != nil
}

// globalOver reports whether the summed accounted footprint has reached
// the global budget's high watermark (limit minus one eighth, matching
// govern.Budget's margin), or an upstream budget decision (the cluster's
// OverBudget hook) says this shard should shed.
func (s *Server) globalOver() bool {
	if g := s.cfg.GlobalMemBudget; g > 0 && s.govRoot.Used() >= g-g/8 {
		return true
	}
	return s.cfg.OverBudget != nil && s.cfg.OverBudget()
}

// GovernedUsed reports the footprint currently accounted against this
// server's budget root (the number a cluster compares across shards).
func (s *Server) GovernedUsed() int64 { return s.govRoot.Used() }

// admit decides whether a new connection may start a session right now.
// A non-empty reason means the connection gets a Retry.
func (s *Server) admit() (ok bool, reason string) {
	if s.queuedBytes.Load() > s.cfg.MaxQueuedBytes {
		return false, "queued bytes over limit"
	}
	if s.globalOver() {
		return false, "global memory budget over watermark"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	active := 0
	for _, st := range s.sessions {
		if st.active {
			active++
		}
	}
	if active >= s.cfg.MaxSessions {
		return false, "session limit reached"
	}
	if s.draining {
		return false, "draining"
	}
	return true, ""
}

// enforceGlobal sheds load while the summed accounted footprint is over
// the global watermark: the heaviest session — largest accounted
// footprint, ties broken by smallest session ID — steps its ladder down
// first, so which session degrades is a deterministic property of the
// accounted state, not of goroutine timing. The calling session and
// parked sessions step immediately (nothing else owns their ladders);
// sessions owned by other connections are flagged and step at their next
// frame boundary.
func (s *Server) enforceGlobal(self *sessionState) {
	if s.cfg.GlobalMemBudget <= 0 && s.cfg.OverBudget == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	skip := make(map[*sessionState]bool)
	for s.globalOver() {
		var heaviest *sessionState
		for _, st := range s.sessions {
			if skip[st] {
				continue
			}
			if heaviest == nil || heavier(st, heaviest) {
				heaviest = st
			}
		}
		if heaviest == nil {
			return // everything is flagged or at the floor
		}
		if heaviest == self || !heaviest.active {
			if !heaviest.pl.lad.ForceStep() {
				skip[heaviest] = true // at the floor; nothing left to free
			} else {
				s.cfg.Logf("session %s: stepped down to %s (global budget)", heaviest.id, heaviest.pl.lad.Rung())
			}
			continue
		}
		heaviest.stepReq.Store(true)
		skip[heaviest] = true // it frees memory at its next frame, not now
	}
}

// heavier reports whether a should shed before b.
func heavier(a, b *sessionState) bool {
	au, bu := a.pl.lad.Budget().Used(), b.pl.lad.Budget().Used()
	if au != bu {
		return au > bu
	}
	return a.id < b.id
}

// claim marks st owned by conn. Callers hold s.mu.
func (st *sessionState) claim(conn net.Conn) {
	st.active, st.parting = true, false
	st.conn = conn
	st.released = make(chan struct{})
}

// resolveSession finds or creates the session state for a Hello,
// claiming it for this connection. It returns nil if the session is
// already owned by a live connection, or is mid-migration to another
// shard; if the owner is parting (winding down after its final
// checkpoint) it waits for the release and adopts, so a reconnect can
// never lose the park/adopt race.
func (s *Server) resolveSession(h *Hello, conn net.Conn) (*sessionState, error) {
	for {
		s.mu.Lock()
		if s.migrating[h.SessionID] {
			// The state is being handed to another shard; anything started
			// here would fork the session's history. Retry — by the time
			// the client is back, the router points at the new owner.
			s.mu.Unlock()
			return nil, nil
		}
		st, ok := s.sessions[h.SessionID]
		if !ok {
			break // new or resumed session; s.mu still held
		}
		if !st.active {
			st.claim(conn)
			s.mu.Unlock()
			return st, nil
		}
		if !st.parting {
			s.mu.Unlock()
			return nil, nil // live duplicate connection: Retry
		}
		ch := st.released
		s.mu.Unlock()
		select {
		case <-ch:
			// The old handler released; loop and claim.
		case <-s.killCh:
			return nil, nil
		case <-time.After(s.cfg.IdleTimeout):
			return nil, nil // park wedged (disk stall?); client backs off
		}
	}
	defer s.mu.Unlock()
	if ck, ok := s.resumed[h.SessionID]; ok {
		delete(s.resumed, h.SessionID)
		pl, err := pipelineFromState(ck, s.cfg.MaxLMADs, s.govRoot.Sub(s.cfg.SessionMemBudget), s.governed())
		if err != nil {
			// The checkpoint decoded but its state does not reconstruct:
			// treat it as unusable and restart the session from zero.
			s.cfg.Logf("session %s: checkpoint unusable (%v), starting fresh", h.SessionID, err)
		} else {
			st := &sessionState{id: h.SessionID, pl: pl, acked: ck.FramesApplied}
			st.claim(conn)
			s.sessions[h.SessionID] = st
			return st, nil
		}
	}
	st := &sessionState{
		id: h.SessionID,
		pl: newPipeline(h.Workload, h.Sites, s.cfg.MaxLMADs,
			s.govRoot.Sub(s.cfg.SessionMemBudget), sessionSeed(h.SessionID), s.governed(), s.cfg.Approx),
	}
	st.claim(conn)
	s.sessions[h.SessionID] = st
	return st, nil
}

// parting marks the session as winding down. It must be called before the
// final park checkpoint is written: once the checkpoint file is visible, a
// reconnect may race the release, and the flag routes it to the wait in
// resolveSession instead of a Retry bounce.
func (s *Server) markParting(st *sessionState) {
	s.mu.Lock()
	st.parting = true
	s.mu.Unlock()
}

// release parks a session after its connection ends and wakes any
// reconnect waiting to adopt it.
func (s *Server) release(st *sessionState) {
	s.mu.Lock()
	st.active, st.parting = false, false
	st.conn = nil
	close(st.released)
	s.mu.Unlock()
}

// complete removes a finished session and its checkpoint file, returning
// its accounted footprint to the global budget.
func (s *Server) complete(st *sessionState) {
	s.mu.Lock()
	delete(s.sessions, st.id)
	s.mu.Unlock()
	st.pl.release()
	os.Remove(checkpoint.PathFor(s.cfg.CheckpointDir, st.id))
}

// Shutdown stops accepting, then drains live sessions: each keeps
// applying frames until its client finishes or ctx expires, at which
// point it is checkpointed and its partial profiles are flushed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.drainCh)
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: sessions were told to wrap up when drainCh
		// closed; force the stragglers off the network.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	// Checkpoint and flush whatever state remains (parked sessions
	// included) so nothing collected is lost.
	s.mu.Lock()
	states := make([]*sessionState, 0, len(s.sessions))
	for _, st := range s.sessions {
		states = append(states, st)
	}
	s.mu.Unlock()
	for _, st := range states {
		if st.dirty {
			if ck, cerr := st.pl.state(st.id); cerr == nil {
				if serr := checkpoint.Save(checkpoint.PathFor(s.cfg.CheckpointDir, st.id), ck); serr == nil {
					st.acked = st.pl.framesApplied
					st.dirty = false
				}
			}
		}
		if werr := st.pl.writeProfiles(s.cfg.OutputDir); werr != nil {
			s.cfg.Logf("session %s: flush profiles: %v", st.id, werr)
		}
	}
	return err
}

// Kill simulates a crash (SIGKILL): the listener and every connection
// close immediately and all state that is not already durably
// checkpointed is discarded — no final checkpoint, no profile flush. It
// blocks until every session goroutine has exited, so tests can assert
// the absence of leaks before restarting.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	close(s.killCh)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	s.mu.Lock()
	s.sessions = make(map[string]*sessionState)
	s.resumed = make(map[string]*checkpoint.State)
	s.migrating = make(map[string]bool)
	s.mu.Unlock()
}

// readPreamble validates the 5-byte connection preamble.
func readPreamble(br *bufio.Reader) error {
	buf := make([]byte, len(ProtoMagic))
	if _, err := io.ReadFull(br, buf); err != nil {
		return protof("preamble: %v", err)
	}
	if string(buf) != ProtoMagic {
		return protof("bad preamble %x", buf)
	}
	return nil
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	if err := readPreamble(br); err != nil {
		return
	}
	mt, body, err := readMsg(br)
	if err != nil || mt != MsgHello {
		return
	}
	hello, err := decodeHello(body)
	if err != nil {
		writeMsg(bw, MsgErr, []byte(err.Error()))
		bw.Flush()
		return
	}
	retry := func() {
		writeMsg(bw, MsgRetry, uvarintBody(uint64(s.cfg.RetryAfter.Milliseconds())))
		bw.Flush()
	}
	if ok, reason := s.admit(); !ok {
		s.cfg.Logf("session %s: admission rejected (%s)", hello.SessionID, reason)
		retry()
		return
	}
	st, err := s.resolveSession(hello, conn)
	if err != nil {
		writeMsg(bw, MsgErr, []byte(err.Error()))
		bw.Flush()
		return
	}
	if st == nil {
		s.cfg.Logf("session %s: already connected", hello.SessionID)
		retry()
		return
	}
	defer s.release(st)
	s.cfg.Logf("session %s: connected, resuming at frame %d", st.id, st.pl.framesApplied)
	if err := writeMsg(bw, MsgWelcome, uvarintBody(st.pl.framesApplied)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.runSession(conn, br, bw, st)
}
