package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"ormprof/internal/trace"
)

// FrameSource supplies the frames to push, addressable by index so any
// suffix can be re-sent after a reconnect. A recorded trace and a
// deterministic simulation both satisfy this trivially.
type FrameSource interface {
	// NumFrames reports the total frame count.
	NumFrames() int
	// Frame returns frame i's encoded bytes (a standalone ORMTRACE-v3
	// frame, as produced by tracefmt.EncodeFrame).
	Frame(i int) ([]byte, error)
}

// SliceFrames is an in-memory FrameSource.
type SliceFrames [][]byte

func (s SliceFrames) NumFrames() int { return len(s) }

func (s SliceFrames) Frame(i int) ([]byte, error) {
	if i < 0 || i >= len(s) {
		return nil, fmt.Errorf("serve: frame %d out of range [0,%d)", i, len(s))
	}
	return s[i], nil
}

// ClientConfig configures Push. Zero values select the documented
// defaults.
type ClientConfig struct {
	// Addr is the server's TCP address (ignored when Dial is set).
	Addr string
	// Addrs is an optional address list for clusters with more than one
	// router: connection attempts rotate through it, so any one router
	// going down costs the client a single failed attempt, not the
	// stream. All routers over the same shard list route identically, so
	// which one answers never affects the profile. Ignored when Dial is
	// set; takes precedence over Addr.
	Addrs []string
	// Dial overrides connection establishment (fault-injection hook).
	Dial func(ctx context.Context) (net.Conn, error)

	// SessionID identifies this stream across reconnects (required).
	SessionID string
	// Workload and Sites are the trace metadata carried by Hello.
	Workload string
	Sites    map[trace.SiteID]string

	// AttemptTimeout bounds each network operation (dial, handshake
	// read, frame write, ack read). Default 10s.
	AttemptTimeout time.Duration
	// MaxAttempts is how many consecutive failed attempts Push tolerates
	// before giving up with an *ExhaustedError. Progress (an ack
	// advancing, or a session completing a handshake and accepting at
	// least one frame) resets the count. Default 8.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (base doubling per consecutive failure, capped at max,
	// with ±50% jitter). Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter; a fixed seed makes retry
	// schedules reproducible. Default 1.
	JitterSeed int64

	// Window bounds frames in flight beyond the last acknowledged
	// cursor; when full, the sender waits for acks. Default 64.
	Window int

	// Logf, when set, receives one line per connection attempt.
	Logf func(format string, args ...any)

	// redirect shares the most recent Retry redirect hint between the
	// push loop (which learns it — a standby router naming the active)
	// and the default dialer (which spends it, once).
	redirect *string
}

func (c *ClientConfig) withDefaults() ClientConfig {
	out := *c
	if out.AttemptTimeout <= 0 {
		out.AttemptTimeout = 10 * time.Second
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 8
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 50 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 2 * time.Second
	}
	if out.JitterSeed == 0 {
		out.JitterSeed = 1
	}
	if out.Window <= 0 {
		out.Window = 64
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	out.redirect = new(string)
	if out.Dial == nil {
		addrs := out.Addrs
		if len(addrs) == 0 {
			addrs = []string{out.Addr}
		}
		// Push dials from one goroutine, so a plain counter rotates the
		// address list deterministically across attempts. A pending
		// redirect hint (a standby router pointing at the active) takes
		// one attempt's slot and is consumed whether or not it works —
		// a bad hint must cost one attempt, not wedge the rotation.
		attempt := 0
		hint := out.redirect
		out.Dial = func(ctx context.Context) (net.Conn, error) {
			addr := addrs[attempt%len(addrs)]
			attempt++
			if h := *hint; h != "" {
				*hint = ""
				addr = h
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return out
}

// ClientStats summarizes a Push run.
type ClientStats struct {
	Attempts    int // connection attempts, including the successful ones
	Retries     int // attempts that failed or were told to retry
	FramesSent  int // frame messages written, including re-sends
	FramesAcked int // highest acknowledged cursor observed
}

// ExhaustedError is the typed failure Push returns when the retry
// budget runs out: the trace was NOT fully ingested, and the caller
// should degrade (exit code 2) rather than pretend success.
type ExhaustedError struct {
	Attempts int
	LastErr  error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("serve: gave up after %d attempts: %v", e.Attempts, e.LastErr)
}

func (e *ExhaustedError) Unwrap() error { return e.LastErr }

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffDelay computes the delay before attempt number fail (1-based):
// exponential growth from base, capped at max, with ±50% jitter drawn
// from rng. It is the one retry schedule in the service layer — the
// pushing client and the router's shard prober share it, so a seeded rng
// makes either side's whole retry history reproducible.
func backoffDelay(base, max time.Duration, rng *rand.Rand, fail int) time.Duration {
	d := base << (fail - 1)
	if d <= 0 || d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// Push streams every frame of src into the server, reconnecting and
// resuming from the last acknowledged frame until the stream completes
// or the retry budget is exhausted. It returns the stats either way.
func Push(ctx context.Context, cfg ClientConfig, src FrameSource) (ClientStats, error) {
	c := cfg.withDefaults()
	if c.SessionID == "" {
		return ClientStats{}, fmt.Errorf("serve: SessionID is required")
	}
	rng := rand.New(rand.NewSource(c.JitterSeed))
	var stats ClientStats
	var lastErr error
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if fails >= c.MaxAttempts {
			return stats, &ExhaustedError{Attempts: stats.Attempts, LastErr: lastErr}
		}
		if fails > 0 {
			if err := sleepCtx(ctx, backoffDelay(c.BackoffBase, c.BackoffMax, rng, fails)); err != nil {
				return stats, err
			}
		}
		stats.Attempts++
		done, progress, err := pushOnce(ctx, &c, src, &stats)
		if done {
			return stats, nil
		}
		stats.Retries++
		lastErr = err
		if progress {
			fails = 1
		} else {
			fails++
		}
		c.Logf("attempt %d: %v (acked %d/%d)", stats.Attempts, err, stats.FramesAcked, src.NumFrames())
	}
}

// errServerRetry marks a Retry response, handled like any other
// transient failure (backoff honors at least the server's hint).
var errServerRetry = errors.New("serve: server busy, retry later")

// pushOnce runs one connection attempt: handshake, stream from the
// server's cursor, Done, Bye. It reports whether the stream completed
// and whether the attempt made forward progress (for the retry budget).
func pushOnce(ctx context.Context, cfg *ClientConfig, src FrameSource, stats *ClientStats) (done, progress bool, err error) {
	dialCtx, cancel := context.WithTimeout(ctx, cfg.AttemptTimeout)
	conn, err := cfg.Dial(dialCtx)
	cancel()
	if err != nil {
		return false, false, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	deadline := func() { conn.SetDeadline(time.Now().Add(cfg.AttemptTimeout)) }

	// Preamble + Hello, then the server's verdict.
	deadline()
	if _, err := bw.WriteString(ProtoMagic); err != nil {
		return false, false, err
	}
	hello := &Hello{SessionID: cfg.SessionID, Workload: cfg.Workload, Sites: cfg.Sites}
	if err := writeMsg(bw, MsgHello, encodeHello(hello)); err != nil {
		return false, false, err
	}
	if err := bw.Flush(); err != nil {
		return false, false, err
	}
	deadline()
	mt, body, err := readMsg(br)
	if err != nil {
		return false, false, err
	}
	switch mt {
	case MsgWelcome:
	case MsgRetry:
		ms, redirect, perr := decodeRetry(body)
		if perr != nil {
			return false, false, perr
		}
		if redirect != "" {
			// A standby router naming the active: point the next dial there.
			cfg.Logf("redirected to %s", redirect)
			*cfg.redirect = redirect
		}
		wait := time.Duration(ms) * time.Millisecond
		if wait > 0 {
			if serr := sleepCtx(ctx, wait); serr != nil {
				return false, false, serr
			}
		}
		return false, false, errServerRetry
	case MsgErr:
		return false, false, fmt.Errorf("serve: server error: %s", body)
	default:
		return false, false, protof("expected Welcome, got %s", mt)
	}
	cursor, err := parseUvarintBody(mt, body)
	if err != nil {
		return false, false, err
	}
	total := uint64(src.NumFrames())
	if cursor > total {
		return false, false, protof("server cursor %d beyond stream end %d", cursor, total)
	}
	acked := cursor
	if int(acked) > stats.FramesAcked {
		stats.FramesAcked = int(acked)
	}

	// Ack reader: drains server messages concurrently so the send
	// window can move while frames are in flight.
	type ackResult struct {
		bye bool
		err error
	}
	acks := make(chan uint64, 16)
	ackDone := make(chan ackResult, 1)
	go func() {
		defer close(acks)
		for {
			conn.SetReadDeadline(time.Now().Add(cfg.AttemptTimeout))
			mt, body, err := readMsg(br)
			if err != nil {
				ackDone <- ackResult{err: err}
				return
			}
			switch mt {
			case MsgAck:
				v, err := parseUvarintBody(mt, body)
				if err != nil {
					ackDone <- ackResult{err: err}
					return
				}
				acks <- v
			case MsgBye:
				ackDone <- ackResult{bye: true}
				return
			case MsgErr:
				ackDone <- ackResult{err: fmt.Errorf("serve: server error: %s", body)}
				return
			default:
				ackDone <- ackResult{err: protof("unexpected %s from server", mt)}
				return
			}
		}
	}()
	fail := func(err error) (bool, bool, error) {
		conn.Close()
		for range acks {
		}
		madeProgress := uint64(stats.FramesAcked) > cursor
		return false, madeProgress, err
	}

	next := cursor
	for next < total {
		// Window control: wait for acks when too far ahead.
		for next-acked >= uint64(cfg.Window) {
			select {
			case <-ctx.Done():
				return fail(ctx.Err())
			case v, ok := <-acks:
				if !ok {
					res := <-ackDone
					return fail(res.err)
				}
				if v > acked {
					acked = v
					if int(acked) > stats.FramesAcked {
						stats.FramesAcked = int(acked)
					}
				}
			}
		}
		// Opportunistically drain acks without blocking.
		for {
			select {
			case v, ok := <-acks:
				if !ok {
					res := <-ackDone
					return fail(res.err)
				}
				if v > acked {
					acked = v
					if int(acked) > stats.FramesAcked {
						stats.FramesAcked = int(acked)
					}
				}
				continue
			default:
			}
			break
		}
		frame, ferr := src.Frame(int(next))
		if ferr != nil {
			return fail(ferr)
		}
		conn.SetWriteDeadline(time.Now().Add(cfg.AttemptTimeout))
		if err := writeMsg(bw, MsgFrame, encodeFrameMsg(next, frame)); err != nil {
			return fail(err)
		}
		if err := bw.Flush(); err != nil {
			return fail(err)
		}
		stats.FramesSent++
		next++
	}
	conn.SetWriteDeadline(time.Now().Add(cfg.AttemptTimeout))
	if err := writeMsg(bw, MsgDone, uvarintBody(total)); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	// Wait for Bye (acks may still arrive first).
	for {
		select {
		case <-ctx.Done():
			return fail(ctx.Err())
		case v, ok := <-acks:
			if !ok {
				res := <-ackDone
				if res.bye {
					stats.FramesAcked = int(total)
					return true, true, nil
				}
				return fail(res.err)
			}
			if v > acked {
				acked = v
				if int(acked) > stats.FramesAcked {
					stats.FramesAcked = int(acked)
				}
			}
		}
	}
}
