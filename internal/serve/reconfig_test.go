package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ormprof/internal/checkpoint"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
)

// TestRingEpochs: add/remove build successor rings with the epoch
// advanced, originals untouched, and degenerate changes refused.
func TestRingEpochs(t *testing.T) {
	r1, err := newRing([]string{"a:1", "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.epoch != 1 {
		t.Fatalf("fresh ring epoch = %d, want 1", r1.epoch)
	}
	r2, err := r1.add("c:1")
	if err != nil {
		t.Fatal(err)
	}
	if r2.epoch != 2 || !r2.contains("c:1") {
		t.Errorf("added ring: epoch %d contains(c)=%v", r2.epoch, r2.contains("c:1"))
	}
	if r1.epoch != 1 || r1.contains("c:1") {
		t.Errorf("original ring mutated by add")
	}
	r3, err := r2.remove("a:1")
	if err != nil {
		t.Fatal(err)
	}
	if r3.epoch != 3 || r3.contains("a:1") {
		t.Errorf("removed ring: epoch %d contains(a)=%v", r3.epoch, r3.contains("a:1"))
	}
	if _, err := r1.add("a:1"); err == nil {
		t.Error("adding an existing shard succeeded")
	}
	if _, err := r1.remove("x:1"); err == nil {
		t.Error("removing an unknown shard succeeded")
	}
	one, _ := newRing([]string{"solo:1"})
	if _, err := one.remove("solo:1"); err == nil {
		t.Error("removing the last shard succeeded")
	}
	// Consistent hashing: sessions not owned by the removed shard keep
	// their primary across the change.
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("s-%d", i)
		if p := r2.primary(s); p != "a:1" && r3.primary(s) != p {
			t.Fatalf("session %s moved from %s to %s though a:1 was removed", s, p, r3.primary(s))
		}
	}
}

// TestRetryRedirectWire: the Retry body's optional redirect address
// round-trips, and the bare form stays a single uvarint for old readers.
func TestRetryRedirectWire(t *testing.T) {
	for _, tc := range []struct {
		ms   uint64
		addr string
	}{{250, ""}, {0, "10.0.0.9:7417"}, {1000, "active:1"}} {
		ms, addr, err := decodeRetry(encodeRetry(tc.ms, tc.addr))
		if err != nil {
			t.Fatalf("decodeRetry(%d,%q): %v", tc.ms, tc.addr, err)
		}
		if ms != tc.ms || addr != tc.addr {
			t.Errorf("round trip (%d,%q) = (%d,%q)", tc.ms, tc.addr, ms, addr)
		}
	}
	if got := encodeRetry(250, ""); len(got) != len(uvarintBody(250)) {
		t.Errorf("bare Retry body grew to %d bytes", len(got))
	}
	if _, _, err := decodeRetry(append(encodeRetry(5, "a:1"), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, _, err := decodeRetry(nil); err == nil {
		t.Error("empty body accepted")
	}
}

// startAdmin attaches an admin listener to a running router and returns
// its address. The listener is owned by the router from here on —
// Shutdown/Kill close it.
func startAdmin(t *testing.T, r *Router) string {
	t.Helper()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.ServeAdmin(aln) }()
	t.Cleanup(func() {
		if err := <-done; err != nil {
			t.Errorf("admin serve: %v", err)
		}
	})
	return aln.Addr().String()
}

// TestAdminPlane: status, epoch-CAS add/remove, duplicate refusal, and
// push/pull over a live ORMA/1 connection.
func TestAdminPlane(t *testing.T) {
	testutil.LeakCheck(t)
	live := startServer(t, Config{})
	rh := startRouter(t, RouterConfig{Shards: []string{live.addr}})
	admin := startAdmin(t, rh.r)

	st, err := AdminFetchTable(admin, time.Second)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Epoch != 1 || len(st.Shards) != 1 || st.Shards[0] != live.addr {
		t.Fatalf("status = epoch %d shards %v", st.Epoch, st.Shards)
	}

	extra := deadAddr(t)
	// Wrong epoch first: refused with the typed error, nothing applied.
	var se *StaleEpochError
	if _, err := AdminShardCmd(admin, true, 7, extra, time.Second); !errors.As(err, &se) {
		t.Fatalf("add at wrong epoch: err = %v, want StaleEpochError", err)
	} else if se.Have != 1 || se.Got != 7 {
		t.Errorf("stale error carries have=%d got=%d", se.Have, se.Got)
	}
	newEpoch, err := AdminShardCmd(admin, true, 1, extra, time.Second)
	if err != nil || newEpoch != 2 {
		t.Fatalf("add at epoch 1: epoch=%d err=%v", newEpoch, err)
	}
	// The duplicate of an applied command presents the epoch it already
	// consumed and must be refused, not applied twice.
	if _, err := AdminShardCmd(admin, true, 1, extra, time.Second); !errors.As(err, &se) {
		t.Fatalf("duplicate add: err = %v, want StaleEpochError", err)
	}
	if got := rh.r.Epoch(); got != 2 {
		t.Fatalf("epoch after add+duplicate = %d, want 2", got)
	}
	if _, err := AdminShardCmd(admin, false, 2, extra, time.Second); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if got, want := rh.r.Shards(), []string{live.addr}; len(got) != 1 || got[0] != want[0] {
		t.Fatalf("shards after remove = %v", got)
	}

	// Push/pull: a pushed v2 table applies unless stale.
	push := &checkpoint.RouterState{Epoch: 9, Shards: []string{live.addr, extra}}
	if err := AdminPushTable(admin, push, time.Second); err != nil {
		t.Fatalf("push: %v", err)
	}
	if got := rh.r.Epoch(); got != 9 {
		t.Fatalf("epoch after push = %d, want 9", got)
	}
	stale := &checkpoint.RouterState{Epoch: 4, Shards: []string{live.addr}}
	if err := AdminPushTable(admin, stale, time.Second); !errors.As(err, &se) {
		t.Fatalf("stale push: err = %v, want StaleEpochError", err)
	}
	pulled, err := AdminPullTable(admin, 1, time.Second)
	if err != nil || pulled.Epoch != 9 {
		t.Fatalf("pull: epoch=%d err=%v", pulled.Epoch, err)
	}

	rh.shutdown(t)
	live.shutdown(t)
}

// TestRouterHoldRelease: a held session is refused with Retry until
// released; other sessions route normally throughout.
func TestRouterHoldRelease(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	live := startServer(t, Config{})
	rh := startRouter(t, RouterConfig{Shards: []string{live.addr}, RetryAfter: time.Millisecond})

	rh.r.Hold("held-session")
	push := func(id string, attempts int) (ClientStats, error) {
		return Push(context.Background(), ClientConfig{
			Addr: rh.addr, SessionID: id, Workload: "linkedlist", Sites: sites,
			MaxAttempts: attempts, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		}, frames)
	}
	var ex *ExhaustedError
	if _, err := push("held-session", 2); !errors.As(err, &ex) {
		t.Fatalf("held session push: err = %v, want ExhaustedError", err)
	}
	if _, err := push("free-session", 8); err != nil {
		t.Fatalf("unrelated session while hold active: %v", err)
	}
	rh.r.Release("held-session")
	if _, err := push("held-session", 8); err != nil {
		t.Fatalf("after release: %v", err)
	}
	rh.shutdown(t)
	live.shutdown(t)
}

// TestStandbyRedirect: a standby router refuses ingest with a redirect
// hint naming the active, and the client follows the hint — the stream
// completes even though the client was pointed only at the standby.
func TestStandbyRedirect(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	live := startServer(t, Config{})
	activeRh := startRouter(t, RouterConfig{Shards: []string{live.addr}})
	standbyRh := startRouter(t, RouterConfig{
		Shards: []string{live.addr}, Standby: true,
		ActiveAddr: activeRh.addr, RetryAfter: time.Millisecond,
	})
	stats, err := Push(context.Background(), ClientConfig{
		Addr: standbyRh.addr, SessionID: "redirected", Workload: "linkedlist", Sites: sites,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, frames)
	if err != nil {
		t.Fatalf("push against standby: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("acked %d of %d frames", stats.FramesAcked, len(frames))
	}
	if stats.Retries == 0 {
		t.Errorf("push never saw the standby's refusal (retries=0)")
	}
	// After promotion the same router serves directly.
	standbyRh.r.Promote()
	if _, err := Push(context.Background(), ClientConfig{
		Addr: standbyRh.addr, SessionID: "post-promote", Workload: "linkedlist", Sites: sites,
	}, frames); err != nil {
		t.Fatalf("push against promoted router: %v", err)
	}
	standbyRh.shutdown(t)
	activeRh.shutdown(t)
	live.shutdown(t)
}

// TestApplyTableGuards: stale and legacy tables are refused, applied
// tables install ring and placements.
func TestApplyTableGuards(t *testing.T) {
	testutil.LeakCheck(t)
	rh := startRouter(t, RouterConfig{Shards: []string{"a:1"}})
	if err := rh.r.ApplyTable(&checkpoint.RouterState{Routes: map[string]string{"s": "a:1"}}); err == nil {
		t.Error("legacy epoch-0 table applied")
	}
	good := &checkpoint.RouterState{Epoch: 5, Shards: []string{"a:1", "b:1"}, Routes: map[string]string{"s": "b:1"}}
	if err := rh.r.ApplyTable(good); err != nil {
		t.Fatalf("apply: %v", err)
	}
	var se *StaleEpochError
	if err := rh.r.ApplyTable(&checkpoint.RouterState{Epoch: 3, Shards: []string{"a:1"}}); !errors.As(err, &se) {
		t.Fatalf("stale apply: err = %v, want StaleEpochError", err)
	}
	st := rh.r.State()
	if st.Epoch != 5 || st.Routes["s"] != "b:1" {
		t.Errorf("state after apply = epoch %d routes %v", st.Epoch, st.Routes)
	}
	rh.shutdown(t)
}

// rawSession opens a bare ORMP/1 connection, completes the handshake, and
// streams the first n frames without Done — then hangs up, leaving an
// incomplete parked session on the server. Returns the acked cursor.
func rawSession(t *testing.T, addr, id string, frames SliceFrames, sites map[trace.SiteID]string, n int) uint64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
	bw.WriteString(ProtoMagic)
	if err := writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: id, Workload: "linkedlist", Sites: sites})); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	mt, body, err := readMsg(br)
	if err != nil || mt != MsgWelcome {
		t.Fatalf("handshake: mt=%v err=%v", mt, err)
	}
	cursor, err := parseUvarintBody(mt, body)
	if err != nil {
		t.Fatal(err)
	}
	for i := int(cursor); i < n; i++ {
		if err := writeMsg(bw, MsgFrame, encodeFrameMsg(uint64(i), frames[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait for the acks so the state is applied and durable before the
	// abrupt hangup — the migration then has real progress to carry.
	acked := cursor
	for acked < uint64(n) {
		mt, body, err := readMsg(br)
		if err != nil {
			t.Fatalf("reading ack: %v", err)
		}
		if mt != MsgAck {
			t.Fatalf("expected Ack, got %v", mt)
		}
		if v, err := parseUvarintBody(mt, body); err == nil && v > acked {
			acked = v
		}
	}
	return acked
}

// TestHandoffAdoptForget: the shard-side migration triple moves a parked
// session between two servers with its durable progress intact, and the
// client completes the stream on the destination with no re-ingest of the
// already-acked prefix.
func TestHandoffAdoptForget(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 64)
	if len(frames) < 4 {
		t.Fatalf("need at least 4 frames, have %d", len(frames))
	}
	finalA := filepath.Join(t.TempDir(), "finalA")
	finalB := filepath.Join(t.TempDir(), "finalB")
	srcSrv := startServer(t, Config{CheckpointEvery: 1, FinalDir: finalA})
	dstSrv := startServer(t, Config{CheckpointEvery: 1, FinalDir: finalB})

	const id = "mover"
	half := len(frames) / 2
	acked := rawSession(t, srcSrv.addr, id, frames, sites, half)
	if acked != uint64(half) {
		t.Fatalf("acked %d, want %d", acked, half)
	}

	// The park is driven by the server noticing the hangup; Handoff races
	// that internally (it waits on the release channel), so no sleep.
	state, err := srcSrv.srv.Handoff(id)
	if err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if state.FramesApplied != uint64(half) {
		t.Errorf("handoff state at frame %d, want %d", state.FramesApplied, half)
	}
	if err := dstSrv.srv.Adopt(state); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	// Destination is durable before the source forgets: the checkpoint
	// file must already exist.
	if _, err := os.Stat(checkpoint.PathFor(dstSrv.ckDir, id)); err != nil {
		t.Fatalf("destination checkpoint after adopt: %v", err)
	}
	if err := dstSrv.srv.Adopt(state); err == nil {
		t.Error("double adopt succeeded; split brain")
	}
	if err := srcSrv.srv.Forget(id); err != nil {
		t.Fatalf("forget: %v", err)
	}
	if _, err := os.Stat(checkpoint.PathFor(srcSrv.ckDir, id)); !os.IsNotExist(err) {
		t.Errorf("source checkpoint survives forget: %v", err)
	}
	if got := srcSrv.srv.SessionIDs(); len(got) != 0 {
		t.Errorf("source still lists %v", got)
	}
	if got := dstSrv.srv.SessionIDs(); len(got) != 1 || got[0] != id {
		t.Errorf("destination lists %v", got)
	}

	// The client finishes against the destination; the server's cursor
	// must spare it the first half.
	stats, err := Push(context.Background(), ClientConfig{
		Addr: dstSrv.addr, SessionID: id, Workload: "linkedlist", Sites: sites,
	}, frames)
	if err != nil {
		t.Fatalf("completing on destination: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("acked %d of %d", stats.FramesAcked, len(frames))
	}
	if stats.FramesSent > len(frames)-half {
		t.Errorf("re-sent %d frames; cursor should have limited it to %d", stats.FramesSent, len(frames)-half)
	}
	dstSrv.shutdown(t)
	srcSrv.shutdown(t)
	// Exactly one final, on the destination.
	if ents, _ := os.ReadDir(finalA); len(ents) != 0 {
		t.Errorf("source wrote %d final state(s)", len(ents))
	}
	if ents, _ := os.ReadDir(finalB); len(ents) != 1 {
		t.Errorf("destination wrote %d final state(s), want 1", len(ents))
	}
}

// TestHandoffUnknownAndBusy: the error paths — unknown session, and a
// second handoff while one is in flight.
func TestHandoffGuards(t *testing.T) {
	testutil.LeakCheck(t)
	srv := startServer(t, Config{})
	if _, err := srv.srv.Handoff("nobody"); err == nil {
		t.Error("handoff of unknown session succeeded")
	}
	if err := srv.srv.Forget("nobody"); err == nil {
		t.Error("forget without handoff succeeded")
	}
	if err := srv.srv.Adopt(nil); err == nil {
		t.Error("adopt of nil state succeeded")
	}
	srv.shutdown(t)
}
