package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ormprof/internal/memsim"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/workloads"
)

// makeFrames records a workload and slices its events into standalone
// v3 frames of the given batch size.
func makeFrames(t testing.TB, name string, batch int) (SliceFrames, map[trace.SiteID]string, []trace.Event) {
	t.Helper()
	prog, err := workloads.New(name, workloads.Config{Scale: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	events := buf.Events
	var frames SliceFrames
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		f, err := tracefmt.EncodeFrame(events[i:end])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	return frames, m.StaticSites(), events
}

type testServer struct {
	srv    *Server
	addr   string
	ckDir  string
	outDir string
	done   chan error
}

func startServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	}
	if cfg.OutputDir == "" {
		cfg.OutputDir = filepath.Join(t.TempDir(), "out")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := &testServer{srv: srv, addr: ln.Addr().String(),
		ckDir: cfg.CheckpointDir, outDir: cfg.OutputDir, done: make(chan error, 1)}
	go func() { ts.done <- srv.Serve() }()
	return ts
}

func (ts *testServer) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if err := <-ts.done; err != nil {
		t.Errorf("serve: %v", err)
	}
}

func readArtifacts(t *testing.T, dir, workload string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, ext := range []string{".whomp", ".leap", ".stride"} {
		b, err := os.ReadFile(filepath.Join(dir, sanitizeName(workload)+ext))
		if err != nil {
			t.Fatalf("artifact %s: %v", ext, err)
		}
		out[ext] = b
	}
	return out
}

func TestWireHelloRoundTrip(t *testing.T) {
	h := &Hello{
		SessionID: "sess-1",
		Workload:  "linkedlist",
		Sites:     map[trace.SiteID]string{3: "node", 7: "head"},
	}
	got, err := decodeHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Errorf("round trip: got %+v want %+v", got, h)
	}
	for name, body := range map[string][]byte{
		"empty":      {},
		"no-session": encodeHello(&Hello{SessionID: "", Workload: "w"}),
		"trailing":   append(encodeHello(h), 0),
		"truncated":  encodeHello(h)[:4],
	} {
		if _, err := decodeHello(body); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: want ErrProtocol, got %v", name, err)
		}
	}
}

func TestPushCompleteStream(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, events := makeFrames(t, "linkedlist", 256)
	ts := startServer(t, Config{CheckpointEvery: 4, CheckpointInterval: 50 * time.Millisecond})
	stats, err := Push(context.Background(), ClientConfig{
		Addr: ts.addr, SessionID: "s1", Workload: "linkedlist", Sites: sites,
	}, frames)
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("acked %d of %d frames", stats.FramesAcked, len(frames))
	}
	ts.shutdown(t)

	got := readArtifacts(t, ts.outDir, "linkedlist")
	// The daemon's profiles must match an offline run over the same events.
	want := offlineArtifacts(t, "linkedlist", sites, events)
	for ext, b := range want {
		if !bytes.Equal(got[ext], b) {
			t.Errorf("%s: daemon output differs from offline run", ext)
		}
	}
	// A completed session retires its checkpoint.
	if _, err := os.Stat(filepath.Join(ts.ckDir, "s1.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not removed after completion: %v", err)
	}
}

// offlineArtifacts runs the same events through a fresh pipeline and the
// shared serializers — the reference the daemon must match.
func offlineArtifacts(t *testing.T, workload string, sites map[trace.SiteID]string, events []trace.Event) map[string][]byte {
	t.Helper()
	p := newPipeline(workload, sites, 0, nil, 0, false, false)
	p.applyFrame(events)
	dir := t.TempDir()
	if err := p.writeProfiles(dir); err != nil {
		t.Fatal(err)
	}
	return readArtifacts(t, dir, workload)
}

func TestAdmissionRetry(t *testing.T) {
	testutil.LeakCheck(t)
	ts := startServer(t, Config{MaxSessions: 1, RetryAfter: 5 * time.Millisecond})
	defer ts.shutdown(t)

	// First connection occupies the only slot.
	c1, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	br1 := bufio.NewReader(c1)
	bw1 := bufio.NewWriter(c1)
	c1.Write([]byte(ProtoMagic))
	writeMsg(bw1, MsgHello, encodeHello(&Hello{SessionID: "a", Workload: "w"}))
	bw1.Flush()
	if mt, _, err := readMsg(br1); err != nil || mt != MsgWelcome {
		t.Fatalf("first conn: got %v %v, want Welcome", mt, err)
	}

	// Second connection must be told to retry, with a parseable hint.
	c2, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	br2 := bufio.NewReader(c2)
	bw2 := bufio.NewWriter(c2)
	c2.Write([]byte(ProtoMagic))
	writeMsg(bw2, MsgHello, encodeHello(&Hello{SessionID: "b", Workload: "w"}))
	bw2.Flush()
	mt, body, err := readMsg(br2)
	if err != nil || mt != MsgRetry {
		t.Fatalf("second conn: got %v %v, want Retry", mt, err)
	}
	if ms, err := parseUvarintBody(mt, body); err != nil || ms != 5 {
		t.Errorf("retry hint: got %d %v, want 5ms", ms, err)
	}

	// Same session ID while connected is also refused.
	c3, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	t.Cleanup(func() { c1.Close(); c2.Close(); c3.Close() })
	br3 := bufio.NewReader(c3)
	bw3 := bufio.NewWriter(c3)
	c3.Write([]byte(ProtoMagic))
	writeMsg(bw3, MsgHello, encodeHello(&Hello{SessionID: "a", Workload: "w"}))
	bw3.Flush()
	if mt, _, _ := readMsg(br3); mt != MsgRetry {
		t.Fatalf("duplicate session conn: got %v, want Retry", mt)
	}
}

func TestFrameGapRejected(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 512)
	ts := startServer(t, Config{})
	defer ts.shutdown(t)

	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.Write([]byte(ProtoMagic))
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: "gap", Workload: "w", Sites: sites}))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgWelcome {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	// Frame 0, duplicate frame 0 (ignored), then a gap to frame 5.
	writeMsg(bw, MsgFrame, encodeFrameMsg(0, frames[0]))
	writeMsg(bw, MsgFrame, encodeFrameMsg(0, frames[0]))
	writeMsg(bw, MsgFrame, encodeFrameMsg(5, frames[1]))
	bw.Flush()
	mt, body, err := readMsg(br)
	if err != nil {
		t.Fatalf("expected Err, got %v", err)
	}
	if mt != MsgErr {
		t.Fatalf("expected Err after gap, got %s %q", mt, body)
	}
}

func TestCorruptFrameRejected(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 512)
	ts := startServer(t, Config{})
	defer ts.shutdown(t)

	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.Write([]byte(ProtoMagic))
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: "crc", Workload: "w", Sites: sites}))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgWelcome {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	bad := append([]byte(nil), frames[0]...)
	bad[len(bad)/2] ^= 0x40
	writeMsg(bw, MsgFrame, encodeFrameMsg(0, bad))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgErr {
		t.Fatalf("expected Err for corrupt frame, got %v %v", mt, err)
	}
}

// TestKillResumeByteIdentical is the core durability property: kill the
// server mid-stream (no goodbye, no flush), restart it with -resume
// semantics, push again, and the final profiles must be byte-identical
// to an uninterrupted run.
func TestKillResumeByteIdentical(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, events := makeFrames(t, "linkedlist", 64)
	ckDir := filepath.Join(t.TempDir(), "ck")
	outDir := filepath.Join(t.TempDir(), "out")

	ts1 := startServer(t, Config{
		CheckpointDir: ckDir, OutputDir: outDir,
		CheckpointEvery: 2, CheckpointInterval: 20 * time.Millisecond,
	})
	ckPath := filepath.Join(ckDir, "kr.ckpt")
	pushErr := make(chan error, 1)
	go func() {
		_, err := Push(context.Background(), ClientConfig{
			Addr: ts1.addr, SessionID: "kr", Workload: "linkedlist", Sites: sites,
			MaxAttempts: 2, BackoffBase: 5 * time.Millisecond, AttemptTimeout: 2 * time.Second,
		}, frames)
		pushErr <- err
	}()
	// Kill once at least one checkpoint is durable.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	ts1.srv.Kill()
	<-ts1.done
	if err := <-pushErr; err == nil {
		// The client may legitimately have finished if the kill raced
		// the last frame; otherwise it must have failed.
		if _, statErr := os.Stat(ckPath); statErr == nil {
			t.Fatal("push succeeded but checkpoint still on disk")
		}
	}

	// Restart with resume; the client re-pushes and must complete.
	ts2 := startServer(t, Config{
		CheckpointDir: ckDir, OutputDir: outDir, Resume: true,
		CheckpointEvery: 2, CheckpointInterval: 20 * time.Millisecond,
	})
	stats, err := Push(context.Background(), ClientConfig{
		Addr: ts2.addr, SessionID: "kr", Workload: "linkedlist", Sites: sites,
	}, frames)
	if err != nil {
		t.Fatalf("resumed push: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("resumed push acked %d of %d", stats.FramesAcked, len(frames))
	}
	ts2.shutdown(t)

	got := readArtifacts(t, outDir, "linkedlist")
	want := offlineArtifacts(t, "linkedlist", sites, events)
	for ext, b := range want {
		if !bytes.Equal(got[ext], b) {
			t.Errorf("%s: resumed output differs from uninterrupted run", ext)
		}
	}
}

// TestShutdownFlushesPartial: a session interrupted by graceful shutdown
// leaves a durable checkpoint and partial profiles on disk.
func TestShutdownFlushesPartial(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 128)
	ts := startServer(t, Config{CheckpointEvery: 1 << 30, CheckpointInterval: time.Hour})

	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.Write([]byte(ProtoMagic))
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: "p", Workload: "partial", Sites: sites}))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgWelcome {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	writeMsg(bw, MsgFrame, encodeFrameMsg(0, frames[0]))
	writeMsg(bw, MsgFrame, encodeFrameMsg(1, frames[1]))
	bw.Flush()
	// No Done: shut down with a deadline that forces the drain to cut in.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	ts.srv.Shutdown(ctx)
	<-ts.done

	ck, err := os.Stat(filepath.Join(ts.ckDir, "p.ckpt"))
	if err != nil {
		t.Fatalf("no checkpoint after shutdown: %v", err)
	}
	if ck.Size() == 0 {
		t.Error("empty checkpoint")
	}
	readArtifacts(t, ts.outDir, "partial") // must all exist
}

// TestStalledClientParked: a client that goes silent is disconnected by
// the idle deadline; its state is checkpointed for a future reconnect.
func TestStalledClientParked(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 128)
	ts := startServer(t, Config{IdleTimeout: 100 * time.Millisecond})
	defer ts.shutdown(t)

	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.Write([]byte(ProtoMagic))
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: "stall", Workload: "w", Sites: sites}))
	bw.Flush()
	if mt, _, err := readMsg(br); err != nil || mt != MsgWelcome {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	writeMsg(bw, MsgFrame, encodeFrameMsg(0, frames[0]))
	bw.Flush()
	// Go silent. The server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, _, err := readMsg(br); err != nil {
			break
		}
	}
	// The parked state is durable and a reconnect resumes past frame 0.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(ts.ckDir, "stall.ckpt")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled session was not checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The checkpoint file is the reconnect signal, and it becomes visible
	// while the old handler may still own the session. Adoption is
	// race-free (a reconnect landing in that window waits for the
	// imminent release), so a single immediate reconnect must succeed —
	// no Retry, no backoff loop.
	conn2, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	br2 := bufio.NewReader(conn2)
	bw2 := bufio.NewWriter(conn2)
	conn2.Write([]byte(ProtoMagic))
	writeMsg(bw2, MsgHello, encodeHello(&Hello{SessionID: "stall", Workload: "w", Sites: sites}))
	bw2.Flush()
	mt, body, err := readMsg(br2)
	if err != nil || mt != MsgWelcome {
		t.Fatalf("reconnect handshake: got %v %v, want Welcome", mt, err)
	}
	if cur, err := parseUvarintBody(mt, body); err != nil || cur != 1 {
		t.Errorf("resume cursor: got %d %v, want 1", cur, err)
	}
}

// TestClientExhaustedTyped: with no server at all, Push gives up with
// the typed ExhaustedError after its retry budget.
func TestClientExhaustedTyped(t *testing.T) {
	testutil.LeakCheck(t)
	frames := SliceFrames{[]byte("ignored")}
	_, err := Push(context.Background(), ClientConfig{
		Addr: "127.0.0.1:1", SessionID: "x",
		MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		AttemptTimeout: 200 * time.Millisecond,
	}, frames)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want ExhaustedError, got %v", err)
	}
	if ex.Attempts != 3 {
		t.Errorf("attempts: got %d want 3", ex.Attempts)
	}
}
