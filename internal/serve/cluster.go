package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ormprof/internal/govern"
)

// Cluster is the all-in-one deployment: N shard Servers plus a router
// tier, every piece in this process. It exists for two consumers — `ormpd
// -cluster -local-shards N`, which wants horizontal ingest scaling
// without multi-host operations, and the fault soaks, which need to kill
// and restart individual tiers mid-stream and then prove the merged
// result byte-identical to a single-node run. The multi-host deployment
// is the same pieces without this wrapper: standalone `ormpd` per shard,
// `ormpd -cluster -shards ...` for the router, `ormpd -merge` for the
// report.
//
// Reconfiguration: AddShard and RemoveShard change the ring without
// draining anything. The orchestration for each moved session is
//
//	Hold (router refuses its reconnects) → ring install (epoch CAS) →
//	Handoff (source extracts durable state) → Adopt (destination
//	validates and durably checkpoints it) → Forget (source drops its
//	copy) → Repoint (router pins the new owner) → Release
//
// so at every instant the session has at least one durable home and the
// routing plane knows which one it is. The same methods back the admin
// plane: `ormpd -ctl add-shard/remove-shard` lands on the active
// router's admin listener, whose OnAddShard/OnRemoveShard hooks point
// here.
//
// Governance composes across tiers: ClusterMemBudget is a parent
// govern.Budget over every shard's accounting root, and when the summed
// footprint crosses its watermark the heaviest shard — govern.Heaviest
// over the per-shard accounted bytes, ties to the lowest shard index —
// is told to shed via its OverBudget hook. Inside that shard the
// existing heaviest-session machinery picks the victim, so "which
// session in which shard degrades" is deterministic at both tiers.
type ClusterConfig struct {
	// Dir is the cluster's root directory (required). Each shard i keeps
	// its durable state under Dir/shard<i>/{ckpt,out,final}; router i's
	// state table is Dir/router<i>.rtab.
	Dir string
	// Shards is the local shard count. Default 2.
	Shards int
	// Shard is the per-shard Config template. CheckpointDir, OutputDir,
	// FinalDir, Resume, ParentBudget, and OverBudget are derived per
	// shard and overwritten.
	Shard Config
	// Router is the RouterConfig template. Shards, StatePath, Standby,
	// ActiveAddr, Peers, and the admin hooks are derived and overwritten.
	Router RouterConfig
	// RouterListen is router 0's listen address. Default 127.0.0.1:0
	// (an ephemeral port, read back via Addr). Additional routers always
	// take ephemeral ports.
	RouterListen string
	// AdminListen is router 0's admin listen address. Default
	// 127.0.0.1:0; read back via AdminAddr.
	AdminListen string
	// Routers is the total router count: one active plus Routers-1
	// standbys replicating its table. Default 1.
	Routers int
	// ClusterMemBudget bounds the accounted profiling footprint summed
	// across every shard (0 = unlimited).
	ClusterMemBudget int64
	// MigrateHook, when set, is called at each stage of every session
	// migration ("held", "handoff", "adopted", "repointed") — the fault
	// soaks' window into the dance.
	MigrateHook func(stage, session string)
	// Logf, when set, receives cluster lifecycle lines.
	Logf func(format string, args ...any)
}

// clusterShard is one shard slot: the address is fixed for the cluster's
// lifetime (the ring hashes it), the server behind it comes and goes. A
// removed slot keeps its directories — its completed sessions' final
// states still feed the merge — but never serves again.
type clusterShard struct {
	addr    string
	srv     *Server
	ln      net.Listener
	done    chan struct{} // closed when this server's Serve returns
	removed bool
}

// clusterRouter is one router slot. Every router carries both listeners:
// ingest (spliced ORMP/1) and admin (ORMA/1 — topology commands on the
// active, replication intake on standbys).
type clusterRouter struct {
	addr      string
	adminAddr string
	r         *Router
	ln        net.Listener
	adminLn   net.Listener
	done      chan struct{}
	adminDone chan struct{}
}

// Cluster runs the shards and routers. All methods are safe to call from
// test goroutines; the Kill/Restart/Promote trio and AddShard/RemoveShard
// are the fault and reconfiguration hooks.
type Cluster struct {
	cfg    ClusterConfig
	budget *govern.Budget
	shards []*clusterShard

	routers []*clusterRouter
	active  int // index of the active router
}

// NewCluster builds and starts a cluster: every shard listening, router 0
// active, any further routers standing by. The returned cluster is
// serving; callers push through Addr().
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: cluster Dir is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Routers <= 0 {
		cfg.Routers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Cluster{
		cfg:     cfg,
		budget:  govern.NewBudget(cfg.ClusterMemBudget),
		shards:  make([]*clusterShard, cfg.Shards),
		routers: make([]*clusterRouter, cfg.Routers),
	}
	for i := range c.shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.teardown()
			return nil, fmt.Errorf("serve: cluster shard %d: %w", i, err)
		}
		c.shards[i] = &clusterShard{addr: ln.Addr().String()}
		if err := c.startShard(i, ln, false); err != nil {
			c.teardown()
			return nil, err
		}
	}
	// Open every router's listeners first: peer lists name admin
	// addresses, so the addresses must exist before any router starts.
	if cfg.RouterListen == "" {
		cfg.RouterListen = "127.0.0.1:0"
	}
	if cfg.AdminListen == "" {
		cfg.AdminListen = "127.0.0.1:0"
	}
	c.cfg.RouterListen = cfg.RouterListen
	for i := range c.routers {
		ingest, admin := "127.0.0.1:0", "127.0.0.1:0"
		if i == 0 {
			ingest, admin = cfg.RouterListen, cfg.AdminListen
		}
		ln, err := net.Listen("tcp", ingest)
		if err != nil {
			c.teardown()
			return nil, fmt.Errorf("serve: cluster router %d: %w", i, err)
		}
		aln, err := net.Listen("tcp", admin)
		if err != nil {
			ln.Close()
			c.teardown()
			return nil, fmt.Errorf("serve: cluster router %d admin: %w", i, err)
		}
		c.routers[i] = &clusterRouter{
			addr:      ln.Addr().String(),
			adminAddr: aln.Addr().String(),
			ln:        ln,
			adminLn:   aln,
		}
	}
	// Active first (it skips the startup pull; it IS the source of
	// truth), then the standbys, each pulling the active's table as it
	// comes up.
	for i := range c.routers {
		if err := c.startRouter(i, i != 0); err != nil {
			c.teardown()
			return nil, err
		}
	}
	return c, nil
}

// teardown releases whatever NewCluster managed to start.
func (c *Cluster) teardown() {
	for _, sh := range c.shards {
		if sh != nil && sh.srv != nil {
			sh.srv.Kill()
			<-sh.done
		}
	}
	for _, rt := range c.routers {
		if rt == nil {
			continue
		}
		if rt.r != nil {
			rt.r.Kill()
			<-rt.done
			<-rt.adminDone
		} else {
			if rt.ln != nil {
				rt.ln.Close()
			}
			if rt.adminLn != nil {
				rt.adminLn.Close()
			}
		}
	}
}

// shardDirs returns shard i's durable directories.
func (c *Cluster) shardDirs(i int) (ckpt, out, final string) {
	root := filepath.Join(c.cfg.Dir, fmt.Sprintf("shard%d", i))
	return filepath.Join(root, "ckpt"), filepath.Join(root, "out"), filepath.Join(root, "final")
}

// overBudgetFor builds shard i's OverBudget hook: shed only when the
// cluster budget is over its watermark AND shard i is currently the
// heaviest — the same usage-then-lowest-index order at the shard tier
// that heavier() applies at the session tier.
func (c *Cluster) overBudgetFor(i int) func() bool {
	return func() bool {
		if !c.budget.Over() {
			return false
		}
		used := make([]int64, len(c.shards))
		for j, sh := range c.shards {
			if sh.srv != nil {
				used[j] = sh.srv.GovernedUsed()
			}
		}
		return govern.Heaviest(used) == i
	}
}

// startShard creates and serves shard i on ln. resume selects whether the
// server adopts the shard's durable checkpoints (always true on restart).
func (c *Cluster) startShard(i int, ln net.Listener, resume bool) error {
	ckpt, out, final := c.shardDirs(i)
	cfg := c.cfg.Shard
	cfg.CheckpointDir = ckpt
	cfg.OutputDir = out
	cfg.FinalDir = final
	cfg.Resume = resume
	cfg.ParentBudget = c.budget
	cfg.OverBudget = c.overBudgetFor(i)
	if cfg.Logf == nil {
		logf, n := c.cfg.Logf, i
		cfg.Logf = func(format string, args ...any) {
			logf("shard %d: "+format, append([]any{n}, args...)...)
		}
	}
	srv, err := New(ln, cfg)
	if err != nil {
		ln.Close()
		return fmt.Errorf("serve: cluster shard %d: %w", i, err)
	}
	sh := c.shards[i]
	sh.srv, sh.ln, sh.done = srv, ln, make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		if err := srv.Serve(); err != nil {
			c.cfg.Logf("shard %d: serve: %v", i, err)
		}
	}(sh.done)
	return nil
}

// startRouter creates and serves router i on its slot's listeners.
// standby selects the starting mode; the active router gets the admin
// hooks that route topology commands through the cluster's migration
// orchestrator.
func (c *Cluster) startRouter(i int, standby bool) error {
	rt := c.routers[i]
	cfg := c.cfg.Router
	cfg.Shards = c.liveShardAddrs()
	cfg.StatePath = filepath.Join(c.cfg.Dir, fmt.Sprintf("router%d.rtab", i))
	cfg.Standby = standby
	cfg.ActiveAddr = c.routers[c.active].addr
	cfg.Peers = nil
	for j, peer := range c.routers {
		if j != i {
			cfg.Peers = append(cfg.Peers, peer.adminAddr)
		}
	}
	cfg.OnAddShard = func(epoch uint64, addr string) (uint64, error) {
		return c.adminAddShard(epoch, addr)
	}
	cfg.OnRemoveShard = func(epoch uint64, addr string) (uint64, error) {
		return c.adminRemoveShard(epoch, addr)
	}
	if cfg.Logf == nil {
		logf, n := c.cfg.Logf, i
		cfg.Logf = func(format string, args ...any) {
			logf("router %d: "+format, append([]any{n}, args...)...)
		}
	}
	r, err := NewRouter(rt.ln, cfg)
	if err != nil {
		rt.ln.Close()
		rt.adminLn.Close()
		return fmt.Errorf("serve: cluster router %d: %w", i, err)
	}
	rt.r, rt.done, rt.adminDone = r, make(chan struct{}), make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		if err := r.Serve(); err != nil {
			c.cfg.Logf("router %d: serve: %v", i, err)
		}
	}(rt.done)
	go func(done chan struct{}, aln net.Listener) {
		defer close(done)
		if err := r.ServeAdmin(aln); err != nil {
			c.cfg.Logf("router %d: admin: %v", i, err)
		}
	}(rt.adminDone, rt.adminLn)
	return nil
}

// Addr is the active router's ingest address — where clients push.
func (c *Cluster) Addr() string { return c.routers[c.active].addr }

// AdminAddr is the active router's admin address — where -ctl lands.
func (c *Cluster) AdminAddr() string { return c.routers[c.active].adminAddr }

// RouterAddrs lists every router's ingest address, active first — the
// rotation list a client uses to survive router failover.
func (c *Cluster) RouterAddrs() []string {
	out := []string{c.routers[c.active].addr}
	for i, rt := range c.routers {
		if i != c.active {
			out = append(out, rt.addr)
		}
	}
	return out
}

// ShardAddrs lists the shard addresses in slot order, removed slots
// included (their addresses stay reserved).
func (c *Cluster) ShardAddrs() []string {
	out := make([]string, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.addr
	}
	return out
}

// liveShardAddrs lists the addresses of slots that have not been removed.
func (c *Cluster) liveShardAddrs() []string {
	var out []string
	for _, sh := range c.shards {
		if !sh.removed {
			out = append(out, sh.addr)
		}
	}
	return out
}

// FinalDirs lists every shard's final-state directory (merge inputs) —
// removed shards included: their completed sessions are part of the
// cluster's history.
func (c *Cluster) FinalDirs() []string {
	out := make([]string, len(c.shards))
	for i := range c.shards {
		_, _, out[i] = c.shardDirs(i)
	}
	return out
}

// Epoch returns the active router's ring epoch.
func (c *Cluster) Epoch() uint64 { return c.routers[c.active].r.Epoch() }

// activeRouter returns the active router, or nil when it is killed.
func (c *Cluster) activeRouter() *Router { return c.routers[c.active].r }

// shardByAddr finds the running slot serving addr.
func (c *Cluster) shardByAddr(addr string) *clusterShard {
	for _, sh := range c.shards {
		if sh.addr == addr && sh.srv != nil {
			return sh
		}
	}
	return nil
}

func (c *Cluster) hook(stage, session string) {
	if c.cfg.MigrateHook != nil {
		c.cfg.MigrateHook(stage, session)
	}
}

// adminAddShard backs the admin plane's add-shard on a local cluster:
// the shard address is decided here (a freshly listened local slot), so
// the operator-supplied address must be the literal "local".
func (c *Cluster) adminAddShard(epoch uint64, addr string) (uint64, error) {
	if addr != "local" {
		return 0, fmt.Errorf("serve: local cluster spawns its own shards; use add-shard local")
	}
	if _, err := c.AddShardAt(epoch); err != nil {
		return 0, err
	}
	return c.Epoch(), nil
}

// adminRemoveShard backs the admin plane's remove-shard: addr must name
// an existing shard slot.
func (c *Cluster) adminRemoveShard(epoch uint64, addr string) (uint64, error) {
	for i, sh := range c.shards {
		if sh.addr == addr {
			if err := c.RemoveShardAt(epoch, i); err != nil {
				return 0, err
			}
			return c.Epoch(), nil
		}
	}
	return 0, fmt.Errorf("serve: no shard at %s", addr)
}

// AddShard grows the cluster by one shard against the current epoch.
func (c *Cluster) AddShard() (int, error) { return c.AddShardAt(c.Epoch()) }

// AddShardAt grows the cluster by one local shard, presented against
// epoch (refused with *StaleEpochError on mismatch). The new shard slot
// starts serving, the ring advances one epoch, and every session whose
// new primary is the new shard is migrated onto it without dropping the
// cluster's other sessions. Returns the new slot index.
func (c *Cluster) AddShardAt(epoch uint64) (int, error) {
	r := c.activeRouter()
	if r == nil {
		return 0, fmt.Errorf("serve: no active router")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("serve: add shard: %w", err)
	}
	i := len(c.shards)
	sh := &clusterShard{addr: ln.Addr().String()}
	c.shards = append(c.shards, sh)
	if err := c.startShard(i, ln, false); err != nil {
		c.shards = c.shards[:i]
		return 0, err
	}

	// Who moves: exactly the sessions the new ring assigns to the new
	// shard (consistent hashing moves nothing else).
	ng, err := newRingAt(epoch+1, append(r.Shards(), sh.addr))
	if err != nil {
		c.abandonSlot(i)
		return 0, err
	}
	movers := c.moversTo(func(id string) bool { return ng.primary(id) == sh.addr })
	for id := range movers {
		r.Hold(id)
		c.hook("held", id)
	}
	if _, err := r.InstallAdd(epoch, sh.addr); err != nil {
		for id := range movers {
			r.Release(id)
		}
		c.abandonSlot(i)
		return 0, err
	}
	merr := c.migrateAll(r, movers, sh)
	if serr := r.SyncPeers(); serr != nil && merr == nil {
		merr = serr
	}
	c.cfg.Logf("cluster: added shard %d (%s) at epoch %d, moved %d session(s)",
		i, sh.addr, ng.epoch, len(movers))
	return i, merr
}

// RemoveShard shrinks the cluster by shard slot i against the current
// epoch.
func (c *Cluster) RemoveShard(i int) error { return c.RemoveShardAt(c.Epoch(), i) }

// RemoveShardAt retires shard slot i, presented against epoch. Every
// session the shard holds — live, parked, or resumed — is migrated to
// its new ring primary first, then the empty shard drains and the slot
// is marked removed. Its final-state directory stays: completed sessions
// are history the merge still needs.
func (c *Cluster) RemoveShardAt(epoch uint64, i int) error {
	r := c.activeRouter()
	if r == nil {
		return fmt.Errorf("serve: no active router")
	}
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("serve: no shard slot %d", i)
	}
	sh := c.shards[i]
	if sh.removed {
		return fmt.Errorf("serve: shard %d is already removed", i)
	}
	if sh.srv == nil {
		return fmt.Errorf("serve: shard %d is down; restart it before removing so its sessions can migrate", i)
	}
	ng, err := r.ringWithout(epoch, sh.addr)
	if err != nil {
		return err
	}
	// Everyone on the leaving shard moves; sessions elsewhere keep their
	// primaries (consistent hashing) or their pins (installLocked).
	movers := make(map[string]*clusterShard)
	for _, id := range sh.srv.SessionIDs() {
		movers[id] = sh
	}
	for id := range movers {
		r.Hold(id)
		c.hook("held", id)
	}
	if _, err := r.InstallRemove(epoch, sh.addr); err != nil {
		for id := range movers {
			r.Release(id)
		}
		return err
	}
	dstFor := func(id string) *clusterShard { return c.shardByAddr(ng.primary(id)) }
	merr := c.migrateAllTo(r, movers, dstFor)
	if serr := r.SyncPeers(); serr != nil && merr == nil {
		merr = serr
	}
	if merr != nil {
		// The ring moved on but some sessions still live on the leaving
		// shard; keep it serving (pins still point here) and report.
		return merr
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	used := sh.srv.GovernedUsed()
	if err := sh.srv.Shutdown(ctx); err != nil {
		c.cfg.Logf("shard %d: drain on removal: %v", i, err)
	}
	<-sh.done
	if used != 0 {
		c.budget.Add(-used)
	}
	sh.srv, sh.ln = nil, nil
	sh.removed = true
	c.cfg.Logf("cluster: removed shard %d (%s) at epoch %d, moved %d session(s)",
		i, sh.addr, ng.epoch, len(movers))
	return nil
}

// ringWithout computes the prospective ring after removing addr at the
// given epoch — a pure read used to plan migrations before the install.
func (r *Router) ringWithout(epoch uint64, addr string) (*ring, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch != r.ring.epoch {
		return nil, &StaleEpochError{Have: r.ring.epoch, Got: epoch}
	}
	return r.ring.remove(addr)
}

// abandonSlot kills a just-created shard slot that never took a session.
func (c *Cluster) abandonSlot(i int) {
	sh := c.shards[i]
	if sh.srv != nil {
		sh.srv.Kill()
		<-sh.done
	}
	sh.srv, sh.ln = nil, nil
	sh.removed = true
}

// moversTo scans every running shard for sessions matching pick,
// returning session → current owner.
func (c *Cluster) moversTo(pick func(id string) bool) map[string]*clusterShard {
	out := make(map[string]*clusterShard)
	for _, sh := range c.shards {
		if sh.srv == nil {
			continue
		}
		for _, id := range sh.srv.SessionIDs() {
			if pick(id) {
				out[id] = sh
			}
		}
	}
	return out
}

// migrateAll moves every session in movers to dst, in sorted order so
// failures are reproducible. Each session is released the moment its own
// migration settles — succeed or fail, clients must not starve.
func (c *Cluster) migrateAll(r *Router, movers map[string]*clusterShard, dst *clusterShard) error {
	return c.migrateAllTo(r, movers, func(string) *clusterShard { return dst })
}

func (c *Cluster) migrateAllTo(r *Router, movers map[string]*clusterShard, dstFor func(id string) *clusterShard) error {
	ids := make([]string, 0, len(movers))
	for id := range movers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var first error
	for _, id := range ids {
		err := c.migrate(r, id, movers[id], dstFor(id))
		r.Release(id)
		if err != nil && first == nil {
			first = fmt.Errorf("serve: migrate %s: %w", id, err)
		}
	}
	return first
}

// migrate moves one held session from src to dst: Handoff → Adopt →
// Forget → Repoint. A failure before Forget aborts with the session
// intact at src (still pinned there, so nothing is lost — only the
// topology's tidiness).
func (c *Cluster) migrate(r *Router, id string, src, dst *clusterShard) error {
	if dst == nil || dst.srv == nil {
		return fmt.Errorf("destination shard is not running")
	}
	if src == dst {
		return nil
	}
	state, err := src.srv.Handoff(id)
	if errors.Is(err, errUnknownSession) {
		// The session completed between the movers scan and its handoff:
		// its final state is already durable at src — nothing to move.
		return nil
	}
	if err != nil {
		return err
	}
	c.hook("handoff", id)
	if err := dst.srv.Adopt(state); err != nil {
		src.srv.AbortHandoff(id)
		return err
	}
	c.hook("adopted", id)
	if err := src.srv.Forget(id); err != nil {
		return err
	}
	r.Repoint(id, dst.addr)
	c.hook("repointed", id)
	c.cfg.Logf("cluster: migrated session %s: %s -> %s", id, src.addr, dst.addr)
	return nil
}

// KillShard crashes shard i: listener and connections drop, everything
// not durably checkpointed is discarded, and the shard's accounted
// footprint is returned to the cluster budget (the memory really is
// gone — the process state died with the server).
func (c *Cluster) KillShard(i int) {
	sh := c.shards[i]
	if sh.srv == nil {
		return
	}
	used := sh.srv.GovernedUsed()
	sh.srv.Kill()
	<-sh.done
	if used != 0 {
		c.budget.Add(-used)
	}
	sh.srv, sh.ln = nil, nil
	c.cfg.Logf("shard %d: killed", i)
}

// RestartShard brings shard i back on its original address, resuming
// from its durable checkpoints — the cluster analogue of a crashed
// ormpd coming back with -resume.
func (c *Cluster) RestartShard(i int) error {
	sh := c.shards[i]
	if sh.removed {
		return fmt.Errorf("serve: cluster shard %d was removed", i)
	}
	if sh.srv != nil {
		return fmt.Errorf("serve: cluster shard %d is running", i)
	}
	ln, err := net.Listen("tcp", sh.addr)
	if err != nil {
		return fmt.Errorf("serve: cluster shard %d: relisten: %w", i, err)
	}
	if err := c.startShard(i, ln, true); err != nil {
		return err
	}
	c.cfg.Logf("shard %d: restarted", i)
	return nil
}

// KillRouter crashes the active router. In-flight splices drop (clients
// see a reset and retry); shards and standby routers keep running.
func (c *Cluster) KillRouter() {
	rt := c.routers[c.active]
	if rt.r == nil {
		return
	}
	rt.r.Kill()
	<-rt.done
	<-rt.adminDone
	rt.r = nil
	c.cfg.Logf("router %d: killed", c.active)
}

// RestartRouter brings the active-slot router back on its original
// addresses. Placements survive exactly as far as the durable table made
// them: a rerouted session keeps landing on the shard that holds its
// cursor.
func (c *Cluster) RestartRouter() error {
	rt := c.routers[c.active]
	if rt.r != nil {
		return fmt.Errorf("serve: cluster router is running")
	}
	ln, err := net.Listen("tcp", rt.addr)
	if err != nil {
		return fmt.Errorf("serve: cluster router: relisten: %w", err)
	}
	aln, err := net.Listen("tcp", rt.adminAddr)
	if err != nil {
		ln.Close()
		return fmt.Errorf("serve: cluster router admin: relisten: %w", err)
	}
	rt.ln, rt.adminLn = ln, aln
	if err := c.startRouter(c.active, false); err != nil {
		return err
	}
	c.cfg.Logf("router %d: restarted", c.active)
	return nil
}

// PromoteRouter fails the cluster over to the first live standby: it is
// promoted to active (serving whatever placements replication delivered)
// and becomes the target of Addr, AdminAddr, and topology commands.
func (c *Cluster) PromoteRouter() error {
	for i, rt := range c.routers {
		if i == c.active || rt.r == nil {
			continue
		}
		rt.r.Promote()
		c.active = i
		c.cfg.Logf("router %d: now active", i)
		return nil
	}
	return fmt.Errorf("serve: no live standby router to promote")
}

// Shutdown drains the cluster: routers first (no new sessions), then
// every running shard, each within what remains of ctx.
func (c *Cluster) Shutdown(ctx context.Context) error {
	var first error
	for i, rt := range c.routers {
		if rt.r == nil {
			continue
		}
		if err := rt.r.Shutdown(ctx); err != nil && first == nil {
			first = fmt.Errorf("router %d: %w", i, err)
		}
		<-rt.done
		<-rt.adminDone
		rt.r = nil
	}
	for i, sh := range c.shards {
		if sh.srv == nil {
			continue
		}
		if err := sh.srv.Shutdown(ctx); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
		<-sh.done
		sh.srv = nil
	}
	return first
}

// Merge combines every shard's final session states into the cluster
// report under outDir (see ClusterReport).
func (c *Cluster) Merge(outDir string) (*ClusterStats, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: merge: %w", err)
	}
	var dirs []string
	for _, d := range c.FinalDirs() {
		if _, err := os.Stat(d); err == nil {
			dirs = append(dirs, d)
		}
	}
	return ClusterReport(dirs, outDir, c.cfg.Shard.MaxLMADs, c.cfg.Logf)
}
