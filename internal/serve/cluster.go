package serve

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"ormprof/internal/govern"
)

// Cluster is the all-in-one deployment: N shard Servers plus a Router,
// every tier in this process. It exists for two consumers — `ormpd
// -cluster -local-shards N`, which wants horizontal ingest scaling
// without multi-host operations, and the fault soaks, which need to kill
// and restart individual tiers mid-stream and then prove the merged
// result byte-identical to a single-node run. The multi-host deployment
// is the same pieces without this wrapper: standalone `ormpd` per shard,
// `ormpd -cluster -shards ...` for the router, `ormpd -merge` for the
// report.
//
// Governance composes across tiers: ClusterMemBudget is a parent
// govern.Budget over every shard's accounting root, and when the summed
// footprint crosses its watermark the heaviest shard — govern.Heaviest
// over the per-shard accounted bytes, ties to the lowest shard index —
// is told to shed via its OverBudget hook. Inside that shard the
// existing heaviest-session machinery picks the victim, so "which
// session in which shard degrades" is deterministic at both tiers.
type ClusterConfig struct {
	// Dir is the cluster's root directory (required). Each shard i keeps
	// its durable state under Dir/shard<i>/{ckpt,out,final}; the router's
	// reroute table is Dir/router.rtab.
	Dir string
	// Shards is the local shard count. Default 2.
	Shards int
	// Shard is the per-shard Config template. CheckpointDir, OutputDir,
	// FinalDir, Resume, ParentBudget, and OverBudget are derived per
	// shard and overwritten.
	Shard Config
	// Router is the RouterConfig template. Shards and StatePath are
	// derived and overwritten.
	Router RouterConfig
	// RouterListen is the router's listen address. Default 127.0.0.1:0
	// (an ephemeral port, read back via Addr).
	RouterListen string
	// ClusterMemBudget bounds the accounted profiling footprint summed
	// across every shard (0 = unlimited).
	ClusterMemBudget int64
	// Logf, when set, receives cluster lifecycle lines.
	Logf func(format string, args ...any)
}

// clusterShard is one shard slot: the address is fixed for the cluster's
// lifetime (the ring hashes it), the server behind it comes and goes.
type clusterShard struct {
	addr string
	srv  *Server
	ln   net.Listener
	done chan struct{} // closed when this server's Serve returns
}

// Cluster runs the shards and router. All methods are safe to call from
// test goroutines; the Kill/Restart pairs are the fault hooks.
type Cluster struct {
	cfg    ClusterConfig
	budget *govern.Budget
	shards []*clusterShard

	routerAddr string
	router     *Router
	routerLn   net.Listener
	routerDone chan struct{}
}

// NewCluster builds and starts a cluster: every shard listening, router
// routing. The returned cluster is serving; callers push through Addr().
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: cluster Dir is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Cluster{
		cfg:    cfg,
		budget: govern.NewBudget(cfg.ClusterMemBudget),
		shards: make([]*clusterShard, cfg.Shards),
	}
	for i := range c.shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.teardown()
			return nil, fmt.Errorf("serve: cluster shard %d: %w", i, err)
		}
		c.shards[i] = &clusterShard{addr: ln.Addr().String()}
		if err := c.startShard(i, ln, false); err != nil {
			c.teardown()
			return nil, err
		}
	}
	if cfg.RouterListen == "" {
		cfg.RouterListen = "127.0.0.1:0"
	}
	c.cfg.RouterListen = cfg.RouterListen
	rln, err := net.Listen("tcp", cfg.RouterListen)
	if err != nil {
		c.teardown()
		return nil, fmt.Errorf("serve: cluster router: %w", err)
	}
	c.routerAddr = rln.Addr().String()
	if err := c.startRouter(rln); err != nil {
		c.teardown()
		return nil, err
	}
	return c, nil
}

// teardown releases whatever NewCluster managed to start.
func (c *Cluster) teardown() {
	for _, sh := range c.shards {
		if sh != nil && sh.srv != nil {
			sh.srv.Kill()
			<-sh.done
		}
	}
	if c.router != nil {
		c.router.Kill()
		<-c.routerDone
	}
}

// shardDirs returns shard i's durable directories.
func (c *Cluster) shardDirs(i int) (ckpt, out, final string) {
	root := filepath.Join(c.cfg.Dir, fmt.Sprintf("shard%d", i))
	return filepath.Join(root, "ckpt"), filepath.Join(root, "out"), filepath.Join(root, "final")
}

// overBudgetFor builds shard i's OverBudget hook: shed only when the
// cluster budget is over its watermark AND shard i is currently the
// heaviest — the same usage-then-lowest-index order at the shard tier
// that heavier() applies at the session tier.
func (c *Cluster) overBudgetFor(i int) func() bool {
	return func() bool {
		if !c.budget.Over() {
			return false
		}
		used := make([]int64, len(c.shards))
		for j, sh := range c.shards {
			if sh.srv != nil {
				used[j] = sh.srv.GovernedUsed()
			}
		}
		return govern.Heaviest(used) == i
	}
}

// startShard creates and serves shard i on ln. resume selects whether the
// server adopts the shard's durable checkpoints (always true on restart).
func (c *Cluster) startShard(i int, ln net.Listener, resume bool) error {
	ckpt, out, final := c.shardDirs(i)
	cfg := c.cfg.Shard
	cfg.CheckpointDir = ckpt
	cfg.OutputDir = out
	cfg.FinalDir = final
	cfg.Resume = resume
	cfg.ParentBudget = c.budget
	cfg.OverBudget = c.overBudgetFor(i)
	if cfg.Logf == nil {
		logf, n := c.cfg.Logf, i
		cfg.Logf = func(format string, args ...any) {
			logf("shard %d: "+format, append([]any{n}, args...)...)
		}
	}
	srv, err := New(ln, cfg)
	if err != nil {
		ln.Close()
		return fmt.Errorf("serve: cluster shard %d: %w", i, err)
	}
	sh := c.shards[i]
	sh.srv, sh.ln, sh.done = srv, ln, make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		if err := srv.Serve(); err != nil {
			c.cfg.Logf("shard %d: serve: %v", i, err)
		}
	}(sh.done)
	return nil
}

// startRouter creates and serves the router on ln.
func (c *Cluster) startRouter(ln net.Listener) error {
	cfg := c.cfg.Router
	cfg.Shards = c.ShardAddrs()
	cfg.StatePath = filepath.Join(c.cfg.Dir, "router.rtab")
	if cfg.Logf == nil {
		logf := c.cfg.Logf
		cfg.Logf = func(format string, args ...any) {
			logf("router: "+format, args...)
		}
	}
	r, err := NewRouter(ln, cfg)
	if err != nil {
		ln.Close()
		return fmt.Errorf("serve: cluster router: %w", err)
	}
	c.router, c.routerLn, c.routerDone = r, ln, make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		if err := r.Serve(); err != nil {
			c.cfg.Logf("router: serve: %v", err)
		}
	}(c.routerDone)
	return nil
}

// Addr is the router's address — the only address clients need.
func (c *Cluster) Addr() string { return c.routerAddr }

// ShardAddrs lists the shard addresses in index order.
func (c *Cluster) ShardAddrs() []string {
	out := make([]string, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.addr
	}
	return out
}

// FinalDirs lists every shard's final-state directory (merge inputs).
func (c *Cluster) FinalDirs() []string {
	out := make([]string, len(c.shards))
	for i := range c.shards {
		_, _, out[i] = c.shardDirs(i)
	}
	return out
}

// KillShard crashes shard i: listener and connections drop, everything
// not durably checkpointed is discarded, and the shard's accounted
// footprint is returned to the cluster budget (the memory really is
// gone — the process state died with the server).
func (c *Cluster) KillShard(i int) {
	sh := c.shards[i]
	if sh.srv == nil {
		return
	}
	used := sh.srv.GovernedUsed()
	sh.srv.Kill()
	<-sh.done
	if used != 0 {
		c.budget.Add(-used)
	}
	sh.srv, sh.ln = nil, nil
	c.cfg.Logf("shard %d: killed", i)
}

// RestartShard brings shard i back on its original address, resuming
// from its durable checkpoints — the cluster analogue of a crashed
// ormpd coming back with -resume.
func (c *Cluster) RestartShard(i int) error {
	sh := c.shards[i]
	if sh.srv != nil {
		return fmt.Errorf("serve: cluster shard %d is running", i)
	}
	ln, err := net.Listen("tcp", sh.addr)
	if err != nil {
		return fmt.Errorf("serve: cluster shard %d: relisten: %w", i, err)
	}
	if err := c.startShard(i, ln, true); err != nil {
		return err
	}
	c.cfg.Logf("shard %d: restarted", i)
	return nil
}

// KillRouter crashes the router. In-flight splices drop (clients see a
// reset and retry); shards keep running untouched.
func (c *Cluster) KillRouter() {
	if c.router == nil {
		return
	}
	c.router.Kill()
	<-c.routerDone
	c.router, c.routerLn = nil, nil
	c.cfg.Logf("router: killed")
}

// RestartRouter brings the router back on its original address. Reroutes
// survive exactly as far as the durable table made them: a rerouted
// session keeps landing on the shard that holds its cursor.
func (c *Cluster) RestartRouter() error {
	if c.router != nil {
		return fmt.Errorf("serve: cluster router is running")
	}
	ln, err := net.Listen("tcp", c.routerAddr)
	if err != nil {
		return fmt.Errorf("serve: cluster router: relisten: %w", err)
	}
	if err := c.startRouter(ln); err != nil {
		return err
	}
	c.cfg.Logf("router: restarted")
	return nil
}

// Shutdown drains the cluster: router first (no new sessions), then
// every running shard, each within what remains of ctx.
func (c *Cluster) Shutdown(ctx context.Context) error {
	var first error
	if c.router != nil {
		if err := c.router.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		<-c.routerDone
		c.router = nil
	}
	for i, sh := range c.shards {
		if sh.srv == nil {
			continue
		}
		if err := sh.srv.Shutdown(ctx); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
		<-sh.done
		sh.srv = nil
	}
	return first
}

// Merge combines every shard's final session states into the cluster
// report under outDir (see ClusterReport).
func (c *Cluster) Merge(outDir string) (*ClusterStats, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: merge: %w", err)
	}
	var dirs []string
	for _, d := range c.FinalDirs() {
		if _, err := os.Stat(d); err == nil {
			dirs = append(dirs, d)
		}
	}
	return ClusterReport(dirs, outDir, c.cfg.Shard.MaxLMADs, c.cfg.Logf)
}
